package ozz

import (
	"bytes"
	"encoding/json"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"ozz/internal/core"
	"ozz/internal/dist"
	"ozz/internal/obs"
)

// runInstrumentedCampaign runs a short 4-worker pool campaign with a fresh
// registry and event log attached, returning both.
func runInstrumentedCampaign(t *testing.T, steps int) (*obs.Registry, *bytes.Buffer) {
	t.Helper()
	reg := obs.NewRegistry()
	var events bytes.Buffer
	ev := obs.NewEventLog(&events, obs.LevelInfo)
	p := core.NewPool(core.Config{Seed: 1, UseSeeds: true, Obs: reg, Events: ev}, 4)
	p.Run(steps)
	if err := ev.Err(); err != nil {
		t.Fatalf("event log error: %v", err)
	}
	return reg, &events
}

// TestObservabilityRegistryCoverage is the acceptance check: a campaign
// registry exposes at least 20 distinct ozz_* metric families, the
// exposition carries series for all four strategies, and the headline
// counters are live.
func TestObservabilityRegistryCoverage(t *testing.T) {
	reg, _ := runInstrumentedCampaign(t, 16)

	var ozzNames []string
	for _, n := range reg.Names() {
		if strings.HasPrefix(n, "ozz_") {
			ozzNames = append(ozzNames, n)
		}
	}
	if len(ozzNames) < 20 {
		t.Fatalf("registry exposes %d ozz_* families, want >= 20: %v", len(ozzNames), ozzNames)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	byName := map[string][]obs.Sample{}
	for _, s := range samples {
		byName[s.Name] = append(byName[s.Name], s)
	}

	// All six strategies' series are present (pre-registered at zero).
	strategies := map[string]bool{}
	for _, s := range byName["ozz_engine_runs_total"] {
		strategies[s.Get("strategy")] = true
	}
	for _, want := range []string{"ooo", "migration", "deferred", "sequential", "interleave", "kcsan"} {
		if !strategies[want] {
			t.Errorf("exposition missing ozz_engine_runs_total series for strategy %q", want)
		}
	}

	// Headline counters are live after a campaign.
	value := func(name string) float64 {
		ss := byName[name]
		if len(ss) != 1 {
			t.Fatalf("%s: got %d samples, want 1", name, len(ss))
		}
		return ss[0].Value
	}
	if got := value("ozz_campaign_steps_total"); got != 16 {
		t.Errorf("ozz_campaign_steps_total = %v, want 16", got)
	}
	if got := value("ozz_mti_pairs_total"); got <= 0 {
		t.Errorf("ozz_mti_pairs_total = %v, want > 0", got)
	}
	if got := value("ozz_campaign_workers"); got != 4 {
		t.Errorf("ozz_campaign_workers = %v, want 4", got)
	}
	// Every pipeline stage has observations.
	counts := map[string]float64{}
	for _, s := range byName["ozz_stage_duration_seconds_count"] {
		counts[s.Get("stage")] = s.Value
	}
	for _, stage := range []string{"generate", "profile", "hints", "mti", "merge"} {
		if counts[stage] <= 0 {
			t.Errorf("stage %q has no duration observations (have %v)", stage, counts)
		}
	}
}

// TestObservabilityDocComplete diffs the metric names a campaign registers
// against the names documented in docs/OBSERVABILITY.md, both ways: every
// registered family must be documented, and every documented ozz_* token
// must exist in the registry.
func TestObservabilityDocComplete(t *testing.T) {
	// Registration happens at construction; no steps needed. The dist
	// families join the same registry so the doc covers the whole ozz_*
	// surface, fabric included.
	reg := obs.NewRegistry()
	core.NewPool(core.Config{Seed: 1, Obs: reg}, 2)
	dist.RegisterMetrics(reg)
	registered := map[string]bool{}
	for _, n := range reg.Names() {
		if strings.HasPrefix(n, "ozz_") {
			registered[n] = true
		}
	}

	doc, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("reading metric reference: %v", err)
	}
	tokenRe := regexp.MustCompile(`ozz_[a-z0-9_]+`)
	documented := map[string]bool{}
	for _, tok := range tokenRe.FindAllString(string(doc), -1) {
		// Exposition-level suffixes refer to their histogram family.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(tok, suffix); registered[base] {
				tok = base
				break
			}
		}
		documented[tok] = true
	}

	var missing, stale []string
	for n := range registered {
		if !documented[n] {
			missing = append(missing, n)
		}
	}
	for n := range documented {
		if !registered[n] {
			stale = append(stale, n)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	if len(missing) > 0 {
		t.Errorf("metrics registered but not documented in docs/OBSERVABILITY.md: %v", missing)
	}
	if len(stale) > 0 {
		t.Errorf("metrics documented in docs/OBSERVABILITY.md but not registered: %v", stale)
	}
}

// TestObservabilityEventOrdering checks the JSONL guarantees on a real
// 4-worker campaign: seq globally gap-free, wseq gap-free per worker, and
// step events attributed to pool workers (non-zero worker IDs).
func TestObservabilityEventOrdering(t *testing.T) {
	_, events := runInstrumentedCampaign(t, 16)
	var seq uint64
	wseq := map[int]uint64{}
	workersSeen := map[int]bool{}
	lines := strings.Split(strings.TrimSpace(events.String()), "\n")
	if len(lines) < 16 {
		t.Fatalf("got %d event lines, want >= 16 (one per step)", len(lines))
	}
	for i, line := range lines {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		seq++
		if ev.Seq != seq {
			t.Fatalf("line %d: seq = %d, want gap-free %d", i+1, ev.Seq, seq)
		}
		wseq[ev.Worker]++
		if ev.WSeq != wseq[ev.Worker] {
			t.Fatalf("line %d: worker %d wseq = %d, want gap-free %d", i+1, ev.Worker, ev.WSeq, wseq[ev.Worker])
		}
		if ev.Kind == "step" {
			workersSeen[ev.Worker] = true
		}
	}
	for w := range workersSeen {
		if w < 1 || w > 4 {
			t.Errorf("step event from worker %d, want pool workers 1..4", w)
		}
	}
	if len(workersSeen) < 2 {
		t.Errorf("step events came from %d distinct workers, want >= 2", len(workersSeen))
	}
}

// TestSnapshotWorkers pins the Stats.Perf.Workers fix: the serial fuzzer
// reports 1, and a fuzzer sharing a pool's registry reports the pool's
// actual width rather than a hardcoded 1.
func TestSnapshotWorkers(t *testing.T) {
	f := core.NewFuzzer(core.Config{Seed: 1})
	if got := f.Snapshot().Perf.Workers; got != 1 {
		t.Errorf("serial fuzzer Snapshot().Perf.Workers = %d, want 1", got)
	}

	reg := obs.NewRegistry()
	p := core.NewPool(core.Config{Seed: 1, Obs: reg}, 3)
	shared := core.NewFuzzer(core.Config{Seed: 1, Obs: reg})
	if got := shared.Snapshot().Perf.Workers; got != p.Workers {
		t.Errorf("shared-registry Snapshot().Perf.Workers = %d, want the pool's %d", got, p.Workers)
	}
}
