package ozz

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// schedulingDocPackages are the packages whose exported surface
// docs/SCHEDULING.md must describe.
var schedulingDocPackages = []string{"internal/sched", "internal/engine"}

// schedulingSurface parses the scheduling-layer packages and returns two
// identifier sets: the top-level exported declarations the doc MUST name
// (types, funcs, package consts/vars), and the wider set of exported
// names the doc MAY name without being stale (adds methods, struct
// fields, interface methods, and test/benchmark functions).
func schedulingSurface(t *testing.T) (required, allowed map[string]bool) {
	t.Helper()
	required = map[string]bool{}
	allowed = map[string]bool{}
	fset := token.NewFileSet()
	for _, dir := range schedulingDocPackages {
		pkgs, err := parser.ParseDir(fset, dir, nil, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					switch d := decl.(type) {
					case *ast.FuncDecl:
						if !d.Name.IsExported() {
							continue
						}
						allowed[d.Name.Name] = true
						// Methods and test helpers are optional mentions;
						// only plain functions in non-test files are part
						// of the required surface.
						if d.Recv == nil && !strings.HasPrefix(d.Name.Name, "Test") &&
							!strings.HasPrefix(d.Name.Name, "Benchmark") && !strings.HasPrefix(d.Name.Name, "Fuzz") {
							required[d.Name.Name] = true
						}
					case *ast.GenDecl:
						for _, spec := range d.Specs {
							switch s := spec.(type) {
							case *ast.TypeSpec:
								if s.Name.IsExported() {
									required[s.Name.Name] = true
									allowed[s.Name.Name] = true
								}
								// Struct fields and interface methods are
								// legitimate doc references.
								switch tt := s.Type.(type) {
								case *ast.StructType:
									for _, f := range tt.Fields.List {
										for _, n := range f.Names {
											if n.IsExported() {
												allowed[n.Name] = true
											}
										}
									}
								case *ast.InterfaceType:
									for _, m := range tt.Methods.List {
										for _, n := range m.Names {
											if n.IsExported() {
												allowed[n.Name] = true
											}
										}
									}
								}
							case *ast.ValueSpec:
								for _, n := range s.Names {
									if n.IsExported() {
										required[n.Name] = true
										allowed[n.Name] = true
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return required, allowed
}

// TestSchedulingDocComplete diffs docs/SCHEDULING.md against the exported
// surface of internal/sched and internal/engine, both ways: every exported
// top-level identifier must be named in the doc (inside backticks), and
// every capitalized identifier the doc claims (a backtick token like
// `MigrateAt` or `sched.Guarded`) must still exist in those packages. The
// doc therefore cannot silently rot when the scheduling layer changes, and
// the layer cannot grow API the doc ignores.
func TestSchedulingDocComplete(t *testing.T) {
	required, allowed := schedulingSurface(t)
	if len(required) == 0 {
		t.Fatal("no exported identifiers found — parser misconfigured?")
	}

	doc, err := os.ReadFile("docs/SCHEDULING.md")
	if err != nil {
		t.Fatalf("reading scheduling reference: %v", err)
	}
	spanRe := regexp.MustCompile("`([^`]+)`")
	var spans []string
	for _, m := range spanRe.FindAllStringSubmatch(string(doc), -1) {
		spans = append(spans, m[1])
	}
	inline := strings.Join(spans, " ")

	// Direction 1: every required identifier appears in some code span.
	var missing []string
	for name := range required {
		if !regexp.MustCompile(`\b` + regexp.QuoteMeta(name) + `\b`).MatchString(inline) {
			missing = append(missing, name)
		}
	}

	// Direction 2: every bare capitalized identifier the doc claims
	// (optionally package-qualified) must exist in the surface. Dotted
	// member references (`Task.Migrate`), flags, metric names, and paths
	// do not match the claim shape and are checked by other tests.
	claimRe := regexp.MustCompile(`^(?:sched\.|engine\.)?([A-Z][A-Za-z0-9]*)$`)
	testNameRe := regexp.MustCompile(`^(Test|Benchmark|Fuzz)[A-Z]`)
	var stale []string
	for _, span := range spans {
		m := claimRe.FindStringSubmatch(span)
		if m == nil || allowed[m[1]] {
			continue
		}
		// Root-package test names (this test, root benchmarks) are
		// legitimate references outside the two packages' surface.
		if testNameRe.MatchString(m[1]) {
			continue
		}
		stale = append(stale, span)
	}

	sort.Strings(missing)
	sort.Strings(stale)
	if len(missing) > 0 {
		t.Errorf("exported scheduling identifiers not documented in docs/SCHEDULING.md: %v", missing)
	}
	if len(stale) > 0 {
		t.Errorf("identifiers documented in docs/SCHEDULING.md but no longer exported by internal/sched or internal/engine: %v", stale)
	}
}
