package ozz

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ozz/internal/dist"
	"ozz/internal/obs"
)

// protocolSurface is everything internal/dist/protocol.go declares on the
// wire: endpoint paths (the Path* constants), exported message struct
// names, and the union of their json field tags.
type protocolSurface struct {
	endpoints map[string]bool // const values of Path* ("/register", ...)
	types     map[string]bool // exported struct type names
	fields    map[string]bool // json tags across those structs
}

// parseProtocol extracts the wire surface from protocol.go with go/parser,
// so the doc test tracks the source of truth rather than a hand-kept list.
func parseProtocol(t *testing.T) protocolSurface {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filepath.Join("internal", "dist", "protocol.go"), nil, 0)
	if err != nil {
		t.Fatalf("parsing protocol.go: %v", err)
	}
	s := protocolSurface{
		endpoints: map[string]bool{},
		types:     map[string]bool{},
		fields:    map[string]bool{},
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			switch sp := spec.(type) {
			case *ast.ValueSpec:
				for i, name := range sp.Names {
					if !strings.HasPrefix(name.Name, "Path") || i >= len(sp.Values) {
						continue
					}
					if lit, ok := sp.Values[i].(*ast.BasicLit); ok && lit.Kind == token.STRING {
						path, err := strconv.Unquote(lit.Value)
						if err != nil {
							t.Fatalf("unquoting %s: %v", name.Name, err)
						}
						s.endpoints[path] = true
					}
				}
			case *ast.TypeSpec:
				st, ok := sp.Type.(*ast.StructType)
				if !ok || !sp.Name.IsExported() {
					continue
				}
				s.types[sp.Name.Name] = true
				for _, field := range st.Fields.List {
					if field.Tag == nil {
						continue
					}
					raw, err := strconv.Unquote(field.Tag.Value)
					if err != nil {
						continue
					}
					tag := reflect.StructTag(raw).Get("json")
					if name, _, _ := strings.Cut(tag, ","); name != "" && name != "-" {
						s.fields[name] = true
					}
				}
			}
		}
	}
	if len(s.endpoints) == 0 || len(s.types) == 0 || len(s.fields) == 0 {
		t.Fatalf("protocol.go surface came back empty: %+v", s)
	}
	return s
}

// distIdentifiers collects every exported top-level identifier of package
// dist — types, funcs, consts, vars, and exported fields of exported
// structs — across all its files, test files included. The doc may
// reference any of these by backticked name; anything else is a typo or a
// rename the doc missed.
func distIdentifiers(t *testing.T) map[string]bool {
	t.Helper()
	idents := map[string]bool{
		// Referenced by docs/DISTRIBUTED.md but declared in this package,
		// one level up from internal/dist.
		"TestDistributedDocComplete": true,
	}
	dir := filepath.Join("internal", "dist")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", e.Name(), err)
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() {
					idents[d.Name.Name] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.ValueSpec:
						for _, name := range sp.Names {
							if name.IsExported() {
								idents[name.Name] = true
							}
						}
					case *ast.TypeSpec:
						if !sp.Name.IsExported() {
							continue
						}
						idents[sp.Name.Name] = true
						if st, ok := sp.Type.(*ast.StructType); ok {
							for _, field := range st.Fields.List {
								for _, name := range field.Names {
									if name.IsExported() {
										idents[name.Name] = true
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return idents
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestDistributedDocComplete diffs docs/DISTRIBUTED.md against the fabric's
// actual surface, both ways, mirroring TestObservabilityDocComplete:
//
//   - every ozz_dist_* metric family dist.RegisterMetrics registers is
//     documented, and every documented ozz_dist_* token is registered;
//   - every endpoint path constant of protocol.go (plus /metrics) is
//     documented, and every documented backticked /path is real;
//   - every exported message type of protocol.go is documented, and every
//     backticked CamelCase token in the doc names a real dist identifier;
//   - every json field tag of protocol.go appears backticked in the doc.
func TestDistributedDocComplete(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("docs", "DISTRIBUTED.md"))
	if err != nil {
		t.Fatalf("reading fabric ops guide: %v", err)
	}
	text := string(doc)
	surface := parseProtocol(t)

	// Metric families, both directions.
	reg := obs.NewRegistry()
	dist.RegisterMetrics(reg)
	registered := map[string]bool{}
	for _, n := range reg.Names() {
		if strings.HasPrefix(n, "ozz_dist_") {
			registered[n] = true
		}
	}
	documented := map[string]bool{}
	for _, tok := range regexp.MustCompile(`ozz_dist_[a-z0-9_]+`).FindAllString(text, -1) {
		// Exposition-level suffixes refer to their histogram family.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(tok, suffix); registered[base] {
				tok = base
				break
			}
		}
		documented[tok] = true
	}
	var missing, stale []string
	for n := range registered {
		if !documented[n] {
			missing = append(missing, n)
		}
	}
	for n := range documented {
		if !registered[n] {
			stale = append(stale, n)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	if len(missing) > 0 {
		t.Errorf("fabric metrics registered but not documented in docs/DISTRIBUTED.md: %v", missing)
	}
	if len(stale) > 0 {
		t.Errorf("fabric metrics documented in docs/DISTRIBUTED.md but not registered: %v", stale)
	}

	// Endpoints, both directions. /metrics is served off the same listener
	// but lives in manager.go, not the Path* block.
	wantEndpoints := map[string]bool{"/metrics": true}
	for p := range surface.endpoints {
		wantEndpoints[p] = true
	}
	docEndpoints := map[string]bool{}
	for _, m := range regexp.MustCompile("`(/[a-z]+)`").FindAllStringSubmatch(text, -1) {
		docEndpoints[m[1]] = true
	}
	for _, p := range sortedKeys(wantEndpoints) {
		if !docEndpoints[p] {
			t.Errorf("endpoint %s is not documented in docs/DISTRIBUTED.md", p)
		}
	}
	for _, p := range sortedKeys(docEndpoints) {
		if !wantEndpoints[p] {
			t.Errorf("docs/DISTRIBUTED.md documents endpoint %s, which protocol.go does not define", p)
		}
	}

	// Backticked identifiers: every protocol message type must appear, and
	// every CamelCase token the doc backticks must be a real identifier.
	backticked := map[string]bool{}
	for _, m := range regexp.MustCompile("`([^`\n]+)`").FindAllStringSubmatch(text, -1) {
		backticked[m[1]] = true
	}
	for _, name := range sortedKeys(surface.types) {
		if !backticked[name] {
			t.Errorf("protocol message type %s is not documented in docs/DISTRIBUTED.md", name)
		}
	}
	idents := distIdentifiers(t)
	camel := regexp.MustCompile(`^[A-Z][A-Za-z0-9]*$`)
	for _, tok := range sortedKeys(backticked) {
		if camel.MatchString(tok) && !idents[tok] {
			t.Errorf("docs/DISTRIBUTED.md references `%s`, which package dist does not declare", tok)
		}
	}

	// Wire fields: every json tag of protocol.go appears backticked.
	for _, tag := range sortedKeys(surface.fields) {
		if !backticked[tag] {
			t.Errorf("wire field %q of protocol.go is not documented in docs/DISTRIBUTED.md", tag)
		}
	}
}
