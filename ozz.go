// Package ozz is a from-scratch Go reproduction of OZZ (SOSP '24):
// "Identifying Kernel Out-of-Order Concurrency Bugs with In-Vivo Memory
// Access Reordering" — an out-of-order-execution emulator (OEMU), a
// deterministic scheduler, a simulated Linux-like kernel with the paper's
// bug corpus, and the OZZ fuzzer built on top of them.
//
// This root package is the public facade: it re-exports the pieces a
// downstream user composes —
//
//   - Fuzzer / Config: the OZZ fuzzing loop (§4) — generate single-threaded
//     inputs, profile memory accesses and barriers, compute scheduling
//     hints by the hypothetical memory barrier test, execute multi-threaded
//     inputs under OEMU reordering directives, and collect crash reports
//     annotated with the missing-barrier location;
//   - Env / MTIOpts: the execution environment for driving single tests
//     (a thin facade over internal/engine, the pluggable Strategy layer
//     every execution path — OZZ and all baselines — runs through);
//   - Bugs / AllBugs: the bug corpus switches (Table 3's 11 new bugs,
//     Table 4's 9 known bugs, the Fig. 10 Rust example);
//   - the benchmark harnesses regenerating every evaluation table.
//
// See the examples/ directory for runnable walkthroughs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for paper-vs-measured results.
package ozz

import (
	"ozz/internal/bench"
	"ozz/internal/core"
	"ozz/internal/modules"
	"ozz/internal/report"
)

// Config parameterizes a fuzzing campaign (see core.Config).
type Config = core.Config

// Fuzzer is the OZZ fuzzing loop.
type Fuzzer = core.Fuzzer

// Pool is the parallel campaign executor: N workers over a shared
// environment, deterministic in the campaign seed at any worker count.
type Pool = core.Pool

// Stats counts campaign work (with the Perf throughput/reuse block).
type Stats = core.Stats

// Env is an execution environment over the simulated kernel.
type Env = core.Env

// MTIOpts selects a concurrent pair and scheduling hint for one
// hypothetical-memory-barrier test.
type MTIOpts = core.MTIOpts

// Report is a deduplicated finding.
type Report = report.Report

// BugInfo documents one corpus bug and its paper row.
type BugInfo = modules.BugInfo

// BugSet selects active bug switches (missing barriers).
type BugSet = modules.BugSet

// NewFuzzer builds a fuzzer.
func NewFuzzer(cfg Config) *Fuzzer { return core.NewFuzzer(cfg) }

// NewPool builds a parallel campaign executor (workers <= 0 selects
// GOMAXPROCS).
func NewPool(cfg Config, workers int) *Pool { return core.NewPool(cfg, workers) }

// NewEnv builds an execution environment for the named modules with the
// given bug switches.
func NewEnv(mods []string, bugs BugSet) *Env { return core.NewEnv(mods, bugs) }

// Bugs builds a BugSet from switch names, e.g.
// Bugs("watchqueue:pipe_wmb").
func Bugs(names ...string) BugSet { return modules.Bugs(names...) }

// AllBugs lists the whole corpus with its Table 3 / Table 4 metadata.
func AllBugs() []BugInfo { return modules.AllBugs() }

// Benchmark harness re-exports (each regenerates one evaluation artifact).
var (
	// RunLMBench regenerates Table 5 (instrumentation overhead).
	RunLMBench = bench.RunLMBench
	// FormatLMBench renders Table 5.
	FormatLMBench = bench.FormatLMBench
	// RunTable3 regenerates Table 3 (the 11 new bugs).
	RunTable3 = bench.RunTable3
	// FormatTable3 renders Table 3.
	FormatTable3 = bench.FormatTable3
	// RunTable4 regenerates Table 4 (known-bug reproduction).
	RunTable4 = bench.RunTable4
	// RunSbitmapPinned runs the §6.2 pinned-thread negative control.
	RunSbitmapPinned = bench.RunSbitmapPinned
	// FormatTable4 renders Table 4.
	FormatTable4 = bench.FormatTable4
	// MeasureThroughput regenerates the §6.3.2 comparison.
	MeasureThroughput = bench.MeasureThroughput
	// MeasureThroughputWorkers adds the worker-scaling rows (tests/s at
	// each requested Pool width) to the §6.3.2 comparison.
	MeasureThroughputWorkers = bench.MeasureThroughputWorkers
	// RunHeuristic regenerates the §4.3 hint-rank validation.
	RunHeuristic = bench.RunHeuristic
	// FormatHeuristic renders it.
	FormatHeuristic = bench.FormatHeuristic
	// RunOFence regenerates the §6.4 static-analysis comparison.
	RunOFence = bench.RunOFence
	// FormatOFence renders it.
	FormatOFence = bench.FormatOFence
)
