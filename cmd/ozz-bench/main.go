// Command ozz-bench regenerates the paper's evaluation artifacts: every
// table and headline number of §6 (see EXPERIMENTS.md for the index).
//
// Usage:
//
//	ozz-bench -table 3            # Table 3: the 11 new bugs
//	ozz-bench -table 4            # Table 4: known-bug reproduction
//	ozz-bench -table 5            # Table 5: LMBench instrumentation overhead
//	ozz-bench -table throughput   # §6.3.2: OZZ vs syzkaller throughput
//	ozz-bench -table heuristic    # §4.3: triggering-hint rank distribution
//	ozz-bench -table ofence       # §6.4: static paired-barrier comparison
//	ozz-bench -table kcsan        # §7: race-detector comparison + case studies
//	ozz-bench -table all
//
// With -metrics-addr and/or -events, every campaign the harnesses run is
// instrumented into one shared registry and event log (see
// docs/OBSERVABILITY.md) — counters are cumulative across all campaigns of
// the invocation.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ozz/internal/bench"
	"ozz/internal/obs"
)

func main() {
	table := flag.String("table", "all", "which artifact to regenerate: 3|4|5|throughput|heuristic|ofence|all")
	budget := flag.Int("budget", 80, "fuzzer steps per bug for the campaign tables")
	iters := flag.Int("iters", 5000, "operations per LMBench workload")
	tpBudget := flag.Duration("tp-budget", time.Second, "wall-clock budget per side of the throughput comparison")
	workers := flag.Bool("workers", true, "include the worker-scaling rows (1, 2, 4, GOMAXPROCS) in the throughput table")
	metricsAddr := flag.String("metrics-addr", "", `serve /metrics and /debug/pprof/ on this address while tables regenerate`)
	eventsPath := flag.String("events", "", "append campaign events as JSON lines to this file")
	benchOut := flag.String("bench-out", "", "measure a perf trajectory point and write it as JSON to this path (see docs/PERFORMANCE.md)")
	benchCompare := flag.String("bench-compare", "", "compare the measured point against this committed BENCH_*.json; exit 3 past the fail threshold")
	benchRev := flag.String("bench-rev", "", "revision label recorded in the -bench-out report")
	benchBudget := flag.Duration("bench-budget", time.Second, "wall-clock budget per side of the perf report's throughput measurement")
	flag.Parse()

	// Perf-trajectory mode is standalone: measure, optionally write,
	// optionally gate, exit.
	if *benchOut != "" || *benchCompare != "" {
		fmt.Fprintln(os.Stderr, "measuring perf trajectory point...")
		rep := bench.CollectPerf(bench.PerfOpts{Rev: *benchRev, ThroughputBudget: *benchBudget})
		if *benchOut != "" {
			if err := rep.WriteFile(*benchOut); err != nil {
				fmt.Fprintf(os.Stderr, "bench-out: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d metrics)\n", *benchOut, len(rep.Metrics))
		}
		if *benchCompare != "" {
			old, err := bench.ReadPerfReport(*benchCompare)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench-compare: %v\n", err)
				os.Exit(1)
			}
			cmp, err := bench.ComparePerf(old, rep)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench-compare: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("== perf regression gate: %s (baseline %s) ==\n", *benchRev, *benchCompare)
			fmt.Print(cmp.Format())
			if cmp.Failed() {
				os.Exit(3)
			}
		}
		return
	}

	reg := obs.NewRegistry()
	var events *obs.EventLog
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "events: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		events = obs.NewEventLog(f, obs.LevelInfo)
	}
	if *metricsAddr != "" {
		bound, stop, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics-addr: %v\n", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", bound)
	}
	bench.Instrument(reg, events)

	valid := map[string]bool{"3": true, "4": true, "5": true, "throughput": true, "heuristic": true, "ofence": true, "kcsan": true, "all": true}
	if !valid[*table] {
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
	run := func(name string) bool { return *table == name || *table == "all" }

	if run("3") {
		fmt.Println("== Table 3: new OOO bugs discovered by OZZ ==")
		fmt.Print(bench.FormatTable3(bench.RunTable3(*budget)))
		fmt.Println()
	}
	if run("4") {
		fmt.Println("== Table 4: previously-reported OOO bugs (reproduction) ==")
		rows := bench.RunTable4(*budget)
		pinned := bench.RunSbitmapPinned(*budget)
		fmt.Print(bench.FormatTable4(rows, pinned))
		fmt.Println("(* = wrong-return-value symptom, not a crash)")
		fmt.Println()
	}
	if run("5") {
		fmt.Println("== Table 5: LMBench microbenchmark (plain vs OEMU-instrumented kernel) ==")
		fmt.Print(bench.FormatLMBench(bench.RunLMBench(*iters)))
		fmt.Println("(paper overheads on real hardware: 3.0x - 59.0x)")
		fmt.Println()
	}
	if run("throughput") {
		fmt.Println("== §6.3.2: fuzzing throughput ==")
		var ws []int
		if *workers {
			ws = []int{1, 2, 4}
			if n := runtime.GOMAXPROCS(0); n > 4 {
				ws = append(ws, n)
			}
		}
		fmt.Print(bench.MeasureThroughputWorkers(*tpBudget, nil, nil, ws).Format())
		fmt.Println("(paper: syzkaller 7.33 tests/s, OZZ 0.92 tests/s — 7.9x slower)")
		fmt.Println()
	}
	if run("heuristic") {
		fmt.Println("== §4.3: search-heuristic validation (triggering hint ranks) ==")
		rows, dist := bench.RunHeuristic(*budget)
		fmt.Print(bench.FormatHeuristic(rows, dist))
		fmt.Println()
	}
	if run("kcsan") {
		fmt.Println("== §7 + case studies: KCSAN (sampling race detection) vs OZZ ==")
		fmt.Print(bench.FormatKCSAN(bench.RunKCSANComparison(*budget)))
		fmt.Println()
	}
	if run("ofence") {
		fmt.Println("== §6.4: OFence (static paired-barrier matching) vs the 11 new bugs ==")
		rows, misses := bench.RunOFence()
		fmt.Print(bench.FormatOFence(rows, misses))
		fmt.Println()
	}
}
