// Command ozz-repro reproduces a single corpus bug by its switch name and
// prints the full report: the crash title, the hypothetical-barrier
// location, the reordered access sites, and the triggering program —
// everything a developer needs to understand the out-of-order execution
// (§4.4).
//
// Usage:
//
//	ozz-repro -bug tls:sk_prot_wmb [-budget 200] [-seed 42]
//	ozz-repro -bug sbitmap:freed_order [-strategy migration]
//	ozz-repro -list
//
// -strategy selects the engine strategy ("ooo", "migration", "deferred").
// When omitted it defaults to the strategy the bug's corpus entry declares
// (BugInfo.Strategy) — so `ozz-repro -bug sbitmap:freed_order` reproduces
// Table 4 #6 through real cross-CPU migration with no extra flags. The
// legacy -migration-assist switch is deprecated in favour of
// -strategy migration (docs/SCHEDULING.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"ozz/internal/bench"
	"ozz/internal/core"
	"ozz/internal/engine"
	"ozz/internal/modules"
)

func main() {
	var (
		bug    = flag.String("bug", "", "bug switch to reproduce (see -list)")
		budget = flag.Int("budget", 200, "max fuzzer steps")
		seed   = flag.Int64("seed", 42, "campaign seed")
		list   = flag.Bool("list", false, "list bug switches and exit")
		assist = flag.Bool("migration-assist", false, "enable the sbitmap migration assist (deprecated; use -strategy migration)")
		strat  = flag.String("strategy", "", `engine strategy: "ooo", "migration", or "deferred" (default: the bug's declared strategy)`)
		fix    = flag.Bool("repair", false, "search for a fence repair and print the suggestion (docs/REPAIR.md)")
	)
	flag.Parse()

	if *list {
		for _, b := range modules.AllBugs() {
			fmt.Printf("%-28s [%s] %s%s\n", b.Switch, b.ID, b.Title, b.SoftTitle)
		}
		return
	}
	b, ok := modules.FindBug(*bug)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown bug switch %q (try -list)\n", *bug)
		os.Exit(2)
	}

	switches := []string{b.Switch}
	if *assist {
		const sw = "sbitmap:migration_assist"
		fmt.Fprintf(os.Stderr, "warning: -migration-assist is %s\n", modules.DeprecatedSwitches[sw])
		switches = append(switches, sw)
	}
	// An unset -strategy defers to the strategy the corpus entry declares,
	// so migration-gated bugs reproduce with no extra flags.
	strategy := *strat
	if strategy == "" {
		strategy = b.Strategy
	}
	if _, err := engine.ParseStrategy(strategy); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	f := core.NewFuzzer(core.Config{
		Modules:  []string{b.Module},
		Bugs:     modules.Bugs(switches...),
		Seed:     *seed,
		UseSeeds: true,
		Strategy: strategy,
		Repair:   *fix,
	})
	want := b.Title
	if want == "" {
		want = b.SoftTitle
	}
	if strategy != "" && strategy != "ooo" {
		fmt.Printf("strategy: %s\n", strategy)
	}
	fmt.Printf("reproducing %s (%s, %s, kernel %s)...\n", b.ID, b.Switch, b.Subsystem, b.KernelVersion)
	r := f.RunUntil(want, *budget)
	if r == nil {
		fmt.Printf("NOT reproduced within %d steps (%d hypothetical-barrier tests)\n", *budget, f.Stats.MTIs)
		if b.Note != "" {
			fmt.Printf("note: %s\n", b.Note)
		}
		os.Exit(1)
	}
	fmt.Println("reproduced:")
	fmt.Print(r.String())
	if *fix {
		if rr := f.RepairResult(want); rr != nil {
			fmt.Print(rr.Render())
		} else {
			fmt.Println("no fence repair found for this finding")
		}
	}
	_ = bench.BugRunResult{} // keep the bench harness linked for -h docs
}
