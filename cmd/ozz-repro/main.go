// Command ozz-repro reproduces a single corpus bug by its switch name and
// prints the full report: the crash title, the hypothetical-barrier
// location, the reordered access sites, and the triggering program —
// everything a developer needs to understand the out-of-order execution
// (§4.4).
//
// Usage:
//
//	ozz-repro -bug tls:sk_prot_wmb [-budget 200] [-seed 42]
//	ozz-repro -list
package main

import (
	"flag"
	"fmt"
	"os"

	"ozz/internal/bench"
	"ozz/internal/core"
	"ozz/internal/modules"
)

func main() {
	var (
		bug    = flag.String("bug", "", "bug switch to reproduce (see -list)")
		budget = flag.Int("budget", 200, "max fuzzer steps")
		seed   = flag.Int64("seed", 42, "campaign seed")
		list   = flag.Bool("list", false, "list bug switches and exit")
		assist = flag.Bool("migration-assist", false, "enable the sbitmap migration assist (§6.2)")
		fix    = flag.Bool("repair", false, "search for a fence repair and print the suggestion (docs/REPAIR.md)")
	)
	flag.Parse()

	if *list {
		for _, b := range modules.AllBugs() {
			fmt.Printf("%-28s [%s] %s%s\n", b.Switch, b.ID, b.Title, b.SoftTitle)
		}
		return
	}
	b, ok := modules.FindBug(*bug)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown bug switch %q (try -list)\n", *bug)
		os.Exit(2)
	}

	switches := []string{b.Switch}
	if *assist {
		switches = append(switches, "sbitmap:migration_assist")
	}
	f := core.NewFuzzer(core.Config{
		Modules:  []string{b.Module},
		Bugs:     modules.Bugs(switches...),
		Seed:     *seed,
		UseSeeds: true,
		Repair:   *fix,
	})
	want := b.Title
	if want == "" {
		want = b.SoftTitle
	}
	fmt.Printf("reproducing %s (%s, %s, kernel %s)...\n", b.ID, b.Switch, b.Subsystem, b.KernelVersion)
	r := f.RunUntil(want, *budget)
	if r == nil {
		fmt.Printf("NOT reproduced within %d steps (%d hypothetical-barrier tests)\n", *budget, f.Stats.MTIs)
		if b.Note != "" {
			fmt.Printf("note: %s\n", b.Note)
		}
		os.Exit(1)
	}
	fmt.Println("reproduced:")
	fmt.Print(r.String())
	if *fix {
		if rr := f.RepairResult(want); rr != nil {
			fmt.Print(rr.Render())
		} else {
			fmt.Println("no fence repair found for this finding")
		}
	}
	_ = bench.BugRunResult{} // keep the bench harness linked for -h docs
}
