// Command ozz-repair turns a crashing reproducer into a ranked,
// model-validated fence-repair suggestion: reproduce the bug (or pick a
// litmus shape), search barrier insertions and access strengthenings
// smallest-first, validate every candidate against the reference
// enumerator (legality) and the live engine (closure), and print the
// minimal patch — "insert smp_wmb between site A and site B" — annotated
// with the registered memory models it fixes.
//
// Usage:
//
//	ozz-repair -bug watchqueue:pipe_wmb [-budget 200] [-seed 42] [-json]
//	ozz-repair -litmus "MP+wmb only" [-model lkmm] [-json]
//	ozz-repair -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ozz/internal/core"
	"ozz/internal/lkmm"
	"ozz/internal/memmodel"
	"ozz/internal/modules"
	"ozz/internal/repair"
)

// reportDoc is the -json output document.
type reportDoc struct {
	// Mode is "bug" (in-vivo) or "litmus".
	Mode string `json:"mode"`
	// Target is the bug switch or suite entry name requested.
	Target string `json:"target"`
	// Title is the reproduced crash title (bug mode).
	Title string `json:"title,omitempty"`
	// Reproduced reports whether the bug reproduced (bug mode; litmus
	// shapes always "reproduce" by enumeration).
	Reproduced bool `json:"reproduced"`
	// Repair is the structured search result.
	Repair *repair.Result `json:"repair,omitempty"`
	// OK marks a non-empty validated suggestion list.
	OK bool `json:"ok"`
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("ozz-repair", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		bug       = fs.String("bug", "", "bug switch to reproduce and repair (see -list)")
		litmus    = fs.String("litmus", "", "litmus suite entry to repair instead of a live bug")
		list      = fs.Bool("list", false, "list bug switches and litmus suite entries, then exit")
		jsonOut   = fs.Bool("json", false, "emit the machine-readable report")
		budget    = fs.Int("budget", 200, "max fuzzer steps to reproduce the bug")
		seed      = fs.Int64("seed", 42, "campaign seed")
		modelName = fs.String("model", "lkmm", "primary memory model to validate against")
		maxFences = fs.Int("max-fences", 2, "largest candidate size searched")
		closure   = fs.Int("closure-seeds", 3, "engine seeds per in-vivo closure probe")
		workers   = fs.Int("workers", 1, "parallel candidate validations")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "bug switches:")
		for _, b := range modules.AllBugs() {
			fmt.Fprintf(stdout, "  %-28s [%s] %s%s\n", b.Switch, b.ID, b.Title, b.SoftTitle)
		}
		fmt.Fprintln(stdout, "litmus suite entries:")
		for _, e := range lkmm.Suite() {
			fmt.Fprintf(stdout, "  %-28s %s\n", e.Test.Name, e.Comment)
		}
		return 0
	}
	if (*bug == "") == (*litmus == "") {
		fmt.Fprintln(stdout, "exactly one of -bug or -litmus is required (try -list)")
		return 2
	}
	mm, err := memmodel.ByName(*modelName)
	if err != nil {
		fmt.Fprintf(stdout, "unknown model %q (have %v)\n", *modelName, memmodel.Names())
		return 2
	}
	opts := repair.Options{
		Model:     mm,
		MaxFences: *maxFences,
		Workers:   *workers,
		Seeds:     *closure,
	}

	doc := reportDoc{}
	if *litmus != "" {
		doc.Mode, doc.Target = "litmus", *litmus
		var test *lkmm.Test
		for _, e := range lkmm.Suite() {
			if e.Test.Name == *litmus {
				test = e.Test
				break
			}
		}
		if test == nil {
			fmt.Fprintf(stdout, "unknown litmus suite entry %q (try -list)\n", *litmus)
			return 2
		}
		doc.Reproduced = true
		doc.Repair = repair.Litmus(test, opts)
	} else {
		doc.Mode, doc.Target = "bug", *bug
		b, ok := modules.FindBug(*bug)
		if !ok {
			fmt.Fprintf(stdout, "unknown bug switch %q (try -list)\n", *bug)
			return 2
		}
		f := core.NewFuzzer(core.Config{
			Modules:  []string{b.Module},
			Bugs:     modules.Bugs(b.Switch),
			Seed:     *seed,
			UseSeeds: true,
			Model:    mm,
			Repair:   true,
		})
		want := b.Title
		if want == "" {
			want = b.SoftTitle
		}
		doc.Title = want
		r := f.RunUntil(want, *budget)
		if r == nil {
			if *jsonOut {
				emit(stdout, &doc)
			} else {
				fmt.Fprintf(stdout, "NOT reproduced within %d steps (%d hypothetical-barrier tests)\n",
					*budget, f.Stats.MTIs)
			}
			return 1
		}
		doc.Reproduced = true
		doc.Repair = f.RepairResult(want)
		if !*jsonOut {
			fmt.Fprint(stdout, r.String())
		}
	}
	doc.OK = doc.Repair != nil && len(doc.Repair.Suggestions) > 0

	if *jsonOut {
		emit(stdout, &doc)
	} else if doc.Repair != nil {
		fmt.Fprint(stdout, doc.Repair.Render())
	}
	if !doc.OK {
		return 1
	}
	return 0
}

func emit(w io.Writer, doc *reportDoc) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(w, "encoding report: %v\n", err)
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}
