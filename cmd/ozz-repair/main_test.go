package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// golden runs the CLI and compares its -json output against a committed
// golden (refresh with OZZ_UPDATE_GOLDEN=1).
func golden(t *testing.T, name string, args ...string) reportDoc {
	t.Helper()
	var buf bytes.Buffer
	if code := run(args, &buf); code != 0 {
		t.Fatalf("ozz-repair exited %d:\n%s", code, buf.String())
	}
	path := filepath.Join("testdata", name)
	if os.Getenv("OZZ_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with OZZ_UPDATE_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("JSON report drifted from golden (OZZ_UPDATE_GOLDEN=1 to refresh)\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
	var doc reportDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	return doc
}

// TestFig1Golden pins the acceptance path: the Fig. 1 S-S reproducer must
// yield a validated smp_wmb insertion between the two profiled stores,
// fixing lkmm and armv8 and unnecessary under tso.
func TestFig1Golden(t *testing.T) {
	doc := golden(t, "repair.pipe_wmb.golden.json", "-bug", "watchqueue:pipe_wmb", "-json")
	if !doc.Reproduced || !doc.OK || doc.Repair == nil {
		t.Fatalf("unexpected doc: %+v", doc)
	}
	top := doc.Repair.Suggestions[0]
	f := top.Fences[0]
	if f.Action != "insert" || f.Barrier != "smp_wmb" ||
		f.After != "post_one_notification:buf->ops=&ops" ||
		f.Before != "post_one_notification:head+=1" {
		t.Fatalf("top fence = %+v, want the Fig. 1 smp_wmb insertion", f)
	}
	verdicts := map[string]string{}
	for _, m := range top.Models {
		verdicts[m.Model] = m.Status
	}
	if verdicts["lkmm"] != "fixes" || verdicts["armv8"] != "fixes" || verdicts["tso"] != "unnecessary" {
		t.Fatalf("verdicts = %v", verdicts)
	}
}

// TestLoadBarrierGolden pins the litmus-mode load-barrier repair: the
// "MP+wmb only" shape must be fixed by a reader-side smp_rmb insertion.
func TestLoadBarrierGolden(t *testing.T) {
	doc := golden(t, "repair.mp_wmb_only.golden.json", "-litmus", "MP+wmb only", "-json")
	if !doc.OK || doc.Repair == nil {
		t.Fatalf("unexpected doc: %+v", doc)
	}
	f := doc.Repair.Suggestions[0].Fences[0]
	if f.Action != "insert" || f.Barrier != "smp_rmb" {
		t.Fatalf("top fence = %+v, want an smp_rmb insertion", f)
	}
}

// TestTextMode checks the human-readable rendering of both modes.
func TestTextMode(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-bug", "watchqueue:pipe_wmb"}, &buf); code != 0 {
		t.Fatalf("ozz-repair exited %d:\n%s", code, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"diagnosis:", "suggested fix:", "suggested fixes:",
		"insert smp_wmb between post_one_notification:buf->ops=&ops and post_one_notification:head+=1",
		"candidates:", "buggy outcomes:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output lacks %q:\n%s", want, out)
		}
	}
}

// TestUsageErrors pins the exit codes: 2 for usage problems, 1 when no
// repair comes out.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-bug", "x", "-litmus", "y"},
		{"-bug", "no:such_bug"},
		{"-litmus", "no such shape"},
		{"-model", "power", "-bug", "watchqueue:pipe_wmb"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if code := run(args, &buf); code != 2 {
			t.Errorf("run(%v) exited %d, want 2", args, code)
		}
	}
	// An already-correct litmus shape has nothing to repair: exit 1.
	var buf bytes.Buffer
	if code := run([]string{"-litmus", "MP+wmb+rmb"}, &buf); code != 1 {
		t.Errorf("correct shape exited %d, want 1:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "nothing to repair") {
		t.Errorf("missing nothing-to-repair notice:\n%s", buf.String())
	}
}

// TestListMode covers -list.
func TestListMode(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-list"}, &buf); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, want := range []string{"watchqueue:pipe_wmb", "MP+wmb only"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("-list output lacks %q", want)
		}
	}
}
