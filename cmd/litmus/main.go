// Command litmus runs the LKMM litmus-test suite against OEMU and prints
// the observable outcomes of each shape — the §3.3/§10.1 compliance
// evidence. "allowed" outcomes must be reachable (OEMU can emulate the weak
// behaviour); "forbidden" outcomes must never appear (OEMU never reorders
// across a real barrier or against coherence).
package main

import (
	"fmt"
	"os"

	"ozz/internal/lkmm"
)

type suiteEntry struct {
	test      *lkmm.Test
	allowed   []lkmm.Outcome // must be observable
	forbidden []lkmm.Outcome // must not be observable
	comment   string
}

func suite() []suiteEntry {
	mp := func(name string, b0, b1 []lkmm.Op) *lkmm.Test {
		t0 := append([]lkmm.Op{lkmm.W(0, 1)}, b0...)
		t0 = append(t0, lkmm.W(1, 1))
		t1 := append([]lkmm.Op{lkmm.R(1, 0)}, b1...)
		t1 = append(t1, lkmm.R(0, 1))
		return &lkmm.Test{Name: name, Threads: [][]lkmm.Op{t0, t1}, NumLocs: 2, NumRegs: 2}
	}
	return []suiteEntry{
		{
			test:    mp("MP (relaxed)", nil, nil),
			allowed: []lkmm.Outcome{"r0=1;r1=0"},
			comment: "no barriers: the stale observation is allowed and OEMU reaches it",
		},
		{
			test:      mp("MP+wmb+rmb", []lkmm.Op{lkmm.Wmb()}, []lkmm.Op{lkmm.Rmb()}),
			forbidden: []lkmm.Outcome{"r0=1;r1=0"},
			comment:   "the Fig. 1 pair: both barriers forbid the stale observation (LKMM cases 2+3)",
		},
		{
			test:    mp("MP+wmb only", []lkmm.Op{lkmm.Wmb()}, nil),
			allowed: []lkmm.Outcome{"r0=1;r1=0"},
			comment: "writer ordered, reader not: still weak — why Fig. 1 needs BOTH barriers",
		},
		{
			test:      mp("MP+mb+mb", []lkmm.Op{lkmm.Mb()}, []lkmm.Op{lkmm.Mb()}),
			forbidden: []lkmm.Outcome{"r0=1;r1=0"},
			comment:   "full barriers (LKMM case 1)",
		},
		{
			test: &lkmm.Test{Name: "MP+rel+acq", Threads: [][]lkmm.Op{
				{lkmm.W(0, 1), lkmm.WRel(1, 1)},
				{lkmm.RAcq(1, 0), lkmm.R(0, 1)},
			}, NumLocs: 2, NumRegs: 2},
			forbidden: []lkmm.Outcome{"r0=1;r1=0"},
			comment:   "smp_store_release / smp_load_acquire (LKMM cases 4+5)",
		},
		{
			test: &lkmm.Test{Name: "SB (relaxed)", Threads: [][]lkmm.Op{
				{lkmm.WOnce(0, 1), lkmm.ROnce(1, 0)},
				{lkmm.WOnce(1, 1), lkmm.ROnce(0, 1)},
			}, NumLocs: 2, NumRegs: 2},
			allowed: []lkmm.Outcome{"r0=0;r1=0"},
			comment: "store buffering with Relaxed atomics: the Fig. 10 Rust example's shape",
		},
		{
			test: &lkmm.Test{Name: "SB+mb", Threads: [][]lkmm.Op{
				{lkmm.W(0, 1), lkmm.Mb(), lkmm.R(1, 0)},
				{lkmm.W(1, 1), lkmm.Mb(), lkmm.R(0, 1)},
			}, NumLocs: 2, NumRegs: 2},
			forbidden: []lkmm.Outcome{"r0=0;r1=0"},
			comment:   "only smp_mb orders store-load",
		},
		{
			test: &lkmm.Test{Name: "LB", Threads: [][]lkmm.Op{
				{lkmm.R(1, 0), lkmm.W(0, 1)},
				{lkmm.R(0, 1), lkmm.W(1, 1)},
			}, NumLocs: 2, NumRegs: 2},
			forbidden: []lkmm.Outcome{"r0=1;r1=1"},
			comment:   "load buffering needs load-store reordering: out of OEMU's scope by design (§3)",
		},
		{
			test: &lkmm.Test{Name: "CoRR", Threads: [][]lkmm.Op{
				{lkmm.W(0, 1)},
				{lkmm.R(0, 0), lkmm.R(0, 1)},
			}, NumLocs: 1, NumRegs: 2},
			forbidden: []lkmm.Outcome{"r0=1;r1=0"},
			comment:   "per-location read-read coherence holds on every architecture (even Alpha)",
		},
	}
}

func main() {
	fail := false
	for _, e := range suite() {
		res := lkmm.Run(e.test)
		status := "ok"
		for _, o := range e.allowed {
			if !res.Has(o) {
				status = fmt.Sprintf("FAIL: allowed outcome %s unreachable", o)
				fail = true
			}
		}
		for _, o := range e.forbidden {
			if res.Has(o) {
				status = fmt.Sprintf("FAIL: forbidden outcome %s observed", o)
				fail = true
			}
		}
		fmt.Printf("%-16s %-60s [%s]\n", e.test.Name, e.comment, status)
		fmt.Printf("  outcomes (%d runs): %v\n", res.Runs, res.Sorted())
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("\nall litmus shapes comply with the LKMM")
}
