// Command litmus is the memory-model compliance and differential-testing
// front end. It replays the named litmus suite (internal/lkmm.Suite)
// through BOTH engines — OEMU driven in-vivo (internal/lkmm) and the
// executable reference enumerator (internal/lkmm/model) — under one
// memory model selected by -model (lkmm, tso, armv8), asserting exact
// outcome-set equality plus the per-entry allowed/forbidden verdicts for
// that model, and optionally cross-checks N property-based-generated
// random shapes (-gen) with deterministic seed replay (-seed) and
// shrinking to a minimal counterexample. Any divergence or verdict
// violation exits nonzero.
//
// Usage:
//
//	litmus [-model lkmm|tso|armv8] [-json] [-gen N] [-seed S] [-v]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ozz/internal/lkmm/diff"
	"ozz/internal/memmodel"
)

// suiteReport is the JSON record for one named suite entry.
type suiteReport struct {
	Name        string   `json:"name"`
	Comment     string   `json:"comment"`
	Cases       []int    `json:"ppo_cases,omitempty"`
	OEMU        []string `json:"oemu_outcomes"`
	Model       []string `json:"model_outcomes"`
	Runs        int      `json:"oemu_runs"`
	States      int      `json:"model_states"`
	Status      string   `json:"status"`
	VerdictErrs []string `json:"verdict_errors,omitempty"`
	OEMUOnly    []string `json:"soundness_violations,omitempty"`
	ModelOnly   []string `json:"completeness_violations,omitempty"`
}

// genReport is the JSON record for the property-based sweep.
type genReport struct {
	Seed        uint64       `json:"seed"`
	Shapes      int          `json:"shapes"`
	Divergences []genFailure `json:"divergences,omitempty"`
}

type genFailure struct {
	Index     int      `json:"index"`
	Shape     string   `json:"shape"`
	OEMUOnly  []string `json:"soundness_violations,omitempty"`
	ModelOnly []string `json:"completeness_violations,omitempty"`
	Shrunk    string   `json:"shrunk_shape"`
}

// report is the top-level JSON document.
type report struct {
	Model string        `json:"model"`
	Suite []suiteReport `json:"suite"`
	Gen   *genReport    `json:"gen,omitempty"`
	OK    bool          `json:"ok"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// run executes the tool and returns the process exit code; factored out
// of main so the golden test can drive it in-process.
func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("litmus", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON report")
	gen := fs.Int("gen", 0, "cross-check N generated random shapes after the suite")
	seed := fs.Uint64("seed", 1, "generation seed; failures replay from (seed, index)")
	verbose := fs.Bool("v", false, "print per-entry state-space sizes")
	modelName := fs.String("model", "lkmm",
		fmt.Sprintf("memory model to check under %v", memmodel.Names()))
	if err := fs.Parse(args); err != nil {
		return 2
	}
	mm, err := memmodel.ByName(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	rep := report{Model: mm.Name(), OK: true}
	for _, r := range diff.CheckSuiteModel(mm) {
		sr := suiteReport{
			Name:        r.Entry.Test.Name,
			Comment:     r.Entry.Comment,
			Cases:       r.Entry.Cases,
			OEMU:        r.OEMU,
			Model:       r.Model,
			VerdictErrs: r.VerdictErrs,
			Runs:        r.Runs,
			States:      r.States,
			Status:      "ok",
		}
		if r.Div != nil {
			sr.OEMUOnly = r.Div.OEMUOnly
			sr.ModelOnly = r.Div.ModelOnly
		}
		if !r.OK() {
			sr.Status = "FAIL"
			rep.OK = false
		}
		rep.Suite = append(rep.Suite, sr)
	}
	if *gen > 0 {
		g := &genReport{Seed: *seed, Shapes: *gen}
		for _, f := range diff.CrossCheckModel(*seed, *gen, mm) {
			g.Divergences = append(g.Divergences, genFailure{
				Index:     f.Index,
				Shape:     diff.Format(f.Div.Test),
				OEMUOnly:  f.Div.OEMUOnly,
				ModelOnly: f.Div.ModelOnly,
				Shrunk:    diff.Format(f.ShrunkDiv.Test),
			})
			rep.OK = false
		}
		rep.Gen = g
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		renderText(stdout, &rep, *verbose)
	}
	if !rep.OK {
		return 1
	}
	return 0
}

func renderText(w io.Writer, rep *report, verbose bool) {
	for _, sr := range rep.Suite {
		status := sr.Status
		for _, e := range sr.VerdictErrs {
			status = "FAIL: " + e
		}
		if len(sr.OEMUOnly) > 0 {
			status = fmt.Sprintf("FAIL: soundness broken, OEMU-only outcomes %v", sr.OEMUOnly)
		}
		if len(sr.ModelOnly) > 0 {
			status = fmt.Sprintf("FAIL: completeness broken, model-only outcomes %v", sr.ModelOnly)
		}
		fmt.Fprintf(w, "%-16s %-60s [%s]\n", sr.Name, sr.Comment, status)
		if verbose {
			fmt.Fprintf(w, "  outcomes (%d OEMU runs, %d model states): %v\n",
				sr.Runs, sr.States, sr.OEMU)
		} else {
			fmt.Fprintf(w, "  outcomes (%d runs): %v\n", sr.Runs, sr.OEMU)
		}
	}
	if rep.Gen != nil {
		fmt.Fprintf(w, "\ncross-checked %d generated shapes (seed=%#x): %d divergences\n",
			rep.Gen.Shapes, rep.Gen.Seed, len(rep.Gen.Divergences))
		for _, f := range rep.Gen.Divergences {
			fmt.Fprintf(w, "  shape %d diverged (replay: -gen %d -seed %d):\n%s  shrunk:\n%s",
				f.Index, f.Index+1, rep.Gen.Seed, f.Shape, f.Shrunk)
		}
	}
	if rep.OK {
		fmt.Fprintf(w, "\nall litmus shapes agree between OEMU and the reference model under %s\n", rep.Model)
	}
}
