package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ozz/internal/memmodel"
)

// TestJSONGolden pins the -json report shape, once per registered memory
// model. Both engines are deterministic (sorted outcome sets, fixed
// enumeration sizes, seeded generation), so each document is byte-stable.
// Refresh with OZZ_UPDATE_GOLDEN=1 after an intentional suite, model, or
// format change.
func TestJSONGolden(t *testing.T) {
	for _, model := range memmodel.Names() {
		t.Run(model, func(t *testing.T) {
			var buf bytes.Buffer
			if code := run([]string{"-model", model, "-json", "-gen", "25", "-seed", "1"}, &buf); code != 0 {
				t.Fatalf("litmus exited %d:\n%s", code, buf.String())
			}
			golden := filepath.Join("testdata", "report."+model+".golden.json")
			if os.Getenv("OZZ_UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with OZZ_UPDATE_GOLDEN=1 to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("JSON report drifted from golden (OZZ_UPDATE_GOLDEN=1 to refresh)\ngot:\n%s\nwant:\n%s",
					buf.Bytes(), want)
			}
		})
	}
}

// TestModelFlagRejectsUnknown: an unregistered model name is a usage
// error (exit 2), not a divergence.
func TestModelFlagRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-model", "power"}, &buf); code != 2 {
		t.Fatalf("unknown model exited %d, want 2", code)
	}
}

// TestJSONWellFormed: the report decodes and covers the whole suite.
func TestJSONWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-json"}, &buf); code != 0 {
		t.Fatalf("litmus exited %d:\n%s", code, buf.String())
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if !rep.OK || len(rep.Suite) == 0 {
		t.Fatalf("unexpected report: ok=%v entries=%d", rep.OK, len(rep.Suite))
	}
	for _, sr := range rep.Suite {
		if sr.Status != "ok" {
			t.Errorf("%s: %s %v", sr.Name, sr.Status, sr.VerdictErrs)
		}
	}
}

// TestTextModeGreen: the human-readable path succeeds end to end.
func TestTextModeGreen(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-gen", "10", "-seed", "7", "-v"}, &buf); code != 0 {
		t.Fatalf("litmus exited %d:\n%s", code, buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte("0 divergences")) {
		t.Fatalf("missing cross-check summary:\n%s", buf.String())
	}
}

// TestBadFlagExitCode: usage errors exit 2, distinct from the
// divergence exit 1 CI keys on.
func TestBadFlagExitCode(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &buf); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}
