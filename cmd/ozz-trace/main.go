// Command ozz-trace is the developer lens on OZZ's first two phases: it
// runs a program single-threaded with profiling (§4.2), dumps each call's
// memory-access five-tuples and barrier three-tuples with symbolic site
// names, and prints the scheduling hints Algorithm 1 derives for a chosen
// call pair — the exact inputs the MTI executor would consume.
//
// Usage:
//
//	ozz-trace -modules watchqueue -prog prog.txt [-pair 1,2] [-bugs sw1,sw2]
//
// The program file uses the corpus text form, e.g.:
//
//	r0 = wq_create()
//	wq_post_notification(r0, 0x4)
//	wq_pipe_read(r0)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ozz/internal/core"
	"ozz/internal/hints"
	"ozz/internal/modules"
	"ozz/internal/trace"
)

func main() {
	var (
		mods = flag.String("modules", "", "comma-separated modules (default: all)")
		bugs = flag.String("bugs", "", "bug switches to enable")
		prog = flag.String("prog", "", "program file (default: the module's first seed)")
		pair = flag.String("pair", "", `call pair to compute hints for, e.g. "1,2" (default: all pairs)`)
	)
	flag.Parse()

	var modList []string
	if *mods != "" {
		modList = strings.Split(*mods, ",")
	}
	var bugSet modules.BugSet
	if *bugs != "" {
		bugSet = modules.Bugs(strings.Split(*bugs, ",")...)
	}
	target := modules.Target(modList...)

	src := ""
	if *prog != "" {
		data, err := os.ReadFile(*prog)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src = string(data)
	} else {
		seeds := modules.Seeds(modList...)
		if len(seeds) == 0 {
			fmt.Fprintln(os.Stderr, "no seeds; pass -prog")
			os.Exit(1)
		}
		src = seeds[0]
	}
	p, err := target.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	env := core.NewEnv(modList, bugSet)
	sti := env.RunSTI(p)
	fmt.Println("program:")
	for _, line := range strings.Split(strings.TrimRight(p.String(), "\n"), "\n") {
		fmt.Println("  " + line)
	}
	if sti.Crash != nil {
		fmt.Printf("sequential crash: %s\n", sti.Crash.Title)
		return
	}
	for ci, events := range sti.CallEvents {
		fmt.Printf("\ncall %d: %s -> %d (%d events)\n", ci, p.Calls[ci].Def.Name,
			int64(sti.Returns[ci]), len(events))
		for _, e := range events {
			if e.Barrier {
				implicit := ""
				if e.Bar.Implicit {
					implicit = " (implicit)"
				}
				fmt.Printf("  %-10s t=%-5d %s%s\n", e.Bar.Kind, e.Bar.Time,
					modules.SiteName(e.Bar.Instr), implicit)
				continue
			}
			fmt.Printf("  %-10s t=%-5d addr=0x%-8x %-8s %s\n",
				e.Acc.Kind, e.Acc.Time, uint64(e.Acc.Addr), e.Acc.Atomic,
				modules.SiteName(e.Acc.Instr))
		}
	}

	pairs := [][2]int{}
	if *pair != "" {
		var i, j int
		if _, err := fmt.Sscanf(*pair, "%d,%d", &i, &j); err != nil {
			fmt.Fprintln(os.Stderr, "bad -pair")
			os.Exit(2)
		}
		pairs = append(pairs, [2]int{i, j})
	} else {
		for i := 0; i < len(p.Calls); i++ {
			for j := i + 1; j < len(p.Calls); j++ {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	for _, pr := range pairs {
		i, j := pr[0], pr[1]
		if i < 0 || j >= len(p.Calls) || i >= j {
			continue
		}
		hs := hints.Calculate(sti.CallEvents[i], sti.CallEvents[j])
		if len(hs) == 0 {
			continue
		}
		fmt.Printf("\nhints for (%s, %s): %d\n", p.Calls[i].Def.Name, p.Calls[j].Def.Name, len(hs))
		for rank, h := range hs {
			who := p.Calls[i].Def.Name
			if h.Reorderer == 1 {
				who = p.Calls[j].Def.Name
			}
			names := make([]string, len(h.Reorder))
			for k, s := range h.Reorder {
				names[k] = modules.SiteName(s)
			}
			fmt.Printf("  #%d [%s %s] reorderer=%s sched=%s\n      reorder: %s\n",
				rank+1, h.Type(), h.Test, who, modules.SiteName(h.Sched),
				strings.Join(names, "; "))
		}
	}
	_ = trace.NoInstr
}
