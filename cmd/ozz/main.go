// Command ozz runs an OZZ fuzzing campaign against the simulated kernel's
// bug corpus and prints every finding as a syzkaller-style report with the
// hypothetical-barrier location (§4.4).
//
// Usage:
//
//	ozz [-modules tls,xsk] [-bugs all|sw1,sw2] [-steps 500] [-seed 1] [-workers 4] [-strategy migration] [-v]
//	ozz -duration 30s -metrics-addr 127.0.0.1:9911 -events events.jsonl
//	ozz -mode manager -listen 127.0.0.1:9900 -steps 600 -shard-steps 20
//	ozz -mode worker -manager http://127.0.0.1:9900
//
// With -bugs all (the default), every Table 3/Table 4 bug switch is active —
// the fuzzer hunts the whole corpus. With -bugs "" the kernel is fully
// fixed and a clean campaign is expected to find nothing. Deprecated
// switches (modules.DeprecatedSwitches) are excluded from "all" and warn
// when requested explicitly.
//
// -strategy selects the engine strategy reordering tests run under
// (standalone mode only): "ooo" (default), "migration" (real cross-CPU
// moves at scheduling points for migration-annotated hints — what
// reproduces Table 4 #6 organically), or "deferred" (interrupt handlers
// spawned as schedulable tasks at deferral points). See docs/SCHEDULING.md.
//
// The campaign runs on the parallel Pool executor at -workers width. The
// step sequence is deterministic in the campaign seed, so any worker count
// produces the same findings, coverage, and corpus — only faster.
//
// Modes (see internal/dist): the default "standalone" runs the whole
// campaign in-process exactly as before. "manager" owns the campaign —
// shard plan, global corpus, global crash dedup — and serves the fabric
// API (plus /metrics) on -listen; it runs no programs itself. "worker"
// leases shards from -manager, runs them locally, and syncs corpus deltas
// and findings back. Shards are deterministic in the campaign seed, so a
// 1-manager/N-worker campaign finds the same deduplicated crash titles as
// a standalone campaign over the same shard plan.
//
// On SIGINT/SIGTERM every mode shuts down gracefully: standalone finishes
// its current step slice, prints the summary, and persists -corpus-out; a
// worker flushes findings and corpus to the manager with a final
// deregistering sync; the manager persists its merged global state. The
// event log is flushed and closed on every exit path.
//
// Observability (see docs/OBSERVABILITY.md): -metrics-addr serves the
// campaign's metric registry in Prometheus text format on /metrics (plus
// net/http/pprof on /debug/pprof/); -events appends one JSON object per
// campaign event to the given file; -duration switches from a fixed step
// count to a wall-clock budget.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ozz/internal/core"
	"ozz/internal/dist"
	"ozz/internal/engine"
	"ozz/internal/memmodel"
	"ozz/internal/modules"
	"ozz/internal/obs"
	"ozz/internal/report"
)

func main() {
	var (
		mode      = flag.String("mode", "standalone", `campaign mode: "standalone", "manager", or "worker"`)
		mods      = flag.String("modules", "", "comma-separated modules to load (default: all)")
		bugs      = flag.String("bugs", "all", `bug switches to enable: "all", "" (none), or a comma list`)
		steps     = flag.Int("steps", 300, "fuzzer iterations (manager: total across all shards)")
		seed      = flag.Int64("seed", 1, "campaign seed")
		workers   = flag.Int("workers", 1, "parallel campaign workers (0 or negative = GOMAXPROCS)")
		v         = flag.Bool("v", false, "print per-step progress and campaign metrics")
		list      = flag.Bool("list", false, "list modules and bug switches, then exit")
		corpusIn  = flag.String("corpus-in", "", "file with a previously exported corpus to resume from")
		corpusOut = flag.String("corpus-out", "", "file to export the coverage corpus to at exit")
		model     = flag.String("model", "lkmm", "memory model OEMU emulates: "+strings.Join(memmodel.Names(), ", "))
		strategy  = flag.String("strategy", "ooo", `engine strategy for reordering tests: "ooo", "migration", or "deferred" (standalone mode only)`)

		duration    = flag.Duration("duration", 0, "wall-clock campaign budget; when > 0 it replaces -steps")
		metricsAddr = flag.String("metrics-addr", "", `serve /metrics and /debug/pprof/ on this address (e.g. "127.0.0.1:9911"; ":0" picks a free port)`)
		eventsPath  = flag.String("events", "", "append campaign events as JSON lines to this file")

		listen     = flag.String("listen", "127.0.0.1:9900", "manager: address serving the fabric API and /metrics")
		managerURL = flag.String("manager", "http://127.0.0.1:9900", "worker: manager base URL")
		name       = flag.String("name", "", "worker: name reported to the manager (default hostname:pid)")
		shardSteps = flag.Int("shard-steps", 64, "manager: steps per work lease")
		leaseTTL   = flag.Duration("lease-ttl", 5*time.Second, "manager: lease time-to-live without renewal")
		heartbeat  = flag.Duration("heartbeat", time.Second, "manager: heartbeat cadence expected from workers")

		stateDir = flag.String("state-dir", "", "manager: directory for durable campaign state (snapshots + write-ahead logs); enables crash-restart resume")
		exportTo = flag.String("export", "", "manager: write the selected -campaign's snapshot to this file and exit")
		importAt = flag.String("import", "", "manager: import a campaign snapshot from this file before serving")
		campName = flag.String("campaign", "", "worker: campaign to join; manager: campaign addressed by -export (default: the default campaign)")
		token    = flag.String("token", "", "campaign auth token (manager: guards the default and imported campaigns; worker: sent with every request)")
	)
	var addCampaigns []string
	flag.Func("add-campaign", "manager: host an extra campaign, NAME:STEPS:SEED[:TOKEN] (repeatable; inherits -modules/-bugs/-model)", func(s string) error {
		addCampaigns = append(addCampaigns, s)
		return nil
	})
	flag.Parse()

	if *list {
		fmt.Println("modules:")
		for _, m := range modules.All() {
			fmt.Printf("  %-12s %d syscalls, %d bugs\n", m.Name, len(m.Defs), len(m.Bugs))
		}
		fmt.Println("bug switches:")
		for _, b := range modules.AllBugs() {
			fmt.Printf("  %-28s %-6s table=%d  %s\n", b.Switch, b.Type, b.Table, b.Title+b.SoftTitle)
		}
		return
	}

	var modList []string
	if *mods != "" {
		modList = strings.Split(*mods, ",")
	}
	var bugNames []string
	switch *bugs {
	case "all":
		for _, b := range modules.AllBugs() {
			if _, deprecated := modules.DeprecatedSwitches[b.Switch]; deprecated {
				continue
			}
			bugNames = append(bugNames, b.Switch)
		}
	case "":
	default:
		bugNames = strings.Split(*bugs, ",")
		for _, sw := range bugNames {
			if why, deprecated := modules.DeprecatedSwitches[sw]; deprecated {
				fmt.Fprintf(os.Stderr, "warning: bug switch %q is deprecated: %s\n", sw, why)
			}
		}
	}
	bugSet := modules.Bugs(bugNames...)

	if _, err := engine.ParseStrategy(*strategy); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *strategy != "" && *strategy != "ooo" && *mode != "standalone" {
		fmt.Fprintf(os.Stderr, "-strategy %s is only supported in standalone mode\n", *strategy)
		os.Exit(1)
	}

	mm, err := memmodel.ByName(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Observability plumbing: one registry and one event log for the whole
	// campaign, wired into the Pool via its Config. Both are purely
	// observational — enabling them never changes campaign results.
	reg := obs.NewRegistry()
	var events *obs.EventLog
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "events: %v\n", err)
			os.Exit(1)
		}
		events = obs.NewEventLog(f, obs.LevelInfo)
	}
	// Every exit path (including os.Exit-free signal shutdowns) flushes
	// the event log via this close; fatal() below closes it explicitly
	// because os.Exit skips defers.
	defer events.Close()
	if *metricsAddr != "" {
		bound, stop, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fatal(events, "metrics-addr: %v", err)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", bound)
	}

	// SIGINT/SIGTERM cancel ctx; every mode treats cancellation as a
	// graceful wind-down, not an abort.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	switch *mode {
	case "standalone":
		runStandalone(ctx, standaloneConfig{
			modList: modList, bugSet: bugSet, seed: *seed, workers: *workers,
			steps: *steps, duration: *duration, verbose: *v,
			corpusIn: *corpusIn, corpusOut: *corpusOut, model: mm,
			strategy: *strategy, reg: reg, events: events,
		})
	case "manager":
		runManager(ctx, dist.ManagerConfig{
			Campaign: dist.CampaignSpec{
				Modules: modList, Bugs: bugNames, UseSeeds: true,
				Model: mm.Name(),
			},
			TotalSteps: *steps, ShardSteps: *shardSteps, Seed: *seed,
			LeaseTTL: *leaseTTL, HeartbeatEvery: *heartbeat,
			Token: *token, StateDir: *stateDir,
			Obs: reg, Events: events,
		}, managerOpts{
			listen: *listen, corpusOut: *corpusOut,
			exportTo: *exportTo, importFrom: *importAt,
			campaign: *campName, token: *token, add: addCampaigns,
		}, events)
	case "worker":
		runWorker(ctx, dist.WorkerConfig{
			ManagerURL: *managerURL, Name: workerName(*name),
			Campaign: *campName, Token: *token,
			PoolWorkers: *workers, Obs: reg, Events: events,
		}, *corpusOut, events)
	default:
		fatal(events, "unknown -mode %q (want standalone, manager, or worker)", *mode)
	}
}

// fatal flushes the event log (os.Exit skips defers) and exits non-zero.
func fatal(events *obs.EventLog, format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	events.Close()
	os.Exit(1)
}

// workerName resolves the worker's advertised name.
func workerName(flagName string) string {
	if flagName != "" {
		return flagName
	}
	host, _ := os.Hostname()
	return fmt.Sprintf("%s:%d", host, os.Getpid())
}

// standaloneConfig bundles the flags the standalone campaign consumes.
type standaloneConfig struct {
	modList   []string
	bugSet    modules.BugSet
	seed      int64
	workers   int
	steps     int
	duration  time.Duration
	verbose   bool
	corpusIn  string
	corpusOut string
	model     *memmodel.Table
	strategy  string
	reg       *obs.Registry
	events    *obs.EventLog
}

// runStandalone is the classic single-process campaign: the whole step
// budget on one Pool, findings printed as they appear. A shutdown signal
// ends the campaign at the next slice boundary with the summary and
// corpus export intact.
func runStandalone(ctx context.Context, cfg standaloneConfig) {
	// Every worker count runs on the Pool executor — the campaign's step
	// sequence is a function of the seed alone, so -workers only changes
	// wall-clock time, never the output.
	p := core.NewPool(core.Config{
		Modules:  cfg.modList,
		Bugs:     cfg.bugSet,
		Seed:     cfg.seed,
		UseSeeds: true,
		Model:    cfg.model,
		Strategy: cfg.strategy,
		Obs:      cfg.reg,
		Events:   cfg.events,
	}, cfg.workers)
	if cfg.corpusIn != "" {
		in, err := os.Open(cfg.corpusIn)
		if err != nil {
			fatal(cfg.events, "corpus-in: %v", err)
		}
		n, err := p.ReadCorpus(in)
		in.Close()
		switch {
		case err != nil && n > 0:
			// Partial import (truncated or corrupted tail): keep what
			// decoded cleanly and say so, rather than discarding a mostly
			// good corpus.
			fmt.Fprintf(os.Stderr, "corpus-in: partial import, kept %d programs: %v\n", n, err)
		case err != nil:
			fatal(cfg.events, "corpus-in: %v", err)
		default:
			fmt.Fprintf(os.Stderr, "imported %d corpus programs\n", n)
		}
	}
	if cfg.verbose {
		fmt.Fprintf(os.Stderr, "campaign: %d workers\n", p.Workers)
	}
	cfg.events.Info(0, "campaign_start", map[string]any{
		"seed": cfg.seed, "workers": p.Workers, "steps": cfg.steps, "duration": cfg.duration.String(),
	})
	progress := func(done int) {
		s := p.Stats()
		fmt.Fprintf(os.Stderr, "step %d: %d STIs, %d MTIs, %d hints, cov %d edges, %d crash titles\n",
			done, s.STIs, s.MTIs, s.Hints, p.CoverageEdges(), p.Reports.Len())
	}
	if cfg.duration > 0 {
		// Wall-clock mode: run in short slices so findings stream out and
		// -v progress stays live, stopping once the budget is spent.
		deadline := time.Now().Add(cfg.duration)
		for time.Now().Before(deadline) && ctx.Err() == nil {
			slice := time.Until(deadline)
			if slice > 2*time.Second {
				slice = 2 * time.Second
			}
			printFindings(p.RunFor(slice))
			if cfg.verbose {
				progress(int(p.Stats().Steps))
			}
		}
	} else {
		const chunk = 64
		for done := 0; done < cfg.steps && ctx.Err() == nil; {
			n := chunk
			if cfg.steps-done < n {
				n = cfg.steps - done
			}
			printFindings(p.Run(n))
			done += n
			if cfg.verbose && done < cfg.steps {
				progress(done)
			}
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "interrupted: finishing up")
	}
	stats := p.Stats()
	cfg.events.Info(0, "campaign_end", map[string]any{
		"steps": stats.Steps, "stis": stats.STIs, "mtis": stats.MTIs,
		"hints": stats.Hints, "cov_edges": p.CoverageEdges(), "reports": p.Reports.Len(),
	})
	printSummary(stats, p.CoverageEdges(), p.Reports.All(), cfg.verbose)
	if cfg.corpusOut != "" {
		writeCorpusFile(cfg.corpusOut, p.WriteCorpus, cfg.events)
	}
}

// managerOpts bundles the manager-mode command-line options beyond the
// fabric configuration itself.
type managerOpts struct {
	listen     string
	corpusOut  string
	exportTo   string   // -export: snapshot file to write, then exit
	importFrom string   // -import: snapshot file to seed state from
	campaign   string   // -campaign: target of -export
	token      string   // -token: guards the default and imported campaigns
	add        []string // -add-campaign specs, NAME:STEPS:SEED[:TOKEN]
}

// parseAddCampaign parses one -add-campaign spec. The extra campaign
// inherits the default campaign's spec (modules, bugs, model) and the
// manager's -shard-steps, with its own step budget, seed, and optional
// token.
func parseAddCampaign(s string, base dist.CampaignSpec, shardSteps int) (string, dist.CampaignConfig, error) {
	parts := strings.SplitN(s, ":", 4)
	if len(parts) < 3 {
		return "", dist.CampaignConfig{}, fmt.Errorf("want NAME:STEPS:SEED[:TOKEN], got %q", s)
	}
	steps, err := strconv.Atoi(parts[1])
	if err != nil || steps <= 0 {
		return "", dist.CampaignConfig{}, fmt.Errorf("bad STEPS in %q", s)
	}
	seed, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return "", dist.CampaignConfig{}, fmt.Errorf("bad SEED in %q", s)
	}
	cfg := dist.CampaignConfig{Campaign: base, TotalSteps: steps, ShardSteps: shardSteps, Seed: seed}
	if len(parts) == 4 {
		cfg.Token = parts[3]
	}
	return parts[0], cfg, nil
}

// runManager serves the fabric API until every hosted campaign completes
// (or a signal arrives), then lingers briefly so connected workers can
// learn the campaign is done and deregister, and finally prints the
// merged global findings and persists the merged corpus. With -export it
// instead writes the selected campaign's snapshot and exits; with
// -import it seeds state from a snapshot file before serving.
func runManager(ctx context.Context, cfg dist.ManagerConfig, opt managerOpts, events *obs.EventLog) {
	m, err := dist.NewManager(cfg)
	if err != nil {
		fatal(events, "manager: %v", err)
	}
	for _, spec := range opt.add {
		name, ccfg, err := parseAddCampaign(spec, cfg.Campaign, cfg.ShardSteps)
		if err != nil {
			fatal(events, "add-campaign: %v", err)
		}
		if err := m.AddCampaign(name, ccfg); err != nil {
			fatal(events, "add-campaign: %v", err)
		}
	}
	if opt.importFrom != "" {
		f, err := os.Open(opt.importFrom)
		if err != nil {
			fatal(events, "import: %v", err)
		}
		name, err := m.ImportCampaign(f, opt.token)
		f.Close()
		if err != nil {
			fatal(events, "import: %v", err)
		}
		fmt.Fprintf(os.Stderr, "manager: imported campaign %q from %s\n", name, opt.importFrom)
	}
	if opt.exportTo != "" {
		name := opt.campaign
		if name == "" {
			name = dist.DefaultCampaign
		}
		out, err := os.Create(opt.exportTo)
		if err != nil {
			fatal(events, "export: %v", err)
		}
		if err := m.ExportCampaign(name, out); err != nil {
			out.Close()
			fatal(events, "export: %v", err)
		}
		if err := out.Close(); err != nil {
			fatal(events, "export: %v", err)
		}
		_ = m.Close()
		fmt.Printf("exported campaign %q to %s\n", name, opt.exportTo)
		return
	}
	ln, err := net.Listen("tcp", opt.listen)
	if err != nil {
		fatal(events, "listen: %v", err)
	}
	srv := &http.Server{Handler: m.Handler()}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "manager: fabric API + /metrics on http://%s\n", ln.Addr())

	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
wait:
	for !m.AllDone() {
		select {
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr, "interrupted: finishing up")
			break wait
		case <-tick.C:
		}
	}
	// Let workers observe Done (or the shutdown) and flush their final
	// syncs before the listener goes away.
	linger := time.Now().Add(10 * time.Second)
	for m.WorkersConnected() > 0 && time.Now().Before(linger) {
		time.Sleep(100 * time.Millisecond)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutCtx)
	_ = m.Close()

	all := m.Reports()
	printFindings(all)
	fmt.Printf("\nmanager done: %d/%d shards, %d workers peak-registered, %d corpus programs\n",
		m.ShardsCompleted(), m.ShardsTotal(), m.WorkersSeen(), m.CorpusLen())
	fmt.Printf("findings: %d unique crash titles\n", len(all))
	if opt.corpusOut != "" {
		writeCorpusFile(opt.corpusOut, m.WriteCorpus, events)
	}
}

// runWorker runs the worker loop against the manager; a shutdown signal
// triggers the final deregistering sync inside Worker.Run before this
// returns.
func runWorker(ctx context.Context, cfg dist.WorkerConfig, corpusOut string, events *obs.EventLog) {
	w := dist.NewWorker(cfg)
	err := w.Run(ctx)
	if err != nil && err != context.Canceled {
		fatal(events, "worker: %v", err)
	}
	if err == context.Canceled {
		fmt.Fprintln(os.Stderr, "interrupted: deregistered from manager")
	}
	fmt.Printf("worker done: %d corpus programs in local aggregate\n", w.CorpusLen())
	if corpusOut != "" {
		writeCorpusFile(corpusOut, w.WriteCorpus, events)
	}
}

func printFindings(rs []*report.Report) {
	for _, r := range rs {
		fmt.Println("=== new finding ===")
		fmt.Print(r.String())
	}
}

func printSummary(stats core.Stats, covEdges int, all []*report.Report, v bool) {
	fmt.Printf("\ncampaign done: %d steps, %d STIs, %d MTIs (%d vacuous), %d hints, %d coverage edges\n",
		stats.Steps, stats.STIs, stats.MTIs, stats.Vacuous, stats.Hints, covEdges)
	ooo := 0
	for _, r := range all {
		if r.OOO {
			ooo++
		}
	}
	fmt.Printf("findings: %d unique crash titles, %d classified as OOO bugs\n", len(all), ooo)
	if v {
		fmt.Println(stats.MetricsLine())
	}
}

func writeCorpusFile(path string, write func(w io.Writer) error, events *obs.EventLog) {
	out, err := os.Create(path)
	if err != nil {
		fatal(events, "corpus-out: %v", err)
	}
	if err := write(out); err != nil {
		out.Close()
		fatal(events, "corpus-out: %v", err)
	}
	if err := out.Close(); err != nil {
		fatal(events, "corpus-out: %v", err)
	}
}
