// Command ozz runs an OZZ fuzzing campaign against the simulated kernel's
// bug corpus and prints every finding as a syzkaller-style report with the
// hypothetical-barrier location (§4.4).
//
// Usage:
//
//	ozz [-modules tls,xsk] [-bugs all|sw1,sw2] [-steps 500] [-seed 1] [-workers 4] [-v]
//
// With -bugs all (the default), every Table 3/Table 4 bug switch is active —
// the fuzzer hunts the whole corpus. With -bugs "" the kernel is fully
// fixed and a clean campaign is expected to find nothing.
//
// The campaign runs on the parallel Pool executor at -workers width. The
// step sequence is deterministic in the campaign seed, so any worker count
// produces the same findings, coverage, and corpus — only faster.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ozz/internal/core"
	"ozz/internal/modules"
	"ozz/internal/report"
)

func main() {
	var (
		mods      = flag.String("modules", "", "comma-separated modules to load (default: all)")
		bugs      = flag.String("bugs", "all", `bug switches to enable: "all", "" (none), or a comma list`)
		steps     = flag.Int("steps", 300, "fuzzer iterations")
		seed      = flag.Int64("seed", 1, "campaign seed")
		workers   = flag.Int("workers", 1, "parallel campaign workers (0 or negative = GOMAXPROCS)")
		v         = flag.Bool("v", false, "print per-step progress and campaign metrics")
		list      = flag.Bool("list", false, "list modules and bug switches, then exit")
		corpusIn  = flag.String("corpus-in", "", "file with a previously exported corpus to resume from")
		corpusOut = flag.String("corpus-out", "", "file to export the coverage corpus to at exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("modules:")
		for _, m := range modules.All() {
			fmt.Printf("  %-12s %d syscalls, %d bugs\n", m.Name, len(m.Defs), len(m.Bugs))
		}
		fmt.Println("bug switches:")
		for _, b := range modules.AllBugs() {
			fmt.Printf("  %-28s %-6s table=%d  %s\n", b.Switch, b.Type, b.Table, b.Title+b.SoftTitle)
		}
		return
	}

	var modList []string
	if *mods != "" {
		modList = strings.Split(*mods, ",")
	}
	var bugSet modules.BugSet
	switch *bugs {
	case "all":
		var all []string
		for _, b := range modules.AllBugs() {
			if b.Switch != "sbitmap:migration_assist" {
				all = append(all, b.Switch)
			}
		}
		bugSet = modules.Bugs(all...)
	case "":
	default:
		bugSet = modules.Bugs(strings.Split(*bugs, ",")...)
	}

	// Every worker count runs on the Pool executor — the campaign's step
	// sequence is a function of the seed alone, so -workers only changes
	// wall-clock time, never the output.
	p := core.NewPool(core.Config{
		Modules:  modList,
		Bugs:     bugSet,
		Seed:     *seed,
		UseSeeds: true,
	}, *workers)
	if *corpusIn != "" {
		in, err := os.Open(*corpusIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "corpus-in: %v\n", err)
			os.Exit(1)
		}
		n, err := p.ReadCorpus(in)
		in.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "corpus-in: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "imported %d corpus programs\n", n)
	}
	if *v {
		fmt.Fprintf(os.Stderr, "campaign: %d workers\n", p.Workers)
	}
	const chunk = 64
	for done := 0; done < *steps; {
		n := chunk
		if *steps-done < n {
			n = *steps - done
		}
		printFindings(p.Run(n))
		done += n
		if *v && done < *steps {
			s := p.Stats()
			fmt.Fprintf(os.Stderr, "step %d: %d STIs, %d MTIs, %d hints, cov %d edges, %d crash titles\n",
				done, s.STIs, s.MTIs, s.Hints, p.CoverageEdges(), p.Reports.Len())
		}
	}
	stats := p.Stats()
	printSummary(stats, p.CoverageEdges(), p.Reports.All(), *v)
	if *corpusOut != "" {
		writeCorpusFile(*corpusOut, p.WriteCorpus)
	}
}

func printFindings(rs []*report.Report) {
	for _, r := range rs {
		fmt.Println("=== new finding ===")
		fmt.Print(r.String())
	}
}

func printSummary(stats core.Stats, covEdges int, all []*report.Report, v bool) {
	fmt.Printf("\ncampaign done: %d steps, %d STIs, %d MTIs (%d vacuous), %d hints, %d coverage edges\n",
		stats.Steps, stats.STIs, stats.MTIs, stats.Vacuous, stats.Hints, covEdges)
	ooo := 0
	for _, r := range all {
		if r.OOO {
			ooo++
		}
	}
	fmt.Printf("findings: %d unique crash titles, %d classified as OOO bugs\n", len(all), ooo)
	if v {
		fmt.Println(stats.MetricsLine())
	}
}

func writeCorpusFile(path string, write func(w io.Writer) error) {
	out, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "corpus-out: %v\n", err)
		os.Exit(1)
	}
	if err := write(out); err != nil {
		out.Close()
		fmt.Fprintf(os.Stderr, "corpus-out: %v\n", err)
		os.Exit(1)
	}
	if err := out.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "corpus-out: %v\n", err)
		os.Exit(1)
	}
}
