// Command ozz runs an OZZ fuzzing campaign against the simulated kernel's
// bug corpus and prints every finding as a syzkaller-style report with the
// hypothetical-barrier location (§4.4).
//
// Usage:
//
//	ozz [-modules tls,xsk] [-bugs all|sw1,sw2] [-steps 500] [-seed 1] [-v]
//
// With -bugs all (the default), every Table 3/Table 4 bug switch is active —
// the fuzzer hunts the whole corpus. With -bugs "" the kernel is fully
// fixed and a clean campaign is expected to find nothing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ozz/internal/core"
	"ozz/internal/modules"
)

func main() {
	var (
		mods      = flag.String("modules", "", "comma-separated modules to load (default: all)")
		bugs      = flag.String("bugs", "all", `bug switches to enable: "all", "" (none), or a comma list`)
		steps     = flag.Int("steps", 300, "fuzzer iterations")
		seed      = flag.Int64("seed", 1, "campaign seed")
		v         = flag.Bool("v", false, "print per-step progress")
		list      = flag.Bool("list", false, "list modules and bug switches, then exit")
		corpusIn  = flag.String("corpus-in", "", "file with a previously exported corpus to resume from")
		corpusOut = flag.String("corpus-out", "", "file to export the coverage corpus to at exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("modules:")
		for _, m := range modules.All() {
			fmt.Printf("  %-12s %d syscalls, %d bugs\n", m.Name, len(m.Defs), len(m.Bugs))
		}
		fmt.Println("bug switches:")
		for _, b := range modules.AllBugs() {
			fmt.Printf("  %-28s %-6s table=%d  %s\n", b.Switch, b.Type, b.Table, b.Title+b.SoftTitle)
		}
		return
	}

	var modList []string
	if *mods != "" {
		modList = strings.Split(*mods, ",")
	}
	var bugSet modules.BugSet
	switch *bugs {
	case "all":
		var all []string
		for _, b := range modules.AllBugs() {
			if b.Switch != "sbitmap:migration_assist" {
				all = append(all, b.Switch)
			}
		}
		bugSet = modules.Bugs(all...)
	case "":
	default:
		bugSet = modules.Bugs(strings.Split(*bugs, ",")...)
	}

	f := core.NewFuzzer(core.Config{
		Modules:  modList,
		Bugs:     bugSet,
		Seed:     *seed,
		UseSeeds: true,
	})
	if *corpusIn != "" {
		data, err := os.ReadFile(*corpusIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "corpus-in: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "imported %d corpus programs\n", f.ImportCorpus(string(data)))
	}
	for n := 0; n < *steps; n++ {
		newReports := f.Step()
		if *v && n%50 == 0 {
			fmt.Fprintf(os.Stderr, "step %d: %d STIs, %d MTIs, %d hints, cov %d edges, %d crash titles\n",
				n, f.Stats.STIs, f.Stats.MTIs, f.Stats.Hints, f.CoverageEdges(), f.Reports.Len())
		}
		for _, r := range newReports {
			fmt.Println("=== new finding ===")
			fmt.Print(r.String())
		}
	}
	fmt.Printf("\ncampaign done: %d steps, %d STIs, %d MTIs (%d vacuous), %d hints, %d coverage edges\n",
		f.Stats.Steps, f.Stats.STIs, f.Stats.MTIs, f.Stats.Vacuous, f.Stats.Hints, f.CoverageEdges())
	ooo := 0
	for _, r := range f.Reports.All() {
		if r.OOO {
			ooo++
		}
	}
	fmt.Printf("findings: %d unique crash titles, %d classified as OOO bugs\n", f.Reports.Len(), ooo)
	if *corpusOut != "" {
		if err := os.WriteFile(*corpusOut, []byte(f.ExportCorpus()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "corpus-out: %v\n", err)
			os.Exit(1)
		}
	}
}
