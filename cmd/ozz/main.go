// Command ozz runs an OZZ fuzzing campaign against the simulated kernel's
// bug corpus and prints every finding as a syzkaller-style report with the
// hypothetical-barrier location (§4.4).
//
// Usage:
//
//	ozz [-modules tls,xsk] [-bugs all|sw1,sw2] [-steps 500] [-seed 1] [-workers 4] [-v]
//	ozz -duration 30s -metrics-addr 127.0.0.1:9911 -events events.jsonl
//
// With -bugs all (the default), every Table 3/Table 4 bug switch is active —
// the fuzzer hunts the whole corpus. With -bugs "" the kernel is fully
// fixed and a clean campaign is expected to find nothing.
//
// The campaign runs on the parallel Pool executor at -workers width. The
// step sequence is deterministic in the campaign seed, so any worker count
// produces the same findings, coverage, and corpus — only faster.
//
// Observability (see docs/OBSERVABILITY.md): -metrics-addr serves the
// campaign's metric registry in Prometheus text format on /metrics (plus
// net/http/pprof on /debug/pprof/); -events appends one JSON object per
// campaign event to the given file; -duration switches from a fixed step
// count to a wall-clock budget.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ozz/internal/core"
	"ozz/internal/modules"
	"ozz/internal/obs"
	"ozz/internal/report"
)

func main() {
	var (
		mods      = flag.String("modules", "", "comma-separated modules to load (default: all)")
		bugs      = flag.String("bugs", "all", `bug switches to enable: "all", "" (none), or a comma list`)
		steps     = flag.Int("steps", 300, "fuzzer iterations")
		seed      = flag.Int64("seed", 1, "campaign seed")
		workers   = flag.Int("workers", 1, "parallel campaign workers (0 or negative = GOMAXPROCS)")
		v         = flag.Bool("v", false, "print per-step progress and campaign metrics")
		list      = flag.Bool("list", false, "list modules and bug switches, then exit")
		corpusIn  = flag.String("corpus-in", "", "file with a previously exported corpus to resume from")
		corpusOut = flag.String("corpus-out", "", "file to export the coverage corpus to at exit")

		duration    = flag.Duration("duration", 0, "wall-clock campaign budget; when > 0 it replaces -steps")
		metricsAddr = flag.String("metrics-addr", "", `serve /metrics and /debug/pprof/ on this address (e.g. "127.0.0.1:9911"; ":0" picks a free port)`)
		eventsPath  = flag.String("events", "", "append campaign events as JSON lines to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println("modules:")
		for _, m := range modules.All() {
			fmt.Printf("  %-12s %d syscalls, %d bugs\n", m.Name, len(m.Defs), len(m.Bugs))
		}
		fmt.Println("bug switches:")
		for _, b := range modules.AllBugs() {
			fmt.Printf("  %-28s %-6s table=%d  %s\n", b.Switch, b.Type, b.Table, b.Title+b.SoftTitle)
		}
		return
	}

	var modList []string
	if *mods != "" {
		modList = strings.Split(*mods, ",")
	}
	var bugSet modules.BugSet
	switch *bugs {
	case "all":
		var all []string
		for _, b := range modules.AllBugs() {
			if b.Switch != "sbitmap:migration_assist" {
				all = append(all, b.Switch)
			}
		}
		bugSet = modules.Bugs(all...)
	case "":
	default:
		bugSet = modules.Bugs(strings.Split(*bugs, ",")...)
	}

	// Observability plumbing: one registry and one event log for the whole
	// campaign, wired into the Pool via its Config. Both are purely
	// observational — enabling them never changes campaign results.
	reg := obs.NewRegistry()
	var events *obs.EventLog
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "events: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		events = obs.NewEventLog(f, obs.LevelInfo)
	}
	if *metricsAddr != "" {
		bound, stop, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics-addr: %v\n", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", bound)
	}

	// Every worker count runs on the Pool executor — the campaign's step
	// sequence is a function of the seed alone, so -workers only changes
	// wall-clock time, never the output.
	p := core.NewPool(core.Config{
		Modules:  modList,
		Bugs:     bugSet,
		Seed:     *seed,
		UseSeeds: true,
		Obs:      reg,
		Events:   events,
	}, *workers)
	if *corpusIn != "" {
		in, err := os.Open(*corpusIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "corpus-in: %v\n", err)
			os.Exit(1)
		}
		n, err := p.ReadCorpus(in)
		in.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "corpus-in: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "imported %d corpus programs\n", n)
	}
	if *v {
		fmt.Fprintf(os.Stderr, "campaign: %d workers\n", p.Workers)
	}
	events.Info(0, "campaign_start", map[string]any{
		"seed": *seed, "workers": p.Workers, "steps": *steps, "duration": duration.String(),
	})
	if *duration > 0 {
		// Wall-clock mode: run in short slices so findings stream out and
		// -v progress stays live, stopping once the budget is spent.
		deadline := time.Now().Add(*duration)
		for time.Now().Before(deadline) {
			slice := time.Until(deadline)
			if slice > 2*time.Second {
				slice = 2 * time.Second
			}
			printFindings(p.RunFor(slice))
			if *v {
				s := p.Stats()
				fmt.Fprintf(os.Stderr, "step %d: %d STIs, %d MTIs, %d hints, cov %d edges, %d crash titles\n",
					s.Steps, s.STIs, s.MTIs, s.Hints, p.CoverageEdges(), p.Reports.Len())
			}
		}
	} else {
		const chunk = 64
		for done := 0; done < *steps; {
			n := chunk
			if *steps-done < n {
				n = *steps - done
			}
			printFindings(p.Run(n))
			done += n
			if *v && done < *steps {
				s := p.Stats()
				fmt.Fprintf(os.Stderr, "step %d: %d STIs, %d MTIs, %d hints, cov %d edges, %d crash titles\n",
					done, s.STIs, s.MTIs, s.Hints, p.CoverageEdges(), p.Reports.Len())
			}
		}
	}
	stats := p.Stats()
	events.Info(0, "campaign_end", map[string]any{
		"steps": stats.Steps, "stis": stats.STIs, "mtis": stats.MTIs,
		"hints": stats.Hints, "cov_edges": p.CoverageEdges(), "reports": p.Reports.Len(),
	})
	printSummary(stats, p.CoverageEdges(), p.Reports.All(), *v)
	if *corpusOut != "" {
		writeCorpusFile(*corpusOut, p.WriteCorpus)
	}
}

func printFindings(rs []*report.Report) {
	for _, r := range rs {
		fmt.Println("=== new finding ===")
		fmt.Print(r.String())
	}
}

func printSummary(stats core.Stats, covEdges int, all []*report.Report, v bool) {
	fmt.Printf("\ncampaign done: %d steps, %d STIs, %d MTIs (%d vacuous), %d hints, %d coverage edges\n",
		stats.Steps, stats.STIs, stats.MTIs, stats.Vacuous, stats.Hints, covEdges)
	ooo := 0
	for _, r := range all {
		if r.OOO {
			ooo++
		}
	}
	fmt.Printf("findings: %d unique crash titles, %d classified as OOO bugs\n", len(all), ooo)
	if v {
		fmt.Println(stats.MetricsLine())
	}
}

func writeCorpusFile(path string, write func(w io.Writer) error) {
	out, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "corpus-out: %v\n", err)
		os.Exit(1)
	}
	if err := write(out); err != nil {
		out.Close()
		fmt.Fprintf(os.Stderr, "corpus-out: %v\n", err)
		os.Exit(1)
	}
	if err := out.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "corpus-out: %v\n", err)
		os.Exit(1)
	}
}
