package ozz

// Engine conformance suite: a fixed (seed, program, bug-set) matrix run
// through every execution strategy — OZZ's hypothetical-barrier OOO
// executor, the sequential syzkaller baseline, the interleaving-only
// baseline, and the KCSAN watchpoint detector — asserting that crash
// titles, coverage signatures, report-dedup counts, and per-run outcomes
// are byte-identical to the golden outputs captured before the execution
// paths were unified behind internal/engine. Any behavioral drift in the
// engine layer (kernel lifecycle, task spawning, crash recovery, stage
// structure, RNG streams) shows up here as a golden mismatch.
//
// Regenerate goldens with:
//
//	OZZ_UPDATE_GOLDEN=1 go test -run TestEngineConformance .

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"ozz/internal/baseline/inorder"
	"ozz/internal/baseline/kcsan"
	"ozz/internal/core"
	"ozz/internal/engine"
	"ozz/internal/hints"
	"ozz/internal/modules"
	"ozz/internal/trace"
)

const goldenPath = "testdata/engine_golden.json"

// mtiOutcome is the signature of one hypothetical-barrier MTI run.
type mtiOutcome struct {
	Title     string `json:"title"` // crash title, "" if none
	Fired     bool   `json:"fired"`
	Reordered int    `json:"reordered"`
	CovEdges  int    `json:"cov_edges"`
	// Migrations and Deferred count the strategy-specific events of the
	// run (cross-CPU moves, spawned handler tasks). Zero — and therefore
	// omitted, keeping the pre-existing fixtures byte-identical — for the
	// plain OOO strategy.
	Migrations int `json:"migrations,omitempty"`
	Deferred   int `json:"deferred,omitempty"`
}

// oooFixture captures the OOO strategy over one (bug, program) pair: the
// STI profile signature plus every Algorithm-1 hint's MTI outcome.
type oooFixture struct {
	STICovEdges int          `json:"sti_cov_edges"`
	STIEvents   []int        `json:"sti_events"` // per-call profiled event counts
	STIReturns  []uint64     `json:"sti_returns"`
	Hints       int          `json:"hints"`
	MTIs        []mtiOutcome `json:"mtis"`
}

// campaignFixture captures a whole fuzzing campaign: deduplicated findings
// and the deterministic work counters.
type campaignFixture struct {
	Titles    []string `json:"titles"` // sorted unique crash titles
	OOOCount  int      `json:"ooo_count"`
	Reports   int      `json:"reports"` // dedup count
	CovEdges  int      `json:"cov_edges"`
	Steps     uint64   `json:"steps"`
	STIs      uint64   `json:"stis"`
	MTIs      uint64   `json:"mtis"`
	Hints     uint64   `json:"hints"`
	Vacuous   uint64   `json:"vacuous"`
	NewCov    uint64   `json:"new_cov"`
	CorpusLen int      `json:"corpus_len"`
}

type golden struct {
	// OOO strategy: store-barrier and load-barrier hypothetical tests.
	OOOStore oooFixture `json:"ooo_store"`
	OOOLoad  oooFixture `json:"ooo_load"`
	// Sequential strategy: the syzkaller baseline over the full OOO corpus
	// finds nothing.
	SeqExecs  uint64   `json:"seq_execs"`
	SeqTitles []string `json:"seq_titles"`
	// Interleave strategy: blind to OOO bugs, finds the plain UAF race.
	InterleaveOOOTitles []string `json:"interleave_ooo_titles"`
	InterleaveUAFTitles []string `json:"interleave_uaf_titles"`
	InterleaveExecs     uint64   `json:"interleave_execs"`
	// KCSAN strategy: the three §7 scenarios.
	KCSANPlainTitles     []string `json:"kcsan_plain_titles"`
	KCSANAnnotatedTitles []string `json:"kcsan_annotated_titles"`
	KCSANBitlockTitles   []string `json:"kcsan_bitlock_titles"`
	// Full campaigns through the serial fuzzer and the parallel pool.
	Fuzzer campaignFixture `json:"fuzzer"`
	Pool   campaignFixture `json:"pool"`
	// Migration strategy: Table 4 #6 reproduced organically via real
	// cross-CPU moves at scheduling points (no migration assist).
	MigrationSbitmap oooFixture `json:"migration_sbitmap"`
	// Deferred strategy: the Fig. 1 program with the interrupt handler
	// spawned as a schedulable task at the deferral point instead of
	// drained synchronously.
	DeferredWQ oooFixture `json:"deferred_wq"`
}

func captureOOO(t *testing.T, bugSwitch, progSrc string, pairI, pairJ int) oooFixture {
	t.Helper()
	return captureStrategy(t, nil, bugSwitch, progSrc, pairI, pairJ)
}

// captureStrategy is captureOOO with the MTI engine strategy selectable
// (nil = the default OOO executor).
func captureStrategy(t *testing.T, strat engine.Strategy, bugSwitch, progSrc string, pairI, pairJ int) oooFixture {
	t.Helper()
	mods := []string{modsOf(t, bugSwitch)}
	env := core.NewEnv(mods, modules.Bugs(bugSwitch))
	env.Strategy = strat
	target := modules.Target(mods...)
	p, err := target.Parse(progSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fx := oooFixture{}
	sti := env.RunSTI(p)
	if sti.Crash != nil {
		t.Fatalf("sequential crash: %v", sti.Crash)
	}
	fx.STICovEdges = len(sti.Cov)
	for _, evs := range sti.CallEvents {
		fx.STIEvents = append(fx.STIEvents, len(evs))
	}
	fx.STIReturns = append(fx.STIReturns, sti.Returns...)
	hs := hints.Calculate(sti.CallEvents[pairI], sti.CallEvents[pairJ])
	fx.Hints = len(hs)
	for _, h := range hs {
		res := env.RunMTI(core.MTIOpts{Prog: p, I: pairI, J: pairJ, Hint: h})
		o := mtiOutcome{
			Fired: res.Fired, Reordered: res.Reordered, CovEdges: len(res.Cov),
			Migrations: res.Migrations, Deferred: res.DeferredTasks,
		}
		if res.Crash != nil {
			o.Title = res.Crash.Title
		}
		fx.MTIs = append(fx.MTIs, o)
	}
	return fx
}

func modsOf(t *testing.T, bugSwitch string) string {
	t.Helper()
	b, ok := modules.FindBug(bugSwitch)
	if !ok {
		t.Fatalf("unknown bug switch %q", bugSwitch)
	}
	return b.Module
}

// conformanceModules pins the campaign fixtures' module universe to the
// corpus as of the golden capture, in registry (sorted) order. Modules
// added later join the fuzzing corpus without invalidating the
// pre-refactor goldens; their bug switches in the campaign's Bugs set are
// inert when the module is not built.
var conformanceModules = []string{
	"bpf", "btrfs", "fdtable", "filemap", "gsm", "irdma", "nbd",
	"rcudev", "rds", "rustsync", "sbitmap", "seqtime", "smc", "tls",
	"unixsock", "vfs", "vlan", "vmci", "watchqueue", "xsk",
}

func allOOOSwitches() []string {
	var switches []string
	for _, b := range modules.AllBugs() {
		if _, deprecated := modules.DeprecatedSwitches[b.Switch]; deprecated {
			continue
		}
		switches = append(switches, b.Switch)
	}
	return switches
}

func campaignConfig() core.Config {
	return core.Config{
		Modules:  conformanceModules,
		Bugs:     modules.Bugs(allOOOSwitches()...),
		Seed:     1,
		UseSeeds: true,
	}
}

func captureCampaignStats(s core.Stats, titles []string, ooo, reports, cov int) campaignFixture {
	sort.Strings(titles)
	return campaignFixture{
		Titles: titles, OOOCount: ooo, Reports: reports, CovEdges: cov,
		Steps: s.Steps, STIs: s.STIs, MTIs: s.MTIs, Hints: s.Hints,
		Vacuous: s.Vacuous, NewCov: s.NewCov, CorpusLen: s.CorpusLen,
	}
}

func capture(t *testing.T) golden {
	t.Helper()
	var g golden

	// --- OOO: Fig. 1 store-barrier and load-barrier tests.
	const wqProg = "r0 = wq_create()\nwq_post_notification(r0, 0x4)\nwq_pipe_read(r0)\n"
	g.OOOStore = captureOOO(t, "watchqueue:pipe_wmb", wqProg, 1, 2)
	g.OOOLoad = captureOOO(t, "watchqueue:pipe_rmb", wqProg, 1, 2)

	// --- Sequential: syzkaller over the whole buggy corpus.
	sz := inorder.NewSyzkaller(nil, modules.Bugs(allOOOSwitches()...), 1)
	for i := 0; i < 120; i++ {
		sz.Step()
	}
	g.SeqExecs = sz.Execs
	g.SeqTitles = append([]string{}, sz.Reports.Titles()...)

	// --- Interleave: blind to the Fig. 1 OOO bug, finds the plain UAF.
	ivOOO := inorder.NewInterleaver([]string{"watchqueue"},
		modules.Bugs("watchqueue:pipe_wmb", "watchqueue:pipe_rmb"), 1)
	wqTarget := modules.Target("watchqueue")
	wp, err := wqTarget.Parse(wqProg)
	if err != nil {
		t.Fatal(err)
	}
	g.InterleaveOOOTitles = append([]string{}, ivOOO.Hunt(wp, 60)...)

	ivUAF := inorder.NewInterleaver([]string{"vmci"}, modules.Bugs("vmci:uaf_race"), 2)
	vmciTarget := modules.Target("vmci")
	vp, err := vmciTarget.Parse("r0 = vmci_create()\nvmci_qp_alloc(r0, 0x10)\nvmci_qp_wait(r0)\nvmci_qp_destroy(r0)\n")
	if err != nil {
		t.Fatal(err)
	}
	g.InterleaveUAFTitles = append([]string{}, ivUAF.Hunt(vp, 60)...)
	g.InterleaveExecs = ivUAF.Execs

	// --- KCSAN: the §7 scenarios (plain race / annotated race / bit lock).
	kcsanTitles := func(mod, sw, src string, seed int64) []string {
		d := kcsan.New([]string{mod}, modules.Bugs(sw), seed)
		target := modules.Target(mod)
		p, err := target.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return append([]string{}, d.Hunt(p, 80)...)
	}
	g.KCSANPlainTitles = kcsanTitles("gsm", "gsm:dlci_config_rmb",
		"r0 = gsm_open()\ngsm_activate(r0, 0x0)\ngsm_dlci_config(r0, 0x0, 0x200)\n", 1)
	g.KCSANAnnotatedTitles = kcsanTitles("tls", "tls:sk_prot_wmb",
		"r0 = tls_socket()\ntls_init(r0)\nsock_setsockopt(r0, 0x1)\n", 2)
	g.KCSANBitlockTitles = kcsanTitles("rds", "rds:clear_bit_unlock",
		"r0 = rds_socket()\nrds_sendmsg(r0, 0x4)\nrds_sendmsg(r0, 0x3)\nrds_loop_xmit(r0)\n", 3)

	// --- Full campaign, serial fuzzer.
	f := core.NewFuzzer(campaignConfig())
	f.Run(60)
	ooo := 0
	for _, r := range f.Reports.All() {
		if r.OOO {
			ooo++
		}
	}
	g.Fuzzer = captureCampaignStats(f.Stats,
		append([]string{}, f.Reports.Titles()...), ooo, f.Reports.Len(), f.CoverageEdges())

	// --- Full campaign, parallel pool (4 workers; deterministic in seed).
	pl := core.NewPool(campaignConfig(), 4)
	pl.Run(64)
	ps := pl.Stats()
	ps.Perf = core.PerfStats{} // timing block is nondeterministic
	pooo := 0
	for _, r := range pl.Reports.All() {
		if r.OOO {
			pooo++
		}
	}
	g.Pool = captureCampaignStats(ps,
		append([]string{}, pl.Reports.Titles()...), pooo, pl.Reports.Len(), pl.CoverageEdges())

	// --- Migration: Table 4 #6 via real cross-CPU moves (no assist).
	const sbProg = "r0 = sb_init()\nsb_get(r0)\nsb_get(r0)\nsb_get(r0)\nsb_resize(r0, 0x3)\nsb_get(r0)\n"
	g.MigrationSbitmap = captureStrategy(t, engine.Migration{}, "sbitmap:freed_order", sbProg, 4, 5)

	// --- Deferred: Fig. 1 with the handler spawned as a task.
	g.DeferredWQ = captureStrategy(t, engine.Deferred{}, "watchqueue:pipe_wmb", wqProg, 1, 2)

	return g
}

// TestEngineConformance runs the strategy matrix and compares against the
// pre-refactor golden outputs.
func TestEngineConformance(t *testing.T) {
	got := capture(t)

	if os.Getenv("OZZ_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(&got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden missing (run with OZZ_UPDATE_GOLDEN=1 to capture): %v", err)
	}
	var want golden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("golden decode: %v", err)
	}

	check := func(name string, gotV, wantV any) {
		if !reflect.DeepEqual(gotV, wantV) {
			t.Errorf("%s drifted from pre-refactor golden:\n got: %+v\nwant: %+v", name, gotV, wantV)
		}
	}
	check("ooo_store", got.OOOStore, want.OOOStore)
	check("ooo_load", got.OOOLoad, want.OOOLoad)
	check("seq_execs", got.SeqExecs, want.SeqExecs)
	check("seq_titles", got.SeqTitles, want.SeqTitles)
	check("interleave_ooo_titles", got.InterleaveOOOTitles, want.InterleaveOOOTitles)
	check("interleave_uaf_titles", got.InterleaveUAFTitles, want.InterleaveUAFTitles)
	check("interleave_execs", got.InterleaveExecs, want.InterleaveExecs)
	check("kcsan_plain_titles", got.KCSANPlainTitles, want.KCSANPlainTitles)
	check("kcsan_annotated_titles", got.KCSANAnnotatedTitles, want.KCSANAnnotatedTitles)
	check("kcsan_bitlock_titles", got.KCSANBitlockTitles, want.KCSANBitlockTitles)
	check("fuzzer_campaign", got.Fuzzer, want.Fuzzer)
	check("pool_campaign", got.Pool, want.Pool)
	check("migration_sbitmap", got.MigrationSbitmap, want.MigrationSbitmap)
	check("deferred_wq", got.DeferredWQ, want.DeferredWQ)
}

// TestCrossStrategyProperties pins the relationships BETWEEN strategies
// that the golden matrix above cannot express — the properties the
// paper's architecture rests on, checked over every module's seed
// corpus rather than a fixed fixture.
func TestCrossStrategyProperties(t *testing.T) {
	// Property 1: the OOO strategy without a hint IS the sequential
	// baseline. Both Pair plans collapse to nil, so crash, returns, and
	// coverage must be identical program by program.
	t.Run("ooo-without-hint-is-sequential", func(t *testing.T) {
		eng := engine.New()
		cfg := engine.Config{Bugs: modules.Bugs(allOOOSwitches()...), Instrumented: true}
		target := modules.Target()
		for i, src := range modules.Seeds() {
			p, err := target.Parse(src)
			if err != nil {
				t.Fatalf("seed %d: %v", i, err)
			}
			ooo := eng.Run(cfg, engine.OOO{}, engine.Request{Prog: p})
			seq := eng.Run(cfg, engine.Sequential{}, engine.Request{Prog: p})
			if (ooo.Crash == nil) != (seq.Crash == nil) ||
				(ooo.Crash != nil && ooo.Crash.Title != seq.Crash.Title) {
				t.Fatalf("seed %d: crash differs: ooo=%v seq=%v", i, ooo.Crash, seq.Crash)
			}
			if !reflect.DeepEqual(ooo.Returns, seq.Returns) {
				t.Fatalf("seed %d: returns differ: %v vs %v", i, ooo.Returns, seq.Returns)
			}
			if len(ooo.Cov) != len(seq.Cov) {
				t.Fatalf("seed %d: coverage differs: %d vs %d edges", i, len(ooo.Cov), len(seq.Cov))
			}
		}
	})

	// Property 2: suppressing the OEMU directives (NoReorder — the triage
	// re-run) makes every hint execution behave in-order: no reordering
	// occurs and no OOO crash fires, even though the interleaving
	// schedule is identical. This is §2.3's claim that interleaving
	// control alone cannot expose missing-barrier bugs, as a property
	// over ALL hints of the Fig. 1 program.
	t.Run("no-reorder-hints-match-sequential", func(t *testing.T) {
		const wqProg = "r0 = wq_create()\nwq_post_notification(r0, 0x4)\nwq_pipe_read(r0)\n"
		for _, sw := range []string{"watchqueue:pipe_wmb", "watchqueue:pipe_rmb"} {
			env := core.NewEnv([]string{"watchqueue"}, modules.Bugs(sw))
			p, err := modules.Target("watchqueue").Parse(wqProg)
			if err != nil {
				t.Fatal(err)
			}
			sti := env.RunSTI(p)
			if sti.Crash != nil {
				t.Fatalf("%s: sequential run crashed: %v", sw, sti.Crash)
			}
			hs := hints.Calculate(sti.CallEvents[1], sti.CallEvents[2])
			if len(hs) == 0 {
				t.Fatalf("%s: no hints calculated", sw)
			}
			fired := false
			for _, h := range hs {
				res := env.RunMTI(core.MTIOpts{Prog: p, I: 1, J: 2, Hint: h, NoReorder: true})
				if res.Reordered != 0 {
					t.Fatalf("%s: hint %s reordered %d accesses with directives suppressed",
						sw, h, res.Reordered)
				}
				if res.Crash != nil {
					t.Fatalf("%s: hint %s crashed without reordering: %v", sw, h, res.Crash)
				}
				fired = fired || res.Fired
			}
			if !fired {
				t.Fatalf("%s: no hint's scheduling point was ever reached", sw)
			}
			// The same hints WITH directives must actually reorder on at
			// least one run (individual hints may be vacuous — an empty
			// versioning window at the scheduling point reorders nothing):
			// sequential behaviours are a strict subset of OOO behaviours.
			reordered := false
			for _, h := range hs {
				live := env.RunMTI(core.MTIOpts{Prog: p, I: 1, J: 2, Hint: h})
				reordered = reordered || live.Reordered > 0
			}
			if !reordered {
				t.Fatalf("%s: no hint reordered anything with directives live", sw)
			}
		}
	})

	// Property 3: the Migration strategy degenerates to plain OOO whenever
	// a hint carries no per-CPU migration sites — the MigrateAt wrapper is
	// only installed for migration-annotated hints, so on every other hint
	// the two strategies must be indistinguishable run by run: same crash,
	// same returns, same reorder count, same coverage, and zero cross-CPU
	// moves. Checked over every module's seed corpus.
	t.Run("migration-without-sites-is-ooo", func(t *testing.T) {
		bugs := modules.Bugs(allOOOSwitches()...)
		target := modules.Target()
		envO := core.NewEnv(nil, bugs)
		envM := core.NewEnv(nil, bugs)
		envM.Strategy = engine.Migration{}
		checked := 0
		for i, src := range modules.Seeds() {
			p, err := target.Parse(src)
			if err != nil {
				t.Fatalf("seed %d: %v", i, err)
			}
			sti := envO.RunSTI(p)
			if sti.Crash != nil || len(sti.CallEvents) < 2 {
				continue
			}
			for a := 0; a < len(sti.CallEvents)-1; a++ {
				for b := a + 1; b < len(sti.CallEvents); b++ {
					for _, h := range hints.Calculate(sti.CallEvents[a], sti.CallEvents[b]) {
						if len(h.Migrate) != 0 {
							continue
						}
						opts := core.MTIOpts{Prog: p, I: a, J: b, Hint: h}
						ro := envO.RunMTI(opts)
						rm := envM.RunMTI(opts)
						if rm.Migrations != 0 {
							t.Fatalf("seed %d pair (%d,%d) hint %s: %d migrations without migration sites",
								i, a, b, h, rm.Migrations)
						}
						if (ro.Crash == nil) != (rm.Crash == nil) ||
							(ro.Crash != nil && ro.Crash.Title != rm.Crash.Title) {
							t.Fatalf("seed %d pair (%d,%d) hint %s: crash differs: ooo=%v migration=%v",
								i, a, b, h, ro.Crash, rm.Crash)
						}
						if ro.Fired != rm.Fired || ro.Reordered != rm.Reordered {
							t.Fatalf("seed %d pair (%d,%d) hint %s: fired/reordered differ: (%v,%d) vs (%v,%d)",
								i, a, b, h, ro.Fired, ro.Reordered, rm.Fired, rm.Reordered)
						}
						if !reflect.DeepEqual(ro.Returns, rm.Returns) {
							t.Fatalf("seed %d pair (%d,%d) hint %s: returns differ: %v vs %v",
								i, a, b, h, ro.Returns, rm.Returns)
						}
						if len(ro.Cov) != len(rm.Cov) {
							t.Fatalf("seed %d pair (%d,%d) hint %s: coverage differs: %d vs %d edges",
								i, a, b, h, len(ro.Cov), len(rm.Cov))
						}
						checked++
					}
				}
			}
		}
		if checked == 0 {
			t.Fatal("no migration-free hints in the whole seed corpus")
		}
	})

	// Property 4: Algorithm 2 (filter_out) drops only accesses that can
	// never contribute to a hint — running Algorithm 1 on pre-filtered
	// sequences yields the exact same hint set (FilterOut is idempotent
	// inside Calculate).
	t.Run("filter-out-preserves-hints", func(t *testing.T) {
		env := core.NewEnv(nil, modules.Bugs(allOOOSwitches()...))
		target := modules.Target()
		for i, src := range modules.Seeds() {
			p, err := target.Parse(src)
			if err != nil {
				t.Fatalf("seed %d: %v", i, err)
			}
			sti := env.RunSTI(p)
			if sti.Crash != nil || len(sti.CallEvents) < 2 {
				continue
			}
			for a := 0; a < len(sti.CallEvents)-1; a++ {
				for b := a + 1; b < len(sti.CallEvents); b++ {
					si, sj := sti.CallEvents[a], sti.CallEvents[b]
					direct := hints.Calculate(si, sj)
					fi, fj := hints.FilterOut(si, sj)
					filtered := hints.Calculate(fi, fj)
					if !reflect.DeepEqual(direct, filtered) {
						t.Fatalf("seed %d pair (%d,%d): filtering changed the hint set:\n%v\nvs\n%v",
							i, a, b, direct, filtered)
					}
					// Every reorder site must touch a location shared by
					// the pair — filtered events retain exactly those.
					sites := make(map[trace.InstrID]bool)
					for _, evs := range [][]trace.Event{fi, fj} {
						for _, e := range evs {
							if !e.Barrier {
								sites[e.Acc.Instr] = true
							}
						}
					}
					for _, h := range direct {
						for _, s := range h.Reorder {
							if !sites[s] {
								t.Fatalf("seed %d pair (%d,%d): hint %s reorders site %d outside the shared set",
									i, a, b, h, s)
							}
						}
					}
				}
			}
		}
	})
}
