package ozz

// This file is the benchmark harness index: one testing.B benchmark per
// evaluation table/figure of the paper (run with `go test -bench=. -benchmem`).
// Each benchmark both exercises the corresponding machinery per iteration
// and reports the headline quantity of its table as a custom metric, so the
// -bench output IS the reproduction record (see EXPERIMENTS.md).

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"ozz/internal/baseline/inorder"
	"ozz/internal/bench"
	"ozz/internal/core"
	"ozz/internal/hints"
	"ozz/internal/lkmm"
	"ozz/internal/modules"
	"ozz/internal/syzlang"
)

// --- Table 3: finding the 11 new bugs --------------------------------------

// BenchmarkTable3FindNewBugs runs one full seeded campaign per Table 3 bug
// per iteration and reports how many of the 11 were found (paper: 11).
func BenchmarkTable3FindNewBugs(b *testing.B) {
	found := 0
	for i := 0; i < b.N; i++ {
		found = 0
		for _, r := range bench.RunTable3(60) {
			if r.Found {
				found++
			}
		}
	}
	b.ReportMetric(float64(found), "bugs-found/11")
}

// --- Table 4: reproducing known bugs ----------------------------------------

// BenchmarkTable4ReproduceKnown reproduces the 9 previously-reported bugs
// and reports the reproduction count (paper: 8 of 9 with pinned threads,
// +1 with a manual migration assist; here the Migration strategy makes it
// 9/9 organically) and the mean number of hypothetical-barrier tests to
// trigger (paper: tens of tests). The pinned-thread control re-checks that
// sbitmap does NOT fire without cross-CPU moves.
func BenchmarkTable4ReproduceKnown(b *testing.B) {
	repro, totalTests, viaMigration, pinnedControl := 0, 0, 0, 0
	for i := 0; i < b.N; i++ {
		repro, totalTests, viaMigration = 0, 0, 0
		for _, r := range bench.RunTable4(60) {
			if r.Found {
				repro++
				totalTests += r.Tests
				if r.Bug.Switch == "sbitmap:freed_order" {
					viaMigration = 1
				}
			}
		}
		pinnedControl = 0
		if bench.RunSbitmapPinned(60).Found {
			pinnedControl = 1
		}
	}
	b.ReportMetric(float64(repro), "reproduced/9")
	b.ReportMetric(float64(viaMigration), "sbitmap-via-migration")
	b.ReportMetric(float64(pinnedControl), "sbitmap-pinned-control")
	if repro > 0 {
		b.ReportMetric(float64(totalTests)/float64(repro), "mean-tests-to-trigger")
	}
}

// --- Table 5: LMBench instrumentation overhead ------------------------------

// benchLM runs one Table 5 workload pair and reports the overhead ratio.
func benchLM(b *testing.B, name string) {
	var row bench.LMBenchRow
	for i := 0; i < b.N; i++ {
		for _, r := range bench.RunLMBench(2000) {
			if r.Name == name {
				row = r
			}
		}
	}
	b.ReportMetric(row.Overhead, "overhead-x")
	b.ReportMetric(row.InstrNs, "instr-ns/op")
	b.ReportMetric(row.BaseNs, "plain-ns/op")
}

func BenchmarkTable5LMBenchNull(b *testing.B)      { benchLM(b, "null") }
func BenchmarkTable5LMBenchStat(b *testing.B)      { benchLM(b, "stat") }
func BenchmarkTable5LMBenchOpenClose(b *testing.B) { benchLM(b, "open/close") }
func BenchmarkTable5LMBenchCreate(b *testing.B)    { benchLM(b, "File create") }
func BenchmarkTable5LMBenchDelete(b *testing.B)    { benchLM(b, "File delete") }
func BenchmarkTable5LMBenchCtxsw(b *testing.B)     { benchLM(b, "ctxsw 2p/0k") }
func BenchmarkTable5LMBenchPipe(b *testing.B)      { benchLM(b, "pipe") }
func BenchmarkTable5LMBenchUnix(b *testing.B)      { benchLM(b, "unix") }
func BenchmarkTable5LMBenchFork(b *testing.B)      { benchLM(b, "fork") }
func BenchmarkTable5LMBenchMmap(b *testing.B)      { benchLM(b, "mmap") }

// --- §6.3.2: fuzzing throughput ---------------------------------------------

// BenchmarkThroughputSyzkaller measures the syzkaller-style baseline: one
// sequential program execution on the plain kernel per iteration.
func BenchmarkThroughputSyzkaller(b *testing.B) {
	s := inorder.NewSyzkaller(nil, nil, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tests/s")
}

// BenchmarkThroughputOzz measures OZZ: one full pipeline step (STI +
// profiling + hints + all MTI runs) per iteration. The paper reports a 7.9x
// throughput drop versus the baseline.
func BenchmarkThroughputOzz(b *testing.B) {
	f := core.NewFuzzer(core.Config{Seed: 1, UseSeeds: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tests/s")
	if f.Stats.Steps > 0 {
		b.ReportMetric(float64(f.Stats.MTIs)/float64(f.Stats.Steps), "MTIs/program")
	}
}

// BenchmarkThroughputComparison reports the slowdown factor directly
// (paper: 7.9x).
func BenchmarkThroughputComparison(b *testing.B) {
	var res bench.ThroughputResult
	for i := 0; i < b.N; i++ {
		res = bench.MeasureThroughput(300*time.Millisecond, nil, nil)
	}
	b.ReportMetric(res.Slowdown, "slowdown-x")
	b.ReportMetric(res.OzzTestsPerSec, "ozz-tests/s")
	b.ReportMetric(res.SyzkallerTestsPerSec, "syzkaller-tests/s")
}

// BenchmarkParallelThroughput measures the Pool executor at 1, 2, 4, and
// GOMAXPROCS workers — the tests/s scaling column of the §6.3.2 table. Each
// sub-benchmark runs one full pipeline step per iteration; the campaign
// itself is deterministic in the seed, so every width does identical work.
func BenchmarkParallelThroughput(b *testing.B) {
	widths := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		widths = append(widths, n)
	}
	for _, w := range widths {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			p := core.NewPool(core.Config{Seed: 1, UseSeeds: true}, w)
			b.ResetTimer()
			p.Run(b.N)
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tests/s")
			s := p.Stats()
			b.ReportMetric(100*s.Perf.STICacheHitRate(), "sti-cache-hit-%")
			b.ReportMetric(100*s.Perf.RecycleRate(), "kernel-recycle-%")
		})
	}
}

// --- §4.3: search-heuristic validation --------------------------------------

// BenchmarkHeuristicHintRank reports how many corpus bugs trigger with the
// top-ranked (maximum-reordering) hint and the second rank (paper: 11 and 6
// of 19).
func BenchmarkHeuristicHintRank(b *testing.B) {
	var dist map[int]int
	var n int
	for i := 0; i < b.N; i++ {
		rows, d := bench.RunHeuristic(60)
		dist, n = d, len(rows)
	}
	b.ReportMetric(float64(dist[1]), "rank1-bugs")
	b.ReportMetric(float64(dist[2]), "rank2-bugs")
	b.ReportMetric(float64(n), "bugs-total")
}

// --- §6.4: OFence comparison -------------------------------------------------

// BenchmarkOFenceComparison reports how many of the 11 new bugs fall
// outside the static paired-barrier patterns (paper: 8).
func BenchmarkOFenceComparison(b *testing.B) {
	misses := 0
	for i := 0; i < b.N; i++ {
		_, misses = bench.RunOFence()
	}
	b.ReportMetric(float64(misses), "missed-by-ofence/11")
}

// --- Fig. 5: the hypothetical barrier tests (mechanism microbenchmarks) -----

func fig5Setup(b *testing.B, bugSwitch string) (*core.Env, *syzlang.Program, []*hints.Hint) {
	b.Helper()
	env := core.NewEnv([]string{"watchqueue"}, modules.Bugs(bugSwitch))
	target := modules.Target("watchqueue")
	p, err := target.Parse("r0 = wq_create()\nwq_post_notification(r0, 0x4)\nwq_pipe_read(r0)\n")
	if err != nil {
		b.Fatal(err)
	}
	sti := env.RunSTI(p)
	hs := hints.Calculate(sti.CallEvents[1], sti.CallEvents[2])
	if len(hs) == 0 {
		b.Fatal("no hints")
	}
	return env, p, hs
}

// BenchmarkFig5aStoreBarrierTest times one hypothetical-store-barrier MTI
// execution (delayed stores + breakpoint interleaving, Fig. 5a).
func BenchmarkFig5aStoreBarrierTest(b *testing.B) {
	env, p, hs := fig5Setup(b, "watchqueue:pipe_wmb")
	var h *hints.Hint
	for _, c := range hs {
		if c.Test == hints.StoreBarrierTest {
			h = c
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.RunMTI(core.MTIOpts{Prog: p, I: 1, J: 2, Hint: h})
	}
}

// BenchmarkFig5bLoadBarrierTest times one hypothetical-load-barrier MTI
// execution (versioned loads + breakpoint interleaving, Fig. 5b).
func BenchmarkFig5bLoadBarrierTest(b *testing.B) {
	env, p, hs := fig5Setup(b, "watchqueue:pipe_rmb")
	var h *hints.Hint
	for _, c := range hs {
		if c.Test == hints.LoadBarrierTest {
			h = c
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.RunMTI(core.MTIOpts{Prog: p, I: 1, J: 2, Hint: h})
	}
}

// --- Algorithm 1: scheduling-hint calculation -------------------------------

// BenchmarkAlgorithm1HintCalculation times hint computation for a profiled
// pair (the per-pair cost of §4.3).
func BenchmarkAlgorithm1HintCalculation(b *testing.B) {
	env := core.NewEnv([]string{"watchqueue"}, nil)
	target := modules.Target("watchqueue")
	p, err := target.Parse("r0 = wq_create()\nwq_post_notification(r0, 0x4)\nwq_pipe_read(r0)\n")
	if err != nil {
		b.Fatal(err)
	}
	sti := env.RunSTI(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hints.Calculate(sti.CallEvents[1], sti.CallEvents[2])
	}
}

// --- §10.1 / §3.3: LKMM litmus engine ---------------------------------------

// BenchmarkLitmusMP times the exhaustive litmus exploration of the
// message-passing shape (all interleavings x all directive assignments).
func BenchmarkLitmusMP(b *testing.B) {
	test := &lkmm.Test{
		Name: "MP",
		Threads: [][]lkmm.Op{
			{lkmm.W(0, 1), lkmm.Wmb(), lkmm.W(1, 1)},
			{lkmm.R(1, 0), lkmm.Rmb(), lkmm.R(0, 1)},
		},
		NumLocs: 2, NumRegs: 2,
	}
	for i := 0; i < b.N; i++ {
		lkmm.Run(test)
	}
}

// --- Ablations (design choices DESIGN.md calls out) ---------------------------

// BenchmarkAblationHintOrder compares the §4.3 search heuristic against its
// inversions on the Fig. 1 bug: MTI executions until the bug fires under
// heuristic / reverse / random hint ordering.
func BenchmarkAblationHintOrder(b *testing.B) {
	const title = "BUG: unable to handle kernel NULL pointer dereference in pipe_read"
	measure := func(order string) float64 {
		f := core.NewFuzzer(core.Config{
			Modules:   []string{"watchqueue"},
			Bugs:      modules.Bugs("watchqueue:pipe_wmb"),
			Seed:      5,
			UseSeeds:  true,
			HintOrder: order,
		})
		if f.RunUntil(title, 100) == nil {
			return -1
		}
		return float64(f.Stats.MTIs)
	}
	var h, r, rnd float64
	for i := 0; i < b.N; i++ {
		h, r, rnd = measure("heuristic"), measure("reverse"), measure("random")
	}
	b.ReportMetric(h, "MTIs-heuristic")
	b.ReportMetric(r, "MTIs-reverse")
	b.ReportMetric(rnd, "MTIs-random")
}

// BenchmarkAblationInterrupts shows why the custom scheduler must suspend
// vCPUs without delivering interrupts (§3.1): with an interrupt injected at
// every scheduling point, store-barrier tests stop finding S-S bugs.
func BenchmarkAblationInterrupts(b *testing.B) {
	count := func(interrupts bool) float64 {
		found := 0
		for _, bug := range modules.AllBugs() {
			if bug.Type != "S-S" || bug.Switch == "sbitmap:freed_order" {
				continue
			}
			f := core.NewFuzzer(core.Config{
				Modules:           []string{bug.Module},
				Bugs:              modules.Bugs(bug.Switch),
				Seed:              42,
				UseSeeds:          true,
				InterruptOnSwitch: interrupts,
			})
			want := bug.Title
			if want == "" {
				want = bug.SoftTitle
			}
			if f.RunUntil(want, 60) != nil {
				found++
			}
		}
		return float64(found)
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		without, with = count(false), count(true)
	}
	b.ReportMetric(without, "SS-bugs-no-interrupts")
	b.ReportMetric(with, "SS-bugs-with-interrupts")
}

// BenchmarkMinimize times reproducer minimization on the rds crash.
func BenchmarkMinimize(b *testing.B) {
	const title = "KASAN: slab-out-of-bounds Read in rds_loop_xmit"
	env := core.NewEnv([]string{"rds"}, modules.Bugs("rds:clear_bit_unlock"))
	target := modules.Target("rds")
	p, err := target.Parse("r0 = rds_socket()\nrds_sendmsg(r0, 0x4)\nrds_sendmsg(r0, 0x3)\nrds_loop_xmit(r0)\nrds_loop_xmit(r0)\n")
	if err != nil {
		b.Fatal(err)
	}
	sti := env.RunSTI(p)
	var hit *hints.Hint
	for _, h := range hints.Calculate(sti.CallEvents[2], sti.CallEvents[3]) {
		if res := env.RunMTI(core.MTIOpts{Prog: p, I: 2, J: 3, Hint: h}); res.Crash != nil {
			hit = h
			break
		}
	}
	if hit == nil {
		b.Fatal("no reproducing hint")
	}
	b.ResetTimer()
	var calls int
	for i := 0; i < b.N; i++ {
		m, _, _ := env.Minimize(p, 2, 3, hit, title)
		calls = len(m.Calls)
	}
	b.ReportMetric(float64(len(p.Calls)), "calls-before")
	b.ReportMetric(float64(calls), "calls-after")
}
