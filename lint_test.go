package ozz

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestExportedDocComments enforces the observability layer's documentation
// bar: every exported identifier in internal/obs and internal/engine — and
// the core Stats/PerfStats surface — carries a godoc comment (the comments
// state units and determinism, which operators rely on). This is the
// repo's revive/golint-style `exported` check, without the dependency.
func TestExportedDocComments(t *testing.T) {
	var missing []string

	checkDir(t, "internal/obs", nil, &missing)
	checkDir(t, "internal/engine", nil, &missing)
	// In core only the campaign-stats surface is held to the bar here.
	checkDir(t, "internal/core", map[string]bool{"Stats": true, "PerfStats": true}, &missing)

	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("missing doc comment: %s", m)
	}
}

// checkDir walks a package directory's non-test files. When only is nil,
// every exported top-level identifier is checked; otherwise just the named
// types, their fields, and their methods.
func checkDir(t *testing.T, dir string, only map[string]bool, missing *[]string) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		for path, file := range pkg.Files {
			rel := filepath.Base(path)
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFunc(dir, rel, d, only, missing)
				case *ast.GenDecl:
					checkGen(dir, rel, d, only, missing)
				}
			}
		}
	}
}

// recvTypeName unwraps a method receiver to its base type name.
func recvTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	typ := d.Recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr:
			typ = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

func checkFunc(dir, file string, d *ast.FuncDecl, only map[string]bool, missing *[]string) {
	if !d.Name.IsExported() {
		return
	}
	if recv := recvTypeName(d); only != nil && !only[recv] {
		return
	}
	if d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "" {
		*missing = append(*missing, dir+"/"+file+": func "+d.Name.Name)
	}
}

func checkGen(dir, file string, d *ast.GenDecl, only map[string]bool, missing *[]string) {
	groupDoc := d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != ""
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() || (only != nil && !only[s.Name.Name]) {
				continue
			}
			if !groupDoc && (s.Doc == nil || strings.TrimSpace(s.Doc.Text()) == "") {
				*missing = append(*missing, dir+"/"+file+": type "+s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok {
				checkFields(dir, file, s.Name.Name, st, missing)
			}
		case *ast.ValueSpec:
			if only != nil {
				continue
			}
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				// A doc on the const/var block covers its members
				// (idiomatic for enums like obs.Level's values).
				if groupDoc || (s.Doc != nil && strings.TrimSpace(s.Doc.Text()) != "") ||
					(s.Comment != nil && strings.TrimSpace(s.Comment.Text()) != "") {
					continue
				}
				*missing = append(*missing, dir+"/"+file+": "+name.Name)
			}
		}
	}
}

// checkFields requires a doc or trailing line comment on every exported
// struct field of an exported type.
func checkFields(dir, file, typeName string, st *ast.StructType, missing *[]string) {
	for _, f := range st.Fields.List {
		documented := (f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "") ||
			(f.Comment != nil && strings.TrimSpace(f.Comment.Text()) != "")
		for _, name := range f.Names {
			if name.IsExported() && !documented {
				*missing = append(*missing, dir+"/"+file+": field "+typeName+"."+name.Name)
			}
		}
	}
}
