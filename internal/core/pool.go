package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"ozz/internal/hints"
	"ozz/internal/memmodel"
	"ozz/internal/modules"
	"ozz/internal/obs"
	"ozz/internal/repair"
	"ozz/internal/report"
	"ozz/internal/syzlang"
)

// batchSize is the number of campaign steps planned, executed, and merged
// per scheduling round of the Pool. It is a fixed constant — deliberately
// independent of the worker count — because it is part of the campaign's
// deterministic semantics: corpus feedback (mutating coverage-growing
// programs) crosses batch boundaries only, so a campaign's results are
// byte-identical at any worker count. Larger than any sane worker count so
// stragglers at the batch barrier cost little parallelism.
const batchSize = 32

// covShards is the stripe count of ShardedCov. 64 stripes keep lock
// contention negligible at any realistic worker count.
const covShards = 64

// ShardedCov is a mutex-striped coverage edge set, safe for concurrent
// merging and reading. The final content of the set is independent of merge
// order (set union commutes), so concurrent publication never compromises
// campaign determinism.
type ShardedCov struct {
	shards [covShards]covShard
}

type covShard struct {
	mu sync.Mutex
	m  map[uint64]struct{}
}

// NewShardedCov returns an empty sharded coverage set.
func NewShardedCov() *ShardedCov {
	c := &ShardedCov{}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]struct{})
	}
	return c
}

// shardOf spreads edges over stripes by multiplicative hashing (edge values
// are structured — prev<<32|site — so raw low bits would collide).
func shardOf(edge uint64) int {
	return int((edge * 0x9e3779b97f4a7c15) >> (64 - 6))
}

// MergeNew inserts every edge of cov and returns how many were new.
func (c *ShardedCov) MergeNew(cov map[uint64]struct{}) int {
	grew := 0
	for e := range cov {
		s := &c.shards[shardOf(e)]
		s.mu.Lock()
		if _, ok := s.m[e]; !ok {
			s.m[e] = struct{}{}
			grew++
		}
		s.mu.Unlock()
	}
	return grew
}

// covRef is one edge reference inside a MergeBatch, tagged with the index
// of the earliest batch map that contributed it.
type covRef struct {
	edge uint64
	mi   int32
}

// MergeBatch is reusable scratch for MergeNewOrdered: per-shard buckets of
// edge references. A zero value is ready to use; reusing one across calls
// makes steady-state batch merging allocation-free. Not safe for
// concurrent use of the same batch.
type MergeBatch struct {
	buckets [covShards][]covRef
}

// MergeNewOrdered inserts the union of maps into the set with one lock
// round per touched shard — instead of one lock acquisition per edge — and
// returns how many edges each map newly contributed. Novelty is attributed
// in map order: an edge appearing in several maps counts only for the
// earliest, byte-identical to merging the maps one at a time with
// MergeNew. Nil maps are allowed and contribute nothing. batch may be nil
// (scratch is then allocated per call).
func (c *ShardedCov) MergeNewOrdered(maps []map[uint64]struct{}, batch *MergeBatch) []int {
	counts := make([]int, len(maps))
	if batch == nil {
		batch = &MergeBatch{}
	}
	for i := range batch.buckets {
		batch.buckets[i] = batch.buckets[i][:0]
	}
	for mi, m := range maps {
		for e := range m {
			si := shardOf(e)
			batch.buckets[si] = append(batch.buckets[si], covRef{edge: e, mi: int32(mi)})
		}
	}
	for si := range batch.buckets {
		refs := batch.buckets[si]
		if len(refs) == 0 {
			continue
		}
		s := &c.shards[si]
		s.mu.Lock()
		for _, r := range refs {
			if _, ok := s.m[r.edge]; !ok {
				s.m[r.edge] = struct{}{}
				counts[r.mi]++
			}
		}
		s.mu.Unlock()
	}
	return counts
}

// Len returns the number of distinct edges.
func (c *ShardedCov) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Snapshot copies the set into one plain map.
func (c *ShardedCov) Snapshot() map[uint64]struct{} {
	out := make(map[uint64]struct{}, c.Len())
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for e := range s.m {
			out[e] = struct{}{}
		}
		s.mu.Unlock()
	}
	return out
}

// SafeReportSet wraps report.Set for concurrent use: the campaign merger
// adds findings while progress printers and other goroutines read counts
// and titles.
type SafeReportSet struct {
	mu  sync.Mutex
	set *report.Set
}

// NewSafeReportSet returns an empty guarded set.
func NewSafeReportSet() *SafeReportSet {
	return &SafeReportSet{set: report.NewSet()}
}

// Add inserts the report unless its title is known; reports true when new.
func (s *SafeReportSet) Add(r *report.Report) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.set.Add(r)
}

// Get returns the report with the given title, or nil.
func (s *SafeReportSet) Get(title string) *report.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.set.Get(title)
}

// Len returns the number of unique reports.
func (s *SafeReportSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.set.Len()
}

// All returns the reports in discovery order.
func (s *SafeReportSet) All() []*report.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.set.All()
}

// Titles returns the sorted unique titles.
func (s *SafeReportSet) Titles() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.set.Titles()
}

// Pool is the parallel campaign executor: N workers execute OZZ pipeline
// steps (STI profiling, hint calculation, hypothetical-barrier MTI runs)
// concurrently over a shared Env, publishing into a sharded coverage map
// and a deduplicated, concurrency-guarded report set.
//
// Determinism: each step's random stream is derived from (campaign seed,
// step index) — not from a shared sequential generator — and results are
// merged in step-index order at fixed batch boundaries. A campaign with a
// given Config therefore produces byte-identical Stats (modulo the Perf
// timing block), coverage, corpus, and reports at ANY worker count,
// regardless of completion order. Heavy work (kernel executions) runs in
// parallel; only planning and merging are serialized, and both are cheap.
type Pool struct {
	// Workers is the executor width. NewPool defaults it to
	// runtime.GOMAXPROCS(0).
	Workers int

	cfg    Config
	env    *Env
	target *syzlang.Target
	co     *campaignObs

	// Cov is the global coverage set, concurrently readable.
	Cov *ShardedCov
	// Reports collects deduplicated findings, concurrently readable.
	Reports *SafeReportSet

	mu      sync.Mutex // guards seeds, corpus, Stats, steps, repairs
	seeds   []*syzlang.Program
	corpus  []*syzlang.Program
	stats   Stats
	steps   uint64 // next global step index
	start   time.Time
	repairs map[string]*repair.Result

	// mergeBatch/mergeMaps are batch-merge scratch, reused under mu so the
	// per-batch coverage publication allocates nothing in steady state.
	mergeBatch MergeBatch
	mergeMaps  []map[uint64]struct{}
}

// NewPool builds a parallel campaign executor. workers <= 0 selects
// runtime.GOMAXPROCS(0). The Config fields have the same meaning as for
// NewFuzzer.
func NewPool(cfg Config, workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg.normalize()
	env := newEnvFromConfig(cfg)
	p := &Pool{
		Workers: workers,
		cfg:     cfg,
		env:     env,
		target:  modules.Target(cfg.Modules...),
		co:      newCampaignObs(env.Obs(), cfg.Events),
		Cov:     NewShardedCov(),
		Reports: NewSafeReportSet(),
		repairs: make(map[string]*repair.Result),
	}
	// The pool's width is authoritative for any Stats view over this
	// registry (the Snapshot-hardcodes-1 fix).
	p.co.claimWorkers(workers, true)
	if cfg.UseSeeds {
		for _, src := range modules.Seeds(cfg.Modules...) {
			if sp, err := p.target.Parse(src); err == nil {
				p.seeds = append(p.seeds, sp)
			}
		}
	}
	return p
}

// Env exposes the shared execution environment (profile cache and kernel
// recycler included).
func (p *Pool) Env() *Env { return p.env }

// RepairResult returns the structured fence-repair search result for a
// finding's title, or nil when repair is disabled or the title is
// unknown. Concurrency-safe.
func (p *Pool) RepairResult(title string) *repair.Result {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.repairs[title]
}

// Obs returns the metrics registry the campaign publishes into.
func (p *Pool) Obs() *obs.Registry { return p.co.reg }

// AddSeeds enqueues programs to run ahead of random generation (corpus
// resume). Call before Run.
func (p *Pool) AddSeeds(ps []*syzlang.Program) {
	p.mu.Lock()
	p.seeds = append(p.seeds, ps...)
	p.mu.Unlock()
}

// Stats returns a copy of the campaign counters (concurrently callable; the
// Perf block is refreshed on every call).
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.CorpusLen = len(p.corpus)
	p.fillPerf(&s)
	return s
}

// CorpusLen returns the current coverage-corpus size.
func (p *Pool) CorpusLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.corpus)
}

// CorpusPrograms returns copies of the corpus programs.
func (p *Pool) CorpusPrograms() []*syzlang.Program {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*syzlang.Program, len(p.corpus))
	for i, q := range p.corpus {
		out[i] = q.Clone()
	}
	return out
}

// CoverageEdges returns the number of distinct edges covered so far.
func (p *Pool) CoverageEdges() int { return p.Cov.Len() }

// fillPerf refreshes the scheduling-dependent Perf block. Caller holds
// p.mu (it reads p.start).
func (p *Pool) fillPerf(s *Stats) {
	s.Perf.Workers = p.Workers
	if !p.start.IsZero() {
		s.Perf.Elapsed = time.Since(p.start)
	}
	s.Perf.STICacheHits, s.Perf.STICacheMisses = p.env.STICacheCounters()
	s.Perf.KernelsRecycled, s.Perf.KernelsBuilt = p.env.KernelCounters()
	if sec := s.Perf.Elapsed.Seconds(); sec > 0 {
		s.Perf.TestsPerSec = float64(s.Steps) / sec
		s.Perf.ExecsPerSec = float64(s.Perf.KernelsRecycled+s.Perf.KernelsBuilt) / sec
	}
}

// jobSeed derives the random seed of one campaign step from the campaign
// seed and the step's global index (splitmix64 finalizer): step i draws
// from the same stream no matter which worker runs it or when.
func jobSeed(seed int64, idx uint64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(idx+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// job is one planned campaign step: the program to test and the step's
// private random stream (already advanced past program selection).
type job struct {
	idx  uint64
	prog *syzlang.Program
	rng  *rand.Rand
}

// jobReport is one finding produced inside a job. rebaseTests marks
// reports whose Tests field counts job-local MTIs at discovery time; the
// merger rebases it onto the campaign-cumulative count in index order, so
// the final value matches what a serial run would have reported.
type jobReport struct {
	r           *report.Report
	rebaseTests bool
	// repair is the finding's fence-repair search result (Config.Repair
	// campaigns); the merger publishes the winning instance's result.
	repair *repair.Result
}

// jobResult is the outcome of one executed step, merged in index order.
type jobResult struct {
	idx     uint64
	prog    *syzlang.Program
	stiCov  map[uint64]struct{} // STI coverage (corpus admission signal)
	mtiCov  map[uint64]struct{} // union of MTI coverage
	reports []jobReport
	mtis    uint64
	hints   uint64
	vacuous uint64
	// migrations/deferred mirror Stats.Migrations/DeferredTasks for this
	// step's primary MTI loop (commutative sums, merged in index order).
	migrations uint64
	deferred   uint64
}

// planStep picks step idx's program exactly like Fuzzer.nextProgram, from
// the corpus as of the current batch boundary, using the step's private
// rng. Caller holds p.mu.
func (p *Pool) planStep(idx uint64) job {
	rng := rand.New(rand.NewSource(jobSeed(p.cfg.Seed, idx)))
	var prog *syzlang.Program
	switch {
	case len(p.seeds) > 0:
		prog = p.seeds[0]
		p.seeds = p.seeds[1:]
	case len(p.corpus) > 0 && rng.Intn(3) != 0:
		prog = p.target.Mutate(rng, p.corpus[rng.Intn(len(p.corpus))])
	default:
		mods := p.target.Modules()
		prog = p.target.GenerateFocused(rng, p.cfg.ProgLen, mods[rng.Intn(len(mods))])
	}
	return job{idx: idx, prog: prog, rng: rng}
}

// runJob executes one campaign step: STI profile (cached), scheduling
// hints, and the pair's MTI runs — the worker-side mirror of Fuzzer.Step,
// writing only to the job-local result. wid tags this worker's event
// stream (1..Workers).
func (p *Pool) runJob(jb job, wid int) jobResult {
	res := jobResult{idx: jb.idx, prog: jb.prog}
	defer func() {
		p.co.ev.Info(wid, "step", map[string]any{
			"step": jb.idx, "mtis": res.mtis, "hints": res.hints,
			"vacuous": res.vacuous, "reports": len(res.reports),
		})
	}()
	pStart := time.Now()
	sti := p.env.RunSTICached(jb.prog)
	observe(p.co.stProfile, pStart)
	res.stiCov = sti.Cov
	if sti.Crash != nil {
		res.reports = append(res.reports, jobReport{r: &report.Report{
			Title:   sti.Crash.Title,
			Oracle:  sti.Crash.Oracle,
			OOO:     false,
			Program: jb.prog.String(),
		}})
		return res // crashing input: nothing to pair
	}
	for _, s := range sti.Soft {
		res.reports = append(res.reports, jobReport{r: &report.Report{
			Title: s, Oracle: "semantic", OOO: false, Program: jb.prog.String(),
		}})
	}

	res.mtiCov = make(map[uint64]struct{})
	pairs := pairOrder(len(jb.prog.Calls))
	if len(pairs) > p.cfg.MaxPairs {
		pairs = pairs[:p.cfg.MaxPairs]
	}
	for _, pr := range pairs {
		i, j := pr[0], pr[1]
		if len(sti.CallEvents[i]) == 0 || len(sti.CallEvents[j]) == 0 {
			continue
		}
		hStart := time.Now()
		hs := hints.CalculateModel(sti.CallEvents[i], sti.CallEvents[j], p.cfg.Model)
		observe(p.co.stHints, hStart)
		res.hints += uint64(len(hs))
		orderHints(hs, p.cfg.HintOrder, jb.rng)
		if len(hs) > p.cfg.MaxHintsPerPair {
			hs = hs[:p.cfg.MaxHintsPerPair]
		}
		for rank, h := range hs {
			mStart := time.Now()
			mres := p.env.RunMTI(MTIOpts{Prog: jb.prog, I: i, J: j, Hint: h})
			observe(p.co.stMTI, mStart)
			res.mtis++
			res.migrations += uint64(mres.Migrations)
			res.deferred += uint64(mres.DeferredTasks)
			if !mres.Fired {
				res.vacuous++
			}
			// Record only edges the STI did not already cover: the STI
			// coverage of the same step merges first, so sti-duplicate
			// edges could never count as new — dropping them here shrinks
			// the merge work without changing any outcome.
			for e := range mres.Cov {
				if _, dup := res.stiCov[e]; !dup {
					res.mtiCov[e] = struct{}{}
				}
			}
			p.harvestJob(&res, jb.prog, i, j, h, rank, mres)
		}
	}
	return res
}

// harvestJob converts an MTI result into job-local reports — the mirror of
// Fuzzer.harvest, with Tests counted job-locally (rebased at merge).
func (p *Pool) harvestJob(res *jobResult, prog *syzlang.Program, i, j int, h *hints.Hint, rank int, mres *MTIResult) {
	if mres.Crash != nil {
		ooo := !mres.PrefixCrash
		if ooo {
			tStart := time.Now()
			rerun := p.env.RunMTI(MTIOpts{Prog: prog, I: i, J: j, Hint: h, NoReorder: true})
			observe(p.co.stTriage, tStart)
			if rerun.Crash != nil && rerun.Crash.Title == mres.Crash.Title {
				ooo = false
			}
		}
		r := &report.Report{
			Title:   mres.Crash.Title,
			Oracle:  mres.Crash.Oracle,
			OOO:     ooo,
			Program: prog.String(),
		}
		var rr *repair.Result
		if r.OOO {
			r.Type = h.Type()
			r.Strategy = nonDefaultStrategy(p.cfg.Strategy)
			r.HypBarrier = fmt.Sprintf("before %s (%s)", modules.SiteName(h.Sched), h.Test)
			for _, s := range h.Reorder {
				r.ReorderedSites = append(r.ReorderedSites, modules.SiteName(s))
			}
			r.Pair = PairName(prog, i, j)
			r.HintRank = rank + 1
			r.Tests = int(res.mtis)
			// Cross-model probe, job-side so the runs parallelize with the
			// rest of the batch and Models is populated before the report is
			// ever published. The Get is a cheap filter against re-probing a
			// title an earlier batch already merged; duplicates racing within
			// one in-flight batch probe redundantly (same deterministic
			// result), and only the merge-ordered first instance survives.
			if p.Reports.Get(r.Title) == nil {
				r.Models = probeModels(p.env, p.cfg.Model, prog, i, j, h, func(pr *MTIResult) bool {
					return pr.Crash != nil && pr.Crash.Title == r.Title
				})
				// Fence repair under the same guard: racing in-batch
				// duplicates search redundantly but deterministically, and
				// only the merge-ordered first instance's result is kept.
				if rr = repairFinding(p.env, &p.cfg, p.co, prog, i, j, h, r.Title, false); rr != nil {
					r.SuggestedFix = rr.Lines()
				}
			}
		}
		res.reports = append(res.reports, jobReport{r: r, rebaseTests: r.OOO, repair: rr})
	}
	for _, s := range mres.Soft {
		r := &report.Report{
			Title: s, Oracle: "semantic", OOO: true,
			Type:       h.Type(),
			Strategy:   nonDefaultStrategy(p.cfg.Strategy),
			HypBarrier: fmt.Sprintf("before %s (%s)", modules.SiteName(h.Sched), h.Test),
			Pair:       PairName(prog, i, j),
			Program:    prog.String(),
			HintRank:   rank + 1,
			Tests:      int(res.mtis),
		}
		var rr *repair.Result
		if p.Reports.Get(r.Title) == nil {
			r.Models = probeModels(p.env, p.cfg.Model, prog, i, j, h, func(pr *MTIResult) bool {
				for _, ps := range pr.Soft {
					if ps == s {
						return true
					}
				}
				return false
			})
			if rr = repairFinding(p.env, &p.cfg, p.co, prog, i, j, h, r.Title, true); rr != nil {
				r.SuggestedFix = rr.Lines()
			}
		}
		res.reports = append(res.reports, jobReport{r: r, rebaseTests: true, repair: rr})
	}
}

// merge folds one step result into the campaign state. Called in strict
// step-index order; that ordering is what makes coverage novelty, corpus
// admission, report deduplication, and Tests rebasing deterministic.
// The step's coverage maps were already merged by the caller's batched
// MergeNewOrdered; stiNew is the STI map's novelty count from that merge
// (the corpus-admission signal). Caller holds p.mu.
func (p *Pool) merge(res *jobResult, stiNew int, found *[]*report.Report) {
	base := p.stats.MTIs
	p.stats.Steps++
	p.stats.STIs++
	p.stats.MTIs += res.mtis
	p.stats.Hints += res.hints
	p.stats.Vacuous += res.vacuous
	p.stats.Migrations += res.migrations
	p.stats.DeferredTasks += res.deferred
	p.co.steps.Inc()
	p.co.stis.Inc()
	p.co.mtis.Add(res.mtis)
	p.co.hintsTotal.Add(res.hints)
	p.co.vacuous.Add(res.vacuous)
	if stiNew > 0 {
		p.stats.NewCov++
		p.co.newCov.Inc()
		p.corpus = append(p.corpus, res.prog)
		p.stats.CorpusLen = len(p.corpus)
	}
	for _, jr := range res.reports {
		if jr.rebaseTests {
			jr.r.Tests += int(base)
		}
		added := p.Reports.Add(jr.r)
		p.co.reportOutcome(added, jr.r.OOO)
		if added {
			if jr.repair != nil {
				p.repairs[jr.r.Title] = jr.repair
			}
			// Counting divergences here, not at probe time, keeps the
			// counter exact: a title probed redundantly by racing in-batch
			// duplicates still increments once, for the merged instance.
			if len(jr.r.Models) > 0 && len(jr.r.Models) < len(memmodel.All()) {
				p.co.modelDivergences.Inc()
			}
			*found = append(*found, jr.r)
		}
	}
	p.co.corpusLen.Set(float64(len(p.corpus)))
}

// Run executes `steps` campaign steps across the pool's workers and
// returns the new reports in deterministic discovery order.
func (p *Pool) Run(steps int) []*report.Report {
	return p.run(steps, time.Time{})
}

// RunFor executes whole batches until the wall-clock budget is spent and
// returns the new reports. The step sequence is the same deterministic
// sequence Run walks; only where it stops depends on the clock.
func (p *Pool) RunFor(budget time.Duration) []*report.Report {
	return p.run(-1, time.Now().Add(budget))
}

func (p *Pool) run(steps int, deadline time.Time) []*report.Report {
	if steps == 0 {
		return nil
	}
	p.mu.Lock()
	if p.start.IsZero() {
		p.start = time.Now()
	}
	p.mu.Unlock()

	jobs := make(chan job, batchSize)
	results := make(chan jobResult, batchSize)
	var wg sync.WaitGroup
	for w := 0; w < p.Workers; w++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			for jb := range jobs {
				results <- p.runJob(jb, wid)
			}
		}(w + 1)
	}

	var found []*report.Report
	remaining := steps
	for remaining != 0 {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		n := batchSize
		if remaining > 0 && remaining < n {
			n = remaining
		}
		// Plan the batch against the corpus as of this boundary.
		p.mu.Lock()
		batch := make([]job, n)
		for bi := 0; bi < n; bi++ {
			gStart := time.Now()
			batch[bi] = p.planStep(p.steps)
			observe(p.co.stGenerate, gStart)
			p.steps++
		}
		p.mu.Unlock()
		// Execute in parallel; buffer capacities fit a whole batch, so
		// dispatch can never deadlock against result publication.
		for _, jb := range batch {
			jobs <- jb
		}
		pending := make(map[uint64]*jobResult, n)
		for done := 0; done < n; done++ {
			r := <-results
			pending[r.idx] = &r
		}
		// Merge in step-index order. Coverage publishes per batch: the
		// interleaved [sti_0, mti_0, sti_1, mti_1, ...] map order makes the
		// shard-grouped merge's novelty attribution byte-identical to the
		// former per-step MergeNew sequence, with one lock round per shard
		// instead of one per edge.
		p.mu.Lock()
		mStart := time.Now()
		p.mergeMaps = p.mergeMaps[:0]
		for _, jb := range batch {
			r := pending[jb.idx]
			p.mergeMaps = append(p.mergeMaps, r.stiCov, r.mtiCov)
		}
		counts := p.Cov.MergeNewOrdered(p.mergeMaps, &p.mergeBatch)
		for bi, jb := range batch {
			p.merge(pending[jb.idx], counts[2*bi], &found)
		}
		observe(p.co.stMerge, mStart)
		p.fillPerf(&p.stats)
		p.mu.Unlock()
		p.co.covEdges.Set(float64(p.Cov.Len()))
		if remaining > 0 {
			remaining -= n
		}
	}
	close(jobs)
	wg.Wait()
	return found
}

// orderHints applies the HintOrder configuration knob to a freshly
// calculated hint list (shared by the serial fuzzer and pool workers).
func orderHints(hs []*hints.Hint, order string, rng *rand.Rand) {
	switch order {
	case "", "heuristic":
		// Calculate already sorted by the search heuristic.
	case "reverse":
		for a, b := 0, len(hs)-1; a < b; a, b = a+1, b-1 {
			hs[a], hs[b] = hs[b], hs[a]
		}
	case "random":
		rng.Shuffle(len(hs), func(a, b int) { hs[a], hs[b] = hs[b], hs[a] })
	}
}

// pairOrder enumerates call pairs (i, j), i < j, adjacent pairs first —
// concurrency bugs overwhelmingly involve calls operating on the same
// just-created resource.
func pairOrder(n int) [][2]int {
	var pairs [][2]int
	for d := 1; d < n; d++ {
		for i := 0; i+d < n; i++ {
			pairs = append(pairs, [2]int{i, i + d})
		}
	}
	return pairs
}
