package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"ozz/internal/engine"
	"ozz/internal/hints"
	"ozz/internal/memmodel"
	"ozz/internal/modules"
	"ozz/internal/obs"
	"ozz/internal/repair"
	"ozz/internal/report"
	"ozz/internal/syzlang"
)

// Config parameterizes a fuzzing campaign.
type Config struct {
	// Modules to load (empty = all).
	Modules []string
	// Bugs holds the active bug switches.
	Bugs modules.BugSet
	// Seed makes the campaign reproducible.
	Seed int64
	// ProgLen is the target call count of generated programs.
	ProgLen int
	// MaxHintsPerPair bounds how many top-ranked scheduling hints are
	// executed per call pair per step (the heuristic of §4.3 sorts them).
	MaxHintsPerPair int
	// MaxPairs bounds how many call pairs are tested per program.
	MaxPairs int
	// UseSeeds feeds the modules' seed corpus before random generation
	// (§6.1: "we use seeds provided by Syzkaller").
	UseSeeds bool
	// NrCPU overrides the simulated CPU count (default 4).
	NrCPU int
	// HintOrder selects the order in which a pair's scheduling hints are
	// executed — the §4.3 search-heuristic ablation knob:
	// "heuristic" (default: most-reordered first), "reverse"
	// (fewest-reordered first), or "random".
	HintOrder string
	// InterruptOnSwitch forwards to Env (the interrupt-injection
	// ablation).
	InterruptOnSwitch bool
	// Model is the memory model the campaign emulates (nil = LKMM).
	// Hints, directive plans, and triage all run under it; new OOO
	// findings are additionally probed under every other registered
	// model to fill the report's "reorders under" line.
	Model *memmodel.Table
	// Strategy selects the engine strategy MTI runs execute under:
	// "" or "ooo" (default), "migration", or "deferred" — see
	// engine.ParseStrategy. Migration performs real cross-CPU task moves
	// at migration-sensitive scheduling points (Table 4 #6); Deferred
	// models interrupt handlers as schedulable deferred-work tasks.
	// Campaign findings under a non-default strategy carry it in
	// report.Report.Strategy.
	Strategy string
	// Repair, when true, runs the automatic fence-repair search
	// (internal/repair) on every newly-discovered OOO finding and
	// attaches the ranked patch suggestions to the report's SuggestedFix
	// block; structured results are retrievable via RepairResult. The
	// search re-runs the reproducer through the engine but touches
	// neither the deterministic Stats counters nor coverage, so campaign
	// findings and goldens are unaffected.
	Repair bool
	// Obs, when non-nil, is the metrics registry the campaign and its
	// engine publish into; nil gives the campaign a fresh private
	// registry (retrieve it with Obs()). Sharing one registry across
	// campaigns is legal but makes the engine's kernel/cache counters
	// cumulative across them. Purely observational: it never affects the
	// deterministic counters or findings.
	Obs *obs.Registry
	// Events, when non-nil, receives the campaign's structured JSONL
	// event stream (one "step" event per completed step, worker-tagged).
	// Nil disables event logging at zero cost.
	Events *obs.EventLog
}

// normalize resolves the campaign-level defaults shared by the serial
// fuzzer and the parallel pool. Kernel-level defaults (NrCPU) resolve in
// engine.Config.normalize — zero passes through untouched here.
func (c *Config) normalize() {
	if c.ProgLen == 0 {
		c.ProgLen = 4
	}
	if c.MaxHintsPerPair == 0 {
		c.MaxHintsPerPair = 8
	}
	if c.MaxPairs == 0 {
		c.MaxPairs = 8
	}
	if c.Model == nil {
		c.Model = memmodel.LKMM
	}
}

// newEnvFromConfig builds the execution environment both campaign
// executors share, forwarding the config's kernel knobs and registry.
func newEnvFromConfig(cfg Config) *Env {
	env := NewEnvObs(cfg.Modules, cfg.Bugs, cfg.Obs)
	env.NrCPU = cfg.NrCPU
	env.InterruptOnSwitch = cfg.InterruptOnSwitch
	env.Model = cfg.Model
	st, err := engine.ParseStrategy(cfg.Strategy)
	if err != nil {
		// Mirrors modules.Target's unknown-module contract: a bad label is
		// a caller bug, and CLIs validate the flag before building a
		// campaign.
		panic(err)
	}
	env.Strategy = st
	return env
}

// Stats counts fuzzer work, mirroring the paper's execution metrics. All
// fields except Perf are deterministic functions of the campaign Config —
// identical across worker counts and runs.
type Stats struct {
	Steps     uint64 // fuzzer iterations
	STIs      uint64 // single-threaded executions
	MTIs      uint64 // multi-threaded (hypothetical barrier) test executions
	Hints     uint64 // scheduling hints computed
	Vacuous   uint64 // MTIs whose scheduling point never fired
	NewCov    uint64 // runs that grew coverage
	CorpusLen int    // programs in the coverage corpus

	// Migrations counts real cross-CPU task moves the Migration strategy
	// performed at scheduling points (0 under other strategies). Like the
	// counters above it sums only the primary MTI loop — triage re-runs
	// and cross-model probes are observation-only — so it is identical
	// across worker counts.
	Migrations uint64
	// DeferredTasks counts deferred-work handler tasks the Deferred
	// strategy spawned at deferral points (0 under other strategies);
	// primary MTI loop only, deterministic like Migrations.
	DeferredTasks uint64

	// Perf holds throughput and reuse metrics. Unlike the counters above
	// these depend on wall-clock time and goroutine scheduling, so they
	// vary run to run; determinism comparisons must zero this block.
	Perf PerfStats
}

// PerfStats are the scheduling-dependent campaign metrics (§6.3.2
// throughput and the executor's state-reuse rates).
type PerfStats struct {
	Workers         int           // campaign executor width (the pool's worker count; 1 serial)
	Elapsed         time.Duration // wall-clock time covered by the counters below
	TestsPerSec     float64       // campaign steps per second
	ExecsPerSec     float64       // kernel executions per second (all workers)
	STICacheHits    uint64        // STI profile lookups served from the cache
	STICacheMisses  uint64        // STI profile lookups that ran a profiling execution
	KernelsRecycled uint64        // kernel acquisitions reusing a pooled instance (Reset)
	KernelsBuilt    uint64        // kernel acquisitions that constructed a fresh instance
}

// STICacheHitRate returns the fraction of STI profile lookups served from
// the cache (0 when no lookups happened).
func (p PerfStats) STICacheHitRate() float64 {
	total := p.STICacheHits + p.STICacheMisses
	if total == 0 {
		return 0
	}
	return float64(p.STICacheHits) / float64(total)
}

// RecycleRate returns the fraction of kernel executions that reused a
// pooled kernel instead of constructing one.
func (p PerfStats) RecycleRate() float64 {
	total := p.KernelsRecycled + p.KernelsBuilt
	if total == 0 {
		return 0
	}
	return float64(p.KernelsRecycled) / float64(total)
}

// MetricsLine formats the campaign metrics as a single log line
// (cmd/ozz -v prints it at the end of a campaign).
func (s Stats) MetricsLine() string {
	perWorker := s.Perf.ExecsPerSec
	if s.Perf.Workers > 1 {
		perWorker /= float64(s.Perf.Workers)
	}
	return fmt.Sprintf(
		"metrics: %.1f tests/s, %.1f exec/s/worker (%d workers), sti-cache %.0f%% hit, kernel-pool %.0f%% recycled",
		s.Perf.TestsPerSec, perWorker, s.Perf.Workers,
		100*s.Perf.STICacheHitRate(), 100*s.Perf.RecycleRate())
}

// Fuzzer is OZZ's fuzzing loop (Fig. 6): generate STI -> profile ->
// calculate scheduling hints -> run MTIs -> collect OOO bug reports.
type Fuzzer struct {
	cfg    Config
	env    *Env
	target *syzlang.Target
	rng    *rand.Rand
	start  time.Time
	co     *campaignObs

	corpus []*syzlang.Program
	seeds  []*syzlang.Program
	cov    map[uint64]struct{}

	// repairs holds the structured fence-repair result per finding title
	// (Config.Repair campaigns only).
	repairs map[string]*repair.Result

	// Reports collects deduplicated findings.
	Reports *report.Set
	// Stats counts work done.
	Stats Stats
}

// NewFuzzer builds a fuzzer for the configuration.
func NewFuzzer(cfg Config) *Fuzzer {
	cfg.normalize()
	env := newEnvFromConfig(cfg)
	f := &Fuzzer{
		cfg:     cfg,
		env:     env,
		target:  modules.Target(cfg.Modules...),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		start:   time.Now(),
		co:      newCampaignObs(env.Obs(), cfg.Events),
		cov:     make(map[uint64]struct{}),
		repairs: make(map[string]*repair.Result),
		Reports: report.NewSet(),
	}
	// Claim executor width 1 only if no pool sharing this registry
	// already claimed its real width.
	f.co.claimWorkers(1, false)
	if cfg.UseSeeds {
		for _, src := range modules.Seeds(cfg.Modules...) {
			if p, err := f.target.Parse(src); err == nil {
				f.seeds = append(f.seeds, p)
			}
		}
	}
	return f
}

// Env exposes the execution environment (for tools layered on the fuzzer).
func (f *Fuzzer) Env() *Env { return f.env }

// Obs returns the metrics registry the campaign publishes into.
func (f *Fuzzer) Obs() *obs.Registry { return f.co.reg }

// Snapshot returns the campaign counters with the Perf block filled in
// from the registry: the environment's reuse counters, the campaign
// worker-width gauge, and the elapsed wall clock. Reading the width from
// the registry (instead of hardcoding 1) makes Stats views over a shared
// registry report the pool's actual worker count.
func (f *Fuzzer) Snapshot() Stats {
	s := f.Stats
	s.Perf.Workers = f.co.workersValue()
	s.Perf.Elapsed = time.Since(f.start)
	s.Perf.STICacheHits, s.Perf.STICacheMisses = f.env.STICacheCounters()
	s.Perf.KernelsRecycled, s.Perf.KernelsBuilt = f.env.KernelCounters()
	if sec := s.Perf.Elapsed.Seconds(); sec > 0 {
		s.Perf.TestsPerSec = float64(s.Steps) / sec
		s.Perf.ExecsPerSec = float64(s.Perf.KernelsRecycled+s.Perf.KernelsBuilt) / sec
	}
	return s
}

// nextProgram picks the next single-threaded input: pending seeds first,
// then mutations of the coverage corpus, then fresh generations.
func (f *Fuzzer) nextProgram() *syzlang.Program {
	if len(f.seeds) > 0 {
		p := f.seeds[0]
		f.seeds = f.seeds[1:]
		return p
	}
	if len(f.corpus) > 0 && f.rng.Intn(3) != 0 {
		base := f.corpus[f.rng.Intn(len(f.corpus))]
		return f.target.Mutate(f.rng, base)
	}
	// Focus each generated program on one module (syzkaller's call
	// priorities have the same effect): concurrent pairs then operate on
	// shared state, which is what the hypothetical barrier test needs.
	mods := f.target.Modules()
	return f.target.GenerateFocused(f.rng, f.cfg.ProgLen, mods[f.rng.Intn(len(mods))])
}

// mergeCov merges run coverage into the global map and reports whether new
// edges appeared.
func (f *Fuzzer) mergeCov(cov map[uint64]struct{}) bool {
	grew := false
	for e := range cov {
		if _, ok := f.cov[e]; !ok {
			f.cov[e] = struct{}{}
			grew = true
		}
	}
	return grew
}

// CoverageEdges returns the number of distinct edges covered so far.
func (f *Fuzzer) CoverageEdges() int { return len(f.cov) }

// Step runs one fuzzer iteration and returns the new reports it produced.
func (f *Fuzzer) Step() []*report.Report {
	f.Stats.Steps++
	f.co.steps.Inc()
	stepIdx := f.Stats.Steps
	gStart := time.Now()
	p := f.nextProgram()
	observe(f.co.stGenerate, gStart)

	// Phase 1: single-threaded profiling run (§4.2), memoized — repeat
	// programs (seed replays, stable mutants) skip re-profiling.
	pStart := time.Now()
	sti := f.env.RunSTICached(p)
	observe(f.co.stProfile, pStart)
	f.Stats.STIs++
	f.co.stis.Inc()
	var found []*report.Report
	if f.mergeCov(sti.Cov) {
		f.Stats.NewCov++
		f.co.newCov.Inc()
		f.corpus = append(f.corpus, p)
		f.Stats.CorpusLen = len(f.corpus)
	}
	defer func() {
		f.co.covEdges.Set(float64(len(f.cov)))
		f.co.corpusLen.Set(float64(len(f.corpus)))
		f.co.ev.Info(0, "step", map[string]any{
			"step": stepIdx, "mtis": f.Stats.MTIs, "new_reports": len(found),
			"corpus": len(f.corpus), "cov_edges": len(f.cov),
		})
	}()
	if sti.Crash != nil {
		r := &report.Report{
			Title:   sti.Crash.Title,
			Oracle:  sti.Crash.Oracle,
			OOO:     false,
			Program: p.String(),
		}
		added := f.Reports.Add(r)
		f.co.reportOutcome(added, r.OOO)
		if added {
			found = append(found, r)
		}
		return found // crashing input: nothing to pair
	}
	for _, s := range sti.Soft {
		r := &report.Report{Title: s, Oracle: "semantic", OOO: false, Program: p.String()}
		added := f.Reports.Add(r)
		f.co.reportOutcome(added, r.OOO)
		if added {
			found = append(found, r)
		}
	}

	// Phase 2+3: scheduling hints and multi-threaded runs (§4.3, §4.4).
	pairs := pairOrder(len(p.Calls))
	if len(pairs) > f.cfg.MaxPairs {
		pairs = pairs[:f.cfg.MaxPairs]
	}
	for _, pr := range pairs {
		i, j := pr[0], pr[1]
		if len(sti.CallEvents[i]) == 0 || len(sti.CallEvents[j]) == 0 {
			continue
		}
		hStart := time.Now()
		hs := hints.CalculateModel(sti.CallEvents[i], sti.CallEvents[j], f.cfg.Model)
		observe(f.co.stHints, hStart)
		f.Stats.Hints += uint64(len(hs))
		f.co.hintsTotal.Add(uint64(len(hs)))
		orderHints(hs, f.cfg.HintOrder, f.rng)
		if len(hs) > f.cfg.MaxHintsPerPair {
			hs = hs[:f.cfg.MaxHintsPerPair]
		}
		for rank, h := range hs {
			mStart := time.Now()
			res := f.env.RunMTI(MTIOpts{Prog: p, I: i, J: j, Hint: h})
			observe(f.co.stMTI, mStart)
			f.Stats.MTIs++
			f.co.mtis.Inc()
			f.Stats.Migrations += uint64(res.Migrations)
			f.Stats.DeferredTasks += uint64(res.DeferredTasks)
			if !res.Fired {
				f.Stats.Vacuous++
				f.co.vacuous.Inc()
			}
			f.mergeCov(res.Cov)
			found = append(found, f.harvest(p, i, j, h, rank, res)...)
		}
	}
	return found
}

// harvest converts an MTI result into reports.
func (f *Fuzzer) harvest(p *syzlang.Program, i, j int, h *hints.Hint, rank int, res *MTIResult) []*report.Report {
	var found []*report.Report
	add := func(r *report.Report) {
		added := f.Reports.Add(r)
		f.co.reportOutcome(added, r.OOO)
		if added {
			found = append(found, r)
		}
	}
	if res.Crash != nil {
		ooo := !res.PrefixCrash
		if ooo {
			// Triage: re-run the same schedule without reordering
			// directives. If the crash still reproduces in order,
			// it is a plain interleaving race, not an OOO bug.
			tStart := time.Now()
			rerun := f.env.RunMTI(MTIOpts{Prog: p, I: i, J: j, Hint: h, NoReorder: true})
			observe(f.co.stTriage, tStart)
			if rerun.Crash != nil && rerun.Crash.Title == res.Crash.Title {
				ooo = false
			}
		}
		r := &report.Report{
			Title:   res.Crash.Title,
			Oracle:  res.Crash.Oracle,
			OOO:     ooo,
			Program: p.String(),
		}
		if r.OOO {
			r.Type = h.Type()
			r.Strategy = nonDefaultStrategy(f.cfg.Strategy)
			r.HypBarrier = fmt.Sprintf("before %s (%s)", modules.SiteName(h.Sched), h.Test)
			for _, s := range h.Reorder {
				r.ReorderedSites = append(r.ReorderedSites, modules.SiteName(s))
			}
			r.Pair = PairName(p, i, j)
			r.HintRank = rank + 1
			r.Tests = int(f.Stats.MTIs)
			if f.Reports.Get(r.Title) == nil {
				r.Models = f.probeModels(p, i, j, h, func(pr *MTIResult) bool {
					return pr.Crash != nil && pr.Crash.Title == r.Title
				})
				if rr := repairFinding(f.env, &f.cfg, f.co, p, i, j, h, r.Title, false); rr != nil {
					r.SuggestedFix = rr.Lines()
					f.repairs[r.Title] = rr
				}
			}
		}
		add(r)
	}
	for _, s := range res.Soft {
		r := &report.Report{
			Title: s, Oracle: "semantic", OOO: true,
			Type:       h.Type(),
			Strategy:   nonDefaultStrategy(f.cfg.Strategy),
			HypBarrier: fmt.Sprintf("before %s (%s)", modules.SiteName(h.Sched), h.Test),
			Pair:       PairName(p, i, j),
			Program:    p.String(),
			HintRank:   rank + 1,
			Tests:      int(f.Stats.MTIs),
		}
		if f.Reports.Get(r.Title) == nil {
			r.Models = f.probeModels(p, i, j, h, func(pr *MTIResult) bool {
				for _, ps := range pr.Soft {
					if ps == s {
						return true
					}
				}
				return false
			})
			if rr := repairFinding(f.env, &f.cfg, f.co, p, i, j, h, r.Title, true); rr != nil {
				r.SuggestedFix = rr.Lines()
				f.repairs[r.Title] = rr
			}
		}
		add(r)
	}
	return found
}

// RepairResult returns the structured fence-repair search result for a
// finding's title, or nil when repair is disabled or the title is
// unknown.
func (f *Fuzzer) RepairResult(title string) *repair.Result { return f.repairs[title] }

// repairFinding runs the fence-repair search for a newly-discovered OOO
// finding (both campaign executors call it under the title-is-new guard).
// It returns nil when Config.Repair is off. The reproducer's sequential
// profile comes from the memoized STI cache, so the extra cost is the
// search itself.
func repairFinding(env *Env, cfg *Config, co *campaignObs, p *syzlang.Program, i, j int, h *hints.Hint, title string, soft bool) *repair.Result {
	if !cfg.Repair {
		return nil
	}
	start := time.Now()
	defer observe(co.stRepair, start)
	sti := env.RunSTICached(p)
	return repair.InVivo(repair.InVivoInput{
		Prog:   p,
		I:      i,
		J:      j,
		Hint:   h,
		Events: sti.CallEvents,
		Title:  title,
		Soft:   soft,
	}, env, repair.Options{Model: cfg.Model, Metrics: co.repair})
}

// nonDefaultStrategy returns the campaign's strategy label when it is not
// the default OOO executor, "" otherwise — reports carry only the
// non-default case, so default-campaign outputs (and their goldens) are
// byte-identical to before the strategy knob existed.
func nonDefaultStrategy(name string) string {
	if name == "ooo" {
		return ""
	}
	return name
}

// probeModels is the serial fuzzer's cross-model probe; the divergence
// counter is incremented here because the caller guards on the title
// being globally new.
func (f *Fuzzer) probeModels(p *syzlang.Program, i, j int, h *hints.Hint, reproduced func(*MTIResult) bool) []string {
	models := probeModels(f.env, f.cfg.Model, p, i, j, h, reproduced)
	if len(models) < len(memmodel.All()) {
		f.co.modelDivergences.Inc()
	}
	return models
}

// probeModels is the cross-model probe: it re-runs a newly-found OOO
// bug's MTI under every OTHER registered memory model and returns the
// sorted names of the models under which the finding reproduces — the
// report's "reorders under" line. The campaign's own model is included
// without a re-run (the finding just reproduced under it). Probe runs
// are observation only: they touch neither the deterministic Stats
// counters nor the coverage corpus, so campaign goldens are unaffected.
// Safe to call concurrently (pool workers probe job-side).
func probeModels(env *Env, base *memmodel.Table, p *syzlang.Program, i, j int, h *hints.Hint, reproduced func(*MTIResult) bool) []string {
	models := []string{base.Name()}
	for _, mm := range memmodel.All() {
		if mm == base {
			continue
		}
		if reproduced(env.RunMTIUnder(MTIOpts{Prog: p, I: i, J: j, Hint: h}, mm)) {
			models = append(models, mm.Name())
		}
	}
	sort.Strings(models)
	return models
}

// Run executes steps until the budget is exhausted, returning all new
// reports.
func (f *Fuzzer) Run(steps int) []*report.Report {
	var all []*report.Report
	for n := 0; n < steps; n++ {
		all = append(all, f.Step()...)
	}
	return all
}

// RunUntil executes steps until a report with the given title appears (or
// the budget runs out) and returns that report.
func (f *Fuzzer) RunUntil(title string, maxSteps int) *report.Report {
	if r := f.Reports.Get(title); r != nil {
		return r
	}
	for n := 0; n < maxSteps; n++ {
		for _, r := range f.Step() {
			if r.Title == title {
				return r
			}
		}
	}
	return nil
}
