package core

import (
	"fmt"
	"math/rand"

	"ozz/internal/hints"
	"ozz/internal/modules"
	"ozz/internal/report"
	"ozz/internal/syzlang"
)

// Config parameterizes a fuzzing campaign.
type Config struct {
	// Modules to load (empty = all).
	Modules []string
	// Bugs holds the active bug switches.
	Bugs modules.BugSet
	// Seed makes the campaign reproducible.
	Seed int64
	// ProgLen is the target call count of generated programs.
	ProgLen int
	// MaxHintsPerPair bounds how many top-ranked scheduling hints are
	// executed per call pair per step (the heuristic of §4.3 sorts them).
	MaxHintsPerPair int
	// MaxPairs bounds how many call pairs are tested per program.
	MaxPairs int
	// UseSeeds feeds the modules' seed corpus before random generation
	// (§6.1: "we use seeds provided by Syzkaller").
	UseSeeds bool
	// NrCPU overrides the simulated CPU count (default 4).
	NrCPU int
	// HintOrder selects the order in which a pair's scheduling hints are
	// executed — the §4.3 search-heuristic ablation knob:
	// "heuristic" (default: most-reordered first), "reverse"
	// (fewest-reordered first), or "random".
	HintOrder string
	// InterruptOnSwitch forwards to Env (the interrupt-injection
	// ablation).
	InterruptOnSwitch bool
}

// Stats counts fuzzer work, mirroring the paper's execution metrics.
type Stats struct {
	Steps     uint64 // fuzzer iterations
	STIs      uint64 // single-threaded executions
	MTIs      uint64 // multi-threaded (hypothetical barrier) test executions
	Hints     uint64 // scheduling hints computed
	Vacuous   uint64 // MTIs whose scheduling point never fired
	NewCov    uint64 // runs that grew coverage
	CorpusLen int
}

// Fuzzer is OZZ's fuzzing loop (Fig. 6): generate STI -> profile ->
// calculate scheduling hints -> run MTIs -> collect OOO bug reports.
type Fuzzer struct {
	cfg    Config
	env    *Env
	target *syzlang.Target
	rng    *rand.Rand

	corpus []*syzlang.Program
	seeds  []*syzlang.Program
	cov    map[uint64]struct{}

	// Reports collects deduplicated findings.
	Reports *report.Set
	// Stats counts work done.
	Stats Stats
}

// NewFuzzer builds a fuzzer for the configuration.
func NewFuzzer(cfg Config) *Fuzzer {
	if cfg.ProgLen == 0 {
		cfg.ProgLen = 4
	}
	if cfg.MaxHintsPerPair == 0 {
		cfg.MaxHintsPerPair = 8
	}
	if cfg.MaxPairs == 0 {
		cfg.MaxPairs = 8
	}
	env := NewEnv(cfg.Modules, cfg.Bugs)
	if cfg.NrCPU != 0 {
		env.NrCPU = cfg.NrCPU
	}
	env.InterruptOnSwitch = cfg.InterruptOnSwitch
	f := &Fuzzer{
		cfg:     cfg,
		env:     env,
		target:  modules.Target(cfg.Modules...),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		cov:     make(map[uint64]struct{}),
		Reports: report.NewSet(),
	}
	if cfg.UseSeeds {
		for _, src := range modules.Seeds(cfg.Modules...) {
			if p, err := f.target.Parse(src); err == nil {
				f.seeds = append(f.seeds, p)
			}
		}
	}
	return f
}

// Env exposes the execution environment (for tools layered on the fuzzer).
func (f *Fuzzer) Env() *Env { return f.env }

// nextProgram picks the next single-threaded input: pending seeds first,
// then mutations of the coverage corpus, then fresh generations.
func (f *Fuzzer) nextProgram() *syzlang.Program {
	if len(f.seeds) > 0 {
		p := f.seeds[0]
		f.seeds = f.seeds[1:]
		return p
	}
	if len(f.corpus) > 0 && f.rng.Intn(3) != 0 {
		base := f.corpus[f.rng.Intn(len(f.corpus))]
		return f.target.Mutate(f.rng, base)
	}
	// Focus each generated program on one module (syzkaller's call
	// priorities have the same effect): concurrent pairs then operate on
	// shared state, which is what the hypothetical barrier test needs.
	mods := f.target.Modules()
	return f.target.GenerateFocused(f.rng, f.cfg.ProgLen, mods[f.rng.Intn(len(mods))])
}

// mergeCov merges run coverage into the global map and reports whether new
// edges appeared.
func (f *Fuzzer) mergeCov(cov map[uint64]struct{}) bool {
	grew := false
	for e := range cov {
		if _, ok := f.cov[e]; !ok {
			f.cov[e] = struct{}{}
			grew = true
		}
	}
	return grew
}

// CoverageEdges returns the number of distinct edges covered so far.
func (f *Fuzzer) CoverageEdges() int { return len(f.cov) }

// Step runs one fuzzer iteration and returns the new reports it produced.
func (f *Fuzzer) Step() []*report.Report {
	f.Stats.Steps++
	p := f.nextProgram()

	// Phase 1: single-threaded profiling run (§4.2).
	sti := f.env.RunSTI(p)
	f.Stats.STIs++
	var found []*report.Report
	if f.mergeCov(sti.Cov) {
		f.Stats.NewCov++
		f.corpus = append(f.corpus, p)
		f.Stats.CorpusLen = len(f.corpus)
	}
	if sti.Crash != nil {
		r := &report.Report{
			Title:   sti.Crash.Title,
			Oracle:  sti.Crash.Oracle,
			OOO:     false,
			Program: p.String(),
		}
		if f.Reports.Add(r) {
			found = append(found, r)
		}
		return found // crashing input: nothing to pair
	}
	for _, s := range sti.Soft {
		r := &report.Report{Title: s, Oracle: "semantic", OOO: false, Program: p.String()}
		if f.Reports.Add(r) {
			found = append(found, r)
		}
	}

	// Phase 2+3: scheduling hints and multi-threaded runs (§4.3, §4.4).
	pairs := f.pairOrder(len(p.Calls))
	if len(pairs) > f.cfg.MaxPairs {
		pairs = pairs[:f.cfg.MaxPairs]
	}
	for _, pr := range pairs {
		i, j := pr[0], pr[1]
		if len(sti.CallEvents[i]) == 0 || len(sti.CallEvents[j]) == 0 {
			continue
		}
		hs := hints.Calculate(sti.CallEvents[i], sti.CallEvents[j])
		f.Stats.Hints += uint64(len(hs))
		switch f.cfg.HintOrder {
		case "", "heuristic":
			// Calculate already sorted by the search heuristic.
		case "reverse":
			for a, b := 0, len(hs)-1; a < b; a, b = a+1, b-1 {
				hs[a], hs[b] = hs[b], hs[a]
			}
		case "random":
			f.rng.Shuffle(len(hs), func(a, b int) { hs[a], hs[b] = hs[b], hs[a] })
		}
		if len(hs) > f.cfg.MaxHintsPerPair {
			hs = hs[:f.cfg.MaxHintsPerPair]
		}
		for rank, h := range hs {
			res := f.env.RunMTI(MTIOpts{Prog: p, I: i, J: j, Hint: h})
			f.Stats.MTIs++
			if !res.Fired {
				f.Stats.Vacuous++
			}
			f.mergeCov(res.Cov)
			found = append(found, f.harvest(p, i, j, h, rank, res)...)
		}
	}
	return found
}

// harvest converts an MTI result into reports.
func (f *Fuzzer) harvest(p *syzlang.Program, i, j int, h *hints.Hint, rank int, res *MTIResult) []*report.Report {
	var found []*report.Report
	add := func(r *report.Report) {
		if f.Reports.Add(r) {
			found = append(found, r)
		}
	}
	if res.Crash != nil {
		ooo := !res.PrefixCrash
		if ooo {
			// Triage: re-run the same schedule without reordering
			// directives. If the crash still reproduces in order,
			// it is a plain interleaving race, not an OOO bug.
			rerun := f.env.RunMTI(MTIOpts{Prog: p, I: i, J: j, Hint: h, NoReorder: true})
			if rerun.Crash != nil && rerun.Crash.Title == res.Crash.Title {
				ooo = false
			}
		}
		r := &report.Report{
			Title:   res.Crash.Title,
			Oracle:  res.Crash.Oracle,
			OOO:     ooo,
			Program: p.String(),
		}
		if r.OOO {
			r.Type = h.Type()
			r.HypBarrier = fmt.Sprintf("before %s (%s)", modules.SiteName(h.Sched), h.Test)
			for _, s := range h.Reorder {
				r.ReorderedSites = append(r.ReorderedSites, modules.SiteName(s))
			}
			r.Pair = PairName(p, i, j)
			r.HintRank = rank + 1
			r.Tests = int(f.Stats.MTIs)
		}
		add(r)
	}
	for _, s := range res.Soft {
		r := &report.Report{
			Title: s, Oracle: "semantic", OOO: true,
			Type:       h.Type(),
			HypBarrier: fmt.Sprintf("before %s (%s)", modules.SiteName(h.Sched), h.Test),
			Pair:       PairName(p, i, j),
			Program:    p.String(),
			HintRank:   rank + 1,
			Tests:      int(f.Stats.MTIs),
		}
		add(r)
	}
	return found
}

// pairOrder enumerates call pairs (i, j), i < j, adjacent pairs first —
// concurrency bugs overwhelmingly involve calls operating on the same
// just-created resource.
func (f *Fuzzer) pairOrder(n int) [][2]int {
	var pairs [][2]int
	for d := 1; d < n; d++ {
		for i := 0; i+d < n; i++ {
			pairs = append(pairs, [2]int{i, i + d})
		}
	}
	return pairs
}

// Run executes steps until the budget is exhausted, returning all new
// reports.
func (f *Fuzzer) Run(steps int) []*report.Report {
	var all []*report.Report
	for n := 0; n < steps; n++ {
		all = append(all, f.Step()...)
	}
	return all
}

// RunUntil executes steps until a report with the given title appears (or
// the budget runs out) and returns that report.
func (f *Fuzzer) RunUntil(title string, maxSteps int) *report.Report {
	if r := f.Reports.Get(title); r != nil {
		return r
	}
	for n := 0; n < maxSteps; n++ {
		for _, r := range f.Step() {
			if r.Title == title {
				return r
			}
		}
	}
	return nil
}
