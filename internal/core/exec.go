// Package core implements OZZ itself (§4): the workflow that generates
// single-threaded inputs, profiles their memory accesses and barriers,
// computes scheduling hints by the hypothetical memory barrier test, and
// executes multi-threaded inputs under the deterministic scheduler with
// OEMU reordering directives, watching the kernel's bug oracles.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ozz/internal/hints"
	"ozz/internal/kernel"
	"ozz/internal/modules"
	"ozz/internal/oemu"
	"ozz/internal/sched"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// Env is the execution environment: which modules are loaded and which bug
// switches are active. Every execution builds a fresh kernel from it, so
// runs are independent and deterministic. An Env is safe for concurrent use
// by multiple executor goroutines once configured: the configuration fields
// are read-only during execution, and the kernel recycler and STI profile
// cache below are internally synchronized.
type Env struct {
	// Modules lists the loaded modules (empty = all registered).
	Modules []string
	// Bugs holds the active bug switches (missing barriers).
	Bugs modules.BugSet
	// NrCPU is the simulated CPU count (default 4, like the paper's VMs).
	NrCPU int
	// Instrumented selects the OEMU path (default true). The throughput
	// baseline (§6.3.2) runs uninstrumented.
	Instrumented bool
	// InterruptOnSwitch injects an interrupt on the reorderer's CPU at
	// the scheduling point of every MTI. Interrupts drain the virtual
	// store buffer (§3.1), so store-barrier tests become vacuous — the
	// ablation demonstrating why OZZ's custom scheduler must suspend
	// vCPUs WITHOUT delivering interrupts.
	InterruptOnSwitch bool

	// kpool recycles kernel instances across executions: Reset on a used
	// kernel is much cheaper than rebuilding memory pages, emulator maps,
	// and allocator state from scratch. sync.Pool is concurrency-safe, so
	// parallel campaign workers share one recycler.
	kpool sync.Pool
	// recycled/built count kernel acquisitions served from the pool vs.
	// constructed fresh (the pool recycle-rate metric).
	recycled, built atomic.Uint64

	// sti is the STI profile cache (see cache.go).
	sti stiCache
}

// NewEnv returns an instrumented 4-vCPU environment.
func NewEnv(mods []string, bugs modules.BugSet) *Env {
	return &Env{Modules: mods, Bugs: bugs, NrCPU: 4, Instrumented: true}
}

// newKernel acquires a kernel — recycled from the pool when possible —
// and builds the configured modules over it. The result is identical to a
// freshly-constructed kernel: Reset restores every observable property
// (memory content, sanitizer state, emulator clock, site tables).
func (e *Env) newKernel() (*kernel.Kernel, map[string]modules.Impl) {
	n := e.NrCPU
	if n == 0 {
		n = 4
	}
	var k *kernel.Kernel
	if v := e.kpool.Get(); v != nil {
		k = v.(*kernel.Kernel)
		k.Reset()
		e.recycled.Add(1)
	} else {
		k = kernel.New(n)
		e.built.Add(1)
	}
	k.Instrumented = e.Instrumented
	impls := modules.Build(k, e.Bugs, e.Modules...)
	return k, impls
}

// release returns a kernel to the recycler once an execution has finished
// with it. Callers must first take ownership of any kernel state they hand
// out in results (Cov, Soft): Reset replaces those rather than mutating
// them, so already-captured maps stay valid.
func (e *Env) release(k *kernel.Kernel) {
	e.kpool.Put(k)
}

// KernelCounters reports how many kernel acquisitions were recycled from
// the pool vs. built fresh.
func (e *Env) KernelCounters() (recycled, built uint64) {
	return e.recycled.Load(), e.built.Load()
}

// resolveArgs materializes a call's arguments given earlier calls' results.
func resolveArgs(c *syzlang.Call, returns []uint64) []uint64 {
	args := make([]uint64, len(c.Args))
	for i, a := range c.Args {
		if a.Res {
			if a.Ref >= 0 && a.Ref < len(returns) {
				args[i] = returns[a.Ref]
			}
		} else {
			args[i] = a.Val
		}
	}
	return args
}

// errno for a call with no implementation (module not loaded).
const enosys = ^uint64(37) // -38

// execCall runs one call on a task, profiling it when prof is true, and
// returns its result. The store buffer drains at syscall return.
func execCall(t *kernel.Task, impls map[string]modules.Impl, c *syzlang.Call, args []uint64, prof bool) uint64 {
	impl := impls[c.Def.Name]
	if impl == nil {
		return enosys
	}
	if prof {
		t.Prof = &trace.Buffer{}
	}
	ret := impl(t, args)
	t.SyscallReturn()
	t.Prof = nil
	return ret
}

// STIResult is the outcome of a single-threaded (profiling) execution.
type STIResult struct {
	// Crash is non-nil if the program crashed sequentially (a non-OOO
	// bug, found like a conventional fuzzer would).
	Crash *kernel.Crash
	// Deadlock is non-nil if the run deadlocked.
	Deadlock *sched.Deadlock
	// CallEvents holds the profiled event sequence of each completed
	// call (§4.2); entries past a crash are nil.
	CallEvents [][]trace.Event
	// Returns holds each call's return value (resources for later calls).
	Returns []uint64
	// Cov is the KCov edge set covered by the run.
	Cov map[uint64]struct{}
	// Soft holds non-crash oracle reports.
	Soft []string
}

// RunSTI executes the program sequentially on one task, profiling each
// call's memory accesses and barriers — OZZ's first workflow step.
func (e *Env) RunSTI(p *syzlang.Program) *STIResult {
	k, impls := e.newKernel()
	res := &STIResult{
		CallEvents: make([][]trace.Event, len(p.Calls)),
		Returns:    make([]uint64, len(p.Calls)),
	}
	task := k.NewTask(0)
	// One profiling buffer serves every call: Clone captures each call's
	// events, Reset recycles the backing storage for the next call.
	prof := &trace.Buffer{}
	session := sched.NewSession(sched.Sequential{})
	session.Spawn(0, 0, func(st *sched.Task) {
		task.Bind(st)
		for ci := range p.Calls {
			c := &p.Calls[ci]
			args := resolveArgs(c, res.Returns)
			if impl := impls[c.Def.Name]; impl != nil {
				if e.Instrumented {
					prof.Reset()
					task.Prof = prof
				}
				res.Returns[ci] = impl(task, args)
				task.SyscallReturn()
				if task.Prof != nil {
					res.CallEvents[ci] = task.Prof.Clone()
					task.Prof = nil
				}
			} else {
				res.Returns[ci] = enosys
			}
		}
	})
	aborted := session.Run()
	// Capture the crashing call's partial profile.
	if task.Prof != nil {
		for ci := range res.CallEvents {
			if res.CallEvents[ci] == nil {
				res.CallEvents[ci] = task.Prof.Clone()
				break
			}
		}
		task.Prof = nil
	}
	classifyAbort(aborted, &res.Crash, &res.Deadlock)
	res.Cov = k.Cov
	res.Soft = k.Soft
	e.release(k)
	return res
}

func classifyAbort(aborted any, crash **kernel.Crash, dl **sched.Deadlock) {
	switch v := aborted.(type) {
	case nil:
	case *kernel.Crash:
		*crash = v
	case *sched.Deadlock:
		*dl = v
	default:
		// A genuine Go panic in the simulator itself: do not swallow.
		panic(v)
	}
}

// MTIOpts selects the concurrent pair and the scheduling hint of one
// multi-threaded input (§4.4).
type MTIOpts struct {
	Prog *syzlang.Program
	// I and J index the pair of calls to run concurrently (I < J).
	I, J int
	// Hint is the scheduling hint: interleaving point plus reordering
	// directives.
	Hint *hints.Hint
	// NoReorder suppresses the OEMU directives while keeping the
	// breakpoint schedule — the triage re-run that separates genuine OOO
	// bugs from plain interleaving races (the paper's authors performed
	// this classification manually on 61 crash titles, §6.1).
	NoReorder bool
}

// MTIResult is the outcome of one hypothetical-memory-barrier test run.
type MTIResult struct {
	Crash    *kernel.Crash
	Deadlock *sched.Deadlock
	// PrefixCrash marks a crash during the sequential prefix (a non-OOO
	// crash; the concurrent stage never ran).
	PrefixCrash bool
	// Fired reports whether the scheduling point was reached.
	Fired bool
	// Reordered counts the OEMU reorderings that actually occurred in
	// the reorderer (delayed stores + versioned loads).
	Reordered int
	// ReorderLog carries the reorder records for the bug report.
	ReorderLog []oemu.ReorderRecord
	Soft       []string
	Cov        map[uint64]struct{}
}

// RunMTI executes one multi-threaded input: the program's calls before J
// (except I) run sequentially to build kernel state; then calls I and J run
// concurrently on two CPUs under the hint's breakpoint policy with the
// hint's OEMU directives installed (Fig. 5).
func (e *Env) RunMTI(o MTIOpts) *MTIResult {
	k, impls := e.newKernel()
	res := &MTIResult{}
	returns := make([]uint64, len(o.Prog.Calls))

	// Stage 1: sequential prefix.
	prefixTask := k.NewTask(0)
	prefix := sched.NewSession(sched.Sequential{})
	prefix.Spawn(0, 0, func(st *sched.Task) {
		prefixTask.Bind(st)
		for ci := 0; ci < o.J; ci++ {
			if ci == o.I {
				continue
			}
			c := &o.Prog.Calls[ci]
			returns[ci] = execCall(prefixTask, impls, c, resolveArgs(c, returns), false)
		}
	})
	if aborted := prefix.Run(); aborted != nil {
		classifyAbort(aborted, &res.Crash, &res.Deadlock)
		res.PrefixCrash = true
		res.Cov = k.Cov
		e.release(k)
		return res
	}

	// Stage 2: the concurrent pair. The reorderer (per the hint) carries
	// the OEMU directives and the breakpoint; the observer runs when the
	// breakpoint fires.
	reordererCall, observerCall := o.I, o.J
	if o.Hint.Reorderer == 1 {
		reordererCall, observerCall = o.J, o.I
	}
	taskA := k.NewTask(1) // reorderer
	taskB := k.NewTask(2) // observer
	if !o.NoReorder {
		for _, s := range o.Hint.Reorder {
			switch o.Hint.Test {
			case hints.StoreBarrierTest:
				taskA.OEMU().Dir.DelayStoreAt(s)
			case hints.LoadBarrierTest:
				taskA.OEMU().Dir.ReadOldValueAt(s)
			}
		}
	}
	pos := sched.PosAfter
	if o.Hint.Test == hints.LoadBarrierTest {
		pos = sched.PosBefore
	}
	bp := &sched.Breakpoint{
		FromTask:   1,
		Instr:      o.Hint.Sched,
		Occurrence: o.Hint.SchedOcc,
		Pos:        pos,
		ToTask:     2,
	}
	if e.InterruptOnSwitch {
		bp.OnSwitch = taskA.Interrupt
	}
	session := sched.NewSession(bp)
	runPair := func(task *kernel.Task, ci int) func(*sched.Task) {
		return func(st *sched.Task) {
			task.Bind(st)
			c := &o.Prog.Calls[ci]
			returns[ci] = execCall(task, impls, c, resolveArgs(c, returns), false)
		}
	}
	session.Spawn(1, 1, runPair(taskA, reordererCall))
	session.Spawn(2, 2, runPair(taskB, observerCall))
	aborted := session.Run()
	classifyAbort(aborted, &res.Crash, &res.Deadlock)
	res.Fired = bp.Fired
	res.Reordered = taskA.OEMU().ReorderedCount()
	res.ReorderLog = append(res.ReorderLog, taskA.OEMU().Log...)

	// Stage 3: sequential suffix (an MTI consists of the same call set as
	// its STI; calls after the pair can carry bug-detecting assertions).
	if res.Crash == nil && res.Deadlock == nil && o.J+1 < len(o.Prog.Calls) {
		suffix := sched.NewSession(sched.Sequential{})
		suffix.Spawn(3, 0, func(st *sched.Task) {
			prefixTask.Bind(st)
			for ci := o.J + 1; ci < len(o.Prog.Calls); ci++ {
				c := &o.Prog.Calls[ci]
				returns[ci] = execCall(prefixTask, impls, c, resolveArgs(c, returns), false)
			}
		})
		classifyAbort(suffix.Run(), &res.Crash, &res.Deadlock)
	}
	res.Soft = k.Soft
	res.Cov = k.Cov
	e.release(k)
	return res
}

// PairName renders a concurrent pair for reports.
func PairName(p *syzlang.Program, i, j int) [2]string {
	return [2]string{
		fmt.Sprintf("call %d: %s", i, p.Calls[i].Def.Name),
		fmt.Sprintf("call %d: %s", j, p.Calls[j].Def.Name),
	}
}
