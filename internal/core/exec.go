// Package core implements OZZ itself (§4): the workflow that generates
// single-threaded inputs, profiles their memory accesses and barriers,
// computes scheduling hints by the hypothetical memory barrier test, and
// executes multi-threaded inputs under the deterministic scheduler with
// OEMU reordering directives, watching the kernel's bug oracles.
//
// Execution itself lives in internal/engine; this package drives the
// engine with the OOO strategy and layers the fuzzing workflow (hint
// search, corpus, triage, reports) on top.
package core

import (
	"fmt"

	"ozz/internal/engine"
	"ozz/internal/memmodel"
	"ozz/internal/modules"
	"ozz/internal/obs"
	"ozz/internal/syzlang"
)

// Env is the execution environment: which modules are loaded and which bug
// switches are active, driving the shared engine with OZZ's OOO strategy.
// Every execution builds a fresh (or pool-recycled) kernel, so runs are
// independent and deterministic. An Env is safe for concurrent use by
// multiple executor goroutines once configured: the configuration fields
// are read-only during execution, and the engine's kernel recycler and
// STI profile cache are internally synchronized.
type Env struct {
	// Modules lists the loaded modules (empty = all registered).
	Modules []string
	// Bugs holds the active bug switches (missing barriers).
	Bugs modules.BugSet
	// NrCPU is the simulated CPU count; 0 selects the engine default (4,
	// like the paper's VMs).
	NrCPU int
	// Instrumented selects the OEMU path (default true). The throughput
	// baseline (§6.3.2) runs uninstrumented.
	Instrumented bool
	// InterruptOnSwitch injects an interrupt on the reorderer's CPU at
	// the scheduling point of every MTI — the ablation demonstrating why
	// OZZ's custom scheduler must suspend vCPUs WITHOUT delivering
	// interrupts (interrupts drain the virtual store buffer, §3.1).
	InterruptOnSwitch bool
	// Model is the memory model OEMU emulates (nil = memmodel.LKMM).
	// STI profiles are model-independent (no directives, in-order
	// execution), but hint generation and MTI directive plans are
	// model-relative — the fuzzer must pair this Env with
	// hints.CalculateModel over the same model.
	Model *memmodel.Table
	// Strategy is the engine strategy MTI runs execute under (nil = the
	// default engine.OOO). Migration and Deferred extend the
	// hypothetical-barrier test with cross-CPU moves and deferred-work
	// injection; see engine.ParseStrategy. STI profiling always runs the
	// plain sequential path regardless of this field — a profile is a
	// pure function of the program and must stay strategy-independent so
	// the memoized cache can be shared.
	Strategy engine.Strategy

	eng *engine.Engine
}

// NewEnv returns an instrumented environment over a fresh engine with a
// private metrics registry. Equivalent to NewEnvObs(mods, bugs, nil).
func NewEnv(mods []string, bugs modules.BugSet) *Env {
	return NewEnvObs(mods, bugs, nil)
}

// NewEnvObs returns an instrumented environment whose engine publishes
// lifecycle metrics into reg (nil = a fresh private registry).
func NewEnvObs(mods []string, bugs modules.BugSet, reg *obs.Registry) *Env {
	return &Env{Modules: mods, Bugs: bugs, Instrumented: true, eng: engine.NewObs(reg)}
}

// Engine exposes the underlying execution engine (recycler + cache).
func (e *Env) Engine() *engine.Engine { return e.eng }

// Obs returns the metrics registry the environment's engine publishes
// into.
func (e *Env) Obs() *obs.Registry { return e.eng.Obs() }

// config snapshots the environment's mutable fields into an engine
// config. Built per call so post-construction field writes (tests, the
// fuzzer's ablation knobs) never race with in-flight executions.
func (e *Env) config() engine.Config {
	return engine.Config{
		Modules:           e.Modules,
		Bugs:              e.Bugs,
		NrCPU:             e.NrCPU,
		Instrumented:      e.Instrumented,
		InterruptOnSwitch: e.InterruptOnSwitch,
		Model:             e.Model,
	}
}

// KernelCounters reports how many kernel acquisitions were recycled from
// the engine's pool vs. built fresh.
func (e *Env) KernelCounters() (recycled, built uint64) {
	return e.eng.KernelCounters()
}

// STICacheCounters reports profile-cache hits and misses (see
// engine.Engine.CacheCounters).
func (e *Env) STICacheCounters() (hits, misses uint64) {
	return e.eng.CacheCounters()
}

// STIResult is the outcome of a single-threaded (profiling) execution.
type STIResult = engine.Result

// MTIResult is the outcome of one hypothetical-memory-barrier test run.
type MTIResult = engine.Result

// MTIOpts selects the concurrent pair and the scheduling hint of one
// multi-threaded input (§4.4).
type MTIOpts = engine.Request

// RunSTI executes the program sequentially on one task, profiling each
// call's memory accesses and barriers — OZZ's first workflow step.
func (e *Env) RunSTI(p *syzlang.Program) *STIResult {
	return e.eng.Run(e.config(), engine.OOO{}, engine.Request{Prog: p, Profile: true})
}

// RunSTICached is RunSTI behind the engine's profile cache: the first
// execution of a program profiles it for real; later executions of a
// byte-identical program return the memoized result. Correct because
// executions are deterministic — a program's STI outcome is a pure
// function of (program, environment). The returned result is shared:
// callers must not mutate it.
func (e *Env) RunSTICached(p *syzlang.Program) *STIResult {
	return e.eng.RunCached(e.config(), engine.OOO{}, engine.Request{Prog: p, Profile: true})
}

// mtiStrategy resolves the strategy MTI runs execute under.
func (e *Env) mtiStrategy() engine.Strategy {
	if e.Strategy != nil {
		return e.Strategy
	}
	return engine.OOO{}
}

// RunMTI executes one multi-threaded input: the program's calls before J
// (except I) run sequentially to build kernel state; then calls I and J run
// concurrently on two CPUs under the hint's breakpoint policy with the
// hint's OEMU directives installed (Fig. 5), all under the environment's
// strategy (default OOO).
func (e *Env) RunMTI(o MTIOpts) *MTIResult {
	return e.eng.Run(e.config(), e.mtiStrategy(), o)
}

// RunMTIUnder is RunMTI with the environment's memory model overridden
// for this one execution — the fuzzer's cross-model probe re-runs a
// crashing MTI under every other registered model to report which of
// them can reach the reordering ("reorders under: lkmm, armv8").
func (e *Env) RunMTIUnder(o MTIOpts, mm *memmodel.Table) *MTIResult {
	cfg := e.config()
	cfg.Model = mm
	return e.eng.Run(cfg, e.mtiStrategy(), o)
}

// PairName renders a concurrent pair for reports.
func PairName(p *syzlang.Program, i, j int) [2]string {
	return [2]string{
		fmt.Sprintf("call %d: %s", i, p.Calls[i].Def.Name),
		fmt.Sprintf("call %d: %s", j, p.Calls[j].Def.Name),
	}
}
