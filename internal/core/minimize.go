package core

import (
	"ozz/internal/hints"
	"ozz/internal/syzlang"
)

// Minimize shrinks a crashing multi-threaded input, syzkaller-style: it
// repeatedly removes calls other than the concurrent pair while the crash
// (same title) still reproduces under the same scheduling hint. Instruction
// sites are static, so the hint stays valid across call removal; only the
// pair indices shift.
//
// It returns the minimized program and the updated pair indices.
func (e *Env) Minimize(p *syzlang.Program, i, j int, h *hints.Hint, title string) (*syzlang.Program, int, int) {
	reproduces := func(q *syzlang.Program, qi, qj int) bool {
		res := e.RunMTI(MTIOpts{Prog: q, I: qi, J: qj, Hint: h})
		return res.Crash != nil && res.Crash.Title == title
	}
	cur, ci, cj := p.Clone(), i, j
	for {
		removed := false
		for victim := len(cur.Calls) - 1; victim >= 0; victim-- {
			if victim == ci || victim == cj {
				continue
			}
			cand := cur.Clone()
			deleteCall(cand, victim)
			ni, nj := ci, cj
			if victim < ni {
				ni--
			}
			if victim < nj {
				nj--
			}
			if reproduces(cand, ni, nj) {
				cur, ci, cj = cand, ni, nj
				removed = true
				break // restart the scan over the smaller program
			}
		}
		if !removed {
			return cur, ci, cj
		}
	}
}

// deleteCall removes call di, rewriting resource references like
// syzlang.Target.deleteCall (kept local: Target is not in scope here).
func deleteCall(p *syzlang.Program, di int) {
	calls := append(p.Calls[:di:di], p.Calls[di+1:]...)
	for ci := range calls {
		for ai := range calls[ci].Args {
			a := &calls[ci].Args[ai]
			if !a.Res {
				continue
			}
			switch {
			case a.Ref == di:
				*a = syzlang.Arg{Val: 0}
			case a.Ref > di:
				a.Ref--
			}
		}
	}
	p.Calls = calls
}
