package core

import (
	"strings"
	"testing"

	"ozz/internal/modules"
)

// findBug runs a seeded campaign against a single module with one bug
// switch active and returns the matching report (nil if not found).
func findBug(t *testing.T, b modules.BugInfo, extraSwitches ...string) *testReport {
	t.Helper()
	r, _ := findBugUnder(t, b, "", extraSwitches...)
	return r
}

// findBugUnder is findBug with the campaign's engine strategy selectable
// ("" = default OOO); it also returns the campaign counters so callers can
// assert on strategy activity (Stats.Migrations, Stats.DeferredTasks).
func findBugUnder(t *testing.T, b modules.BugInfo, strategy string, extraSwitches ...string) (*testReport, Stats) {
	t.Helper()
	sw := append([]string{b.Switch}, extraSwitches...)
	f := NewFuzzer(Config{
		Modules:  []string{b.Module},
		Bugs:     modules.Bugs(sw...),
		Seed:     42,
		UseSeeds: true,
		Strategy: strategy,
	})
	want := b.Title
	if want == "" {
		want = b.SoftTitle
	}
	r := f.RunUntil(want, 120)
	if r == nil {
		return nil, f.Stats
	}
	return &testReport{Title: r.Title, Type: r.Type, OOO: r.OOO, HintRank: r.HintRank, Strategy: r.Strategy}, f.Stats
}

type testReport struct {
	Title    string
	Type     string
	OOO      bool
	HintRank int
	Strategy string
}

// typeMatches accepts any of the "/"-separated expected reordering types.
func typeMatches(expected, got string) bool {
	for _, e := range strings.Split(expected, "/") {
		if e == got {
			return true
		}
	}
	return false
}

// TestCorpusAllBugsFound is the Table 3 + Table 4 backbone: every bug in
// the corpus (except sbitmap, which the paper also cannot reproduce) is
// found by OZZ with its expected crash title and reordering type.
func TestCorpusAllBugsFound(t *testing.T) {
	for _, b := range modules.AllBugs() {
		b := b
		t.Run(b.ID+"/"+b.Switch, func(t *testing.T) {
			if b.Strategy != "" {
				// Needs a non-default engine strategy: covered by
				// TestStrategyBugsReproduced (and the sbitmap-specific
				// tests below).
				t.Skipf("requires -strategy %s: see dedicated tests", b.Strategy)
			}
			if b.Type == "" {
				// Non-OOO (plain interleaving) bugs belong to the
				// interleaving-only baseline's tests.
				t.Skip("not an OOO bug")
			}
			r := findBug(t, b)
			if r == nil {
				t.Fatalf("bug %s (%s) not found", b.ID, b.Switch)
			}
			if !r.OOO {
				t.Errorf("bug %s found but not via a reordering test", b.ID)
			}
			if b.Type != "" && !typeMatches(b.Type, r.Type) {
				t.Errorf("bug %s: expected type %s, got %s", b.ID, b.Type, r.Type)
			}
		})
	}
}

// TestCleanCorpusQuiet fuzzes every module with all barriers present: no
// OOO report may appear (no false positives across the whole corpus).
func TestCleanCorpusQuiet(t *testing.T) {
	f := NewFuzzer(Config{
		Seed:     7,
		UseSeeds: true,
	})
	f.Run(60)
	for _, r := range f.Reports.All() {
		if r.OOO {
			t.Errorf("false positive on fully-fixed corpus: %s (%s)", r.Title, r.HypBarrier)
		}
	}
}

// TestSbitmapNotReproducedWithoutMigration mirrors §6.2's negative result:
// the per-CPU sbitmap bug is NOT reproducible with pinned threads...
func TestSbitmapNotReproducedWithoutMigration(t *testing.T) {
	b, ok := modules.FindBug("sbitmap:freed_order")
	if !ok {
		t.Fatal("sbitmap bug not registered")
	}
	if r := findBug(t, b); r != nil {
		t.Fatalf("sbitmap bug unexpectedly reproduced without migration: %+v", r)
	}
}

// TestSbitmapReproducedWithMigrationAssist ...and IS reproducible once the
// two threads resolve the per-CPU hint from the same CPU (the paper's
// manual kernel modification).
func TestSbitmapReproducedWithMigrationAssist(t *testing.T) {
	b, ok := modules.FindBug("sbitmap:freed_order")
	if !ok {
		t.Fatal("sbitmap bug not registered")
	}
	r := findBug(t, b, "sbitmap:migration_assist")
	if r == nil {
		t.Fatal("sbitmap bug not reproduced even with the migration assist")
	}
	if r.Type != "S-S" {
		t.Errorf("expected S-S, got %s", r.Type)
	}
}

// TestSbitmapReproducedByMigrationStrategy is the tentpole result: the
// Migration strategy reproduces Table 4 #6 ORGANICALLY — no migration
// assist, no kernel modification. The sequential profile shares the
// per-CPU hint (both calls ran on CPU 0), Algorithm 1 emits a
// migration-annotated hint, and MigrateAt moves the observer onto the
// prefix CPU at the scheduling point without flushing the reorderer's
// store buffer.
func TestSbitmapReproducedByMigrationStrategy(t *testing.T) {
	b, ok := modules.FindBug("sbitmap:freed_order")
	if !ok {
		t.Fatal("sbitmap bug not registered")
	}
	r, stats := findBugUnder(t, b, "migration")
	if r == nil {
		t.Fatal("sbitmap bug not reproduced by the Migration strategy")
	}
	if !r.OOO {
		t.Error("sbitmap finding not classified as OOO")
	}
	if r.Type != "S-S" {
		t.Errorf("expected S-S, got %s", r.Type)
	}
	if r.Strategy != "migration" {
		t.Errorf("report strategy = %q, want migration", r.Strategy)
	}
	if stats.Migrations == 0 {
		t.Error("Stats.Migrations = 0: no cross-CPU move ever happened")
	}
}

// TestStrategyBugsReproduced covers every corpus bug that declares a
// required engine strategy (BugInfo.Strategy): each must reproduce under
// that strategy and must exercise it (the strategy counter moves).
func TestStrategyBugsReproduced(t *testing.T) {
	ran := 0
	for _, b := range modules.AllBugs() {
		if b.Strategy == "" {
			continue
		}
		b := b
		ran++
		t.Run(b.ID+"/"+b.Switch, func(t *testing.T) {
			r, stats := findBugUnder(t, b, b.Strategy)
			if r == nil {
				t.Fatalf("bug %s not reproduced under -strategy %s", b.ID, b.Strategy)
			}
			if !r.OOO {
				t.Errorf("bug %s found but not via a reordering test", b.ID)
			}
			if !typeMatches(b.Type, r.Type) {
				t.Errorf("bug %s: expected type %s, got %s", b.ID, b.Type, r.Type)
			}
			if b.Strategy == "migration" && stats.Migrations == 0 {
				t.Error("migration strategy reproduced the bug without migrating")
			}
			if b.Strategy == "deferred" && stats.DeferredTasks == 0 {
				t.Error("deferred strategy reproduced the bug without spawning handlers")
			}
		})
	}
	if ran == 0 {
		t.Fatal("no strategy-gated bugs in the corpus")
	}
}

// TestDeferredStrategyCampaign pins the Deferred strategy's campaign
// behavior: deferral points spawn handler tasks (the counter moves), and
// deferring the interrupt — rather than draining the store buffer at the
// switch like the InterruptOnSwitch ablation — keeps the reorder window
// open, so the Fig. 1 watchqueue bug still reproduces.
func TestDeferredStrategyCampaign(t *testing.T) {
	b, ok := modules.FindBug("watchqueue:pipe_wmb")
	if !ok {
		t.Fatal("watchqueue bug not registered")
	}
	r, stats := findBugUnder(t, b, "deferred")
	if r == nil {
		t.Fatal("watchqueue bug not reproduced under the Deferred strategy")
	}
	if stats.DeferredTasks == 0 {
		t.Error("Stats.DeferredTasks = 0: no handler task ever spawned")
	}
	if r.Strategy != "deferred" {
		t.Errorf("report strategy = %q, want deferred", r.Strategy)
	}
}

// TestSoakCampaign is the long-form integration test: one whole-corpus
// campaign with every OOO switch active must find EVERY reproducible corpus
// bug, and every OOO-classified finding must correspond to a known corpus
// bug (no misclassification). Skipped with -short.
func TestSoakCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	var switches []string
	expected := map[string]string{} // title -> bug id
	for _, b := range modules.AllBugs() {
		if b.Type == "" || b.Strategy != "" {
			continue
		}
		switches = append(switches, b.Switch)
		if b.Title != "" {
			expected[b.Title] = b.ID
		}
		if b.SoftTitle != "" {
			expected[b.SoftTitle] = b.ID
		}
	}
	f := NewFuzzer(Config{
		Bugs:     modules.Bugs(switches...),
		Seed:     99,
		UseSeeds: true,
	})
	deadlineSteps := 3000
	for n := 0; n < deadlineSteps; n++ {
		f.Step()
		// Early exit once everything is found.
		all := true
		for title := range expected {
			if f.Reports.Get(title) == nil {
				all = false
				break
			}
		}
		if all {
			break
		}
	}
	for title, id := range expected {
		if f.Reports.Get(title) == nil {
			t.Errorf("soak campaign missed %s (%q)", id, title)
		}
	}
	// Side-effect crashes with other titles are possible (e.g. a stale
	// index landing in unmapped space is a GPF instead of KASAN OOB), but
	// every OOO finding must at least belong to a module with an active
	// bug; prefix crashes and misfires must never be OOO-classified on a
	// fixed module. We check the simpler global invariant: at least as
	// many OOO findings as expected titles, all discovered titles unique.
	ooo := 0
	for _, r := range f.Reports.All() {
		if r.OOO {
			ooo++
		}
	}
	if ooo < len(expected) {
		t.Errorf("only %d OOO findings for %d expected bugs", ooo, len(expected))
	}
	t.Logf("soak: %d steps, %d MTIs, %d titles (%d OOO), %d coverage edges",
		f.Stats.Steps, f.Stats.MTIs, f.Reports.Len(), ooo, f.CoverageEdges())
}
