package core

import (
	"reflect"
	"strings"
	"testing"

	"ozz/internal/modules"
)

// fig1Title is the Fig. 1 watch_queue crash both repair bugs share.
const fig1Title = "BUG: unable to handle kernel NULL pointer dereference in pipe_read"

func repairConfig(bug string) Config {
	for _, b := range modules.AllBugs() {
		if b.Switch == bug {
			return Config{
				Modules:  []string{b.Module},
				Bugs:     modules.Bugs(bug),
				Seed:     42,
				UseSeeds: true,
				Repair:   true,
			}
		}
	}
	panic("unknown bug " + bug)
}

// TestRepairFig1 is the acceptance path: reproducing the Fig. 1
// store-store bug with repair enabled must suggest the exact smp_wmb
// insertion between the two profiled stores, validated under lkmm and
// armv8 and reported unnecessary under tso.
func TestRepairFig1(t *testing.T) {
	f := NewFuzzer(repairConfig("watchqueue:pipe_wmb"))
	r := f.RunUntil(fig1Title, 200)
	if r == nil {
		t.Fatal("Fig. 1 crash did not reproduce")
	}
	if len(r.SuggestedFix) == 0 {
		t.Fatalf("report carries no SuggestedFix:\n%s", r)
	}
	top := r.SuggestedFix[0]
	want := "insert smp_wmb between post_one_notification:buf->ops=&ops and post_one_notification:head+=1"
	if !strings.Contains(top, want) {
		t.Fatalf("top suggestion = %q, want it to contain %q", top, want)
	}
	if !strings.Contains(top, "fixes: armv8, lkmm") || !strings.Contains(top, "unnecessary: tso") {
		t.Fatalf("top suggestion lacks the per-model verdicts: %q", top)
	}
	rr := f.RepairResult(fig1Title)
	if rr == nil {
		t.Fatal("RepairResult returned nil for the repaired title")
	}
	if rr.Kind != "S-S" || rr.Stats.Validated < 1 || len(rr.BuggyOutcomes) == 0 {
		t.Fatalf("unexpected repair result shape:\n%s", rr.Render())
	}
	if got := rr.Lines(); !reflect.DeepEqual(got, r.SuggestedFix) {
		t.Fatalf("SuggestedFix %v != Result.Lines() %v", r.SuggestedFix, got)
	}
	// The rendered report nests the suggestion inside the diagnosis block.
	if !strings.Contains(r.String(), "suggested fix:\n      - insert smp_wmb") {
		t.Fatalf("report rendering lacks the suggested-fix block:\n%s", r)
	}
}

// TestRepairFig1LoadBarrier covers the L-L side of Fig. 1: the missing
// reader fence must be repaired by an smp_rmb insertion (or nothing
// weaker), on the reader's side.
func TestRepairFig1LoadBarrier(t *testing.T) {
	f := NewFuzzer(repairConfig("watchqueue:pipe_rmb"))
	r := f.RunUntil(fig1Title, 200)
	if r == nil {
		t.Fatal("load-barrier crash did not reproduce")
	}
	if r.Type != "L-L" {
		t.Fatalf("report type = %q, want L-L", r.Type)
	}
	if len(r.SuggestedFix) == 0 {
		t.Fatalf("report carries no SuggestedFix:\n%s", r)
	}
	top := r.SuggestedFix[0]
	if !strings.Contains(top, "insert smp_rmb between pipe_read:") {
		t.Fatalf("top suggestion = %q, want a reader-side smp_rmb insertion", top)
	}
	if !strings.Contains(top, "unnecessary: tso") {
		t.Fatalf("top suggestion lacks the tso verdict: %q", top)
	}
}

// TestRepairOffByDefault pins the flag gate: without Config.Repair the
// finding carries no suggestions and RepairResult is nil.
func TestRepairOffByDefault(t *testing.T) {
	cfg := repairConfig("watchqueue:pipe_wmb")
	cfg.Repair = false
	f := NewFuzzer(cfg)
	r := f.RunUntil(fig1Title, 200)
	if r == nil {
		t.Fatal("crash did not reproduce")
	}
	if len(r.SuggestedFix) != 0 || f.RepairResult(fig1Title) != nil {
		t.Fatalf("repair ran despite Repair=false: %v", r.SuggestedFix)
	}
}

// TestRepairPoolMatchesSerial checks executor equivalence and worker-count
// determinism of the repair results: the pool at several widths must
// publish exactly the serial fuzzer's SuggestedFix lines and structured
// result.
func TestRepairPoolMatchesSerial(t *testing.T) {
	serial := NewFuzzer(repairConfig("watchqueue:pipe_wmb"))
	want := serial.RunUntil(fig1Title, 96)
	if want == nil {
		t.Fatal("serial run did not reproduce the crash")
	}
	wantRR := serial.RepairResult(fig1Title)
	for _, workers := range []int{1, 4} {
		p := NewPool(repairConfig("watchqueue:pipe_wmb"), workers)
		p.Run(96)
		got := p.Reports.Get(fig1Title)
		if got == nil {
			t.Fatalf("pool (workers=%d) did not reproduce the crash", workers)
		}
		if !reflect.DeepEqual(got.SuggestedFix, want.SuggestedFix) {
			t.Fatalf("pool (workers=%d) SuggestedFix = %v, serial = %v",
				workers, got.SuggestedFix, want.SuggestedFix)
		}
		if gotRR := p.RepairResult(fig1Title); !reflect.DeepEqual(gotRR, wantRR) {
			t.Fatalf("pool (workers=%d) repair result diverged from serial:\n%s\nvs\n%s",
				workers, gotRR.Render(), wantRR.Render())
		}
	}
}
