package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ozz/internal/modules"
	"ozz/internal/report"
)

func allBugSwitches() modules.BugSet {
	var names []string
	for _, b := range modules.AllBugs() {
		if _, deprecated := modules.DeprecatedSwitches[b.Switch]; deprecated {
			continue
		}
		names = append(names, b.Switch)
	}
	return modules.Bugs(names...)
}

// campaignFingerprint runs a fixed-seed pool campaign and captures every
// deterministic observable: counters, coverage, corpus, and reports.
type campaignFingerprint struct {
	stats   Stats
	cov     map[uint64]struct{}
	corpus  []string
	titles  []string
	reports []string
	found   []string // discovery order of Run's return value
}

func fingerprint(t *testing.T, workers, steps int) campaignFingerprint {
	t.Helper()
	return fingerprintUnder(t, "", workers, steps)
}

// fingerprintUnder is fingerprint with the engine strategy selectable
// ("" = default OOO).
func fingerprintUnder(t *testing.T, strategy string, workers, steps int) campaignFingerprint {
	t.Helper()
	p := NewPool(Config{Seed: 7, UseSeeds: true, Bugs: allBugSwitches(), Strategy: strategy}, workers)
	var found []string
	for _, r := range p.Run(steps) {
		found = append(found, r.Title)
	}
	s := p.Stats()
	s.Perf = PerfStats{} // scheduling-dependent; excluded from comparison
	var corpus []string
	for _, q := range p.CorpusPrograms() {
		corpus = append(corpus, q.String())
	}
	var reports []string
	for _, r := range p.Reports.All() {
		reports = append(reports, r.String())
	}
	return campaignFingerprint{
		stats:   s,
		cov:     p.Cov.Snapshot(),
		corpus:  corpus,
		titles:  p.Reports.Titles(),
		reports: reports,
		found:   found,
	}
}

// TestPoolDeterministicAcrossWorkers is the executor's core guarantee: a
// fixed-seed campaign produces byte-identical results at any worker count.
func TestPoolDeterministicAcrossWorkers(t *testing.T) {
	const steps = 150
	base := fingerprint(t, 1, steps)
	if base.stats.Steps != steps {
		t.Fatalf("steps = %d, want %d", base.stats.Steps, steps)
	}
	if base.stats.MTIs == 0 || len(base.cov) == 0 {
		t.Fatalf("campaign did no work: %+v", base.stats)
	}
	if len(base.titles) == 0 {
		t.Fatalf("campaign with all bugs enabled found nothing")
	}
	for _, workers := range []int{2, 4} {
		got := fingerprint(t, workers, steps)
		if got.stats != base.stats {
			t.Errorf("workers=%d stats = %+v, want %+v", workers, got.stats, base.stats)
		}
		if !reflect.DeepEqual(got.cov, base.cov) {
			t.Errorf("workers=%d coverage diverged: %d edges vs %d", workers, len(got.cov), len(base.cov))
		}
		if !reflect.DeepEqual(got.corpus, base.corpus) {
			t.Errorf("workers=%d corpus diverged (%d vs %d programs)", workers, len(got.corpus), len(base.corpus))
		}
		if !reflect.DeepEqual(got.titles, base.titles) {
			t.Errorf("workers=%d titles = %v, want %v", workers, got.titles, base.titles)
		}
		if !reflect.DeepEqual(got.reports, base.reports) {
			t.Errorf("workers=%d full reports diverged (Tests/HintRank rebasing?)", workers)
		}
		if !reflect.DeepEqual(got.found, base.found) {
			t.Errorf("workers=%d discovery order = %v, want %v", workers, got.found, base.found)
		}
	}
}

// TestPoolStrategyDeterministicAcrossWorkers extends the executor's core
// guarantee to the Migration and Deferred strategies: a fixed-seed campaign
// under either strategy produces byte-identical results — counters
// (including the strategy's own Migrations/DeferredTasks), coverage,
// corpus, reports, and discovery order — at 1, 2, and 8 workers. The base
// run is the 1-worker (serial-order) campaign.
func TestPoolStrategyDeterministicAcrossWorkers(t *testing.T) {
	const steps = 120
	for _, strategy := range []string{"migration", "deferred"} {
		strategy := strategy
		t.Run(strategy, func(t *testing.T) {
			base := fingerprintUnder(t, strategy, 1, steps)
			if base.stats.MTIs == 0 || len(base.cov) == 0 {
				t.Fatalf("campaign did no work: %+v", base.stats)
			}
			switch strategy {
			case "migration":
				if base.stats.Migrations == 0 {
					t.Error("Stats.Migrations = 0: the strategy never migrated")
				}
			case "deferred":
				if base.stats.DeferredTasks == 0 {
					t.Error("Stats.DeferredTasks = 0: the strategy never spawned a handler")
				}
			}
			for _, workers := range []int{2, 8} {
				got := fingerprintUnder(t, strategy, workers, steps)
				if got.stats != base.stats {
					t.Errorf("workers=%d stats = %+v, want %+v", workers, got.stats, base.stats)
				}
				if !reflect.DeepEqual(got.cov, base.cov) {
					t.Errorf("workers=%d coverage diverged: %d edges vs %d", workers, len(got.cov), len(base.cov))
				}
				if !reflect.DeepEqual(got.corpus, base.corpus) {
					t.Errorf("workers=%d corpus diverged (%d vs %d programs)", workers, len(got.corpus), len(base.corpus))
				}
				if !reflect.DeepEqual(got.reports, base.reports) {
					t.Errorf("workers=%d full reports diverged", workers)
				}
				if !reflect.DeepEqual(got.found, base.found) {
					t.Errorf("workers=%d discovery order = %v, want %v", workers, got.found, base.found)
				}
			}
		})
	}
}

// TestPoolResumeDeterministic checks that splitting the same campaign into
// multiple Run calls doesn't change it (the step index stream is global).
func TestPoolResumeDeterministic(t *testing.T) {
	whole := NewPool(Config{Seed: 3, UseSeeds: true}, 2)
	whole.Run(96)
	split := NewPool(Config{Seed: 3, UseSeeds: true}, 2)
	split.Run(32)
	split.Run(64)
	ws, ss := whole.Stats(), split.Stats()
	ws.Perf, ss.Perf = PerfStats{}, PerfStats{}
	if ws != ss {
		t.Errorf("split runs diverged: %+v vs %+v", ss, ws)
	}
	if !reflect.DeepEqual(whole.Cov.Snapshot(), split.Cov.Snapshot()) {
		t.Errorf("split runs diverged in coverage")
	}
}

// TestRecycledKernelEquivalence verifies the sync.Pool recycler: executions
// on a recycled kernel are indistinguishable from a fresh environment's.
func TestRecycledKernelEquivalence(t *testing.T) {
	prog := "r0 = wq_create()\nwq_post_notification(r0, 0x4)\nwq_pipe_read(r0)\n"
	run := func(e *Env) *STIResult {
		p, err := modules.Target("watchqueue").Parse(prog)
		if err != nil {
			t.Fatal(err)
		}
		return e.RunSTI(p)
	}
	env := NewEnv([]string{"watchqueue"}, modules.Bugs("watchqueue:pipe_wmb"))
	first := run(env)
	// Subsequent runs recycle the kernel released by the first.
	for i := 0; i < 3; i++ {
		again := run(env)
		if !reflect.DeepEqual(again.Cov, first.Cov) {
			t.Fatalf("run %d: coverage diverged on recycled kernel", i)
		}
		if !reflect.DeepEqual(again.Returns, first.Returns) {
			t.Fatalf("run %d: returns diverged on recycled kernel", i)
		}
		if len(again.CallEvents) != len(first.CallEvents) {
			t.Fatalf("run %d: call count diverged", i)
		}
		for c := range again.CallEvents {
			if !reflect.DeepEqual(again.CallEvents[c], first.CallEvents[c]) {
				t.Fatalf("run %d: call %d profile diverged on recycled kernel", i, c)
			}
		}
	}
	recycled, built := env.KernelCounters()
	if recycled == 0 {
		t.Fatalf("kernel pool never recycled (recycled=%d built=%d)", recycled, built)
	}
}

// TestSTICacheHits verifies the profile cache memoizes identical programs
// and that cached results match fresh ones.
func TestSTICacheHits(t *testing.T) {
	env := NewEnv([]string{"watchqueue"}, nil)
	p, err := modules.Target("watchqueue").Parse("r0 = wq_create()\nwq_post_notification(r0, 0x4)\n")
	if err != nil {
		t.Fatal(err)
	}
	fresh := env.RunSTI(p)
	first := env.RunSTICached(p)
	second := env.RunSTICached(p)
	if first != second {
		t.Errorf("cache did not memoize: distinct results for identical program")
	}
	if !reflect.DeepEqual(first.Cov, fresh.Cov) {
		t.Errorf("cached coverage differs from fresh run")
	}
	hits, misses := env.STICacheCounters()
	if hits == 0 || misses == 0 {
		t.Errorf("cache counters hits=%d misses=%d, want both nonzero", hits, misses)
	}
}

// TestShardedCov exercises the striped set against a plain map.
func TestShardedCov(t *testing.T) {
	c := NewShardedCov()
	a := map[uint64]struct{}{1: {}, 2: {}, 1 << 40: {}}
	b := map[uint64]struct{}{2: {}, 3: {}}
	if got := c.MergeNew(a); got != 3 {
		t.Errorf("MergeNew(a) = %d, want 3", got)
	}
	if got := c.MergeNew(b); got != 1 {
		t.Errorf("MergeNew(b) = %d, want 1", got)
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
	want := map[uint64]struct{}{1: {}, 2: {}, 3: {}, 1 << 40: {}}
	if !reflect.DeepEqual(c.Snapshot(), want) {
		t.Errorf("Snapshot = %v, want %v", c.Snapshot(), want)
	}
}

// TestMergeNewOrderedEquivalence: the shard-grouped batch merge must
// produce exactly the per-map novelty counts and final set that merging
// the maps one at a time with MergeNew would — including nil maps,
// cross-map duplicates (earliest map wins), and reused scratch.
func TestMergeNewOrderedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var batch MergeBatch
	for round := 0; round < 20; round++ {
		maps := make([]map[uint64]struct{}, rng.Intn(8))
		for i := range maps {
			if rng.Intn(5) == 0 {
				continue // leave nil, like a crashed step's mtiCov
			}
			m := make(map[uint64]struct{})
			for n := rng.Intn(40); n > 0; n-- {
				m[uint64(rng.Intn(64))<<uint(rng.Intn(3)*20)] = struct{}{}
			}
			maps[i] = m
		}
		serial := NewShardedCov()
		want := make([]int, len(maps))
		for i, m := range maps {
			if m != nil {
				want[i] = serial.MergeNew(m)
			}
		}
		batched := NewShardedCov()
		got := batched.MergeNewOrdered(maps, &batch)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: novelty counts %v, want %v", round, got, want)
		}
		if !reflect.DeepEqual(batched.Snapshot(), serial.Snapshot()) {
			t.Fatalf("round %d: batched set diverges from serial set", round)
		}
		// Merging the same maps again must report zero novelty everywhere.
		again := batched.MergeNewOrdered(maps, &batch)
		for i, n := range again {
			if n != 0 {
				t.Fatalf("round %d: re-merge map %d reported %d new edges", round, i, n)
			}
		}
	}
}

// TestSafeReportSetDedup checks title-level dedup through the guard.
func TestSafeReportSetDedup(t *testing.T) {
	s := NewSafeReportSet()
	if !s.Add(&report.Report{Title: "a"}) || s.Add(&report.Report{Title: "a"}) {
		t.Errorf("dedup broken")
	}
	if s.Len() != 1 || s.Get("a") == nil {
		t.Errorf("set state wrong after dedup")
	}
}

// TestPoolCorpusRoundTrip streams a pool corpus out and back in.
func TestPoolCorpusRoundTrip(t *testing.T) {
	p := NewPool(Config{Seed: 11, UseSeeds: true}, 2)
	p.Run(64)
	if p.CorpusLen() == 0 {
		t.Skip("campaign grew no corpus")
	}
	var sb strings.Builder
	if err := p.WriteCorpus(&sb); err != nil {
		t.Fatal(err)
	}
	// A seedless pool has nothing queued, so every corpus program is new;
	// with UseSeeds the import would skip programs already pending as
	// module seeds (ReadCorpus dedups by Program.Key()).
	q := NewPool(Config{Seed: 11}, 2)
	n, err := q.ReadCorpus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n != p.CorpusLen() {
		t.Errorf("round trip imported %d of %d programs", n, p.CorpusLen())
	}
	if n2, _ := q.ReadCorpus(strings.NewReader(sb.String())); n2 != 0 {
		t.Errorf("re-import enqueued %d duplicates, want 0", n2)
	}
}

// TestPoolMetricsLine sanity-checks the -v metrics output.
func TestPoolMetricsLine(t *testing.T) {
	p := NewPool(Config{Seed: 1, UseSeeds: true}, 2)
	p.Run(32)
	line := p.Stats().MetricsLine()
	for _, want := range []string{"tests/s", "sti-cache", "kernel-pool", "2 workers"} {
		if !strings.Contains(line, want) {
			t.Errorf("metrics line %q missing %q", line, want)
		}
	}
}
