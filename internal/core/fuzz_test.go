package core

import (
	"bytes"
	"strings"
	"testing"

	"ozz/internal/modules"
)

// FuzzDecodePrograms hammers the corpus decoder with adversarial byte
// streams — the bytes a worker receives over the sync protocol are
// exactly this input. Invariants: never panic, never emit an empty or
// duplicate program, and every accepted corpus round-trips through
// EncodePrograms/DecodePrograms with identical program keys.
func FuzzDecodePrograms(f *testing.F) {
	target := modules.Target()
	seeds := modules.Seeds()
	f.Add(strings.Join(seeds, "\n\n"))
	for _, s := range seeds {
		f.Add(s)
	}
	f.Add("")
	f.Add("\n\n \n\t\n")
	f.Add("r0 = wq_create()\nwq_pipe_read(r0)\n\nnot a call at all\n")
	f.Add("r0 = wq_create(")
	f.Fuzz(func(t *testing.T, src string) {
		progs, _ := DecodePrograms(strings.NewReader(src), target)
		seen := make(map[string]bool, len(progs))
		for _, p := range progs {
			if p == nil || len(p.Calls) == 0 {
				t.Fatalf("decoder emitted an empty program from %q", src)
			}
			if k := p.Key(); seen[k] {
				t.Fatalf("decoder emitted duplicate key %q from %q", k, src)
			} else {
				seen[k] = true
			}
		}
		if len(progs) == 0 {
			return
		}
		var buf bytes.Buffer
		if err := EncodePrograms(&buf, progs); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := DecodePrograms(bytes.NewReader(buf.Bytes()), target)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v\nencoded:\n%s", err, buf.String())
		}
		if len(again) != len(progs) {
			t.Fatalf("round trip changed corpus size %d -> %d", len(progs), len(again))
		}
		for i := range progs {
			if progs[i].Key() != again[i].Key() {
				t.Fatalf("round trip changed program %d: %q -> %q",
					i, progs[i].Key(), again[i].Key())
			}
		}
	})
}
