package core

import (
	"reflect"
	"testing"

	"ozz/internal/modules"
)

// TestFuzzerFindsFig1Bug runs the full fuzzing loop (generation, profiling,
// hints, MTIs) against the buggy watchqueue module and expects the Fig. 1
// bug within a modest budget.
func TestFuzzerFindsFig1Bug(t *testing.T) {
	f := NewFuzzer(Config{
		Modules:  []string{"watchqueue"},
		Bugs:     modules.Bugs("watchqueue:pipe_wmb"),
		Seed:     1,
		UseSeeds: true,
	})
	r := f.RunUntil("BUG: unable to handle kernel NULL pointer dereference in pipe_read", 50)
	if r == nil {
		t.Fatalf("fuzzer did not find the Fig. 1 bug in 50 steps (stats %+v)", f.Stats)
	}
	if !r.OOO {
		t.Errorf("bug not classified as OOO: %+v", r)
	}
	if r.Type != "S-S" {
		t.Errorf("expected S-S reordering, got %s", r.Type)
	}
	if r.HypBarrier == "" {
		t.Errorf("report lacks hypothetical barrier location")
	}
}

// TestFuzzerCleanKernelQuiet runs the fuzzer on the fixed module and expects
// zero OOO reports: the hypothetical barrier tests must not produce false
// positives when the real barriers are present.
func TestFuzzerCleanKernelQuiet(t *testing.T) {
	f := NewFuzzer(Config{
		Modules:  []string{"watchqueue"},
		Bugs:     nil,
		Seed:     2,
		UseSeeds: true,
	})
	f.Run(40)
	for _, r := range f.Reports.All() {
		if r.OOO {
			t.Errorf("false positive on fixed kernel: %s", r.Title)
		}
	}
}

// TestFuzzerWithoutSeeds checks pure generation also reaches the bug (the
// templates alone must suffice, like syzlang descriptions do).
func TestFuzzerWithoutSeeds(t *testing.T) {
	f := NewFuzzer(Config{
		Modules: []string{"watchqueue"},
		Bugs:    modules.Bugs("watchqueue:pipe_wmb"),
		Seed:    3,
	})
	r := f.RunUntil("BUG: unable to handle kernel NULL pointer dereference in pipe_read", 300)
	if r == nil {
		t.Fatalf("fuzzer did not find the bug from templates alone (stats %+v)", f.Stats)
	}
}

// TestCrossModelProbe pins the probe's per-model verdict on the Fig. 1
// bug: an S-S reordering reproduces under the weak models (lkmm, armv8)
// but never under tso, whose FIFO store buffer drains older pending
// stores before a later one commits. Covers both campaign executors —
// the serial fuzzer and the pool mirror the same probe.
func TestCrossModelProbe(t *testing.T) {
	const title = "BUG: unable to handle kernel NULL pointer dereference in pipe_read"
	want := []string{"armv8", "lkmm"}

	f := NewFuzzer(Config{
		Modules:  []string{"watchqueue"},
		Bugs:     modules.Bugs("watchqueue:pipe_wmb"),
		Seed:     1,
		UseSeeds: true,
	})
	r := f.RunUntil(title, 50)
	if r == nil {
		t.Fatal("serial fuzzer did not find the Fig. 1 bug in 50 steps")
	}
	if !reflect.DeepEqual(r.Models, want) {
		t.Errorf("serial probe: Models = %v, want %v", r.Models, want)
	}

	p := NewPool(Config{
		Modules:  []string{"watchqueue"},
		Bugs:     modules.Bugs("watchqueue:pipe_wmb"),
		Seed:     1,
		UseSeeds: true,
	}, 2)
	p.Run(50)
	pr := p.Reports.Get(title)
	if pr == nil {
		t.Fatal("pool did not find the Fig. 1 bug in 50 steps")
	}
	if !reflect.DeepEqual(pr.Models, want) {
		t.Errorf("pool probe: Models = %v, want %v", pr.Models, want)
	}
}
