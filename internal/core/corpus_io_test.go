package core

import (
	"errors"
	"io"
	"strings"
	"testing"

	"ozz/internal/modules"
	"ozz/internal/syzlang"
)

// corpusProgA/corpusProgB are two distinct valid watchqueue programs used
// as corpus fixtures throughout the adversarial decode tests.
const (
	corpusProgA = "r0 = wq_create()\nwq_pipe_read(r0)\n"
	corpusProgB = "r0 = wq_create()\nwq_post_notification(r0, 0x4)\nwq_pipe_read(r0)\n"
)

// errAfterReader yields its payload, then fails with err — a truncated
// stream (the transport died mid-corpus).
type errAfterReader struct {
	data string
	err  error
	off  int
}

func (r *errAfterReader) Read(p []byte) (int, error) {
	if r.off < len(r.data) {
		n := copy(p, r.data[r.off:])
		r.off += n
		return n, nil
	}
	return 0, r.err
}

func TestDecodeProgramsEmptyStream(t *testing.T) {
	target := modules.Target("watchqueue")
	for _, src := range []string{"", "\n\n\n", "   \n\t\n"} {
		progs, err := DecodePrograms(strings.NewReader(src), target)
		if !errors.Is(err, ErrEmptyCorpus) {
			t.Errorf("DecodePrograms(%q) err = %v, want ErrEmptyCorpus", src, err)
		}
		if len(progs) != 0 {
			t.Errorf("DecodePrograms(%q) returned %d programs from nothing", src, len(progs))
		}
	}
}

func TestDecodeProgramsCorruptedRecord(t *testing.T) {
	target := modules.Target("watchqueue")
	src := corpusProgA + "\n@@ definitely not syzlang @@\n\n" + corpusProgB
	progs, err := DecodePrograms(strings.NewReader(src), target)
	var ce *CorpusError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorpusError", err)
	}
	if ce.Block != 2 {
		t.Errorf("CorpusError.Block = %d, want 2", ce.Block)
	}
	if !strings.Contains(ce.Src, "not syzlang") {
		t.Errorf("CorpusError.Src = %q, want the offending block", ce.Src)
	}
	// Partial corpus: both valid blocks around the corruption survive.
	if len(progs) != 2 {
		t.Fatalf("got %d programs, want the 2 valid ones", len(progs))
	}
}

func TestDecodeProgramsTruncatedStream(t *testing.T) {
	target := modules.Target("watchqueue")
	cause := errors.New("connection reset")
	// The stream dies mid-way through the second program's block.
	r := &errAfterReader{data: corpusProgA + "\nr0 = wq_create()\nwq_post_notification(r0,", err: cause}
	progs, err := DecodePrograms(r, target)
	var ce *CorpusError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorpusError", err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("typed error does not unwrap to the transport cause: %v", err)
	}
	// Everything fully received before the failure is still usable.
	if len(progs) != 1 {
		t.Errorf("got %d programs, want 1 complete block before truncation", len(progs))
	}
}

func TestDecodeProgramsOverlongLine(t *testing.T) {
	target := modules.Target("watchqueue")
	// A single 2 MiB line overflows the scanner's 1 MiB cap: typed error,
	// no panic.
	src := corpusProgA + "\n" + strings.Repeat("x", 2<<20)
	progs, err := DecodePrograms(strings.NewReader(src), target)
	var ce *CorpusError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorpusError", err)
	}
	if len(progs) != 1 {
		t.Errorf("got %d programs, want the 1 block before the bomb", len(progs))
	}
}

func TestDecodeProgramsDedupsByKey(t *testing.T) {
	target := modules.Target("watchqueue")
	src := corpusProgA + "\n" + corpusProgB + "\n" + corpusProgA // duplicate of block 1
	progs, err := DecodePrograms(strings.NewReader(src), target)
	if err != nil {
		t.Fatalf("DecodePrograms: %v", err)
	}
	if len(progs) != 2 {
		t.Fatalf("got %d programs, want 2 after key dedup", len(progs))
	}
	if progs[0].Key() == progs[1].Key() {
		t.Fatal("dedup kept two programs with the same key")
	}
}

// TestReadCorpusIdempotent pins the /sync-round invariant: re-reading the
// same corpus (or an appended file repeating earlier programs) enqueues
// nothing new, for both executors.
func TestReadCorpusIdempotent(t *testing.T) {
	src := corpusProgA + "\n" + corpusProgB

	f := NewFuzzer(Config{Modules: []string{"watchqueue"}, Seed: 1})
	if n, err := f.ReadCorpus(strings.NewReader(src)); n != 2 || err != nil {
		t.Fatalf("first ReadCorpus = (%d, %v), want (2, nil)", n, err)
	}
	if n, _ := f.ReadCorpus(strings.NewReader(src)); n != 0 {
		t.Fatalf("second ReadCorpus enqueued %d duplicates", n)
	}

	p := NewPool(Config{Modules: []string{"watchqueue"}, Seed: 1}, 2)
	if n, err := p.ReadCorpus(strings.NewReader(src)); n != 2 || err != nil {
		t.Fatalf("pool first ReadCorpus = (%d, %v), want (2, nil)", n, err)
	}
	if n, _ := p.ReadCorpus(strings.NewReader(src)); n != 0 {
		t.Fatalf("pool second ReadCorpus enqueued %d duplicates", n)
	}
}

// TestReadCorpusSkipsCorpusDuplicates: a program already admitted to the
// coverage corpus is not re-enqueued as a seed on resume.
func TestReadCorpusSkipsCorpusDuplicates(t *testing.T) {
	f := NewFuzzer(Config{Modules: []string{"watchqueue"}, Seed: 21, UseSeeds: true})
	f.Run(30)
	if len(f.CorpusPrograms()) == 0 {
		t.Fatal("campaign built no corpus")
	}
	exported := f.ExportCorpus()
	// Re-importing its own corpus into the same fuzzer is a no-op.
	if n, err := f.ReadCorpus(strings.NewReader(exported)); n != 0 || err != nil {
		t.Fatalf("self re-import = (%d, %v), want (0, nil)", n, err)
	}
}

// TestEncodeDecodeRoundTrip: EncodePrograms output decodes back to the
// same programs, key for key, through an io.Pipe (true streaming).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	target := modules.Target("watchqueue")
	p1, err := target.Parse(corpusProgA)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := target.Parse(corpusProgB)
	if err != nil {
		t.Fatal(err)
	}
	pr, pw := io.Pipe()
	go func() {
		_ = EncodePrograms(pw, []*syzlang.Program{p1, p2})
		pw.Close()
	}()
	got, err := DecodePrograms(pr, target)
	if err != nil {
		t.Fatalf("DecodePrograms: %v", err)
	}
	if len(got) != 2 || got[0].Key() != p1.Key() || got[1].Key() != p2.Key() {
		t.Fatalf("round trip changed programs: got %d", len(got))
	}
}
