package core

import (
	"strings"
	"testing"

	"ozz/internal/hints"
	"ozz/internal/modules"
	"ozz/internal/syzlang"
)

// mustParse parses a seed program against the watchqueue target.
func mustParse(t *testing.T, target *syzlang.Target, src string) *syzlang.Program {
	t.Helper()
	p, err := target.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

const wqProg = "r0 = wq_create()\nwq_post_notification(r0, 0x4)\nwq_pipe_read(r0)\n"

// TestSTIProfilesAccesses checks the profiling phase (§4.2): the
// single-threaded run records access and barrier events per call.
func TestSTIProfilesAccesses(t *testing.T) {
	env := NewEnv([]string{"watchqueue"}, nil)
	target := modules.Target("watchqueue")
	p := mustParse(t, target, wqProg)
	res := env.RunSTI(p)
	if res.Crash != nil {
		t.Fatalf("unexpected crash: %v", res.Crash)
	}
	if len(res.CallEvents[1]) == 0 || len(res.CallEvents[2]) == 0 {
		t.Fatalf("expected profiled events for post and read, got %d/%d",
			len(res.CallEvents[1]), len(res.CallEvents[2]))
	}
	// The post call must record its smp_wmb (bug switch off).
	foundWmb := false
	for _, e := range res.CallEvents[1] {
		if e.Barrier && e.Bar.Kind.OrdersStores() {
			foundWmb = true
		}
	}
	if !foundWmb {
		t.Errorf("post_one_notification profile lacks the smp_wmb event")
	}
}

// findAndRun computes hints for the (post, read) pair and runs MTIs until a
// crash, returning the crash title ("" if none).
func findAndRun(t *testing.T, env *Env, p *syzlang.Program) string {
	t.Helper()
	sti := env.RunSTI(p)
	if sti.Crash != nil {
		t.Fatalf("sequential crash: %v", sti.Crash)
	}
	hs := hints.Calculate(sti.CallEvents[1], sti.CallEvents[2])
	if len(hs) == 0 {
		t.Fatalf("no scheduling hints computed")
	}
	for _, h := range hs {
		res := env.RunMTI(MTIOpts{Prog: p, I: 1, J: 2, Hint: h})
		if res.Crash != nil {
			return res.Crash.Title
		}
	}
	return ""
}

// TestFig1StoreBarrierBug reproduces the paper's Fig. 1 bug with the
// missing smp_wmb (hypothetical store barrier test, Fig. 5a).
func TestFig1StoreBarrierBug(t *testing.T) {
	env := NewEnv([]string{"watchqueue"}, modules.Bugs("watchqueue:pipe_wmb"))
	target := modules.Target("watchqueue")
	p := mustParse(t, target, wqProg)
	title := findAndRun(t, env, p)
	if !strings.Contains(title, "NULL pointer dereference in pipe_read") {
		t.Fatalf("expected pipe_read NULL deref, got %q", title)
	}
}

// TestFig1LoadBarrierBug reproduces the reader half: missing smp_rmb in
// pipe_read (hypothetical load barrier test, Fig. 5b).
func TestFig1LoadBarrierBug(t *testing.T) {
	env := NewEnv([]string{"watchqueue"}, modules.Bugs("watchqueue:pipe_rmb"))
	target := modules.Target("watchqueue")
	p := mustParse(t, target, wqProg)
	title := findAndRun(t, env, p)
	if !strings.Contains(title, "NULL pointer dereference in pipe_read") {
		t.Fatalf("expected pipe_read NULL deref, got %q", title)
	}
}

// TestNoFalsePositiveWithBarriers checks that with both barriers present no
// hint triggers a crash: OEMU must refuse to reorder across real barriers.
func TestNoFalsePositiveWithBarriers(t *testing.T) {
	env := NewEnv([]string{"watchqueue"}, nil)
	target := modules.Target("watchqueue")
	p := mustParse(t, target, wqProg)
	sti := env.RunSTI(p)
	hs := hints.Calculate(sti.CallEvents[1], sti.CallEvents[2])
	for _, h := range hs {
		res := env.RunMTI(MTIOpts{Prog: p, I: 1, J: 2, Hint: h})
		if res.Crash != nil {
			t.Fatalf("false positive with barriers present: %v (hint %v)", res.Crash, h)
		}
	}
}

// TestFilterWmbBug reproduces Table 3 bug #2 (NULL deref in
// _find_first_bit): the filter publication misses its smp_wmb.
func TestFilterWmbBug(t *testing.T) {
	env := NewEnv([]string{"watchqueue"}, modules.Bugs("watchqueue:post_wmb_bit"))
	target := modules.Target("watchqueue")
	p := mustParse(t, target, "r0 = wq_create()\nwq_set_filter(r0, 0x20)\nwq_post_notification(r0, 0x2)\n")
	title := findAndRun(t, env, p)
	if !strings.Contains(title, "_find_first_bit") {
		t.Fatalf("expected _find_first_bit NULL deref, got %q", title)
	}
}
