package core

import (
	"testing"

	"ozz/internal/hints"
	"ozz/internal/modules"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// crashingHint finds a (program, pair, hint) triple that reproduces the
// given title, by direct enumeration over a seed program.
func crashingHint(t *testing.T, env *Env, src, title string, i, j int) (*syzlang.Program, *hints.Hint) {
	t.Helper()
	target := modules.Target(env.Modules...)
	p, err := target.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sti := env.RunSTI(p)
	if sti.Crash != nil {
		t.Fatalf("sequential crash: %v", sti.Crash)
	}
	for _, h := range hints.Calculate(sti.CallEvents[i], sti.CallEvents[j]) {
		res := env.RunMTI(MTIOpts{Prog: p, I: i, J: j, Hint: h})
		if res.Crash != nil && res.Crash.Title == title {
			return p, h
		}
	}
	t.Fatalf("no hint reproduces %q", title)
	return nil, nil
}

// TestInterruptInjectionDefeatsStoreTest is the interrupt ablation: an
// interrupt at the scheduling point drains the virtual store buffer, so the
// delayed-store reordering never becomes visible — which is why the custom
// scheduler suspends vCPUs without delivering interrupts (§3.1, §10.3).
func TestInterruptInjectionDefeatsStoreTest(t *testing.T) {
	const title = "BUG: unable to handle kernel NULL pointer dereference in pipe_read"
	const prog = "r0 = wq_create()\nwq_post_notification(r0, 0x4)\nwq_pipe_read(r0)\n"

	env := NewEnv([]string{"watchqueue"}, modules.Bugs("watchqueue:pipe_wmb"))
	p, h := crashingHint(t, env, prog, title, 1, 2)

	envInt := NewEnv([]string{"watchqueue"}, modules.Bugs("watchqueue:pipe_wmb"))
	envInt.InterruptOnSwitch = true
	res := envInt.RunMTI(MTIOpts{Prog: p, I: 1, J: 2, Hint: h})
	if res.Crash != nil {
		t.Fatalf("bug reproduced despite the interrupt flushing the buffer: %v", res.Crash)
	}
	if !res.Fired {
		t.Fatal("scheduling point did not fire")
	}
}

// TestInterruptDoesNotAffectLoadTest: versioned loads read from the global
// store history, which interrupts do not erase — the load-barrier test
// still works (only store buffering is interrupt-sensitive).
func TestInterruptDoesNotAffectLoadTest(t *testing.T) {
	const title = "BUG: unable to handle kernel NULL pointer dereference in pipe_read"
	const prog = "r0 = wq_create()\nwq_post_notification(r0, 0x4)\nwq_pipe_read(r0)\n"

	env := NewEnv([]string{"watchqueue"}, modules.Bugs("watchqueue:pipe_rmb"))
	p, h := crashingHint(t, env, prog, title, 1, 2)
	if h.Test != hints.LoadBarrierTest {
		t.Skipf("triggering hint is %v, not a load test", h.Test)
	}
	envInt := NewEnv([]string{"watchqueue"}, modules.Bugs("watchqueue:pipe_rmb"))
	envInt.InterruptOnSwitch = true
	res := envInt.RunMTI(MTIOpts{Prog: p, I: 1, J: 2, Hint: h})
	if res.Crash == nil {
		t.Fatal("load-barrier test must survive interrupt injection")
	}
}

// TestMinimize shrinks the rds reproducer: the 4-call seed minimizes down
// to the calls the crash genuinely needs (the socket producer, the staging
// sendmsg, and the concurrent pair member feeding the suffix consumer).
func TestMinimize(t *testing.T) {
	const title = "KASAN: slab-out-of-bounds Read in rds_loop_xmit"
	const prog = "r0 = rds_socket()\nrds_sendmsg(r0, 0x4)\nrds_sendmsg(r0, 0x3)\nrds_loop_xmit(r0)\nrds_loop_xmit(r0)\n"

	env := NewEnv([]string{"rds"}, modules.Bugs("rds:clear_bit_unlock"))
	target := modules.Target("rds")
	p, err := target.Parse(prog)
	if err != nil {
		t.Fatal(err)
	}
	sti := env.RunSTI(p)
	var hit *hints.Hint
	var hi, hj int
	for _, pr := range [][2]int{{2, 3}, {1, 2}, {2, 4}} {
		for _, h := range hints.Calculate(sti.CallEvents[pr[0]], sti.CallEvents[pr[1]]) {
			res := env.RunMTI(MTIOpts{Prog: p, I: pr[0], J: pr[1], Hint: h})
			if res.Crash != nil && res.Crash.Title == title {
				hit, hi, hj = h, pr[0], pr[1]
				break
			}
		}
		if hit != nil {
			break
		}
	}
	if hit == nil {
		t.Fatal("no reproducing hint found")
	}
	minned, mi, mj := env.Minimize(p, hi, hj, hit, title)
	if len(minned.Calls) >= len(p.Calls) {
		t.Fatalf("minimization removed nothing (%d calls)", len(minned.Calls))
	}
	// The minimized program must still reproduce.
	res := env.RunMTI(MTIOpts{Prog: minned, I: mi, J: mj, Hint: hit})
	if res.Crash == nil || res.Crash.Title != title {
		t.Fatalf("minimized program does not reproduce: %v\n%s", res.Crash, minned)
	}
}

// TestHintOrderAblation: on the Fig. 1 bug the heuristic order finds the
// bug with no more MTI executions than the reversed order (§4.3's rationale:
// maximum-reordering hints first).
func TestHintOrderAblation(t *testing.T) {
	const title = "BUG: unable to handle kernel NULL pointer dereference in pipe_read"
	mtisToFind := func(order string) uint64 {
		f := NewFuzzer(Config{
			Modules:   []string{"watchqueue"},
			Bugs:      modules.Bugs("watchqueue:pipe_wmb"),
			Seed:      5,
			UseSeeds:  true,
			HintOrder: order,
		})
		if r := f.RunUntil(title, 80); r == nil {
			t.Fatalf("order %q never found the bug", order)
		}
		return f.Stats.MTIs
	}
	heuristic := mtisToFind("heuristic")
	reverse := mtisToFind("reverse")
	if heuristic > reverse {
		t.Fatalf("heuristic order (%d MTIs) slower than reverse (%d MTIs)", heuristic, reverse)
	}
}

// TestDeterministicCampaign: identical configs yield identical findings and
// statistics — the determinism claim of §7's comparison with KCSAN.
func TestDeterministicCampaign(t *testing.T) {
	run := func() (Stats, []string) {
		f := NewFuzzer(Config{
			Bugs:     modules.Bugs("tls:sk_prot_wmb", "xsk:state_wmb"),
			Seed:     11,
			UseSeeds: true,
		})
		f.Run(40)
		return f.Stats, f.Reports.Titles()
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	if len(t1) != len(t2) {
		t.Fatalf("titles differ: %v vs %v", t1, t2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("titles differ at %d: %q vs %q", i, t1[i], t2[i])
		}
	}
}

// TestCorpusExportImport: a campaign's coverage corpus round-trips through
// the text format and primes a fresh campaign.
func TestCorpusExportImport(t *testing.T) {
	f1 := NewFuzzer(Config{
		Modules:  []string{"watchqueue"},
		Seed:     21,
		UseSeeds: true,
	})
	f1.Run(30)
	if len(f1.CorpusPrograms()) == 0 {
		t.Fatal("campaign built no corpus")
	}
	exported := f1.ExportCorpus()

	f2 := NewFuzzer(Config{Modules: []string{"watchqueue"}, Seed: 22})
	n := f2.ImportCorpus(exported)
	if n != len(f1.CorpusPrograms()) {
		t.Fatalf("imported %d of %d programs", n, len(f1.CorpusPrograms()))
	}
	// The primed campaign replays the imported programs first.
	f2.Step()
	if f2.Stats.STIs != 1 {
		t.Fatalf("stats = %+v", f2.Stats)
	}
}

// TestImportCorpusSkipsGarbage: unparseable blocks are ignored.
func TestImportCorpusSkipsGarbage(t *testing.T) {
	f := NewFuzzer(Config{Modules: []string{"watchqueue"}, Seed: 1})
	n := f.ImportCorpus("not a program\n\nr0 = wq_create()\nwq_pipe_read(r0)\n\n???")
	if n != 1 {
		t.Fatalf("imported %d, want 1", n)
	}
}

// TestVacuousHintCounted: a breakpoint on an unreached branch counts as a
// vacuous MTI (the fuzzer's waste metric).
func TestVacuousHintCounted(t *testing.T) {
	env := NewEnv([]string{"watchqueue"}, nil)
	target := modules.Target("watchqueue")
	p, err := target.Parse("r0 = wq_create()\nwq_post_notification(r0, 0x4)\nwq_pipe_read(r0)\n")
	if err != nil {
		t.Fatal(err)
	}
	res := env.RunMTI(MTIOpts{Prog: p, I: 1, J: 2, Hint: &hints.Hint{
		Reorderer: 0,
		Test:      hints.StoreBarrierTest,
		Sched:     0xdead, // never executed
		SchedOcc:  1,
		Reorder:   []trace.InstrID{0xbeef},
	}})
	if res.Fired {
		t.Fatal("breakpoint on unreachable site fired")
	}
	if res.Crash != nil {
		t.Fatalf("vacuous run crashed: %v", res.Crash)
	}
}
