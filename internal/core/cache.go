package core

import (
	"sync"
	"sync/atomic"

	"ozz/internal/syzlang"
)

// stiCacheCap bounds the number of cached STI profiles. When the cap is
// reached the cache is dropped wholesale (epoch clearing): campaigns cycle
// through generations of programs, so stale entries rarely pay rent, and
// wholesale clearing keeps eviction O(1) and free of iteration-order
// nondeterminism.
const stiCacheCap = 4096

// stiCache memoizes single-threaded profiling runs keyed by the canonical
// syzlang serialization of the program (Program.Key). Re-profiling an
// identical single-threaded input — which happens constantly across fuzzer
// steps, minimization, and the Table 3/4 campaigns — becomes a map lookup.
//
// Safe for concurrent use. Cached *STIResult values are shared between all
// callers and MUST be treated as immutable; every consumer in this package
// only reads them (coverage merging, hint calculation, report formatting).
type stiCache struct {
	mu sync.RWMutex
	m  map[string]*STIResult

	hits, misses atomic.Uint64
}

func (c *stiCache) get(key string) *STIResult {
	c.mu.RLock()
	r := c.m[key]
	c.mu.RUnlock()
	if r != nil {
		c.hits.Add(1)
	}
	return r
}

func (c *stiCache) put(key string, r *STIResult) {
	c.mu.Lock()
	if c.m == nil || len(c.m) >= stiCacheCap {
		c.m = make(map[string]*STIResult)
	}
	c.m[key] = r
	c.mu.Unlock()
}

// RunSTICached is RunSTI behind the environment's profile cache: the first
// execution of a program profiles it for real; later executions of a
// byte-identical program return the memoized result. Correct because Env
// executions are deterministic — a program's STI outcome is a pure function
// of (program, environment). The returned result is shared: callers must
// not mutate it.
func (e *Env) RunSTICached(p *syzlang.Program) *STIResult {
	key := p.Key()
	if r := e.sti.get(key); r != nil {
		return r
	}
	e.sti.misses.Add(1)
	r := e.RunSTI(p)
	e.sti.put(key, r)
	return r
}

// STICacheCounters reports profile-cache hits and misses. Two workers
// racing on the same uncached program both count a miss (both profile it;
// the results are identical), so hits+misses can slightly exceed the
// number of lookups that found an entry present.
func (e *Env) STICacheCounters() (hits, misses uint64) {
	return e.sti.hits.Load(), e.sti.misses.Load()
}
