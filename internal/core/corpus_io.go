package core

import (
	"strings"

	"ozz/internal/syzlang"
)

// ExportCorpus serializes the coverage corpus (one program per block,
// blank-line separated) — syzkaller's corpus persistence, so long campaigns
// can resume where they left off.
func (f *Fuzzer) ExportCorpus() string {
	var sb strings.Builder
	for i, p := range f.corpus {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(p.String())
	}
	return sb.String()
}

// ImportCorpus parses a previously exported corpus and enqueues its
// programs ahead of random generation (like seed programs). Unparseable
// blocks are skipped; the count of imported programs is returned.
func (f *Fuzzer) ImportCorpus(src string) int {
	n := 0
	for _, block := range strings.Split(src, "\n\n") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		p, err := f.target.Parse(block)
		if err != nil || len(p.Calls) == 0 {
			continue
		}
		f.seeds = append(f.seeds, p)
		n++
	}
	return n
}

// CorpusPrograms returns copies of the current corpus programs (testing and
// tooling).
func (f *Fuzzer) CorpusPrograms() []*syzlang.Program {
	out := make([]*syzlang.Program, len(f.corpus))
	for i, p := range f.corpus {
		out[i] = p.Clone()
	}
	return out
}
