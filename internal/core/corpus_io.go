package core

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"

	"ozz/internal/syzlang"
)

// Corpus persistence (syzkaller's corpus files, so long campaigns can
// resume where they left off): one program per block, blank-line
// separated. The stream variants below never materialize the whole corpus
// as one string — programs are written through a bufio.Writer and parsed
// block-by-block from a bufio.Scanner — so corpus size is bounded by the
// largest single program, not the file. The same encoding is the wire
// format of the distributed fabric's /sync payloads (internal/dist), which
// is why the encode/decode pair is exported.

// ErrEmptyCorpus reports a corpus stream that contained no program blocks
// at all (e.g. an empty or whitespace-only file). Callers resuming a
// campaign may treat it as "nothing to import"; callers expecting data
// (a sync payload that claimed programs) should treat it as corruption.
var ErrEmptyCorpus = errors.New("core: corpus stream contains no programs")

// CorpusError describes a malformed block or a failed read inside a corpus
// stream. Decoding continues past malformed blocks, so the caller receives
// the partial corpus alongside the first CorpusError — never a panic.
type CorpusError struct {
	// Block is the 1-based index of the offending block in the stream
	// (0 when the failure is a stream read error rather than a block).
	Block int
	// Src is the offending block's text, truncated for display.
	Src string
	// Err is the underlying cause (a parse error, bufio.ErrTooLong, or
	// the reader's error for truncated streams).
	Err error
}

// Error renders the block position and cause.
func (e *CorpusError) Error() string {
	if e.Block > 0 {
		return fmt.Sprintf("core: corpus block %d: %v", e.Block, e.Err)
	}
	return fmt.Sprintf("core: corpus stream: %v", e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CorpusError) Unwrap() error { return e.Err }

// truncateSrc bounds the offending-block excerpt kept on a CorpusError.
func truncateSrc(src string) string {
	const max = 120
	if len(src) > max {
		return src[:max] + "…"
	}
	return src
}

// EncodePrograms streams the programs to w in the corpus encoding
// (blank-line-separated blocks), buffered.
func EncodePrograms(w io.Writer, progs []*syzlang.Program) error {
	bw := bufio.NewWriter(w)
	for i, p := range progs {
		if i > 0 {
			if _, err := bw.WriteString("\n"); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(p.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodePrograms scans blank-line-separated program blocks from r, parsing
// each against the target and deduplicating by Program.Key (first
// occurrence wins). It never panics on adversarial input: an empty stream
// returns (nil, ErrEmptyCorpus); a corrupted block is skipped and reported
// as a *CorpusError (the first one encountered) alongside the programs
// that did parse; a truncated or over-long stream returns the partial
// corpus plus a *CorpusError wrapping the read failure.
func DecodePrograms(r io.Reader, target *syzlang.Target) ([]*syzlang.Program, error) {
	var (
		progs    []*syzlang.Program
		seen     = make(map[string]struct{})
		block    strings.Builder
		blockIdx int
		firstErr error
	)
	flush := func() {
		src := strings.TrimSpace(block.String())
		block.Reset()
		if src == "" {
			return
		}
		blockIdx++
		p, err := target.Parse(src)
		if err != nil || len(p.Calls) == 0 {
			if firstErr == nil {
				if err == nil {
					err = errors.New("program has no calls")
				}
				firstErr = &CorpusError{Block: blockIdx, Src: truncateSrc(src), Err: err}
			}
			return
		}
		key := p.Key()
		if _, dup := seen[key]; dup {
			return
		}
		seen[key] = struct{}{}
		progs = append(progs, p)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			flush()
			continue
		}
		block.WriteString(line)
		block.WriteString("\n")
	}
	if err := sc.Err(); err != nil {
		// Truncated or over-long stream: the in-flight block is suspect
		// (it may be an incomplete prefix), so drop it rather than parse
		// half a program, and report the read failure.
		return progs, &CorpusError{Src: truncateSrc(block.String()), Err: err}
	}
	flush()
	if blockIdx == 0 {
		return nil, ErrEmptyCorpus
	}
	return progs, firstErr
}

// dedupeAgainst filters progs down to those whose Key is not in known,
// recording kept keys in known so intra-slice duplicates also drop.
func dedupeAgainst(progs []*syzlang.Program, known map[string]struct{}) []*syzlang.Program {
	out := progs[:0]
	for _, p := range progs {
		key := p.Key()
		if _, dup := known[key]; dup {
			continue
		}
		known[key] = struct{}{}
		out = append(out, p)
	}
	return out
}

// programKeys collects the Key of every program in the slices into one set.
func programKeys(slices ...[]*syzlang.Program) map[string]struct{} {
	known := make(map[string]struct{})
	for _, ps := range slices {
		for _, p := range ps {
			known[p.Key()] = struct{}{}
		}
	}
	return known
}

// WriteCorpus streams the coverage corpus to w.
func (f *Fuzzer) WriteCorpus(w io.Writer) error {
	return EncodePrograms(w, f.corpus)
}

// ReadCorpus parses a previously written corpus from r and enqueues its
// programs ahead of random generation (like seed programs), skipping any
// program whose Key is already queued or in the corpus — so re-reading an
// appended corpus file (or repeated /sync rounds) can't bloat the corpus.
// It returns the number of newly enqueued programs; on malformed input the
// parseable programs are still imported and a typed error (ErrEmptyCorpus
// or *CorpusError) describes the problem.
func (f *Fuzzer) ReadCorpus(r io.Reader) (int, error) {
	progs, err := DecodePrograms(r, f.target)
	progs = dedupeAgainst(progs, programKeys(f.seeds, f.corpus))
	f.seeds = append(f.seeds, progs...)
	return len(progs), err
}

// WriteCorpus streams the pool campaign's coverage corpus to w.
func (p *Pool) WriteCorpus(w io.Writer) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return EncodePrograms(w, p.corpus)
}

// ReadCorpus parses a previously written corpus from r and enqueues its
// programs ahead of random generation, skipping duplicates by Program.Key
// exactly like Fuzzer.ReadCorpus. Call before Run for deterministic
// replay. It returns the number of newly enqueued programs.
func (p *Pool) ReadCorpus(r io.Reader) (int, error) {
	progs, err := DecodePrograms(r, p.target)
	p.mu.Lock()
	progs = dedupeAgainst(progs, programKeys(p.seeds, p.corpus))
	p.seeds = append(p.seeds, progs...)
	p.mu.Unlock()
	return len(progs), err
}

// ExportCorpus serializes the corpus to a string (string-level wrapper
// around WriteCorpus, kept for tests and tooling).
func (f *Fuzzer) ExportCorpus() string {
	var sb strings.Builder
	_ = EncodePrograms(&sb, f.corpus)
	return sb.String()
}

// ImportCorpus parses an exported corpus from a string (wrapper around
// ReadCorpus) and returns the count of imported programs, silently
// tolerating malformed blocks.
func (f *Fuzzer) ImportCorpus(src string) int {
	n, _ := f.ReadCorpus(strings.NewReader(src))
	return n
}

// CorpusPrograms returns copies of the current corpus programs (testing and
// tooling).
func (f *Fuzzer) CorpusPrograms() []*syzlang.Program {
	out := make([]*syzlang.Program, len(f.corpus))
	for i, p := range f.corpus {
		out[i] = p.Clone()
	}
	return out
}
