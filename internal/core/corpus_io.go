package core

import (
	"bufio"
	"io"
	"strings"

	"ozz/internal/syzlang"
)

// Corpus persistence (syzkaller's corpus files, so long campaigns can
// resume where they left off): one program per block, blank-line
// separated. The stream variants below never materialize the whole corpus
// as one string — programs are written through a bufio.Writer and parsed
// block-by-block from a bufio.Scanner — so corpus size is bounded by the
// largest single program, not the file.

// writeCorpus streams the programs to w, buffered.
func writeCorpus(w io.Writer, progs []*syzlang.Program) error {
	bw := bufio.NewWriter(w)
	for i, p := range progs {
		if i > 0 {
			if _, err := bw.WriteString("\n"); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(p.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readCorpus scans blank-line-separated program blocks from r, parsing
// each against the target. Unparseable or empty blocks are skipped.
func readCorpus(r io.Reader, target *syzlang.Target) ([]*syzlang.Program, error) {
	var (
		progs []*syzlang.Program
		block strings.Builder
	)
	flush := func() {
		src := strings.TrimSpace(block.String())
		block.Reset()
		if src == "" {
			return
		}
		if p, err := target.Parse(src); err == nil && len(p.Calls) > 0 {
			progs = append(progs, p)
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			flush()
			continue
		}
		block.WriteString(line)
		block.WriteString("\n")
	}
	flush()
	return progs, sc.Err()
}

// WriteCorpus streams the coverage corpus to w.
func (f *Fuzzer) WriteCorpus(w io.Writer) error {
	return writeCorpus(w, f.corpus)
}

// ReadCorpus parses a previously written corpus from r and enqueues its
// programs ahead of random generation (like seed programs). It returns the
// number of imported programs.
func (f *Fuzzer) ReadCorpus(r io.Reader) (int, error) {
	progs, err := readCorpus(r, f.target)
	f.seeds = append(f.seeds, progs...)
	return len(progs), err
}

// WriteCorpus streams the pool campaign's coverage corpus to w.
func (p *Pool) WriteCorpus(w io.Writer) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return writeCorpus(w, p.corpus)
}

// ReadCorpus parses a previously written corpus from r and enqueues its
// programs ahead of random generation. Call before Run for deterministic
// replay. It returns the number of imported programs.
func (p *Pool) ReadCorpus(r io.Reader) (int, error) {
	progs, err := readCorpus(r, p.target)
	p.AddSeeds(progs)
	return len(progs), err
}

// ExportCorpus serializes the corpus to a string (string-level wrapper
// around WriteCorpus, kept for tests and tooling).
func (f *Fuzzer) ExportCorpus() string {
	var sb strings.Builder
	_ = writeCorpus(&sb, f.corpus)
	return sb.String()
}

// ImportCorpus parses an exported corpus from a string (wrapper around
// ReadCorpus) and returns the count of imported programs.
func (f *Fuzzer) ImportCorpus(src string) int {
	n, _ := f.ReadCorpus(strings.NewReader(src))
	return n
}

// CorpusPrograms returns copies of the current corpus programs (testing and
// tooling).
func (f *Fuzzer) CorpusPrograms() []*syzlang.Program {
	out := make([]*syzlang.Program, len(f.corpus))
	for i, p := range f.corpus {
		out[i] = p.Clone()
	}
	return out
}
