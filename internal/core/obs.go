package core

import (
	"time"

	"ozz/internal/obs"
	"ozz/internal/repair"
)

// stageNames are the fuzzing pipeline stages timed by
// ozz_stage_duration_seconds, in label order: program selection,
// STI profiling, hint computation (Algorithm 1/2), MTI pair execution,
// the OOO triage re-run, the pool's index-ordered batch merge, and the
// fence-repair search on new OOO findings.
var stageNames = []string{"generate", "profile", "hints", "mti", "triage", "merge", "repair"}

// campaignObs is the campaign layer's handle bundle into an obs.Registry:
// workflow counters mirroring the deterministic Stats block, campaign
// gauges, report dedup outcomes, and per-stage latency histograms. The
// registry mirrors Stats — it never replaces it: Stats counters stay the
// deterministic source of truth (conformance goldens compare them), while
// the registry adds wall-clock timings and process-wide visibility.
// Incrementing these never influences execution.
type campaignObs struct {
	reg *obs.Registry
	ev  *obs.EventLog

	steps, stis, mtis, hintsTotal, vacuous, newCov *obs.Counter
	covEdges, corpusLen, workers                   *obs.Gauge
	reportsNew, reportsDup, reportsOOO             *obs.Counter
	modelDivergences                               *obs.Counter

	// stage histogram children, indexed like stageNames.
	stGenerate, stProfile, stHints, stMTI, stTriage, stMerge, stRepair *obs.Histogram

	// repair holds the ozz_repair_* counter bundle the fence-repair
	// search increments when Config.Repair is on.
	repair *repair.Metrics
}

// newCampaignObs registers the campaign metric families on reg (creating
// every stage child up front so a scrape is complete before any step) and
// attaches the optional event log.
func newCampaignObs(reg *obs.Registry, ev *obs.EventLog) *campaignObs {
	c := &campaignObs{reg: reg, ev: ev}
	c.steps = reg.Counter("ozz_campaign_steps_total",
		"Fuzzer iterations completed (one STI plus its hint-driven MTIs).")
	c.stis = reg.Counter("ozz_campaign_stis_total",
		"Single-threaded (profiling) executions completed.")
	c.mtis = reg.Counter("ozz_campaign_mtis_total",
		"Multi-threaded (hypothetical barrier) test executions completed.")
	c.hintsTotal = reg.Counter("ozz_campaign_hints_total",
		"Scheduling hints computed by Algorithm 1/2 (paper §4.3).")
	c.vacuous = reg.Counter("ozz_campaign_vacuous_mtis_total",
		"MTIs whose scheduling point never fired (wasted pair runs).")
	c.newCov = reg.Counter("ozz_campaign_new_coverage_runs_total",
		"Steps whose STI grew the global coverage map (corpus admissions).")
	c.covEdges = reg.Gauge("ozz_campaign_coverage_edges",
		"Distinct KCov edges covered so far.")
	c.corpusLen = reg.Gauge("ozz_campaign_corpus_programs",
		"Programs in the coverage corpus.")
	c.workers = reg.Gauge("ozz_campaign_workers",
		"Campaign executor width (1 for the serial fuzzer; the pool's worker count otherwise).")

	outcomes := reg.CounterVec("ozz_reports_total",
		"Crash/soft reports by dedup outcome at the campaign report set.", "outcome")
	c.reportsNew = outcomes.With("new")
	c.reportsDup = outcomes.With("duplicate")
	c.reportsOOO = reg.Counter("ozz_reports_ooo_total",
		"New reports classified as genuine out-of-order bugs by the triage re-run.")
	c.modelDivergences = reg.Counter("ozz_model_divergences_total",
		"New OOO findings whose cross-model probe reproduced them under only a strict subset of the registered memory models.")

	stages := reg.HistogramVec("ozz_stage_duration_seconds",
		"Wall-clock duration of one pipeline stage execution, seconds.",
		obs.DurationBuckets(), "stage")
	children := make([]*obs.Histogram, len(stageNames))
	for i, s := range stageNames {
		children[i] = stages.With(s)
	}
	c.stGenerate, c.stProfile, c.stHints, c.stMTI, c.stTriage, c.stMerge, c.stRepair =
		children[0], children[1], children[2], children[3], children[4], children[5], children[6]
	c.repair = repair.RegisterMetrics(reg)
	return c
}

// observe records one stage execution's duration.
func observe(h *obs.Histogram, start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// reportOutcome tallies one report-set insertion attempt: added says
// whether the report was new, ooo whether a new report is a confirmed OOO
// bug.
func (c *campaignObs) reportOutcome(added, ooo bool) {
	if !added {
		c.reportsDup.Inc()
		return
	}
	c.reportsNew.Inc()
	if ooo {
		c.reportsOOO.Inc()
	}
}

// workersValue reads the campaign worker-width gauge as an int.
func (c *campaignObs) workersValue() int { return int(c.workers.Value()) }

// claimWorkers sets the worker-width gauge. The serial fuzzer only claims
// width 1 when nothing else (a pool sharing the registry) has claimed a
// real width — so Stats views over a shared registry report the pool's
// actual worker count, not a hardcoded 1.
func (c *campaignObs) claimWorkers(n int, force bool) {
	if force || c.workers.Value() == 0 {
		c.workers.Set(float64(n))
	}
}
