// Package report defines OZZ's bug reports (§4.4: the crash title, the
// hypothetical memory barrier location, and the reordered accesses that
// triggered the bug) and deduplication.
package report

import (
	"fmt"
	"sort"
	"strings"
)

// Report is one deduplicated finding.
type Report struct {
	// Title is the crash title (dedup key), syzkaller-style.
	Title string
	// Oracle names the detector that fired.
	Oracle string
	// OOO reports whether the crash manifested under a reordering test
	// (i.e. is an out-of-order bug candidate) rather than during plain
	// sequential execution.
	OOO bool
	// Type is the reordering type when OOO: "S-S", "S-L", or "L-L".
	Type string
	// Strategy names the non-default engine strategy whose campaign
	// produced the finding ("migration", "deferred"); empty for the
	// default OOO executor, so pre-existing reports render unchanged.
	Strategy string
	// HypBarrier describes where the hypothetical (missing) memory
	// barrier would go — the fix location hint for developers.
	HypBarrier string
	// ReorderedSites lists the instruction sites whose accesses were
	// reordered when the bug fired.
	ReorderedSites []string
	// Program is the serialized input that triggered the crash.
	Program string
	// Pair names the two concurrently-executed calls.
	Pair [2]string
	// HintRank is the 1-based rank (by the §4.3 search heuristic) of the
	// scheduling hint that triggered the bug.
	HintRank int
	// Tests is the number of multi-threaded test executions run before
	// the bug fired (the Table 4 "# of tests" column).
	Tests int
	// Models lists the memory-model names under which the cross-model
	// probe reproduced the reordering (sorted; empty when the probe did
	// not run). A strict subset of the registered models means the bug
	// is architecture-dependent — e.g. reachable under lkmm and armv8
	// but not under tso's FIFO store buffer.
	Models []string
	// SuggestedFix holds the fence-repair search's ranked patch
	// suggestions ("insert smp_wmb between A and B [...]"), one line per
	// validated candidate; empty when repair is disabled or found
	// nothing.
	SuggestedFix []string
}

// String renders the report in a syzkaller-dashboard-like block.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", r.Title)
	fmt.Fprintf(&sb, "  oracle:   %s\n", r.Oracle)
	if r.OOO {
		fmt.Fprintf(&sb, "  reorder:  %s\n", r.Type)
		if r.Strategy != "" {
			fmt.Fprintf(&sb, "  strategy: %s\n", r.Strategy)
		}
		if len(r.ReorderedSites) > 0 {
			fmt.Fprintf(&sb, "  reordered accesses:\n")
			for _, s := range r.ReorderedSites {
				fmt.Fprintf(&sb, "    - %s\n", s)
			}
		}
		fmt.Fprintf(&sb, "  pair:     %s <-> %s\n", r.Pair[0], r.Pair[1])
		fmt.Fprintf(&sb, "  diagnosis:\n")
		fmt.Fprintf(&sb, "    barrier:   missing at %s\n", r.HypBarrier)
		fmt.Fprintf(&sb, "    hint rank: %d (after %d tests)\n", r.HintRank, r.Tests)
		if len(r.Models) > 0 {
			fmt.Fprintf(&sb, "    reorders under: %s\n", strings.Join(r.Models, ", "))
		}
		if len(r.SuggestedFix) > 0 {
			fmt.Fprintf(&sb, "    suggested fix:\n")
			for _, line := range r.SuggestedFix {
				fmt.Fprintf(&sb, "      - %s\n", line)
			}
		}
	}
	if r.Program != "" {
		fmt.Fprintf(&sb, "  program:\n")
		for _, line := range strings.Split(strings.TrimRight(r.Program, "\n"), "\n") {
			fmt.Fprintf(&sb, "    %s\n", line)
		}
	}
	return sb.String()
}

// Set deduplicates reports by title, keeping the first (which, with the
// sorted hint order, is the one found with the fewest tests).
type Set struct {
	byTitle map[string]*Report
	order   []string
}

// NewSet returns an empty report set.
func NewSet() *Set {
	return &Set{byTitle: make(map[string]*Report)}
}

// Add inserts the report unless its title is already known; it returns true
// when the report is new.
func (s *Set) Add(r *Report) bool {
	if _, dup := s.byTitle[r.Title]; dup {
		return false
	}
	s.byTitle[r.Title] = r
	s.order = append(s.order, r.Title)
	return true
}

// Merge inserts every report of other whose title s does not yet know,
// walking other in its first-seen order so the merged set's discovery
// order is s's order followed by other's genuinely new titles. It returns
// the number of reports added. Merging is how a manager folds worker
// report sets into the global deduplicated view; Merge(s) is a no-op and
// merging the same set twice adds nothing.
func (s *Set) Merge(other *Set) (added int) {
	if other == nil || other == s {
		return 0
	}
	for _, t := range other.order {
		if s.Add(other.byTitle[t]) {
			added++
		}
	}
	return added
}

// Get returns the report with the given title, or nil.
func (s *Set) Get(title string) *Report { return s.byTitle[title] }

// Len returns the number of unique reports.
func (s *Set) Len() int { return len(s.order) }

// All returns the reports in discovery order.
func (s *Set) All() []*Report {
	out := make([]*Report, 0, len(s.order))
	for _, t := range s.order {
		out = append(out, s.byTitle[t])
	}
	return out
}

// Titles returns the sorted unique titles.
func (s *Set) Titles() []string {
	out := append([]string(nil), s.order...)
	sort.Strings(out)
	return out
}
