package report

import (
	"strings"
	"testing"
)

func TestSetDedup(t *testing.T) {
	s := NewSet()
	a := &Report{Title: "crash A", Tests: 1}
	b := &Report{Title: "crash A", Tests: 99} // duplicate title
	c := &Report{Title: "crash B"}
	if !s.Add(a) || s.Add(b) || !s.Add(c) {
		t.Fatal("dedup broken")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	// The FIRST report wins (it carries the smallest tests-to-trigger).
	if got := s.Get("crash A"); got == nil || got.Tests != 1 {
		t.Fatalf("Get returned %+v", got)
	}
	if all := s.All(); len(all) != 2 || all[0].Title != "crash A" {
		t.Fatalf("All = %v", all)
	}
	if titles := s.Titles(); titles[0] != "crash A" || titles[1] != "crash B" {
		t.Fatalf("Titles = %v", titles)
	}
}

func TestSetMerge(t *testing.T) {
	s := NewSet()
	s.Add(&Report{Title: "crash A", Tests: 1})
	s.Add(&Report{Title: "crash B"})

	other := NewSet()
	other.Add(&Report{Title: "crash C"})
	other.Add(&Report{Title: "crash A", Tests: 99}) // known title: must lose
	other.Add(&Report{Title: "crash D"})

	if added := s.Merge(other); added != 2 {
		t.Fatalf("Merge added %d, want 2", added)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	// First-seen wins across the merge boundary too.
	if got := s.Get("crash A"); got.Tests != 1 {
		t.Fatalf("merge replaced first-seen report: %+v", got)
	}
	// Discovery order: s's order, then other's new titles in other's order.
	want := []string{"crash A", "crash B", "crash C", "crash D"}
	for i, r := range s.All() {
		if r.Title != want[i] {
			t.Fatalf("All()[%d] = %q, want %q", i, r.Title, want[i])
		}
	}
	// Re-merging the same set is a no-op, as is merging into itself or nil.
	if added := s.Merge(other); added != 0 {
		t.Fatalf("second Merge added %d, want 0", added)
	}
	if added := s.Merge(s); added != 0 {
		t.Fatalf("self-Merge added %d, want 0", added)
	}
	if added := s.Merge(nil); added != 0 {
		t.Fatalf("nil-Merge added %d, want 0", added)
	}
	if s.Len() != 4 {
		t.Fatalf("Len after re-merges = %d, want 4", s.Len())
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{
		Title:          "BUG: unable to handle kernel NULL pointer dereference in pipe_read",
		Oracle:         "null-deref",
		OOO:            true,
		Type:           "S-S",
		HypBarrier:     "before post_one_notification:head+=1",
		ReorderedSites: []string{"post_one_notification:buf->ops=&ops"},
		Program:        "r0 = wq_create()\nwq_post_notification(r0, 0x4)\n",
		Pair:           [2]string{"call 1: wq_post_notification", "call 2: wq_pipe_read"},
		HintRank:       1,
		Tests:          23,
		Models:         []string{"armv8", "lkmm"},
		SuggestedFix: []string{
			"insert smp_wmb between post_one_notification:buf->ops=&ops and post_one_notification:head+=1 [fixes: armv8, lkmm; unnecessary: tso]",
		},
	}
	out := r.String()
	for _, want := range []string{
		"pipe_read", "S-S", "diagnosis:", "missing at before post_one_notification",
		"buf->ops", "hint rank: 1 (after 23 tests)", "reorders under: armv8, lkmm",
		"suggested fix:", "- insert smp_wmb between", "wq_create",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report rendering lacks %q:\n%s", want, out)
		}
	}
	// The diagnosis lines form one indented block under "diagnosis:".
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "missing at") || strings.Contains(line, "hint rank:") ||
			strings.Contains(line, "reorders under:") || strings.Contains(line, "suggested fix:") {
			if !strings.HasPrefix(line, "    ") {
				t.Errorf("diagnosis line not nested under the diagnosis block: %q", line)
			}
		}
	}
}

func TestNonOOORendering(t *testing.T) {
	r := &Report{Title: "KASAN: use-after-free Read in vmci_qp_wait", Oracle: "kasan"}
	out := r.String()
	if strings.Contains(out, "barrier:") || strings.Contains(out, "reorder:") {
		t.Errorf("non-OOO report renders reordering fields:\n%s", out)
	}
}
