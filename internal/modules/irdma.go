package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// irdma makes the paper's §4.5 "concurrent accesses with hardware"
// discussion concrete — the RDMA/irdma fix it cites ([85], Saleem 2023,
// 4984eb51453f "RDMA/irdma: Add missing read barriers"): a completion-queue
// entry is DMA-written BY THE DEVICE (valid flag last, after the payload),
// and the driver's poll loop reads the flag and then the payload. Without a
// read barrier between the two loads, the driver can pair a fresh valid
// flag with stale payload words.
//
// The "hardware" here is another memory agent driven through the same
// instrumented API: irdma_hw_complete() models the device's DMA engine
// writing a CQE (payload words, dma_wmb, valid flag) — which is exactly how
// OEMU would see a device if its accesses were visible (§4.5: "if we run
// the device driver with a proper hardware, we can trigger the OOO bug
// with OEMU"). The switch "irdma:cqe_rmb" removes the driver's barrier.
//
// Object layout: cq: [0]=valid [1]=wr_id [2]=status ; a zero wr_id on a
// valid CQE routes into the completion table at index 0 — an entry that is
// never allocated, so the driver writes its completion mark through NULL:
// "KASAN: null-ptr-deref Write in irdma_poll_cq".
var (
	irdmaSiteWr     = site(0x45<<16+1, "irdma_hw:cqe->wr_id=id (DMA)")
	irdmaSiteStatus = site(0x45<<16+2, "irdma_hw:cqe->status=OK (DMA)")
	irdmaSiteDmaWmb = site(0x45<<16+3, "irdma_hw:dma_wmb (device ordering)")
	irdmaSiteValid  = site(0x45<<16+4, "irdma_hw:cqe->valid=1 (DMA)")
	irdmaSitePollV  = site(0x45<<16+5, "irdma_poll_cq:load cqe->valid")
	irdmaSiteRmb    = site(0x45<<16+6, "irdma_poll_cq:smp_rmb")
	irdmaSitePollWr = site(0x45<<16+7, "irdma_poll_cq:load cqe->wr_id")
	irdmaSiteWrTab  = site(0x45<<16+8, "irdma_poll_cq:wr_table[wr_id]")
	irdmaSiteWrDone = site(0x45<<16+9, "irdma_poll_cq:wr->done=1")
	irdmaSiteClear  = site(0x45<<16+10, "irdma_poll_cq:cqe->valid=0")
	irdmaSitePost   = site(0x45<<16+11, "irdma_post:wr_table[id]=wr")
)

const irdmaTableSlots = 4

type irdmaInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
}

func init() {
	register(&ModuleInfo{
		Name: "irdma",
		Defs: []*syzlang.SyscallDef{
			{Name: "irdma_open", Module: "irdma", Ret: "irdma_cq"},
			{Name: "irdma_post", Module: "irdma",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "irdma_cq"}, syzlang.IntRange{Min: 1, Max: irdmaTableSlots - 1}}},
			{Name: "irdma_hw_complete", Module: "irdma",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "irdma_cq"}, syzlang.IntRange{Min: 1, Max: irdmaTableSlots - 1}}},
			{Name: "irdma_poll_cq", Module: "irdma",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "irdma_cq"}}},
		},
		Bugs: []BugInfo{
			{
				ID: "X#irdma", Switch: "irdma:cqe_rmb", Module: "irdma",
				Subsystem: "RDMA", KernelVersion: "6.4",
				Title: "KASAN: null-ptr-deref Write in irdma_poll_cq",
				Type:  "L-L", Table: 0, OFencePattern: false, Repro: "yes",
				Note: "the paper's §4.5 hardware-concurrency case ([85]): load-load reordering against DMA writes from the device",
			},
		},
		Seeds: []string{
			"r0 = irdma_open()\nirdma_post(r0, 0x2)\nirdma_hw_complete(r0, 0x2)\nirdma_poll_cq(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &irdmaInstance{k: k, bugs: bugs}
			return Instance{
				"irdma_open":        in.open,
				"irdma_post":        in.post,
				"irdma_hw_complete": in.hwComplete,
				"irdma_poll_cq":     in.pollCQ,
			}
		},
	})
}

// open allocates the CQE ring slot and the work-request table. Slot 0 of
// the table is intentionally never populated: a stale-zero wr_id routes
// there.
func (in *irdmaInstance) open(t *kernel.Task, args []uint64) uint64 {
	cq := t.Kzalloc(3 + irdmaTableSlots) // cqe(3) + wr_table
	return in.res.add(cq)
}

// post registers a work request in the table (the driver side of a send).
func (in *irdmaInstance) post(t *kernel.Task, args []uint64) uint64 {
	cq, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	id := args[1]
	if id == 0 || id >= irdmaTableSlots {
		return EINVAL
	}
	defer t.Enter("irdma_post")()
	wr := t.Kzalloc(2)
	// Publish the work request with release ordering: the device (and the
	// poll path) consume the table entry.
	t.StoreRelease(irdmaSitePost, kernel.Field(cq, 3+int(id)), uint64(wr))
	return EOK
}

// hwComplete models the DEVICE: a DMA engine writing a completion entry —
// payload first, dma_wmb, then the valid flag. (On real hardware these
// stores come over the bus; their ordering contract is identical, which is
// the §4.5 point.)
func (in *irdmaInstance) hwComplete(t *kernel.Task, args []uint64) uint64 {
	cq, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	id := args[1]
	if id == 0 || id >= irdmaTableSlots {
		return EINVAL
	}
	defer t.Enter("irdma_hw_dma")()
	t.Store(irdmaSiteWr, kernel.Field(cq, 1), id)    // cqe->wr_id
	t.Store(irdmaSiteStatus, kernel.Field(cq, 2), 1) // cqe->status = OK
	t.Wmb(irdmaSiteDmaWmb)                           // the device's dma_wmb
	t.Store(irdmaSiteValid, kernel.Field(cq, 0), 1)  // cqe->valid = 1
	return EOK
}

// pollCQ is the driver's poll loop: check the valid flag, then consume the
// payload. The missing smp_rmb between the two is the bug.
func (in *irdmaInstance) pollCQ(t *kernel.Task, args []uint64) uint64 {
	cq, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("irdma_poll_cq")()
	if t.Load(irdmaSitePollV, kernel.Field(cq, 0)) == 0 {
		return EAGAIN // nothing completed
	}
	if !in.bugs.Has("irdma:cqe_rmb") {
		t.Rmb(irdmaSiteRmb) // the fix of [85]
	}
	id := t.Load(irdmaSitePollWr, kernel.Field(cq, 1))
	if id >= irdmaTableSlots {
		return EINVAL
	}
	wr := t.Load(irdmaSiteWrTab, kernel.Field(cq, 3+int(id)))
	// Mark the work request complete — NULL if wr_id was stale.
	t.Store(irdmaSiteWrDone, kernel.Field(trace.Addr(wr), 0), 1)
	t.Store(irdmaSiteClear, kernel.Field(cq, 0), 0)
	return id
}
