package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// sbitmap reproduces Table 4 bug #6 [Lei 2019, e6d1fa584e0d] "sbitmap: order
// READ/WRITE freed instance and setting clear bit" (5.1-rc1) — the one bug
// of the paper's benchmark that the paper's OZZ CANNOT reproduce (§6.2).
// The bug races on a per-CPU allocation hint: triggering it requires two
// threads that obtained the per-CPU hint address on the SAME CPU and then
// ran concurrently on different CPUs after a migration. The paper's OZZ
// pins its concurrent threads to distinct CPUs before executing system
// calls, so under the default OOO strategy the racing accesses resolve to
// different per-CPU copies at execution time and the crash never fires.
//
// The Migration strategy closes the gap: the sequential profiling phase
// runs both calls on CPU 0, so the per-CPU hint IS a shared location there
// and Algorithm 2 keeps it — the hint comes out annotated with the per-CPU
// sites (Hint.Migrate), and the strategy migrates the observer back to
// CPU 0 at the scheduling point, reproducing the bug organically.
//
// The paper instead verified its analysis by patching the kernel so both
// threads resolve the hint from the same CPU; the deprecated switch
// "sbitmap:migration_assist" models that manual assist and is kept only
// for the historical experiment (modules.DeprecatedSwitches).
//
// Protocol: sb_resize() resets this CPU's alloc hint and installs a smaller
// word map; sb_get() reads the map pointer and the hint and indexes
// map[hint]. The missing ordering ("sbitmap:freed_order") lets the hint
// reset be delayed past the map installation: a concurrent sb_get pairs the
// NEW small map with the STALE large hint — a slab-out-of-bounds read.
//
// Object layout:
//
//	sb:        [0]=map [1]=depth
//	map:       kzalloc(depth) words
//	hint:      per-CPU, 1 word
var (
	sbSiteHintReset = site(sbitmapBase+1, "sbitmap_resize:this_cpu(hint)=0")
	sbSiteMapPub    = site(sbitmapBase+2, "sbitmap_resize:sb->map=new")
	sbSiteDepth     = site(sbitmapBase+3, "sbitmap_resize:sb->depth=n")
	sbSiteOrderWmb  = site(sbitmapBase+4, "sbitmap_resize:smp_mb")
	sbSiteGetMap    = site(sbitmapBase+5, "sbitmap_get:sb->map")
	sbSiteGetHint   = site(sbitmapBase+6, "sbitmap_get:this_cpu(hint)")
	sbSiteGetWord   = site(sbitmapBase+7, "sbitmap_get:map[hint]")
	sbSiteSetHint   = site(sbitmapBase+8, "sbitmap_get:this_cpu(hint)=next")
)

type sbInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
	// hints is the per-CPU alloc-hint handle per sbitmap (parallel to
	// res).
	hints []trace.Addr
}

func init() {
	register(&ModuleInfo{
		Name: "sbitmap",
		Defs: []*syzlang.SyscallDef{
			{Name: "sb_init", Module: "sbitmap", Ret: "sbitmap"},
			{Name: "sb_get", Module: "sbitmap",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sbitmap"}}},
			{Name: "sb_resize", Module: "sbitmap",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sbitmap"}, syzlang.IntRange{Min: 1, Max: 3}}},
		},
		Bugs: []BugInfo{
			{
				ID: "T4#6", Switch: "sbitmap:freed_order", Module: "sbitmap",
				Subsystem: "sbitmap", KernelVersion: "5.1-rc1",
				Title: "KASAN: slab-out-of-bounds Read in sbitmap_get",
				Type:  "S-S", Table: 4, OFencePattern: false, Repro: "yes",
				Note:     "races on a per-CPU variable across a thread migration; the paper's pinned-thread OZZ cannot reproduce it (§6.2), the Migration strategy can — with no assist switch.",
				Strategy: "migration",
			},
		},
		Seeds: []string{
			"r0 = sb_init()\nsb_get(r0)\nsb_get(r0)\nsb_get(r0)\nsb_resize(r0, 0x3)\nsb_get(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &sbInstance{k: k, bugs: bugs}
			return Instance{
				"sb_init":   in.sbInit,
				"sb_get":    in.sbGet,
				"sb_resize": in.sbResize,
			}
		},
	})
}

// hintAddr resolves the per-CPU alloc hint for the task. With the migration
// assist, every task resolves CPU 0's copy — modelling two threads that got
// the address on the same CPU and then migrated apart.
func (in *sbInstance) hintAddr(t *kernel.Task, idx int) trace.Addr {
	h := in.hints[idx]
	if in.bugs.Has("sbitmap:migration_assist") {
		return h
	}
	return t.ThisCPUAddr(h, 1)
}

func (in *sbInstance) sbInit(t *kernel.Task, args []uint64) uint64 {
	sb := t.Kzalloc(2)
	m := t.Kzalloc(4)
	t.K.Mem.Write(kernel.Field(sb, 0), uint64(m))
	t.K.Mem.Write(kernel.Field(sb, 1), 4)
	in.hints = append(in.hints, in.k.PerCPUAlloc(1))
	return in.res.add(sb)
}

// sbGet reads map[hint] and advances the hint — the reader of the race.
func (in *sbInstance) sbGet(t *kernel.Task, args []uint64) uint64 {
	sb, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("sbitmap_get")()
	hint := in.hintAddr(t, int(args[0]-1))
	m := t.ReadOnce(sbSiteGetMap, kernel.Field(sb, 0))
	h := t.Load(sbSiteGetHint, hint)
	v := t.Load(sbSiteGetWord, kernel.Field(trace.Addr(m), int(h)))
	depth := t.K.Mem.Read(kernel.Field(sb, 1))
	next := h + 1
	if next >= depth {
		next = 0
	}
	t.Store(sbSiteSetHint, hint, next)
	return v
}

// sbResize shrinks the map and resets this CPU's hint — the writer of the
// race. The buggy ordering stores the hint reset BEFORE the map swap with
// no barrier, so the reset can be delayed past the swap's commit.
func (in *sbInstance) sbResize(t *kernel.Task, args []uint64) uint64 {
	sb, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	n := args[1]
	if n == 0 || n > 3 {
		return EINVAL
	}
	defer t.Enter("sbitmap_resize")()
	m := t.Kzalloc(int(n))
	// Reset every CPU's allocation hint for the new depth. The racing
	// reader resolves its own CPU's copy: with pinned threads the writer
	// and the reader therefore touch DIFFERENT addresses here, and only
	// the same address after a migration (or the migration assist).
	base := in.hints[int(args[0]-1)]
	for cpu := 0; cpu < t.K.NrCPU(); cpu++ {
		t.Store(sbSiteHintReset, base+trace.Addr(cpu*8), 0)
	}
	if !in.bugs.Has("sbitmap:freed_order") {
		t.Mb(sbSiteOrderWmb)
	}
	t.Store(sbSiteMapPub, kernel.Field(sb, 0), uint64(m))
	t.Store(sbSiteDepth, kernel.Field(sb, 1), n)
	return EOK
}
