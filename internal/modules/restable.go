package modules

import "ozz/internal/trace"

// errno values returned by syscall implementations (negated, like the
// kernel ABI).
const (
	EOK    uint64 = 0
	EBADF  uint64 = ^uint64(8) + 1  // -9
	EAGAIN uint64 = ^uint64(10) + 1 // -11
	EINVAL uint64 = ^uint64(21) + 1 // -22
	EBUSY  uint64 = ^uint64(15) + 1 // -16
)

// resTable maps small resource handles (what syscalls return and accept,
// like file descriptors) to object base addresses, so that fuzzer-mutated
// handle arguments fail with EBADF instead of wild dereferences.
type resTable struct {
	objs []trace.Addr
}

// add registers an object and returns its handle (1-based; 0 is invalid).
func (r *resTable) add(a trace.Addr) uint64 {
	r.objs = append(r.objs, a)
	return uint64(len(r.objs))
}

// get resolves a handle.
func (r *resTable) get(h uint64) (trace.Addr, bool) {
	if h == 0 || h > uint64(len(r.objs)) {
		return 0, false
	}
	return r.objs[h-1], true
}
