package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// bpf reproduces Table 3 bug #6: "BUG: unable to handle kernel NULL pointer
// dereference in sk_psock_verdict_data_ready" (BPF sockmap). Installing a
// psock saves the socket's original data_ready callback in
// psock->saved_data_ready and publishes the psock on the socket; the
// data-ready path loads the psock and calls the saved callback. The missing
// smp_wmb() between the callback save and the publication is
// "bpf:psock_wmb".
//
// Object layout:
//
//	sk:    [0]=psock [1]=data_avail
//	psock: [0]=saved_data_ready [1]=ops
var (
	bpfSiteSaved   = site(bpfBase+1, "sk_psock_init:psock->saved_data_ready=fn")
	bpfSiteOps     = site(bpfBase+2, "sk_psock_init:psock->ops=verdict_ops")
	bpfSiteWmb     = site(bpfBase+3, "sk_psock_init:smp_wmb")
	bpfSitePub     = site(bpfBase+4, "sk_psock_init:WRITE_ONCE(sk->psock,psock)")
	bpfSiteLoadP   = site(bpfBase+5, "sk_data_ready:READ_ONCE(sk->psock)")
	bpfSiteLoadFn  = site(bpfBase+6, "sk_psock_verdict_data_ready:psock->saved_data_ready")
	bpfSiteCall    = site(bpfBase+7, "sk_psock_verdict_data_ready:call saved_data_ready")
	bpfSiteDataSet = site(bpfBase+8, "bpf_inject_data:sk->data_avail=1")
)

type bpfInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
	orig uint64 // the original data_ready callback value
}

func init() {
	register(&ModuleInfo{
		Name: "bpf",
		Defs: []*syzlang.SyscallDef{
			{Name: "bpf_sockmap_create", Module: "bpf", Ret: "sock_bpf"},
			{Name: "bpf_psock_init", Module: "bpf",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_bpf"}}},
			{Name: "bpf_data_ready", Module: "bpf",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_bpf"}}},
		},
		Bugs: []BugInfo{
			{
				ID: "T3#6", Switch: "bpf:psock_wmb", Module: "bpf",
				Subsystem: "BPF", KernelVersion: "v6.7-rc8",
				Title: "BUG: unable to handle kernel NULL pointer dereference in sk_psock_verdict_data_ready",
				Type:  "S-S", Status: "Fixed", Table: 3, OFencePattern: false,
			},
		},
		Seeds: []string{
			"r0 = bpf_sockmap_create()\nbpf_psock_init(r0)\nbpf_data_ready(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &bpfInstance{k: k, bugs: bugs}
			in.orig = k.RegisterFn("tcp_data_ready", func(t *kernel.Task, arg uint64) uint64 { return EOK })
			return Instance{
				"bpf_sockmap_create": in.create,
				"bpf_psock_init":     in.psockInit,
				"bpf_data_ready":     in.dataReady,
			}
		},
	})
}

func (in *bpfInstance) create(t *kernel.Task, args []uint64) uint64 {
	return in.res.add(t.Kzalloc(2))
}

func (in *bpfInstance) psockInit(t *kernel.Task, args []uint64) uint64 {
	sk, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("sk_psock_init")()
	psock := t.Kzalloc(2)
	t.Store(bpfSiteSaved, kernel.Field(psock, 0), in.orig)
	t.Store(bpfSiteOps, kernel.Field(psock, 1), 1)
	if !in.bugs.Has("bpf:psock_wmb") {
		t.Wmb(bpfSiteWmb)
	}
	t.WriteOnce(bpfSitePub, kernel.Field(sk, 0), uint64(psock))
	return EOK
}

func (in *bpfInstance) dataReady(t *kernel.Task, args []uint64) uint64 {
	sk, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("sk_data_ready")()
	t.Store(bpfSiteDataSet, kernel.Field(sk, 1), 1)
	psock := t.ReadOnce(bpfSiteLoadP, kernel.Field(sk, 0))
	if psock == 0 {
		return EOK
	}
	defer t.Enter("sk_psock_verdict_data_ready")()
	fn := t.Load(bpfSiteLoadFn, kernel.Field(trace.Addr(psock), 0))
	return t.CallFn(bpfSiteCall, fn, uint64(sk))
}
