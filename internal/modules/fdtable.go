package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// fdtable reproduces Table 4 bug #5 [Horn 2022, 7ee47dcfff18] "fs: use
// acquire ordering in __fget_light()" (6.1-rc1): fd_install publishes a
// file into the fd table with release ordering, but the lockless fast path
// __fget_light read the table pointer, the fd slot, and the file's fields
// with plain loads — load-load reordering lets it pair a fresh table
// pointer with a stale NULL slot or stale file fields. The switch
// "fdtable:fget_acquire" reverts the reader to plain loads.
//
// Object layout:
//
//	files: [0]=fdt
//	fdt:   [0..3]=fd slots
//	file:  [0]=f_op [1]=f_mode
const fdSlots = 4

var (
	fdSiteFop     = site(fdtableBase+1, "fd_install:file->f_op=ops")
	fdSiteFmode   = site(fdtableBase+2, "fd_install:file->f_mode=mode")
	fdSiteSlotRel = site(fdtableBase+3, "fd_install:smp_store_release(&fdt->fd[fd],file)")
	fdSiteFdt     = site(fdtableBase+4, "__fget_light:files->fdt")
	fdSiteSlot    = site(fdtableBase+5, "__fget_light:fdt->fd[fd]")
	fdSiteOpLd    = site(fdtableBase+6, "__fget_light:file->f_op")
	fdSiteCall    = site(fdtableBase+7, "__fget_light:call f_op")
)

type fdInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
	fops uint64
}

func init() {
	register(&ModuleInfo{
		Name: "fdtable",
		Defs: []*syzlang.SyscallDef{
			{Name: "fd_files_create", Module: "fdtable", Ret: "files_struct"},
			{Name: "fd_install", Module: "fdtable",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "files_struct"}, syzlang.IntRange{Min: 0, Max: fdSlots - 1}}},
			{Name: "fd_fget_light", Module: "fdtable",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "files_struct"}, syzlang.IntRange{Min: 0, Max: fdSlots - 1}}},
		},
		Bugs: []BugInfo{
			{
				ID: "T4#5", Switch: "fdtable:fget_acquire", Module: "fdtable",
				Subsystem: "fs", KernelVersion: "6.1-rc1",
				Title: "BUG: unable to handle kernel NULL pointer dereference in __fget_light",
				Type:  "L-L", Table: 4, OFencePattern: true, Repro: "yes",
			},
		},
		Seeds: []string{
			"r0 = fd_files_create()\nfd_install(r0, 0x1)\nfd_fget_light(r0, 0x1)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &fdInstance{k: k, bugs: bugs}
			in.fops = k.RegisterFn("generic_file_ops", func(t *kernel.Task, arg uint64) uint64 { return EOK })
			return Instance{
				"fd_files_create": in.filesCreate,
				"fd_install":      in.install,
				"fd_fget_light":   in.fgetLight,
			}
		},
	})
}

func (in *fdInstance) filesCreate(t *kernel.Task, args []uint64) uint64 {
	files := t.Kzalloc(1)
	fdt := t.Kzalloc(fdSlots)
	t.K.Mem.Write(kernel.Field(files, 0), uint64(fdt)) // pre-publication init
	return in.res.add(files)
}

// install publishes a file with release ordering (correct writer).
func (in *fdInstance) install(t *kernel.Task, args []uint64) uint64 {
	files, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	fd := args[1]
	if fd >= fdSlots {
		return EINVAL
	}
	defer t.Enter("fd_install")()
	file := t.Kzalloc(2)
	t.Store(fdSiteFop, kernel.Field(file, 0), in.fops)
	t.Store(fdSiteFmode, kernel.Field(file, 1), 3)
	fdt := t.K.Mem.Read(kernel.Field(files, 0))
	t.StoreRelease(fdSiteSlotRel, kernel.Field(trace.Addr(fdt), int(fd)), uint64(file))
	return EOK
}

// fgetLight is the lockless reader. The fixed variant uses acquire ordering
// on the table pointer (the 6.1 patch); the buggy one uses plain loads.
func (in *fdInstance) fgetLight(t *kernel.Task, args []uint64) uint64 {
	files, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	fd := args[1]
	if fd >= fdSlots {
		return EINVAL
	}
	defer t.Enter("__fget_light")()
	fdt := t.Load(fdSiteFdt, kernel.Field(files, 0))
	var file uint64
	if in.bugs.Has("fdtable:fget_acquire") {
		// Buggy pre-6.1 reader: plain load of the fd slot; subsequent
		// loads of the file's fields may be reordered before it.
		file = t.Load(fdSiteSlot, kernel.Field(trace.Addr(fdt), int(fd)))
	} else {
		// The fix: acquire ordering on the slot load.
		file = t.LoadAcquire(fdSiteSlot, kernel.Field(trace.Addr(fdt), int(fd)))
	}
	if file == 0 {
		return EBADF
	}
	fn := t.Load(fdSiteOpLd, kernel.Field(trace.Addr(file), 0))
	return t.CallFn(fdSiteCall, fn, fd)
}
