package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// xsk reproduces four bugs of the XDP socket subsystem (net/xdp) — the
// paper's most-hit module (two new bugs, two known bugs):
//
//   - T4#3 [Töpel 2018, 37b076933a8e] "xsk: add missing write- and
//     data-dependency barrier": xsk_umem_reg publishes xs->umem before the
//     umem's frame array pointer is visible ("xsk:umem_wmb").
//   - T4#4 [Töpel 2019, 42fddcc7c64b] "xsk: use state member for socket
//     synchronization": xsk_bind publishes XSK_BOUND before the RX queue
//     is initialized ("xsk:state_wmb").
//   - T3#4 — "BUG: ... NULL pointer dereference in xsk_poll": the buffer
//     pool is published before its fill queue pointer commits
//     ("xsk:pool_publish_wmb").
//   - T3#7 — "BUG: ... NULL pointer dereference in xsk_generic_xmit": the
//     TX queue is published before its ring pointer commits
//     ("xsk:xmit_queue_wmb").
//
// Object layout:
//
//	xs:    [0]=state [1]=umem [2]=rx_queue [3]=tx_queue [4]=pool
//	umem:  [0]=chunk_size [1]=frames
//	queue: [0]=ring [1]=nentries
//	pool:  [0]=fq
const xskBound = 1

var (
	xskSiteUmemSize  = site(xskBase+1, "xsk_umem_reg:umem->chunk_size=sz")
	xskSiteUmemFr    = site(xskBase+2, "xsk_umem_reg:umem->frames=fr")
	xskSiteUmemWmb   = site(xskBase+3, "xsk_umem_reg:smp_wmb")
	xskSiteUmemPub   = site(xskBase+4, "xsk_umem_reg:WRITE_ONCE(xs->umem,umem)")
	xskSiteBindUmem  = site(xskBase+5, "xsk_bind:READ_ONCE(xs->umem)")
	xskSiteBindFr    = site(xskBase+6, "xsk_bind:umem->frames")
	xskSiteBindFr0   = site(xskBase+7, "xsk_bind:frames[0]")
	xskSiteRxRing    = site(xskBase+8, "xsk_bind:rxq->ring=ring")
	xskSiteRxN       = site(xskBase+9, "xsk_bind:rxq->nentries=n")
	xskSiteRxQ       = site(xskBase+10, "xsk_bind:xs->rx_queue=rxq")
	xskSiteBindWmb   = site(xskBase+11, "xsk_bind:smp_wmb")
	xskSiteBindState = site(xskBase+12, "xsk_bind:WRITE_ONCE(xs->state,XSK_BOUND)")
	xskSiteRcvState  = site(xskBase+13, "xsk_recvmsg:READ_ONCE(xs->state)")
	xskSiteRcvQ      = site(xskBase+14, "xsk_recvmsg:xs->rx_queue")
	xskSiteRcvRing   = site(xskBase+15, "xsk_recvmsg:rxq->ring")
	xskSiteRcvRead   = site(xskBase+16, "xsk_recvmsg:ring[0]")
	xskSitePoolFq    = site(xskBase+17, "xsk_setup_pool:pool->fq=fq")
	xskSitePoolWmb   = site(xskBase+18, "xsk_setup_pool:smp_wmb")
	xskSitePoolPub   = site(xskBase+19, "xsk_setup_pool:WRITE_ONCE(xs->pool,pool)")
	xskSitePollPool  = site(xskBase+20, "xsk_poll:READ_ONCE(xs->pool)")
	xskSitePollFq    = site(xskBase+21, "xsk_poll:pool->fq")
	xskSitePollRead  = site(xskBase+22, "xsk_poll:fq[0]")
	xskSiteTxRing    = site(xskBase+23, "xsk_tx_enable:txq->ring=ring")
	xskSiteTxN       = site(xskBase+24, "xsk_tx_enable:txq->nentries=n")
	xskSiteTxWmb     = site(xskBase+25, "xsk_tx_enable:smp_wmb")
	xskSiteTxPub     = site(xskBase+26, "xsk_tx_enable:WRITE_ONCE(xs->tx_queue,txq)")
	xskSiteXmitQ     = site(xskBase+27, "xsk_sendmsg:READ_ONCE(xs->tx_queue)")
	xskSiteXmitRmb   = site(xskBase+31, "xsk_generic_xmit:smp_rmb")
	xskSiteXmitRing  = site(xskBase+28, "xsk_generic_xmit:txq->ring")
	xskSiteXmitRead  = site(xskBase+29, "xsk_generic_xmit:ring[0]")
	xskSiteXmitWrite = site(xskBase+30, "xsk_generic_xmit:ring[0]=desc")
)

type xskInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
}

func init() {
	register(&ModuleInfo{
		Name: "xsk",
		Defs: []*syzlang.SyscallDef{
			{Name: "xsk_socket", Module: "xsk", Ret: "sock_xsk"},
			{Name: "xsk_umem_reg", Module: "xsk",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_xsk"}, syzlang.IntRange{Min: 1, Max: 4096}}},
			{Name: "xsk_bind", Module: "xsk",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_xsk"}}},
			{Name: "xsk_recvmsg", Module: "xsk",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_xsk"}}},
			{Name: "xsk_setup_pool", Module: "xsk",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_xsk"}}},
			{Name: "xsk_poll", Module: "xsk",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_xsk"}}},
			{Name: "xsk_tx_enable", Module: "xsk",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_xsk"}}},
			{Name: "xsk_sendmsg", Module: "xsk",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_xsk"}}},
		},
		Bugs: []BugInfo{
			{
				ID: "T3#4", Switch: "xsk:pool_publish_wmb", Module: "xsk",
				Subsystem: "XDP", KernelVersion: "v6.6-rc2",
				Title: "BUG: unable to handle kernel NULL pointer dereference in xsk_poll",
				Type:  "S-S", Status: "Fixed", Table: 3, OFencePattern: false,
			},
			{
				ID: "T3#7", Switch: "xsk:xmit_queue_wmb", Module: "xsk",
				Subsystem: "XDP", KernelVersion: "v6.5-rc7",
				Title: "BUG: unable to handle kernel NULL pointer dereference in xsk_generic_xmit",
				Type:  "S-S", Status: "Fixed", Table: 3, OFencePattern: true,
			},
			{
				ID: "T4#3", Switch: "xsk:umem_wmb", Module: "xsk",
				Subsystem: "xsk", KernelVersion: "4.17-rc4",
				Title: "BUG: unable to handle kernel NULL pointer dereference in xsk_bind",
				Type:  "S-S", Table: 4, OFencePattern: false, Repro: "yes",
			},
			{
				ID: "T4#4", Switch: "xsk:state_wmb", Module: "xsk",
				Subsystem: "xsk", KernelVersion: "5.3-rc3",
				Title: "BUG: unable to handle kernel NULL pointer dereference in xsk_recvmsg",
				Type:  "S-S", Table: 4, OFencePattern: false, Repro: "yes",
			},
		},
		Seeds: []string{
			"r0 = xsk_socket()\nxsk_umem_reg(r0, 0x800)\nxsk_bind(r0)\n",
			"r0 = xsk_socket()\nxsk_umem_reg(r0, 0x800)\nxsk_bind(r0)\nxsk_recvmsg(r0)\n",
			"r0 = xsk_socket()\nxsk_setup_pool(r0)\nxsk_poll(r0)\n",
			"r0 = xsk_socket()\nxsk_tx_enable(r0)\nxsk_sendmsg(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &xskInstance{k: k, bugs: bugs}
			return Instance{
				"xsk_socket":     in.socket,
				"xsk_umem_reg":   in.umemReg,
				"xsk_bind":       in.bind,
				"xsk_recvmsg":    in.recvmsg,
				"xsk_setup_pool": in.setupPool,
				"xsk_poll":       in.poll,
				"xsk_tx_enable":  in.txEnable,
				"xsk_sendmsg":    in.sendmsg,
			}
		},
	})
}

func (in *xskInstance) socket(t *kernel.Task, args []uint64) uint64 {
	return in.res.add(t.Kzalloc(5))
}

// umemReg is the T4#3 publisher.
func (in *xskInstance) umemReg(t *kernel.Task, args []uint64) uint64 {
	xs, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("xsk_umem_reg")()
	umem := t.Kzalloc(2)
	frames := t.Kzalloc(4)
	t.Store(xskSiteUmemSize, kernel.Field(umem, 0), args[1])
	t.Store(xskSiteUmemFr, kernel.Field(umem, 1), uint64(frames))
	if !in.bugs.Has("xsk:umem_wmb") {
		t.Wmb(xskSiteUmemWmb)
	}
	t.WriteOnce(xskSiteUmemPub, kernel.Field(xs, 1), uint64(umem))
	return EOK
}

// bind is the T4#3 reader and the T4#4 publisher.
func (in *xskInstance) bind(t *kernel.Task, args []uint64) uint64 {
	xs, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("xsk_bind")()
	umem := t.ReadOnce(xskSiteBindUmem, kernel.Field(xs, 1))
	if umem == 0 {
		return EINVAL
	}
	fr := t.Load(xskSiteBindFr, kernel.Field(trace.Addr(umem), 1))
	t.Load(xskSiteBindFr0, trace.Addr(fr)) // touch frames[0]: NULL if unpublished

	rxq := t.Kzalloc(2)
	ring := t.Kzalloc(4)
	t.Store(xskSiteRxRing, kernel.Field(rxq, 0), uint64(ring))
	t.Store(xskSiteRxN, kernel.Field(rxq, 1), 4)
	t.Store(xskSiteRxQ, kernel.Field(xs, 2), uint64(rxq))
	if !in.bugs.Has("xsk:state_wmb") {
		t.Wmb(xskSiteBindWmb)
	}
	t.WriteOnce(xskSiteBindState, kernel.Field(xs, 0), xskBound)
	return EOK
}

// recvmsg is the T4#4 reader.
func (in *xskInstance) recvmsg(t *kernel.Task, args []uint64) uint64 {
	xs, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("xsk_recvmsg")()
	if t.ReadOnce(xskSiteRcvState, kernel.Field(xs, 0)) != xskBound {
		return EAGAIN
	}
	rxq := t.Load(xskSiteRcvQ, kernel.Field(xs, 2))
	ring := t.Load(xskSiteRcvRing, kernel.Field(trace.Addr(rxq), 0))
	return t.Load(xskSiteRcvRead, trace.Addr(ring))
}

// setupPool is the T3#4 publisher.
func (in *xskInstance) setupPool(t *kernel.Task, args []uint64) uint64 {
	xs, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("xsk_setup_pool")()
	pool := t.Kzalloc(1)
	fq := t.Kzalloc(4)
	t.Store(xskSitePoolFq, kernel.Field(pool, 0), uint64(fq))
	if !in.bugs.Has("xsk:pool_publish_wmb") {
		t.Wmb(xskSitePoolWmb)
	}
	t.WriteOnce(xskSitePoolPub, kernel.Field(xs, 4), uint64(pool))
	return EOK
}

// poll is the T3#4 reader.
func (in *xskInstance) poll(t *kernel.Task, args []uint64) uint64 {
	xs, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("xsk_poll")()
	pool := t.ReadOnce(xskSitePollPool, kernel.Field(xs, 4))
	if pool == 0 {
		return EOK
	}
	fq := t.Load(xskSitePollFq, kernel.Field(trace.Addr(pool), 0))
	return t.Load(xskSitePollRead, trace.Addr(fq))
}

// txEnable is the T3#7 publisher.
func (in *xskInstance) txEnable(t *kernel.Task, args []uint64) uint64 {
	xs, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("xsk_tx_enable")()
	txq := t.Kzalloc(2)
	ring := t.Kzalloc(4)
	t.Store(xskSiteTxRing, kernel.Field(txq, 0), uint64(ring))
	t.Store(xskSiteTxN, kernel.Field(txq, 1), 4)
	if !in.bugs.Has("xsk:xmit_queue_wmb") {
		t.Wmb(xskSiteTxWmb)
	}
	t.WriteOnce(xskSiteTxPub, kernel.Field(xs, 3), uint64(txq))
	return EOK
}

// sendmsg is the T3#7 reader: xsk_sendmsg -> xsk_generic_xmit.
func (in *xskInstance) sendmsg(t *kernel.Task, args []uint64) uint64 {
	xs, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("xsk_sendmsg")()
	txq := t.ReadOnce(xskSiteXmitQ, kernel.Field(xs, 3))
	if txq == 0 {
		return EAGAIN
	}
	defer t.Enter("xsk_generic_xmit")()
	// The reader half of the barrier pair is present (the bug removed the
	// writer's smp_wmb, leaving this smp_rmb unpaired — which is exactly
	// what makes T3#7 one of the three bugs OFence's paired-barrier
	// patterns CAN flag, §6.4).
	t.Rmb(xskSiteXmitRmb)
	ring := t.Load(xskSiteXmitRing, kernel.Field(trace.Addr(txq), 0))
	desc := t.Load(xskSiteXmitRead, trace.Addr(ring))
	t.Store(xskSiteXmitWrite, trace.Addr(ring), desc+1)
	return EOK
}
