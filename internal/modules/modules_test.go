package modules

import (
	"strings"
	"testing"

	"ozz/internal/kernel"
	"ozz/internal/sched"
)

// TestRegistryMetadata validates the corpus registry invariants the
// harnesses rely on: unique bug IDs and switches, well-formed tables,
// parseable seeds, and implementations for every template.
func TestRegistryMetadata(t *testing.T) {
	ids := map[string]bool{}
	switches := map[string]bool{}
	t3, t4 := 0, 0
	for _, b := range AllBugs() {
		if ids[b.ID] {
			t.Errorf("duplicate bug ID %s", b.ID)
		}
		ids[b.ID] = true
		if switches[b.Switch] {
			t.Errorf("duplicate switch %s", b.Switch)
		}
		switches[b.Switch] = true
		if b.Title == "" && b.SoftTitle == "" {
			t.Errorf("bug %s has no expected title", b.ID)
		}
		switch b.Table {
		case 3:
			t3++
		case 4:
			t4++
		}
	}
	if t3 != 11 {
		t.Errorf("Table 3 corpus has %d bugs, want 11", t3)
	}
	if t4 != 9 {
		t.Errorf("Table 4 corpus has %d bugs, want 9", t4)
	}
}

// TestSeedsParseAndRunClean: every module's seeds parse against its target
// and execute crash-free on the fixed kernel.
func TestSeedsParseAndRunClean(t *testing.T) {
	for _, m := range All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			target := Target(m.Name)
			for si, src := range m.Seeds {
				p, err := target.Parse(src)
				if err != nil {
					t.Fatalf("seed %d: %v", si, err)
				}
				k := kernel.New(4)
				impls := Build(k, nil, m.Name)
				returns := make([]uint64, len(p.Calls))
				task := k.NewTask(0)
				s := sched.NewSession(sched.Sequential{})
				s.Spawn(0, 0, func(st *sched.Task) {
					task.Bind(st)
					for ci := range p.Calls {
						c := &p.Calls[ci]
						args := make([]uint64, len(c.Args))
						for ai, a := range c.Args {
							if a.Res {
								args[ai] = returns[a.Ref]
							} else {
								args[ai] = a.Val
							}
						}
						impl := impls[c.Def.Name]
						if impl == nil {
							t.Errorf("seed %d: no impl for %s", si, c.Def.Name)
							return
						}
						returns[ci] = impl(task, args)
						task.SyscallReturn()
					}
				})
				if aborted := s.Run(); aborted != nil {
					t.Fatalf("seed %d crashed on the fixed kernel: %v", si, aborted)
				}
			}
		})
	}
}

// TestEveryTemplateImplemented: Build provides an implementation for every
// registered template, and every implementation tolerates an invalid
// handle (EBADF, no crash).
func TestEveryTemplateImplemented(t *testing.T) {
	for _, m := range All() {
		k := kernel.New(4)
		impls := Build(k, nil, m.Name)
		for _, d := range m.Defs {
			impl := impls[d.Name]
			if impl == nil {
				t.Errorf("%s: template %s lacks an implementation", m.Name, d.Name)
				continue
			}
			if len(d.Args) == 0 || d.Ret != "" {
				continue // producers need no handle check
			}
			// Call with a bogus handle inside a session.
			task := k.NewTask(0)
			s := sched.NewSession(sched.Sequential{})
			args := make([]uint64, len(d.Args))
			args[0] = 999 // invalid resource
			s.Spawn(task.ID+100, 0, func(st *sched.Task) {
				task.Bind(st)
				if ret := impl(task, args); ret != EBADF && int64(ret) >= 0 {
					// Non-error success on a bogus handle would be
					// a module bug.
					t.Errorf("%s(bogus) returned %d, want an errno", d.Name, int64(ret))
				}
				task.SyscallReturn()
			})
			if aborted := s.Run(); aborted != nil {
				t.Errorf("%s(bogus handle) crashed: %v", d.Name, aborted)
			}
		}
	}
}

// TestSwitchesBelongToTheirModule: each bug's switch prefix names its
// module, so Build applies the right variants.
func TestSwitchesBelongToTheirModule(t *testing.T) {
	alias := map[string]string{
		"unixsock": "unix",    // historic switch prefix
		"rcudev":   "rcu",     // substrate-named prefixes
		"seqtime":  "seqlock", //
	}
	_ = alias["irdma"] // irdma's switch prefix matches its module name
	for _, m := range All() {
		prefix := m.Name
		if a, ok := alias[m.Name]; ok {
			prefix = a
		}
		for _, b := range m.Bugs {
			if !strings.HasPrefix(b.Switch, prefix+":") {
				t.Errorf("bug %s switch %q does not match module %s", b.ID, b.Switch, m.Name)
			}
			if b.Module != m.Name {
				t.Errorf("bug %s records module %q, registered under %q", b.ID, b.Module, m.Name)
			}
		}
	}
}

// TestSiteNamesResolve: every registered instruction site renders a
// symbolic name (reports depend on this).
func TestSiteNamesResolve(t *testing.T) {
	if got := SiteName(watchqueueBase + 1); !strings.Contains(got, "post_one_notification") {
		t.Errorf("SiteName = %q", got)
	}
	if got := SiteName(0xdddddd); !strings.HasPrefix(got, "instr#") {
		t.Errorf("unknown site = %q", got)
	}
}

// TestTargetCoversAllModules: the merged target exposes every module's
// templates, and per-module targets are disjoint subsets.
func TestTargetCoversAllModules(t *testing.T) {
	all := Target()
	total := 0
	for _, m := range All() {
		total += len(m.Defs)
		sub := Target(m.Name)
		for _, d := range sub.Defs {
			if all.Lookup(d.Name) == nil {
				t.Errorf("template %s missing from the merged target", d.Name)
			}
		}
	}
	if len(all.Defs) != total {
		t.Errorf("merged target has %d defs, modules provide %d", len(all.Defs), total)
	}
}

// TestBuildUnknownModulePanics guards the harness against typos.
func TestBuildUnknownModulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build(unknown) did not panic")
		}
	}()
	k := kernel.New(2)
	Build(k, nil, "no_such_module")
}

// TestFindBug resolves switches.
func TestFindBug(t *testing.T) {
	if b, ok := FindBug("rds:clear_bit_unlock"); !ok || b.ID != "T3#1" {
		t.Fatalf("FindBug = %+v/%v", b, ok)
	}
	if _, ok := FindBug("nope"); ok {
		t.Fatal("FindBug(nope) succeeded")
	}
}

// runModuleCalls executes a call list directly against one module instance
// and returns the per-call results (helper for behavioural tests).
func runModuleCalls(t *testing.T, mod string, bugs BugSet, calls []struct {
	name string
	args []uint64
}) []uint64 {
	t.Helper()
	k := kernel.New(4)
	impls := Build(k, bugs, mod)
	rets := make([]uint64, len(calls))
	task := k.NewTask(0)
	s := sched.NewSession(sched.Sequential{})
	s.Spawn(0, 0, func(st *sched.Task) {
		task.Bind(st)
		for i, c := range calls {
			rets[i] = impls[c.name](task, c.args)
			task.SyscallReturn()
		}
	})
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("crash: %v", aborted)
	}
	return rets
}

type call = struct {
	name string
	args []uint64
}

// TestWatchqueueRingSemantics: the pipe ring delivers posted notifications
// in order and bounds capacity.
func TestWatchqueueRingSemantics(t *testing.T) {
	rets := runModuleCalls(t, "watchqueue", nil, []call{
		{"wq_create", nil},
		{"wq_post_notification", []uint64{1, 5}},
		{"wq_post_notification", []uint64{1, 6}},
		{"wq_pipe_read", []uint64{1}},
		{"wq_pipe_read", []uint64{1}},
		{"wq_pipe_read", []uint64{1}}, // empty now
	})
	if rets[3] != 5 || rets[4] != 6 {
		t.Errorf("reads returned %d,%d want 5,6", rets[3], rets[4])
	}
	if rets[5] != EAGAIN {
		t.Errorf("read from empty ring returned %d, want EAGAIN", int64(rets[5]))
	}
}

// TestRDSLockSemantics: the bit lock excludes and the staged message is
// consumed exactly once.
func TestRDSLockSemantics(t *testing.T) {
	rets := runModuleCalls(t, "rds", nil, []call{
		{"rds_socket", nil},
		{"rds_sendmsg", []uint64{1, 3}},
		{"rds_loop_xmit", []uint64{1}},
		{"rds_loop_xmit", []uint64{1}}, // nothing staged: returns 0
	})
	if rets[1] != EOK {
		t.Errorf("sendmsg = %d", int64(rets[1]))
	}
	if rets[2] != 0xda7a_0002 {
		t.Errorf("loop_xmit read %#x, want the last scatter element", rets[2])
	}
	if rets[3] != 0 {
		t.Errorf("second loop_xmit = %#x, want 0 (consumed)", rets[3])
	}
}

// TestTLSUpgradeSemantics: tls_init swaps the proto table exactly once and
// setsockopt dispatches through it.
func TestTLSUpgradeSemantics(t *testing.T) {
	rets := runModuleCalls(t, "tls", nil, []call{
		{"tls_socket", nil},
		{"sock_setsockopt", []uint64{1, 0}}, // pre-upgrade: base proto
		{"tls_init", []uint64{1}},
		{"tls_init", []uint64{1}},           // second upgrade refused
		{"sock_setsockopt", []uint64{1, 0}}, // post-upgrade: tls proto path
	})
	if rets[1] != EOK || rets[4] != EOK {
		t.Errorf("setsockopt = %d / %d", int64(rets[1]), int64(rets[4]))
	}
	if rets[3] != EBUSY {
		t.Errorf("double tls_init = %d, want EBUSY", int64(rets[3]))
	}
}

// TestGsmBoundsChecks: activating and configuring out-of-range DLCIs fails
// cleanly.
func TestGsmBoundsChecks(t *testing.T) {
	rets := runModuleCalls(t, "gsm", nil, []call{
		{"gsm_open", nil},
		{"gsm_dlci_config", []uint64{1, 0, 100}}, // not activated yet
		{"gsm_activate", []uint64{1, 0}},
		{"gsm_dlci_config", []uint64{1, 0, 100}},
	})
	if rets[1] != EINVAL {
		t.Errorf("config before activate = %d, want EINVAL", int64(rets[1]))
	}
	if rets[3] != EOK {
		t.Errorf("config after activate = %d, want EOK", int64(rets[3]))
	}
}

// TestSbitmapSemantics: gets walk the hint, resize shrinks.
func TestSbitmapSemantics(t *testing.T) {
	rets := runModuleCalls(t, "sbitmap", nil, []call{
		{"sb_init", nil},
		{"sb_get", []uint64{1}},
		{"sb_resize", []uint64{1, 2}},
		{"sb_get", []uint64{1}},
	})
	if rets[2] != EOK {
		t.Errorf("resize = %d", int64(rets[2]))
	}
	_ = rets
}

// TestBtrfsWaitCommitSemantics: a wait after commit returns immediately; a
// wait with no commit times out without reporting a hang (no commit = no
// lost wakeup).
func TestBtrfsWaitCommitSemantics(t *testing.T) {
	k := kernel.New(4)
	impls := Build(k, nil, "btrfs")
	var rets []uint64
	task := k.NewTask(0)
	s := sched.NewSession(sched.Sequential{})
	s.Spawn(0, 0, func(st *sched.Task) {
		task.Bind(st)
		h := impls["btrfs_txn_start"](task, nil)
		rets = append(rets, impls["btrfs_txn_commit"](task, []uint64{h}))
		rets = append(rets, impls["btrfs_txn_wait"](task, []uint64{h}))
		task.SyscallReturn()
	})
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("crash: %v", aborted)
	}
	if rets[0] != EOK || rets[1] != EOK {
		t.Fatalf("commit/wait = %d/%d", int64(rets[0]), int64(rets[1]))
	}
	if len(k.Soft) != 0 {
		t.Fatalf("spurious hang report: %v", k.Soft)
	}
	// Wait with no commit: plain timeout, no hang report.
	k2 := kernel.New(4)
	impls2 := Build(k2, nil, "btrfs")
	task2 := k2.NewTask(0)
	s2 := sched.NewSession(sched.Sequential{})
	var ret uint64
	s2.Spawn(0, 0, func(st *sched.Task) {
		task2.Bind(st)
		h := impls2["btrfs_txn_start"](task2, nil)
		ret = impls2["btrfs_txn_wait"](task2, []uint64{h})
		task2.SyscallReturn()
	})
	if aborted := s2.Run(); aborted != nil {
		t.Fatalf("crash: %v", aborted)
	}
	if int64(ret) >= 0 {
		t.Fatalf("wait without commit = %d, want -ETIME", int64(ret))
	}
	if len(k2.Soft) != 0 {
		t.Fatalf("timeout without commit reported a hang: %v", k2.Soft)
	}
}

// TestFilemapRoundTrip: sequential write/read returns the written data and
// enforces the page bound.
func TestFilemapRoundTrip(t *testing.T) {
	rets := runModuleCalls(t, "filemap", nil, []call{
		{"fm_open", nil},
		{"fm_read", []uint64{1}}, // empty: EAGAIN
		{"fm_write", []uint64{1, 0x11}},
		{"fm_write", []uint64{1, 0x22}},
		{"fm_read", []uint64{1}},
		{"fm_write", []uint64{1, 0x33}},
		{"fm_write", []uint64{1, 0x44}},
		{"fm_write", []uint64{1, 0x55}}, // page full
	})
	if rets[1] != EAGAIN {
		t.Errorf("empty read = %d", int64(rets[1]))
	}
	if rets[4] != 0x22 {
		t.Errorf("read = %#x, want the last written word", rets[4])
	}
	if rets[7] != EINVAL {
		t.Errorf("write past the page = %d, want EINVAL", int64(rets[7]))
	}
}

// TestRcuDevLifecycle: register/read/unregister with grace-period
// reclamation; reading after unregister is a clean EAGAIN, never a UAF.
func TestRcuDevLifecycle(t *testing.T) {
	rets := runModuleCalls(t, "rcudev", nil, []call{
		{"rcu_dev_create", nil},
		{"rcu_dev_read", []uint64{1}}, // nothing registered
		{"rcu_dev_register", []uint64{1, 0x7}},
		{"rcu_dev_read", []uint64{1}},
		{"rcu_dev_unregister", []uint64{1}},
		{"rcu_dev_read", []uint64{1}},
		{"rcu_dev_unregister", []uint64{1}}, // nothing to unregister
	})
	if rets[1] != EAGAIN || rets[5] != EAGAIN {
		t.Errorf("reads around registration = %d/%d", int64(rets[1]), int64(rets[5]))
	}
	if rets[3] == EAGAIN || int64(rets[3]) < 0 {
		t.Errorf("read of a registered entry = %d", int64(rets[3]))
	}
	if rets[6] != EAGAIN {
		t.Errorf("double unregister = %d", int64(rets[6]))
	}
}

// TestSeqtimeConsistentReads: sequential updates and reads keep the
// invariant; the reader never returns a torn pair on the fixed kernel.
func TestSeqtimeConsistentReads(t *testing.T) {
	rets := runModuleCalls(t, "seqtime", nil, []call{
		{"time_create", nil},
		{"time_update", []uint64{1}},
		{"time_update", []uint64{1}},
		{"time_read", []uint64{1}},
	})
	if rets[3] != 2 {
		t.Errorf("time_read = %d, want 2 seconds", rets[3])
	}
}
