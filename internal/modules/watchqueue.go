package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// watchqueue reproduces two bugs of the Linux general notification
// mechanism (kernel/watch_queue.c + fs/pipe.c):
//
//   - T4#2 — the Fig. 1 bug [Howells, 2ed147f015af]: post_one_notification
//     initializes a pipe ring-buffer entry (buf->len, buf->ops) and then
//     publishes it by advancing head; pipe_read checks head > tail and
//     dereferences buf->ops->confirm. Both an smp_wmb() in the poster and
//     an smp_rmb() in the reader are required; the switches
//     "watchqueue:pipe_wmb" / "watchqueue:pipe_rmb" remove them.
//
//   - T3#2 — "BUG: unable to handle kernel NULL pointer dereference in
//     _find_first_bit": wqueue_set_filter builds a filter object (bitmap
//     pointer + size) and publishes it in wqueue->filter; the poster loads
//     the filter and scans the bitmap. The missing smp_wmb() between
//     bitmap initialization and filter publication is the switch
//     "watchqueue:post_wmb_bit".
//
// Object layout (64-bit words):
//
//	pipe:   [0]=head [1]=tail [2]=bufs [3]=filter
//	bufs:   ring of ringSize entries, entry = [0]=len [1]=ops
//	filter: [0]=bitmap [1]=nr_bits
//	bitmap: [0]=bits
const wqRingSize = 4

// Instruction sites. Comments give the Fig. 1 line they mirror.
var (
	wqSiteBufLen     = site(watchqueueBase+1, "post_one_notification:buf->len=len")        // #5
	wqSiteBufOps     = site(watchqueueBase+2, "post_one_notification:buf->ops=&ops")       // #6
	wqSitePostWmb    = site(watchqueueBase+3, "post_one_notification:smp_wmb")             // #7
	wqSiteHeadInc    = site(watchqueueBase+4, "post_one_notification:head+=1")             // #8
	wqSiteLoadHead   = site(watchqueueBase+5, "pipe_read:load head")                       // #14
	wqSiteLoadTail   = site(watchqueueBase+6, "pipe_read:load tail")                       // #14
	wqSiteReadRmb    = site(watchqueueBase+7, "pipe_read:smp_rmb")                         // #15
	wqSiteLoadLen    = site(watchqueueBase+8, "pipe_read:len=buf->len")                    // #17
	wqSiteLoadOps    = site(watchqueueBase+9, "pipe_read:buf->ops->confirm")               // #18
	wqSiteCallOps    = site(watchqueueBase+10, "pipe_read:call confirm")                   // #18
	wqSiteTailInc    = site(watchqueueBase+11, "pipe_read:tail+=1")                        //
	wqSiteBmBits     = site(watchqueueBase+12, "wqueue_set_filter:bitmap[0]=bits")         //
	wqSiteFBitmap    = site(watchqueueBase+13, "wqueue_set_filter:filter->bitmap=bm")      //
	wqSiteFNr        = site(watchqueueBase+14, "wqueue_set_filter:filter->nr_bits=n")      //
	wqSiteFilterWmb  = site(watchqueueBase+15, "wqueue_set_filter:smp_wmb")                //
	wqSitePubFilter  = site(watchqueueBase+16, "wqueue_set_filter:WRITE_ONCE(wq->filter)") //
	wqSiteLoadFilter = site(watchqueueBase+17, "post_one_notification:READ_ONCE(wq->filter)")
	wqSiteLoadBitmap = site(watchqueueBase+18, "post_one_notification:f->bitmap")
	wqSiteScanBitmap = site(watchqueueBase+19, "_find_first_bit:load bitmap[0]")
	wqSitePostHead   = site(watchqueueBase+20, "post_one_notification:load head")
	wqSitePostTail   = site(watchqueueBase+21, "post_one_notification:load tail")
)

type wqInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
	ops  uint64 // wq_pipe_buf_confirm function-pointer value
}

func init() {
	register(&ModuleInfo{
		Name: "watchqueue",
		Defs: []*syzlang.SyscallDef{
			{Name: "wq_create", Module: "watchqueue", Ret: "wq_pipe"},
			{Name: "wq_post_notification", Module: "watchqueue",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "wq_pipe"}, syzlang.IntRange{Min: 1, Max: 8}}},
			{Name: "wq_pipe_read", Module: "watchqueue",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "wq_pipe"}}},
			{Name: "wq_set_filter", Module: "watchqueue",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "wq_pipe"}, syzlang.IntRange{Min: 1, Max: 64}}},
		},
		Bugs: []BugInfo{
			{
				ID: "T4#2", Switch: "watchqueue:pipe_wmb", Module: "watchqueue",
				Subsystem: "watchqueue", KernelVersion: "5.17-rc7",
				Title: "BUG: unable to handle kernel NULL pointer dereference in pipe_read",
				Type:  "S-S", Table: 4, OFencePattern: true, Repro: "yes",
				Note: "Fig. 1 bug (Howells 2022, watch_queue post/read barrier pair)",
			},
			{
				ID: "X#rmb", Switch: "watchqueue:pipe_rmb", Module: "watchqueue",
				Subsystem: "watchqueue", KernelVersion: "5.17-rc7",
				Title: "BUG: unable to handle kernel NULL pointer dereference in pipe_read",
				Type:  "L-L", Table: 0, OFencePattern: true, Repro: "yes",
				Note: "reader half of the Fig. 1 pair (missing smp_rmb in pipe_read)",
			},
			{
				ID: "T3#2", Switch: "watchqueue:post_wmb_bit", Module: "watchqueue",
				Subsystem: "watchqueue", KernelVersion: "6.5-rc6",
				Title: "BUG: unable to handle kernel NULL pointer dereference in _find_first_bit",
				Type:  "S-S", Status: "Reported", Table: 3, OFencePattern: false,
			},
		},
		Seeds: []string{
			"r0 = wq_create()\nwq_post_notification(r0, 0x4)\nwq_pipe_read(r0)\n",
			"r0 = wq_create()\nwq_set_filter(r0, 0x20)\nwq_post_notification(r0, 0x2)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &wqInstance{k: k, bugs: bugs}
			in.ops = k.RegisterFn("wq_pipe_buf_confirm", func(t *kernel.Task, arg uint64) uint64 {
				return 0
			})
			return Instance{
				"wq_create":            in.create,
				"wq_post_notification": in.post,
				"wq_pipe_read":         in.read,
				"wq_set_filter":        in.setFilter,
			}
		},
	})
}

func (in *wqInstance) create(t *kernel.Task, args []uint64) uint64 {
	pipe := t.Kzalloc(4)
	bufs := t.Kzalloc(wqRingSize * 2)
	t.K.Mem.Write(kernel.Field(pipe, 2), uint64(bufs)) // setup store, pre-publication
	return in.res.add(pipe)
}

// post is post_one_notification(): the left column of Fig. 1 plus the
// filter check of the T3#2 bug.
func (in *wqInstance) post(t *kernel.Task, args []uint64) uint64 {
	pipe, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	length := args[1]
	defer t.Enter("post_one_notification")()

	// T3#2 surface: consult the subscription filter if one is installed.
	f := t.ReadOnce(wqSiteLoadFilter, kernel.Field(pipe, 3))
	if f != 0 {
		bm := t.Load(wqSiteLoadBitmap, kernel.Field(trace.Addr(f), 0))
		func() {
			defer t.Enter("_find_first_bit")()
			// Scan the subscription bitmap. If the filter was
			// published before its bitmap pointer committed, bm is
			// NULL here.
			bits := t.Load(wqSiteScanBitmap, trace.Addr(bm))
			if bits == 0 {
				// No subscribed watches: drop the notification.
				length = 0
			}
		}()
		if length == 0 {
			return EOK
		}
	}

	// T4#2 surface (Fig. 1 left): initialize the ring entry, then publish
	// by advancing head.
	head := t.Load(wqSitePostHead, kernel.Field(pipe, 0))
	tail := t.Load(wqSitePostTail, kernel.Field(pipe, 1))
	if head-tail >= wqRingSize {
		return EAGAIN // ring full
	}
	bufs := trace.Addr(t.K.Mem.Read(kernel.Field(pipe, 2)))
	buf := kernel.Field(bufs, int(head%wqRingSize)*2)
	t.Store(wqSiteBufLen, kernel.Field(buf, 0), length) // #5: buf->len = len
	t.Store(wqSiteBufOps, kernel.Field(buf, 1), in.ops) // #6: buf->ops = &wq_pipe_ops
	if !in.bugs.Has("watchqueue:pipe_wmb") {
		t.Wmb(wqSitePostWmb) // #7: smp_wmb()
	}
	t.Store(wqSiteHeadInc, kernel.Field(pipe, 0), head+1) // #8: head += 1
	return EOK
}

// read is pipe_read(): the right column of Fig. 1.
func (in *wqInstance) read(t *kernel.Task, args []uint64) uint64 {
	pipe, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("pipe_read")()
	head := t.Load(wqSiteLoadHead, kernel.Field(pipe, 0)) // #14: if (head > tail)
	tail := t.Load(wqSiteLoadTail, kernel.Field(pipe, 1))
	if head == tail {
		return EAGAIN
	}
	if !in.bugs.Has("watchqueue:pipe_rmb") {
		t.Rmb(wqSiteReadRmb) // #15: smp_rmb()
	}
	bufs := trace.Addr(t.K.Mem.Read(kernel.Field(pipe, 2)))
	buf := kernel.Field(bufs, int(tail%wqRingSize)*2)
	length := t.Load(wqSiteLoadLen, kernel.Field(buf, 0)) // #17: len = buf->len
	ops := t.Load(wqSiteLoadOps, kernel.Field(buf, 1))    // #18: buf->ops...
	t.CallFn(wqSiteCallOps, ops, length)                  // #18: ...->confirm()
	t.Store(wqSiteTailInc, kernel.Field(pipe, 1), tail+1)
	return length
}

// setFilter is watch_queue_set_filter(): builds and publishes the
// subscription filter (the T3#2 publisher).
func (in *wqInstance) setFilter(t *kernel.Task, args []uint64) uint64 {
	pipe, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	nr := args[1]
	if nr == 0 || nr > 64 {
		return EINVAL
	}
	defer t.Enter("watch_queue_set_filter")()
	bm := t.Kzalloc(1)
	f := t.Kzalloc(2)
	var bits uint64 = 1<<nr - 1
	if nr == 64 {
		bits = ^uint64(0)
	}
	t.Store(wqSiteBmBits, kernel.Field(bm, 0), bits)       // bitmap[0] = bits
	t.Store(wqSiteFBitmap, kernel.Field(f, 0), uint64(bm)) // filter->bitmap = bm
	t.Store(wqSiteFNr, kernel.Field(f, 1), nr)             // filter->nr_bits = nr
	if !in.bugs.Has("watchqueue:post_wmb_bit") {
		t.Wmb(wqSiteFilterWmb)
	}
	t.WriteOnce(wqSitePubFilter, kernel.Field(pipe, 3), uint64(f))
	return EOK
}
