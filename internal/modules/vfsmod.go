package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/vfs"
)

// vfsmod exposes the VFS substrate (internal/vfs) as a fuzzing module: a
// bug-free but stateful target that exercises the allocator, the fd table,
// and the pipe rings under the fuzzer — broadening coverage beyond the bug
// corpus, like the generic syscalls in a syzkaller config.
type vfsInstance struct {
	fs    *vfs.FS
	pipes []*vfs.Pipe
}

func init() {
	register(&ModuleInfo{
		Name: "vfs",
		Defs: []*syzlang.SyscallDef{
			{Name: "vfs_getpid", Module: "vfs"},
			{Name: "vfs_creat", Module: "vfs",
				Args: []syzlang.ArgType{syzlang.IntRange{Min: 1, Max: 16}}, Ret: "fd_vfs"},
			{Name: "vfs_open", Module: "vfs",
				Args: []syzlang.ArgType{syzlang.IntRange{Min: 1, Max: 16}}, Ret: "fd_vfs"},
			{Name: "vfs_close", Module: "vfs",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "fd_vfs"}}},
			{Name: "vfs_stat", Module: "vfs",
				Args: []syzlang.ArgType{syzlang.IntRange{Min: 1, Max: 16}}},
			{Name: "vfs_unlink", Module: "vfs",
				Args: []syzlang.ArgType{syzlang.IntRange{Min: 1, Max: 16}}},
			{Name: "vfs_write", Module: "vfs",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "fd_vfs"}, syzlang.IntRange{Min: 0, Max: 0xffff}}},
			{Name: "vfs_read", Module: "vfs",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "fd_vfs"}}},
			{Name: "vfs_pipe", Module: "vfs", Ret: "pipe_vfs"},
			{Name: "vfs_pipe_write", Module: "vfs",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "pipe_vfs"}, syzlang.IntRange{Min: 0, Max: 0xffff}}},
			{Name: "vfs_pipe_read", Module: "vfs",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "pipe_vfs"}}},
			{Name: "vfs_mmap", Module: "vfs",
				Args: []syzlang.ArgType{syzlang.IntRange{Min: 1, Max: 8}}},
		},
		Seeds: []string{
			"r0 = vfs_creat(0x3)\nvfs_write(r0, 0x11)\nvfs_read(r0)\nvfs_close(r0)\nvfs_stat(0x3)\nvfs_unlink(0x3)\n",
			"r0 = vfs_pipe()\nvfs_pipe_write(r0, 0x22)\nvfs_pipe_read(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &vfsInstance{fs: vfs.New(k)}
			// fd values from the vfs layer are 0-based ints; shift by
			// one so 0 stays "invalid handle".
			fd := func(ret int) uint64 {
				if ret < 0 {
					return EBADF
				}
				return uint64(ret) + 1
			}
			unfd := func(h uint64) (int, bool) {
				if h == 0 || int64(h) < 0 {
					return 0, false
				}
				return int(h) - 1, true
			}
			return Instance{
				"vfs_getpid": func(t *kernel.Task, args []uint64) uint64 {
					return in.fs.Getpid(t)
				},
				"vfs_creat": func(t *kernel.Task, args []uint64) uint64 {
					return fd(in.fs.Creat(t, args[0]))
				},
				"vfs_open": func(t *kernel.Task, args []uint64) uint64 {
					return fd(in.fs.Open(t, args[0]))
				},
				"vfs_close": func(t *kernel.Task, args []uint64) uint64 {
					n, ok := unfd(args[0])
					if !ok {
						return EBADF
					}
					if in.fs.Close(t, n) != 0 {
						return EBADF
					}
					return EOK
				},
				"vfs_stat": func(t *kernel.Task, args []uint64) uint64 {
					return in.fs.Stat(t, args[0])
				},
				"vfs_unlink": func(t *kernel.Task, args []uint64) uint64 {
					if in.fs.Unlink(t, args[0]) != 0 {
						return EBADF
					}
					return EOK
				},
				"vfs_write": func(t *kernel.Task, args []uint64) uint64 {
					n, ok := unfd(args[0])
					if !ok {
						return EBADF
					}
					if in.fs.Write(t, n, args[1]) != 1 {
						return EINVAL
					}
					return EOK
				},
				"vfs_read": func(t *kernel.Task, args []uint64) uint64 {
					n, ok := unfd(args[0])
					if !ok {
						return EBADF
					}
					v, got := in.fs.Read(t, n)
					if !got {
						return EAGAIN
					}
					return v
				},
				"vfs_pipe": func(t *kernel.Task, args []uint64) uint64 {
					in.pipes = append(in.pipes, in.fs.NewPipe(t))
					return uint64(len(in.pipes))
				},
				"vfs_pipe_write": func(t *kernel.Task, args []uint64) uint64 {
					if args[0] == 0 || args[0] > uint64(len(in.pipes)) {
						return EBADF
					}
					if !in.pipes[args[0]-1].Write(t, args[1]) {
						return EAGAIN
					}
					return EOK
				},
				"vfs_pipe_read": func(t *kernel.Task, args []uint64) uint64 {
					if args[0] == 0 || args[0] > uint64(len(in.pipes)) {
						return EBADF
					}
					v, ok := in.pipes[args[0]-1].Read(t)
					if !ok {
						return EAGAIN
					}
					return v
				},
				"vfs_mmap": func(t *kernel.Task, args []uint64) uint64 {
					r := in.fs.Mmap(t, int(args[0]))
					if r == 0 {
						return EINVAL
					}
					in.fs.Munmap(t, r)
					return EOK
				},
			}
		},
	})
}
