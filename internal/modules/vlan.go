package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// vlan reproduces Table 4 bug #1 [Zhu 2021, c1102e9d49eb] "net: fix a data
// race when get vlan device" (5.12-rc7): registering a VLAN initializes the
// per-VID device entry and publishes the group array; vlan_find_dev() walks
// the published array and calls through the device's ops. The missing
// smp_wmb() before the publication chain ("vlan:group_wmb") lets a reader
// observe the array entry before the device's ops pointer committed.
//
// Object layout:
//
//	dev:  [0]=vlan_group
//	vg:   [0..7]=vlan devices by VID
//	vdev: [0]=ops [1]=vid
const vlanVIDs = 8

var (
	vlanSiteOps   = site(vlanBase+1, "register_vlan_dev:vdev->ops=ops")
	vlanSiteVid   = site(vlanBase+2, "register_vlan_dev:vdev->vid=vid")
	vlanSiteEntry = site(vlanBase+3, "register_vlan_dev:vg[vid]=vdev")
	vlanSiteWmb   = site(vlanBase+4, "register_vlan_dev:smp_wmb")
	vlanSitePub   = site(vlanBase+5, "register_vlan_dev:WRITE_ONCE(dev->vlan_group,vg)")
	vlanSiteGrp   = site(vlanBase+6, "vlan_find_dev:READ_ONCE(dev->vlan_group)")
	vlanSiteSlot  = site(vlanBase+7, "vlan_find_dev:vg[vid]")
	vlanSiteFnLd  = site(vlanBase+8, "vlan_find_dev:vdev->ops")
	vlanSiteCall  = site(vlanBase+9, "vlan_find_dev:call ops")
)

type vlanInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
	ops  uint64
}

func init() {
	register(&ModuleInfo{
		Name: "vlan",
		Defs: []*syzlang.SyscallDef{
			{Name: "vlan_netdev", Module: "vlan", Ret: "net_dev"},
			{Name: "vlan_register", Module: "vlan",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "net_dev"}, syzlang.IntRange{Min: 0, Max: vlanVIDs - 1}}},
			{Name: "vlan_find_dev", Module: "vlan",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "net_dev"}, syzlang.IntRange{Min: 0, Max: vlanVIDs - 1}}},
		},
		Bugs: []BugInfo{
			{
				ID: "T4#1", Switch: "vlan:group_wmb", Module: "vlan",
				Subsystem: "vlan", KernelVersion: "5.12-rc7",
				Title: "BUG: unable to handle kernel NULL pointer dereference in vlan_find_dev",
				Type:  "S-S", Table: 4, OFencePattern: false, Repro: "yes",
			},
		},
		Seeds: []string{
			"r0 = vlan_netdev()\nvlan_register(r0, 0x2)\nvlan_find_dev(r0, 0x2)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &vlanInstance{k: k, bugs: bugs}
			in.ops = k.RegisterFn("vlan_dev_ops", func(t *kernel.Task, arg uint64) uint64 { return EOK })
			return Instance{
				"vlan_netdev":   in.netdev,
				"vlan_register": in.registerVlan,
				"vlan_find_dev": in.findDev,
			}
		},
	})
}

func (in *vlanInstance) netdev(t *kernel.Task, args []uint64) uint64 {
	return in.res.add(t.Kzalloc(1))
}

func (in *vlanInstance) registerVlan(t *kernel.Task, args []uint64) uint64 {
	dev, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	vid := args[1]
	if vid >= vlanVIDs {
		return EINVAL
	}
	defer t.Enter("register_vlan_dev")()
	vg := t.Kzalloc(vlanVIDs)
	vdev := t.Kzalloc(2)
	t.Store(vlanSiteOps, kernel.Field(vdev, 0), in.ops)
	t.Store(vlanSiteVid, kernel.Field(vdev, 1), vid)
	t.Store(vlanSiteEntry, kernel.Field(vg, int(vid)), uint64(vdev))
	if !in.bugs.Has("vlan:group_wmb") {
		t.Wmb(vlanSiteWmb)
	}
	t.WriteOnce(vlanSitePub, kernel.Field(dev, 0), uint64(vg))
	return EOK
}

func (in *vlanInstance) findDev(t *kernel.Task, args []uint64) uint64 {
	dev, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	vid := args[1]
	if vid >= vlanVIDs {
		return EINVAL
	}
	defer t.Enter("vlan_find_dev")()
	vg := t.ReadOnce(vlanSiteGrp, kernel.Field(dev, 0))
	if vg == 0 {
		return EAGAIN
	}
	vdev := t.Load(vlanSiteSlot, kernel.Field(trace.Addr(vg), int(vid)))
	if vdev == 0 {
		return EAGAIN
	}
	fn := t.Load(vlanSiteFnLd, kernel.Field(trace.Addr(vdev), 0))
	return t.CallFn(vlanSiteCall, fn, vid)
}
