package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// nbd reproduces Table 4 bug #7 [Nan 2023, c2da049f4194] "nbd: fix
// null-ptr-dereference while accessing 'nbd->config'" (6.7-rc1): the
// connect path stores nbd->config and then bumps nbd->config_refs with
// correct ordering, but nbd_open() checked the refcount and then loaded
// nbd->config with plain loads — load-load reordering pairs a non-zero
// refcount with a stale NULL config. The switch "nbd:config_rmb" removes
// the reader's ordering.
//
// Object layout:
//
//	nbd:    [0]=config_refs [1]=config
//	config: [0]=socks [1]=blksize
var (
	nbdSiteCfgStore = site(nbdBase+1, "nbd_genl_connect:nbd->config=cfg")
	nbdSiteCfgSocks = site(nbdBase+2, "nbd_genl_connect:cfg->socks=s")
	nbdSiteRefsInc  = site(nbdBase+3, "nbd_genl_connect:refcount_inc(config_refs)")
	nbdSiteConnWmb  = site(nbdBase+8, "nbd_genl_connect:smp_wmb")
	nbdSiteOpenRefs = site(nbdBase+4, "nbd_open:nbd->config_refs")
	nbdSiteOpenRmb  = site(nbdBase+5, "nbd_open:smp_rmb")
	nbdSiteOpenCfg  = site(nbdBase+6, "nbd_open:nbd->config")
	nbdSiteOpenSock = site(nbdBase+7, "nbd_open:config->socks")
)

type nbdInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
}

func init() {
	register(&ModuleInfo{
		Name: "nbd",
		Defs: []*syzlang.SyscallDef{
			{Name: "nbd_device", Module: "nbd", Ret: "nbd_dev"},
			{Name: "nbd_genl_connect", Module: "nbd",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "nbd_dev"}}},
			{Name: "nbd_open", Module: "nbd",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "nbd_dev"}}},
		},
		Bugs: []BugInfo{
			{
				ID: "T4#7", Switch: "nbd:config_rmb", Module: "nbd",
				Subsystem: "nbd", KernelVersion: "6.7-rc1",
				Title: "BUG: unable to handle kernel NULL pointer dereference in nbd_open",
				Type:  "L-L", Table: 4, OFencePattern: true, Repro: "yes",
			},
		},
		Seeds: []string{
			"r0 = nbd_device()\nnbd_genl_connect(r0)\nnbd_open(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &nbdInstance{k: k, bugs: bugs}
			return Instance{
				"nbd_device":       in.device,
				"nbd_genl_connect": in.connect,
				"nbd_open":         in.open,
			}
		},
	})
}

func (in *nbdInstance) device(t *kernel.Task, args []uint64) uint64 {
	return in.res.add(t.Kzalloc(2))
}

// connect installs the config with correct write ordering: the refcount
// bump is a fully-ordered RMW.
func (in *nbdInstance) connect(t *kernel.Task, args []uint64) uint64 {
	nbd, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("nbd_genl_connect")()
	cfg := t.Kzalloc(2)
	socks := t.Kzalloc(2)
	t.Store(nbdSiteCfgSocks, kernel.Field(cfg, 0), uint64(socks))
	t.Store(nbdSiteCfgStore, kernel.Field(nbd, 1), uint64(cfg))
	t.Wmb(nbdSiteConnWmb)
	t.AtomicIncReturn(nbdSiteRefsInc, kernel.Field(nbd, 0))
	return EOK
}

// open is the buggy reader: refcount and config loads lack read ordering.
func (in *nbdInstance) open(t *kernel.Task, args []uint64) uint64 {
	nbd, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("nbd_open")()
	refs := t.Load(nbdSiteOpenRefs, kernel.Field(nbd, 0))
	if refs == 0 {
		return EAGAIN
	}
	if !in.bugs.Has("nbd:config_rmb") {
		t.Rmb(nbdSiteOpenRmb)
	}
	cfg := t.Load(nbdSiteOpenCfg, kernel.Field(nbd, 1))
	return t.Load(nbdSiteOpenSock, kernel.Field(trace.Addr(cfg), 0))
}
