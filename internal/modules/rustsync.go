package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
)

// rustsync reproduces the paper's Fig. 10 (§10.4): a synthetic OOO bug in a
// Rust kernel module using Ordering::Relaxed atomics — the classic
// store-buffering (SB) litmus shape. Thread 1 stores x=1 and loads y;
// thread 2 stores y=1 and loads x; a later checker asserts that at least
// one thread observed the other's store. Relaxed ordering (modelled as
// WRITE_ONCE/READ_ONCE, which the LKMM also leaves unordered) permits
// store-load reordering: both threads can read 0, violating the assertion —
// exactly what OEMU's delayed stores emulate. Under sequential consistency
// (every in-order interleaving) the outcome is impossible, so the checker
// cannot fire without reordering.
//
// Object layout: pair: [0]=x [1]=y [2]=r1 [3]=r2 [4]=done1 [5]=done2
var (
	rustSiteX     = site(rustBase+1, "thread1:x.store(1,Relaxed)")
	rustSiteLoadY = site(rustBase+2, "thread1:y.load(Relaxed)")
	rustSiteR1    = site(rustBase+3, "thread1:r1=..")
	rustSiteDone1 = site(rustBase+4, "thread1:done1=1")
	rustSiteY     = site(rustBase+5, "thread2:y.store(1,Relaxed)")
	rustSiteLoadX = site(rustBase+6, "thread2:x.load(Relaxed)")
	rustSiteR2    = site(rustBase+7, "thread2:r2=..")
	rustSiteDone2 = site(rustBase+8, "thread2:done2=1")
	rustSiteChk   = site(rustBase+9, "check:loads")
)

type rustInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
}

func init() {
	register(&ModuleInfo{
		Name: "rustsync",
		Defs: []*syzlang.SyscallDef{
			{Name: "rust_pair", Module: "rustsync", Ret: "rust_obj"},
			{Name: "rust_thread1", Module: "rustsync",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "rust_obj"}}},
			{Name: "rust_thread2", Module: "rustsync",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "rust_obj"}}},
			{Name: "rust_check", Module: "rustsync",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "rust_obj"}}},
		},
		Bugs: []BugInfo{
			{
				ID: "FIG10", Switch: "rustsync:relaxed_sb", Module: "rustsync",
				Subsystem: "rust", KernelVersion: "synthetic",
				Title: "kernel BUG: Relaxed store buffering: both threads read 0 in rust_check",
				Type:  "S-L", Table: 0, OFencePattern: false, Repro: "yes",
				Note: "Fig. 10: Ordering::Relaxed store-buffering; the switch only gates the checker (the racy code is always 'buggy' — Relaxed provides no ordering by design)",
			},
		},
		Seeds: []string{
			"r0 = rust_pair()\nrust_thread1(r0)\nrust_thread2(r0)\nrust_check(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &rustInstance{k: k, bugs: bugs}
			return Instance{
				"rust_pair":    in.pair,
				"rust_thread1": in.thread1,
				"rust_thread2": in.thread2,
				"rust_check":   in.check,
			}
		},
	})
}

func (in *rustInstance) pair(t *kernel.Task, args []uint64) uint64 {
	return in.res.add(t.Kzalloc(6))
}

func (in *rustInstance) thread1(t *kernel.Task, args []uint64) uint64 {
	p, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("rust_thread1")()
	t.WriteOnce(rustSiteX, kernel.Field(p, 0), 1)      // x.store(1, Relaxed)
	r := t.ReadOnce(rustSiteLoadY, kernel.Field(p, 1)) // y.load(Relaxed)
	t.WriteOnce(rustSiteR1, kernel.Field(p, 2), r)
	t.WriteOnce(rustSiteDone1, kernel.Field(p, 4), 1)
	return r
}

func (in *rustInstance) thread2(t *kernel.Task, args []uint64) uint64 {
	p, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("rust_thread2")()
	t.WriteOnce(rustSiteY, kernel.Field(p, 1), 1)      // y.store(1, Relaxed)
	r := t.ReadOnce(rustSiteLoadX, kernel.Field(p, 0)) // x.load(Relaxed)
	t.WriteOnce(rustSiteR2, kernel.Field(p, 3), r)
	t.WriteOnce(rustSiteDone2, kernel.Field(p, 5), 1)
	return r
}

// check is the Fig. 10 assertion thread: assert!(x == 1 || y == 1) in the
// observed-register form (both threads read 0 == both observed pre-store
// state).
func (in *rustInstance) check(t *kernel.Task, args []uint64) uint64 {
	p, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("rust_check")()
	if t.Load(rustSiteChk, kernel.Field(p, 4)) == 0 ||
		t.Load(rustSiteChk, kernel.Field(p, 5)) == 0 {
		return EAGAIN // both threads must have run
	}
	r1 := t.Load(rustSiteChk, kernel.Field(p, 2))
	r2 := t.Load(rustSiteChk, kernel.Field(p, 3))
	if in.bugs.Has("rustsync:relaxed_sb") {
		t.Assert(r1 == 1 || r2 == 1, "Relaxed store buffering: both threads read 0")
	}
	return r1<<1 | r2
}
