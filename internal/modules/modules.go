// Package modules contains the simulated-kernel bug corpus: one file per
// Linux subsystem the paper's evaluation exercises. Each module reproduces
// the shared-memory protocol of the corresponding subsystem and the exact
// missing-barrier bug the paper found (Table 3) or reproduced (Table 4),
// behind a named bug switch that removes the fixing barrier — the moral
// equivalent of reverting the fix patch (§6.2).
//
// Modules are written against the instrumented access API of package
// kernel; every access site carries a stable InstrID so scheduling hints
// and bug reports can name the exact instruction (and thus the hypothetical
// barrier location).
package modules

import (
	"fmt"
	"sort"
	"strings"

	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// BugSet selects which bug switches are active (barrier removed).
type BugSet map[string]bool

// Bugs builds a BugSet from switch names.
func Bugs(names ...string) BugSet {
	s := make(BugSet, len(names))
	for _, n := range names {
		s[n] = true
	}
	return s
}

// Has reports whether the switch is active.
func (s BugSet) Has(name string) bool { return s[name] }

// Impl executes one system call of a module on behalf of a task.
type Impl func(t *kernel.Task, args []uint64) uint64

// Instance is a constructed module: its syscall implementations, bound to
// one kernel's state.
type Instance map[string]Impl

// BugInfo documents one bug of the corpus and maps it to the paper's
// evaluation rows.
type BugInfo struct {
	// ID is the paper's row id, e.g. "T3#9" (Table 3) or "T4#2" (Table 4).
	ID string
	// Switch is the bug-switch name enabling it, e.g. "tls:sk_prot_wmb".
	Switch string
	// Module is the providing module.
	Module string
	// Subsystem is the paper's subsystem label.
	Subsystem string
	// KernelVersion is the paper's kernel version for the bug.
	KernelVersion string
	// Title is the expected crash title (dedup key) when triggered; empty
	// for soft-oracle bugs.
	Title string
	// SoftTitle is the expected soft-report title for bugs whose symptom
	// is not a crash (Table 4 #8).
	SoftTitle string
	// Type is the reordering type: "S-S", "S-L", or "L-L". A bug whose
	// missing barrier is a full smp_mb can manifest through more than one
	// reordering; such entries list the acceptable types separated by
	// "/" (e.g. "S-L/S-S").
	Type string
	// Status is the paper's status column (Fixed/Reported/Confirmed).
	Status string
	// Table is 3 or 4 (0 for extras such as the Rust example).
	Table int
	// OFencePattern reports whether the bug falls inside OFence's
	// paired-barrier patterns (§6.4): true when the buggy code contains
	// one half of a barrier pair that static matching could flag.
	OFencePattern bool
	// Expected reproduction outcome for Table 4 ("yes", "no", "partial").
	Repro string
	// Note is free-form (e.g. why T4#6 needs the Migration strategy).
	Note string
	// Strategy names the engine strategy required to reproduce the bug
	// ("migration", "deferred"); empty means the default OOO strategy
	// suffices. Corpus-wide tests run default-strategy campaigns and skip
	// non-empty entries — dedicated per-strategy tests cover those.
	Strategy string
}

// DeprecatedSwitches maps retired switch names to the message explaining
// their replacement. The switches still function (modules keep honouring
// them so historical experiments stay runnable) but CLIs warn when one is
// requested.
var DeprecatedSwitches = map[string]string{
	"sbitmap:migration_assist": "deprecated: the Migration strategy reproduces T4#6 without assistance; use -strategy migration (docs/SCHEDULING.md)",
}

// ModuleInfo describes one module: its templates, bugs, and constructor.
type ModuleInfo struct {
	Name string
	Defs []*syzlang.SyscallDef
	Bugs []BugInfo
	// Seeds are serialized programs known to reach the module's barrier
	// sites — the analogue of the syzkaller-corpus seeds of §6.1/§6.2.
	Seeds []string
	// New constructs a fresh instance over k with the given switches.
	New func(k *kernel.Kernel, bugs BugSet) Instance
}

// registry of all modules, keyed by name; populated by each module file's
// init.
var registry = map[string]*ModuleInfo{}

func register(m *ModuleInfo) {
	if _, dup := registry[m.Name]; dup {
		panic("duplicate module " + m.Name)
	}
	registry[m.Name] = m
}

// All returns every registered module, sorted by name.
func All() []*ModuleInfo {
	out := make([]*ModuleInfo, 0, len(registry))
	for _, m := range registry {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the module, or nil.
func ByName(name string) *ModuleInfo { return registry[name] }

// AllBugs returns every BugInfo across modules, sorted by ID.
func AllBugs() []BugInfo {
	var out []BugInfo
	for _, m := range All() {
		out = append(out, m.Bugs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FindBug returns the BugInfo with the given switch name.
func FindBug(sw string) (BugInfo, bool) {
	for _, m := range All() {
		for _, b := range m.Bugs {
			if b.Switch == sw {
				return b, true
			}
		}
	}
	return BugInfo{}, false
}

// Target assembles the syzlang target for the named modules (all modules if
// names is empty).
func Target(names ...string) *syzlang.Target {
	var defs []*syzlang.SyscallDef
	if len(names) == 0 {
		for _, m := range All() {
			defs = append(defs, m.Defs...)
		}
	} else {
		for _, n := range names {
			m := registry[n]
			if m == nil {
				panic("unknown module " + n)
			}
			defs = append(defs, m.Defs...)
		}
	}
	return syzlang.NewTarget(defs)
}

// Seeds returns the seed-program sources of the named modules (all if empty).
func Seeds(names ...string) []string {
	var out []string
	if len(names) == 0 {
		for _, m := range All() {
			out = append(out, m.Seeds...)
		}
		return out
	}
	for _, n := range names {
		if m := registry[n]; m != nil {
			out = append(out, m.Seeds...)
		}
	}
	return out
}

// Build constructs fresh instances of the named modules over k and returns
// the merged syscall-implementation table. An empty name list builds every
// registered module; use BuildNamed when an empty list must mean "none".
func Build(k *kernel.Kernel, bugs BugSet, names ...string) map[string]Impl {
	use := names
	if len(use) == 0 {
		for _, m := range All() {
			use = append(use, m.Name)
		}
	}
	return BuildNamed(k, bugs, use)
}

// BuildNamed constructs exactly the named modules — an empty list builds
// nothing, unlike Build's empty-means-all. Callers that compute a module
// subset (e.g. the engine's program-aware build) need the literal
// semantics: a program whose calls all belong to disallowed modules must
// see no implementations, not all of them.
func BuildNamed(k *kernel.Kernel, bugs BugSet, names []string) map[string]Impl {
	impls := make(map[string]Impl, 8*len(names))
	for _, n := range names {
		m := registry[n]
		if m == nil {
			panic("unknown module " + n)
		}
		for name, impl := range m.New(k, bugs) {
			if _, dup := impls[name]; dup {
				panic("duplicate syscall impl " + name)
			}
			impls[name] = impl
		}
	}
	return impls
}

// --- instruction-site registry ---------------------------------------------

var siteNames = map[trace.InstrID]string{}

// site registers a named instruction site and returns its id. Modules use
// it to give every access site a stable, report-friendly identity such as
// "tls_init:WRITE_ONCE(sk->sk_prot)".
func site(id trace.InstrID, name string) trace.InstrID {
	if prev, dup := siteNames[id]; dup {
		panic(fmt.Sprintf("duplicate site id %d: %s vs %s", id, prev, name))
	}
	siteNames[id] = name
	return id
}

// SiteName returns the symbolic name of an instruction site ("instr#N" for
// unregistered ids).
func SiteName(id trace.InstrID) string {
	if n, ok := siteNames[id]; ok {
		return n
	}
	return fmt.Sprintf("instr#%d", id)
}

// Module site-id bases: each module owns a 16-bit space.
const (
	watchqueueBase trace.InstrID = (iota + 1) << 16
	tlsBase
	rdsBase
	xskBase
	vmciBase
	bpfBase
	smcBase
	gsmBase
	vlanBase
	fdtableBase
	sbitmapBase
	nbdBase
	unixBase
	rustBase
	vfsBase
)

// SiteByName returns the first registered instruction site whose symbolic
// name contains substr (tooling/examples; 0 if none). Names are unique
// enough that a distinctive substring identifies the site.
func SiteByName(substr string) trace.InstrID {
	var best trace.InstrID
	for id, name := range siteNames {
		if strings.Contains(name, substr) {
			if best == 0 || id < best {
				best = id
			}
		}
	}
	return best
}
