package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// vmci reproduces Table 3 bug #3: "general protection fault in
// add_wait_queue" (VMCI queue-pair subsystem). vmci_qp_alloc() kmallocs the
// queue pair — leaving its fields poisoned, not zeroed — initializes the
// wait-queue pointer, and publishes the pair. Without the smp_wmb()
// ("vmci:qp_wmb"), a concurrent waiter observes the published pair but a
// still-poisoned qp->wq and dereferences the poison pattern: a wild access,
// i.e. a general protection fault (not a NULL dereference — the
// distinguishing flavour of this bug).
//
// Object layout:
//
//	vmci ctx: [0]=qpair
//	qp:       [0]=wq [1]=produce_size   (kmalloc'd: poisoned)
//	wq:       [0]=head
var (
	vmciSiteQpWq   = site(vmciBase+1, "vmci_qp_alloc:qp->wq=wq")
	vmciSiteQpSize = site(vmciBase+2, "vmci_qp_alloc:qp->produce_size=sz")
	vmciSiteWmb    = site(vmciBase+3, "vmci_qp_alloc:smp_wmb")
	vmciSitePub    = site(vmciBase+4, "vmci_qp_alloc:WRITE_ONCE(ctx->qpair,qp)")
	vmciSiteLoadQp = site(vmciBase+5, "vmci_qp_wait:READ_ONCE(ctx->qpair)")
	vmciSiteLoadWq = site(vmciBase+6, "vmci_qp_wait:qp->wq")
	vmciSiteWqHead = site(vmciBase+7, "add_wait_queue:wq->head")
	vmciSiteDetQp  = site(vmciBase+8, "vmci_qp_destroy:READ_ONCE(ctx->qpair)")
	vmciSiteDetNil = site(vmciBase+9, "vmci_qp_destroy:WRITE_ONCE(ctx->qpair,0)")
)

type vmciInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
}

func init() {
	register(&ModuleInfo{
		Name: "vmci",
		Defs: []*syzlang.SyscallDef{
			{Name: "vmci_create", Module: "vmci", Ret: "vmci_ctx"},
			{Name: "vmci_qp_alloc", Module: "vmci",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "vmci_ctx"}, syzlang.IntRange{Min: 1, Max: 64}}},
			{Name: "vmci_qp_wait", Module: "vmci",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "vmci_ctx"}}},
			{Name: "vmci_qp_destroy", Module: "vmci",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "vmci_ctx"}}},
		},
		Bugs: []BugInfo{
			{
				ID: "T3#3", Switch: "vmci:qp_wmb", Module: "vmci",
				Subsystem: "VMCI", KernelVersion: "v6.5-rc6",
				Title: "general protection fault in add_wait_queue",
				Type:  "S-S", Status: "Reported", Table: 3, OFencePattern: false,
				Note: "kmalloc (not kzalloc) object: the unordered observer reads slab poison, hence a GPF",
			},
			{
				ID: "X#uaf", Switch: "vmci:uaf_race", Module: "vmci",
				Subsystem: "VMCI", KernelVersion: "synthetic",
				Title: "KASAN: use-after-free Read in vmci_qp_wait",
				Type:  "", Table: 0, OFencePattern: false, Repro: "yes",
				Note: "plain interleaving (non-OOO) use-after-free: destroy frees the pair while a waiter holds it; used to validate the OOO triage and the interleaving-only baseline",
			},
		},
		Seeds: []string{
			"r0 = vmci_create()\nvmci_qp_alloc(r0, 0x10)\nvmci_qp_wait(r0)\n",
			"r0 = vmci_create()\nvmci_qp_alloc(r0, 0x10)\nvmci_qp_wait(r0)\nvmci_qp_destroy(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &vmciInstance{k: k, bugs: bugs}
			return Instance{
				"vmci_create":     in.create,
				"vmci_qp_alloc":   in.qpAlloc,
				"vmci_qp_wait":    in.qpWait,
				"vmci_qp_destroy": in.qpDestroy,
			}
		},
	})
}

func (in *vmciInstance) create(t *kernel.Task, args []uint64) uint64 {
	return in.res.add(t.Kzalloc(1))
}

func (in *vmciInstance) qpAlloc(t *kernel.Task, args []uint64) uint64 {
	ctx, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("vmci_qp_alloc")()
	qp := t.Kmalloc(2) // kmalloc: fields are poison until written
	wq := t.Kzalloc(1)
	t.Store(vmciSiteQpWq, kernel.Field(qp, 0), uint64(wq))
	t.Store(vmciSiteQpSize, kernel.Field(qp, 1), args[1])
	if !in.bugs.Has("vmci:qp_wmb") {
		t.Wmb(vmciSiteWmb)
	}
	t.WriteOnce(vmciSitePub, kernel.Field(ctx, 0), uint64(qp))
	return EOK
}

func (in *vmciInstance) qpWait(t *kernel.Task, args []uint64) uint64 {
	ctx, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("vmci_qp_wait")()
	qp := t.ReadOnce(vmciSiteLoadQp, kernel.Field(ctx, 0))
	if qp == 0 {
		return EAGAIN
	}
	wq := t.Load(vmciSiteLoadWq, kernel.Field(trace.Addr(qp), 0))
	defer t.Enter("add_wait_queue")()
	return t.Load(vmciSiteWqHead, trace.Addr(wq))
}

// qpDestroy tears the queue pair down. The "vmci:uaf_race" variant frees
// the pair immediately while readers may still hold the pointer — a plain
// interleaving use-after-free (no reordering involved); the fixed variant
// defers reclamation (RCU-style: unpublish, leak to the grace period).
func (in *vmciInstance) qpDestroy(t *kernel.Task, args []uint64) uint64 {
	ctx, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("vmci_qp_destroy")()
	qp := t.ReadOnce(vmciSiteDetQp, kernel.Field(ctx, 0))
	if qp == 0 {
		return EAGAIN
	}
	if in.bugs.Has("vmci:uaf_race") {
		t.Kfree(trace.Addr(qp))
		t.WriteOnce(vmciSiteDetNil, kernel.Field(ctx, 0), 0)
	} else {
		t.WriteOnce(vmciSiteDetNil, kernel.Field(ctx, 0), 0)
		// Reclamation deferred past the grace period (not modelled).
	}
	return EOK
}
