package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
)

// filemap reproduces the bug class of the paper's citation [62] (Li 2023,
// e2c27b803bb6: "mm/filemap: avoid buffered read/write race to read
// inconsistent data") — a DATA-LOSS symptom, not a crash. A buffered write
// copies data into the page and then publishes the new file size with
// correct write ordering; the buffered-read fast path loaded the size and
// then the page WITHOUT read ordering. Load-load reordering lets the read
// observe the new size over stale page contents: the syscall silently
// returns inconsistent data. The switch "filemap:read_rmb" removes the
// reader's barrier (the fix added it).
//
// Object layout: file: [0]=i_size [1..4]=page words
const fmPageWords = 4

var (
	fmSiteWSize = site(0x44<<16+1, "filemap_write:load i_size")
	fmSitePage  = site(0x44<<16+2, "filemap_write:page[n]=data")
	fmSiteWmb   = site(0x44<<16+3, "filemap_write:smp_wmb")
	fmSitePub   = site(0x44<<16+4, "filemap_write:i_size=n+1")
	fmSiteRSize = site(0x44<<16+5, "filemap_read:load i_size")
	fmSiteRmb   = site(0x44<<16+6, "filemap_read:smp_rmb")
	fmSiteRPage = site(0x44<<16+7, "filemap_read:load page[n-1]")
)

type fmInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
}

func init() {
	register(&ModuleInfo{
		Name: "filemap",
		Defs: []*syzlang.SyscallDef{
			{Name: "fm_open", Module: "filemap", Ret: "fm_file"},
			{Name: "fm_write", Module: "filemap",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "fm_file"}, syzlang.IntRange{Min: 1, Max: 0xffff}}},
			{Name: "fm_read", Module: "filemap",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "fm_file"}}},
		},
		Bugs: []BugInfo{
			{
				ID: "X#filemap", Switch: "filemap:read_rmb", Module: "filemap",
				Subsystem: "mm", KernelVersion: "6.7",
				SoftTitle: "filemap: buffered read returned inconsistent data (data loss)",
				Type:      "L-L", Table: 0, OFencePattern: true, Repro: "yes",
				Note: "the paper's citation [62]: a silent data-loss symptom — the in-vivo semantic oracle catches what no crash detector would",
			},
		},
		Seeds: []string{
			"r0 = fm_open()\nfm_write(r0, 0x11)\nfm_read(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &fmInstance{k: k, bugs: bugs}
			return Instance{
				"fm_open":  in.open,
				"fm_write": in.write,
				"fm_read":  in.read,
			}
		},
	})
}

func (in *fmInstance) open(t *kernel.Task, args []uint64) uint64 {
	return in.res.add(t.Kzalloc(1 + fmPageWords))
}

// write appends one word with correct write ordering (page before size).
func (in *fmInstance) write(t *kernel.Task, args []uint64) uint64 {
	f, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("filemap_write")()
	n := t.Load(fmSiteWSize, kernel.Field(f, 0))
	if n >= fmPageWords {
		return EINVAL
	}
	t.Store(fmSitePage, kernel.Field(f, 1+int(n)), args[1])
	t.Wmb(fmSiteWmb) // correct writer: data visible before the size
	t.Store(fmSitePub, kernel.Field(f, 0), n+1)
	return EOK
}

// read is the buffered-read fast path: size check then page load. The
// missing smp_rmb is the bug.
func (in *fmInstance) read(t *kernel.Task, args []uint64) uint64 {
	f, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("filemap_read")()
	n := t.Load(fmSiteRSize, kernel.Field(f, 0))
	if n == 0 {
		return EAGAIN
	}
	if !in.bugs.Has("filemap:read_rmb") {
		t.Rmb(fmSiteRmb)
	}
	v := t.Load(fmSiteRPage, kernel.Field(f, 1+int(n-1)))
	if v == 0 {
		// The size says the word exists; a zero here is the page's
		// pre-write state — the read tore.
		t.SoftReport("filemap: buffered read returned inconsistent data (data loss)")
	}
	return v
}
