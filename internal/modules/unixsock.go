package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// unixsock reproduces Table 4 bug #9 [Viro 2019, ae3b564179bf] "missing
// barriers in some of unix_sock ->addr and ->path accesses" (5.0-rc7):
// unix_bind() initializes u->path and then publishes u->addr with a write
// barrier, but readers such as unix_getname()/unix_copy_addr() loaded
// u->addr and then u->path with plain loads. Load-load reordering pairs a
// non-NULL addr with a stale NULL path dentry. The switch "unix:addr_rmb"
// removes the reader's ordering (the real fix used smp_store_release /
// smp_load_acquire).
//
// Object layout:
//
//	u:      [0]=addr [1]=path_dentry
//	addr:   [0]=len [1]=name
//	dentry: [0]=inode
var (
	unixSiteAddrLen  = site(unixBase+1, "unix_bind:addr->len=n")
	unixSiteAddrName = site(unixBase+2, "unix_bind:addr->name=h")
	unixSitePath     = site(unixBase+3, "unix_bind:u->path=dentry")
	unixSiteBindWmb  = site(unixBase+4, "unix_bind:smp_wmb")
	unixSiteAddrPub  = site(unixBase+5, "unix_bind:u->addr=addr")
	unixSiteGnAddr   = site(unixBase+6, "unix_getname:u->addr")
	unixSiteGnRmb    = site(unixBase+7, "unix_getname:smp_rmb")
	unixSiteGnPath   = site(unixBase+8, "unix_getname:u->path")
	unixSiteGnInode  = site(unixBase+9, "unix_getname:dentry->inode")
	unixSiteGnLen    = site(unixBase+10, "unix_getname:addr->len")
)

type unixInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
}

func init() {
	register(&ModuleInfo{
		Name: "unixsock",
		Defs: []*syzlang.SyscallDef{
			{Name: "unix_socket", Module: "unixsock", Ret: "sock_unix"},
			{Name: "unix_bind", Module: "unixsock",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_unix"}, syzlang.IntRange{Min: 1, Max: 108}}},
			{Name: "unix_getname", Module: "unixsock",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_unix"}}},
		},
		Bugs: []BugInfo{
			{
				ID: "T4#9", Switch: "unix:addr_rmb", Module: "unixsock",
				Subsystem: "unix", KernelVersion: "5.0-rc7",
				Title: "BUG: unable to handle kernel NULL pointer dereference in unix_getname",
				Type:  "L-L", Table: 4, OFencePattern: true, Repro: "yes",
			},
		},
		Seeds: []string{
			"r0 = unix_socket()\nunix_bind(r0, 0x10)\nunix_getname(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &unixInstance{k: k, bugs: bugs}
			return Instance{
				"unix_socket":  in.socket,
				"unix_bind":    in.bind,
				"unix_getname": in.getname,
			}
		},
	})
}

func (in *unixInstance) socket(t *kernel.Task, args []uint64) uint64 {
	return in.res.add(t.Kzalloc(2))
}

// bind publishes the address with correct write ordering.
func (in *unixInstance) bind(t *kernel.Task, args []uint64) uint64 {
	u, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	n := args[1]
	if n == 0 || n > 108 {
		return EINVAL
	}
	defer t.Enter("unix_bind")()
	addr := t.Kzalloc(2)
	dentry := t.Kzalloc(1)
	t.Store(unixSiteAddrLen, kernel.Field(addr, 0), n)
	t.Store(unixSiteAddrName, kernel.Field(addr, 1), 0x2f746d70) // "/tmp"
	t.Store(unixSitePath, kernel.Field(u, 1), uint64(dentry))
	t.Wmb(unixSiteBindWmb) // correct publisher barrier, always present
	t.Store(unixSiteAddrPub, kernel.Field(u, 0), uint64(addr))
	return EOK
}

// getname is the buggy reader: addr and path loads lack read ordering.
func (in *unixInstance) getname(t *kernel.Task, args []uint64) uint64 {
	u, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("unix_getname")()
	addr := t.Load(unixSiteGnAddr, kernel.Field(u, 0))
	if addr == 0 {
		return EAGAIN // not bound
	}
	if !in.bugs.Has("unix:addr_rmb") {
		t.Rmb(unixSiteGnRmb)
	}
	dentry := t.Load(unixSiteGnPath, kernel.Field(u, 1))
	inode := t.Load(unixSiteGnInode, kernel.Field(trace.Addr(dentry), 0))
	_ = inode
	return t.Load(unixSiteGnLen, kernel.Field(trace.Addr(addr), 0))
}
