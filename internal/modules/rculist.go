package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// rculist models the list-RCU idiom (list_add_rcu / list_for_each_entry_rcu):
// writers serialize on a spinlock and publish new nodes with
// rcu_assign_pointer; readers traverse lock-free under rcu_read_lock,
// following ->next pointers obtained with rcu_dereference; removal defers the
// free past a grace period.
//
// The bug ("rculist:assign_release") downgrades the head publication in
// rcl_add from rcu_assign_pointer (a release store) to a plain WRITE_ONCE.
// The node is kmalloc'd — NOT zeroed, poisoned by the allocator — so when
// the publication commits ahead of the node's initialization stores, a
// concurrent reader dereferences the node and follows a poisoned ->next:
// a wild pointer, and the fault oracle reports a general protection fault
// in the scanner. This is the missing-release pattern of real list-RCU
// fixes, on a linked structure rather than rcudev's single slot.
//
// Object layout:
//
//	list:      [0]=head [1]=writer lock
//	node:      kmalloc(2): [0]=val [1]=next
var (
	rclSiteAddLock   = site(0x48<<16+1, "rcl_add:spin_lock(list)")
	rclSiteVal       = site(0x48<<16+2, "rcl_add:node->val=v")
	rclSiteHeadSnap  = site(0x48<<16+3, "rcl_add:READ_ONCE(list->head)")
	rclSiteNext      = site(0x48<<16+4, "rcl_add:node->next=first")
	rclSitePub       = site(0x48<<16+5, "rcl_add:rcu_assign_pointer(list->head)")
	rclSiteAddUnlock = site(0x48<<16+6, "rcl_add:spin_unlock(list)")
	rclSiteDeref     = site(0x48<<16+7, "rcl_scan:rcu_dereference(list->head)")
	rclSiteScanVal   = site(0x48<<16+8, "rcl_scan:node->val")
	rclSiteScanNext  = site(0x48<<16+9, "rcl_scan:rcu_dereference(node->next)")
	rclSitePopLock   = site(0x48<<16+10, "rcl_pop:spin_lock(list)")
	rclSitePopHead   = site(0x48<<16+11, "rcl_pop:READ_ONCE(list->head)")
	rclSitePopNext   = site(0x48<<16+12, "rcl_pop:first->next")
	rclSiteUnpub     = site(0x48<<16+13, "rcl_pop:WRITE_ONCE(list->head,next)")
	rclSitePopUnlock = site(0x48<<16+14, "rcl_pop:spin_unlock(list)")
)

type rclInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
}

func init() {
	register(&ModuleInfo{
		Name: "rculist",
		Defs: []*syzlang.SyscallDef{
			{Name: "rcl_open", Module: "rculist", Ret: "rculist"},
			{Name: "rcl_add", Module: "rculist",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "rculist"}, syzlang.IntRange{Min: 1, Max: 7}}},
			{Name: "rcl_scan", Module: "rculist",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "rculist"}}},
			{Name: "rcl_pop", Module: "rculist",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "rculist"}}},
		},
		Bugs: []BugInfo{
			{
				ID: "X#rculist", Switch: "rculist:assign_release", Module: "rculist",
				Subsystem: "rculist", KernelVersion: "synthetic",
				Title: "general protection fault in rcl_scan",
				Type:  "S-S", Table: 0, OFencePattern: false, Repro: "yes",
				Note: "list-RCU publication without release: a reader follows the poisoned ->next of a half-initialized node.",
			},
		},
		Seeds: []string{
			"r0 = rcl_open()\nrcl_add(r0, 0x3)\nrcl_add(r0, 0x4)\nrcl_scan(r0)\nrcl_pop(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &rclInstance{k: k, bugs: bugs}
			return Instance{
				"rcl_open": in.rclOpen,
				"rcl_add":  in.rclAdd,
				"rcl_scan": in.rclScan,
				"rcl_pop":  in.rclPop,
			}
		},
	})
}

func (in *rclInstance) rclOpen(t *kernel.Task, args []uint64) uint64 {
	return in.res.add(t.Kzalloc(2))
}

// rclAdd pushes a new node at the head. The node comes from kmalloc — its
// words hold allocator poison until the two initialization stores land, so
// ordering them before the publication is load-bearing.
func (in *rclInstance) rclAdd(t *kernel.Task, args []uint64) uint64 {
	list, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("rcl_add")()
	t.SpinLock(rclSiteAddLock, kernel.Field(list, 1), "rcl_list")
	node := t.Kmalloc(2)
	t.Store(rclSiteVal, kernel.Field(node, 0), args[1])
	first := t.ReadOnce(rclSiteHeadSnap, kernel.Field(list, 0))
	t.Store(rclSiteNext, kernel.Field(node, 1), first)
	if in.bugs.Has("rculist:assign_release") {
		// The bug: relaxed publication — nothing orders the node's
		// initialization before the head swing.
		t.WriteOnce(rclSitePub, kernel.Field(list, 0), uint64(node))
	} else {
		t.RcuAssignPointer(rclSitePub, kernel.Field(list, 0), uint64(node))
	}
	t.SpinUnlock(rclSiteAddUnlock, kernel.Field(list, 1))
	return EOK
}

// rclScan walks the list under rcu_read_lock and sums the values. The walk
// is bounded so a cyclic corruption degrades into a sum, not a livelock; a
// poisoned ->next is a wild pointer and faults on the very next value load.
func (in *rclInstance) rclScan(t *kernel.Task, args []uint64) uint64 {
	list, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("rcl_scan")()
	rcu := t.K.RCU()
	rcu.ReadLock(t)
	defer rcu.ReadUnlock(t)
	n := t.RcuDereference(rclSiteDeref, kernel.Field(list, 0))
	var sum uint64
	for hops := 0; n != 0 && hops < 8; hops++ {
		sum += t.Load(rclSiteScanVal, kernel.Field(trace.Addr(n), 0))
		n = t.RcuDereference(rclSiteScanNext, kernel.Field(trace.Addr(n), 1))
	}
	return sum
}

// rclPop unlinks the head node and frees it after a grace period — the
// correct deferred-reclamation half of the protocol, serialized against
// rclAdd by the writer lock.
func (in *rclInstance) rclPop(t *kernel.Task, args []uint64) uint64 {
	list, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("rcl_pop")()
	t.SpinLock(rclSitePopLock, kernel.Field(list, 1), "rcl_list")
	first := t.ReadOnce(rclSitePopHead, kernel.Field(list, 0))
	if first == 0 {
		t.SpinUnlock(rclSitePopUnlock, kernel.Field(list, 1))
		return EAGAIN
	}
	next := t.Load(rclSitePopNext, kernel.Field(trace.Addr(first), 1))
	t.WriteOnce(rclSiteUnpub, kernel.Field(list, 0), next)
	t.SpinUnlock(rclSitePopUnlock, kernel.Field(list, 1))
	t.K.RCU().Synchronize(t)
	t.Kfree(trace.Addr(first))
	return EOK
}
