package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// tls reproduces three bugs of the kernel TLS subsystem (net/tls):
//
//   - T3#9 — the Fig. 7 bug: tls_init() initializes the TLS context
//     (sk->data = ctx; ctx->sk_proto = READ_ONCE(sk->sk_prot)) and then
//     publishes the TLS proto-ops by WRITE_ONCE(sk->sk_prot, &tls_prots).
//     Without an smp_wmb() before the publication (switch
//     "tls:sk_prot_wmb"), a concurrent sock_common_setsockopt() can enter
//     tls_setsockopt() and dereference the uninitialized ctx->sk_proto —
//     "BUG: unable to handle kernel NULL pointer dereference in
//     tls_setsockopt". The case study notes developers had previously
//     annotated the accesses with WRITE_ONCE/READ_ONCE, which silences
//     KCSAN but provides no ordering.
//
//   - T3#5 — tls_sw_enable() builds the software RX context and publishes
//     ctx->rx_conf = TLS_SW; tls_getsockopt() reads rx_conf and then
//     ctx->rx_ctx. The missing smp_wmb() is "tls:ctx_rx_wmb" —
//     "BUG: unable to handle kernel NULL pointer dereference in
//     tls_getsockopt".
//
//   - T4#8 — tls_err_abort() records the error detail in ctx->async_err
//     before setting sk->sk_err; tls_get_error() reads sk->sk_err and then
//     ctx->async_err. Missing ordering ("tls:err_abort_wmb") makes
//     tls_get_error return success despite a pending error — a
//     wrong-return-value symptom, not a crash (soft oracle; the paper's
//     Table 4 marks it with a star).
//
// Object layout:
//
//	sock:      [0]=sk_prot [1]=sk_data(ctx) [2]=sk_err
//	proto ops: [0]=setsockopt fn [1]=getsockopt fn
//	tls ctx:   [0]=sk_proto [1]=rx_conf [2]=rx_ctx [3]=async_err
//	rx ctx:    [0]=iv [1]=rec_seq
var (
	tlsSiteCtxData    = site(tlsBase+1, "tls_init:sk->data=ctx")                         // Fig.7 #5
	tlsSiteCtxProto   = site(tlsBase+2, "tls_init:ctx->sk_proto=READ_ONCE(sk_prot)")     // Fig.7 #6-7
	tlsSiteInitWmb    = site(tlsBase+3, "tls_init:smp_wmb")                              // Fig.7 #8
	tlsSitePubProt    = site(tlsBase+4, "tls_init:WRITE_ONCE(sk->sk_prot,&tls_prots)")   // Fig.7 #9
	tlsSiteLoadProt   = site(tlsBase+5, "sock_common_setsockopt:READ_ONCE(sk->sk_prot)") // Fig.7 #20
	tlsSiteProtField  = site(tlsBase+6, "sock_common_setsockopt:prot->setsockopt")
	tlsSiteCallSetopt = site(tlsBase+7, "sock_common_setsockopt:call setsockopt")
	tlsSiteCtxLoad    = site(tlsBase+8, "tls_setsockopt:ctx=sk->data")  // Fig.7 #27
	tlsSiteCtxSkProto = site(tlsBase+9, "tls_setsockopt:ctx->sk_proto") // Fig.7 #28
	tlsSiteSkField    = site(tlsBase+10, "tls_setsockopt:sk_proto->setsockopt")
	tlsSiteCallBase   = site(tlsBase+11, "tls_setsockopt:call base setsockopt")

	tlsSiteGLoadProt  = site(tlsBase+12, "sock_common_getsockopt:READ_ONCE(sk->sk_prot)")
	tlsSiteGProtField = site(tlsBase+13, "sock_common_getsockopt:prot->getsockopt")
	tlsSiteGCall      = site(tlsBase+14, "sock_common_getsockopt:call getsockopt")
	tlsSiteRxIv       = site(tlsBase+15, "tls_sw_enable:rx->iv=iv")
	tlsSiteRxSeq      = site(tlsBase+16, "tls_sw_enable:rx->rec_seq=seq")
	tlsSiteRxCtx      = site(tlsBase+17, "tls_sw_enable:ctx->rx_ctx=rx")
	tlsSiteRxWmb      = site(tlsBase+18, "tls_sw_enable:smp_wmb")
	tlsSiteRxConf     = site(tlsBase+19, "tls_sw_enable:ctx->rx_conf=TLS_SW")
	tlsSiteGRxConf    = site(tlsBase+20, "tls_getsockopt:ctx->rx_conf")
	tlsSiteGRxCtx     = site(tlsBase+21, "tls_getsockopt:ctx->rx_ctx")
	tlsSiteGRxIv      = site(tlsBase+22, "tls_getsockopt:rx->iv")
	tlsSiteGCtx       = site(tlsBase+23, "tls_getsockopt:ctx=sk->data")

	tlsSiteAbortErr     = site(tlsBase+24, "tls_err_abort:ctx->async_err=err")
	tlsSiteAbortWmb     = site(tlsBase+25, "tls_err_abort:smp_wmb")
	tlsSiteAbortSk      = site(tlsBase+26, "tls_err_abort:WRITE_ONCE(sk->sk_err,err)")
	tlsSiteGetErrSk     = site(tlsBase+27, "tls_get_error:READ_ONCE(sk->sk_err)")
	tlsSiteGetErrCtx    = site(tlsBase+28, "tls_get_error:ctx->async_err")
	tlsSiteGetErrCtxPtr = site(tlsBase+29, "tls_get_error:ctx=sk->data")
	tlsSiteCtxProtoSt   = site(tlsBase+30, "tls_init:ctx->sk_proto store")
)

const tlsSW = 2 // TLS_SW rx_conf value

type tlsInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable

	baseProt uint64 // &base_prots
	tlsProt  uint64 // &tls_prots
}

func init() {
	register(&ModuleInfo{
		Name: "tls",
		Defs: []*syzlang.SyscallDef{
			{Name: "tls_socket", Module: "tls", Ret: "sock_tls"},
			{Name: "tls_init", Module: "tls",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_tls"}}},
			{Name: "sock_setsockopt", Module: "tls",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_tls"}, syzlang.IntRange{Min: 0, Max: 4}}},
			{Name: "sock_getsockopt", Module: "tls",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_tls"}}},
			{Name: "tls_sw_enable", Module: "tls",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_tls"}}},
			{Name: "tls_err_abort", Module: "tls",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_tls"}, syzlang.IntRange{Min: 1, Max: 100}}},
			{Name: "tls_get_error", Module: "tls",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_tls"}}},
		},
		Bugs: []BugInfo{
			{
				ID: "T3#9", Switch: "tls:sk_prot_wmb", Module: "tls",
				Subsystem: "TLS", KernelVersion: "v6.7-rc2",
				Title: "BUG: unable to handle kernel NULL pointer dereference in tls_setsockopt",
				Type:  "S-S", Status: "Fixed", Table: 3, OFencePattern: false,
				Note: "Fig. 7 case study: WRITE_ONCE/READ_ONCE annotation silenced KCSAN but added no ordering",
			},
			{
				ID: "T3#5", Switch: "tls:ctx_rx_wmb", Module: "tls",
				Subsystem: "TLS", KernelVersion: "v6.6-rc2",
				Title: "BUG: unable to handle kernel NULL pointer dereference in tls_getsockopt",
				Type:  "S-S", Status: "Fixed", Table: 3, OFencePattern: false,
			},
			{
				ID: "T4#8", Switch: "tls:err_abort_wmb", Module: "tls",
				Subsystem: "tls", KernelVersion: "6.7-rc1",
				SoftTitle: "tls: tls_get_error returned success despite pending error",
				Type:      "S-S", Table: 4, OFencePattern: false, Repro: "partial",
				Note: "symptom is a wrong syscall return value, not a crash (Table 4 entry #8, checkmark-star)",
			},
		},
		Seeds: []string{
			"r0 = tls_socket()\ntls_init(r0)\nsock_setsockopt(r0, 0x1)\n",
			"r0 = tls_socket()\ntls_init(r0)\ntls_sw_enable(r0)\nsock_getsockopt(r0)\n",
			"r0 = tls_socket()\ntls_init(r0)\ntls_err_abort(r0, 0x8)\ntls_get_error(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &tlsInstance{k: k, bugs: bugs}
			in.install(k)
			return Instance{
				"tls_socket":      in.socket,
				"tls_init":        in.tlsInit,
				"sock_setsockopt": in.setsockopt,
				"sock_getsockopt": in.getsockopt,
				"tls_sw_enable":   in.swEnable,
				"tls_err_abort":   in.errAbort,
				"tls_get_error":   in.getError,
			}
		},
	})
}

// install builds the two static proto-ops tables and registers the
// functions they point to.
func (in *tlsInstance) install(k *kernel.Kernel) {
	baseSet := k.RegisterFn("base_setsockopt", func(t *kernel.Task, arg uint64) uint64 { return EOK })
	baseGet := k.RegisterFn("base_getsockopt", func(t *kernel.Task, arg uint64) uint64 { return EOK })
	tlsSet := k.RegisterFn("tls_setsockopt", in.tlsSetsockopt)
	tlsGet := k.RegisterFn("tls_getsockopt", in.tlsGetsockopt)

	bp := k.Mem.AllocZeroed(2)
	k.Mem.Write(kernel.Field(bp, 0), baseSet)
	k.Mem.Write(kernel.Field(bp, 1), baseGet)
	in.baseProt = uint64(bp)

	tp := k.Mem.AllocZeroed(2)
	k.Mem.Write(kernel.Field(tp, 0), tlsSet)
	k.Mem.Write(kernel.Field(tp, 1), tlsGet)
	in.tlsProt = uint64(tp)
}

func (in *tlsInstance) socket(t *kernel.Task, args []uint64) uint64 {
	sk := t.Kzalloc(3)
	t.K.Mem.Write(kernel.Field(sk, 0), in.baseProt) // pre-publication init
	return in.res.add(sk)
}

// tlsInit is Fig. 7's tls_init() (Thread A).
func (in *tlsInstance) tlsInit(t *kernel.Task, args []uint64) uint64 {
	sk, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("tls_init")()
	if t.ReadOnce(tlsSiteLoadProt, kernel.Field(sk, 0)) == in.tlsProt {
		return EBUSY // already upgraded to TLS
	}
	ctx := t.Kzalloc(4)                                           // #4: ctx = kzalloc()
	t.WriteOnce(tlsSiteCtxData, kernel.Field(sk, 1), uint64(ctx)) // #5: sk->data = ctx (rcu_assign-style annotated)
	prot := t.ReadOnce(tlsSiteCtxProto, kernel.Field(sk, 0))      // #6-7: READ_ONCE(sk->sk_prot)
	t.Store(tlsSiteCtxProtoSt, kernel.Field(ctx, 0), prot)        // ctx->sk_proto = ...
	if !in.bugs.Has("tls:sk_prot_wmb") {
		t.Wmb(tlsSiteInitWmb) // #8: smp_wmb() — the missing barrier
	}
	t.WriteOnce(tlsSitePubProt, kernel.Field(sk, 0), in.tlsProt) // #9-10
	return EOK
}

// setsockopt is Fig. 7's sock_common_setsockopt() (Thread B).
func (in *tlsInstance) setsockopt(t *kernel.Task, args []uint64) uint64 {
	sk, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("sock_common_setsockopt")()
	prot := t.ReadOnce(tlsSiteLoadProt, kernel.Field(sk, 0)) // #20: READ_ONCE(sk->sk_prot)
	fn := t.Load(tlsSiteProtField, kernel.Field(trace.Addr(prot), 0))
	return t.CallFn(tlsSiteCallSetopt, fn, uint64(sk)) // ->setsockopt(sk)
}

// tlsSetsockopt is Fig. 7's tls_setsockopt() (reached via the tls proto
// table).
func (in *tlsInstance) tlsSetsockopt(t *kernel.Task, skArg uint64) uint64 {
	sk := trace.Addr(skArg)
	defer t.Enter("tls_setsockopt")()
	ctx := t.ReadOnce(tlsSiteCtxLoad, kernel.Field(sk, 1))               // #27: ctx = sk->data (rcu_dereference-style annotated)
	proto := t.Load(tlsSiteCtxSkProto, kernel.Field(trace.Addr(ctx), 0)) // #28: ctx->sk_proto
	fn := t.Load(tlsSiteSkField, kernel.Field(trace.Addr(proto), 0))     // ->setsockopt
	return t.CallFn(tlsSiteCallBase, fn, skArg)
}

func (in *tlsInstance) getsockopt(t *kernel.Task, args []uint64) uint64 {
	sk, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("sock_common_getsockopt")()
	prot := t.ReadOnce(tlsSiteGLoadProt, kernel.Field(sk, 0))
	fn := t.Load(tlsSiteGProtField, kernel.Field(trace.Addr(prot), 1))
	return t.CallFn(tlsSiteGCall, fn, uint64(sk))
}

// tlsGetsockopt reads the software RX configuration (T3#5 reader).
func (in *tlsInstance) tlsGetsockopt(t *kernel.Task, skArg uint64) uint64 {
	sk := trace.Addr(skArg)
	defer t.Enter("tls_getsockopt")()
	ctx := trace.Addr(t.ReadOnce(tlsSiteGCtx, kernel.Field(sk, 1)))
	if ctx == 0 {
		return EINVAL
	}
	conf := t.ReadOnce(tlsSiteGRxConf, kernel.Field(ctx, 1))
	if conf != tlsSW {
		return EOK
	}
	rx := t.Load(tlsSiteGRxCtx, kernel.Field(ctx, 2))
	return t.Load(tlsSiteGRxIv, kernel.Field(trace.Addr(rx), 0))
}

// swEnable is the T3#5 publisher: setsockopt(SOL_TLS, TLS_RX).
func (in *tlsInstance) swEnable(t *kernel.Task, args []uint64) uint64 {
	sk, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("tls_sw_enable")()
	ctx := trace.Addr(t.ReadOnce(tlsSiteGCtx, kernel.Field(sk, 1)))
	if ctx == 0 {
		return EINVAL // needs tls_init first
	}
	rx := t.Kzalloc(2)
	t.Store(tlsSiteRxIv, kernel.Field(rx, 0), 0x69766976)   // rx->iv
	t.Store(tlsSiteRxSeq, kernel.Field(rx, 1), 1)           // rx->rec_seq
	t.Store(tlsSiteRxCtx, kernel.Field(ctx, 2), uint64(rx)) // ctx->rx_ctx = rx
	if !in.bugs.Has("tls:ctx_rx_wmb") {
		t.Wmb(tlsSiteRxWmb)
	}
	t.WriteOnce(tlsSiteRxConf, kernel.Field(ctx, 1), tlsSW) // publish
	return EOK
}

// errAbort is the T4#8 writer: tls_err_abort().
func (in *tlsInstance) errAbort(t *kernel.Task, args []uint64) uint64 {
	sk, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	err := args[1]
	if err == 0 {
		return EINVAL
	}
	defer t.Enter("tls_err_abort")()
	ctx := trace.Addr(t.ReadOnce(tlsSiteGCtx, kernel.Field(sk, 1)))
	if ctx == 0 {
		return EINVAL
	}
	t.Store(tlsSiteAbortErr, kernel.Field(ctx, 3), err) // ctx->async_err = err
	if !in.bugs.Has("tls:err_abort_wmb") {
		t.Wmb(tlsSiteAbortWmb)
	}
	t.WriteOnce(tlsSiteAbortSk, kernel.Field(sk, 2), err) // sk->sk_err = err
	return EOK
}

// getError is the T4#8 reader: tls_get_error(). The wrong-return-value
// symptom is detected by the semantic oracle: sk->sk_err set but the
// context's error detail still unset.
func (in *tlsInstance) getError(t *kernel.Task, args []uint64) uint64 {
	sk, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("tls_get_error")()
	skErr := t.ReadOnce(tlsSiteGetErrSk, kernel.Field(sk, 2))
	if skErr == 0 {
		return EOK
	}
	ctx := trace.Addr(t.ReadOnce(tlsSiteGetErrCtxPtr, kernel.Field(sk, 1)))
	if ctx == 0 {
		return EINVAL
	}
	detail := t.Load(tlsSiteGetErrCtx, kernel.Field(ctx, 3))
	if detail == 0 {
		// sk_err is visible but the error detail is not: the caller
		// would observe success for a failed operation.
		t.SoftReport("tls: tls_get_error returned success despite pending error")
		return EOK
	}
	return detail
}
