package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// sqring models an io_uring-style single-producer submission ring: the
// producer writes a submission entry into ring[tail & mask] and then
// publishes the new tail; the consumer reads the tail, and any entry between
// its head and that tail is supposed to be fully initialized.
//
// The bug ("sqring:tail_release") downgrades the tail publication from
// smp_store_release to a plain WRITE_ONCE. Under TSO-with-store-buffer
// emulation the entry store and the tail store sit in the producer's buffer
// in order, but the paper's S-S reordering lets the tail commit FIRST: the
// consumer then observes tail advanced while ring[head & mask] still holds
// its zero-initialized value — an uninitialized submission entry, caught by
// the consumer's sanity oracle.
//
// Object layout:
//
//	sq:        [0]=tail [1]=head [2]=ring
//	ring:      kzalloc(4) words (mask 3)
var (
	sqSiteSqe      = site(0x47<<16+1, "sq_submit:ring[tail&mask]=sqe")
	sqSiteTailRel  = site(0x47<<16+2, "sq_submit:store_release(sq->tail)")
	sqSiteHead     = site(0x47<<16+3, "cq_reap:sq->head")
	sqSiteTailLd   = site(0x47<<16+4, "cq_reap:READ_ONCE(sq->tail)")
	sqSiteEntry    = site(0x47<<16+5, "cq_reap:ring[head&mask]")
	sqSiteHeadAdv  = site(0x47<<16+6, "cq_reap:sq->head=head+1")
	sqSiteTailSnap = site(0x47<<16+7, "sq_submit:READ_ONCE(sq->tail)")
)

type sqInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
}

func init() {
	register(&ModuleInfo{
		Name: "sqring",
		Defs: []*syzlang.SyscallDef{
			{Name: "sq_setup", Module: "sqring", Ret: "sqring"},
			{Name: "sq_submit", Module: "sqring",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sqring"}, syzlang.IntRange{Min: 1, Max: 7}}},
			{Name: "cq_reap", Module: "sqring",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sqring"}}},
		},
		Bugs: []BugInfo{
			{
				ID: "X#sqring", Switch: "sqring:tail_release", Module: "sqring",
				Subsystem: "io_uring", KernelVersion: "synthetic",
				Title: "kernel BUG: sqe visible before its payload in cq_reap",
				Type:  "S-S", Table: 0, OFencePattern: true, Repro: "yes",
				Note: "classic publish-subscribe S-S pair: entry payload vs tail index.",
			},
		},
		Seeds: []string{
			"r0 = sq_setup()\nsq_submit(r0, 0x7)\ncq_reap(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &sqInstance{k: k, bugs: bugs}
			return Instance{
				"sq_setup":  in.sqSetup,
				"sq_submit": in.sqSubmit,
				"cq_reap":   in.cqReap,
			}
		},
	})
}

func (in *sqInstance) sqSetup(t *kernel.Task, args []uint64) uint64 {
	sq := t.Kzalloc(3)
	ring := t.Kzalloc(4)
	t.K.Mem.Write(kernel.Field(sq, 2), uint64(ring))
	return in.res.add(sq)
}

// sqSubmit is the producer: it fills the next submission entry and then
// publishes the advanced tail. Publication must carry release semantics —
// the bug switch drops them to a plain WRITE_ONCE.
func (in *sqInstance) sqSubmit(t *kernel.Task, args []uint64) uint64 {
	sq, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("sq_submit")()
	ring := trace.Addr(t.K.Mem.Read(kernel.Field(sq, 2)))
	tail := t.ReadOnce(sqSiteTailSnap, kernel.Field(sq, 0))
	t.Store(sqSiteSqe, kernel.Field(ring, int(tail&3)), args[1])
	if in.bugs.Has("sqring:tail_release") {
		t.WriteOnce(sqSiteTailRel, kernel.Field(sq, 0), tail+1)
	} else {
		t.StoreRelease(sqSiteTailRel, kernel.Field(sq, 0), tail+1)
	}
	return EOK
}

// cqReap is the consumer: any entry between head and the published tail must
// be initialized — a zero entry means the tail index became visible before
// its payload.
func (in *sqInstance) cqReap(t *kernel.Task, args []uint64) uint64 {
	sq, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("cq_reap")()
	head := t.Load(sqSiteHead, kernel.Field(sq, 1))
	tail := t.ReadOnce(sqSiteTailLd, kernel.Field(sq, 0))
	if head == tail {
		return EAGAIN
	}
	v := t.Load(sqSiteEntry, kernel.Field(trace.Addr(t.K.Mem.Read(kernel.Field(sq, 2))), int(head&3)))
	t.Assert(v != 0, "sqe visible before its payload")
	t.Store(sqSiteHeadAdv, kernel.Field(sq, 1), head+1)
	return v
}
