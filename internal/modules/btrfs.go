package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
)

// btrfs reproduces the bug class of the paper's citation [8] (Borisov 2019,
// 6e7ca09b583d: "btrfs: Fix deadlock caused by missing memory barrier") —
// a LOST WAKEUP from store-load reordering, the classic sleep/wakeup SB
// shape:
//
//	waiter:  waiting = 1;  smp_mb();  if (cond) return; else sleep();
//	waker:   cond = 1;     smp_mb();  if (waiting) wake();
//
// Without the full barriers, each side's store may be delayed past its
// load: the waiter reads cond == 0 (the waker's store still buffered) and
// goes to sleep, while the waker reads waiting == 0 (the waiter's store
// still buffered) and skips the wakeup — the waiter hangs. Only smp_mb()
// forbids store-load reordering (Table 1), making this the corpus's
// store-load (S-L) representative. The switch "btrfs:wake_mb" removes both
// barriers.
//
// The sleep is modelled as a bounded wait (wait_event_timeout-style): on
// timeout the waiter reports the hang through the semantic oracle
// ("INFO: task hung ..."), mirroring the hung-task detector that caught
// the original bug.
//
// Object layout: txn: [0]=cond (commit done) [1]=waiting [2]=woken
var (
	btrfsSiteWaiting  = site(0x41<<16+1, "btrfs_wait:txn->waiting=1")
	btrfsSiteWaitMb   = site(0x41<<16+2, "btrfs_wait:smp_mb")
	btrfsSiteWaitCond = site(0x41<<16+3, "btrfs_wait:load txn->cond")
	btrfsSiteWoken    = site(0x41<<16+4, "btrfs_wait:load txn->woken")
	btrfsSiteWaitClr  = site(0x41<<16+5, "btrfs_wait:txn->waiting=0")
	btrfsSiteCond     = site(0x41<<16+6, "btrfs_commit:txn->cond=1")
	btrfsSiteWakeMb   = site(0x41<<16+7, "btrfs_commit:smp_mb")
	btrfsSiteWaitLd   = site(0x41<<16+8, "btrfs_commit:load txn->waiting")
	btrfsSiteWake     = site(0x41<<16+9, "btrfs_commit:txn->woken=1")
	btrfsSiteTimeout  = site(0x41<<16+10, "btrfs_wait:timeout check load txn->cond")
)

// btrfsSleepSpins bounds the waiter's sleep (timeout model).
const btrfsSleepSpins = 40

type btrfsInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
}

func init() {
	register(&ModuleInfo{
		Name: "btrfs",
		Defs: []*syzlang.SyscallDef{
			{Name: "btrfs_txn_start", Module: "btrfs", Ret: "btrfs_txn"},
			{Name: "btrfs_txn_wait", Module: "btrfs",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "btrfs_txn"}}},
			{Name: "btrfs_txn_commit", Module: "btrfs",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "btrfs_txn"}}},
		},
		Bugs: []BugInfo{
			{
				ID: "X#btrfs", Switch: "btrfs:wake_mb", Module: "btrfs",
				Subsystem: "btrfs", KernelVersion: "5.0",
				SoftTitle: "INFO: task hung in btrfs_txn_wait (lost wakeup)",
				Type:      "S-L/S-S", Table: 0, OFencePattern: false, Repro: "yes",
				Note: "the paper's citation [8]: sleep/wakeup SB shape; only smp_mb orders store-load, so this is the S-L corpus representative",
			},
		},
		Seeds: []string{
			"r0 = btrfs_txn_start()\nbtrfs_txn_commit(r0)\nbtrfs_txn_wait(r0)\n",
			"r0 = btrfs_txn_start()\nbtrfs_txn_wait(r0)\nbtrfs_txn_commit(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &btrfsInstance{k: k, bugs: bugs}
			return Instance{
				"btrfs_txn_start":  in.start,
				"btrfs_txn_wait":   in.wait,
				"btrfs_txn_commit": in.commit,
			}
		},
	})
}

func (in *btrfsInstance) start(t *kernel.Task, args []uint64) uint64 {
	return in.res.add(t.Kzalloc(3))
}

// wait is wait_for_commit(): announce waiting, check the condition, sleep
// until woken (bounded).
func (in *btrfsInstance) wait(t *kernel.Task, args []uint64) uint64 {
	txn, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("btrfs_txn_wait")()
	t.Store(btrfsSiteWaiting, kernel.Field(txn, 1), 1)
	if !in.bugs.Has("btrfs:wake_mb") {
		t.Mb(btrfsSiteWaitMb)
	}
	if t.Load(btrfsSiteWaitCond, kernel.Field(txn, 0)) == 1 {
		t.Store(btrfsSiteWaitClr, kernel.Field(txn, 1), 0)
		return EOK // already committed: no sleep
	}
	// Sleep: woken only by the waker's explicit wake (checking cond again
	// here is exactly what the barrier pair makes unnecessary — a sleeper
	// relies on the wakeup).
	for spin := 0; spin < btrfsSleepSpins; spin++ {
		if t.Load(btrfsSiteWoken, kernel.Field(txn, 2)) == 1 {
			t.Store(btrfsSiteWaitClr, kernel.Field(txn, 1), 0)
			return EOK
		}
		if t.Sched() != nil && t.Sched().Peers() > 0 {
			t.Sched().BlockSpin()
			t.Sched().ClearSpin()
		}
	}
	t.Store(btrfsSiteWaitClr, kernel.Field(txn, 1), 0)
	// Timed out. If the commit HAS happened by now (cond visible) yet we
	// were never woken, the wakeup was lost — the hung-task oracle. A
	// timeout with no commit at all is an ordinary ETIME, not a bug.
	if t.Load(btrfsSiteTimeout, kernel.Field(txn, 0)) == 1 {
		t.SoftReport("INFO: task hung in btrfs_txn_wait (lost wakeup)")
	}
	return ^uint64(61) // -ETIME
}

// commit is the transaction commit: publish the condition, then wake any
// announced waiter.
func (in *btrfsInstance) commit(t *kernel.Task, args []uint64) uint64 {
	txn, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("btrfs_txn_commit")()
	t.Store(btrfsSiteCond, kernel.Field(txn, 0), 1)
	if !in.bugs.Has("btrfs:wake_mb") {
		t.Mb(btrfsSiteWakeMb)
	}
	if t.Load(btrfsSiteWaitLd, kernel.Field(txn, 1)) == 1 {
		t.Store(btrfsSiteWake, kernel.Field(txn, 2), 1)
	}
	return EOK
}
