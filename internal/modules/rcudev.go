package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// rcudev exercises the RCU substrate with the canonical publish/read/
// reclaim protocol of an RCU-protected device entry:
//
//   - rcu_dev_register() initializes the entry and publishes it with
//     rcu_assign_pointer (a release store). The bug switch
//     "rcu:assign_release" replaces it with a plain WRITE_ONCE — the
//     publication then races ahead of the initialization, and a concurrent
//     reader calls the entry's uninitialized handler: the OOO bug class
//     behind many real "missing rcu_assign_pointer/smp_wmb" fixes.
//   - rcu_dev_read() dereferences under rcu_read_lock and calls the
//     handler.
//   - rcu_dev_unregister() unpublishes and frees the old entry after
//     synchronize_rcu() — exercising grace periods under the deterministic
//     scheduler (with the correct barrier this whole protocol survives the
//     entire hypothetical-barrier test battery).
//
// Object layout: dev: [0]=entry ; entry: [0]=handler [1]=cookie
var (
	rcuSiteFn    = site(0x42<<16+1, "rcu_dev_register:entry->handler=fn")
	rcuSiteCk    = site(0x42<<16+2, "rcu_dev_register:entry->cookie=c")
	rcuSitePub   = site(0x42<<16+3, "rcu_dev_register:rcu_assign_pointer(dev->entry)")
	rcuSiteDeref = site(0x42<<16+4, "rcu_dev_read:rcu_dereference(dev->entry)")
	rcuSiteFnLd  = site(0x42<<16+5, "rcu_dev_read:entry->handler")
	rcuSiteCall  = site(0x42<<16+6, "rcu_dev_read:call handler")
	rcuSiteUnpub = site(0x42<<16+7, "rcu_dev_unregister:WRITE_ONCE(dev->entry,0)")
)

type rcuInstance struct {
	k       *kernel.Kernel
	bugs    BugSet
	res     resTable
	handler uint64
}

func init() {
	register(&ModuleInfo{
		Name: "rcudev",
		Defs: []*syzlang.SyscallDef{
			{Name: "rcu_dev_create", Module: "rcudev", Ret: "rcu_dev"},
			{Name: "rcu_dev_register", Module: "rcudev",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "rcu_dev"}, syzlang.IntRange{Min: 1, Max: 0xff}}},
			{Name: "rcu_dev_read", Module: "rcudev",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "rcu_dev"}}},
			{Name: "rcu_dev_unregister", Module: "rcudev",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "rcu_dev"}}},
		},
		Bugs: []BugInfo{
			{
				ID: "X#rcu", Switch: "rcu:assign_release", Module: "rcudev",
				Subsystem: "rcu", KernelVersion: "synthetic",
				Title: "BUG: unable to handle kernel NULL pointer dereference in rcu_dev_read",
				Type:  "S-S", Table: 0, OFencePattern: false, Repro: "yes",
				Note: "publication with plain WRITE_ONCE instead of rcu_assign_pointer (release): the missing-release class behind many real RCU fixes",
			},
		},
		Seeds: []string{
			"r0 = rcu_dev_create()\nrcu_dev_register(r0, 0x7)\nrcu_dev_read(r0)\n",
			"r0 = rcu_dev_create()\nrcu_dev_register(r0, 0x7)\nrcu_dev_read(r0)\nrcu_dev_unregister(r0)\nrcu_dev_read(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &rcuInstance{k: k, bugs: bugs}
			in.handler = k.RegisterFn("rcu_dev_handler", func(t *kernel.Task, arg uint64) uint64 {
				return arg
			})
			return Instance{
				"rcu_dev_create":     in.create,
				"rcu_dev_register":   in.register,
				"rcu_dev_read":       in.read,
				"rcu_dev_unregister": in.unregister,
			}
		},
	})
}

func (in *rcuInstance) create(t *kernel.Task, args []uint64) uint64 {
	return in.res.add(t.Kzalloc(1))
}

func (in *rcuInstance) register(t *kernel.Task, args []uint64) uint64 {
	dev, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("rcu_dev_register")()
	entry := t.Kzalloc(2)
	t.Store(rcuSiteFn, kernel.Field(entry, 0), in.handler)
	t.Store(rcuSiteCk, kernel.Field(entry, 1), args[1])
	if in.bugs.Has("rcu:assign_release") {
		// The bug: a relaxed publication — no ordering against the
		// initialization stores above.
		t.WriteOnce(rcuSitePub, kernel.Field(dev, 0), uint64(entry))
	} else {
		t.RcuAssignPointer(rcuSitePub, kernel.Field(dev, 0), uint64(entry))
	}
	return EOK
}

func (in *rcuInstance) read(t *kernel.Task, args []uint64) uint64 {
	dev, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("rcu_dev_read")()
	rcu := t.K.RCU()
	rcu.ReadLock(t)
	defer rcu.ReadUnlock(t)
	entry := t.RcuDereference(rcuSiteDeref, kernel.Field(dev, 0))
	if entry == 0 {
		return EAGAIN
	}
	fn := t.Load(rcuSiteFnLd, kernel.Field(trace.Addr(entry), 0))
	return t.CallFn(rcuSiteCall, fn, entry)
}

func (in *rcuInstance) unregister(t *kernel.Task, args []uint64) uint64 {
	dev, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("rcu_dev_unregister")()
	old := t.ReadOnce(rcuSiteUnpub, kernel.Field(dev, 0))
	if old == 0 {
		return EAGAIN
	}
	t.WriteOnce(rcuSiteUnpub, kernel.Field(dev, 0), 0)
	// Correct deferred reclamation: free only after a grace period.
	t.K.RCU().Synchronize(t)
	t.Kfree(trace.Addr(old))
	return EOK
}
