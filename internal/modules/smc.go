package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// smc reproduces two SMC-socket bugs of Table 3:
//
//   - T3#8 (S-S) — "BUG: unable to handle kernel NULL pointer dereference
//     in connect": smc_listen() publishes the listening state before the
//     internal CLC socket pointer commits ("smc:clcsock_wmb"); a concurrent
//     connect() dereferences the NULL clcsock.
//
//   - T3#10 (L-L) — "KASAN: null-ptr-deref Write in fput": smc_accept()
//     installs the accepted socket's file and then sets the accepted flag
//     with proper write ordering, but smc_close() reads the flag and the
//     file pointer without read ordering ("smc:fdinstall_rmb"); the close
//     path can observe the flag yet a stale NULL file, and fput()'s
//     reference drop writes through the NULL pointer (a Write fault — the
//     KASAN flavour of this bug).
//
// Object layout:
//
//	smc:  [0]=clcsock [1]=state [2]=file [3]=accepted
//	clc:  [0]=token
//	file: [0]=f_count [1]=f_mode
const smcListen = 1

var (
	smcSiteClcTok   = site(smcBase+1, "smc_listen:clc->token=tok")
	smcSiteClcPub   = site(smcBase+2, "smc_listen:smc->clcsock=clc")
	smcSiteWmb      = site(smcBase+3, "smc_listen:smp_wmb")
	smcSiteStatePub = site(smcBase+4, "smc_listen:WRITE_ONCE(smc->state,LISTEN)")
	smcSiteConnSt   = site(smcBase+5, "connect:READ_ONCE(smc->state)")
	smcSiteConnClc  = site(smcBase+6, "connect:smc->clcsock")
	smcSiteConnTok  = site(smcBase+7, "connect:clcsock->token")

	smcSiteFileCnt  = site(smcBase+8, "smc_accept:file->f_count=1")
	smcSiteFileMode = site(smcBase+9, "smc_accept:file->f_mode=RW")
	smcSiteFilePub  = site(smcBase+10, "smc_accept:smc->file=file")
	smcSiteAccWmb   = site(smcBase+11, "smc_accept:smp_wmb")
	smcSiteAccFlag  = site(smcBase+12, "smc_accept:smc->accepted=1")
	smcSiteCloseAcc = site(smcBase+13, "smc_close:smc->accepted")
	smcSiteCloseRmb = site(smcBase+14, "smc_close:smp_rmb")
	smcSiteCloseF   = site(smcBase+15, "smc_close:smc->file")
	smcSiteFputW    = site(smcBase+16, "fput:file->f_count=0")
)

type smcInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
}

func init() {
	register(&ModuleInfo{
		Name: "smc",
		Defs: []*syzlang.SyscallDef{
			{Name: "smc_socket", Module: "smc", Ret: "sock_smc"},
			{Name: "smc_listen", Module: "smc",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_smc"}}},
			{Name: "smc_connect", Module: "smc",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_smc"}}},
			{Name: "smc_accept", Module: "smc",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_smc"}}},
			{Name: "smc_close", Module: "smc",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_smc"}}},
		},
		Bugs: []BugInfo{
			{
				ID: "T3#8", Switch: "smc:clcsock_wmb", Module: "smc",
				Subsystem: "SMC", KernelVersion: "v6.7-rc8",
				Title: "BUG: unable to handle kernel NULL pointer dereference in connect",
				Type:  "S-S", Status: "Confirmed", Table: 3, OFencePattern: false,
			},
			{
				ID: "T3#10", Switch: "smc:fdinstall_rmb", Module: "smc",
				Subsystem: "SMC", KernelVersion: "v6.8-rc1",
				Title: "KASAN: null-ptr-deref Write in fput",
				Type:  "L-L", Status: "Confirmed", Table: 3, OFencePattern: true,
			},
		},
		Seeds: []string{
			"r0 = smc_socket()\nsmc_listen(r0)\nsmc_connect(r0)\n",
			"r0 = smc_socket()\nsmc_accept(r0)\nsmc_close(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &smcInstance{k: k, bugs: bugs}
			return Instance{
				"smc_socket":  in.socket,
				"smc_listen":  in.listen,
				"smc_connect": in.connect,
				"smc_accept":  in.accept,
				"smc_close":   in.close,
			}
		},
	})
}

func (in *smcInstance) socket(t *kernel.Task, args []uint64) uint64 {
	return in.res.add(t.Kzalloc(4))
}

// listen is the T3#8 publisher.
func (in *smcInstance) listen(t *kernel.Task, args []uint64) uint64 {
	smc, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("smc_listen")()
	clc := t.Kzalloc(1)
	t.Store(smcSiteClcTok, kernel.Field(clc, 0), 0x5afe)
	t.Store(smcSiteClcPub, kernel.Field(smc, 0), uint64(clc))
	if !in.bugs.Has("smc:clcsock_wmb") {
		t.Wmb(smcSiteWmb)
	}
	t.WriteOnce(smcSiteStatePub, kernel.Field(smc, 1), smcListen)
	return EOK
}

// connect is the T3#8 observer (the crash report names the syscall entry,
// "connect", as the paper's Table 3 does).
func (in *smcInstance) connect(t *kernel.Task, args []uint64) uint64 {
	smc, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("connect")()
	if t.ReadOnce(smcSiteConnSt, kernel.Field(smc, 1)) != smcListen {
		return EAGAIN
	}
	clc := t.Load(smcSiteConnClc, kernel.Field(smc, 0))
	return t.Load(smcSiteConnTok, kernel.Field(trace.Addr(clc), 0))
}

// accept is the T3#10 publisher: write-side ordering is CORRECT here (the
// bug is in the reader).
func (in *smcInstance) accept(t *kernel.Task, args []uint64) uint64 {
	smc, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("smc_accept")()
	file := t.Kzalloc(2)
	t.Store(smcSiteFileCnt, kernel.Field(file, 0), 1)
	t.Store(smcSiteFileMode, kernel.Field(file, 1), 3)
	t.Store(smcSiteFilePub, kernel.Field(smc, 2), uint64(file))
	t.Wmb(smcSiteAccWmb) // correct publisher barrier, always present
	t.WriteOnce(smcSiteAccFlag, kernel.Field(smc, 3), 1)
	return EOK
}

// close is the T3#10 reader: the missing smp_rmb() between the accepted
// flag and the file pointer loads is the bug (load-load reordering).
func (in *smcInstance) close(t *kernel.Task, args []uint64) uint64 {
	smc, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("smc_close")()
	acc := t.Load(smcSiteCloseAcc, kernel.Field(smc, 3))
	if acc == 0 {
		return EOK
	}
	if !in.bugs.Has("smc:fdinstall_rmb") {
		t.Rmb(smcSiteCloseRmb)
	}
	file := t.Load(smcSiteCloseF, kernel.Field(smc, 2))
	// fput(): drop the reference — a WRITE through the file pointer.
	defer t.Enter("fput")()
	t.Store(smcSiteFputW, kernel.Field(trace.Addr(file), 0), 0)
	return EOK
}
