package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// percpu models the lib/percpu_counter-style pattern of per-CPU write
// positions with a summation reader — the scenario class behind Table 4 #6:
// fast-path writers keep a position in a per-CPU slot so they never contend,
// a slow-path maintenance operation resets every CPU's slot and swaps the
// shared buffer underneath, and a statistics reader folds all CPUs' slots
// into one sum.
//
// The bug ("percpu:trim_order") removes the full barrier between the
// per-CPU position resets and the publication of the shrunk buffer. Like
// sbitmap, the race is migration-sensitive: a pinned fast-path writer
// resolves its own CPU's position slot and never observes the stale value
// the prefix left on another CPU. Only a writer that resolved its per-CPU
// address after migrating onto the prefix CPU — the Migration strategy's
// cross-CPU move — pairs the stale position with the new, smaller buffer:
// a slab-out-of-bounds WRITE (the dual of sbitmap's OOB read).
//
// Object layout:
//
//	ctr:       [0]=buf [1]=cap
//	buf:       kzalloc(cap) words
//	pos:       per-CPU, 1 word (next write index into buf)
var (
	pcSitePosLd    = site(0x46<<16+1, "pc_mark:this_cpu(pos)")
	pcSiteBuf      = site(0x46<<16+2, "pc_mark:ctr->buf")
	pcSiteSlot     = site(0x46<<16+3, "pc_mark:buf[pos]=v")
	pcSitePosSt    = site(0x46<<16+4, "pc_mark:this_cpu(pos)=next")
	pcSitePosReset = site(0x46<<16+5, "pc_trim:this_cpu(pos)=0")
	pcSiteTrimMb   = site(0x46<<16+6, "pc_trim:smp_mb")
	pcSiteBufPub   = site(0x46<<16+7, "pc_trim:ctr->buf=new")
	pcSiteCap      = site(0x46<<16+8, "pc_trim:ctr->cap=n")
	pcSiteSumLd    = site(0x46<<16+9, "pc_sum:load cpu pos")
)

type pcInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
	// pos holds the per-CPU write-position handle per counter (parallel
	// to res).
	pos []trace.Addr
}

func init() {
	register(&ModuleInfo{
		Name: "percpu",
		Defs: []*syzlang.SyscallDef{
			{Name: "pc_open", Module: "percpu", Ret: "pcctr"},
			{Name: "pc_mark", Module: "percpu",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "pcctr"}, syzlang.IntRange{Min: 1, Max: 7}}},
			{Name: "pc_trim", Module: "percpu",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "pcctr"}, syzlang.IntRange{Min: 1, Max: 3}}},
			{Name: "pc_sum", Module: "percpu",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "pcctr"}}},
		},
		Bugs: []BugInfo{
			{
				ID: "X#percpu", Switch: "percpu:trim_order", Module: "percpu",
				Subsystem: "lib/percpu", KernelVersion: "synthetic",
				Title: "KASAN: slab-out-of-bounds Write in pc_mark",
				Type:  "S-S", Table: 0, OFencePattern: false, Repro: "yes",
				Note:     "per-CPU write position raced across a migration; the OOB-write dual of T4#6.",
				Strategy: "migration",
			},
		},
		Seeds: []string{
			"r0 = pc_open()\npc_mark(r0, 0x5)\npc_mark(r0, 0x6)\npc_mark(r0, 0x7)\npc_trim(r0, 0x2)\npc_mark(r0, 0x4)\npc_sum(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &pcInstance{k: k, bugs: bugs}
			return Instance{
				"pc_open": in.pcOpen,
				"pc_mark": in.pcMark,
				"pc_trim": in.pcTrim,
				"pc_sum":  in.pcSum,
			}
		},
	})
}

func (in *pcInstance) pcOpen(t *kernel.Task, args []uint64) uint64 {
	ctr := t.Kzalloc(2)
	buf := t.Kzalloc(4)
	t.K.Mem.Write(kernel.Field(ctr, 0), uint64(buf))
	t.K.Mem.Write(kernel.Field(ctr, 1), 4)
	in.pos = append(in.pos, in.k.PerCPUAlloc(1))
	return in.res.add(ctr)
}

// pcMark is the fast-path writer: it records v at this CPU's position in
// the shared buffer and advances the position — no locks, no contention, by
// construction of the per-CPU slot.
func (in *pcInstance) pcMark(t *kernel.Task, args []uint64) uint64 {
	ctr, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("pc_mark")()
	pos := t.ThisCPUAddr(in.pos[int(args[0]-1)], 1)
	buf := t.ReadOnce(pcSiteBuf, kernel.Field(ctr, 0))
	i := t.Load(pcSitePosLd, pos)
	t.Store(pcSiteSlot, kernel.Field(trace.Addr(buf), int(i)), args[1])
	cap := t.K.Mem.Read(kernel.Field(ctr, 1))
	next := i + 1
	if next >= cap {
		next = 0
	}
	t.Store(pcSitePosSt, pos, next)
	return EOK
}

// pcTrim is the slow-path maintenance writer: it resets every CPU's
// position for the new capacity and installs a smaller buffer. The buggy
// ordering ("percpu:trim_order") lets the position resets be delayed past
// the buffer swap's commit, so a migrated fast-path writer pairs a stale
// large position with the new small buffer.
func (in *pcInstance) pcTrim(t *kernel.Task, args []uint64) uint64 {
	ctr, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	n := args[1]
	if n == 0 || n > 3 {
		return EINVAL
	}
	defer t.Enter("pc_trim")()
	buf := t.Kzalloc(int(n))
	base := in.pos[int(args[0]-1)]
	for cpu := 0; cpu < t.K.NrCPU(); cpu++ {
		t.Store(pcSitePosReset, base+trace.Addr(cpu*8), 0)
	}
	if !in.bugs.Has("percpu:trim_order") {
		t.Mb(pcSiteTrimMb)
	}
	t.Store(pcSiteBufPub, kernel.Field(ctr, 0), uint64(buf))
	t.Store(pcSiteCap, kernel.Field(ctr, 1), n)
	return EOK
}

// pcSum is the summation reader: it folds every CPU's position into one
// total, the percpu_counter_sum slow path. Read-only, so it can race with
// either writer without harm — it exists to give campaigns per-CPU load
// sites beyond the fast path. Other CPUs' slots are read with READ_ONCE,
// as the real slow path must (the owning CPU updates them concurrently).
func (in *pcInstance) pcSum(t *kernel.Task, args []uint64) uint64 {
	_, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("pc_sum")()
	base := in.pos[int(args[0]-1)]
	var sum uint64
	for cpu := 0; cpu < t.K.NrCPU(); cpu++ {
		sum += t.ReadOnce(pcSiteSumLd, base+trace.Addr(cpu*8))
	}
	return sum
}
