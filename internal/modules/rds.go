package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// rds reproduces the paper's Bug #1 (Fig. 8): the RDS connection path uses
// a hand-rolled bit lock — acquire_in_xmit() is !test_and_set_bit(IN_XMIT)
// and release_in_xmit() is clear_bit(IN_XMIT). clear_bit() carries NO
// ordering, so the critical section's stores may be delayed past the bit
// clear; a thread that then acquires the lock observes a half-updated
// transmit cursor and indexes past the staged message's scatter list:
// "KASAN: slab-out-of-bounds Read in rds_loop_xmit". The fix is
// clear_bit_unlock() (release semantics); the switch
// "rds:clear_bit_unlock" reverts it.
//
// Object layout:
//
//	conn: [0]=cp_flags (bit 0 = IN_XMIT) [1]=xmit_sg (cursor) [2]=xmit_rm (staged msg)
//	msg:  kmalloc(n) data words
//
// rds_sendmsg stages a message for the loop transport: it sets the cursor
// to the message's last scatter element, then publishes the message
// pointer, then drops IN_XMIT. rds_loop_xmit picks the staged message up
// and reads msg[cursor]. With the unordered clear_bit, OEMU can delay the
// cursor store past both the message publication and the bit clear: the
// loop transport then pairs a NEW (smaller) message with the OLD cursor.
const rdsInXmit = 0

var (
	rdsSiteTrySet   = site(rdsBase+1, "acquire_in_xmit:test_and_set_bit(IN_XMIT)")
	rdsSiteCursor   = site(rdsBase+2, "rds_send_xmit:cp->xmit_sg=n-1")
	rdsSiteFill     = site(rdsBase+3, "rds_send_xmit:rm->data[i]=payload")
	rdsSiteStage    = site(rdsBase+4, "rds_send_xmit:cp->xmit_rm=rm")
	rdsSiteClear    = site(rdsBase+5, "release_in_xmit:clear_bit(IN_XMIT)")
	rdsSiteLoopTry  = site(rdsBase+6, "rds_loop_xmit:test_and_set_bit(IN_XMIT)")
	rdsSiteLoopRm   = site(rdsBase+7, "rds_loop_xmit:rm=cp->xmit_rm")
	rdsSiteLoopSg   = site(rdsBase+8, "rds_loop_xmit:idx=cp->xmit_sg")
	rdsSiteLoopRead = site(rdsBase+9, "rds_loop_xmit:load rm->data[idx]")
	rdsSiteLoopDone = site(rdsBase+10, "rds_loop_xmit:cp->xmit_rm=0")
	rdsSiteLoopRel  = site(rdsBase+11, "rds_loop_xmit:clear_bit_unlock(IN_XMIT)")
)

type rdsInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
}

func init() {
	register(&ModuleInfo{
		Name: "rds",
		Defs: []*syzlang.SyscallDef{
			{Name: "rds_socket", Module: "rds", Ret: "sock_rds"},
			{Name: "rds_sendmsg", Module: "rds",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_rds"}, syzlang.IntRange{Min: 1, Max: 4}}},
			{Name: "rds_loop_xmit", Module: "rds",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "sock_rds"}}},
		},
		Bugs: []BugInfo{
			{
				ID: "T3#1", Switch: "rds:clear_bit_unlock", Module: "rds",
				Subsystem: "RDS", KernelVersion: "v6.7-rc8",
				Title: "KASAN: slab-out-of-bounds Read in rds_loop_xmit",
				Type:  "S-S", Status: "Fixed", Table: 3, OFencePattern: false,
				Note: "Fig. 8: custom bit lock released with unordered clear_bit; no data race, so race detectors cannot see it",
			},
		},
		Seeds: []string{
			"r0 = rds_socket()\nrds_sendmsg(r0, 0x4)\nrds_sendmsg(r0, 0x3)\nrds_loop_xmit(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &rdsInstance{k: k, bugs: bugs}
			return Instance{
				"rds_socket":    in.socket,
				"rds_sendmsg":   in.sendmsg,
				"rds_loop_xmit": in.loopXmit,
			}
		},
	})
}

func (in *rdsInstance) socket(t *kernel.Task, args []uint64) uint64 {
	conn := t.Kzalloc(3)
	return in.res.add(conn)
}

// sendmsg stages an n-word message under the IN_XMIT bit lock (Fig. 8 left,
// plus the staging protocol of rds_send_xmit).
func (in *rdsInstance) sendmsg(t *kernel.Task, args []uint64) uint64 {
	conn, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	n := args[1]
	if n == 0 || n > 4 {
		return EINVAL
	}
	defer t.Enter("rds_send_xmit")()
	// acquire_in_xmit(): Fig. 8 #2-#8.
	if t.TestAndSetBit(rdsSiteTrySet, rdsInXmit, kernel.Field(conn, 0)) {
		return EBUSY
	}
	rm := t.Kmalloc(int(n))
	for i := uint64(0); i < n; i++ {
		t.Store(rdsSiteFill, kernel.Field(rm, int(i)), 0xda7a_0000+i)
	}
	t.Store(rdsSiteCursor, kernel.Field(conn, 1), n-1)       // cp->xmit_sg = n-1
	t.Store(rdsSiteStage, kernel.Field(conn, 2), uint64(rm)) // cp->xmit_rm = rm
	// release_in_xmit(): Fig. 8 right. The buggy variant uses plain
	// clear_bit — no ordering against the critical section's stores.
	if in.bugs.Has("rds:clear_bit_unlock") {
		t.ClearBit(rdsSiteClear, rdsInXmit, kernel.Field(conn, 0))
	} else {
		t.ClearBitUnlock(rdsSiteClear, rdsInXmit, kernel.Field(conn, 0))
	}
	return EOK
}

// loopXmit is the loopback transport: it acquires IN_XMIT, consumes the
// staged message, and reads its scatter element at the cursor.
func (in *rdsInstance) loopXmit(t *kernel.Task, args []uint64) uint64 {
	conn, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("rds_loop_xmit")()
	if t.TestAndSetBit(rdsSiteLoopTry, rdsInXmit, kernel.Field(conn, 0)) {
		return EBUSY
	}
	var val uint64
	rm := t.Load(rdsSiteLoopRm, kernel.Field(conn, 2))
	if rm != 0 {
		idx := t.Load(rdsSiteLoopSg, kernel.Field(conn, 1))
		val = t.Load(rdsSiteLoopRead, kernel.Field(trace.Addr(rm), int(idx)))
		t.Store(rdsSiteLoopDone, kernel.Field(conn, 2), 0)
	}
	t.ClearBitUnlock(rdsSiteLoopRel, rdsInXmit, kernel.Field(conn, 0))
	return val
}
