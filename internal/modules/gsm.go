package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// gsm reproduces Table 3 bug #11: "BUG: unable to handle kernel NULL
// pointer dereference in gsm_dlci_config" (n_gsm TTY line discipline).
// Activating a DLCI stores the channel object into gsm->dlci[i] and then
// advances gsm->dlci_count with correct write ordering; gsm_dlci_config()
// reads the count and then the channel slot WITHOUT read ordering
// ("gsm:dlci_config_rmb") — load-load reordering lets it observe the new
// count with a stale NULL slot.
//
// Object layout:
//
//	gsm:  [0]=dlci_count [1..4]=dlci[0..3]
//	dlci: [0]=state [1]=mtu
const gsmMaxDLCI = 4

var (
	gsmSiteDlciState = site(gsmBase+1, "gsm_activate:dlci->state=OPEN")
	gsmSiteDlciMtu   = site(gsmBase+2, "gsm_activate:dlci->mtu=mtu")
	gsmSiteSlot      = site(gsmBase+3, "gsm_activate:gsm->dlci[i]=dlci")
	gsmSiteActWmb    = site(gsmBase+4, "gsm_activate:smp_wmb")
	gsmSiteCount     = site(gsmBase+5, "gsm_activate:gsm->dlci_count=i+1")
	gsmSiteCfgCount  = site(gsmBase+6, "gsm_dlci_config:gsm->dlci_count")
	gsmSiteCfgRmb    = site(gsmBase+7, "gsm_dlci_config:smp_rmb")
	gsmSiteCfgSlot   = site(gsmBase+8, "gsm_dlci_config:gsm->dlci[i]")
	gsmSiteCfgState  = site(gsmBase+9, "gsm_dlci_config:dlci->state")
	gsmSiteCfgMtu    = site(gsmBase+10, "gsm_dlci_config:dlci->mtu=v")
)

type gsmInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
}

func init() {
	register(&ModuleInfo{
		Name: "gsm",
		Defs: []*syzlang.SyscallDef{
			{Name: "gsm_open", Module: "gsm", Ret: "gsm_mux"},
			{Name: "gsm_activate", Module: "gsm",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "gsm_mux"}, syzlang.IntRange{Min: 0, Max: gsmMaxDLCI - 1}}},
			{Name: "gsm_dlci_config", Module: "gsm",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "gsm_mux"}, syzlang.IntRange{Min: 0, Max: gsmMaxDLCI - 1}, syzlang.IntRange{Min: 64, Max: 1500}}},
		},
		Bugs: []BugInfo{
			{
				ID: "T3#11", Switch: "gsm:dlci_config_rmb", Module: "gsm",
				Subsystem: "GSM", KernelVersion: "v6.8",
				Title: "BUG: unable to handle kernel NULL pointer dereference in gsm_dlci_config",
				Type:  "L-L", Status: "Confirmed", Table: 3, OFencePattern: true,
			},
		},
		Seeds: []string{
			"r0 = gsm_open()\ngsm_activate(r0, 0x0)\ngsm_dlci_config(r0, 0x0, 0x200)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &gsmInstance{k: k, bugs: bugs}
			return Instance{
				"gsm_open":        in.open,
				"gsm_activate":    in.activate,
				"gsm_dlci_config": in.config,
			}
		},
	})
}

func (in *gsmInstance) open(t *kernel.Task, args []uint64) uint64 {
	return in.res.add(t.Kzalloc(1 + gsmMaxDLCI))
}

// activate publishes a DLCI with correct write ordering (the bug is in the
// reader).
func (in *gsmInstance) activate(t *kernel.Task, args []uint64) uint64 {
	gsm, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	i := args[1]
	if i >= gsmMaxDLCI {
		return EINVAL
	}
	defer t.Enter("gsm_activate")()
	dlci := t.Kzalloc(2)
	t.Store(gsmSiteDlciState, kernel.Field(dlci, 0), 1)
	t.Store(gsmSiteDlciMtu, kernel.Field(dlci, 1), 64)
	t.Store(gsmSiteSlot, kernel.Field(gsm, 1+int(i)), uint64(dlci))
	t.Wmb(gsmSiteActWmb) // correct publisher barrier, always present
	t.Store(gsmSiteCount, kernel.Field(gsm, 0), i+1)
	return EOK
}

// config is the buggy reader: count load and slot load lack read ordering.
func (in *gsmInstance) config(t *kernel.Task, args []uint64) uint64 {
	gsm, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	i, mtu := args[1], args[2]
	if i >= gsmMaxDLCI {
		return EINVAL
	}
	defer t.Enter("gsm_dlci_config")()
	count := t.Load(gsmSiteCfgCount, kernel.Field(gsm, 0))
	if i >= count {
		return EINVAL
	}
	if !in.bugs.Has("gsm:dlci_config_rmb") {
		t.Rmb(gsmSiteCfgRmb)
	}
	dlci := t.Load(gsmSiteCfgSlot, kernel.Field(gsm, 1+int(i)))
	state := t.Load(gsmSiteCfgState, kernel.Field(trace.Addr(dlci), 0))
	if state != 1 {
		return EBUSY
	}
	t.Store(gsmSiteCfgMtu, kernel.Field(trace.Addr(dlci), 1), mtu)
	return EOK
}
