package modules

import (
	"ozz/internal/kernel"
	"ozz/internal/syzlang"
)

// seqtime exercises the seqlock substrate with a timekeeping-style two-word
// clock (sec, nsec) whose invariant nsec == 2*sec a torn read violates:
//
//   - time_update() advances the pair under write_seqcount (odd/even
//     sequence with smp_wmb on both sides);
//   - time_read() samples the pair under read_seqbegin/read_seqretry. The
//     CORRECT retry re-reads the sequence after an smp_rmb; the bug switch
//     "seqlock:retry_rmb" drops that barrier, letting the retry check
//     observe a stale (pre-update) sequence while the data loads saw a
//     torn mixture — a load-load reordering accepted as a consistent
//     snapshot. The torn pair trips the invariant assertion
//     ("kernel BUG: torn seqlock read in time_read").
//
// Object layout: clk: [0]=seq [1]=sec [2]=nsec [3]=writer lock
var (
	seqSiteWBegin = site(0x43<<16+1, "time_update:write_seqcount_begin")
	seqSiteSec    = site(0x43<<16+2, "time_update:clk->sec=s")
	seqSiteNsec   = site(0x43<<16+3, "time_update:clk->nsec=2s")
	seqSiteWEnd   = site(0x43<<16+4, "time_update:write_seqcount_end")
	seqSiteRBegin = site(0x43<<16+5, "time_read:read_seqbegin")
	seqSiteRSec   = site(0x43<<16+6, "time_read:load clk->sec")
	seqSiteRNsec  = site(0x43<<16+7, "time_read:load clk->nsec")
	seqSiteRetry  = site(0x43<<16+8, "time_read:read_seqretry")
	seqSiteLock   = site(0x43<<16+9, "time_update:write_seqlock spinlock")
)

// seqReadRetries bounds the reader's retry loop.
const seqReadRetries = 8

type seqInstance struct {
	k    *kernel.Kernel
	bugs BugSet
	res  resTable
}

func init() {
	register(&ModuleInfo{
		Name: "seqtime",
		Defs: []*syzlang.SyscallDef{
			{Name: "time_create", Module: "seqtime", Ret: "seq_clock"},
			{Name: "time_update", Module: "seqtime",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "seq_clock"}}},
			{Name: "time_read", Module: "seqtime",
				Args: []syzlang.ArgType{syzlang.ResourceArg{Kind: "seq_clock"}}},
		},
		Bugs: []BugInfo{
			{
				ID: "X#seq", Switch: "seqlock:retry_rmb", Module: "seqtime",
				Subsystem: "timekeeping", KernelVersion: "synthetic",
				Title: "kernel BUG: torn seqlock read in time_read",
				Type:  "L-L", Table: 0, OFencePattern: true, Repro: "yes",
				Note: "missing smp_rmb before read_seqretry's sequence re-read: the retry accepts a stale sequence over torn data",
			},
		},
		Seeds: []string{
			"r0 = time_create()\ntime_update(r0)\ntime_update(r0)\ntime_read(r0)\n",
		},
		New: func(k *kernel.Kernel, bugs BugSet) Instance {
			in := &seqInstance{k: k, bugs: bugs}
			return Instance{
				"time_create": in.create,
				"time_update": in.update,
				"time_read":   in.read,
			}
		},
	})
}

func (in *seqInstance) create(t *kernel.Task, args []uint64) uint64 {
	return in.res.add(t.Kzalloc(4))
}

func (in *seqInstance) update(t *kernel.Task, args []uint64) uint64 {
	clk, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("time_update")()
	// write_seqlock(): writers serialize on a spinlock before bumping the
	// sequence.
	t.SpinLock(seqSiteLock, kernel.Field(clk, 3), "seqtime_writer")
	defer t.SpinUnlock(seqSiteLock, kernel.Field(clk, 3))
	t.WriteSeqBegin(seqSiteWBegin, kernel.Field(clk, 0))
	sec := t.Load(seqSiteSec, kernel.Field(clk, 1)) + 1
	t.Store(seqSiteSec, kernel.Field(clk, 1), sec)
	t.Store(seqSiteNsec, kernel.Field(clk, 2), 2*sec)
	t.WriteSeqEnd(seqSiteWEnd, kernel.Field(clk, 0))
	return EOK
}

func (in *seqInstance) read(t *kernel.Task, args []uint64) uint64 {
	clk, ok := in.res.get(args[0])
	if !ok {
		return EBADF
	}
	defer t.Enter("time_read")()
	rmb := !in.bugs.Has("seqlock:retry_rmb")
	for try := 0; try < seqReadRetries; try++ {
		start := t.ReadSeqBegin(seqSiteRBegin, kernel.Field(clk, 0))
		sec := t.Load(seqSiteRSec, kernel.Field(clk, 1))
		nsec := t.Load(seqSiteRNsec, kernel.Field(clk, 2))
		if t.ReadSeqRetry(seqSiteRetry, kernel.Field(clk, 0), start, rmb) {
			continue // raced a writer: retry
		}
		t.Assert(nsec == 2*sec, "torn seqlock read")
		return sec
	}
	return EAGAIN
}
