package kmem

import (
	"testing"
	"testing/quick"

	"ozz/internal/trace"
)

func TestAllocValidAccess(t *testing.T) {
	m := New()
	a := m.Alloc(3)
	for i := 0; i < 3; i++ {
		if f := m.Check(1, a+trace.Addr(i*WordSize), trace.Load); f != nil {
			t.Fatalf("valid slot %d faulted: %v", i, f)
		}
	}
}

func TestAllocPoisonPattern(t *testing.T) {
	m := New()
	a := m.Alloc(1)
	if m.Read(a) != 0xdead4ead_deadbeef {
		t.Fatalf("kmalloc memory not poisoned: %#x", m.Read(a))
	}
	z := m.AllocZeroed(1)
	if m.Read(z) != 0 {
		t.Fatalf("kzalloc memory not zeroed: %#x", m.Read(z))
	}
}

func TestRedzoneOOB(t *testing.T) {
	m := New()
	a := m.Alloc(2)
	f := m.Check(1, a+2*WordSize, trace.Load) // one past the end
	if f == nil || f.Kind != FaultOOB {
		t.Fatalf("expected OOB at trailing redzone, got %v", f)
	}
	f = m.Check(1, a-WordSize, trace.Store) // one before the start
	if f == nil || f.Kind != FaultOOB {
		t.Fatalf("expected OOB at leading redzone, got %v", f)
	}
}

func TestUseAfterFree(t *testing.T) {
	m := New()
	a := m.Alloc(2)
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	f := m.Check(1, a, trace.Load)
	if f == nil || f.Kind != FaultUAF {
		t.Fatalf("expected UAF, got %v", f)
	}
	// Freed memory is poisoned.
	if m.Read(a) != 0xdeadbeef_deadbeef {
		t.Fatalf("freed memory not poisoned: %#x", m.Read(a))
	}
}

func TestInvalidFree(t *testing.T) {
	m := New()
	a := m.Alloc(2)
	if err := m.Free(a + WordSize); err == nil {
		t.Fatal("freeing interior pointer must fail")
	}
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(a); err == nil {
		t.Fatal("double free must fail")
	}
}

func TestNullAndWild(t *testing.T) {
	m := New()
	if f := m.Check(1, 0x10, trace.Load); f == nil || f.Kind != FaultNull {
		t.Fatalf("expected NULL fault, got %v", f)
	}
	if f := m.Check(1, NullPage+8, trace.Store); f == nil || f.Kind != FaultWild {
		t.Fatalf("expected wild fault, got %v", f)
	}
}

func TestSanitizeOff(t *testing.T) {
	m := New()
	m.Sanitize = false
	if f := m.Check(1, 0, trace.Load); f != nil {
		t.Fatalf("sanitize off must not fault: %v", f)
	}
}

func TestQuarantineEviction(t *testing.T) {
	m := New()
	first := m.Alloc(1)
	if err := m.Free(first); err != nil {
		t.Fatal(err)
	}
	// Overflow the quarantine.
	for i := 0; i < 100; i++ {
		a := m.Alloc(1)
		if err := m.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	// The first object left quarantine: its slots are unmapped now (a
	// wild fault, no longer a precise UAF).
	f := m.Check(1, first, trace.Load)
	if f == nil || f.Kind != FaultUAF {
		if f == nil || f.Kind != FaultWild {
			t.Fatalf("expected wild/unmapped after eviction, got %v", f)
		}
	}
}

func TestStats(t *testing.T) {
	m := New()
	a := m.Alloc(1)
	m.AllocZeroed(2)
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	allocs, frees := m.Stats()
	if allocs != 2 || frees != 1 {
		t.Fatalf("stats = %d/%d, want 2/1", allocs, frees)
	}
}

// TestPropertyAllocationsDisjoint: any sequence of allocations yields
// non-overlapping objects, all valid, each bounded by redzones.
func TestPropertyAllocationsDisjoint(t *testing.T) {
	f := func(sizes []uint8) bool {
		m := New()
		type obj struct {
			base trace.Addr
			n    int
		}
		var objs []obj
		for _, s := range sizes {
			n := int(s%8) + 1
			objs = append(objs, obj{m.Alloc(n), n})
		}
		seen := map[trace.Addr]bool{}
		for _, o := range objs {
			for i := 0; i < o.n; i++ {
				a := o.base + trace.Addr(i*WordSize)
				if seen[a] || m.Check(1, a, trace.Load) != nil {
					return false
				}
				seen[a] = true
			}
			if m.Check(1, o.base+trace.Addr(o.n*WordSize), trace.Load) == nil {
				return false // trailing redzone must fault
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyReadAfterWrite: the memory is a map — writes are always
// visible to subsequent reads at the same address.
func TestPropertyReadAfterWrite(t *testing.T) {
	f := func(addr uint32, v uint64) bool {
		m := New()
		a := trace.Addr(addr)
		m.Write(a, v)
		return m.Read(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFaultStrings(t *testing.T) {
	f := &Fault{Kind: FaultOOB, Addr: 0x100, Acc: trace.Store, Instr: 7}
	if got := f.Error(); got == "" || got[:len("slab-out-of-bounds")] != "slab-out-of-bounds" {
		t.Fatalf("Error() = %q", got)
	}
	for k, want := range map[FaultKind]string{
		FaultNone: "none", FaultNull: "null-ptr-deref",
		FaultWild: "general-protection-fault", FaultUAF: "use-after-free",
	} {
		if k.String() != want {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
	for s, want := range map[SlotState]string{
		Unmapped: "unmapped", Valid: "valid", Redzone: "redzone", Freed: "freed",
	} {
		if s.String() != want {
			t.Errorf("%v.String() = %q", s, s.String())
		}
	}
}

func TestObjectWords(t *testing.T) {
	m := New()
	a := m.Alloc(3)
	if m.ObjectWords(a) != 3 || m.ObjectWords(a+8) != 0 {
		t.Fatal("ObjectWords broken")
	}
	m.Free(a)
	if m.ObjectWords(a) != 0 {
		t.Fatal("freed object still reported live")
	}
}

func TestZeroSizeAllocRoundsUp(t *testing.T) {
	m := New()
	a := m.Alloc(0)
	if m.Check(1, a, trace.Load) != nil {
		t.Fatal("zero-size alloc unusable")
	}
	if m.Check(1, a+WordSize, trace.Load) == nil {
		t.Fatal("zero-size alloc larger than one word")
	}
}
