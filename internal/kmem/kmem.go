// Package kmem implements the simulated kernel memory: a word-addressed
// address space, a slab-style allocator, and a KASAN-like sanitizer
// (redzones, a free quarantine, and null/wild pointer detection).
//
// All shared state of the simulated kernel lives in this memory. OEMU
// (package oemu) interposes on every access to this memory to emulate
// out-of-order execution; the sanitizer here provides the in-kernel
// bug-detecting oracle the paper's in-vivo design relies on (§3).
package kmem

import (
	"fmt"

	"ozz/internal/trace"
)

// WordSize is the size in bytes of one addressable slot.
const WordSize = 8

// NullPage is the size of the unmapped page at address zero. Any access
// below this address is a NULL pointer dereference.
const NullPage trace.Addr = 0x1000

// heapBase is the first address handed out by the allocator. The gap between
// NullPage and heapBase is unmapped ("wild") address space.
const heapBase trace.Addr = 0x10000

// SlotState describes the sanitizer state of one memory word.
type SlotState uint8

const (
	// Unmapped: never allocated. Access is a wild-pointer fault (or a NULL
	// dereference if below NullPage).
	Unmapped SlotState = iota
	// Valid: inside a live allocation (or statically mapped). Access OK.
	Valid
	// Redzone: guard slot adjacent to an allocation. Access is
	// out-of-bounds.
	Redzone
	// Freed: inside a freed allocation still in quarantine. Access is a
	// use-after-free.
	Freed
)

// String returns the KASAN-style name of the state.
func (s SlotState) String() string {
	switch s {
	case Unmapped:
		return "unmapped"
	case Valid:
		return "valid"
	case Redzone:
		return "redzone"
	case Freed:
		return "freed"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// FaultKind classifies a detected invalid access.
type FaultKind uint8

const (
	// FaultNone means the access was valid.
	FaultNone FaultKind = iota
	// FaultNull is a NULL pointer dereference (address inside the null
	// page). Title format mirrors Linux: "BUG: unable to handle kernel
	// NULL pointer dereference".
	FaultNull
	// FaultWild is an access to unmapped memory outside the null page
	// ("general protection fault").
	FaultWild
	// FaultOOB is a redzone access ("KASAN: slab-out-of-bounds").
	FaultOOB
	// FaultUAF is an access to freed memory ("KASAN: use-after-free" /
	// "KASAN: null-ptr-deref" depending on context).
	FaultUAF
)

// String returns the oracle name of the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultNull:
		return "null-ptr-deref"
	case FaultWild:
		return "general-protection-fault"
	case FaultOOB:
		return "slab-out-of-bounds"
	case FaultUAF:
		return "use-after-free"
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Fault describes an invalid memory access detected by the sanitizer.
type Fault struct {
	Kind  FaultKind
	Addr  trace.Addr
	Acc   trace.AccessKind
	Instr trace.InstrID
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("%s %s at 0x%x (instr %d)", f.Kind, f.Acc, uint64(f.Addr), f.Instr)
}

// object tracks one live or quarantined allocation.
type object struct {
	base  trace.Addr // first data word
	words int        // data words (excluding redzones)
}

// pageWords is the number of 64-bit slots per storage page. Pages keep the
// hot paths (Read/Write/Check) off Go maps: one map lookup per page, array
// indexing within.
const pageWords = 512

// page is one storage unit: values plus per-slot sanitizer state.
type page struct {
	vals  [pageWords]uint64
	state [pageWords]SlotState
}

// Memory is the simulated kernel address space plus its sanitizer state.
// It is not safe for concurrent use; the deterministic scheduler guarantees
// a single running task.
type Memory struct {
	pages map[uint64]*page
	// lastIdx/lastPage cache the most recently touched page (locality is
	// near-perfect: objects are contiguous).
	lastIdx  uint64
	lastPage *page

	next    trace.Addr // allocator bump pointer
	objects map[trace.Addr]*object

	quarantine    []*object
	quarantineCap int

	// Sanitize toggles access checking. It is on by default; Table 5's
	// uninstrumented baseline turns it off together with OEMU.
	Sanitize bool

	allocs, frees uint64
}

// New returns an empty memory with sanitizing enabled.
func New() *Memory {
	return &Memory{
		pages:         make(map[uint64]*page),
		next:          heapBase,
		objects:       make(map[trace.Addr]*object),
		quarantineCap: 64,
		Sanitize:      true,
	}
}

// Reset returns the memory to its freshly-constructed state — empty
// allocator, clean sanitizer state, sanitizing on — while retaining the
// page storage already allocated, so a recycled Memory serves its next
// execution without rebuilding pages. A reset Memory is observationally
// identical to New(): every slot reads 0 and is Unmapped, the bump pointer
// restarts at heapBase, and the quarantine is empty.
func (m *Memory) Reset() {
	for _, p := range m.pages {
		*p = page{}
	}
	m.lastIdx, m.lastPage = 0, nil
	m.next = heapBase
	clear(m.objects)
	for i := range m.quarantine {
		m.quarantine[i] = nil
	}
	m.quarantine = m.quarantine[:0]
	m.Sanitize = true
	m.allocs, m.frees = 0, 0
}

// pageFor returns the page containing addr, allocating it if needed.
func (m *Memory) pageFor(addr trace.Addr) (*page, int) {
	word := uint64(addr) / WordSize
	idx, off := word/pageWords, int(word%pageWords)
	if m.lastPage != nil && m.lastIdx == idx {
		return m.lastPage, off
	}
	p := m.pages[idx]
	if p == nil {
		p = &page{}
		m.pages[idx] = p
	}
	m.lastIdx, m.lastPage = idx, p
	return p, off
}

// Stats reports allocation counters (used by examples and tests).
func (m *Memory) Stats() (allocs, frees uint64) { return m.allocs, m.frees }

// Alloc allocates n words surrounded by one redzone word on each side and
// returns the address of the first data word. Memory content is NOT zeroed:
// it holds whatever garbage pattern Poison writes, mirroring kmalloc.
func (m *Memory) Alloc(n int) trace.Addr {
	if n <= 0 {
		n = 1
	}
	m.setState(m.next, Redzone) // leading redzone
	m.next += WordSize
	base := m.next
	for i := 0; i < n; i++ {
		a := base + trace.Addr(i*WordSize)
		m.setState(a, Valid)
		// kmalloc does not zero: poison with a recognizable pattern.
		m.Write(a, 0xdead4ead_deadbeef)
	}
	m.next += trace.Addr(n * WordSize)
	m.setState(m.next, Redzone) // trailing redzone
	m.next += WordSize
	m.objects[base] = &object{base: base, words: n}
	m.allocs++
	return base
}

// setState updates one slot's sanitizer state.
func (m *Memory) setState(addr trace.Addr, st SlotState) {
	p, off := m.pageFor(addr)
	p.state[off] = st
}

// AllocZeroed is kzalloc: Alloc plus zeroing.
func (m *Memory) AllocZeroed(n int) trace.Addr {
	a := m.Alloc(n)
	for i := 0; i < n; i++ {
		m.Write(a+trace.Addr(i*WordSize), 0)
	}
	return a
}

// Free releases the object at base. The object enters the quarantine:
// its slots are marked Freed (any later access is a use-after-free) until
// the quarantine overflows, at which point the slots become reusable.
// Freeing an address that is not a live object base is an invalid free.
func (m *Memory) Free(base trace.Addr) error {
	obj, ok := m.objects[base]
	if !ok {
		return fmt.Errorf("invalid-free at 0x%x", uint64(base))
	}
	delete(m.objects, base)
	for i := 0; i < obj.words; i++ {
		a := base + trace.Addr(i*WordSize)
		m.setState(a, Freed)
		m.Write(a, 0xdeadbeef_deadbeef) // poison freed memory
	}
	m.quarantine = append(m.quarantine, obj)
	m.frees++
	if len(m.quarantine) > m.quarantineCap {
		old := m.quarantine[0]
		m.quarantine = m.quarantine[1:]
		for i := 0; i < old.words; i++ {
			m.setState(old.base+trace.Addr(i*WordSize), Unmapped)
		}
	}
	return nil
}

// ObjectWords returns the size in words of the live object at base, or 0.
func (m *Memory) ObjectWords(base trace.Addr) int {
	if obj, ok := m.objects[base]; ok {
		return obj.words
	}
	return 0
}

// Check validates an access against the sanitizer state. It returns nil if
// the access is valid or sanitizing is disabled.
func (m *Memory) Check(instr trace.InstrID, addr trace.Addr, kind trace.AccessKind) *Fault {
	if !m.Sanitize {
		return nil
	}
	if addr < NullPage {
		return &Fault{Kind: FaultNull, Addr: addr, Acc: kind, Instr: instr}
	}
	p, off := m.pageFor(addr)
	switch p.state[off] {
	case Valid:
		return nil
	case Redzone:
		return &Fault{Kind: FaultOOB, Addr: addr, Acc: kind, Instr: instr}
	case Freed:
		return &Fault{Kind: FaultUAF, Addr: addr, Acc: kind, Instr: instr}
	default:
		return &Fault{Kind: FaultWild, Addr: addr, Acc: kind, Instr: instr}
	}
}

// Read returns the committed value at addr. It performs no sanitizer check;
// callers (OEMU / the kernel access layer) check first.
func (m *Memory) Read(addr trace.Addr) uint64 {
	p, off := m.pageFor(addr)
	return p.vals[off]
}

// Write commits a value at addr. No sanitizer check (see Read).
func (m *Memory) Write(addr trace.Addr, v uint64) {
	p, off := m.pageFor(addr)
	p.vals[off] = v
}

// State exposes the sanitizer state of a slot (for tests and reports).
func (m *Memory) State(addr trace.Addr) SlotState {
	p, off := m.pageFor(addr)
	return p.state[off]
}
