// Package syzlang is a miniature of syzkaller's Syzlang (§4.2): system-call
// templates with typed arguments and resources, plus program generation,
// mutation, and (de)serialization. OZZ's first phase draws single-threaded
// inputs (STIs) from these templates, preserving resource dependencies
// across calls (e.g. get a socket from tls_socket and pass it to
// tls_setsockopt).
package syzlang

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// ResourceKind names a kernel resource type flowing between calls (a file
// descriptor, a socket, a queue id, ...).
type ResourceKind string

// ArgType describes one argument slot of a syscall template.
type ArgType interface {
	// Generate draws a concrete argument for this slot.
	generate(r *rand.Rand) uint64
	// String renders the type for template listings.
	String() string
}

// IntRange is an integer argument drawn uniformly from [Min, Max].
type IntRange struct {
	Min, Max uint64
}

func (a IntRange) generate(r *rand.Rand) uint64 {
	if a.Max <= a.Min {
		return a.Min
	}
	return a.Min + uint64(r.Int63n(int64(a.Max-a.Min+1)))
}

// String implements ArgType.
func (a IntRange) String() string { return fmt.Sprintf("int[%d:%d]", a.Min, a.Max) }

// Flags is an argument drawn from a fixed value set.
type Flags struct {
	Vals []uint64
}

func (a Flags) generate(r *rand.Rand) uint64 {
	if len(a.Vals) == 0 {
		return 0
	}
	return a.Vals[r.Intn(len(a.Vals))]
}

// String implements ArgType.
func (a Flags) String() string { return fmt.Sprintf("flags%v", a.Vals) }

// ResourceArg is an argument that must be the result of an earlier call
// producing Kind.
type ResourceArg struct {
	Kind ResourceKind
}

func (a ResourceArg) generate(r *rand.Rand) uint64 { return 0 }

// String implements ArgType.
func (a ResourceArg) String() string { return string(a.Kind) }

// SyscallDef is one template.
type SyscallDef struct {
	// Name is globally unique, e.g. "tls_setsockopt".
	Name string
	// Module is the subsystem providing the call.
	Module string
	// Args are the argument slots.
	Args []ArgType
	// Ret, when non-empty, is the resource kind the call produces.
	Ret ResourceKind
}

// String renders the template signature.
func (d *SyscallDef) String() string {
	parts := make([]string, len(d.Args))
	for i, a := range d.Args {
		parts[i] = a.String()
	}
	sig := fmt.Sprintf("%s(%s)", d.Name, strings.Join(parts, ", "))
	if d.Ret != "" {
		sig += " -> " + string(d.Ret)
	}
	return sig
}

// Arg is a concrete argument of a generated call: either a constant or a
// reference to the result of an earlier call in the program.
type Arg struct {
	Res bool
	// Ref is the index of the producing call when Res.
	Ref int
	// Val is the constant value when !Res.
	Val uint64
}

// Call is one concrete system call of a program.
type Call struct {
	Def  *SyscallDef
	Args []Arg
}

// Program is a single-threaded input (STI): a sequence of calls whose
// resource references point backwards.
type Program struct {
	Calls []Call
}

// Clone deep-copies the program.
func (p *Program) Clone() *Program {
	q := &Program{Calls: make([]Call, len(p.Calls))}
	for i, c := range p.Calls {
		args := make([]Arg, len(c.Args))
		copy(args, c.Args)
		q.Calls[i] = Call{Def: c.Def, Args: args}
	}
	return q
}

// Key returns a canonical serialization of the program for use as a cache
// key: two programs produce the same key iff they have the same call
// sequence with the same constant arguments and resource wiring — exactly
// the condition under which a deterministic execution environment yields
// identical results. It is cheaper than String (no assignment prefixes,
// no formatting verbs) but just as injective.
func (p *Program) Key() string {
	var sb strings.Builder
	sb.Grow(len(p.Calls) * 32)
	for _, c := range p.Calls {
		sb.WriteString(c.Def.Name)
		sb.WriteByte('(')
		for j, a := range c.Args {
			if j > 0 {
				sb.WriteByte(',')
			}
			if a.Res {
				sb.WriteByte('r')
				sb.WriteString(strconv.Itoa(a.Ref))
			} else {
				sb.WriteString(strconv.FormatUint(a.Val, 16))
			}
		}
		sb.WriteString(")\n")
	}
	return sb.String()
}

// String serializes the program in a syzlang-like text form:
//
//	r0 = tls_socket()
//	tls_setsockopt(r0, 0x1)
func (p *Program) String() string {
	var sb strings.Builder
	for i, c := range p.Calls {
		if c.Def.Ret != "" {
			fmt.Fprintf(&sb, "r%d = ", i)
		}
		parts := make([]string, len(c.Args))
		for j, a := range c.Args {
			if a.Res {
				parts[j] = fmt.Sprintf("r%d", a.Ref)
			} else {
				parts[j] = fmt.Sprintf("0x%x", a.Val)
			}
		}
		fmt.Fprintf(&sb, "%s(%s)\n", c.Def.Name, strings.Join(parts, ", "))
	}
	return sb.String()
}

// Target is a set of syscall templates available for generation — the
// paper's "predefined templates written in Syzlang".
type Target struct {
	Defs   []*SyscallDef
	byName map[string]*SyscallDef
	// producers[kind] lists defs returning the resource kind.
	producers map[ResourceKind][]*SyscallDef
}

// NewTarget builds a target from templates.
func NewTarget(defs []*SyscallDef) *Target {
	t := &Target{
		Defs:      defs,
		byName:    make(map[string]*SyscallDef),
		producers: make(map[ResourceKind][]*SyscallDef),
	}
	for _, d := range defs {
		t.byName[d.Name] = d
		if d.Ret != "" {
			t.producers[d.Ret] = append(t.producers[d.Ret], d)
		}
	}
	return t
}

// Lookup returns the template by name, or nil.
func (t *Target) Lookup(name string) *SyscallDef { return t.byName[name] }

// Names returns all template names, sorted.
func (t *Target) Names() []string {
	names := make([]string, 0, len(t.byName))
	for n := range t.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// appendCall appends a concrete instance of def, first recursively appending
// producer calls for any resource argument that has no in-scope producer.
// depth bounds producer recursion.
func (t *Target) appendCall(p *Program, def *SyscallDef, r *rand.Rand, depth int) {
	args := make([]Arg, len(def.Args))
	for i, at := range def.Args {
		ra, ok := at.(ResourceArg)
		if !ok {
			args[i] = Arg{Val: at.generate(r)}
			continue
		}
		// Find an existing producer result, or create one.
		var cands []int
		for ci, c := range p.Calls {
			if c.Def.Ret == ra.Kind {
				cands = append(cands, ci)
			}
		}
		if len(cands) == 0 && depth > 0 {
			prods := t.producers[ra.Kind]
			if len(prods) > 0 {
				prod := prods[r.Intn(len(prods))]
				t.appendCall(p, prod, r, depth-1)
				cands = append(cands, len(p.Calls)-1)
			}
		}
		if len(cands) == 0 {
			args[i] = Arg{Val: 0} // no producer available: pass 0
			continue
		}
		args[i] = Arg{Res: true, Ref: cands[r.Intn(len(cands))]}
	}
	p.Calls = append(p.Calls, Call{Def: def, Args: args})
}

// Generate draws a random program of roughly n calls (producer insertion
// may add a few more).
func (t *Target) Generate(r *rand.Rand, n int) *Program {
	return t.generateFrom(r, n, t.Defs)
}

// GenerateFocused draws a program from a single module's templates —
// syzkaller's call-selection priorities similarly bias programs toward
// related calls, which is what makes concurrent pairs share state.
func (t *Target) GenerateFocused(r *rand.Rand, n int, module string) *Program {
	var defs []*SyscallDef
	for _, d := range t.Defs {
		if d.Module == module {
			defs = append(defs, d)
		}
	}
	if len(defs) == 0 {
		defs = t.Defs
	}
	return t.generateFrom(r, n, defs)
}

// Modules lists the distinct module names of the target's templates.
func (t *Target) Modules() []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range t.Defs {
		if !seen[d.Module] {
			seen[d.Module] = true
			out = append(out, d.Module)
		}
	}
	sort.Strings(out)
	return out
}

func (t *Target) generateFrom(r *rand.Rand, n int, defs []*SyscallDef) *Program {
	p := &Program{}
	for len(p.Calls) < n {
		def := defs[r.Intn(len(defs))]
		t.appendCall(p, def, r, 2)
	}
	return p
}

// Mutate returns a mutated copy of p: one of inserting a call, deleting a
// call (fixing up references), or mutating a constant argument.
func (t *Target) Mutate(r *rand.Rand, p *Program) *Program {
	q := p.Clone()
	switch op := r.Intn(3); {
	case op == 0 || len(q.Calls) == 0:
		def := t.Defs[r.Intn(len(t.Defs))]
		t.appendCall(q, def, r, 2)
	case op == 1 && len(q.Calls) > 1:
		t.deleteCall(q, r.Intn(len(q.Calls)))
	default:
		ci := r.Intn(len(q.Calls))
		c := &q.Calls[ci]
		if len(c.Args) > 0 {
			ai := r.Intn(len(c.Args))
			if !c.Args[ai].Res {
				c.Args[ai].Val = c.Def.Args[ai].generate(r)
			}
		}
	}
	return q
}

// deleteCall removes call di, dropping dependent references (they become
// constant 0, mirroring syzkaller's arg fixup).
func (t *Target) deleteCall(p *Program, di int) {
	calls := append(p.Calls[:di:di], p.Calls[di+1:]...)
	for ci := range calls {
		for ai := range calls[ci].Args {
			a := &calls[ci].Args[ai]
			if !a.Res {
				continue
			}
			switch {
			case a.Ref == di:
				*a = Arg{Val: 0}
			case a.Ref > di:
				a.Ref--
			}
		}
	}
	p.Calls = calls
}

// Parse deserializes the text form produced by Program.String. It is used
// for seed corpora (§6.1: "we use seeds provided by Syzkaller").
func (t *Target) Parse(src string) (*Program, error) {
	p := &Program{}
	retIdx := make(map[string]int)
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rest := line
		var retName string
		if eq := strings.Index(line, "="); eq >= 0 && strings.HasPrefix(line, "r") {
			retName = strings.TrimSpace(line[:eq])
			rest = strings.TrimSpace(line[eq+1:])
		}
		open := strings.Index(rest, "(")
		close := strings.LastIndex(rest, ")")
		if open < 0 || close < open {
			return nil, fmt.Errorf("line %d: malformed call %q", ln+1, line)
		}
		name := strings.TrimSpace(rest[:open])
		def := t.byName[name]
		if def == nil {
			return nil, fmt.Errorf("line %d: unknown syscall %q", ln+1, name)
		}
		var args []Arg
		inner := strings.TrimSpace(rest[open+1 : close])
		if inner != "" {
			for _, tok := range strings.Split(inner, ",") {
				tok = strings.TrimSpace(tok)
				if strings.HasPrefix(tok, "r") {
					idx, ok := retIdx[tok]
					if !ok {
						return nil, fmt.Errorf("line %d: undefined resource %q", ln+1, tok)
					}
					args = append(args, Arg{Res: true, Ref: idx})
					continue
				}
				v, err := strconv.ParseUint(strings.TrimPrefix(tok, "0x"), 16, 64)
				if err != nil {
					v, err = strconv.ParseUint(tok, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("line %d: bad value %q", ln+1, tok)
					}
				}
				args = append(args, Arg{Val: v})
			}
		}
		if len(args) != len(def.Args) {
			return nil, fmt.Errorf("line %d: %s wants %d args, got %d", ln+1, name, len(def.Args), len(args))
		}
		p.Calls = append(p.Calls, Call{Def: def, Args: args})
		if retName != "" {
			retIdx[retName] = len(p.Calls) - 1
		}
	}
	return p, nil
}
