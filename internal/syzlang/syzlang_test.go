package syzlang

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testTarget() *Target {
	return NewTarget([]*SyscallDef{
		{Name: "sock_open", Module: "m", Ret: "sock"},
		{Name: "sock_bind", Module: "m",
			Args: []ArgType{ResourceArg{Kind: "sock"}, IntRange{Min: 1, Max: 10}}},
		{Name: "sock_send", Module: "m",
			Args: []ArgType{ResourceArg{Kind: "sock"}, Flags{Vals: []uint64{1, 2, 4}}}},
		{Name: "queue_make", Module: "m", Ret: "queue"},
		{Name: "queue_push", Module: "m",
			Args: []ArgType{ResourceArg{Kind: "queue"}, ResourceArg{Kind: "sock"}}},
	})
}

// valid checks a program's structural invariants: resource refs point
// backwards at producers of the right kind.
func valid(t *Target, p *Program) bool {
	for ci, c := range p.Calls {
		if len(c.Args) != len(c.Def.Args) {
			return false
		}
		for ai, a := range c.Args {
			if !a.Res {
				continue
			}
			ra, ok := c.Def.Args[ai].(ResourceArg)
			if !ok || a.Ref >= ci || a.Ref < 0 {
				return false
			}
			if p.Calls[a.Ref].Def.Ret != ra.Kind {
				return false
			}
		}
	}
	return true
}

// TestGenerateValid: generated programs always respect resource
// dependencies (the paper's "valid STIs").
func TestGenerateValid(t *testing.T) {
	tg := testTarget()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := tg.Generate(r, 5)
		if !valid(tg, p) {
			t.Fatalf("invalid program:\n%s", p)
		}
		if len(p.Calls) < 5 {
			t.Fatalf("short program: %d calls", len(p.Calls))
		}
	}
}

// TestGenerateInsertsProducers: a call needing a resource gets a producer
// prepended automatically.
func TestGenerateInsertsProducers(t *testing.T) {
	tg := testTarget()
	r := rand.New(rand.NewSource(2))
	sawProducer := false
	for i := 0; i < 50; i++ {
		p := &Program{}
		tg.appendCall(p, tg.Lookup("queue_push"), r, 2)
		if len(p.Calls) >= 3 && p.Calls[len(p.Calls)-1].Def.Name == "queue_push" {
			sawProducer = true
			if !valid(tg, p) {
				t.Fatalf("invalid producer chain:\n%s", p)
			}
		}
	}
	if !sawProducer {
		t.Fatal("producers never inserted")
	}
}

// TestMutatePreservesValidity: any chain of mutations keeps the program
// valid.
func TestMutatePreservesValidity(t *testing.T) {
	tg := testTarget()
	r := rand.New(rand.NewSource(3))
	p := tg.Generate(r, 4)
	for i := 0; i < 300; i++ {
		p = tg.Mutate(r, p)
		if !valid(tg, p) {
			t.Fatalf("mutation %d broke validity:\n%s", i, p)
		}
	}
}

// TestSerializeRoundTrip: String -> Parse is the identity on structure.
func TestSerializeRoundTrip(t *testing.T) {
	tg := testTarget()
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		p := tg.Generate(r, 4)
		q, err := tg.Parse(p.String())
		if err != nil {
			t.Fatalf("parse failed: %v\n%s", err, p)
		}
		if p.String() != q.String() {
			t.Fatalf("round trip mismatch:\n%s\nvs\n%s", p, q)
		}
	}
}

// TestParseErrors: malformed sources are rejected with useful errors.
func TestParseErrors(t *testing.T) {
	tg := testTarget()
	cases := []struct {
		src, want string
	}{
		{"nonsense(", "malformed"},
		{"no_such_call()", "unknown syscall"},
		{"sock_bind(r9, 0x1)", "undefined resource"},
		{"sock_bind(0x0)", "wants 2 args"},
		{"sock_bind(0x0, zz)", "bad value"},
	}
	for _, c := range cases {
		if _, err := tg.Parse(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

// TestParseComments: comments and blank lines are ignored.
func TestParseComments(t *testing.T) {
	tg := testTarget()
	p, err := tg.Parse("# seed\n\nr0 = sock_open()\n# mid\nsock_bind(r0, 0x5)\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Calls) != 2 {
		t.Fatalf("calls = %d", len(p.Calls))
	}
}

// TestDeleteCallFixesRefs: removing a producer rewrites dependent args to
// constants and shifts later refs.
func TestDeleteCallFixesRefs(t *testing.T) {
	tg := testTarget()
	p, err := tg.Parse("r0 = sock_open()\nr1 = sock_open()\nsock_bind(r1, 0x2)\n")
	if err != nil {
		t.Fatal(err)
	}
	tg.deleteCall(p, 0)
	if !valid(tg, p) {
		t.Fatalf("delete broke validity:\n%s", p)
	}
	if len(p.Calls) != 2 || !p.Calls[1].Args[0].Res || p.Calls[1].Args[0].Ref != 0 {
		t.Fatalf("refs not shifted:\n%s", p)
	}
	tg.deleteCall(p, 0)
	if p.Calls[0].Args[0].Res {
		t.Fatalf("dangling ref not cleared:\n%s", p)
	}
}

// TestCloneIndependence: mutating a clone leaves the original untouched.
func TestCloneIndependence(t *testing.T) {
	tg := testTarget()
	p, _ := tg.Parse("r0 = sock_open()\nsock_bind(r0, 0x2)\n")
	q := p.Clone()
	q.Calls[1].Args[1].Val = 99
	if p.Calls[1].Args[1].Val == 99 {
		t.Fatal("clone aliases the original")
	}
}

// TestArgGeneration: generated constants respect their types.
func TestArgGeneration(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ir := IntRange{Min: 3, Max: 7}
	for i := 0; i < 100; i++ {
		if v := ir.generate(r); v < 3 || v > 7 {
			t.Fatalf("IntRange generated %d", v)
		}
	}
	fl := Flags{Vals: []uint64{8, 16}}
	for i := 0; i < 100; i++ {
		if v := fl.generate(r); v != 8 && v != 16 {
			t.Fatalf("Flags generated %d", v)
		}
	}
}

// TestPropertyGenerateMutateParse: the full pipeline holds for arbitrary
// seeds.
func TestPropertyGenerateMutateParse(t *testing.T) {
	tg := testTarget()
	f := func(seed int64, muts uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := tg.Generate(r, 3)
		for i := 0; i < int(muts%10); i++ {
			p = tg.Mutate(r, p)
		}
		if !valid(tg, p) {
			return false
		}
		q, err := tg.Parse(p.String())
		return err == nil && q.String() == p.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestNames lists templates deterministically.
func TestNames(t *testing.T) {
	tg := testTarget()
	names := tg.Names()
	if len(names) != 5 || names[0] != "queue_make" {
		t.Fatalf("names = %v", names)
	}
}
