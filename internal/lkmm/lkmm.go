// Package lkmm validates OEMU's compliance with the Linux Kernel Memory
// Model (§3.3, appendix §10.1) through litmus tests. A litmus test is a
// small multi-threaded program over a handful of shared locations; the
// engine exhaustively enumerates every thread interleaving AND every OEMU
// directive assignment (which stores to delay, which loads to version), and
// collects the set of observable outcomes (final register values).
//
// Compliance then means: outcomes the LKMM forbids are unreachable no
// matter the directives, and — the emulation-capability direction — weak
// outcomes the LKMM allows ARE reachable under some directive assignment
// (this is what a simple in-order executor cannot produce).
package lkmm

import (
	"fmt"
	"sort"
	"strings"

	"ozz/internal/kmem"
	"ozz/internal/memmodel"
	"ozz/internal/oemu"
	"ozz/internal/trace"
)

// OpKind is one litmus operation kind.
type OpKind uint8

const (
	// OpStore stores Val to Loc.
	OpStore OpKind = iota
	// OpLoad loads Loc into register Reg.
	OpLoad
	// OpBarrier executes barrier Bar.
	OpBarrier
)

// Op is one operation of a litmus thread.
type Op struct {
	Kind   OpKind
	Loc    int // shared-location index
	Val    uint64
	Reg    int // destination register index (loads)
	Atomic trace.Atomicity
	Bar    trace.BarrierKind
}

// Convenience constructors.

// W is a plain store of v to location loc.
func W(loc int, v uint64) Op { return Op{Kind: OpStore, Loc: loc, Val: v} }

// WOnce is WRITE_ONCE.
func WOnce(loc int, v uint64) Op {
	return Op{Kind: OpStore, Loc: loc, Val: v, Atomic: trace.Once}
}

// WRel is smp_store_release.
func WRel(loc int, v uint64) Op {
	return Op{Kind: OpStore, Loc: loc, Val: v, Atomic: trace.AtomicRelease}
}

// R is a plain load of loc into register reg.
func R(loc, reg int) Op { return Op{Kind: OpLoad, Loc: loc, Reg: reg} }

// ROnce is READ_ONCE.
func ROnce(loc, reg int) Op {
	return Op{Kind: OpLoad, Loc: loc, Reg: reg, Atomic: trace.Once}
}

// RAcq is smp_load_acquire.
func RAcq(loc, reg int) Op {
	return Op{Kind: OpLoad, Loc: loc, Reg: reg, Atomic: trace.AtomicAcquire}
}

// Mb, Rmb, Wmb are the explicit barriers.
func Mb() Op  { return Op{Kind: OpBarrier, Bar: trace.BarrierFull} }
func Rmb() Op { return Op{Kind: OpBarrier, Bar: trace.BarrierLoad} }
func Wmb() Op { return Op{Kind: OpBarrier, Bar: trace.BarrierStore} }

// Test is a litmus test.
type Test struct {
	Name    string
	Threads [][]Op
	// NumLocs/NumRegs size the shared state and register file.
	NumLocs, NumRegs int
}

// Outcome is a final register assignment, rendered canonically as
// "r0=x;r1=y;...".
type Outcome string

// MakeOutcome renders register values canonically.
func MakeOutcome(regs []uint64) Outcome {
	parts := make([]string, len(regs))
	for i, v := range regs {
		parts[i] = fmt.Sprintf("r%d=%d", i, v)
	}
	return Outcome(strings.Join(parts, ";"))
}

// Result is the set of observable outcomes of a test.
type Result struct {
	Outcomes map[Outcome]bool
	// Runs counts executed (interleaving, directive) combinations.
	Runs int
}

// Has reports whether the outcome was observed.
func (r *Result) Has(o Outcome) bool { return r.Outcomes[o] }

// Sorted lists outcomes canonically.
func (r *Result) Sorted() []string {
	var out []string
	for o := range r.Outcomes {
		out = append(out, string(o))
	}
	sort.Strings(out)
	return out
}

// instrID assigns a unique site to thread t's op i.
func instrID(t, i int) trace.InstrID { return trace.InstrID(t*100 + i + 1) }

// Run enumerates all interleavings x directive assignments under the LKMM
// and returns the observable outcomes. The search is exhaustive
// (exponential in program size — litmus tests are tiny by design).
func Run(test *Test) *Result { return RunModel(test, memmodel.LKMM) }

// RunModel is Run under an arbitrary memory model: the emulator executes
// every interleaving x directive assignment with the given semantics
// table active.
func RunModel(test *Test, mm *memmodel.Table) *Result {
	res := &Result{Outcomes: make(map[Outcome]bool)}
	// Enumerate directive assignments: a bit per delayable store and per
	// versionable load.
	type dirSite struct {
		instr trace.InstrID
		store bool
	}
	var sites []dirSite
	for ti, th := range test.Threads {
		for oi, op := range th {
			switch op.Kind {
			case OpStore:
				sites = append(sites, dirSite{instrID(ti, oi), true})
			case OpLoad:
				sites = append(sites, dirSite{instrID(ti, oi), false})
			}
		}
	}
	if len(sites) > 12 {
		panic("litmus test too large for exhaustive directive enumeration")
	}
	for mask := 0; mask < 1<<len(sites); mask++ {
		enumerateInterleavings(test, func(order []int) {
			regs := execute(test, order, mm, func(th *oemu.Thread) {
				for bi, s := range sites {
					if mask&(1<<bi) == 0 {
						continue
					}
					if s.store {
						th.Dir.DelayStoreAt(s.instr)
					} else {
						th.Dir.ReadOldValueAt(s.instr)
					}
				}
			})
			res.Outcomes[MakeOutcome(regs)] = true
			res.Runs++
		})
	}
	return res
}

// RunPlanned is Run with every directive assignment installed through the
// precompiled-plan path (oemu.CompilePlan + Thread.InstallPlan) instead of
// incremental DelayStoreAt/ReadOldValueAt calls. Each mask's plan is
// compiled once and shared by all interleavings of that mask — exactly how
// the engine's plan cache shares one immutable plan across runs — so
// equality of Run and RunPlanned over a test proves the plan path cannot
// change litmus semantics.
func RunPlanned(test *Test) *Result { return RunPlannedModel(test, memmodel.LKMM) }

// RunPlannedModel is RunPlanned under an arbitrary memory model.
func RunPlannedModel(test *Test, mm *memmodel.Table) *Result {
	res := &Result{Outcomes: make(map[Outcome]bool)}
	type dirSite struct {
		instr trace.InstrID
		store bool
	}
	var sites []dirSite
	for ti, th := range test.Threads {
		for oi, op := range th {
			switch op.Kind {
			case OpStore:
				sites = append(sites, dirSite{instrID(ti, oi), true})
			case OpLoad:
				sites = append(sites, dirSite{instrID(ti, oi), false})
			}
		}
	}
	if len(sites) > 12 {
		panic("litmus test too large for exhaustive directive enumeration")
	}
	for mask := 0; mask < 1<<len(sites); mask++ {
		var delay, read []trace.InstrID
		for bi, s := range sites {
			if mask&(1<<bi) == 0 {
				continue
			}
			if s.store {
				delay = append(delay, s.instr)
			} else {
				read = append(read, s.instr)
			}
		}
		plan := oemu.CompilePlanModel(delay, read, mm)
		enumerateInterleavings(test, func(order []int) {
			regs := execute(test, order, mm, func(th *oemu.Thread) {
				th.InstallPlan(plan)
			})
			res.Outcomes[MakeOutcome(regs)] = true
			res.Runs++
		})
	}
	return res
}

// enumerateInterleavings generates every merge of the threads' op
// sequences; order entries are thread indexes.
func enumerateInterleavings(test *Test, visit func(order []int)) {
	total := 0
	for _, th := range test.Threads {
		total += len(th)
	}
	counts := make([]int, len(test.Threads))
	order := make([]int, 0, total)
	var rec func()
	rec = func() {
		if len(order) == total {
			visit(order)
			return
		}
		for ti := range test.Threads {
			if counts[ti] < len(test.Threads[ti]) {
				counts[ti]++
				order = append(order, ti)
				rec()
				order = order[:len(order)-1]
				counts[ti]--
			}
		}
	}
	rec()
	_ = counts
}

// execute runs one interleaving under the given memory model with install
// applied to every thread (incremental directives or a precompiled plan)
// and returns the final registers. Store buffers drain at thread exit
// (like a syscall return); registers are read after all threads finish.
func execute(test *Test, order []int, mm *memmodel.Table, install func(*oemu.Thread)) []uint64 {
	mem := kmem.New()
	mem.Sanitize = false
	em := oemu.NewModel(mem, mm)
	threads := make([]*oemu.Thread, len(test.Threads))
	for i := range threads {
		threads[i] = em.NewThread(i)
		install(threads[i])
	}
	regs := make([]uint64, test.NumRegs)
	idx := make([]int, len(test.Threads))
	loc := func(l int) trace.Addr { return trace.Addr(0x1000_0000 + l*8) }
	for _, ti := range order {
		op := test.Threads[ti][idx[ti]]
		site := instrID(ti, idx[ti])
		idx[ti]++
		th := threads[ti]
		switch op.Kind {
		case OpStore:
			th.Store(site, loc(op.Loc), op.Val, op.Atomic)
		case OpLoad:
			regs[op.Reg] = th.Load(site, loc(op.Loc), op.Atomic)
		case OpBarrier:
			th.Barrier(op.Bar)
		}
	}
	for _, th := range threads {
		th.Flush()
	}
	return regs
}
