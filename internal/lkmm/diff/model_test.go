package diff

import (
	"testing"

	"ozz/internal/lkmm"
	"ozz/internal/memmodel"
)

// TestSuiteAllModels replays the whole named suite under every registered
// memory model: the emulator must agree with its own reference
// enumeration (soundness + completeness per model), and each entry's
// per-model verdicts (SuiteEntry.VerdictsFor) must hold.
func TestSuiteAllModels(t *testing.T) {
	for _, mm := range memmodel.All() {
		mm := mm
		t.Run(mm.Name(), func(t *testing.T) {
			for _, r := range CheckSuiteModel(mm) {
				if r.OK() {
					continue
				}
				t.Errorf("%s under %s: div=%v verdicts=%v\n  oemu:  %v\n  model: %v",
					r.Entry.Test.Name, mm.Name(), r.Div, r.VerdictErrs, r.OEMU, r.Model)
			}
		})
	}
}

// TestCrossModelDelta pins the litmus shapes whose verdicts split the
// three models — the acceptance shape is MP+wmb+ROnce: forbidden under
// LKMM (Case 6) and TSO (in-order loads), allowed under ARMv8 (a relaxed
// annotated load does not order the dependent load).
func TestCrossModelDelta(t *testing.T) {
	find := func(name string) *lkmm.Test {
		for _, e := range lkmm.Suite() {
			if e.Test.Name == name {
				return e.Test
			}
		}
		t.Fatalf("suite entry %q missing", name)
		return nil
	}
	const stale = lkmm.Outcome("r0=1;r1=0")

	mp6 := find("MP+wmb+ROnce")
	if lkmm.RunModel(mp6, memmodel.LKMM).Has(stale) {
		t.Error("MP+wmb+ROnce: stale observation must be forbidden under LKMM")
	}
	if lkmm.RunModel(mp6, memmodel.TSO).Has(stale) {
		t.Error("MP+wmb+ROnce: stale observation must be forbidden under TSO")
	}
	if !lkmm.RunModel(mp6, memmodel.ARMv8).Has(stale) {
		t.Error("MP+wmb+ROnce: stale observation must be ALLOWED under ARMv8")
	}

	// Barrier-free MP splits TSO from the weak models the other way.
	mp := find("MP (relaxed)")
	if !lkmm.RunModel(mp, memmodel.LKMM).Has(stale) {
		t.Error("MP (relaxed): stale observation must be allowed under LKMM")
	}
	if !lkmm.RunModel(mp, memmodel.ARMv8).Has(stale) {
		t.Error("MP (relaxed): stale observation must be allowed under ARMv8")
	}
	if lkmm.RunModel(mp, memmodel.TSO).Has(stale) {
		t.Error("MP (relaxed): stale observation must be forbidden under TSO")
	}

	// Store buffering stays reachable everywhere — it is the one
	// reordering TSO itself exhibits.
	sb := find("SB (relaxed)")
	const both0 = lkmm.Outcome("r0=0;r1=0")
	for _, mm := range memmodel.All() {
		if !lkmm.RunModel(sb, mm).Has(both0) {
			t.Errorf("SB (relaxed): r0=0;r1=0 must be reachable under %s", mm.Name())
		}
	}
}

// TestCrossCheckAllModels property-checks generated shapes under every
// model (CI runs 500 per model through cmd/litmus; this keeps a smaller
// deterministic sweep in the unit tier).
func TestCrossCheckAllModels(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 30
	}
	for _, mm := range memmodel.All() {
		mm := mm
		t.Run(mm.Name(), func(t *testing.T) {
			for _, f := range CrossCheckModel(1, n, mm) {
				t.Errorf("model %s: %s", mm.Name(), f.String())
			}
		})
	}
}

// TestRunPlannedModelEquivalence proves the precompiled-plan path cannot
// change litmus semantics under any model: RunModel and RunPlannedModel
// must produce identical outcome sets over the whole suite.
func TestRunPlannedModelEquivalence(t *testing.T) {
	for _, mm := range memmodel.All() {
		for _, e := range lkmm.Suite() {
			a := lkmm.RunModel(e.Test, mm)
			b := lkmm.RunPlannedModel(e.Test, mm)
			as, bs := a.Sorted(), b.Sorted()
			if len(as) != len(bs) {
				t.Errorf("%s under %s: Run %v != RunPlanned %v", e.Test.Name, mm.Name(), as, bs)
				continue
			}
			for i := range as {
				if as[i] != bs[i] {
					t.Errorf("%s under %s: Run %v != RunPlanned %v", e.Test.Name, mm.Name(), as, bs)
					break
				}
			}
		}
	}
}
