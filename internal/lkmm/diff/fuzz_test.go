package diff

import (
	"testing"

	"ozz/internal/lkmm"
	"ozz/internal/memmodel"
)

// FuzzDifferential lets the native fuzzer drive the generator's (seed,
// index) space AND the memory-model choice: every reachable shape must
// agree between OEMU and the reference enumerator under every model. The
// model is picked from the index's high bits so one fuzz target covers
// lkmm, tso, and armv8, and the (shape, model) pair is fully determined
// by the two integers — coverage-guided mutation explores generator
// corner cases (thread-count and op-mix boundaries) far faster than a
// linear sweep.
func FuzzDifferential(f *testing.F) {
	f.Add(uint64(1), uint(0))
	f.Add(uint64(0xdeadbeef), uint(7))
	f.Add(uint64(0), uint(1023))
	f.Add(uint64(42), uint(4096+17))   // tso region
	f.Add(uint64(42), uint(2*4096+17)) // armv8 region
	f.Fuzz(func(t *testing.T, seed uint64, index uint) {
		models := memmodel.All()
		mm := models[int(index/4096)%len(models)]
		shape := Shape(seed, int(index%4096))
		d := CompareModel(shape, mm)
		if d == nil {
			return
		}
		shrunk := Shrink(shape, func(c *lkmm.Test) bool { return CompareModel(c, mm) != nil })
		t.Fatalf("model %s: %s\nshrunk: %s", mm.Name(), d, CompareModel(shrunk, mm))
	})
}
