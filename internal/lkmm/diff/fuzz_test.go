package diff

import (
	"testing"

	"ozz/internal/lkmm"
)

// FuzzDifferential lets the native fuzzer drive the generator's (seed,
// index) space: every reachable shape must agree between OEMU and the
// reference model. The shape space is fully determined by the two
// integers, so coverage-guided mutation explores generator corner cases
// (thread-count and op-mix boundaries) far faster than a linear sweep.
func FuzzDifferential(f *testing.F) {
	f.Add(uint64(1), uint(0))
	f.Add(uint64(0xdeadbeef), uint(7))
	f.Add(uint64(0), uint(1023))
	f.Fuzz(func(t *testing.T, seed uint64, index uint) {
		shape := Shape(seed, int(index%4096))
		d := Compare(shape)
		if d == nil {
			return
		}
		shrunk := Shrink(shape, func(c *lkmm.Test) bool { return Compare(c) != nil })
		t.Fatalf("%s\nshrunk: %s", d, Compare(shrunk))
	})
}
