package diff

import (
	"reflect"
	"strings"
	"testing"

	"ozz/internal/lkmm"
)

// TestSuiteDifferential is the core tentpole check: every named suite
// shape must produce the EXACT same outcome set in OEMU and in the
// reference model, and satisfy its LKMM verdicts in both.
func TestSuiteDifferential(t *testing.T) {
	for _, r := range CheckSuite() {
		if r.Div != nil {
			t.Errorf("%s: %s", r.Entry.Test.Name, r.Div)
		}
		for _, e := range r.VerdictErrs {
			t.Errorf("%s: %s", r.Entry.Test.Name, e)
		}
		if !reflect.DeepEqual(r.OEMU, r.Model) {
			t.Errorf("%s: outcome sets differ: OEMU=%v model=%v",
				r.Entry.Test.Name, r.OEMU, r.Model)
		}
	}
}

// TestCrossCheckShapes runs the property-based sweep: several hundred
// generated shapes, each compared for exact outcome-set equality.
func TestCrossCheckShapes(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 50
	}
	for _, f := range CrossCheck(1, n) {
		t.Errorf("%s", f.String())
	}
}

// TestShapeDeterminism: generation is a pure function of (seed, index),
// and adjacent indices produce distinct shapes (no stream aliasing).
func TestShapeDeterminism(t *testing.T) {
	for i := 0; i < 20; i++ {
		a, b := Shape(42, i), Shape(42, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Shape(42,%d) not deterministic:\n%s\n%s", i, Format(a), Format(b))
		}
	}
	if reflect.DeepEqual(Shape(42, 0).Threads, Shape(42, 1).Threads) &&
		reflect.DeepEqual(Shape(42, 1).Threads, Shape(42, 2).Threads) {
		t.Fatal("consecutive indices generated identical shapes: streams correlated")
	}
}

func countOps(t *lkmm.Test) int {
	n := 0
	for _, th := range t.Threads {
		n += len(th)
	}
	return n
}

// TestGeneratorBounds: shapes stay inside the documented envelope so
// lkmm.Run's directive-mask enumeration never trips its site limit.
func TestGeneratorBounds(t *testing.T) {
	for i := 0; i < 200; i++ {
		s := Shape(7, i)
		if nt := len(s.Threads); nt < 2 || nt > 3 {
			t.Fatalf("shape %d has %d threads", i, nt)
		}
		if n := countOps(s); n < 2 || n > MaxGenOps {
			t.Fatalf("shape %d has %d ops", i, n)
		}
		for _, th := range s.Threads {
			if len(th) == 0 {
				t.Fatalf("shape %d has an empty thread:\n%s", i, Format(s))
			}
		}
	}
}

// TestShrink: the greedy shrinker reaches a minimal shape for a simple
// structural predicate (at least one store and one load present), which
// has 2-op minima.
func TestShrink(t *testing.T) {
	orig := &lkmm.Test{Name: "shrinkme", Threads: [][]lkmm.Op{
		{lkmm.W(0, 1), lkmm.Mb(), lkmm.W(1, 2)},
		{lkmm.R(1, 0), lkmm.Rmb(), lkmm.R(0, 1)},
		{lkmm.Wmb()},
	}, NumLocs: 2, NumRegs: 2}
	pred := func(c *lkmm.Test) bool {
		var st, ld bool
		for _, th := range c.Threads {
			for _, op := range th {
				st = st || op.Kind == lkmm.OpStore
				ld = ld || op.Kind == lkmm.OpLoad
			}
		}
		return st && ld
	}
	got := Shrink(orig, pred)
	if !pred(got) {
		t.Fatalf("shrunk shape no longer satisfies the predicate:\n%s", Format(got))
	}
	if n := countOps(got); n != 2 {
		t.Fatalf("shrunk shape has %d ops, want the 2-op minimum:\n%s", n, Format(got))
	}
	// The input must be untouched.
	if countOps(orig) != 7 || len(orig.Threads) != 3 {
		t.Fatal("Shrink mutated its input")
	}
}

// TestDivergenceDirections: the report names which direction broke.
func TestDivergenceDirections(t *testing.T) {
	var nilDiv *Divergence
	if !nilDiv.Sound() || !nilDiv.Complete() {
		t.Fatal("nil divergence must count as sound and complete")
	}
	shape := Shape(1, 0)
	unsound := &Divergence{Test: shape, OEMUOnly: []string{"r0=9"}}
	if unsound.Sound() || !unsound.Complete() {
		t.Fatal("OEMU-only outcome must break soundness only")
	}
	if s := unsound.String(); !strings.Contains(s, "SOUNDNESS") || strings.Contains(s, "COMPLETENESS") {
		t.Fatalf("wrong direction label: %s", s)
	}
	incomplete := &Divergence{Test: shape, ModelOnly: []string{"r0=9"}}
	if !incomplete.Sound() || incomplete.Complete() {
		t.Fatal("model-only outcome must break completeness only")
	}
	if s := incomplete.String(); !strings.Contains(s, "COMPLETENESS") || strings.Contains(s, "SOUNDNESS") {
		t.Fatalf("wrong direction label: %s", s)
	}
}

// TestFormat: the rendering names every op variant it may meet.
func TestFormat(t *testing.T) {
	shape := &lkmm.Test{Name: "fmt", Threads: [][]lkmm.Op{
		{lkmm.W(0, 1), lkmm.WOnce(0, 2), lkmm.WRel(1, 3)},
		{lkmm.R(0, 0), lkmm.ROnce(0, 1), lkmm.RAcq(1, 2), lkmm.Mb(), lkmm.Rmb(), lkmm.Wmb()},
	}, NumLocs: 2, NumRegs: 3}
	got := Format(shape)
	for _, want := range []string{
		"W(x0,1)", "Wonce(x0,2)", "Wrel(x1,3)",
		"R(x0)->r0", "Ronce(x0)->r1", "Racq(x1)->r2",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Format missing %q:\n%s", want, got)
		}
	}
}
