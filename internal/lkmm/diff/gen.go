package diff

// Property-based generation of random litmus shapes. The generator is a
// pure function of (seed, index) — splitmix64 keyed by both — so any
// failing shape replays deterministically from the numbers in the report
// without regenerating its predecessors. Shapes are kept small (2-3
// threads, at most 6 operations total) both to respect lkmm.Run's
// directive-mask limit and to keep the exhaustive product enumeration
// cheap enough for hundreds of shapes per CI run.

import (
	"fmt"

	"ozz/internal/lkmm"
	"ozz/internal/memmodel"
	"ozz/internal/trace"
)

// rng is a splitmix64 stream (Steele et al.), matching the generator used
// elsewhere in the repo for deterministic shuffles.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// n returns a value in [0, m).
func (r *rng) n(m int) int { return int(r.next() % uint64(m)) }

// mix finalizes one splitmix64 round, used to decorrelate the per-shape
// streams: adjacent (seed, index) pairs must not produce shifted copies
// of one sequence.
func mix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// MaxGenOps bounds the total operation count of a generated shape. Six
// ops means at most six delayable/versionable sites, well inside
// lkmm.Run's 12-site directive-mask limit.
const MaxGenOps = 6

// Shape deterministically generates the index-th random litmus shape of
// the given seed: 2-3 threads, 3 to MaxGenOps operations total over 1-2
// locations, mixing plain/annotated/acquire/release accesses and all
// three barrier kinds.
func Shape(seed uint64, index int) *lkmm.Test {
	r := &rng{s: mix(seed ^ (uint64(index)+1)*0xd1342543de82ef95)}
	nThreads := 2 + r.n(2)
	nOps := 3 + r.n(MaxGenOps-2) // 3..MaxGenOps
	if nOps < nThreads {
		nOps = nThreads // every thread gets at least one op
	}
	nLocs := 1 + r.n(2)
	threads := make([][]lkmm.Op, nThreads)
	reg := 0
	for i := 0; i < nOps; i++ {
		// First nThreads ops seed one per thread; the rest land randomly.
		ti := i
		if i >= nThreads {
			ti = r.n(nThreads)
		}
		threads[ti] = append(threads[ti], genOp(r, nLocs, &reg))
	}
	return &lkmm.Test{
		Name:    fmt.Sprintf("gen[seed=%#x,i=%d]", seed, index),
		Threads: threads,
		NumLocs: nLocs,
		NumRegs: reg,
	}
}

func genOp(r *rng, nLocs int, reg *int) lkmm.Op {
	switch roll := r.n(10); {
	case roll < 4: // store
		op := lkmm.W(r.n(nLocs), uint64(1+r.n(3)))
		switch r.n(5) {
		case 0:
			op.Atomic = trace.Once
		case 1:
			op.Atomic = trace.AtomicRelease
		}
		return op
	case roll < 8: // load
		op := lkmm.R(r.n(nLocs), *reg)
		*reg++
		switch r.n(5) {
		case 0:
			op.Atomic = trace.Once
		case 1:
			op.Atomic = trace.AtomicAcquire
		}
		return op
	default: // barrier
		switch r.n(3) {
		case 0:
			return lkmm.Mb()
		case 1:
			return lkmm.Rmb()
		default:
			return lkmm.Wmb()
		}
	}
}

// GenFailure is one divergence found by CrossCheck, with the shrunk
// minimal counterexample.
type GenFailure struct {
	// Index is the shape's index within the run; Shape(Seed, Index)
	// replays it.
	Index int
	// Seed is the run seed.
	Seed uint64
	// Div is the divergence on the generated shape.
	Div *Divergence
	// ShrunkDiv is the divergence on the shrunk minimal shape.
	ShrunkDiv *Divergence
}

// String renders the failure with its replay coordinates.
func (f *GenFailure) String() string {
	return fmt.Sprintf("shape %d of seed %#x: %s\nshrunk: %s",
		f.Index, f.Seed, f.Div, f.ShrunkDiv)
}

// CrossCheck generates n shapes from the seed and cross-checks each
// through Compare under the LKMM, shrinking every divergence to a minimal
// counterexample. It returns all failures (empty means OEMU and the
// model agreed on every shape).
func CrossCheck(seed uint64, n int) []GenFailure {
	return CrossCheckModel(seed, n, memmodel.LKMM)
}

// CrossCheckModel is CrossCheck under an arbitrary memory model: the same
// deterministic shape stream, each shape compared against the model's own
// reference enumeration. Running the identical (seed, n) stream once per
// registered model is how CI covers every model with the same shapes.
func CrossCheckModel(seed uint64, n int, mm *memmodel.Table) []GenFailure {
	var fails []GenFailure
	for i := 0; i < n; i++ {
		t := Shape(seed, i)
		d := CompareModel(t, mm)
		if d == nil {
			continue
		}
		shrunk := Shrink(t, func(c *lkmm.Test) bool { return CompareModel(c, mm) != nil })
		fails = append(fails, GenFailure{Index: i, Seed: seed, Div: d, ShrunkDiv: CompareModel(shrunk, mm)})
	}
	return fails
}

// Shrink greedily minimizes a failing shape: it repeatedly tries to drop
// whole threads, then single operations, keeping any candidate for which
// fails still holds, until no removal preserves the failure. NumLocs and
// NumRegs are left untouched so outcome strings stay comparable across
// shrink steps.
func Shrink(t *lkmm.Test, fails func(*lkmm.Test) bool) *lkmm.Test {
	cur := cloneTest(t)
	for changed := true; changed; {
		changed = false
		for ti := 0; ti < len(cur.Threads) && len(cur.Threads) > 1; ti++ {
			cand := cloneTest(cur)
			cand.Threads = append(cand.Threads[:ti:ti], cand.Threads[ti+1:]...)
			if fails(cand) {
				cur, changed = cand, true
				break
			}
		}
		if changed {
			continue
		}
		for ti := range cur.Threads {
			for oi := range cur.Threads[ti] {
				cand := cloneTest(cur)
				th := cand.Threads[ti]
				cand.Threads[ti] = append(th[:oi:oi], th[oi+1:]...)
				if fails(cand) {
					cur, changed = cand, true
					break
				}
			}
			if changed {
				break
			}
		}
	}
	cur.Name = t.Name + " (shrunk)"
	return cur
}

func cloneTest(t *lkmm.Test) *lkmm.Test {
	c := *t
	c.Threads = make([][]lkmm.Op, len(t.Threads))
	for i, th := range t.Threads {
		c.Threads[i] = append([]lkmm.Op(nil), th...)
	}
	return &c
}
