// Package diff is the differential correctness harness for OEMU: it
// cross-checks the outcomes internal/lkmm observes by driving the real
// emulator against the outcomes the executable reference model
// (internal/lkmm/model) permits, on the named litmus suite and on
// property-based-generated random shapes.
//
// The two directions of the §3.3 claim are checked separately so a
// failure names which one broke:
//
//   - Soundness: every outcome OEMU reaches must be permitted by the
//     model (OEMU ⊆ model). A violation means OEMU reordered across a
//     preserved-program-order case or broke per-location coherence.
//   - Completeness: every outcome the model permits must be reachable by
//     OEMU under some (interleaving, directive) combination (model ⊆
//     OEMU). A violation means OEMU lost emulation capability — a weak
//     outcome the fuzzer can no longer produce.
//
// Generation is seeded (splitmix64), so every failure replays
// deterministically from its printed (seed, index) pair, and divergences
// are shrunk to a minimal counterexample before reporting.
package diff

import (
	"fmt"
	"sort"
	"strings"

	"ozz/internal/lkmm"
	"ozz/internal/lkmm/model"
	"ozz/internal/memmodel"
	"ozz/internal/trace"
)

// Divergence describes an outcome-set mismatch between OEMU and the
// reference model on one litmus shape. A nil *Divergence means the sets
// are identical.
type Divergence struct {
	// Test is the diverging shape.
	Test *lkmm.Test
	// OEMUOnly lists outcomes OEMU reached that the model forbids — a
	// SOUNDNESS violation (sorted).
	OEMUOnly []string
	// ModelOnly lists outcomes the model permits that OEMU cannot reach
	// under any directive assignment — a COMPLETENESS violation (sorted).
	ModelOnly []string
	// OEMURuns and ModelStates report the search sizes, for reports.
	OEMURuns    int
	ModelStates int
}

// Sound reports whether the soundness direction held (no OEMU-only
// outcomes).
func (d *Divergence) Sound() bool { return d == nil || len(d.OEMUOnly) == 0 }

// Complete reports whether the completeness direction held (no
// model-only outcomes).
func (d *Divergence) Complete() bool { return d == nil || len(d.ModelOnly) == 0 }

// String renders the divergence with its direction labels.
func (d *Divergence) String() string {
	if d == nil {
		return "no divergence"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "divergence on %s:", d.Test.Name)
	if len(d.OEMUOnly) > 0 {
		fmt.Fprintf(&b, " SOUNDNESS broken, OEMU reached forbidden %v;", d.OEMUOnly)
	}
	if len(d.ModelOnly) > 0 {
		fmt.Fprintf(&b, " COMPLETENESS broken, OEMU cannot reach %v;", d.ModelOnly)
	}
	fmt.Fprintf(&b, "\n%s", Format(d.Test))
	return b.String()
}

// Compare runs the shape through both engines under the LKMM and returns
// the divergence, or nil when the outcome sets are identical.
func Compare(t *lkmm.Test) *Divergence { return CompareModel(t, memmodel.LKMM) }

// CompareModel cross-checks the shape under an arbitrary memory model:
// the emulator runs with the model's semantics table active and is
// checked against its OWN reference enumeration under the same table, so
// soundness and completeness are per-model properties.
func CompareModel(t *lkmm.Test, mm *memmodel.Table) *Divergence {
	emu := lkmm.RunModel(t, mm)
	ref := model.RunModel(t, mm)
	var onlyEmu, onlyRef []string
	for o := range emu.Outcomes {
		if !ref.Has(o) {
			onlyEmu = append(onlyEmu, string(o))
		}
	}
	for o := range ref.Outcomes {
		if !emu.Has(o) {
			onlyRef = append(onlyRef, string(o))
		}
	}
	if len(onlyEmu) == 0 && len(onlyRef) == 0 {
		return nil
	}
	sort.Strings(onlyEmu)
	sort.Strings(onlyRef)
	return &Divergence{
		Test:        t,
		OEMUOnly:    onlyEmu,
		ModelOnly:   onlyRef,
		OEMURuns:    emu.Runs,
		ModelStates: ref.States,
	}
}

// SuiteResult is the differential verdict on one named suite entry.
type SuiteResult struct {
	// Entry is the suite entry replayed.
	Entry lkmm.SuiteEntry
	// OEMU and Model are the sorted outcome sets of the two engines.
	OEMU, Model []string
	// Div is the outcome-set mismatch, nil when the engines agree.
	Div *Divergence
	// VerdictErrs lists violated Allowed/Forbidden expectations, checked
	// against both engines.
	VerdictErrs []string
	// Runs and States are the engines' search sizes, for reports.
	Runs, States int
	// ModelName is the memory model the entry was checked under.
	ModelName string
}

// OK reports whether the entry passed: engines agree and every LKMM
// verdict holds.
func (r *SuiteResult) OK() bool { return r.Div == nil && len(r.VerdictErrs) == 0 }

// CheckSuite replays every named suite shape through both engines under
// the LKMM, asserting outcome-set equality and the per-entry LKMM
// verdicts.
func CheckSuite() []SuiteResult { return CheckSuiteModel(memmodel.LKMM) }

// CheckSuiteModel is CheckSuite under an arbitrary memory model: both
// engines run the model's semantics and the verdicts come from each
// entry's per-model resolution (SuiteEntry.VerdictsFor).
func CheckSuiteModel(mm *memmodel.Table) []SuiteResult {
	var out []SuiteResult
	for _, e := range lkmm.Suite() {
		emu := lkmm.RunModel(e.Test, mm)
		ref := model.RunModel(e.Test, mm)
		r := SuiteResult{
			Entry: e, OEMU: emu.Sorted(), Model: ref.Sorted(),
			Runs: emu.Runs, States: ref.States, Div: CompareModel(e.Test, mm),
			ModelName: mm.Name(),
		}
		allowed, forbidden := e.VerdictsFor(mm.Name())
		for _, o := range allowed {
			if !emu.Has(o) {
				r.VerdictErrs = append(r.VerdictErrs, fmt.Sprintf("allowed outcome %s unreachable by OEMU", o))
			}
			if !ref.Has(o) {
				r.VerdictErrs = append(r.VerdictErrs, fmt.Sprintf("allowed outcome %s not permitted by model", o))
			}
		}
		for _, o := range forbidden {
			if emu.Has(o) {
				r.VerdictErrs = append(r.VerdictErrs, fmt.Sprintf("forbidden outcome %s observed by OEMU", o))
			}
			if ref.Has(o) {
				r.VerdictErrs = append(r.VerdictErrs, fmt.Sprintf("forbidden outcome %s permitted by model", o))
			}
		}
		out = append(out, r)
	}
	return out
}

// Format renders a litmus shape as replayable source, one thread per
// line, for divergence reports and shrunk counterexamples.
func Format(t *lkmm.Test) string {
	var b strings.Builder
	fmt.Fprintf(&b, "test %q locs=%d regs=%d\n", t.Name, t.NumLocs, t.NumRegs)
	for ti, th := range t.Threads {
		fmt.Fprintf(&b, "  T%d:", ti)
		if len(th) == 0 {
			b.WriteString(" (empty)")
		}
		for _, op := range th {
			b.WriteString(" " + formatOp(op) + ";")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatOp(op lkmm.Op) string {
	switch op.Kind {
	case lkmm.OpStore:
		name := "W"
		switch op.Atomic {
		case trace.Once:
			name = "Wonce"
		case trace.AtomicRelease:
			name = "Wrel"
		}
		return fmt.Sprintf("%s(x%d,%d)", name, op.Loc, op.Val)
	case lkmm.OpLoad:
		name := "R"
		switch op.Atomic {
		case trace.Once:
			name = "Ronce"
		case trace.AtomicAcquire:
			name = "Racq"
		}
		return fmt.Sprintf("%s(x%d)->r%d", name, op.Loc, op.Reg)
	case lkmm.OpBarrier:
		return op.Bar.String()
	}
	return fmt.Sprintf("op(%d)", op.Kind)
}
