package model

import (
	"reflect"
	"testing"

	"ozz/internal/lkmm"
)

func mp(b0, b1 []lkmm.Op) *lkmm.Test {
	t0 := append([]lkmm.Op{lkmm.W(0, 1)}, b0...)
	t0 = append(t0, lkmm.W(1, 1))
	t1 := append([]lkmm.Op{lkmm.R(1, 0)}, b1...)
	t1 = append(t1, lkmm.R(0, 1))
	return &lkmm.Test{Name: "MP", Threads: [][]lkmm.Op{t0, t1}, NumLocs: 2, NumRegs: 2}
}

// TestMPRelaxed: with no barriers the model permits every combination,
// including the stale observation an in-order machine cannot produce.
func TestMPRelaxed(t *testing.T) {
	res := Run(mp(nil, nil))
	want := []string{"r0=0;r1=0", "r0=0;r1=1", "r0=1;r1=0", "r0=1;r1=1"}
	if got := res.Sorted(); !reflect.DeepEqual(got, want) {
		t.Fatalf("relaxed MP outcomes = %v, want %v", got, want)
	}
	if res.States == 0 {
		t.Fatal("no states explored")
	}
}

// TestBarrierPPOCases pins the five barrier cases and the two dependency
// cases of §10.1 at the model level, independent of OEMU.
func TestBarrierPPOCases(t *testing.T) {
	cases := []struct {
		name      string
		test      *lkmm.Test
		forbidden lkmm.Outcome
		allowed   []lkmm.Outcome
	}{
		{
			name:      "case1-smp_mb",
			test:      mp([]lkmm.Op{lkmm.Mb()}, []lkmm.Op{lkmm.Mb()}),
			forbidden: "r0=1;r1=0",
		},
		{
			name:      "case2+3-wmb-rmb",
			test:      mp([]lkmm.Op{lkmm.Wmb()}, []lkmm.Op{lkmm.Rmb()}),
			forbidden: "r0=1;r1=0",
		},
		{
			name: "case4+5-release-acquire",
			test: &lkmm.Test{Name: "MP+rel+acq", Threads: [][]lkmm.Op{
				{lkmm.W(0, 1), lkmm.WRel(1, 1)},
				{lkmm.RAcq(1, 0), lkmm.R(0, 1)},
			}, NumLocs: 2, NumRegs: 2},
			forbidden: "r0=1;r1=0",
		},
		{
			name: "case6-annotated-load",
			test: &lkmm.Test{Name: "MP+wmb+ROnce", Threads: [][]lkmm.Op{
				{lkmm.W(0, 1), lkmm.Wmb(), lkmm.W(1, 1)},
				{lkmm.ROnce(1, 0), lkmm.R(0, 1)},
			}, NumLocs: 2, NumRegs: 2},
			forbidden: "r0=1;r1=0",
		},
		{
			name: "case7-no-load-store-reordering",
			test: &lkmm.Test{Name: "LB", Threads: [][]lkmm.Op{
				{lkmm.R(1, 0), lkmm.W(0, 1)},
				{lkmm.R(0, 1), lkmm.W(1, 1)},
			}, NumLocs: 2, NumRegs: 2},
			forbidden: "r0=1;r1=1",
		},
		{
			name:    "wmb-only-still-weak",
			test:    mp([]lkmm.Op{lkmm.Wmb()}, nil),
			allowed: []lkmm.Outcome{"r0=1;r1=0"},
		},
		{
			name: "SB-relaxed-both-zero",
			test: &lkmm.Test{Name: "SB", Threads: [][]lkmm.Op{
				{lkmm.WOnce(0, 1), lkmm.ROnce(1, 0)},
				{lkmm.WOnce(1, 1), lkmm.ROnce(0, 1)},
			}, NumLocs: 2, NumRegs: 2},
			allowed: []lkmm.Outcome{"r0=0;r1=0"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Run(tc.test)
			if tc.forbidden != "" && res.Has(tc.forbidden) {
				t.Errorf("forbidden outcome %s permitted; got %v", tc.forbidden, res.Sorted())
			}
			for _, o := range tc.allowed {
				if !res.Has(o) {
					t.Errorf("allowed outcome %s unreachable; got %v", o, res.Sorted())
				}
			}
		})
	}
}

// TestCoherence pins the SC-per-location axioms.
func TestCoherence(t *testing.T) {
	// CoRR: new-then-old on one location is forbidden.
	corr := &lkmm.Test{Name: "CoRR", Threads: [][]lkmm.Op{
		{lkmm.W(0, 1)},
		{lkmm.R(0, 0), lkmm.R(0, 1)},
	}, NumLocs: 1, NumRegs: 2}
	if res := Run(corr); res.Has("r0=1;r1=0") {
		t.Errorf("CoRR violated: %v", res.Sorted())
	}
	// CoWW: a reader can never observe the second store before the first.
	coww := &lkmm.Test{Name: "CoWW", Threads: [][]lkmm.Op{
		{lkmm.W(0, 1), lkmm.W(0, 2)},
		{lkmm.R(0, 0), lkmm.R(0, 1)},
	}, NumLocs: 1, NumRegs: 2}
	if res := Run(coww); res.Has("r0=2;r1=1") {
		t.Errorf("CoWW violated: %v", res.Sorted())
	}
	// CoWR: a thread always sees its own store.
	cowr := &lkmm.Test{Name: "CoWR", Threads: [][]lkmm.Op{
		{lkmm.W(0, 5), lkmm.R(0, 0)},
	}, NumLocs: 1, NumRegs: 1}
	res := Run(cowr)
	if res.Has("r0=0") || !res.Has("r0=5") {
		t.Errorf("CoWR violated: %v", res.Sorted())
	}
}

// TestDeterminism: two explorations of one shape agree exactly.
func TestDeterminism(t *testing.T) {
	a, b := Run(mp(nil, nil)), Run(mp(nil, nil))
	if a.States != b.States || !reflect.DeepEqual(a.Sorted(), b.Sorted()) {
		t.Fatalf("nondeterministic exploration: %d/%v vs %d/%v",
			a.States, a.Sorted(), b.States, b.Sorted())
	}
}

// TestSuiteVerdicts replays every named suite entry through the model
// alone: the LKMM verdicts must hold before OEMU is even consulted.
func TestSuiteVerdicts(t *testing.T) {
	for _, e := range lkmm.Suite() {
		res := Run(e.Test)
		for _, o := range e.Allowed {
			if !res.Has(o) {
				t.Errorf("%s: allowed outcome %s unreachable in model; got %v",
					e.Test.Name, o, res.Sorted())
			}
		}
		for _, o := range e.Forbidden {
			if res.Has(o) {
				t.Errorf("%s: forbidden outcome %s permitted by model; got %v",
					e.Test.Name, o, res.Sorted())
			}
		}
	}
}

// TestSuiteCoversAllPPOCases: the named suite must pin all 7 preserved-
// program-order cases of §10.1.
func TestSuiteCoversAllPPOCases(t *testing.T) {
	cov := lkmm.SuiteCases()
	for c := 1; c <= 7; c++ {
		if !cov[c] {
			t.Errorf("suite covers no shape for PPO case %d", c)
		}
	}
}
