// Package model is an executable reference checker for the LKMM fragment
// OZZ emulates (§3.1–§3.3, §10.1): it enumerates every outcome the model
// permits for a litmus test, independently of internal/oemu. Where
// internal/lkmm drives the real OEMU emulator through the product of
// thread interleavings and Table 2 directive masks, this package explores
// an abstract machine directly — a small-step transition system over
// per-thread store-buffer and versioning states — deduplicating visited
// states, so a regression in OEMU's mechanics shows up as an outcome-set
// divergence in the differential harness (internal/lkmm/diff) even on
// shapes no hand-written test names.
//
// The machine encodes the memory-model axioms as transition rules:
//
//   - Store buffering (§3.1): a store either commits in place or enters
//     the thread's virtual store buffer, to commit at the next drain
//     point. Drain points are exactly the preserved-program-order store
//     cases of §10.1 — smp_wmb (Case 2), smp_mb (Case 1), and release
//     semantics (Case 5) — plus thread exit (the syscall boundary).
//   - SC per location: same-location stores stay in program order (an
//     in-flight buffered store coalesces, CoWW); loads from a location
//     the thread has a buffered store to must forward it (CoWR); a load
//     never observes a version older than one the thread already
//     observed (CoRR) or than the thread's own last commit to the
//     location.
//   - Versioned loads (§3.2): a load observes either the current value
//     or the value the location held at the start of the thread's
//     versioning window. The window is pinned by smp_rmb (Case 3),
//     smp_mb (Case 1), acquire semantics (Case 4), and annotated loads
//     (READ_ONCE/atomic — the dependency rule, Case 6).
//   - Loads execute in place — load-store reordering is never emulated
//     (Case 7 and §3's scope), so the LB outcome is structurally
//     unreachable.
//
// The barrier and annotation semantics come from the active
// memmodel.Table — the same compiled table OEMU and Algorithm 1's
// hypothetical-barrier grouping (hints.TestKind closure) dispatch through
// — so all three layers agree on the PPO cases by construction; what the
// differential harness then checks is that the *mechanics* around those
// predicates agree too. RunModel explores the machine under any
// registered model: store delayability/release and load
// versionability/window pins are read from the table, and a
// store-store-ordered model (x86-TSO) switches the buffer to FIFO
// discipline — no coalescing, and in-place commits drain the buffer
// first, exactly mirroring the emulator's rules.
package model

import (
	"fmt"
	"sort"
	"strings"

	"ozz/internal/lkmm"
	"ozz/internal/memmodel"
)

// Result is the set of outcomes the reference model permits for a test.
type Result struct {
	// Outcomes maps each reachable final register assignment to true.
	Outcomes map[lkmm.Outcome]bool
	// States counts distinct abstract-machine states visited.
	States int
}

// Has reports whether the outcome is permitted.
func (r *Result) Has(o lkmm.Outcome) bool { return r.Outcomes[o] }

// Sorted lists the permitted outcomes canonically.
func (r *Result) Sorted() []string {
	out := make([]string, 0, len(r.Outcomes))
	for o := range r.Outcomes {
		out = append(out, string(o))
	}
	sort.Strings(out)
	return out
}

// version is one committed value of a location: the logical commit time
// and the value written. The commit history per location is the model's
// coherence order; versioned loads pick from it.
type version struct {
	time uint64
	val  uint64
}

// pendingStore is one in-flight entry of a thread's virtual store buffer.
type pendingStore struct {
	loc int
	val uint64
}

// state is one abstract machine configuration. All slices are dense and
// fixed-shape for a given test (locations and threads are indexes), which
// keys canonically for the visited-state set.
type state struct {
	clock uint64
	// hist is the per-location commit history in coherence order; the
	// initial value 0 at time 0 is implicit.
	hist [][]version
	// pc is each thread's next-op index.
	pc []int
	// sb is each thread's virtual store buffer, program order, at most
	// one entry per location (coalescing).
	sb [][]pendingStore
	// tRmb is each thread's versioning-window start (§3.2).
	tRmb []uint64
	// lastCommit[t][loc] is the commit time of thread t's own newest
	// committed store to loc (CoWR floor), 0 if none.
	lastCommit [][]uint64
	// seen[t][loc] is the version time thread t most recently observed
	// at loc (CoRR floor), 0 if none.
	seen [][]uint64
	// regs is the global register file (loads write it).
	regs []uint64
}

func newState(t *lkmm.Test) *state {
	n := len(t.Threads)
	s := &state{
		hist:       make([][]version, t.NumLocs),
		pc:         make([]int, n),
		sb:         make([][]pendingStore, n),
		tRmb:       make([]uint64, n),
		lastCommit: make([][]uint64, n),
		seen:       make([][]uint64, n),
		regs:       make([]uint64, t.NumRegs),
	}
	for i := 0; i < n; i++ {
		s.lastCommit[i] = make([]uint64, t.NumLocs)
		s.seen[i] = make([]uint64, t.NumLocs)
	}
	return s
}

// clone deep-copies the state for one branch of the search.
func (s *state) clone() *state {
	ns := &state{
		clock:      s.clock,
		hist:       make([][]version, len(s.hist)),
		pc:         append([]int(nil), s.pc...),
		sb:         make([][]pendingStore, len(s.sb)),
		tRmb:       append([]uint64(nil), s.tRmb...),
		lastCommit: make([][]uint64, len(s.lastCommit)),
		seen:       make([][]uint64, len(s.seen)),
		regs:       append([]uint64(nil), s.regs...),
	}
	for i := range s.hist {
		ns.hist[i] = append([]version(nil), s.hist[i]...)
	}
	for i := range s.sb {
		ns.sb[i] = append([]pendingStore(nil), s.sb[i]...)
	}
	for i := range s.lastCommit {
		ns.lastCommit[i] = append([]uint64(nil), s.lastCommit[i]...)
		ns.seen[i] = append([]uint64(nil), s.seen[i]...)
	}
	return ns
}

// key canonically encodes the state for the visited set.
func (s *state) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "c%d|", s.clock)
	for _, h := range s.hist {
		for _, v := range h {
			fmt.Fprintf(&b, "%d:%d,", v.time, v.val)
		}
		b.WriteByte(';')
	}
	for i := range s.pc {
		fmt.Fprintf(&b, "p%d,", s.pc[i])
		for _, p := range s.sb[i] {
			fmt.Fprintf(&b, "s%d:%d,", p.loc, p.val)
		}
		fmt.Fprintf(&b, "w%d,", s.tRmb[i])
		for l := range s.lastCommit[i] {
			fmt.Fprintf(&b, "%d:%d,", s.lastCommit[i][l], s.seen[i][l])
		}
		b.WriteByte('|')
	}
	for _, r := range s.regs {
		fmt.Fprintf(&b, "r%d,", r)
	}
	return b.String()
}

// commit appends a new version of loc to the coherence order and advances
// the logical clock.
func (s *state) commit(t, loc int, val uint64) {
	s.clock++
	s.hist[loc] = append(s.hist[loc], version{time: s.clock, val: val})
	s.lastCommit[t][loc] = s.clock
}

// drain commits thread t's buffered stores in program order (a barrier
// drain, release semantics, or thread exit).
func (s *state) drain(t int) {
	for _, p := range s.sb[t] {
		s.commit(t, p.loc, p.val)
	}
	s.sb[t] = nil
}

// current returns the newest version of loc (the memory value) and its
// commit time; (0, 0) when the location was never stored to.
func (s *state) current(loc int) (val, time uint64) {
	h := s.hist[loc]
	if len(h) == 0 {
		return 0, 0
	}
	last := h[len(h)-1]
	return last.val, last.time
}

// valueAt returns the value loc held at logical time floor — the newest
// version with commit time <= floor — and that version's time. This is
// the versioning-window-start value a stale load observes (§3.2).
func (s *state) valueAt(loc int, floor uint64) (val, time uint64) {
	for _, v := range s.hist[loc] {
		if v.time > floor {
			break
		}
		val, time = v.val, v.time
	}
	return val, time
}

// pendingIndex returns the index of thread t's in-flight store to loc, or
// -1 when none is buffered.
func (s *state) pendingIndex(t, loc int) int {
	for i, p := range s.sb[t] {
		if p.loc == loc {
			return i
		}
	}
	return -1
}

// machine is one exhaustive exploration.
type machine struct {
	test    *lkmm.Test
	mm      *memmodel.Table
	visited map[string]bool
	res     *Result
}

// Run explores every interleaving of the test's threads across every
// store-buffer/versioning choice under the LKMM and returns the permitted
// outcome set. The search is exhaustive and deterministic; litmus tests
// are tiny by design, so the deduplicated state space is small.
func Run(t *lkmm.Test) *Result { return RunModel(t, memmodel.LKMM) }

// RunModel is Run under an arbitrary memory model: every transition rule
// reads its barrier/atomicity semantics from the given table.
func RunModel(t *lkmm.Test, mm *memmodel.Table) *Result {
	m := &machine{
		test:    t,
		mm:      mm,
		visited: make(map[string]bool),
		res:     &Result{Outcomes: make(map[lkmm.Outcome]bool)},
	}
	m.explore(newState(t))
	m.res.States = len(m.visited)
	return m.res
}

// explore recurses over all successor states of s, recording the outcome
// when every thread has retired.
func (m *machine) explore(s *state) {
	k := s.key()
	if m.visited[k] {
		return
	}
	m.visited[k] = true
	done := true
	for ti := range m.test.Threads {
		if s.pc[ti] >= len(m.test.Threads[ti]) {
			continue
		}
		done = false
		for _, ns := range m.step(s, ti) {
			m.explore(ns)
		}
	}
	if done {
		// Thread exit drains any remaining buffered stores (the syscall
		// boundary, §3.1); registers are already final.
		ns := s.clone()
		for ti := range m.test.Threads {
			ns.drain(ti)
		}
		m.res.Outcomes[lkmm.MakeOutcome(ns.regs)] = true
	}
}

// step executes thread ti's next op and returns every permitted successor
// — one per nondeterministic choice the memory model grants the op.
func (m *machine) step(s *state, ti int) []*state {
	mm := m.mm
	op := m.test.Threads[ti][s.pc[ti]]
	switch op.Kind {
	case lkmm.OpBarrier:
		// The barrier table of the active model: store-ordering barriers
		// drain the buffer, load-ordering barriers pin the versioning
		// window (under LKMM these are exactly the five §10.1 barrier PPO
		// cases; under TSO only smp_mb does either).
		ns := s.clone()
		ns.pc[ti]++
		if mm.OrdersStores(op.Bar) {
			ns.drain(ti)
		}
		if mm.OrdersLoads(op.Bar) {
			ns.tRmb[ti] = ns.clock
		}
		return []*state{ns}

	case lkmm.OpStore:
		if mm.Release(op.Atomic) {
			// Case 5 (or a TSO locked RMW): all precedent accesses
			// complete first; the release store itself is never delayed.
			ns := s.clone()
			ns.pc[ti]++
			ns.drain(ti)
			ns.commit(ti, op.Loc, op.Val)
			return []*state{ns}
		}
		if mm.StoreStoreOrdered() {
			// FIFO store buffer (x86-TSO): no coalescing — a second store
			// to a buffered location drains the buffer first — and an
			// in-place commit must drain older buffered stores so
			// visibility order matches program order. Mirrors the
			// emulator's FlushPPO rules exactly.
			base := s
			if s.pendingIndex(ti, op.Loc) >= 0 {
				base = s.clone()
				base.drain(ti)
			}
			inOrder := base.clone()
			inOrder.pc[ti]++
			inOrder.drain(ti)
			inOrder.commit(ti, op.Loc, op.Val)
			if !mm.Delayable(op.Atomic) {
				return []*state{inOrder}
			}
			delayed := base.clone()
			delayed.pc[ti]++
			delayed.sb[ti] = append(delayed.sb[ti], pendingStore{loc: op.Loc, val: op.Val})
			return []*state{inOrder, delayed}
		}
		if idx := s.pendingIndex(ti, op.Loc); idx >= 0 {
			// CoWW: same-location program order is preserved by
			// coalescing into the in-flight entry; the intermediate
			// value never reaches the coherence order (a real store
			// buffer also permits this).
			ns := s.clone()
			ns.pc[ti]++
			ns.sb[ti][idx].val = op.Val
			return []*state{ns}
		}
		// The store-buffering choice of §3.1: commit in place, or — when
		// the model lets this annotation delay — hold the value back
		// until the next drain point.
		inOrder := s.clone()
		inOrder.pc[ti]++
		inOrder.commit(ti, op.Loc, op.Val)
		if !mm.Delayable(op.Atomic) {
			return []*state{inOrder}
		}
		delayed := s.clone()
		delayed.pc[ti]++
		delayed.sb[ti] = append(delayed.sb[ti], pendingStore{loc: op.Loc, val: op.Val})
		return []*state{inOrder, delayed}

	case lkmm.OpLoad:
		if idx := s.pendingIndex(ti, op.Loc); idx >= 0 {
			// CoWR: an in-flight own store must be forwarded. The
			// forwarded value is not yet in the coherence order, so the
			// seen floor does not move.
			ns := s.clone()
			ns.pc[ti]++
			ns.regs[op.Reg] = ns.sb[ti][idx].val
			if mm.LoadBarrier(op.Atomic) {
				ns.tRmb[ti] = ns.clock
			}
			return []*state{ns}
		}
		// The versioning choice of §3.2: observe the current value, or —
		// when the model lets this annotation version — the value the
		// location held at the window start. The window floor honours the
		// load barriers (tRmb), the thread's own commits (CoWR), and
		// versions already observed (CoRR). A model with no versionable
		// loads (TSO: no invalidation-queue effects) always reads the
		// current value.
		curVal, curTime := s.current(op.Loc)
		out := []*state{m.readLoad(s, ti, op, curVal, curTime)}
		if mm.Versionable(op.Atomic) {
			floor := s.tRmb[ti]
			if lc := s.lastCommit[ti][op.Loc]; lc > floor {
				floor = lc
			}
			if sv := s.seen[ti][op.Loc]; sv > floor {
				floor = sv
			}
			if oldVal, oldTime := s.valueAt(op.Loc, floor); oldTime != curTime {
				out = append(out, m.readLoad(s, ti, op, oldVal, oldTime))
			}
		}
		return out
	}
	panic(fmt.Sprintf("model: unknown op kind %d", op.Kind))
}

// readLoad builds the successor state of a (non-forwarded) load observing
// the version (val, time): the register and the CoRR floor update, plus
// the window pin of model-designated load-barrier annotations (LKMM Cases
// 4 and 6; acquire only under ARMv8).
func (m *machine) readLoad(s *state, ti int, op lkmm.Op, val, time uint64) *state {
	ns := s.clone()
	ns.pc[ti]++
	ns.regs[op.Reg] = val
	ns.seen[ti][op.Loc] = time
	if m.mm.LoadBarrier(op.Atomic) {
		ns.tRmb[ti] = ns.clock
	}
	return ns
}
