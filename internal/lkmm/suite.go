package lkmm

// The named litmus suite — the §3.3/§10.1 compliance evidence. It used to
// live inside cmd/litmus; it is exported here so the differential harness
// (internal/lkmm/diff) can replay the exact same shapes through both OEMU
// and the reference model (internal/lkmm/model), and cmd/litmus renders it.

// SuiteEntry is one litmus shape with its LKMM verdicts: Allowed outcomes
// must be observable (the emulation-capability direction — a weak outcome
// the LKMM permits that an in-order executor cannot produce), Forbidden
// outcomes must never appear (the soundness direction).
type SuiteEntry struct {
	// Test is the litmus shape.
	Test *Test
	// Allowed lists outcomes that must be reachable.
	Allowed []Outcome
	// Forbidden lists outcomes that must be unreachable.
	Forbidden []Outcome
	// Comment explains what the shape pins, for reports.
	Comment string
	// Cases lists the §10.1 preserved-program-order cases the entry
	// exercises (1-7), empty for pure coherence/capability shapes.
	Cases []int
	// Models overrides the verdicts for non-LKMM memory models, keyed by
	// memmodel registry name ("tso", "armv8"). A model absent from the map
	// inherits the LKMM Allowed/Forbidden verdicts; a present entry
	// REPLACES both lists. Use VerdictsFor to resolve.
	Models map[string]ModelVerdict
}

// ModelVerdict is one memory model's Allowed/Forbidden expectation for a
// suite entry whose verdicts differ from the LKMM's.
type ModelVerdict struct {
	// Allowed lists outcomes that must be reachable under the model.
	Allowed []Outcome
	// Forbidden lists outcomes that must be unreachable under the model.
	Forbidden []Outcome
}

// VerdictsFor resolves the entry's verdicts under the named memory model:
// the per-model override when present, the LKMM defaults otherwise.
func (e *SuiteEntry) VerdictsFor(model string) (allowed, forbidden []Outcome) {
	if v, ok := e.Models[model]; ok {
		return v.Allowed, v.Forbidden
	}
	return e.Allowed, e.Forbidden
}

// suiteMP builds a message-passing shape: P0 stores data then flag (with
// barriers b0 between), P1 loads flag then data (with b1 between).
func suiteMP(name string, b0, b1 []Op) *Test {
	t0 := append([]Op{W(0, 1)}, b0...)
	t0 = append(t0, W(1, 1))
	t1 := append([]Op{R(1, 0)}, b1...)
	t1 = append(t1, R(0, 1))
	return &Test{Name: name, Threads: [][]Op{t0, t1}, NumLocs: 2, NumRegs: 2}
}

// Suite returns the named litmus shapes and their LKMM verdicts. Together
// the entries exercise all seven preserved-program-order cases of §10.1
// (see SuiteEntry.Cases) plus the per-location coherence axioms.
func Suite() []SuiteEntry {
	return []SuiteEntry{
		{
			Test:    suiteMP("MP (relaxed)", nil, nil),
			Allowed: []Outcome{"r0=1;r1=0"},
			Comment: "no barriers: the stale observation is allowed and OEMU reaches it",
			Models: map[string]ModelVerdict{
				// TSO's FIFO store buffer publishes data before flag, and
				// its loads never read stale values: barrier-free MP is
				// already ordered on x86.
				"tso": {Forbidden: []Outcome{"r0=1;r1=0"}},
			},
		},
		{
			Test:      suiteMP("MP+wmb+rmb", []Op{Wmb()}, []Op{Rmb()}),
			Forbidden: []Outcome{"r0=1;r1=0"},
			Comment:   "the Fig. 1 pair: both barriers forbid the stale observation (LKMM cases 2+3)",
			Cases:     []int{2, 3},
		},
		{
			Test:    suiteMP("MP+wmb only", []Op{Wmb()}, nil),
			Allowed: []Outcome{"r0=1;r1=0"},
			Comment: "writer ordered, reader not: still weak — why Fig. 1 needs BOTH barriers",
			Models: map[string]ModelVerdict{
				// On x86 the reader needs no barrier either.
				"tso": {Forbidden: []Outcome{"r0=1;r1=0"}},
			},
		},
		{
			Test:      suiteMP("MP+mb+mb", []Op{Mb()}, []Op{Mb()}),
			Forbidden: []Outcome{"r0=1;r1=0"},
			Comment:   "full barriers (LKMM case 1)",
			Cases:     []int{1},
		},
		{
			Test: &Test{Name: "MP+rel+acq", Threads: [][]Op{
				{W(0, 1), WRel(1, 1)},
				{RAcq(1, 0), R(0, 1)},
			}, NumLocs: 2, NumRegs: 2},
			Forbidden: []Outcome{"r0=1;r1=0"},
			Comment:   "smp_store_release / smp_load_acquire (LKMM cases 4+5)",
			Cases:     []int{4, 5},
		},
		{
			Test: &Test{Name: "MP+wmb+ROnce", Threads: [][]Op{
				{W(0, 1), Wmb(), W(1, 1)},
				{ROnce(1, 0), R(0, 1)},
			}, NumLocs: 2, NumRegs: 2},
			Forbidden: []Outcome{"r0=1;r1=0"},
			Comment:   "READ_ONCE flag consumer: the annotated load orders the dependent load (LKMM case 6)",
			Cases:     []int{6},
			Models: map[string]ModelVerdict{
				// The shape that splits all three models: LKMM forbids it
				// (Case 6), TSO forbids it (in-order loads), but ARMv8
				// drops the conservative annotated-load dependency rule —
				// a relaxed LDR does not order the dependent load, so the
				// stale observation is reachable.
				"armv8": {Allowed: []Outcome{"r0=1;r1=0"}},
				"tso":   {Forbidden: []Outcome{"r0=1;r1=0"}},
			},
		},
		{
			Test: &Test{Name: "SB (relaxed)", Threads: [][]Op{
				{WOnce(0, 1), ROnce(1, 0)},
				{WOnce(1, 1), ROnce(0, 1)},
			}, NumLocs: 2, NumRegs: 2},
			Allowed: []Outcome{"r0=0;r1=0"},
			Comment: "store buffering with Relaxed atomics: the Fig. 10 Rust example's shape",
		},
		{
			Test: &Test{Name: "SB+mb", Threads: [][]Op{
				{W(0, 1), Mb(), R(1, 0)},
				{W(1, 1), Mb(), R(0, 1)},
			}, NumLocs: 2, NumRegs: 2},
			Forbidden: []Outcome{"r0=0;r1=0"},
			Comment:   "only smp_mb orders store-load",
			Cases:     []int{1},
		},
		{
			Test: &Test{Name: "LB", Threads: [][]Op{
				{R(1, 0), W(0, 1)},
				{R(0, 1), W(1, 1)},
			}, NumLocs: 2, NumRegs: 2},
			Forbidden: []Outcome{"r0=1;r1=1"},
			Comment:   "load buffering needs load-store reordering: out of OEMU's scope by design (§3, LKMM case 7)",
			Cases:     []int{7},
		},
		{
			Test: &Test{Name: "CoRR", Threads: [][]Op{
				{W(0, 1)},
				{R(0, 0), R(0, 1)},
			}, NumLocs: 1, NumRegs: 2},
			Forbidden: []Outcome{"r0=1;r1=0"},
			Comment:   "per-location read-read coherence holds on every architecture (even Alpha)",
		},
		{
			Test: &Test{Name: "CoWR", Threads: [][]Op{
				{W(0, 5), R(0, 0)},
			}, NumLocs: 1, NumRegs: 1},
			Allowed:   []Outcome{"r0=5"},
			Forbidden: []Outcome{"r0=0"},
			Comment:   "a thread always sees its own store (store-to-load forwarding)",
		},
	}
}

// SuiteCases returns the set of §10.1 PPO cases the suite covers; the
// compliance tests assert it equals {1..7}.
func SuiteCases() map[int]bool {
	cov := make(map[int]bool)
	for _, e := range Suite() {
		for _, c := range e.Cases {
			cov[c] = true
		}
	}
	return cov
}
