package lkmm

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// The classic litmus shapes, named as in the memory-model literature and
// the LKMM documentation. Locations: 0=x, 1=y. Registers: r0, r1.

// mp builds a message-passing test: P0 stores data then flag (with barrier
// b0 between); P1 loads flag then data (with barrier b1 between).
func mp(b0, b1 []Op) *Test {
	t0 := append([]Op{W(0, 1)}, b0...)
	t0 = append(t0, W(1, 1))
	t1 := append([]Op{R(1, 0)}, b1...)
	t1 = append(t1, R(0, 1))
	return &Test{Name: "MP", Threads: [][]Op{t0, t1}, NumLocs: 2, NumRegs: 2}
}

// TestMPRelaxedAllowsStale: with no barriers, the forbidden-under-SC
// outcome r0=1 (flag seen) & r1=0 (data stale) IS observable — OEMU can
// emulate the weak behaviour (the capability direction).
func TestMPRelaxedAllowsStale(t *testing.T) {
	res := Run(mp(nil, nil))
	if !res.Has("r0=1;r1=0") {
		t.Fatalf("relaxed MP must allow the stale observation; got %v", res.Sorted())
	}
	// Sanity: the SC outcomes are of course also observable.
	for _, o := range []Outcome{"r0=0;r1=0", "r0=1;r1=1"} {
		if !res.Has(o) {
			t.Errorf("missing SC outcome %s", o)
		}
	}
}

// TestMPFullyBarriered: smp_wmb + smp_rmb forbid the stale observation
// (LKMM Cases 2 and 3).
func TestMPFullyBarriered(t *testing.T) {
	res := Run(mp([]Op{Wmb()}, []Op{Rmb()}))
	if res.Has("r0=1;r1=0") {
		t.Fatalf("barriered MP must forbid the stale observation; got %v", res.Sorted())
	}
}

// TestMPWmbOnlyStillWeak: the writer's wmb alone does not save a reader
// without rmb — the reader's loads may still be reordered. This is exactly
// why Fig. 1 needs BOTH barriers.
func TestMPWmbOnlyStillWeak(t *testing.T) {
	res := Run(mp([]Op{Wmb()}, nil))
	if !res.Has("r0=1;r1=0") {
		t.Fatalf("MP with wmb only must still allow the stale read; got %v", res.Sorted())
	}
}

// TestMPRmbOnlyStillWeak: symmetric — the reader's rmb alone cannot order
// the writer's stores.
func TestMPRmbOnlyStillWeak(t *testing.T) {
	res := Run(mp(nil, []Op{Rmb()}))
	if !res.Has("r0=1;r1=0") {
		t.Fatalf("MP with rmb only must still allow the stale observation; got %v", res.Sorted())
	}
}

// TestMPFullBarriers: smp_mb on both sides forbids the stale observation
// (LKMM Case 1).
func TestMPFullBarriers(t *testing.T) {
	res := Run(mp([]Op{Mb()}, []Op{Mb()}))
	if res.Has("r0=1;r1=0") {
		t.Fatalf("mb-barriered MP must forbid the stale observation; got %v", res.Sorted())
	}
}

// TestMPReleaseAcquire: smp_store_release publishing + smp_load_acquire
// consuming forbid the stale observation (LKMM Cases 4 and 5).
func TestMPReleaseAcquire(t *testing.T) {
	test := &Test{
		Name: "MP+rel+acq",
		Threads: [][]Op{
			{W(0, 1), WRel(1, 1)},
			{RAcq(1, 0), R(0, 1)},
		},
		NumLocs: 2, NumRegs: 2,
	}
	res := Run(test)
	if res.Has("r0=1;r1=0") {
		t.Fatalf("release/acquire MP must forbid the stale observation; got %v", res.Sorted())
	}
}

// TestMPReadOnceConsumer: READ_ONCE on the flag acts as a load barrier for
// the subsequent load (OEMU's conservative Case 6 rule), so with an ordered
// writer the stale observation is forbidden.
func TestMPReadOnceConsumer(t *testing.T) {
	test := &Test{
		Name: "MP+wmb+ROnce",
		Threads: [][]Op{
			{W(0, 1), Wmb(), W(1, 1)},
			{ROnce(1, 0), R(0, 1)},
		},
		NumLocs: 2, NumRegs: 2,
	}
	res := Run(test)
	if res.Has("r0=1;r1=0") {
		t.Fatalf("READ_ONCE consumer must forbid the stale read; got %v", res.Sorted())
	}
}

// TestSBRelaxedAllowsBothZero: store buffering — with only WRITE_ONCE
// (relaxed) accesses, both threads may read 0 (the Fig. 10 Rust example);
// this requires store-load reordering, which delayed stores emulate.
func TestSBRelaxedAllowsBothZero(t *testing.T) {
	test := &Test{
		Name: "SB",
		Threads: [][]Op{
			{WOnce(0, 1), ROnce(1, 0)},
			{WOnce(1, 1), ROnce(0, 1)},
		},
		NumLocs: 2, NumRegs: 2,
	}
	res := Run(test)
	if !res.Has("r0=0;r1=0") {
		t.Fatalf("relaxed SB must allow r0=r1=0; got %v", res.Sorted())
	}
}

// TestSBFullBarriersForbidBothZero: smp_mb() between the store and the load
// on both sides forbids r0=r1=0 (the only barrier strong enough for
// store-load ordering).
func TestSBFullBarriersForbidBothZero(t *testing.T) {
	test := &Test{
		Name: "SB+mb",
		Threads: [][]Op{
			{W(0, 1), Mb(), R(1, 0)},
			{W(1, 1), Mb(), R(0, 1)},
		},
		NumLocs: 2, NumRegs: 2,
	}
	res := Run(test)
	if res.Has("r0=0;r1=0") {
		t.Fatalf("SB+mb must forbid r0=r1=0; got %v", res.Sorted())
	}
}

// TestLBForbidden: load buffering (r0=1 & r1=1 requires each thread's load
// to be reordered AFTER its store) must be unreachable — OEMU does not
// emulate load-store reordering (§3 scope; LKMM Case 7 honours the
// dependency variants anyway).
func TestLBForbidden(t *testing.T) {
	test := &Test{
		Name: "LB",
		Threads: [][]Op{
			{R(1, 0), W(0, 1)},
			{R(0, 1), W(1, 1)},
		},
		NumLocs: 2, NumRegs: 2,
	}
	res := Run(test)
	if res.Has("r0=1;r1=1") {
		t.Fatalf("LB outcome requires load-store reordering, which OEMU must not emulate; got %v", res.Sorted())
	}
}

// TestCoRR: read-read coherence per location — after P1 sees the new value
// it can never see the old one again, for any directives.
func TestCoRR(t *testing.T) {
	test := &Test{
		Name: "CoRR",
		Threads: [][]Op{
			{W(0, 1)},
			{R(0, 0), R(0, 1)},
		},
		NumLocs: 1, NumRegs: 2,
	}
	res := Run(test)
	if res.Has("r0=1;r1=0") {
		t.Fatalf("CoRR violated: new-then-old observed; got %v", res.Sorted())
	}
}

// TestCoWW: write-write coherence — the final memory value always matches
// the last store in program order; equivalently a reader thread can never
// see the first value after the second... checked via a reader after both
// commits (flush at thread exit).
func TestCoWW(t *testing.T) {
	test := &Test{
		Name: "CoWW",
		Threads: [][]Op{
			{W(0, 1), W(0, 2)},
			{R(0, 0), R(0, 1)},
		},
		NumLocs: 1, NumRegs: 2,
	}
	res := Run(test)
	// Forbidden: observing 2 then 1 (commit order inverted).
	if res.Has("r0=2;r1=1") {
		t.Fatalf("CoWW violated: got %v", res.Sorted())
	}
}

// TestCoWR: a thread reading its own earlier store must see it (or a newer
// value), never the pre-store value.
func TestCoWR(t *testing.T) {
	test := &Test{
		Name: "CoWR",
		Threads: [][]Op{
			{W(0, 5), R(0, 0)},
		},
		NumLocs: 1, NumRegs: 1,
	}
	res := Run(test)
	if res.Has("r0=0") {
		t.Fatalf("CoWR violated: own store invisible; got %v", res.Sorted())
	}
	if !res.Has("r0=5") {
		t.Fatalf("own store never read; got %v", res.Sorted())
	}
}

// TestWmbBoundsDelayExactly: a delayed store never crosses a wmb, for any
// interleaving/directives: an ORDERED reader (rmb between its loads) that
// observes a post-barrier store must also see every pre-barrier store.
// (Without the reader's rmb the outcome is legitimately weak — that case is
// TestMPWmbOnlyStillWeak.)
func TestWmbBoundsDelayExactly(t *testing.T) {
	test := &Test{
		Name: "MP+wmb+rmb+extra",
		Threads: [][]Op{
			{W(0, 1), Wmb(), W(1, 1), W(2, 1)},
			{R(1, 0), Rmb(), R(0, 1)},
		},
		NumLocs: 3, NumRegs: 2,
	}
	res := Run(test)
	if res.Has("r0=1;r1=0") {
		t.Fatalf("store crossed smp_wmb; got %v", res.Sorted())
	}
}

// TestRunCountsAndDeterminism: the exhaustive engine is deterministic.
func TestRunCountsAndDeterminism(t *testing.T) {
	a := Run(mp(nil, nil))
	b := Run(mp(nil, nil))
	if a.Runs == 0 || a.Runs != b.Runs {
		t.Fatalf("runs %d vs %d", a.Runs, b.Runs)
	}
	as, bs := a.Sorted(), b.Sorted()
	if len(as) != len(bs) {
		t.Fatalf("outcome sets differ: %v vs %v", as, bs)
	}
}

// TestRShape: the R litmus shape — P0: W(x,1); W(y,1). P1: W(y,2); R(x).
// With smp_wmb in P0 and smp_mb in P1, the outcome "P1 read x=0 AND memory
// ends with y=1" (P0's y-store lost the race but its x-store invisible) is
// forbidden; relaxed it is allowed. We check the relaxed direction (the
// emulation-capability side) via registers: r0 = P1's x read.
func TestRShape(t *testing.T) {
	relaxed := &Test{
		Name: "R (relaxed)",
		Threads: [][]Op{
			{W(0, 1), W(1, 1)},
			{W(1, 2), R(0, 0)},
		},
		NumLocs: 2, NumRegs: 1,
	}
	res := Run(relaxed)
	if !res.Has("r0=0") || !res.Has("r0=1") {
		t.Fatalf("R shape should reach both reads; got %v", res.Sorted())
	}
}

// TestSShape: S — P0: W(x,2); wmb; W(y,1). P1: R(y)=1; W(x,1). The
// forbidden-with-barriers outcome is P1 seeing y=1 yet x ending at 2 with
// P1's x=1 overwritten "before" it... in OEMU terms: with the wmb, if P1
// read y=1 then P0's x=2 committed before, so a final x=1 means P1's store
// came later — always consistent. We assert the engine runs the shape and
// never invents values.
func TestSShape(t *testing.T) {
	test := &Test{
		Name: "S",
		Threads: [][]Op{
			{W(0, 2), Wmb(), W(1, 1)},
			{R(1, 0), W(0, 1)},
		},
		NumLocs: 2, NumRegs: 1,
	}
	res := Run(test)
	for _, o := range res.Sorted() {
		if o != "r0=0" && o != "r0=1" {
			t.Fatalf("invented outcome %s", o)
		}
	}
}

// Test2Plus2W: 2+2W — both threads write both locations in opposite
// orders, with wmb between. Observed final values must be one of the
// coherent outcomes; reading threads omitted (pure write shape executes
// without fault and flushes cleanly).
func Test2Plus2W(t *testing.T) {
	test := &Test{
		Name: "2+2W+wmb",
		Threads: [][]Op{
			{W(0, 1), Wmb(), W(1, 2)},
			{W(1, 1), Wmb(), W(0, 2)},
		},
		NumLocs: 2, NumRegs: 0,
	}
	res := Run(test)
	if res.Runs == 0 {
		t.Fatal("no runs")
	}
}

// TestMPThreeReaders: one writer, two independent readers — each reader's
// own barriers decide what it may observe; an unbarriered reader may see
// the stale pair while the barriered one never does, in the SAME execution
// space.
func TestMPThreeReaders(t *testing.T) {
	test := &Test{
		Name: "MP+2 readers",
		Threads: [][]Op{
			{W(0, 1), Wmb(), W(1, 1)},
			{R(1, 0), Rmb(), R(0, 1)}, // ordered reader: r0,r1
			{R(1, 2), R(0, 3)},        // unordered reader: r2,r3
		},
		NumLocs: 2, NumRegs: 4,
	}
	res := Run(test)
	orderedStale, unorderedStale := false, false
	for o := range res.Outcomes {
		s := string(o)
		if strings.Contains(s, "r0=1;r1=0") {
			orderedStale = true
		}
		if strings.Contains(s, "r2=1;r3=0") {
			unorderedStale = true
		}
	}
	if orderedStale {
		t.Error("barriered reader observed the stale pair")
	}
	if !unorderedStale {
		t.Error("unbarriered reader never observed the stale pair")
	}
}

// TestPropertyNoInventedValues: for random small programs, every register
// outcome is a value some store actually wrote (or the initial 0) — OEMU
// never fabricates data, no matter the directives.
func TestPropertyNoInventedValues(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		written := map[uint64]bool{0: true}
		mkThread := func(regBase int) []Op {
			var ops []Op
			n := rng.Intn(3) + 1
			for i := 0; i < n; i++ {
				loc := rng.Intn(2)
				switch rng.Intn(3) {
				case 0:
					v := uint64(rng.Intn(5) + 1)
					written[v] = true
					ops = append(ops, W(loc, v))
				case 1:
					ops = append(ops, R(loc, regBase))
				default:
					ops = append(ops, Wmb())
				}
			}
			return ops
		}
		test := &Test{
			Name:    "random",
			Threads: [][]Op{mkThread(0), mkThread(1)},
			NumLocs: 2, NumRegs: 2,
		}
		res := Run(test)
		for o := range res.Outcomes {
			for _, part := range strings.Split(string(o), ";") {
				var reg int
				var val uint64
				if _, err := fmt.Sscanf(part, "r%d=%d", &reg, &val); err != nil {
					return false
				}
				if !written[val] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRunPlannedEquivalence: over the whole named suite, installing each
// directive assignment as a precompiled shared plan (the engine's cached
// path) observes exactly the outcome set the incremental directive path
// does, from exactly as many runs.
func TestRunPlannedEquivalence(t *testing.T) {
	for _, e := range Suite() {
		inc := Run(e.Test)
		planned := RunPlanned(e.Test)
		if planned.Runs != inc.Runs {
			t.Errorf("%s: planned %d runs vs incremental %d", e.Test.Name, planned.Runs, inc.Runs)
		}
		if !reflect.DeepEqual(planned.Outcomes, inc.Outcomes) {
			t.Errorf("%s: outcome sets diverge\n  incremental: %v\n  planned:     %v",
				e.Test.Name, inc.Sorted(), planned.Sorted())
		}
	}
}
