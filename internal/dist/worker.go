package dist

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"ozz/internal/core"
	"ozz/internal/modules"
	"ozz/internal/obs"
	"ozz/internal/report"
	"ozz/internal/syzlang"
)

// leaseChunk is how many steps a worker runs between context checks while
// executing a lease — small enough that a shutdown signal interrupts a
// shard promptly, large enough that the check is free.
const leaseChunk = 32

// syncRounds bounds the delta-exchange iterations of one sync
// conversation; two rounds converge (advertise, learn Want, ship), the
// rest is slack for corpus growth between rounds.
const syncRounds = 4

// WorkerConfig parameterizes a fabric worker.
type WorkerConfig struct {
	// ManagerURL is the manager's base URL (e.g. "http://127.0.0.1:9900").
	ManagerURL string
	// Name is the worker's human-readable name for the manager's logs.
	Name string
	// Campaign names the hosted campaign to join; empty joins the
	// manager's default campaign.
	Campaign string
	// Token is the campaign's auth token, required when the manager was
	// configured with one.
	Token string
	// PoolWorkers is the local pool width each lease runs at
	// (0 = GOMAXPROCS).
	PoolWorkers int
	// Obs, when non-nil, receives the worker's fabric and campaign
	// metrics; nil gives the worker a fresh private registry.
	Obs *obs.Registry
	// Events, when non-nil, receives the worker's event stream.
	Events *obs.EventLog
	// HTTPClient overrides the transport (tests); nil uses a client with
	// a 30s timeout.
	HTTPClient *http.Client
	// MaxBackoff caps the exponential retry backoff (default 2s).
	MaxBackoff time.Duration
}

// Worker runs campaign shards leased from a manager on the local
// execution stack (core.Pool over internal/engine), exchanging corpus
// deltas and findings after every shard. Construct with NewWorker, drive
// with Run.
type Worker struct {
	cfg    WorkerConfig
	do     *distObs
	client *http.Client

	campaign       CampaignSpec
	target         *syzlang.Target
	heartbeatEvery time.Duration

	mu          sync.Mutex
	id          int    // assigned worker identity (rewritten on re-register)
	epoch       uint64 // campaign epoch from the last (re-)register
	rng         *rand.Rand
	corpus      map[string]*syzlang.Program // key hash -> program
	corpusOrder []string                    // key hashes in first-seen order
	reports     *report.Set
	reported    map[string]struct{} // titles already acked by the manager
	want        []string            // key hashes the manager asked for
	held        []uint64            // lease IDs currently held (heartbeats renew)

	// dieAfterLeases is a test hook: when > 0, Run returns abruptly (no
	// completion ack, no final sync, no deregister — a simulated kill)
	// after acquiring that many leases.
	dieAfterLeases int
}

// NewWorker builds a fabric worker client. Call Run to execute.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	client := cfg.HTTPClient
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Worker{
		cfg:      cfg,
		do:       newDistObs(cfg.Obs, cfg.Events),
		client:   client,
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
		corpus:   make(map[string]*syzlang.Program),
		reports:  report.NewSet(),
		reported: make(map[string]struct{}),
	}
}

// Obs returns the registry the worker publishes into.
func (w *Worker) Obs() *obs.Registry { return w.do.reg }

// CorpusLen returns the worker's merged local corpus size (its own shard
// results plus everything synced from the manager).
func (w *Worker) CorpusLen() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.corpusOrder)
}

// WriteCorpus streams the worker's merged local corpus to out in the
// corpus encoding, first-seen order.
func (w *Worker) WriteCorpus(out io.Writer) error {
	w.mu.Lock()
	progs := make([]*syzlang.Program, 0, len(w.corpusOrder))
	for _, h := range w.corpusOrder {
		progs = append(progs, w.corpus[h])
	}
	w.mu.Unlock()
	return core.EncodePrograms(out, progs)
}

// backoff returns the exponential client-side retry delay for the given
// consecutive-failure count, with ±50% jitter so a restarted fleet does
// not stampede the manager in lockstep.
func (w *Worker) backoff(attempt int) time.Duration {
	d := 100 * time.Millisecond << uint(attempt)
	if d > w.cfg.MaxBackoff || d <= 0 {
		d = w.cfg.MaxBackoff
	}
	w.mu.Lock()
	jitter := 0.5 + w.rng.Float64() // 0.5x .. 1.5x
	w.mu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// sleep waits for d or until ctx is cancelled.
func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// url joins the manager base URL with an endpoint path.
func (w *Worker) url(path string) string {
	return strings.TrimRight(w.cfg.ManagerURL, "/") + path
}

// ident snapshots the worker's current (id, epoch) pair.
func (w *Worker) ident() (int, uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id, w.epoch
}

// register introduces the worker, retrying with backoff until ctx dies.
// A re-registration (the worker already had an identity — the manager
// restarted under a new epoch, or forgot us) advertises the previous
// (worker, epoch) pair so the manager can eagerly release the stale
// incarnation's leases, and voids any leases held locally: their IDs are
// fenced off by the epoch bump.
func (w *Worker) register(ctx context.Context) error {
	prevID, prevEpoch := w.ident()
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		start := time.Now()
		var resp RegisterResponse
		err := postJSON(w.client, w.url(PathRegister), RegisterRequest{
			V: ProtocolVersion, Name: w.cfg.Name,
			Campaign: w.cfg.Campaign, Token: w.cfg.Token,
			PrevWorkerID: prevID, PrevEpoch: prevEpoch,
		}, &resp)
		observe(w.do.httpRegister, start)
		if err == nil {
			epoch := resp.Epoch
			if epoch == 0 {
				epoch = 1 // v1 manager: single implicit epoch
			}
			w.mu.Lock()
			w.id = resp.WorkerID
			w.epoch = epoch
			w.held = nil
			w.mu.Unlock()
			w.campaign = resp.Campaign
			w.target = modules.Target(resp.Campaign.Modules...)
			if resp.HeartbeatMS <= 0 {
				resp.HeartbeatMS = 1000
			}
			w.heartbeatEvery = time.Duration(resp.HeartbeatMS) * time.Millisecond
			w.do.ev.Info(resp.WorkerID, "dist.register", map[string]any{
				"manager": w.cfg.ManagerURL, "name": w.cfg.Name,
				"campaign": w.cfg.Campaign, "epoch": epoch, "prev_worker": prevID,
			})
			return nil
		}
		if errStatus(err) == http.StatusForbidden {
			return fmt.Errorf("dist: register rejected: %w", err)
		}
		w.do.ev.Warn(0, "dist.retry", map[string]any{"op": "register", "err": err.Error()})
		sleep(ctx, w.backoff(attempt))
	}
}

// heartbeatLoop renews liveness and held leases until stop closes.
func (w *Worker) heartbeatLoop(ctx context.Context, stop <-chan struct{}) {
	t := time.NewTicker(w.heartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-t.C:
			w.mu.Lock()
			held := append([]uint64(nil), w.held...)
			id, epoch := w.id, w.epoch
			w.mu.Unlock()
			start := time.Now()
			var resp HeartbeatResponse
			err := postJSON(w.client, w.url(PathHeartbeat), HeartbeatRequest{
				V: ProtocolVersion, WorkerID: id, Leases: held,
				Campaign: w.cfg.Campaign, Token: w.cfg.Token, Epoch: epoch,
			}, &resp)
			observe(w.do.httpHeartbeat, start)
			if err != nil && errStatus(err) != http.StatusGone {
				// A stale-epoch reply is the poll loop's cue, not ours.
				w.do.ev.Warn(id, "dist.retry", map[string]any{"op": "heartbeat", "err": err.Error()})
			}
		}
	}
}

// Run executes the worker loop: register, then poll/run/report/sync until
// the manager declares the campaign done or ctx is cancelled. On
// cancellation it performs a final deregistering sync (flushing any
// unreported findings and unsynced corpus programs) before returning, so
// a gracefully stopped worker loses nothing.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	stop := make(chan struct{})
	defer close(stop)
	go w.heartbeatLoop(ctx, stop)

	var (
		completed []uint64
		failures  int
		leases    int
	)
	for {
		if ctx.Err() != nil {
			w.deregister()
			return ctx.Err()
		}
		id, epoch := w.ident()
		start := time.Now()
		var resp PollResponse
		err := postJSON(w.client, w.url(PathPoll), PollRequest{
			V: ProtocolVersion, WorkerID: id, Completed: completed,
			Campaign: w.cfg.Campaign, Token: w.cfg.Token, Epoch: epoch,
		}, &resp)
		observe(w.do.httpPoll, start)
		switch {
		case err == nil:
			failures = 0
		case errStatus(err) == http.StatusGone:
			// The manager restarted under a new epoch (or forgot us):
			// transparently rejoin. Completions for pre-restart lease IDs
			// are dropped — recovery requeued those shards anyway.
			w.do.ev.Warn(id, "dist.reregister", map[string]any{"cause": err.Error()})
			completed = nil
			if err := w.register(ctx); err != nil {
				return err
			}
			continue
		case errStatus(err) == http.StatusForbidden:
			return fmt.Errorf("dist: poll rejected: %w", err)
		default:
			failures++
			w.do.ev.Warn(id, "dist.retry", map[string]any{"op": "poll", "err": err.Error()})
			sleep(ctx, w.backoff(failures))
			continue
		}
		completed = nil
		if resp.Done {
			w.deregister()
			w.do.ev.Info(id, "dist.done", map[string]any{
				"leases": leases, "corpus": w.CorpusLen(),
			})
			return nil
		}
		batch := resp.Leases
		if len(batch) == 0 && resp.Lease != nil {
			batch = []*Lease{resp.Lease}
		}
		if len(batch) == 0 {
			retry := time.Duration(resp.RetryMS) * time.Millisecond
			if retry <= 0 {
				retry = 100 * time.Millisecond
			}
			sleep(ctx, retry)
			continue
		}
		for _, lease := range batch {
			leases++
			w.mu.Lock()
			w.held = append(w.held, lease.ID)
			w.mu.Unlock()
			if w.dieAfterLeases > 0 && leases >= w.dieAfterLeases {
				return fmt.Errorf("dist: worker killed by test hook holding lease %d", lease.ID)
			}
			done := w.runLease(ctx, lease)
			w.mu.Lock()
			w.held = removeLease(w.held, lease.ID)
			w.mu.Unlock()
			if done {
				completed = append(completed, lease.ID)
			}
			if ctx.Err() != nil {
				break
			}
		}
		// Push findings and exchange corpus deltas after every batch —
		// cheap (delta-based), and it keeps the global view fresh enough
		// that a later crash loses at most one batch's discoveries.
		w.pushReports()
		w.syncConverse(false)
	}
}

// removeLease drops one lease ID from the held list.
func removeLease(held []uint64, id uint64) []uint64 {
	for i, h := range held {
		if h == id {
			return append(held[:i], held[i+1:]...)
		}
	}
	return held
}

// runLease executes one shard on a fresh local pool, folding its corpus
// and findings into the worker's aggregate state. It reports whether the
// shard ran to completion (false when ctx was cancelled mid-shard — the
// manager will reassign the lease, and because shard execution is
// deterministic, the partial results are a prefix of the rerun's and
// merge harmlessly).
func (w *Worker) runLease(ctx context.Context, lease *Lease) bool {
	pool := core.NewPool(coreConfig(w.campaign, lease.Seed, w.cfg.Obs, w.cfg.Events), w.cfg.PoolWorkers)
	ran := 0
	for ran < lease.Steps {
		if ctx.Err() != nil {
			w.absorb(pool)
			return false
		}
		n := leaseChunk
		if lease.Steps-ran < n {
			n = lease.Steps - ran
		}
		pool.Run(n)
		ran += n
	}
	w.absorb(pool)
	id, _ := w.ident()
	w.do.ev.Info(id, "dist.lease_complete", map[string]any{
		"lease": lease.ID, "shard": lease.Shard,
	})
	return true
}

// absorb merges one pool campaign's corpus and findings into the worker's
// aggregate state, deduplicating by program key and crash title.
func (w *Worker) absorb(pool *core.Pool) {
	progs := pool.CorpusPrograms()
	reps := pool.Reports.All()
	w.mu.Lock()
	for _, p := range progs {
		h := progHash(p)
		if _, dup := w.corpus[h]; dup {
			continue
		}
		w.corpus[h] = p
		w.corpusOrder = append(w.corpusOrder, h)
	}
	for _, r := range reps {
		w.reports.Add(r)
	}
	w.do.corpusProgs.Set(float64(len(w.corpusOrder)))
	w.mu.Unlock()
}

// pushReports ships findings the manager has not acked yet.
func (w *Worker) pushReports() {
	w.mu.Lock()
	var fresh []*report.Report
	for _, r := range w.reports.All() {
		if _, acked := w.reported[r.Title]; !acked {
			fresh = append(fresh, r)
		}
	}
	w.mu.Unlock()
	if len(fresh) == 0 {
		return
	}
	id, epoch := w.ident()
	start := time.Now()
	var resp ReportResponse
	err := postJSON(w.client, w.url(PathReport), ReportRequest{
		V: ProtocolVersion, WorkerID: id, Reports: fresh,
		Campaign: w.cfg.Campaign, Token: w.cfg.Token, Epoch: epoch,
	}, &resp)
	observe(w.do.httpReport, start)
	if err != nil {
		w.do.ev.Warn(id, "dist.retry", map[string]any{"op": "report", "err": err.Error()})
		return // unacked titles stay queued for the next push
	}
	w.mu.Lock()
	for _, r := range fresh {
		w.reported[r.Title] = struct{}{}
	}
	w.mu.Unlock()
	w.do.ev.Info(id, "dist.report", map[string]any{
		"sent": len(fresh), "added": resp.Added,
	})
}

// syncConverse runs one delta conversation with the manager: advertise
// key hashes, ship the bodies the previous round's Want asked for, merge
// what the manager sends back, and repeat until the Want list drains
// (bounded by syncRounds). With deregister set, every request carries the
// Deregister flag, so the manager releases this worker's leases on the
// first round and keeps merging shipped programs on the rest.
func (w *Worker) syncConverse(deregister bool) {
	rejoined := false
	for round := 0; round < syncRounds; round++ {
		w.mu.Lock()
		keys := append([]string(nil), w.corpusOrder...)
		var shipped []*syzlang.Program
		for _, h := range w.want {
			if p, ok := w.corpus[h]; ok {
				shipped = append(shipped, p)
			}
		}
		w.want = nil
		w.mu.Unlock()
		var payload strings.Builder
		if len(shipped) > 0 {
			_ = core.EncodePrograms(&payload, shipped)
			w.do.syncBytesOut.Add(uint64(payload.Len()))
			w.do.syncProgsOut.Add(uint64(len(shipped)))
		}
		id, epoch := w.ident()
		start := time.Now()
		var resp SyncResponse
		err := postJSON(w.client, w.url(PathSync), SyncRequest{
			V: ProtocolVersion, WorkerID: id,
			Keys: keys, Programs: payload.String(),
			Deregister: deregister,
			Campaign:   w.cfg.Campaign, Token: w.cfg.Token, Epoch: epoch,
		}, &resp)
		observe(w.do.httpSync, start)
		if errStatus(err) == http.StatusGone && !rejoined {
			// Manager restarted mid-conversation: rejoin once (bounded —
			// the 410 proves the manager is answering) so a final flush
			// still lands rather than losing this worker's discoveries.
			rejoined = true
			rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			rerr := w.register(rctx)
			cancel()
			if rerr == nil {
				round--
				continue
			}
			return
		}
		if err != nil {
			w.do.ev.Warn(id, "dist.retry", map[string]any{"op": "sync", "err": err.Error()})
			return
		}
		merged := 0
		if resp.Programs != "" {
			progs, _ := core.DecodePrograms(strings.NewReader(resp.Programs), w.target)
			w.mu.Lock()
			for _, p := range progs {
				h := progHash(p)
				if _, dup := w.corpus[h]; dup {
					continue
				}
				w.corpus[h] = p
				w.corpusOrder = append(w.corpusOrder, h)
				merged++
			}
			w.do.corpusProgs.Set(float64(len(w.corpusOrder)))
			w.mu.Unlock()
			w.do.syncBytesIn.Add(uint64(len(resp.Programs)))
			w.do.syncProgsIn.Add(uint64(merged))
		}
		w.do.ev.Info(id, "dist.sync", map[string]any{
			"round": round, "sent_programs": len(shipped), "recv_programs": merged,
			"want": len(resp.Want), "deregister": deregister,
		})
		w.mu.Lock()
		w.want = resp.Want
		w.mu.Unlock()
		if len(resp.Want) == 0 {
			return
		}
	}
}

// deregister performs the worker's final flush: remaining reports, then a
// deregistering sync conversation that ships everything the manager still
// wants.
func (w *Worker) deregister() {
	w.pushReports()
	w.syncConverse(true)
	id, _ := w.ident()
	w.do.ev.Info(id, "dist.deregister", nil)
}
