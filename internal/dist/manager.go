package dist

import (
	"crypto/subtle"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"ozz/internal/core"
	"ozz/internal/memmodel"
	"ozz/internal/modules"
	"ozz/internal/obs"
	"ozz/internal/report"
	"ozz/internal/syzlang"
)

// Shard is one deterministic work unit of the campaign plan: an
// independent pool campaign of Steps steps under the derived Seed. The
// union of all shards' findings is the campaign's result, independent of
// which worker runs which shard.
type Shard struct {
	// Index is the shard's position in the plan.
	Index int
	// Seed is the shard's derived campaign seed.
	Seed int64
	// Steps is the shard's step budget.
	Steps int
}

// shardSeed derives shard i's campaign seed from the base seed with the
// splitmix64 finalizer — the same mixing discipline core.Pool uses for
// per-step streams, so sibling shards draw statistically independent
// program sequences.
func shardSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(i+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Shards builds the deterministic shard plan covering totalSteps in
// shardSteps-sized units (the last shard takes the remainder). The plan is
// a pure function of its arguments — the manager and RunShardsLocal
// compute identical plans.
func Shards(seed int64, totalSteps, shardSteps int) []Shard {
	if totalSteps <= 0 {
		return nil
	}
	if shardSteps <= 0 || shardSteps > totalSteps {
		shardSteps = totalSteps
	}
	var plan []Shard
	for i, done := 0, 0; done < totalSteps; i++ {
		steps := shardSteps
		if totalSteps-done < steps {
			steps = totalSteps - done
		}
		plan = append(plan, Shard{Index: i, Seed: shardSeed(seed, i), Steps: steps})
		done += steps
	}
	return plan
}

// coreConfig reconstructs the core campaign configuration for one shard.
func coreConfig(spec CampaignSpec, seed int64, reg *obs.Registry, ev *obs.EventLog) core.Config {
	// An empty or unknown model name falls back to LKMM rather than
	// failing the shard: a mixed fleet where one side predates a model
	// should degrade to the default, not wedge the campaign.
	mm, err := memmodel.ByName(spec.Model)
	if spec.Model == "" || err != nil {
		mm = memmodel.LKMM
	}
	return core.Config{
		Modules:         spec.Modules,
		Bugs:            modules.Bugs(spec.Bugs...),
		Seed:            seed,
		ProgLen:         spec.ProgLen,
		MaxHintsPerPair: spec.MaxHintsPerPair,
		MaxPairs:        spec.MaxPairs,
		UseSeeds:        spec.UseSeeds,
		HintOrder:       spec.HintOrder,
		Model:           mm,
		Obs:             reg,
		Events:          ev,
	}
}

// ManagerConfig parameterizes the fabric manager. The campaign fields
// (Campaign, TotalSteps, ShardSteps, Seed, Token) define the manager's
// default campaign; AddCampaign hosts more next to it.
type ManagerConfig struct {
	// Campaign is the default campaign's configuration shipped to workers.
	Campaign CampaignSpec
	// TotalSteps is the default campaign's step budget across all shards.
	TotalSteps int
	// ShardSteps is the per-lease step budget (default 64).
	ShardSteps int
	// Seed is the base campaign seed the shard seeds derive from.
	Seed int64
	// Token, when non-empty, is the default campaign's auth token.
	Token string
	// LeaseTTL is how long a granted lease lives without renewal
	// (default 5s).
	LeaseTTL time.Duration
	// HeartbeatEvery is the heartbeat cadence told to workers
	// (default 1s).
	HeartbeatEvery time.Duration
	// HeartbeatMisses is how many missed cadences mark a worker dead
	// (default 3).
	HeartbeatMisses int
	// MaxLeaseBatch caps how many shards one poll may grant to a worker
	// when the pending backlog is deep (default 4).
	MaxLeaseBatch int
	// StealDuplicates caps how many duplicate (stolen) leases may be
	// outstanding per in-flight shard beyond the original (default 1;
	// negative disables work stealing).
	StealDuplicates int
	// StateDir, when non-empty, makes every hosted campaign durable:
	// state is journaled to <StateDir>/<campaign>/wal.log, compacted into
	// snapshot.json, and restored (with an epoch bump) on the next
	// NewManager over the same directory.
	StateDir string
	// SnapshotEvery is how many WAL records trigger a compaction
	// (default 256).
	SnapshotEvery int
	// Obs, when non-nil, is the registry the manager publishes fabric
	// metrics into; nil gives it a fresh private registry.
	Obs *obs.Registry
	// Events, when non-nil, receives the manager's dist.* event stream,
	// tagged with the registered worker IDs.
	Events *obs.EventLog
}

// normalize resolves the manager defaults.
func (c *ManagerConfig) normalize() {
	if c.ShardSteps <= 0 {
		c.ShardSteps = 64
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 5 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 3
	}
	if c.MaxLeaseBatch <= 0 {
		c.MaxLeaseBatch = 4
	}
	if c.StealDuplicates == 0 {
		c.StealDuplicates = 1
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 256
	}
}

// defaultCampaignConfig extracts the default campaign's config.
func (c *ManagerConfig) defaultCampaignConfig() CampaignConfig {
	return CampaignConfig{
		Campaign: c.Campaign, TotalSteps: c.TotalSteps,
		ShardSteps: c.ShardSteps, Seed: c.Seed, Token: c.Token,
	}
}

// Manager hosts campaigns: each owns its shard frontier, merged coverage
// corpus (keyed by program-key hash), globally deduplicated report set,
// worker/lease tables, and registration epoch; with a state directory
// configured each is also journaled to a write-ahead log and restored on
// restart. All methods and HTTP handlers are safe for concurrent use.
type Manager struct {
	cfg ManagerConfig
	do  *distObs

	mu    sync.Mutex
	camps map[string]*campaign
	order []string // campaign names in creation order

	// now is stubbed in tests; defaults to time.Now.
	now func() time.Time
}

// NewManager builds a fabric manager hosting the configuration's default
// campaign. With StateDir set it restores every campaign found in the
// directory (the default campaign plus any previously hosted ones),
// replaying snapshot+WAL and bumping epochs so surviving workers
// re-register. It does not listen; mount Handler on an http.Server.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	cfg.normalize()
	m := &Manager{
		cfg:   cfg,
		do:    newDistObs(cfg.Obs, cfg.Events),
		camps: make(map[string]*campaign),
		now:   time.Now,
	}
	if err := m.AddCampaign(DefaultCampaign, cfg.defaultCampaignConfig()); err != nil {
		return nil, err
	}
	if cfg.StateDir != "" {
		entries, err := os.ReadDir(cfg.StateDir)
		if err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("dist: state dir: %w", err)
		}
		for _, e := range entries {
			name := e.Name()
			if !e.IsDir() || !validCampaignName(name) || name == DefaultCampaign {
				continue
			}
			// A previously hosted campaign: restore it with an empty config
			// (the snapshot supplies plan and spec; tokens are config, so a
			// relaunched fleet re-supplies them via AddCampaign).
			if err := m.AddCampaign(name, CampaignConfig{}); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// AddCampaign hosts (or, when the state directory already holds its
// snapshot/WAL, restores) a named campaign next to the default one. It
// is idempotent on the name: re-adding updates the auth token and leaves
// an existing campaign's plan and state untouched — except when the
// existing campaign has no plan at all (restored from a legacy state
// directory holding only a WAL, no snapshot), in which case it adopts
// the supplied plan instead of staying a zero-shard husk.
func (m *Manager) AddCampaign(name string, cfg CampaignConfig) error {
	if !validCampaignName(name) {
		return fmt.Errorf("dist: invalid campaign name %q", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.camps[name]; ok {
		c.cfg.Token = cfg.Token
		if len(c.shards) == 0 && cfg.TotalSteps > 0 {
			cfg.normalize()
			c.cfg.Campaign = cfg.Campaign
			c.cfg.TotalSteps, c.cfg.ShardSteps, c.cfg.Seed = cfg.TotalSteps, cfg.ShardSteps, cfg.Seed
			c.target = modules.Target(cfg.Campaign.Modules...)
			c.doneEmitted = false
			c.rebuildPlanLocked()
			c.snapshotLocked()
			m.setGaugesLocked()
		}
		return nil
	}
	c := newCampaign(m, name, cfg)
	if m.cfg.StateDir != "" {
		if err := c.openStateLocked(); err != nil {
			return err
		}
	}
	m.camps[name] = c
	m.order = append(m.order, name)
	m.do.campaigns.Set(float64(len(m.camps)))
	m.do.campaignEpoch.With(name).Set(float64(c.epoch))
	m.setGaugesLocked()
	return nil
}

// Campaigns returns the hosted campaign names in creation order.
func (m *Manager) Campaigns() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

// ExportCampaign streams the named campaign's snapshot (corpus, reports,
// completed shards, plan, epoch — everything but auth tokens) to w, the
// drain half of drain/relaunch. The fleet may keep running; the export
// is a point-in-time copy.
func (m *Manager) ExportCampaign(name string, w io.Writer) error {
	m.mu.Lock()
	c := m.campLocked(name)
	if c == nil {
		m.mu.Unlock()
		return fmt.Errorf("dist: unknown campaign %q", name)
	}
	snap := c.buildSnapshotLocked()
	m.mu.Unlock()
	m.do.ev.Info(0, "dist.export", map[string]any{
		"campaign": snap.Name, "corpus": len(snap.Completed), "reports": len(snap.Reports),
	})
	return writeSnapshotTo(w, snap)
}

// ImportCampaign reads a snapshot from r and hosts it under its recorded
// name (overwriting a hosted campaign's state if the name collides), the
// relaunch half of drain/relaunch. The importing manager's state
// directory, if any, immediately persists the imported state; the token
// argument guards the relaunched campaign.
func (m *Manager) ImportCampaign(r io.Reader, token string) (string, error) {
	snap, err := decodeSnapshot(r)
	if err != nil {
		return "", err
	}
	if !validCampaignName(snap.Name) {
		return "", fmt.Errorf("dist: snapshot has invalid campaign name %q", snap.Name)
	}
	m.mu.Lock()
	c := m.campLocked(snap.Name)
	if c == nil {
		c = newCampaign(m, snap.Name, CampaignConfig{Token: token})
		m.camps[snap.Name] = c
		m.order = append(m.order, snap.Name)
	}
	c.cfg.Token = token
	c.restoreSnapshotLocked(snap)
	c.epoch++
	c.requeueIncompleteLocked()
	if m.cfg.StateDir != "" {
		// Attach the state directory WITHOUT restoring from it: whatever
		// is on disk (a stale snapshot, an orphaned WAL from a campaign
		// degraded by an earlier write failure) is exactly what this
		// import replaces. openStateLocked here would replay that stale
		// state over the import and then persist it, silently discarding
		// the snapshot we just read.
		if c.wal == nil {
			if err := c.attachStateLocked(); err != nil {
				m.mu.Unlock()
				return "", err
			}
		}
		c.snapshotLocked()
		c.journalLocked(walEpoch, walEpochD{Epoch: c.epoch})
	}
	m.do.campaigns.Set(float64(len(m.camps)))
	m.do.campaignEpoch.With(snap.Name).Set(float64(c.epoch))
	m.setGaugesLocked()
	m.mu.Unlock()
	m.do.ev.Info(0, "dist.import", map[string]any{
		"campaign": snap.Name, "epoch": snap.Epoch + 1,
		"reports": len(snap.Reports), "completed": len(snap.Completed),
	})
	return snap.Name, nil
}

// Close snapshots and closes every durable campaign's WAL. A manager
// that is not durable ignores Close.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var first error
	for _, name := range m.order {
		c := m.camps[name]
		if c.wal == nil {
			continue
		}
		c.snapshotLocked()
		if c.wal != nil {
			if err := c.wal.close(); err != nil && first == nil {
				first = err
			}
			c.wal = nil
		}
	}
	return first
}

// campLocked resolves a campaign name (empty = default); nil if unknown.
func (m *Manager) campLocked(name string) *campaign {
	if name == "" {
		name = DefaultCampaign
	}
	return m.camps[name]
}

// def returns the default campaign (always hosted).
func (m *Manager) def() *campaign {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.camps[DefaultCampaign]
}

// Obs returns the registry the manager publishes fabric metrics into.
func (m *Manager) Obs() *obs.Registry { return m.do.reg }

// Done reports whether every shard of the default campaign has completed.
func (m *Manager) Done() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.camps[DefaultCampaign].doneLocked()
}

// AllDone reports whether every hosted campaign has completed.
func (m *Manager) AllDone() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.camps {
		if !c.doneLocked() {
			return false
		}
	}
	return true
}

// Epoch returns the default campaign's registration epoch (1 on a fresh
// campaign, +1 per restore).
func (m *Manager) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.camps[DefaultCampaign].epoch
}

// WorkersConnected returns the number of currently registered workers
// across all campaigns.
func (m *Manager) WorkersConnected() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, c := range m.camps {
		n += c.connectedLocked()
	}
	return n
}

// ShardsCompleted returns how many default-campaign shards have finished.
func (m *Manager) ShardsCompleted() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.camps[DefaultCampaign].completed
}

// ShardsTotal returns the default campaign's shard plan size.
func (m *Manager) ShardsTotal() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.camps[DefaultCampaign].shards)
}

// WorkersSeen returns how many workers ever registered with the default
// campaign (including ones that since deregistered or died).
func (m *Manager) WorkersSeen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.camps[DefaultCampaign].nextWorker
}

// Reports returns the default campaign's globally deduplicated findings
// in first-seen order.
func (m *Manager) Reports() []*report.Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.camps[DefaultCampaign].reports.All()
}

// ReportTitles returns the default campaign's sorted unique crash titles.
func (m *Manager) ReportTitles() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.camps[DefaultCampaign].reports.Titles()
}

// CorpusLen returns the default campaign's merged global corpus size.
func (m *Manager) CorpusLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.camps[DefaultCampaign].corpusOrder)
}

// CorpusKeyHashes returns the default campaign's merged corpus key hashes
// in first-seen order (testing and tooling).
func (m *Manager) CorpusKeyHashes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.camps[DefaultCampaign].corpusOrder...)
}

// WriteCorpus streams the default campaign's merged global corpus to w in
// the corpus encoding, first-seen order.
func (m *Manager) WriteCorpus(w io.Writer) error {
	m.mu.Lock()
	c := m.camps[DefaultCampaign]
	progs := make([]*syzlang.Program, 0, len(c.corpusOrder))
	for _, h := range c.corpusOrder {
		progs = append(progs, c.corpus[h])
	}
	m.mu.Unlock()
	return core.EncodePrograms(w, progs)
}

// Handler returns the manager's HTTP API: the five fabric endpoints plus
// /metrics serving the manager's registry (so one listener covers both
// the fleet and scrapers).
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathRegister, m.timed(m.do.httpRegister, m.handleRegister))
	mux.HandleFunc(PathPoll, m.timed(m.do.httpPoll, m.handlePoll))
	mux.HandleFunc(PathSync, m.timed(m.do.httpSync, m.handleSync))
	mux.HandleFunc(PathReport, m.timed(m.do.httpReport, m.handleReport))
	mux.HandleFunc(PathHeartbeat, m.timed(m.do.httpHeartbeat, m.handleHeartbeat))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.do.reg.WriteText(w)
	})
	return mux
}

// timed wraps a handler with method enforcement and the per-endpoint
// latency histogram.
func (m *Manager) timed(h *obs.Histogram, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		start := time.Now()
		fn(w, r)
		observe(h, start)
	}
}

// negotiate returns the protocol version to answer a request with.
func negotiate(reqV int) int {
	if reqV < ProtocolVersion {
		return reqV
	}
	return ProtocolVersion
}

// checkVersion rejects protocol versions outside the accepted window;
// reports whether the request may proceed.
func checkVersion(w http.ResponseWriter, v int) bool {
	if v < MinProtocolVersion || v > ProtocolVersion {
		writeError(w, http.StatusBadRequest,
			"protocol version %d, manager speaks %d..%d", v, MinProtocolVersion, ProtocolVersion)
		return false
	}
	return true
}

// resolveLocked authenticates a request's (campaign, token, epoch)
// triple, writing the error reply and returning nil on failure. Version
// 1 clients carry no epoch; their epoch 0 is only accepted while the
// campaign is still in its first epoch, so legacy workers are fenced off
// exactly when state actually moved under them.
func (m *Manager) resolveLocked(w http.ResponseWriter, campaignName, token string, epoch uint64, checkEpoch bool) *campaign {
	c := m.campLocked(campaignName)
	if c == nil {
		writeError(w, http.StatusNotFound, "unknown campaign %q", campaignName)
		return nil
	}
	if c.cfg.Token != "" && subtle.ConstantTimeCompare([]byte(token), []byte(c.cfg.Token)) != 1 {
		writeError(w, http.StatusForbidden, "campaign %q: bad or missing token", c.name)
		return nil
	}
	if checkEpoch {
		want := c.epoch
		if epoch == 0 && want == 1 {
			epoch = 1 // v1 clients on a never-restarted campaign
		}
		if epoch != want {
			writeError(w, http.StatusGone,
				"stale epoch %d for campaign %q (current %d): re-register", epoch, c.name, want)
			return nil
		}
	}
	return c
}

// setGaugesLocked refreshes the cross-campaign worker and pending-shard
// gauges; caller holds m.mu.
func (m *Manager) setGaugesLocked() {
	workers, pending := 0, 0
	for _, c := range m.camps {
		workers += c.connectedLocked()
		pending += len(c.pending)
	}
	m.do.workers.Set(float64(workers))
	m.do.leasesPending.Set(float64(pending))
}

// handleRegister admits a worker and ships the campaign spec. A
// re-registration (PrevWorkerID set) eagerly releases the previous
// incarnation's leases instead of letting them block their shards until
// the TTL sweep.
func (m *Manager) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad register body: %v", err)
		return
	}
	if !checkVersion(w, req.V) {
		return
	}
	m.mu.Lock()
	c := m.resolveLocked(w, req.Campaign, req.Token, 0, false)
	if c == nil {
		m.mu.Unlock()
		return
	}
	id, requeued := c.registerLocked(req.Name, req.PrevWorkerID)
	epoch := c.epoch
	spec := c.cfg.Campaign
	m.do.registrations.Inc()
	m.setGaugesLocked()
	m.mu.Unlock()
	m.do.ev.Info(id, "dist.register", map[string]any{
		"campaign": c.name, "name": req.Name,
		"prev_worker": req.PrevWorkerID, "prev_epoch": req.PrevEpoch,
	})
	for _, shard := range requeued {
		m.do.ev.Warn(req.PrevWorkerID, "dist.lease_reassign", map[string]any{
			"campaign": c.name, "shard": shard, "cause": "re-register",
		})
	}
	writeJSON(w, http.StatusOK, RegisterResponse{
		V:           negotiate(req.V),
		WorkerID:    id,
		Epoch:       epoch,
		Campaign:    spec,
		HeartbeatMS: m.cfg.HeartbeatEvery.Milliseconds(),
	})
}

// handlePoll sweeps expired state, acknowledges completions, and grants
// a dynamically sized lease batch (or a stolen duplicate lease) when
// work is available.
func (m *Manager) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad poll body: %v", err)
		return
	}
	if !checkVersion(w, req.V) {
		return
	}
	m.sweep()
	m.mu.Lock()
	c := m.resolveLocked(w, req.Campaign, req.Token, req.Epoch, true)
	if c == nil {
		m.mu.Unlock()
		return
	}
	ws := c.touchLocked(req.WorkerID)
	if ws == nil {
		m.mu.Unlock()
		writeError(w, http.StatusGone, "unknown worker %d: re-register", req.WorkerID)
		return
	}
	for _, id := range req.Completed {
		c.completeLocked(ws, id)
	}
	resp := PollResponse{V: negotiate(req.V)}
	var stolen bool
	if c.doneLocked() {
		resp.Done = true
	} else {
		var granted []*Lease
		granted, stolen = c.grantLocked(ws)
		if req.V < 2 && len(granted) > 1 {
			// A v1 client reads a single lease; return the rest.
			for _, l := range granted[1:] {
				c.ungrantLocked(l.ID)
			}
			granted = granted[:1]
		}
		if len(granted) > 0 {
			resp.Leases = granted
			resp.Lease = granted[0]
		} else {
			resp.RetryMS = (m.cfg.HeartbeatEvery / 2).Milliseconds()
		}
	}
	m.setGaugesLocked()
	m.mu.Unlock()
	for _, l := range resp.Leases {
		kind := "dist.lease_grant"
		if stolen {
			kind = "dist.steal.grant"
		}
		m.do.ev.Info(req.WorkerID, kind, map[string]any{
			"campaign": c.name, "lease": l.ID, "shard": l.Shard,
			"seed": l.Seed, "steps": l.Steps,
		})
	}
	m.maybeEmitDone(c)
	writeJSON(w, http.StatusOK, resp)
}

// ungrantLocked retracts a just-granted lease (v1 batch downgrade),
// returning its shard to the head of the queue.
func (c *campaign) ungrantLocked(leaseID uint64) {
	ls := c.inflight[leaseID]
	if ls == nil {
		return
	}
	delete(c.inflight, leaseID)
	delete(c.leaseByID, leaseID)
	if owner := c.workers[ls.worker]; owner != nil {
		delete(owner.leases, leaseID)
	}
	if !ls.stolen && !c.shards[ls.shard].completed {
		c.pending = append([]int{ls.shard}, c.pending...)
	}
}

// sweep requeues expired leases and declares silent workers dead, across
// every campaign. It runs lazily at the top of every poll/sync/heartbeat,
// so liveness advances as long as any worker keeps talking; tests may
// call it directly.
func (m *Manager) sweep() {
	type reassigned struct {
		campaign string
		lease    uint64
		shard    int
		worker   int
	}
	var (
		dead     []int
		deadline time.Duration
		res      []reassigned
	)
	m.mu.Lock()
	now := m.now()
	deadline = time.Duration(m.cfg.HeartbeatMisses) * m.cfg.HeartbeatEvery
	for _, c := range m.camps {
		for id, ws := range c.workers {
			if ws.connected && now.Sub(ws.lastSeen) > deadline {
				ws.connected = false
				dead = append(dead, id)
				m.do.heartbeatMisses.Inc()
			}
		}
		for id, ls := range c.inflight {
			owner := c.workers[ls.worker]
			if now.After(ls.expiry) || owner == nil || !owner.connected {
				delete(c.inflight, id)
				if owner != nil {
					delete(owner.leases, id)
				}
				if !c.shards[ls.shard].completed {
					c.pending = append(c.pending, ls.shard)
					m.do.leaseReassigns.Inc()
					res = append(res, reassigned{campaign: c.name, lease: id, shard: ls.shard, worker: ls.worker})
				}
			}
		}
	}
	m.setGaugesLocked()
	m.mu.Unlock()
	for _, id := range dead {
		m.do.ev.Warn(id, "dist.worker_dead", map[string]any{
			"deadline_ms": deadline.Milliseconds(),
		})
	}
	for _, r := range res {
		m.do.ev.Warn(r.worker, "dist.lease_reassign", map[string]any{
			"campaign": r.campaign, "lease": r.lease, "shard": r.shard, "cause": "expired",
		})
	}
}

// maybeEmitDone emits the dist.done event exactly once per campaign,
// when its last shard completes, and compacts a durable campaign's final
// state.
func (m *Manager) maybeEmitDone(c *campaign) {
	m.mu.Lock()
	fire := c.doneLocked() && !c.doneEmitted
	if fire {
		c.doneEmitted = true
		if c.wal != nil {
			c.snapshotLocked()
		}
	}
	shards, reports, corpus := len(c.shards), c.reports.Len(), len(c.corpusOrder)
	m.mu.Unlock()
	if fire {
		m.do.ev.Info(0, "dist.done", map[string]any{
			"campaign": c.name, "shards": shards, "reports": reports, "corpus": corpus,
		})
	}
}

// handleSync performs one delta round of corpus exchange and handles
// deregistration.
func (m *Manager) handleSync(w http.ResponseWriter, r *http.Request) {
	var req SyncRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad sync body: %v", err)
		return
	}
	if !checkVersion(w, req.V) {
		return
	}
	m.sweep()
	m.mu.Lock()
	c := m.resolveLocked(w, req.Campaign, req.Token, req.Epoch, true)
	if c == nil {
		m.mu.Unlock()
		return
	}
	ws := c.touchLocked(req.WorkerID)
	if ws == nil && !req.Deregister {
		m.mu.Unlock()
		writeError(w, http.StatusGone, "unknown worker %d: re-register", req.WorkerID)
		return
	}
	// Merge the program bodies the worker shipped (ones we asked for, but
	// validate and dedup regardless of what arrived).
	recvProgs := 0
	if req.Programs != "" {
		progs, _ := core.DecodePrograms(strings.NewReader(req.Programs), c.target)
		for _, p := range progs {
			if c.admitProgramLocked(p, true) {
				recvProgs++
			}
		}
		m.do.syncBytesIn.Add(uint64(len(req.Programs)))
		m.do.syncProgsIn.Add(uint64(recvProgs))
		m.do.corpusProgs.Set(float64(len(c.corpusOrder)))
	}
	// Diff the worker's advertisement against the global corpus.
	workerHas := make(map[string]struct{}, len(req.Keys))
	for _, k := range req.Keys {
		workerHas[k] = struct{}{}
	}
	var want []string
	for _, k := range req.Keys {
		if _, ok := c.corpus[k]; !ok {
			want = append(want, k)
		}
	}
	sort.Strings(want)
	var toSend []*syzlang.Program
	for _, h := range c.corpusOrder {
		if _, ok := workerHas[h]; !ok {
			toSend = append(toSend, c.corpus[h])
		}
	}
	var payload strings.Builder
	if len(toSend) > 0 {
		_ = core.EncodePrograms(&payload, toSend)
		m.do.syncBytesOut.Add(uint64(payload.Len()))
		m.do.syncProgsOut.Add(uint64(len(toSend)))
	}
	if req.Deregister && ws != nil {
		ws.connected = false
		for id := range ws.leases {
			if ls := c.inflight[id]; ls != nil {
				delete(c.inflight, id)
				if !c.shards[ls.shard].completed {
					c.pending = append(c.pending, ls.shard)
					m.do.leaseReassigns.Inc()
				}
			}
			delete(ws.leases, id)
		}
	}
	m.setGaugesLocked()
	m.mu.Unlock()
	m.do.ev.Info(req.WorkerID, "dist.sync", map[string]any{
		"campaign": c.name,
		"recv_programs": recvProgs, "sent_programs": len(toSend),
		"recv_bytes": len(req.Programs), "sent_bytes": payload.Len(),
		"want": len(want), "deregister": req.Deregister,
	})
	if req.Deregister {
		m.do.ev.Info(req.WorkerID, "dist.deregister", nil)
	}
	writeJSON(w, http.StatusOK, SyncResponse{
		V: negotiate(req.V), Programs: payload.String(), Want: want,
	})
}

// handleReport merges worker findings into the campaign's global
// deduplicated set.
func (m *Manager) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad report body: %v", err)
		return
	}
	if !checkVersion(w, req.V) {
		return
	}
	m.mu.Lock()
	c := m.resolveLocked(w, req.Campaign, req.Token, req.Epoch, true)
	if c == nil {
		m.mu.Unlock()
		return
	}
	if ws := c.touchLocked(req.WorkerID); ws == nil {
		m.mu.Unlock()
		writeError(w, http.StatusGone, "unknown worker %d: re-register", req.WorkerID)
		return
	}
	added := 0
	for _, rep := range req.Reports {
		if rep != nil && rep.Title != "" && c.admitReportLocked(rep, true) {
			added++
		}
	}
	dup := len(req.Reports) - added
	m.do.reportsNew.Add(uint64(added))
	if dup > 0 {
		m.do.reportsDup.Add(uint64(dup))
	}
	m.mu.Unlock()
	m.do.ev.Info(req.WorkerID, "dist.report", map[string]any{
		"campaign": c.name, "received": len(req.Reports), "added": added,
	})
	writeJSON(w, http.StatusOK, ReportResponse{V: negotiate(req.V), Added: added})
}

// handleHeartbeat renews worker liveness and its leases.
func (m *Manager) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad heartbeat body: %v", err)
		return
	}
	if !checkVersion(w, req.V) {
		return
	}
	m.sweep()
	m.mu.Lock()
	c := m.resolveLocked(w, req.Campaign, req.Token, req.Epoch, true)
	if c == nil {
		m.mu.Unlock()
		return
	}
	ws := c.touchLocked(req.WorkerID)
	ok := ws != nil
	if ok {
		for _, id := range req.Leases {
			if ls := c.inflight[id]; ls != nil && ls.worker == ws.id {
				ls.expiry = m.now().Add(m.cfg.LeaseTTL)
			}
		}
	}
	m.mu.Unlock()
	writeJSON(w, http.StatusOK, HeartbeatResponse{V: negotiate(req.V), OK: ok})
}

// RunShardsLocal executes the manager configuration's whole shard plan
// sequentially in-process — the standalone-equivalent campaign the
// distributed fabric must match title-for-title. It returns the merged
// deduplicated report set and the merged corpus (first-seen order,
// deduplicated by program key).
func RunShardsLocal(cfg ManagerConfig, poolWorkers int) (*report.Set, []*syzlang.Program) {
	cfg.normalize()
	merged := report.NewSet()
	var (
		corpus []*syzlang.Program
		seen   = make(map[string]struct{})
	)
	for _, sh := range Shards(cfg.Seed, cfg.TotalSteps, cfg.ShardSteps) {
		p := core.NewPool(coreConfig(cfg.Campaign, sh.Seed, nil, nil), poolWorkers)
		p.Run(sh.Steps)
		shardSet := report.NewSet()
		for _, r := range p.Reports.All() {
			shardSet.Add(r)
		}
		merged.Merge(shardSet)
		for _, prog := range p.CorpusPrograms() {
			h := progHash(prog)
			if _, dup := seen[h]; dup {
				continue
			}
			seen[h] = struct{}{}
			corpus = append(corpus, prog)
		}
	}
	return merged, corpus
}
