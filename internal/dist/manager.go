package dist

import (
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"ozz/internal/core"
	"ozz/internal/memmodel"
	"ozz/internal/modules"
	"ozz/internal/obs"
	"ozz/internal/report"
	"ozz/internal/syzlang"
)

// Shard is one deterministic work unit of the campaign plan: an
// independent pool campaign of Steps steps under the derived Seed. The
// union of all shards' findings is the campaign's result, independent of
// which worker runs which shard.
type Shard struct {
	// Index is the shard's position in the plan.
	Index int
	// Seed is the shard's derived campaign seed.
	Seed int64
	// Steps is the shard's step budget.
	Steps int
}

// shardSeed derives shard i's campaign seed from the base seed with the
// splitmix64 finalizer — the same mixing discipline core.Pool uses for
// per-step streams, so sibling shards draw statistically independent
// program sequences.
func shardSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(i+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Shards builds the deterministic shard plan covering totalSteps in
// shardSteps-sized units (the last shard takes the remainder). The plan is
// a pure function of its arguments — the manager and RunShardsLocal
// compute identical plans.
func Shards(seed int64, totalSteps, shardSteps int) []Shard {
	if totalSteps <= 0 {
		return nil
	}
	if shardSteps <= 0 || shardSteps > totalSteps {
		shardSteps = totalSteps
	}
	var plan []Shard
	for i, done := 0, 0; done < totalSteps; i++ {
		steps := shardSteps
		if totalSteps-done < steps {
			steps = totalSteps - done
		}
		plan = append(plan, Shard{Index: i, Seed: shardSeed(seed, i), Steps: steps})
		done += steps
	}
	return plan
}

// coreConfig reconstructs the core campaign configuration for one shard.
func coreConfig(spec CampaignSpec, seed int64, reg *obs.Registry, ev *obs.EventLog) core.Config {
	// An empty or unknown model name falls back to LKMM rather than
	// failing the shard: a mixed fleet where one side predates a model
	// should degrade to the default, not wedge the campaign.
	mm, err := memmodel.ByName(spec.Model)
	if spec.Model == "" || err != nil {
		mm = memmodel.LKMM
	}
	return core.Config{
		Modules:         spec.Modules,
		Bugs:            modules.Bugs(spec.Bugs...),
		Seed:            seed,
		ProgLen:         spec.ProgLen,
		MaxHintsPerPair: spec.MaxHintsPerPair,
		MaxPairs:        spec.MaxPairs,
		UseSeeds:        spec.UseSeeds,
		HintOrder:       spec.HintOrder,
		Model:           mm,
		Obs:             reg,
		Events:          ev,
	}
}

// ManagerConfig parameterizes the fabric manager.
type ManagerConfig struct {
	// Campaign is the campaign configuration shipped to workers.
	Campaign CampaignSpec
	// TotalSteps is the whole campaign's step budget across all shards.
	TotalSteps int
	// ShardSteps is the per-lease step budget (default 64).
	ShardSteps int
	// Seed is the base campaign seed the shard seeds derive from.
	Seed int64
	// LeaseTTL is how long a granted lease lives without renewal
	// (default 5s).
	LeaseTTL time.Duration
	// HeartbeatEvery is the heartbeat cadence told to workers
	// (default 1s).
	HeartbeatEvery time.Duration
	// HeartbeatMisses is how many missed cadences mark a worker dead
	// (default 3).
	HeartbeatMisses int
	// Obs, when non-nil, is the registry the manager publishes fabric
	// metrics into; nil gives it a fresh private registry.
	Obs *obs.Registry
	// Events, when non-nil, receives the manager's dist.* event stream,
	// tagged with the registered worker IDs.
	Events *obs.EventLog
}

// normalize resolves the manager defaults.
func (c *ManagerConfig) normalize() {
	if c.ShardSteps <= 0 {
		c.ShardSteps = 64
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 5 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 3
	}
}

// workerState is the manager's view of one registered worker.
type workerState struct {
	id        int
	name      string
	lastSeen  time.Time
	connected bool
	leases    map[uint64]struct{}
}

// shardState tracks one shard through grants, reassignments, and
// completion.
type shardState struct {
	shard     Shard
	completed bool
}

// leaseState is one outstanding grant.
type leaseState struct {
	id     uint64
	shard  int
	worker int
	expiry time.Time
}

// Manager owns the campaign's global state: the shard frontier, the
// merged coverage corpus (keyed by program-key hash), and the globally
// deduplicated report set. All methods and HTTP handlers are safe for
// concurrent use.
type Manager struct {
	cfg    ManagerConfig
	target *syzlang.Target
	do     *distObs

	mu          sync.Mutex
	workers     map[int]*workerState
	nextWorker  int
	shards      []*shardState
	pending     []int // shard indexes awaiting a worker, FIFO
	inflight    map[uint64]*leaseState
	leaseByID   map[uint64]int // every lease ever granted -> shard index
	nextLease   uint64
	completed   int
	doneEmitted bool

	corpus      map[string]*syzlang.Program // key hash -> program
	corpusOrder []string                    // key hashes in first-seen order
	reports     *report.Set

	// now is stubbed in tests; defaults to time.Now.
	now func() time.Time
}

// NewManager builds a fabric manager over the shard plan derived from the
// configuration. It does not listen; mount Handler on an http.Server.
func NewManager(cfg ManagerConfig) *Manager {
	cfg.normalize()
	m := &Manager{
		cfg:       cfg,
		target:    modules.Target(cfg.Campaign.Modules...),
		do:        newDistObs(cfg.Obs, cfg.Events),
		workers:   make(map[int]*workerState),
		inflight:  make(map[uint64]*leaseState),
		leaseByID: make(map[uint64]int),
		corpus:    make(map[string]*syzlang.Program),
		reports:   report.NewSet(),
		now:       time.Now,
	}
	for _, sh := range Shards(cfg.Seed, cfg.TotalSteps, cfg.ShardSteps) {
		m.shards = append(m.shards, &shardState{shard: sh})
		m.pending = append(m.pending, sh.Index)
	}
	m.do.leasesPending.Set(float64(len(m.pending)))
	return m
}

// Obs returns the registry the manager publishes fabric metrics into.
func (m *Manager) Obs() *obs.Registry { return m.do.reg }

// Done reports whether every shard has completed.
func (m *Manager) Done() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.completed == len(m.shards)
}

// WorkersConnected returns the number of currently registered workers.
func (m *Manager) WorkersConnected() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, w := range m.workers {
		if w.connected {
			n++
		}
	}
	return n
}

// ShardsCompleted returns how many shards have finished.
func (m *Manager) ShardsCompleted() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.completed
}

// ShardsTotal returns the shard plan's size.
func (m *Manager) ShardsTotal() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.shards)
}

// WorkersSeen returns how many workers ever registered (including ones
// that since deregistered or died).
func (m *Manager) WorkersSeen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nextWorker
}

// Reports returns the globally deduplicated findings in first-seen order.
func (m *Manager) Reports() []*report.Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reports.All()
}

// ReportTitles returns the sorted unique global crash titles.
func (m *Manager) ReportTitles() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reports.Titles()
}

// CorpusLen returns the merged global corpus size.
func (m *Manager) CorpusLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.corpusOrder)
}

// CorpusKeyHashes returns the merged corpus's key hashes in first-seen
// order (testing and tooling).
func (m *Manager) CorpusKeyHashes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.corpusOrder...)
}

// WriteCorpus streams the merged global corpus to w in the corpus
// encoding, first-seen order.
func (m *Manager) WriteCorpus(w io.Writer) error {
	m.mu.Lock()
	progs := make([]*syzlang.Program, 0, len(m.corpusOrder))
	for _, h := range m.corpusOrder {
		progs = append(progs, m.corpus[h])
	}
	m.mu.Unlock()
	return core.EncodePrograms(w, progs)
}

// Handler returns the manager's HTTP API: the five fabric endpoints plus
// /metrics serving the manager's registry (so one listener covers both
// the fleet and scrapers).
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathRegister, m.timed(m.do.httpRegister, m.handleRegister))
	mux.HandleFunc(PathPoll, m.timed(m.do.httpPoll, m.handlePoll))
	mux.HandleFunc(PathSync, m.timed(m.do.httpSync, m.handleSync))
	mux.HandleFunc(PathReport, m.timed(m.do.httpReport, m.handleReport))
	mux.HandleFunc(PathHeartbeat, m.timed(m.do.httpHeartbeat, m.handleHeartbeat))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.do.reg.WriteText(w)
	})
	return mux
}

// timed wraps a handler with method enforcement and the per-endpoint
// latency histogram.
func (m *Manager) timed(h *obs.Histogram, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		start := time.Now()
		fn(w, r)
		observe(h, start)
	}
}

// checkVersion rejects protocol mismatches; reports whether the request
// may proceed.
func checkVersion(w http.ResponseWriter, v int) bool {
	if v != ProtocolVersion {
		writeError(w, http.StatusBadRequest,
			"protocol version %d, manager speaks %d", v, ProtocolVersion)
		return false
	}
	return true
}

// handleRegister admits a worker and ships the campaign spec.
func (m *Manager) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad register body: %v", err)
		return
	}
	if !checkVersion(w, req.V) {
		return
	}
	m.mu.Lock()
	m.nextWorker++
	id := m.nextWorker
	m.workers[id] = &workerState{
		id: id, name: req.Name, lastSeen: m.now(),
		connected: true, leases: make(map[uint64]struct{}),
	}
	m.do.registrations.Inc()
	m.setWorkerGaugeLocked()
	m.mu.Unlock()
	m.do.ev.Info(id, "dist.register", map[string]any{"name": req.Name})
	writeJSON(w, http.StatusOK, RegisterResponse{
		V:           ProtocolVersion,
		WorkerID:    id,
		Campaign:    m.cfg.Campaign,
		HeartbeatMS: m.cfg.HeartbeatEvery.Milliseconds(),
	})
}

// setWorkerGaugeLocked refreshes ozz_dist_workers_connected; caller holds
// m.mu.
func (m *Manager) setWorkerGaugeLocked() {
	n := 0
	for _, ws := range m.workers {
		if ws.connected {
			n++
		}
	}
	m.do.workers.Set(float64(n))
}

// touchLocked refreshes a worker's liveness; caller holds m.mu. Returns
// nil for unknown or dead workers.
func (m *Manager) touchLocked(id int) *workerState {
	ws := m.workers[id]
	if ws == nil || !ws.connected {
		return nil
	}
	ws.lastSeen = m.now()
	return ws
}

// handlePoll sweeps expired state, acknowledges completions, and grants a
// lease when a shard is pending.
func (m *Manager) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad poll body: %v", err)
		return
	}
	if !checkVersion(w, req.V) {
		return
	}
	m.sweep()
	m.mu.Lock()
	ws := m.touchLocked(req.WorkerID)
	if ws == nil {
		m.mu.Unlock()
		writeError(w, http.StatusGone, "unknown worker %d: re-register", req.WorkerID)
		return
	}
	for _, id := range req.Completed {
		m.completeLocked(ws, id)
	}
	resp := PollResponse{V: ProtocolVersion}
	switch {
	case m.completed == len(m.shards):
		resp.Done = true
	case len(m.pending) > 0:
		idx := m.pending[0]
		m.pending = m.pending[1:]
		m.nextLease++
		ls := &leaseState{
			id: m.nextLease, shard: idx, worker: ws.id,
			expiry: m.now().Add(m.cfg.LeaseTTL),
		}
		m.inflight[ls.id] = ls
		m.leaseByID[ls.id] = idx
		ws.leases[ls.id] = struct{}{}
		sh := m.shards[idx].shard
		resp.Lease = &Lease{
			ID: ls.id, Shard: sh.Index, Seed: sh.Seed, Steps: sh.Steps,
			TTLMS: m.cfg.LeaseTTL.Milliseconds(),
		}
		m.do.leasesGranted.Inc()
		m.do.leasesPending.Set(float64(len(m.pending)))
	default:
		resp.RetryMS = (m.cfg.HeartbeatEvery / 2).Milliseconds()
	}
	m.mu.Unlock()
	if resp.Lease != nil {
		m.do.ev.Info(req.WorkerID, "dist.lease_grant", map[string]any{
			"lease": resp.Lease.ID, "shard": resp.Lease.Shard,
			"seed": resp.Lease.Seed, "steps": resp.Lease.Steps,
		})
	}
	m.maybeEmitDone()
	writeJSON(w, http.StatusOK, resp)
}

// completeLocked marks a lease's shard done; caller holds m.mu. Stale
// lease IDs (already reassigned) still complete their shard — the shard
// result is deterministic, so whoever finishes first wins and the rerun
// is a harmless duplicate.
func (m *Manager) completeLocked(ws *workerState, leaseID uint64) {
	idx, ok := m.leaseByID[leaseID]
	if !ok {
		return
	}
	if ls := m.inflight[leaseID]; ls != nil {
		delete(m.inflight, leaseID)
		if owner := m.workers[ls.worker]; owner != nil {
			delete(owner.leases, leaseID)
		}
	}
	delete(ws.leases, leaseID)
	st := m.shards[idx]
	if st.completed {
		return
	}
	st.completed = true
	m.completed++
	m.do.leasesCompleted.Inc()
	// The shard may have been requeued (expiry raced completion): drop it
	// from pending, and retire any other in-flight lease on it.
	for i, p := range m.pending {
		if p == idx {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			m.do.leasesPending.Set(float64(len(m.pending)))
			break
		}
	}
	for id, ls := range m.inflight {
		if ls.shard == idx {
			delete(m.inflight, id)
			if owner := m.workers[ls.worker]; owner != nil {
				delete(owner.leases, id)
			}
		}
	}
	m.do.ev.Info(ws.id, "dist.lease_complete", map[string]any{
		"lease": leaseID, "shard": idx, "done": m.completed, "total": len(m.shards),
	})
}

// sweep requeues expired leases and declares silent workers dead. It runs
// lazily at the top of every poll/sync/heartbeat, so liveness advances as
// long as any worker keeps talking; tests may call it directly.
func (m *Manager) sweep() {
	type reassigned struct {
		lease  uint64
		shard  int
		worker int
	}
	var (
		now  = time.Time{}
		dead []int
		res  []reassigned
	)
	m.mu.Lock()
	now = m.now()
	deadline := time.Duration(m.cfg.HeartbeatMisses) * m.cfg.HeartbeatEvery
	for id, ws := range m.workers {
		if ws.connected && now.Sub(ws.lastSeen) > deadline {
			ws.connected = false
			dead = append(dead, id)
			m.do.heartbeatMisses.Inc()
		}
	}
	for id, ls := range m.inflight {
		owner := m.workers[ls.worker]
		if now.After(ls.expiry) || owner == nil || !owner.connected {
			delete(m.inflight, id)
			if owner != nil {
				delete(owner.leases, id)
			}
			if !m.shards[ls.shard].completed {
				m.pending = append(m.pending, ls.shard)
				m.do.leaseReassigns.Inc()
				res = append(res, reassigned{lease: id, shard: ls.shard, worker: ls.worker})
			}
		}
	}
	if len(dead) > 0 {
		m.setWorkerGaugeLocked()
	}
	m.do.leasesPending.Set(float64(len(m.pending)))
	m.mu.Unlock()
	for _, id := range dead {
		m.do.ev.Warn(id, "dist.worker_dead", map[string]any{
			"deadline_ms": deadline.Milliseconds(),
		})
	}
	for _, r := range res {
		m.do.ev.Warn(r.worker, "dist.lease_reassign", map[string]any{
			"lease": r.lease, "shard": r.shard,
		})
	}
}

// maybeEmitDone emits the dist.done event exactly once, when the last
// shard completes.
func (m *Manager) maybeEmitDone() {
	m.mu.Lock()
	fire := m.completed == len(m.shards) && !m.doneEmitted
	if fire {
		m.doneEmitted = true
	}
	shards, reports, corpus := len(m.shards), m.reports.Len(), len(m.corpusOrder)
	m.mu.Unlock()
	if fire {
		m.do.ev.Info(0, "dist.done", map[string]any{
			"shards": shards, "reports": reports, "corpus": corpus,
		})
	}
}

// handleSync performs one delta round of corpus exchange and handles
// deregistration.
func (m *Manager) handleSync(w http.ResponseWriter, r *http.Request) {
	var req SyncRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad sync body: %v", err)
		return
	}
	if !checkVersion(w, req.V) {
		return
	}
	m.sweep()
	m.mu.Lock()
	ws := m.touchLocked(req.WorkerID)
	if ws == nil && !req.Deregister {
		m.mu.Unlock()
		writeError(w, http.StatusGone, "unknown worker %d: re-register", req.WorkerID)
		return
	}
	// Merge the program bodies the worker shipped (ones we asked for, but
	// validate and dedup regardless of what arrived).
	recvProgs := 0
	if req.Programs != "" {
		progs, _ := core.DecodePrograms(strings.NewReader(req.Programs), m.target)
		for _, p := range progs {
			h := progHash(p)
			if _, dup := m.corpus[h]; dup {
				continue
			}
			m.corpus[h] = p
			m.corpusOrder = append(m.corpusOrder, h)
			recvProgs++
		}
		m.do.syncBytesIn.Add(uint64(len(req.Programs)))
		m.do.syncProgsIn.Add(uint64(recvProgs))
		m.do.corpusProgs.Set(float64(len(m.corpusOrder)))
	}
	// Diff the worker's advertisement against the global corpus.
	workerHas := make(map[string]struct{}, len(req.Keys))
	for _, k := range req.Keys {
		workerHas[k] = struct{}{}
	}
	var want []string
	for _, k := range req.Keys {
		if _, ok := m.corpus[k]; !ok {
			want = append(want, k)
		}
	}
	sort.Strings(want)
	var toSend []*syzlang.Program
	for _, h := range m.corpusOrder {
		if _, ok := workerHas[h]; !ok {
			toSend = append(toSend, m.corpus[h])
		}
	}
	var payload strings.Builder
	if len(toSend) > 0 {
		_ = core.EncodePrograms(&payload, toSend)
		m.do.syncBytesOut.Add(uint64(payload.Len()))
		m.do.syncProgsOut.Add(uint64(len(toSend)))
	}
	if req.Deregister && ws != nil {
		ws.connected = false
		for id := range ws.leases {
			if ls := m.inflight[id]; ls != nil {
				delete(m.inflight, id)
				if !m.shards[ls.shard].completed {
					m.pending = append(m.pending, ls.shard)
					m.do.leaseReassigns.Inc()
				}
			}
			delete(ws.leases, id)
		}
		m.setWorkerGaugeLocked()
		m.do.leasesPending.Set(float64(len(m.pending)))
	}
	m.mu.Unlock()
	m.do.ev.Info(req.WorkerID, "dist.sync", map[string]any{
		"recv_programs": recvProgs, "sent_programs": len(toSend),
		"recv_bytes": len(req.Programs), "sent_bytes": payload.Len(),
		"want": len(want), "deregister": req.Deregister,
	})
	if req.Deregister {
		m.do.ev.Info(req.WorkerID, "dist.deregister", nil)
	}
	writeJSON(w, http.StatusOK, SyncResponse{
		V: ProtocolVersion, Programs: payload.String(), Want: want,
	})
}

// handleReport merges worker findings into the global deduplicated set.
func (m *Manager) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad report body: %v", err)
		return
	}
	if !checkVersion(w, req.V) {
		return
	}
	m.mu.Lock()
	if ws := m.touchLocked(req.WorkerID); ws == nil {
		m.mu.Unlock()
		writeError(w, http.StatusGone, "unknown worker %d: re-register", req.WorkerID)
		return
	}
	incoming := report.NewSet()
	for _, rep := range req.Reports {
		if rep != nil && rep.Title != "" {
			incoming.Add(rep)
		}
	}
	added := m.reports.Merge(incoming)
	dup := len(req.Reports) - added
	m.do.reportsNew.Add(uint64(added))
	if dup > 0 {
		m.do.reportsDup.Add(uint64(dup))
	}
	m.mu.Unlock()
	m.do.ev.Info(req.WorkerID, "dist.report", map[string]any{
		"received": len(req.Reports), "added": added,
	})
	writeJSON(w, http.StatusOK, ReportResponse{V: ProtocolVersion, Added: added})
}

// handleHeartbeat renews worker liveness and its leases.
func (m *Manager) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad heartbeat body: %v", err)
		return
	}
	if !checkVersion(w, req.V) {
		return
	}
	m.sweep()
	m.mu.Lock()
	ws := m.touchLocked(req.WorkerID)
	ok := ws != nil
	if ok {
		for _, id := range req.Leases {
			if ls := m.inflight[id]; ls != nil && ls.worker == ws.id {
				ls.expiry = m.now().Add(m.cfg.LeaseTTL)
			}
		}
	}
	m.mu.Unlock()
	writeJSON(w, http.StatusOK, HeartbeatResponse{V: ProtocolVersion, OK: ok})
}

// RunShardsLocal executes the manager configuration's whole shard plan
// sequentially in-process — the standalone-equivalent campaign the
// distributed fabric must match title-for-title. It returns the merged
// deduplicated report set and the merged corpus (first-seen order,
// deduplicated by program key).
func RunShardsLocal(cfg ManagerConfig, poolWorkers int) (*report.Set, []*syzlang.Program) {
	cfg.normalize()
	merged := report.NewSet()
	var (
		corpus []*syzlang.Program
		seen   = make(map[string]struct{})
	)
	for _, sh := range Shards(cfg.Seed, cfg.TotalSteps, cfg.ShardSteps) {
		p := core.NewPool(coreConfig(cfg.Campaign, sh.Seed, nil, nil), poolWorkers)
		p.Run(sh.Steps)
		shardSet := report.NewSet()
		for _, r := range p.Reports.All() {
			shardSet.Add(r)
		}
		merged.Merge(shardSet)
		for _, prog := range p.CorpusPrograms() {
			h := progHash(prog)
			if _, dup := seen[h]; dup {
				continue
			}
			seen[h] = struct{}{}
			corpus = append(corpus, prog)
		}
	}
	return merged, corpus
}
