package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"regexp"

	"ozz/internal/report"
)

// Durability layer: a per-campaign write-ahead log plus periodic
// snapshots, stdlib-only, laid out as
//
//	<state-dir>/<campaign>/snapshot.json   last compacted full state
//	<state-dir>/<campaign>/wal.log         records since that snapshot
//
// Every state change that must survive a manager crash — a corpus
// program admission, a new global report, a shard completion, a worker
// registration, an epoch bump — appends and fsyncs one walRecord line
// before the handler replies. A restarted manager loads the snapshot, replays the
// log over it, truncates any torn final record (a crash mid-append), and
// bumps the epoch so workers re-register. Snapshots are written
// atomically (temp file + rename) every ManagerConfig.SnapshotEvery
// records and on demand for export, after which the log is reset.
//
// Leases are deliberately NOT journaled: shard execution is
// deterministic, so requeueing every in-flight shard at recovery and
// letting survivors re-run (or stale holders complete into the void) is
// both simpler and exactly as correct as replaying grants would be.
// Lease IDs are epoch-stamped (epoch<<32 | sequence) so an ID minted
// before a restart can never collide with one minted after.

// WAL record types, the T field of every walRecord line.
const (
	walEpoch    = "epoch"    // campaign (re)opened under a new epoch
	walWorker   = "worker"   // a worker registered
	walComplete = "complete" // a shard completed
	walProgram  = "program"  // a corpus program was admitted
	walReport   = "report"   // a new global report was merged
)

// walRecordTypes lists every record type, for metric pre-registration.
var walRecordTypes = []string{walEpoch, walWorker, walComplete, walProgram, walReport}

// walRecord is one WAL line: the record type, the CRC-32 (IEEE) of the
// payload bytes, and the payload itself. A record whose payload fails the
// checksum — or whose line is not valid JSON, or lacks its trailing
// newline — marks the torn tail of the log; replay stops there and
// truncates the file back to the last good record.
type walRecord struct {
	// T is the record type (walEpoch, walWorker, ...).
	T string `json:"t"`
	// CRC is the IEEE CRC-32 of the raw D bytes.
	CRC uint32 `json:"crc"`
	// D is the type-specific payload.
	D json.RawMessage `json:"d"`
}

// walEpochD is the walEpoch payload.
type walEpochD struct {
	// Epoch is the epoch the campaign opened under.
	Epoch uint64 `json:"epoch"`
}

// walWorkerD is the walWorker payload.
type walWorkerD struct {
	// ID is the assigned worker identity.
	ID int `json:"id"`
	// Name is the worker's advertised name.
	Name string `json:"name,omitempty"`
}

// walCompleteD is the walComplete payload.
type walCompleteD struct {
	// Shard is the completed shard's index.
	Shard int `json:"shard"`
}

// walProgramD is the walProgram payload.
type walProgramD struct {
	// Src is the program's canonical syzlang serialization.
	Src string `json:"src"`
}

// wal is one campaign's open write-ahead log.
type wal struct {
	f       *os.File
	path    string
	records int // records appended since the last snapshot
	do      *distObs
}

// openWAL opens (creating if needed) the campaign's log for appending.
func openWAL(path string, do *distObs) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dist: open wal: %w", err)
	}
	return &wal{f: f, path: path, do: do}, nil
}

// append journals one record and fsyncs it, so an acknowledged admission
// survives power loss, not just a process crash. Append failures are
// surfaced to the caller (the campaign degrades to in-memory operation
// and warns, rather than failing fleet traffic over a full disk).
func (w *wal) append(t string, payload any) error {
	d, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("dist: wal marshal %s: %w", t, err)
	}
	line, err := json.Marshal(walRecord{T: t, CRC: crc32.ChecksumIEEE(d), D: d})
	if err != nil {
		return fmt.Errorf("dist: wal marshal record: %w", err)
	}
	line = append(line, '\n')
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("dist: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("dist: wal fsync: %w", err)
	}
	w.records++
	w.do.walRecords[t].Inc()
	w.do.walBytes.Add(uint64(len(line)))
	return nil
}

// reset truncates the log after a successful snapshot.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.records = 0
	return nil
}

// close releases the file handle.
func (w *wal) close() error { return w.f.Close() }

// replayWAL reads the log at path, invoking apply for every intact record
// in order. A torn tail — a final record that lacks its trailing newline,
// fails its checksum, or is not valid JSON — ends the replay and is
// truncated away so the next append starts from a clean record boundary;
// torn reports how many trailing bytes were dropped. A missing file
// replays zero records. Only I/O failures are errors: torn tails are the
// expected residue of a crash, not corruption to refuse.
func replayWAL(path string, apply func(t string, d json.RawMessage)) (replayed int, torn int64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("dist: open wal for replay: %w", err)
	}
	defer f.Close()
	var good int64 // offset just past the last intact record's newline
	br := bufio.NewReaderSize(f, 64*1024)
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr == io.EOF {
			// A final line without its trailing newline is a write cut
			// exactly at the record boundary — the torn tail. It must not
			// be applied even when its JSON and CRC happen to check out:
			// the next O_APPEND write would concatenate onto it, and a
			// later replay would then discard that merged line plus
			// everything after it.
			break
		}
		if rerr != nil {
			return replayed, 0, fmt.Errorf("dist: wal replay: %w", rerr)
		}
		var rec walRecord
		if json.Unmarshal(line, &rec) != nil || rec.CRC != crc32.ChecksumIEEE(rec.D) {
			break
		}
		apply(rec.T, rec.D)
		replayed++
		good += int64(len(line))
	}
	st, err := f.Stat()
	if err != nil {
		return replayed, 0, err
	}
	if torn = st.Size() - good; torn > 0 {
		if err := os.Truncate(path, good); err != nil {
			return replayed, torn, fmt.Errorf("dist: truncate torn wal tail: %w", err)
		}
	}
	return replayed, torn, nil
}

// SnapshotFormat is the CampaignSnapshot schema version.
const SnapshotFormat = 1

// SnapshotWorker is one registered worker in a snapshot.
type SnapshotWorker struct {
	// ID is the worker identity.
	ID int `json:"id"`
	// Name is the worker's advertised name.
	Name string `json:"name,omitempty"`
}

// CampaignSnapshot is the complete durable state of one campaign: what a
// manager needs to resume it after a crash, and the interchange format of
// campaign export/import (cmd/ozz -mode manager -export / -import), so a
// fleet can be drained on one machine and relaunched on another. Auth
// tokens are intentionally absent — they belong to the hosting manager's
// configuration, not to exported state.
type CampaignSnapshot struct {
	// Format is the schema version (SnapshotFormat).
	Format int `json:"format"`
	// Name is the campaign name.
	Name string `json:"name"`
	// Epoch is the registration epoch the snapshot was taken under; a
	// manager restoring it opens at Epoch+1.
	Epoch uint64 `json:"epoch"`
	// Spec is the campaign configuration shipped to workers, including
	// the memory model name.
	Spec CampaignSpec `json:"spec"`
	// TotalSteps, ShardSteps, and Seed reproduce the shard plan.
	TotalSteps int   `json:"total_steps"`
	ShardSteps int   `json:"shard_steps"`
	Seed       int64 `json:"seed"`
	// Completed lists the indexes of finished shards, ascending.
	Completed []int `json:"completed,omitempty"`
	// NextWorker is the highest worker ID ever assigned.
	NextWorker int `json:"next_worker,omitempty"`
	// Workers are the registered workers (restored disconnected; live
	// ones re-register on their first stale-epoch reply).
	Workers []SnapshotWorker `json:"workers,omitempty"`
	// Corpus is the merged corpus in the streaming corpus encoding
	// (core.EncodePrograms), first-seen order.
	Corpus string `json:"corpus,omitempty"`
	// Reports are the globally deduplicated findings, first-seen order.
	Reports []*report.Report `json:"reports,omitempty"`
}

// writeSnapshotFile writes snap atomically and durably: temp file in the
// same directory, fsync, rename, then fsync the directory so the rename
// itself survives power loss.
func writeSnapshotFile(path string, snap *CampaignSnapshot) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snapshot-*")
	if err != nil {
		return fmt.Errorf("dist: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(snap); err != nil {
		tmp.Close()
		return fmt.Errorf("dist: snapshot encode: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("dist: snapshot fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("dist: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Not every filesystem supports fsync on a directory handle; the
	// rename is still atomic without it, so failures are non-fatal.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// writeSnapshotTo streams a snapshot to an arbitrary writer (campaign
// export).
func writeSnapshotTo(w io.Writer, snap *CampaignSnapshot) error {
	return json.NewEncoder(w).Encode(snap)
}

// decodeSnapshot reads one snapshot from r (campaign import), checking
// the schema version.
func decodeSnapshot(r io.Reader) (*CampaignSnapshot, error) {
	var snap CampaignSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("dist: decode snapshot: %w", err)
	}
	if snap.Format != SnapshotFormat {
		return nil, fmt.Errorf("dist: snapshot format %d, this build reads %d", snap.Format, SnapshotFormat)
	}
	return &snap, nil
}

// readSnapshotFile loads a snapshot, reporting (nil, nil) when none
// exists yet.
func readSnapshotFile(path string) (*CampaignSnapshot, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dist: read snapshot: %w", err)
	}
	var snap CampaignSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return nil, fmt.Errorf("dist: decode snapshot: %w", err)
	}
	if snap.Format != SnapshotFormat {
		return nil, fmt.Errorf("dist: snapshot format %d, this build reads %d", snap.Format, SnapshotFormat)
	}
	return &snap, nil
}

// campaignNameRe bounds campaign names to filesystem-safe tokens, since
// the name doubles as the state subdirectory.
var campaignNameRe = regexp.MustCompile(`^[a-zA-Z0-9_][a-zA-Z0-9_.-]{0,63}$`)

// validCampaignName reports whether name may be hosted (and persisted).
func validCampaignName(name string) bool { return campaignNameRe.MatchString(name) }

// campaignDir is the campaign's state subdirectory.
func campaignDir(stateDir, name string) string { return filepath.Join(stateDir, name) }

// snapshotPath and walPath locate the two durable files of a campaign.
func snapshotPath(dir string) string { return filepath.Join(dir, "snapshot.json") }
func walPath(dir string) string      { return filepath.Join(dir, "wal.log") }
