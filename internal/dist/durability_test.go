package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"hash/crc32"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"ozz/internal/core"
	"ozz/internal/modules"
	"ozz/internal/report"
	"ozz/internal/syzlang"
)

// httptestServer serves an already-built manager over a test listener.
func httptestServer(t *testing.T, m *Manager) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// durableConfig is fastManagerConfig plus a state directory.
func durableConfig(t *testing.T, totalSteps, shardSteps int) ManagerConfig {
	cfg := fastManagerConfig(totalSteps, shardSteps)
	cfg.StateDir = t.TempDir()
	return cfg
}

// testProgram parses one watchqueue program for corpus plumbing tests.
func testProgram(t *testing.T, src string) *syzlang.Program {
	t.Helper()
	p, err := modules.Target("watchqueue").Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestManagerRestartResume is the durability tentpole end to end: a
// manager accumulates state, "crashes" (a second manager opens the same
// state directory, exactly what a SIGKILL + restart does), and the
// successor resumes — epoch bumped, completed shards remembered, corpus
// and reports intact, stale-epoch traffic fenced with HTTP 410, and the
// re-registered fleet finishes the campaign with the exact standalone
// result.
func TestManagerRestartResume(t *testing.T) {
	cfg := durableConfig(t, 40, 10)
	wantReports, wantCorpus := RunShardsLocal(cfg, 2)

	m1, srv1 := startManager(t, cfg)
	client := srv1.Client()

	// A hand-driven worker completes one shard and ships one program and
	// one finding, all of which must survive the crash.
	var reg RegisterResponse
	if err := postJSON(client, srv1.URL+PathRegister, RegisterRequest{V: ProtocolVersion, Name: "w"}, &reg); err != nil {
		t.Fatal(err)
	}
	if reg.Epoch != 1 {
		t.Fatalf("fresh campaign epoch = %d, want 1", reg.Epoch)
	}
	var poll PollResponse
	if err := postJSON(client, srv1.URL+PathPoll, PollRequest{
		V: ProtocolVersion, WorkerID: reg.WorkerID, Epoch: reg.Epoch,
	}, &poll); err != nil {
		t.Fatal(err)
	}
	if len(poll.Leases) == 0 {
		t.Fatal("no lease granted")
	}
	// Run the first leased shard for real (as a worker would), then sync
	// its corpus plus one injected marker program, push its findings plus
	// one injected marker report, and only then ack the completion — the
	// same order a real worker uses, so nothing acked is ever unsynced.
	lease := poll.Leases[0]
	pool := core.NewPool(coreConfig(testCampaign(), lease.Seed, nil, nil), 2)
	pool.Run(lease.Steps)
	prog := testProgram(t, "r0 = wq_create()\nwq_pipe_read(r0)\n")
	shipped := append(pool.CorpusPrograms(), prog)
	keys := make([]string, 0, len(shipped))
	for _, p := range shipped {
		keys = append(keys, progHash(p))
	}
	var payload strings.Builder
	if err := core.EncodePrograms(&payload, shipped); err != nil {
		t.Fatal(err)
	}
	if err := postJSON(client, srv1.URL+PathSync, SyncRequest{
		V: ProtocolVersion, WorkerID: reg.WorkerID, Epoch: reg.Epoch,
		Keys: keys, Programs: payload.String(),
	}, nil); err != nil {
		t.Fatal(err)
	}
	marker := &report.Report{Title: "KCSAN: data-race in restart_test"}
	if err := postJSON(client, srv1.URL+PathReport, ReportRequest{
		V: ProtocolVersion, WorkerID: reg.WorkerID, Epoch: reg.Epoch,
		Reports: append(pool.Reports.All(), marker),
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := postJSON(client, srv1.URL+PathPoll, PollRequest{
		V: ProtocolVersion, WorkerID: reg.WorkerID, Epoch: reg.Epoch,
		Completed: []uint64{lease.ID},
	}, nil); err != nil {
		t.Fatal(err)
	}
	if m1.ShardsCompleted() != 1 {
		t.Fatalf("shards completed = %d, want 1", m1.ShardsCompleted())
	}

	// Crash: m1 is never closed — the successor opens the same state dir
	// over its live WAL handle, exactly the SIGKILL posture.
	srv1.Close()
	m2, srv2 := startManager(t, cfg)

	if got := m2.Epoch(); got != 2 {
		t.Errorf("restarted epoch = %d, want 2", got)
	}
	if got := m2.do.walReplays.Value(); got < 1 {
		t.Errorf("wal_replays_total = %d, want >= 1", got)
	}
	if m2.ShardsCompleted() != 1 {
		t.Errorf("restarted manager remembers %d completed shards, want 1", m2.ShardsCompleted())
	}
	restored := make(map[string]struct{})
	for _, h := range m2.CorpusKeyHashes() {
		restored[h] = struct{}{}
	}
	for _, k := range keys {
		if _, ok := restored[k]; !ok {
			t.Errorf("restarted corpus lost journaled program %s", k)
		}
	}
	gotRestored := strings.Join(m2.ReportTitles(), "|")
	if !strings.Contains(gotRestored, marker.Title) {
		t.Errorf("restarted reports %q lost the journaled finding %q", gotRestored, marker.Title)
	}

	// Pre-restart identity is fenced off with HTTP 410 — the transparent
	// re-register cue.
	err := postJSON(srv2.Client(), srv2.URL+PathPoll, PollRequest{
		V: ProtocolVersion, WorkerID: reg.WorkerID, Epoch: reg.Epoch,
	}, nil)
	if errStatus(err) != 410 {
		t.Errorf("stale-epoch poll: err = %v, want HTTP 410", err)
	}

	// A real worker (which performs that re-register handshake internally
	// on the 410) finishes the campaign to the exact standalone result.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := testWorker(srv2, "resumer").Run(ctx); err != nil {
		t.Fatalf("worker after restart: %v", err)
	}
	if !m2.Done() {
		t.Fatal("campaign not done after resumed run")
	}
	gotTitles := strings.Join(m2.ReportTitles(), "|")
	wantTitles := strings.Join(append(wantReports.Titles(), "KCSAN: data-race in restart_test"), "|")
	if sortedJoin(m2.ReportTitles()) != sortedJoin(strings.Split(wantTitles, "|")) {
		t.Errorf("resumed titles %q != standalone+injected %q", gotTitles, wantTitles)
	}
	// The resumed corpus must contain every standalone program (plus the
	// injected one).
	has := make(map[string]struct{})
	for _, h := range m2.CorpusKeyHashes() {
		has[h] = struct{}{}
	}
	for _, p := range wantCorpus {
		if _, ok := has[progHash(p)]; !ok {
			t.Errorf("resumed corpus lost standalone program %s", progHash(p))
		}
	}
}

// sortedJoin joins a sorted copy for order-insensitive comparison.
func sortedJoin(in []string) string { return strings.Join(sortedCopy(in), "|") }

// TestWALTornRecord: a crash mid-append leaves a torn final record; the
// restarted manager truncates it and resumes from the last intact state
// instead of erroring out.
func TestWALTornRecord(t *testing.T) {
	cfg := durableConfig(t, 40, 10)
	m1, _ := startManager(t, cfg)
	m1.mu.Lock()
	c := m1.camps[DefaultCampaign]
	c.admitProgramLocked(testProgram(t, "r0 = wq_create()\nwq_pipe_read(r0)\n"), true)
	c.admitReportLocked(&report.Report{Title: "torn-test finding"}, true)
	m1.mu.Unlock()

	// Tear the tail: a record whose line was cut mid-write.
	wal := walPath(campaignDir(cfg.StateDir, DefaultCampaign))
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"program","crc":123,"d":{"src":"trunc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2, _ := startManager(t, cfg)
	if got := m2.do.walTorn.Value(); got != 1 {
		t.Errorf("wal_torn_records_total = %d, want 1", got)
	}
	if m2.CorpusLen() != 1 {
		t.Errorf("corpus after torn-tail recovery = %d, want 1 (intact records replayed)", m2.CorpusLen())
	}
	if titles := m2.ReportTitles(); len(titles) != 1 || titles[0] != "torn-test finding" {
		t.Errorf("reports after torn-tail recovery = %v", titles)
	}
	// The truncation leaves a clean record boundary: a third manager must
	// replay without seeing any torn bytes.
	m3, _ := startManager(t, cfg)
	if got := m3.do.walTorn.Value(); got != 0 {
		t.Errorf("second recovery still sees a torn tail (%d)", got)
	}
	if m3.CorpusLen() != 1 {
		t.Errorf("second recovery corpus = %d, want 1", m3.CorpusLen())
	}
}

// TestWALTornRecordMissingNewline: a final record whose write was cut
// exactly at the line boundary — valid JSON, valid CRC, no trailing
// newline — is still the torn tail. It must not be applied (the next
// append would concatenate onto it and poison a later replay) and must
// be truncated so subsequent appends start from a clean boundary.
func TestWALTornRecordMissingNewline(t *testing.T) {
	cfg := durableConfig(t, 40, 10)
	m1, _ := startManager(t, cfg)
	m1.mu.Lock()
	m1.camps[DefaultCampaign].admitProgramLocked(
		testProgram(t, "r0 = wq_create()\nwq_pipe_read(r0)\n"), true)
	m1.mu.Unlock()

	d, err := json.Marshal(walProgramD{Src: "r0 = wq_create()\nwq_set_filter(r0, 0x2)\n"})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := json.Marshal(walRecord{T: walProgram, CRC: crc32.ChecksumIEEE(d), D: d})
	if err != nil {
		t.Fatal(err)
	}
	wal := walPath(campaignDir(cfg.StateDir, DefaultCampaign))
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec); err != nil { // deliberately no '\n'
		t.Fatal(err)
	}
	f.Close()

	m2, _ := startManager(t, cfg)
	if got := m2.do.walTorn.Value(); got != 1 {
		t.Errorf("wal_torn_records_total = %d, want 1", got)
	}
	if m2.CorpusLen() != 1 {
		t.Errorf("corpus after recovery = %d, want 1 (the newline-less record must not apply)", m2.CorpusLen())
	}
	// The tail was truncated: this append lands on a clean boundary, and a
	// third manager replays everything without loss.
	m2.mu.Lock()
	m2.camps[DefaultCampaign].admitProgramLocked(
		testProgram(t, "r0 = wq_create()\nwq_post_notification(r0, 0x4)\n"), true)
	m2.mu.Unlock()
	m3, _ := startManager(t, cfg)
	if got := m3.do.walTorn.Value(); got != 0 {
		t.Errorf("second recovery still sees a torn tail (%d)", got)
	}
	if m3.CorpusLen() != 2 {
		t.Errorf("second recovery corpus = %d, want both intact programs", m3.CorpusLen())
	}
}

// TestRestartBeforeFirstSnapshotKeepsPlan: the plan parameters live only
// in snapshots, so a durable campaign writes one at first open — a crash
// before the first periodic compaction must restore the full shard plan
// (not a zero-shard husk) and keep the completions journaled meanwhile.
func TestRestartBeforeFirstSnapshotKeepsPlan(t *testing.T) {
	cfg := durableConfig(t, 10, 10)
	m1, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.AddCampaign("extra", CampaignConfig{
		Campaign: testCampaign(), TotalSteps: 20, ShardSteps: 10, Seed: 5,
	}); err != nil {
		t.Fatal(err)
	}
	m1.mu.Lock()
	c1 := m1.camps["extra"]
	id, _ := c1.registerLocked("w", 0)
	granted, _ := c1.grantLocked(c1.workers[id])
	if len(granted) == 0 {
		m1.mu.Unlock()
		t.Fatal("no lease granted on the extra campaign")
	}
	c1.completeLocked(c1.workers[id], granted[0].ID)
	m1.mu.Unlock()

	// Crash (no Close, so no shutdown compaction) and restart.
	m2, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2.mu.Lock()
	c2 := m2.camps["extra"]
	if c2 == nil {
		m2.mu.Unlock()
		t.Fatal("extra campaign not restored from the state dir")
	}
	shards, completed := len(c2.shards), c2.completed
	total, seed := c2.cfg.TotalSteps, c2.cfg.Seed
	done := c2.doneLocked()
	m2.mu.Unlock()
	if shards != 2 || total != 20 || seed != 5 {
		t.Errorf("restored plan: %d shards, total=%d, seed=%d; want 2 shards of the 20/5 plan", shards, total, seed)
	}
	if completed != 1 {
		t.Errorf("restored completed shards = %d, want the 1 journaled before the crash", completed)
	}
	if done {
		t.Error("half-finished campaign restored as instantly done")
	}
}

// TestAddCampaignAdoptsPlanForLegacyState: a state directory holding only
// a WAL (no snapshot — the layout a pre-initial-snapshot manager left
// behind) restores with an empty plan; re-adding the campaign via
// -add-campaign must adopt the supplied plan, keeping the WAL-replayed
// corpus, instead of leaving the zero-shard campaign and only updating
// its token.
func TestAddCampaignAdoptsPlanForLegacyState(t *testing.T) {
	cfg := durableConfig(t, 10, 10)
	extra := CampaignConfig{Campaign: testCampaign(), TotalSteps: 20, ShardSteps: 10, Seed: 5, Token: "tok"}
	m1, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.AddCampaign("legacy", extra); err != nil {
		t.Fatal(err)
	}
	prog := testProgram(t, "r0 = wq_create()\nwq_pipe_read(r0)\n")
	m1.mu.Lock()
	m1.camps["legacy"].admitProgramLocked(prog, true)
	m1.mu.Unlock()
	// Simulate the legacy layout: WAL only, no snapshot.
	if err := os.Remove(snapshotPath(campaignDir(cfg.StateDir, "legacy"))); err != nil {
		t.Fatal(err)
	}

	m2, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.AddCampaign("legacy", extra); err != nil {
		t.Fatal(err)
	}
	m2.mu.Lock()
	c2 := m2.camps["legacy"]
	shards, corpus, token := len(c2.shards), len(c2.corpusOrder), c2.cfg.Token
	m2.mu.Unlock()
	if shards != 2 {
		t.Errorf("re-added legacy campaign has %d shards, want the adopted 2-shard plan", shards)
	}
	if corpus != 1 {
		t.Errorf("adoption lost the WAL-replayed corpus: %d programs, want 1", corpus)
	}
	if token != "tok" {
		t.Errorf("re-added campaign token = %q, want %q", token, "tok")
	}
	// The adopted plan was persisted: a further restart restores it even
	// without another AddCampaign.
	m3, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m3.mu.Lock()
	shards = len(m3.camps["legacy"].shards)
	m3.mu.Unlock()
	if shards != 2 {
		t.Errorf("restart after adoption restored %d shards, want 2", shards)
	}
}

// TestLeaseExpiryAtTTLBoundary pins the sweep's comparison: a lease at
// exactly TTL is still live; one nanosecond past it is requeued.
func TestLeaseExpiryAtTTLBoundary(t *testing.T) {
	cfg := fastManagerConfig(10, 10)
	cfg.HeartbeatEvery = time.Hour // isolate lease expiry from worker death
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1000, 0)
	now := base
	m.now = func() time.Time { return now }

	m.mu.Lock()
	c := m.camps[DefaultCampaign]
	id, _ := c.registerLocked("w", 0)
	ws := c.workers[id]
	granted, _ := c.grantLocked(ws)
	m.mu.Unlock()
	if len(granted) != 1 {
		t.Fatalf("granted %d leases, want 1", len(granted))
	}

	now = base.Add(cfg.LeaseTTL) // exactly at the boundary
	m.mu.Lock()
	ws.lastSeen = now
	m.mu.Unlock()
	m.sweep()
	m.mu.Lock()
	inflight, pending := len(c.inflight), len(c.pending)
	m.mu.Unlock()
	if inflight != 1 || pending != 0 {
		t.Fatalf("at exactly TTL: inflight=%d pending=%d, want the lease still live", inflight, pending)
	}

	now = now.Add(time.Nanosecond) // one past the boundary
	m.mu.Lock()
	ws.lastSeen = now
	m.mu.Unlock()
	m.sweep()
	m.mu.Lock()
	inflight, pending = len(c.inflight), len(c.pending)
	m.mu.Unlock()
	if inflight != 0 || pending != 1 {
		t.Fatalf("past TTL: inflight=%d pending=%d, want the shard requeued", inflight, pending)
	}
	if got := m.do.leaseReassigns.Value(); got != 1 {
		t.Errorf("lease_reassignments_total = %d, want 1", got)
	}
}

// TestWorkStealing: with the pending queue empty, an idle worker gets a
// duplicate lease on an in-flight shard (capped by StealDuplicates), and
// finishing it first counts a steal win; determinism makes the race
// harmless.
func TestWorkStealing(t *testing.T) {
	cfg := fastManagerConfig(10, 10) // exactly one shard
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	c := m.camps[DefaultCampaign]
	id1, _ := c.registerLocked("holder", 0)
	g1, stolen1 := c.grantLocked(c.workers[id1])
	id2, _ := c.registerLocked("thief", 0)
	g2, stolen2 := c.grantLocked(c.workers[id2])
	id3, _ := c.registerLocked("late", 0)
	g3, _ := c.grantLocked(c.workers[id3])
	m.mu.Unlock()

	if len(g1) != 1 || stolen1 {
		t.Fatalf("holder grant = %d leases (stolen=%v), want 1 regular", len(g1), stolen1)
	}
	if len(g2) != 1 || !stolen2 || g2[0].Shard != g1[0].Shard {
		t.Fatalf("thief grant = %+v (stolen=%v), want a duplicate of shard %d", g2, stolen2, g1[0].Shard)
	}
	if len(g3) != 0 {
		t.Fatalf("third worker got %d leases, want 0 (StealDuplicates cap)", len(g3))
	}
	if got := m.do.stealGrants.Value(); got != 1 {
		t.Errorf("steal_grants_total = %d, want 1", got)
	}

	// The thief finishes first: a steal win; the holder's lease retires.
	m.mu.Lock()
	c.completeLocked(c.workers[id2], g2[0].ID)
	inflight := len(c.inflight)
	done := c.completed
	m.mu.Unlock()
	if done != 1 || inflight != 0 {
		t.Fatalf("after steal win: completed=%d inflight=%d, want 1 and 0", done, inflight)
	}
	if got := m.do.stealWins.Value(); got != 1 {
		t.Errorf("steal_wins_total = %d, want 1", got)
	}
	// The holder's late completion of the retired lease is a no-op.
	m.mu.Lock()
	c.completeLocked(c.workers[id1], g1[0].ID)
	done = c.completed
	m.mu.Unlock()
	if done != 1 {
		t.Errorf("duplicate completion double-counted: completed=%d", done)
	}
}

// TestEpochReregisterReleasesStaleLease: a worker that re-registers while
// its previous incarnation still holds an unexpired lease gets that lease
// eagerly released — the shard is grantable immediately, not after the
// TTL sweep.
func TestEpochReregisterReleasesStaleLease(t *testing.T) {
	cfg := fastManagerConfig(10, 10)
	cfg.LeaseTTL = time.Hour // the sweep alone would strand the shard
	_, srv := startManager(t, cfg)
	client := srv.Client()

	var reg RegisterResponse
	if err := postJSON(client, srv.URL+PathRegister, RegisterRequest{V: ProtocolVersion, Name: "w"}, &reg); err != nil {
		t.Fatal(err)
	}
	var poll PollResponse
	if err := postJSON(client, srv.URL+PathPoll, PollRequest{
		V: ProtocolVersion, WorkerID: reg.WorkerID, Epoch: reg.Epoch,
	}, &poll); err != nil {
		t.Fatal(err)
	}
	if len(poll.Leases) != 1 {
		t.Fatalf("granted %d leases, want 1", len(poll.Leases))
	}

	// The worker restarts and re-registers, naming its previous identity.
	var reg2 RegisterResponse
	if err := postJSON(client, srv.URL+PathRegister, RegisterRequest{
		V: ProtocolVersion, Name: "w", PrevWorkerID: reg.WorkerID, PrevEpoch: reg.Epoch,
	}, &reg2); err != nil {
		t.Fatal(err)
	}
	if reg2.WorkerID == reg.WorkerID {
		t.Fatalf("re-register reused worker ID %d", reg.WorkerID)
	}
	// The shard must be grantable right now, despite the hour-long TTL.
	var poll2 PollResponse
	if err := postJSON(client, srv.URL+PathPoll, PollRequest{
		V: ProtocolVersion, WorkerID: reg2.WorkerID, Epoch: reg2.Epoch,
	}, &poll2); err != nil {
		t.Fatal(err)
	}
	if len(poll2.Leases) != 1 || poll2.Leases[0].Shard != poll.Leases[0].Shard {
		t.Fatalf("re-registered worker polls %+v, want the eagerly released shard %d",
			poll2.Leases, poll.Leases[0].Shard)
	}
	if poll2.Leases[0].ID == poll.Leases[0].ID {
		t.Error("released shard re-granted under the same lease ID")
	}
}

// TestMultiTenancy: one manager hosts named campaigns with per-campaign
// tokens; wrong tokens get HTTP 403, unknown campaigns HTTP 404, and each
// campaign's corpus is isolated from the others'.
func TestMultiTenancy(t *testing.T) {
	cfg := fastManagerConfig(10, 10)
	m, srv := startManager(t, cfg)
	if err := m.AddCampaign("alpha", CampaignConfig{
		Campaign: testCampaign(), TotalSteps: 10, Seed: 7, Token: "secret",
	}); err != nil {
		t.Fatal(err)
	}
	client := srv.Client()

	err := postJSON(client, srv.URL+PathRegister, RegisterRequest{
		V: ProtocolVersion, Campaign: "alpha",
	}, nil)
	if errStatus(err) != 403 {
		t.Errorf("tokenless register on tokened campaign: %v, want HTTP 403", err)
	}
	err = postJSON(client, srv.URL+PathRegister, RegisterRequest{
		V: ProtocolVersion, Campaign: "nosuch",
	}, nil)
	if errStatus(err) != 404 {
		t.Errorf("unknown campaign register: %v, want HTTP 404", err)
	}

	var regA RegisterResponse
	if err := postJSON(client, srv.URL+PathRegister, RegisterRequest{
		V: ProtocolVersion, Campaign: "alpha", Token: "secret", Name: "a",
	}, &regA); err != nil {
		t.Fatalf("tokened register: %v", err)
	}
	prog := testProgram(t, "r0 = wq_create()\nwq_pipe_read(r0)\n")
	var payload strings.Builder
	if err := core.EncodePrograms(&payload, []*syzlang.Program{prog}); err != nil {
		t.Fatal(err)
	}
	if err := postJSON(client, srv.URL+PathSync, SyncRequest{
		V: ProtocolVersion, WorkerID: regA.WorkerID, Campaign: "alpha", Token: "secret",
		Epoch: regA.Epoch, Keys: []string{progHash(prog)}, Programs: payload.String(),
	}, nil); err != nil {
		t.Fatal(err)
	}

	// Isolation: the program lives in alpha, not in the default campaign.
	if m.CorpusLen() != 0 {
		t.Errorf("default campaign corpus = %d, want 0 (isolation)", m.CorpusLen())
	}
	m.mu.Lock()
	alphaCorpus := len(m.camps["alpha"].corpusOrder)
	m.mu.Unlock()
	if alphaCorpus != 1 {
		t.Errorf("alpha corpus = %d, want 1", alphaCorpus)
	}
	if got := m.do.campaigns.Value(); got != 2 {
		t.Errorf("ozz_dist_campaigns = %v, want 2", got)
	}
	if names := m.Campaigns(); len(names) != 2 || names[0] != DefaultCampaign || names[1] != "alpha" {
		t.Errorf("Campaigns() = %v", names)
	}
	if m.AddCampaign("bad/name", CampaignConfig{}) == nil {
		t.Error("AddCampaign accepted a filesystem-unsafe name")
	}
}

// TestMultiTenancyEndToEnd runs real workers against two campaigns on one
// manager concurrently; each campaign independently matches its own
// standalone result.
func TestMultiTenancyEndToEnd(t *testing.T) {
	cfg := fastManagerConfig(30, 10)
	alphaCfg := CampaignConfig{Campaign: testCampaign(), TotalSteps: 30, ShardSteps: 10, Seed: 99, Token: "s3cr3t"}
	m, srv := startManager(t, cfg)
	if err := m.AddCampaign("alpha", alphaCfg); err != nil {
		t.Fatal(err)
	}
	wantDefault, _ := RunShardsLocal(cfg, 2)
	wantAlpha, _ := RunShardsLocal(ManagerConfig{
		Campaign: alphaCfg.Campaign, TotalSteps: alphaCfg.TotalSteps,
		ShardSteps: alphaCfg.ShardSteps, Seed: alphaCfg.Seed,
	}, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	errc := make(chan error, 2)
	go func() { errc <- testWorker(srv, "wd").Run(ctx) }()
	go func() {
		w := NewWorker(WorkerConfig{
			ManagerURL: srv.URL, Name: "wa", Campaign: "alpha", Token: "s3cr3t",
			PoolWorkers: 2, HTTPClient: srv.Client(), MaxBackoff: 200 * time.Millisecond,
		})
		errc <- w.Run(ctx)
	}()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	if !m.AllDone() {
		t.Fatal("both workers exited but not every campaign is done")
	}
	if got := strings.Join(m.ReportTitles(), "|"); got != strings.Join(wantDefault.Titles(), "|") {
		t.Errorf("default campaign titles %q != standalone %q", got, wantDefault.Titles())
	}
	m.mu.Lock()
	alphaTitles := m.camps["alpha"].reports.Titles()
	m.mu.Unlock()
	if got := strings.Join(alphaTitles, "|"); got != strings.Join(wantAlpha.Titles(), "|") {
		t.Errorf("alpha campaign titles %q != standalone %q", got, wantAlpha.Titles())
	}
}

// TestProtocolNegotiation: version 1 clients are still served (answered
// at their version, single-lease grants), and versions above the window
// are rejected.
func TestProtocolNegotiation(t *testing.T) {
	cfg := fastManagerConfig(40, 10) // 4 shards: a v2 batch would grant several
	_, srv := startManager(t, cfg)
	client := srv.Client()

	var reg RegisterResponse
	if err := postJSON(client, srv.URL+PathRegister, RegisterRequest{V: 1, Name: "old"}, &reg); err != nil {
		t.Fatalf("v1 register: %v", err)
	}
	if reg.V != 1 {
		t.Errorf("v1 register answered at version %d", reg.V)
	}
	var poll PollResponse
	if err := postJSON(client, srv.URL+PathPoll, PollRequest{V: 1, WorkerID: reg.WorkerID}, &poll); err != nil {
		t.Fatalf("v1 poll (no epoch, never-restarted campaign): %v", err)
	}
	if poll.V != 1 || poll.Lease == nil {
		t.Errorf("v1 poll: V=%d Lease=%v, want a version-1 single-lease grant", poll.V, poll.Lease)
	}
	if len(poll.Leases) > 1 {
		t.Errorf("v1 poll carried a %d-lease batch", len(poll.Leases))
	}

	err := postJSON(client, srv.URL+PathRegister, RegisterRequest{V: ProtocolVersion + 1}, nil)
	if errStatus(err) != 400 {
		t.Errorf("future-version register: %v, want HTTP 400", err)
	}
	err = postJSON(client, srv.URL+PathRegister, RegisterRequest{V: 0}, nil)
	if errStatus(err) != 400 {
		t.Errorf("version-0 register: %v, want HTTP 400", err)
	}
}

// TestExportImportRoundTrip: a campaign exported from one manager and
// imported into another carries its corpus, reports, and completed-shard
// frontier; the import bumps the epoch and honors the new token.
func TestExportImportRoundTrip(t *testing.T) {
	cfg := fastManagerConfig(20, 10)
	m1, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := testProgram(t, "r0 = wq_create()\nwq_pipe_read(r0)\n")
	m1.mu.Lock()
	c1 := m1.camps[DefaultCampaign]
	c1.admitProgramLocked(prog, true)
	c1.admitReportLocked(&report.Report{Title: "exported finding"}, true)
	c1.shards[0].completed = true
	c1.completed++
	m1.mu.Unlock()

	var buf bytes.Buffer
	if err := m1.ExportCampaign(DefaultCampaign, &buf); err != nil {
		t.Fatal(err)
	}

	m2, err := NewManager(fastManagerConfig(20, 10))
	if err != nil {
		t.Fatal(err)
	}
	name, err := m2.ImportCampaign(bytes.NewReader(buf.Bytes()), "newtok")
	if err != nil {
		t.Fatal(err)
	}
	if name != DefaultCampaign {
		t.Fatalf("imported campaign name %q", name)
	}
	if m2.CorpusLen() != 1 || m2.CorpusKeyHashes()[0] != progHash(prog) {
		t.Errorf("imported corpus = %v", m2.CorpusKeyHashes())
	}
	if titles := m2.ReportTitles(); len(titles) != 1 || titles[0] != "exported finding" {
		t.Errorf("imported reports = %v", titles)
	}
	if m2.ShardsCompleted() != 1 {
		t.Errorf("imported completed shards = %d, want 1", m2.ShardsCompleted())
	}
	if got := m2.Epoch(); got != 2 {
		t.Errorf("imported epoch = %d, want snapshot epoch + 1 = 2", got)
	}
	// The import's token now guards the campaign.
	srv := httptestServer(t, m2)
	err = postJSON(srv.Client(), srv.URL+PathRegister, RegisterRequest{V: ProtocolVersion}, nil)
	if errStatus(err) != 403 {
		t.Errorf("tokenless register after import: %v, want HTTP 403", err)
	}
	if err := postJSON(srv.Client(), srv.URL+PathRegister, RegisterRequest{
		V: ProtocolVersion, Token: "newtok",
	}, nil); err != nil {
		t.Errorf("tokened register after import: %v", err)
	}
}

// TestImportReplacesStaleDiskState: importing into a durable campaign
// whose WAL is detached (a disk-full degrade) must not restore the stale
// on-disk snapshot/WAL over the imported state — the import wins, both
// in memory and across a restart.
func TestImportReplacesStaleDiskState(t *testing.T) {
	// Source manager accumulates the state to migrate.
	src, err := NewManager(fastManagerConfig(20, 10))
	if err != nil {
		t.Fatal(err)
	}
	imported := testProgram(t, "r0 = wq_create()\nwq_post_notification(r0, 0x4)\n")
	src.mu.Lock()
	cs := src.camps[DefaultCampaign]
	cs.admitProgramLocked(imported, true)
	cs.admitReportLocked(&report.Report{Title: "imported finding"}, true)
	cs.shards[0].completed = true
	cs.completed++
	src.mu.Unlock()
	var buf bytes.Buffer
	if err := src.ExportCampaign(DefaultCampaign, &buf); err != nil {
		t.Fatal(err)
	}

	// Destination: durable, with its own (soon stale) journaled state,
	// then degraded to in-memory operation — the wal == nil posture.
	cfg := durableConfig(t, 20, 10)
	m, _ := startManager(t, cfg)
	m.mu.Lock()
	c := m.camps[DefaultCampaign]
	c.admitProgramLocked(testProgram(t, "r0 = wq_create()\nwq_pipe_read(r0)\n"), true)
	_ = c.wal.close()
	c.wal = nil
	m.mu.Unlock()

	if _, err := m.ImportCampaign(bytes.NewReader(buf.Bytes()), "tok"); err != nil {
		t.Fatal(err)
	}
	if hashes := m.CorpusKeyHashes(); len(hashes) != 1 || hashes[0] != progHash(imported) {
		t.Errorf("corpus after import = %v, want only the imported program", hashes)
	}
	if m.ShardsCompleted() != 1 {
		t.Errorf("completed shards after import = %d, want 1", m.ShardsCompleted())
	}

	// A restart over the same state dir restores the imported state, not
	// the pre-import snapshot or the orphaned WAL records.
	m2, _ := startManager(t, cfg)
	if hashes := m2.CorpusKeyHashes(); len(hashes) != 1 || hashes[0] != progHash(imported) {
		t.Errorf("restarted corpus = %v, want only the imported program", hashes)
	}
	if m2.ShardsCompleted() != 1 {
		t.Errorf("restarted completed shards = %d, want 1", m2.ShardsCompleted())
	}
	if titles := m2.ReportTitles(); len(titles) != 1 || titles[0] != "imported finding" {
		t.Errorf("restarted reports = %v, want only the imported finding", titles)
	}
}
