// Package dist is the distributed campaign fabric: a manager that owns
// the global coverage corpus, the work-shard frontier, and the global
// deduplicated report set, plus workers that each run the local execution
// stack (internal/engine via core.Pool) and speak a versioned
// JSON-over-HTTP protocol with the manager.
//
// Design rules:
//
//   - The protocol is dependency-free: net/http + encoding/json only.
//   - Work is leased, never given away: a worker holds a renewable lease
//     on each shard it runs, and the manager reassigns leases whose
//     worker stopped heartbeating — a killed worker loses nothing but
//     in-flight shards.
//   - Corpus exchange is delta-based: workers send Program.Key() hashes,
//     the manager replies only with programs the worker lacks (and asks
//     for the ones it lacks itself), reusing the streaming corpus
//     encoding of internal/core for the program payloads.
//   - Shards are deterministic: a shard's campaign is a function of its
//     derived seed alone, so the union of shard results is independent of
//     which worker runs which shard, and a 1-manager/N-worker campaign
//     finds exactly the deduplicated report titles of a standalone run
//     over the same shard plan (see RunShardsLocal). Determinism also
//     makes duplicate execution harmless, which is what lease
//     reassignment, work stealing, and crash-restart resume all lean on.
//   - State is durable when asked: with a state directory configured the
//     manager journals every admission (corpus program, report, shard
//     completion, registration) to a CRC-checked write-ahead log and
//     periodically compacts it into a snapshot; a restarted manager
//     replays the log over the latest snapshot, bumps the campaign epoch,
//     and workers transparently re-register (see wal.go and
//     docs/DISTRIBUTED.md).
//   - One manager hosts N named campaigns, each with its own shard plan,
//     corpus, report set, epoch, and optional auth token; requests with
//     an empty campaign name address DefaultCampaign.
package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"

	"ozz/internal/report"
	"ozz/internal/syzlang"
)

// ProtocolVersion is the fabric's wire protocol version. Every request
// carries it in the V field. Version 2 added multi-tenancy (campaign
// names and auth tokens), the epoch-stamped re-register handshake, and
// lease batches; the manager still negotiates down to version 1 clients
// (see MinProtocolVersion), which speak to the untokened default campaign
// with single-lease grants and no epoch fencing.
const ProtocolVersion = 2

// MinProtocolVersion is the oldest protocol version the manager still
// accepts. Requests outside [MinProtocolVersion, ProtocolVersion] are
// rejected with HTTP 400 and an ErrorResponse, so incompatible fleets
// fail fast instead of corrupting each other's state; versions inside the
// window are answered at the requester's version.
const MinProtocolVersion = 1

// DefaultCampaign is the campaign name a request with an empty Campaign
// field addresses — the single campaign of a pre-multi-tenancy fleet.
const DefaultCampaign = "default"

// Endpoint paths of the manager's HTTP API.
const (
	PathRegister  = "/register"
	PathPoll      = "/poll"
	PathSync      = "/sync"
	PathReport    = "/report"
	PathHeartbeat = "/heartbeat"
)

// CampaignSpec is the manager-owned campaign configuration shipped to
// every worker at registration, mirroring the core.Config fields a worker
// needs to reconstruct the execution stack locally. Zero values take the
// usual core defaults on the worker side.
type CampaignSpec struct {
	// Modules to load (empty = all).
	Modules []string `json:"modules,omitempty"`
	// Bugs lists the active bug switches, sorted.
	Bugs []string `json:"bugs,omitempty"`
	// ProgLen is the target call count of generated programs.
	ProgLen int `json:"prog_len,omitempty"`
	// MaxHintsPerPair bounds executed hints per call pair per step.
	MaxHintsPerPair int `json:"max_hints_per_pair,omitempty"`
	// MaxPairs bounds tested call pairs per program.
	MaxPairs int `json:"max_pairs,omitempty"`
	// UseSeeds feeds the modules' seed corpus before random generation.
	UseSeeds bool `json:"use_seeds,omitempty"`
	// HintOrder selects the hint execution order ("heuristic" default).
	HintOrder string `json:"hint_order,omitempty"`
	// Model names the memory model OEMU emulates on every worker
	// ("lkmm", "tso", "armv8"; empty = lkmm). Shipping the name rather
	// than the table keeps the protocol dependency-free; workers resolve
	// it against their local memmodel registry.
	Model string `json:"model,omitempty"`
}

// Lease is one granted work unit: a deterministic campaign shard plus the
// lease bookkeeping. The worker must complete the shard (or keep the lease
// renewed via heartbeats) before TTLMS elapses, or the manager hands the
// shard to someone else.
type Lease struct {
	// ID is the lease identity, unique across the campaign (a reassigned
	// shard gets a fresh lease ID).
	ID uint64 `json:"id"`
	// Shard is the shard index in the campaign's shard plan.
	Shard int `json:"shard"`
	// Seed is the shard's derived campaign seed.
	Seed int64 `json:"seed"`
	// Steps is the shard's step budget.
	Steps int `json:"steps"`
	// TTLMS is the lease duration in milliseconds from grant time.
	TTLMS int64 `json:"ttl_ms"`
}

// RegisterRequest introduces a worker to the manager (or re-introduces
// one whose previous incarnation died or outlived a manager restart).
type RegisterRequest struct {
	// V is the sender's protocol version.
	V int `json:"v"`
	// Name is a human-readable worker name for logs and events.
	Name string `json:"name,omitempty"`
	// Campaign names the campaign to join (empty = DefaultCampaign).
	Campaign string `json:"campaign,omitempty"`
	// Token authenticates against the campaign's auth token; required
	// whenever the campaign has one, rejected requests get HTTP 403.
	Token string `json:"token,omitempty"`
	// PrevWorkerID is the worker identity of this client's previous
	// incarnation, when it is re-registering after a crash, a manager
	// restart, or an epoch mismatch. The manager eagerly releases the
	// previous incarnation's leases back to the queue instead of letting
	// them sit until the TTL sweep.
	PrevWorkerID int `json:"prev_worker_id,omitempty"`
	// PrevEpoch is the campaign epoch the previous incarnation was
	// registered under (log/debug context for the handshake).
	PrevEpoch uint64 `json:"prev_epoch,omitempty"`
}

// RegisterResponse assigns the worker its identity and the campaign.
type RegisterResponse struct {
	// V is the negotiated protocol version.
	V int `json:"v"`
	// WorkerID is the manager-assigned worker identity (1-based per
	// campaign); it tags the worker's records in the manager's event log.
	WorkerID int `json:"worker_id"`
	// Epoch is the campaign's current registration epoch. It increments
	// every time a manager restarts the campaign from persistent state;
	// every subsequent request must echo it, and a mismatch (HTTP 410)
	// tells the worker to re-register.
	Epoch uint64 `json:"epoch,omitempty"`
	// Campaign is the campaign configuration to run shards under.
	Campaign CampaignSpec `json:"campaign"`
	// HeartbeatMS is how often the manager expects heartbeats.
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// PollRequest asks for work and acknowledges completed leases.
type PollRequest struct {
	// V is the sender's protocol version.
	V int `json:"v"`
	// WorkerID is the registered worker identity.
	WorkerID int `json:"worker_id"`
	// Campaign names the campaign (empty = DefaultCampaign).
	Campaign string `json:"campaign,omitempty"`
	// Token authenticates against the campaign's auth token.
	Token string `json:"token,omitempty"`
	// Epoch echoes the registration epoch; a stale value gets HTTP 410.
	Epoch uint64 `json:"epoch,omitempty"`
	// Completed lists lease IDs the worker finished since its last poll.
	Completed []uint64 `json:"completed,omitempty"`
}

// PollResponse grants leases, asks the worker to retry later, or
// declares the campaign done.
type PollResponse struct {
	// V is the negotiated protocol version.
	V int `json:"v"`
	// Lease is the first granted work unit, nil when none is available.
	// Version 1 clients read only this field; version 2 clients should
	// prefer Leases.
	Lease *Lease `json:"lease,omitempty"`
	// Leases is the granted lease batch (version 2): the manager sizes it
	// dynamically from the pending-shard backlog and the connected worker
	// count, so a lone or fast worker drains several shards per round
	// trip. Leases[0] == *Lease when both are set.
	Leases []*Lease `json:"leases,omitempty"`
	// Done reports that every shard has completed; the worker should
	// perform a final sync and deregister.
	Done bool `json:"done"`
	// RetryMS is the manager's suggested wait before the next poll when
	// no lease was granted (the client adds backoff and jitter on top).
	RetryMS int64 `json:"retry_ms,omitempty"`
}

// SyncRequest is one round of delta-based corpus exchange: the worker
// advertises everything it has by key hash and ships the program bodies
// the manager asked for in the previous round.
type SyncRequest struct {
	// V is the sender's protocol version.
	V int `json:"v"`
	// WorkerID is the registered worker identity.
	WorkerID int `json:"worker_id"`
	// Campaign names the campaign (empty = DefaultCampaign).
	Campaign string `json:"campaign,omitempty"`
	// Token authenticates against the campaign's auth token.
	Token string `json:"token,omitempty"`
	// Epoch echoes the registration epoch; a stale value gets HTTP 410.
	Epoch uint64 `json:"epoch,omitempty"`
	// Keys lists the key hashes of every program the worker holds.
	Keys []string `json:"keys,omitempty"`
	// Programs carries, in the streaming corpus encoding, the program
	// bodies whose hashes the manager requested in its previous
	// SyncResponse.Want (empty on the first round).
	Programs string `json:"programs,omitempty"`
	// Deregister marks this as the worker's final sync: after merging,
	// the manager releases the worker's leases and drops it from the
	// connected set.
	Deregister bool `json:"deregister,omitempty"`
}

// SyncResponse completes one delta round.
type SyncResponse struct {
	// V is the manager's protocol version.
	V int `json:"v"`
	// Programs carries, in the streaming corpus encoding, the manager's
	// programs whose hashes were absent from the request's Keys.
	Programs string `json:"programs,omitempty"`
	// Want lists key hashes the manager lacks; the worker ships their
	// bodies in its next SyncRequest. An empty Want means the two sides
	// have converged.
	Want []string `json:"want,omitempty"`
}

// ReportRequest ships worker findings for global deduplication.
type ReportRequest struct {
	// V is the sender's protocol version.
	V int `json:"v"`
	// WorkerID is the registered worker identity.
	WorkerID int `json:"worker_id"`
	// Campaign names the campaign (empty = DefaultCampaign).
	Campaign string `json:"campaign,omitempty"`
	// Token authenticates against the campaign's auth token.
	Token string `json:"token,omitempty"`
	// Epoch echoes the registration epoch; a stale value gets HTTP 410.
	Epoch uint64 `json:"epoch,omitempty"`
	// Reports are the findings, first-seen order preserved.
	Reports []*report.Report `json:"reports"`
}

// ReportResponse acknowledges a report batch.
type ReportResponse struct {
	// V is the manager's protocol version.
	V int `json:"v"`
	// Added is how many reports were new titles globally.
	Added int `json:"added"`
}

// HeartbeatRequest renews the worker's liveness and its leases.
type HeartbeatRequest struct {
	// V is the sender's protocol version.
	V int `json:"v"`
	// WorkerID is the registered worker identity.
	WorkerID int `json:"worker_id"`
	// Campaign names the campaign (empty = DefaultCampaign).
	Campaign string `json:"campaign,omitempty"`
	// Token authenticates against the campaign's auth token.
	Token string `json:"token,omitempty"`
	// Epoch echoes the registration epoch; a stale value gets HTTP 410.
	Epoch uint64 `json:"epoch,omitempty"`
	// Leases lists the lease IDs the worker currently holds; each is
	// renewed for a fresh TTL.
	Leases []uint64 `json:"leases,omitempty"`
}

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct {
	// V is the manager's protocol version.
	V int `json:"v"`
	// OK is false when the manager does not know the worker (e.g. it was
	// declared dead); the worker should re-register.
	OK bool `json:"ok"`
}

// ErrorResponse is the JSON body of every non-200 manager reply.
type ErrorResponse struct {
	// Error is the human-readable failure description.
	Error string `json:"error"`
}

// keyHash condenses a Program.Key() to the 16-hex-digit FNV-1a hash the
// sync protocol exchanges instead of full keys — the delta advertisement
// for a 10k-program corpus is ~170 KB instead of megabytes of key text.
func keyHash(key string) string {
	h := fnv.New64a()
	_, _ = io.WriteString(h, key)
	return strconv.FormatUint(h.Sum64(), 16)
}

// progHash is keyHash over a program.
func progHash(p *syzlang.Program) string { return keyHash(p.Key()) }

// writeJSON marshals v with the given HTTP status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError replies with an ErrorResponse.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// readJSON decodes a request body into v, bounding the body size.
func readJSON(r *http.Request, v any) error {
	const maxBody = 64 << 20 // corpus payloads can be large, but bounded
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBody))
	return dec.Decode(v)
}

// httpError is a non-200 manager reply, carrying the status code so the
// worker can route on it: 410 means "re-register" (unknown worker or
// stale epoch), 403 means the auth token is wrong (fatal), anything else
// is a transient failure to retry with backoff.
type httpError struct {
	// status is the HTTP status code of the reply.
	status int
	// msg is the ErrorResponse body text (may be empty).
	msg string
	// url is the request URL, for context.
	url string
}

// Error renders the failure with its status code.
func (e *httpError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("dist: %s: %s (HTTP %d)", e.url, e.msg, e.status)
	}
	return fmt.Sprintf("dist: %s: HTTP %d", e.url, e.status)
}

// errStatus extracts the HTTP status from an httpError, 0 otherwise.
func errStatus(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.status
	}
	return 0
}

// postJSON is the worker-side RPC helper: POST in as JSON, decode a 200
// reply into out, surface ErrorResponse bodies as *httpError.
func postJSON(client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("dist: marshal %T: %w", in, err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("dist: post %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return &httpError{status: resp.StatusCode, msg: er.Error, url: url}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("dist: decode %s reply: %w", url, err)
	}
	return nil
}
