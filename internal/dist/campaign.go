package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ozz/internal/core"
	"ozz/internal/modules"
	"ozz/internal/report"
	"ozz/internal/syzlang"
)

// CampaignConfig parameterizes one hosted campaign. The manager-wide
// liveness timings (lease TTL, heartbeat cadence) live on ManagerConfig;
// everything that defines the campaign's work and identity lives here.
type CampaignConfig struct {
	// Campaign is the campaign configuration shipped to workers.
	Campaign CampaignSpec
	// TotalSteps is the whole campaign's step budget across all shards.
	TotalSteps int
	// ShardSteps is the per-lease step budget (default 64).
	ShardSteps int
	// Seed is the base campaign seed the shard seeds derive from.
	Seed int64
	// Token, when non-empty, is the campaign's auth token: every request
	// addressing the campaign must carry it or is rejected with HTTP 403.
	// Tokens are configuration, never persisted or exported.
	Token string
}

// normalize resolves the campaign defaults.
func (c *CampaignConfig) normalize() {
	if c.ShardSteps <= 0 {
		c.ShardSteps = 64
	}
}

// workerState is the manager's view of one registered worker.
type workerState struct {
	id        int
	name      string
	lastSeen  time.Time
	connected bool
	leases    map[uint64]struct{}
}

// shardState tracks one shard through grants, reassignments, and
// completion.
type shardState struct {
	shard     Shard
	completed bool
}

// leaseState is one outstanding grant.
type leaseState struct {
	id     uint64
	shard  int
	worker int
	expiry time.Time
	// stolen marks a duplicate lease granted by work stealing; if it
	// completes its shard first, that is a steal win.
	stolen bool
}

// campaign is one hosted campaign's entire state: the shard frontier,
// worker and lease tables, merged corpus, deduplicated report set, the
// registration epoch, and (when the manager has a state directory) the
// open write-ahead log. All fields are guarded by the owning Manager's
// mutex; methods with the Locked suffix assume it is held.
type campaign struct {
	m      *Manager
	name   string
	cfg    CampaignConfig
	target *syzlang.Target

	// epoch is the registration epoch: 1 on a fresh campaign, +1 on
	// every recovery from persistent state. Lease IDs embed it
	// (epoch<<32 | sequence) so IDs never collide across restarts.
	epoch uint64

	workers     map[int]*workerState
	nextWorker  int
	shards      []*shardState
	pending     []int // shard indexes awaiting a worker, FIFO
	inflight    map[uint64]*leaseState
	leaseByID   map[uint64]int // every lease ever granted -> shard index
	nextLease   uint64         // per-epoch lease sequence
	completed   int
	doneEmitted bool

	corpus      map[string]*syzlang.Program // key hash -> program
	corpusOrder []string                    // key hashes in first-seen order
	reports     *report.Set

	// wal is the open write-ahead log, nil for in-memory campaigns (no
	// state directory) and after an append failure degraded the campaign
	// back to in-memory operation.
	wal *wal
}

// newCampaign builds an in-memory campaign over its derived shard plan.
func newCampaign(m *Manager, name string, cfg CampaignConfig) *campaign {
	cfg.normalize()
	c := &campaign{
		m:         m,
		name:      name,
		cfg:       cfg,
		target:    modules.Target(cfg.Campaign.Modules...),
		epoch:     1,
		workers:   make(map[int]*workerState),
		inflight:  make(map[uint64]*leaseState),
		leaseByID: make(map[uint64]int),
		corpus:    make(map[string]*syzlang.Program),
		reports:   report.NewSet(),
	}
	c.rebuildPlanLocked()
	return c
}

// rebuildPlanLocked derives the shard plan from the campaign config and
// queues every incomplete shard.
func (c *campaign) rebuildPlanLocked() {
	c.shards, c.pending = nil, nil
	for _, sh := range Shards(c.cfg.Seed, c.cfg.TotalSteps, c.cfg.ShardSteps) {
		c.shards = append(c.shards, &shardState{shard: sh})
		c.pending = append(c.pending, sh.Index)
	}
	c.completed = 0
}

// requeueIncompleteLocked rebuilds the pending queue as every shard not
// yet completed, in index order, dropping all in-flight leases — the
// recovery posture: shard execution is deterministic, so re-running work
// a pre-crash lease may still be chewing on is a harmless duplicate.
func (c *campaign) requeueIncompleteLocked() {
	c.pending = c.pending[:0]
	c.inflight = make(map[uint64]*leaseState)
	for _, st := range c.shards {
		if !st.completed {
			c.pending = append(c.pending, st.shard.Index)
		}
	}
}

// connectedLocked counts live workers.
func (c *campaign) connectedLocked() int {
	n := 0
	for _, ws := range c.workers {
		if ws.connected {
			n++
		}
	}
	return n
}

// doneLocked reports whether every shard has completed.
func (c *campaign) doneLocked() bool { return c.completed == len(c.shards) }

// journalLocked appends one WAL record, degrading the campaign to
// in-memory operation (with a warning event) if the append fails — a
// full disk must not take down fleet traffic.
func (c *campaign) journalLocked(t string, payload any) {
	if c.wal == nil {
		return
	}
	if err := c.wal.append(t, payload); err != nil {
		c.m.do.ev.Warn(0, "dist.wal.error", map[string]any{
			"campaign": c.name, "err": err.Error(),
		})
		_ = c.wal.close()
		c.wal = nil
		return
	}
	if every := c.m.cfg.SnapshotEvery; c.wal.records >= every {
		c.snapshotLocked()
	}
}

// registerLocked admits a worker, journals it, and — the re-register
// handshake — eagerly releases any leases still held by the worker's
// previous incarnation instead of letting them sit out the TTL sweep.
// It returns the new worker ID and the shard indexes requeued from the
// previous incarnation.
func (c *campaign) registerLocked(name string, prevWorker int) (int, []int) {
	c.nextWorker++
	id := c.nextWorker
	c.workers[id] = &workerState{
		id: id, name: name, lastSeen: c.m.now(),
		connected: true, leases: make(map[uint64]struct{}),
	}
	c.journalLocked(walWorker, walWorkerD{ID: id, Name: name})
	var requeued []int
	if pw := c.workers[prevWorker]; pw != nil && prevWorker != id {
		pw.connected = false
		for lid := range pw.leases {
			if ls := c.inflight[lid]; ls != nil {
				delete(c.inflight, lid)
				if !c.shards[ls.shard].completed {
					c.pending = append(c.pending, ls.shard)
					c.m.do.leaseReassigns.Inc()
					requeued = append(requeued, ls.shard)
				}
			}
			delete(pw.leases, lid)
		}
	}
	return id, requeued
}

// touchLocked refreshes a worker's liveness. Returns nil for unknown or
// dead workers.
func (c *campaign) touchLocked(id int) *workerState {
	ws := c.workers[id]
	if ws == nil || !ws.connected {
		return nil
	}
	ws.lastSeen = c.m.now()
	return ws
}

// grantLocked grants up to a dynamically sized batch of leases to ws:
// ceil(pending / connected workers), capped by MaxLeaseBatch — a lone or
// fast worker drains several shards per round trip while a full fleet
// gets one each. When the pending queue is empty it falls back to work
// stealing: a duplicate lease on an in-flight shard (bounded by
// StealDuplicates per shard), so late-joining or fast workers race the
// original holder instead of idling; determinism makes whichever
// finishes first the winner and the other run a harmless duplicate.
func (c *campaign) grantLocked(ws *workerState) (granted []*Lease, stolen bool) {
	batch := 1
	if n := c.connectedLocked(); n > 0 {
		batch = (len(c.pending) + n - 1) / n
	}
	if batch < 1 {
		batch = 1
	}
	if max := c.m.cfg.MaxLeaseBatch; batch > max {
		batch = max
	}
	for len(granted) < batch && len(c.pending) > 0 {
		idx := c.pending[0]
		c.pending = c.pending[1:]
		granted = append(granted, c.leaseLocked(ws, idx, false))
	}
	if len(granted) == 0 {
		if idx, ok := c.stealTargetLocked(ws); ok {
			granted = append(granted, c.leaseLocked(ws, idx, true))
			c.m.do.stealGrants.Inc()
			stolen = true
		}
	}
	return granted, stolen
}

// stealTargetLocked picks the in-flight shard to duplicate for an idle
// worker: not completed, not already leased to this worker, fewer than
// 1+StealDuplicates outstanding leases, preferring the lease closest to
// expiry (the one most likely to need rescue).
func (c *campaign) stealTargetLocked(ws *workerState) (int, bool) {
	counts := make(map[int]int)
	mine := make(map[int]bool)
	for _, ls := range c.inflight {
		counts[ls.shard]++
		if ls.worker == ws.id {
			mine[ls.shard] = true
		}
	}
	best, bestExpiry, found := 0, time.Time{}, false
	for _, ls := range c.inflight {
		if c.shards[ls.shard].completed || mine[ls.shard] {
			continue
		}
		if counts[ls.shard] > c.m.cfg.StealDuplicates {
			continue
		}
		if !found || ls.expiry.Before(bestExpiry) {
			best, bestExpiry, found = ls.shard, ls.expiry, true
		}
	}
	return best, found
}

// leaseLocked mints one lease on shard idx for ws. Lease IDs embed the
// epoch (epoch<<32 | sequence) so a restarted manager can never re-mint
// an ID some surviving worker still holds from before the crash.
func (c *campaign) leaseLocked(ws *workerState, idx int, stolen bool) *Lease {
	c.nextLease++
	id := c.epoch<<32 | c.nextLease
	ls := &leaseState{
		id: id, shard: idx, worker: ws.id,
		expiry: c.m.now().Add(c.m.cfg.LeaseTTL), stolen: stolen,
	}
	c.inflight[id] = ls
	c.leaseByID[id] = idx
	ws.leases[id] = struct{}{}
	sh := c.shards[idx].shard
	c.m.do.leasesGranted.Inc()
	return &Lease{
		ID: id, Shard: sh.Index, Seed: sh.Seed, Steps: sh.Steps,
		TTLMS: c.m.cfg.LeaseTTL.Milliseconds(),
	}
}

// completeLocked marks a lease's shard done. Stale lease IDs (already
// reassigned, or granted by a pre-restart epoch) still complete their
// shard when known — the shard result is deterministic, so whoever
// finishes first wins and the rerun is a harmless duplicate; IDs from
// before the last restart are simply unknown and ignored.
func (c *campaign) completeLocked(ws *workerState, leaseID uint64) {
	idx, ok := c.leaseByID[leaseID]
	if !ok {
		return
	}
	var viaSteal bool
	if ls := c.inflight[leaseID]; ls != nil {
		viaSteal = ls.stolen
		delete(c.inflight, leaseID)
		if owner := c.workers[ls.worker]; owner != nil {
			delete(owner.leases, leaseID)
		}
	}
	delete(ws.leases, leaseID)
	st := c.shards[idx]
	if st.completed {
		return
	}
	st.completed = true
	c.completed++
	c.m.do.leasesCompleted.Inc()
	if viaSteal {
		c.m.do.stealWins.Inc()
		c.m.do.ev.Info(ws.id, "dist.steal.win", map[string]any{
			"campaign": c.name, "lease": leaseID, "shard": idx,
		})
	}
	c.journalLocked(walComplete, walCompleteD{Shard: idx})
	// The shard may have been requeued (expiry raced completion): drop it
	// from pending, and retire any other in-flight lease on it.
	for i, p := range c.pending {
		if p == idx {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
	for id, ls := range c.inflight {
		if ls.shard == idx {
			delete(c.inflight, id)
			if owner := c.workers[ls.worker]; owner != nil {
				delete(owner.leases, id)
			}
		}
	}
	c.m.do.ev.Info(ws.id, "dist.lease_complete", map[string]any{
		"campaign": c.name, "lease": leaseID, "shard": idx,
		"done": c.completed, "total": len(c.shards),
	})
}

// admitProgramLocked merges one program into the campaign corpus,
// journaling genuinely new admissions. Reports whether it was new.
func (c *campaign) admitProgramLocked(p *syzlang.Program, journal bool) bool {
	h := progHash(p)
	if _, dup := c.corpus[h]; dup {
		return false
	}
	c.corpus[h] = p
	c.corpusOrder = append(c.corpusOrder, h)
	if journal {
		c.journalLocked(walProgram, walProgramD{Src: p.String()})
	}
	return true
}

// admitReportLocked merges one finding into the global deduplicated set,
// journaling new titles. Reports whether it was new.
func (c *campaign) admitReportLocked(r *report.Report, journal bool) bool {
	if !c.reports.Add(r) {
		return false
	}
	if journal {
		c.journalLocked(walReport, r)
	}
	return true
}

// snapshotLocked builds the campaign's snapshot.
func (c *campaign) buildSnapshotLocked() *CampaignSnapshot {
	snap := &CampaignSnapshot{
		Format: SnapshotFormat, Name: c.name, Epoch: c.epoch,
		Spec:       c.cfg.Campaign,
		TotalSteps: c.cfg.TotalSteps, ShardSteps: c.cfg.ShardSteps, Seed: c.cfg.Seed,
		NextWorker: c.nextWorker,
		Reports:    c.reports.All(),
	}
	for _, st := range c.shards {
		if st.completed {
			snap.Completed = append(snap.Completed, st.shard.Index)
		}
	}
	var ids []int
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		snap.Workers = append(snap.Workers, SnapshotWorker{ID: id, Name: c.workers[id].name})
	}
	progs := make([]*syzlang.Program, 0, len(c.corpusOrder))
	for _, h := range c.corpusOrder {
		progs = append(progs, c.corpus[h])
	}
	var sb strings.Builder
	_ = core.EncodePrograms(&sb, progs)
	snap.Corpus = sb.String()
	return snap
}

// snapshotLocked compacts the campaign's durable state: write the
// snapshot atomically, then reset the WAL.
func (c *campaign) snapshotLocked() {
	if c.wal == nil {
		return
	}
	snap := c.buildSnapshotLocked()
	dir := campaignDir(c.m.cfg.StateDir, c.name)
	if err := writeSnapshotFile(snapshotPath(dir), snap); err != nil {
		c.m.do.ev.Warn(0, "dist.wal.error", map[string]any{
			"campaign": c.name, "err": err.Error(),
		})
		return
	}
	records := c.wal.records
	if err := c.wal.reset(); err != nil {
		c.m.do.ev.Warn(0, "dist.wal.error", map[string]any{
			"campaign": c.name, "err": err.Error(),
		})
		_ = c.wal.close()
		c.wal = nil
		return
	}
	c.m.do.walSnaps.Inc()
	c.m.do.ev.Info(0, "dist.wal.snapshot", map[string]any{
		"campaign": c.name, "compacted_records": records,
		"corpus": len(c.corpusOrder), "reports": c.reports.Len(),
		"completed": c.completed,
	})
}

// restoreSnapshotLocked loads a snapshot's state into the campaign,
// replacing the in-memory plan and merged state. The snapshot's plan
// parameters win over the configured ones (resume must not re-shard a
// half-finished campaign because a flag changed), keeping the configured
// auth token.
func (c *campaign) restoreSnapshotLocked(snap *CampaignSnapshot) {
	c.cfg.Campaign = snap.Spec
	c.cfg.TotalSteps, c.cfg.ShardSteps, c.cfg.Seed = snap.TotalSteps, snap.ShardSteps, snap.Seed
	c.cfg.normalize()
	c.target = modules.Target(snap.Spec.Modules...)
	c.epoch = snap.Epoch
	c.doneEmitted = false
	c.rebuildPlanLocked()
	for _, idx := range snap.Completed {
		if idx >= 0 && idx < len(c.shards) && !c.shards[idx].completed {
			c.shards[idx].completed = true
			c.completed++
		}
	}
	c.nextWorker = snap.NextWorker
	c.workers = make(map[int]*workerState)
	for _, sw := range snap.Workers {
		c.workers[sw.ID] = &workerState{
			id: sw.ID, name: sw.Name, leases: make(map[uint64]struct{}),
		}
		if sw.ID > c.nextWorker {
			c.nextWorker = sw.ID
		}
	}
	c.corpus = make(map[string]*syzlang.Program)
	c.corpusOrder = nil
	if snap.Corpus != "" {
		progs, _ := core.DecodePrograms(strings.NewReader(snap.Corpus), c.target)
		for _, p := range progs {
			c.admitProgramLocked(p, false)
		}
	}
	c.reports = report.NewSet()
	for _, r := range snap.Reports {
		if r != nil && r.Title != "" {
			c.admitReportLocked(r, false)
		}
	}
}

// applyWALLocked applies one replayed WAL record.
func (c *campaign) applyWALLocked(t string, d json.RawMessage) {
	switch t {
	case walEpoch:
		var rec walEpochD
		if json.Unmarshal(d, &rec) == nil && rec.Epoch > c.epoch {
			c.epoch = rec.Epoch
		}
	case walWorker:
		var rec walWorkerD
		if json.Unmarshal(d, &rec) == nil && rec.ID > 0 {
			c.workers[rec.ID] = &workerState{
				id: rec.ID, name: rec.Name, leases: make(map[uint64]struct{}),
			}
			if rec.ID > c.nextWorker {
				c.nextWorker = rec.ID
			}
		}
	case walComplete:
		var rec walCompleteD
		if json.Unmarshal(d, &rec) == nil &&
			rec.Shard >= 0 && rec.Shard < len(c.shards) && !c.shards[rec.Shard].completed {
			c.shards[rec.Shard].completed = true
			c.completed++
		}
	case walProgram:
		var rec walProgramD
		if json.Unmarshal(d, &rec) == nil {
			if p, err := c.target.Parse(rec.Src); err == nil && len(p.Calls) > 0 {
				c.admitProgramLocked(p, false)
			}
		}
	case walReport:
		var rec report.Report
		if json.Unmarshal(d, &rec) == nil && rec.Title != "" {
			c.admitReportLocked(&rec, false)
		}
	}
}

// openStateLocked attaches the campaign to its state directory: restore
// the latest snapshot, replay the WAL over it (truncating a torn tail),
// bump the epoch, requeue incomplete shards, and open the log for
// appending. A campaign that restored anything counts one WAL replay.
func (c *campaign) openStateLocked() error {
	dir := campaignDir(c.m.cfg.StateDir, c.name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dist: campaign state dir: %w", err)
	}
	snap, err := readSnapshotFile(snapshotPath(dir))
	if err != nil {
		return err
	}
	if snap != nil {
		c.restoreSnapshotLocked(snap)
	}
	replayed, torn, err := replayWAL(walPath(dir), c.applyWALLocked)
	if err != nil {
		return err
	}
	resumed := snap != nil || replayed > 0
	if resumed {
		c.m.do.walReplays.Inc()
		c.m.do.walReplayed.Add(uint64(replayed))
		if torn > 0 {
			c.m.do.walTorn.Inc()
		}
		c.epoch++
		c.requeueIncompleteLocked()
		for _, ws := range c.workers {
			ws.connected = false
		}
		c.m.do.ev.Info(0, "dist.wal.replay", map[string]any{
			"campaign": c.name, "snapshot": snap != nil,
			"records": replayed, "torn_bytes": torn, "epoch": c.epoch,
			"completed": c.completed, "corpus": len(c.corpusOrder),
			"reports": c.reports.Len(),
		})
	}
	w, err := openWAL(walPath(dir), c.m.do)
	if err != nil {
		return err
	}
	c.wal = w
	c.journalLocked(walEpoch, walEpochD{Epoch: c.epoch})
	if snap == nil {
		// First open under this state directory: persist the plan
		// parameters (spec, total/shard steps, seed) right away. They
		// live only in snapshots — without one, a crash before the first
		// periodic compaction would restore the campaign from a bare WAL
		// as a zero-shard husk (instantly "done") and drop every
		// completion record it had journaled.
		c.snapshotLocked()
	}
	return nil
}

// attachStateLocked opens the campaign's WAL for appending without
// restoring anything from disk — the import path, where whatever the
// state directory holds (a stale snapshot, an orphaned WAL from a
// degraded campaign) is precisely what the caller is replacing. The log
// is truncated so stale records cannot replay over the imported state on
// the next restart.
func (c *campaign) attachStateLocked() error {
	dir := campaignDir(c.m.cfg.StateDir, c.name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dist: campaign state dir: %w", err)
	}
	w, err := openWAL(walPath(dir), c.m.do)
	if err != nil {
		return err
	}
	if err := w.reset(); err != nil {
		_ = w.close()
		return fmt.Errorf("dist: truncate wal for import: %w", err)
	}
	c.wal = w
	return nil
}
