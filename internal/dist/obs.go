package dist

import (
	"time"

	"ozz/internal/obs"
)

// endpointNames are the fabric's HTTP endpoints in the order their
// ozz_dist_http_duration_seconds children are pre-registered.
var endpointNames = []string{"register", "poll", "sync", "report", "heartbeat"}

// distObs bundles the fabric's metric handles. The same families serve
// both sides: on the manager they count the whole fleet, on a worker they
// count that worker's client-side traffic (registration is get-or-create,
// so sharing a registry between a worker and its local pool is safe).
// Incrementing these never influences campaign results — shard execution
// stays a function of the shard seed alone.
type distObs struct {
	reg *obs.Registry
	ev  *obs.EventLog

	workers       *obs.Gauge
	registrations *obs.Counter

	syncBytesIn, syncBytesOut *obs.Counter
	syncProgsIn, syncProgsOut *obs.Counter

	// httpDur children, indexed like endpointNames.
	httpRegister, httpPoll, httpSync, httpReport, httpHeartbeat *obs.Histogram

	leasesGranted, leasesCompleted, leaseReassigns *obs.Counter
	heartbeatMisses                                *obs.Counter
	leasesPending                                  *obs.Gauge

	corpusProgs             *obs.Gauge
	reportsNew, reportsDup  *obs.Counter

	// Durability (write-ahead log + snapshots).
	walRecords  map[string]*obs.Counter // by record type
	walBytes    *obs.Counter
	walReplays  *obs.Counter
	walReplayed *obs.Counter
	walTorn     *obs.Counter
	walSnaps    *obs.Counter

	// Elasticity (work stealing) and multi-tenancy.
	stealGrants, stealWins *obs.Counter
	campaigns              *obs.Gauge
	campaignEpoch          *obs.GaugeVec
}

// newDistObs registers the fabric's metric families on reg (creating every
// labeled child up front so a scrape is complete before any traffic) and
// attaches the optional event log.
func newDistObs(reg *obs.Registry, ev *obs.EventLog) *distObs {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	d := &distObs{reg: reg, ev: ev}
	d.workers = reg.Gauge("ozz_dist_workers_connected",
		"Workers currently registered and heartbeating with the manager.")
	d.registrations = reg.Counter("ozz_dist_registrations_total",
		"Worker registrations accepted (re-registrations count again).")

	bytes := reg.CounterVec("ozz_dist_sync_bytes_total",
		"Corpus-encoded program payload bytes moved by /sync, by direction relative to this process.", "direction")
	d.syncBytesIn = bytes.With("in")
	d.syncBytesOut = bytes.With("out")
	progs := reg.CounterVec("ozz_dist_sync_programs_total",
		"Programs merged from /sync payloads, by direction relative to this process.", "direction")
	d.syncProgsIn = progs.With("in")
	d.syncProgsOut = progs.With("out")

	durs := reg.HistogramVec("ozz_dist_http_duration_seconds",
		"Wall-clock duration of one fabric HTTP exchange, seconds (handler-side on the manager, round-trip on workers).",
		obs.DurationBuckets(), "endpoint")
	children := make([]*obs.Histogram, len(endpointNames))
	for i, e := range endpointNames {
		children[i] = durs.With(e)
	}
	d.httpRegister, d.httpPoll, d.httpSync, d.httpReport, d.httpHeartbeat =
		children[0], children[1], children[2], children[3], children[4]

	d.leasesGranted = reg.Counter("ozz_dist_leases_granted_total",
		"Work leases granted to workers (a reassigned shard grants a fresh lease).")
	d.leasesCompleted = reg.Counter("ozz_dist_leases_completed_total",
		"Work leases acknowledged complete by their worker.")
	d.leaseReassigns = reg.Counter("ozz_dist_lease_reassignments_total",
		"Leases whose shard was requeued because the lease expired or its worker died.")
	d.heartbeatMisses = reg.Counter("ozz_dist_heartbeat_misses_total",
		"Workers declared dead after missing their heartbeat deadline.")
	d.leasesPending = reg.Gauge("ozz_dist_leases_pending",
		"Shards waiting in the manager's queue for a worker.")

	d.corpusProgs = reg.Gauge("ozz_dist_corpus_programs",
		"Programs in this process's merged fabric corpus (global on the manager, local aggregate on a worker).")
	outcomes := reg.CounterVec("ozz_dist_reports_merged_total",
		"Report-set merge attempts at the manager's global dedup, by outcome.", "outcome")
	d.reportsNew = outcomes.With("new")
	d.reportsDup = outcomes.With("duplicate")

	walRecs := reg.CounterVec("ozz_dist_wal_records_total",
		"Write-ahead-log records appended, by record type (epoch, worker, complete, program, report).", "type")
	d.walRecords = make(map[string]*obs.Counter, len(walRecordTypes))
	for _, t := range walRecordTypes {
		d.walRecords[t] = walRecs.With(t)
	}
	d.walBytes = reg.Counter("ozz_dist_wal_bytes_total",
		"Bytes appended to campaign write-ahead logs (including record framing).")
	d.walReplays = reg.Counter("ozz_dist_wal_replays_total",
		"Campaign recoveries that restored prior state from a snapshot and/or write-ahead log at manager start.")
	d.walReplayed = reg.Counter("ozz_dist_wal_replayed_records_total",
		"Write-ahead-log records applied during recovery replays.")
	d.walTorn = reg.Counter("ozz_dist_wal_torn_records_total",
		"Torn write-ahead-log tails (a record truncated mid-append by a crash) dropped during recovery.")
	d.walSnaps = reg.Counter("ozz_dist_wal_snapshots_total",
		"Campaign snapshots written (periodic compactions plus explicit exports to the state directory).")

	d.stealGrants = reg.Counter("ozz_dist_steal_grants_total",
		"Duplicate leases granted by work stealing: an idle worker re-running an in-flight shard because the pending queue was empty.")
	d.stealWins = reg.Counter("ozz_dist_steal_wins_total",
		"Stolen leases that completed their shard before the original holder did.")
	d.campaigns = reg.Gauge("ozz_dist_campaigns",
		"Campaigns hosted by this manager.")
	d.campaignEpoch = reg.GaugeVec("ozz_dist_campaign_epoch",
		"Current registration epoch of each hosted campaign (bumped on every crash-restart recovery).", "campaign")
	return d
}

// observe records one exchange duration.
func observe(h *obs.Histogram, start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// RegisterMetrics pre-registers every ozz_dist_* metric family (and their
// labeled children) on reg without constructing a manager or worker — the
// documentation-completeness test and dashboards use it to enumerate the
// fabric's metric surface.
func RegisterMetrics(reg *obs.Registry) {
	newDistObs(reg, nil)
}
