package dist

import (
	"encoding/json"
	"reflect"
	"testing"

	"ozz/internal/report"
)

// protoMessages returns one zero instance of every wire message; the
// fuzzer decodes arbitrary bytes into each shape.
func protoMessages() []any {
	return []any{
		&RegisterRequest{}, &RegisterResponse{},
		&PollRequest{}, &PollResponse{},
		&SyncRequest{}, &SyncResponse{},
		&ReportRequest{}, &ReportResponse{},
		&HeartbeatRequest{}, &HeartbeatResponse{},
		&ErrorResponse{},
	}
}

// FuzzProtocol feeds arbitrary bytes to every protocol message decoder —
// exactly what a manager does with an untrusted request body. Invariants:
// decoding never panics, and any body that decodes reaches a canonical
// wire form in one encode step (marshal∘decode is idempotent), so a
// manager relaying a message never corrupts it. The comparison is on the
// marshaled bytes, not DeepEqual: omitempty canonicalizes an empty slice
// and an absent field to the same wire form, which is the equality that
// matters on the wire.
func FuzzProtocol(f *testing.F) {
	for _, m := range []any{
		RegisterRequest{V: ProtocolVersion, Name: "w1"},
		RegisterRequest{V: ProtocolVersion, Name: "w2", Campaign: "alpha", Token: "t0k", PrevWorkerID: 3, PrevEpoch: 2},
		RegisterResponse{V: ProtocolVersion, WorkerID: 2, Epoch: 3, HeartbeatMS: 500},
		PollRequest{V: ProtocolVersion, WorkerID: 2, Campaign: "alpha", Token: "t0k", Epoch: 3},
		PollResponse{V: ProtocolVersion,
			Lease:  &Lease{ID: 1<<32 | 1, Shard: 0, Seed: 9, Steps: 10, TTLMS: 3000},
			Leases: []*Lease{{ID: 1<<32 | 1, Shard: 0, Seed: 9, Steps: 10, TTLMS: 3000}, {ID: 1<<32 | 2, Shard: 1, Seed: 10, Steps: 10, TTLMS: 3000}}},
		RegisterResponse{V: ProtocolVersion, WorkerID: 1, HeartbeatMS: 500,
			Campaign: CampaignSpec{Modules: []string{"wq"}, Bugs: []string{"wq_missing_barrier"}, ProgLen: 3, UseSeeds: true}},
		PollRequest{V: ProtocolVersion, WorkerID: 1, Completed: []uint64{1, 2}},
		PollResponse{V: ProtocolVersion, Lease: &Lease{ID: 7, Shard: 3, Seed: -1, Steps: 40, TTLMS: 3000}},
		PollResponse{V: ProtocolVersion, Done: true},
		SyncRequest{V: ProtocolVersion, WorkerID: 1, Keys: []string{"abc123"}, Programs: "r0 = wq_create()\n"},
		SyncResponse{V: ProtocolVersion, Want: []string{"def456"}},
		ReportRequest{V: ProtocolVersion, WorkerID: 1, Reports: []*report.Report{{
			Title: "KCSAN: data-race in wq_post", Oracle: "kcsan", OOO: true, Type: "S-S",
			ReorderedSites: []string{"42"}, Pair: [2]string{"wq_post_notification", "wq_pipe_read"},
		}}},
		ReportResponse{V: ProtocolVersion, Added: 1},
		HeartbeatRequest{V: ProtocolVersion, WorkerID: 1, Leases: []uint64{7}},
		HeartbeatResponse{V: ProtocolVersion, OK: true},
		ErrorResponse{Error: "protocol version mismatch"},
	} {
		b, err := json.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"v":9999,"lease":{"id":18446744073709551615}}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		for _, zero := range protoMessages() {
			msg := reflect.New(reflect.TypeOf(zero).Elem()).Interface()
			if json.Unmarshal(body, msg) != nil {
				continue
			}
			out, err := json.Marshal(msg)
			if err != nil {
				t.Fatalf("%T decoded %q but re-marshal failed: %v", msg, body, err)
			}
			again := reflect.New(reflect.TypeOf(zero).Elem()).Interface()
			if err := json.Unmarshal(out, again); err != nil {
				t.Fatalf("%T re-marshal %q does not decode: %v", msg, out, err)
			}
			out2, err := json.Marshal(again)
			if err != nil {
				t.Fatalf("%T second marshal failed: %v", msg, err)
			}
			if string(out) != string(out2) {
				t.Fatalf("%T wire form not canonical after one encode:\nbody: %q\nfirst: %s\nsecond: %s",
					msg, body, out, out2)
			}
		}
	})
}
