package dist

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"ozz/internal/core"
	"ozz/internal/modules"
	"ozz/internal/syzlang"
)

// testCampaign is the campaign every fabric test runs: the buggy
// watchqueue module with seeds on, which reliably produces findings
// within a few dozen steps.
func testCampaign() CampaignSpec {
	return CampaignSpec{
		Modules:  []string{"watchqueue"},
		Bugs:     []string{"watchqueue:pipe_wmb"},
		UseSeeds: true,
	}
}

// fastManagerConfig builds a manager configuration with test-friendly
// liveness timings.
func fastManagerConfig(totalSteps, shardSteps int) ManagerConfig {
	return ManagerConfig{
		Campaign:        testCampaign(),
		TotalSteps:      totalSteps,
		ShardSteps:      shardSteps,
		Seed:            1,
		LeaseTTL:        500 * time.Millisecond,
		HeartbeatEvery:  50 * time.Millisecond,
		HeartbeatMisses: 2,
	}
}

func TestShardsPlan(t *testing.T) {
	plan := Shards(7, 100, 30)
	if len(plan) != 4 {
		t.Fatalf("got %d shards, want 4", len(plan))
	}
	total := 0
	seeds := make(map[int64]struct{})
	for i, sh := range plan {
		if sh.Index != i {
			t.Errorf("shard %d has index %d", i, sh.Index)
		}
		total += sh.Steps
		seeds[sh.Seed] = struct{}{}
	}
	if total != 100 {
		t.Errorf("plan covers %d steps, want 100", total)
	}
	if plan[3].Steps != 10 {
		t.Errorf("last shard has %d steps, want the 10-step remainder", plan[3].Steps)
	}
	if len(seeds) != 4 {
		t.Errorf("plan has %d distinct seeds, want 4", len(seeds))
	}
	// The plan is a pure function of its arguments.
	again := Shards(7, 100, 30)
	for i := range plan {
		if plan[i] != again[i] {
			t.Fatalf("shard plan is not deterministic at %d: %+v vs %+v", i, plan[i], again[i])
		}
	}
	if Shards(7, 0, 30) != nil {
		t.Error("empty campaign should have an empty plan")
	}
}

// startManager serves a manager over an httptest listener.
func startManager(t *testing.T, cfg ManagerConfig) (*Manager, *httptest.Server) {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	return m, srv
}

// testWorker builds a worker pointed at srv with fast retry timings.
func testWorker(srv *httptest.Server, name string) *Worker {
	return NewWorker(WorkerConfig{
		ManagerURL:  srv.URL,
		Name:        name,
		PoolWorkers: 2,
		HTTPClient:  srv.Client(),
		MaxBackoff:  200 * time.Millisecond,
	})
}

// sortedCopy returns a sorted copy of hashes for set comparison.
func sortedCopy(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

// TestDistributedMatchesStandalone is the subsystem's core promise: a
// 1-manager/2-worker campaign finds exactly the deduplicated report
// titles (and corpus programs) of the equivalent standalone shard run.
func TestDistributedMatchesStandalone(t *testing.T) {
	cfg := fastManagerConfig(60, 15)
	wantReports, wantCorpus := RunShardsLocal(cfg, 2)
	if wantReports.Len() == 0 {
		t.Fatal("standalone campaign found nothing; test campaign is too weak")
	}

	m, srv := startManager(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	errc := make(chan error, 2)
	for _, name := range []string{"w1", "w2"} {
		go func(name string) { errc <- testWorker(srv, name).Run(ctx) }(name)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	if !m.Done() {
		t.Fatal("workers exited but the manager is not done")
	}

	gotTitles := m.ReportTitles()
	wantTitles := wantReports.Titles()
	if strings.Join(gotTitles, "|") != strings.Join(wantTitles, "|") {
		t.Errorf("distributed titles %v != standalone titles %v", gotTitles, wantTitles)
	}

	wantHashes := make([]string, 0, len(wantCorpus))
	for _, p := range wantCorpus {
		wantHashes = append(wantHashes, progHash(p))
	}
	got, want := sortedCopy(m.CorpusKeyHashes()), sortedCopy(wantHashes)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("distributed corpus (%d programs) != standalone corpus (%d programs)",
			len(got), len(want))
	}
	if m.do.workers.Value() != 0 {
		t.Errorf("workers_connected = %v after both deregistered, want 0", m.do.workers.Value())
	}
}

// TestWorkerKillLeaseReassignment: a worker that dies holding a lease
// loses nothing — the manager reassigns the shard after the heartbeat
// deadline and the surviving worker completes the campaign with the full
// standalone result.
func TestWorkerKillLeaseReassignment(t *testing.T) {
	cfg := fastManagerConfig(40, 10)
	// Disable work stealing so the TTL sweep (not an instant duplicate
	// lease) is what rescues the victim's shard — that path must keep
	// working when stealing is off.
	cfg.StealDuplicates = -1
	wantReports, wantCorpus := RunShardsLocal(cfg, 2)

	m, srv := startManager(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// The victim grabs one lease and vanishes: no completion, no sync, no
	// deregister, and (because Run returned) no more heartbeats.
	victim := testWorker(srv, "victim")
	victim.dieAfterLeases = 1
	if err := victim.Run(ctx); err == nil {
		t.Fatal("victim should have died by test hook")
	}

	survivor := testWorker(srv, "survivor")
	if err := survivor.Run(ctx); err != nil {
		t.Fatalf("survivor: %v", err)
	}
	if !m.Done() {
		t.Fatal("survivor exited but the campaign is not done")
	}
	if got := m.do.leaseReassigns.Value(); got < 1 {
		t.Errorf("lease_reassignments_total = %d, want >= 1", got)
	}
	if got := m.do.heartbeatMisses.Value(); got < 1 {
		t.Errorf("heartbeat_misses_total = %d, want >= 1", got)
	}

	gotTitles := strings.Join(m.ReportTitles(), "|")
	if gotTitles != strings.Join(wantReports.Titles(), "|") {
		t.Errorf("post-kill titles %q != standalone %q", gotTitles, wantReports.Titles())
	}
	if m.CorpusLen() != len(wantCorpus) {
		t.Errorf("post-kill corpus has %d programs, standalone has %d", m.CorpusLen(), len(wantCorpus))
	}
}

// TestSyncDeltaConvergence drives the Want handshake by hand: the manager
// learns what a worker holds, asks for it, receives the bodies, and then
// serves them to a second worker that advertises nothing.
func TestSyncDeltaConvergence(t *testing.T) {
	cfg := fastManagerConfig(10, 10)
	m, srv := startManager(t, cfg)
	client := srv.Client()

	var reg RegisterResponse
	if err := postJSON(client, srv.URL+PathRegister, RegisterRequest{V: ProtocolVersion, Name: "a"}, &reg); err != nil {
		t.Fatal(err)
	}

	target := modules.Target("watchqueue")
	prog, err := target.Parse("r0 = wq_create()\nwq_pipe_read(r0)\n")
	if err != nil {
		t.Fatal(err)
	}
	h := progHash(prog)

	// Round 1: advertise the key; the manager lacks it and must ask.
	var s1 SyncResponse
	if err := postJSON(client, srv.URL+PathSync, SyncRequest{
		V: ProtocolVersion, WorkerID: reg.WorkerID, Keys: []string{h},
	}, &s1); err != nil {
		t.Fatal(err)
	}
	if len(s1.Want) != 1 || s1.Want[0] != h {
		t.Fatalf("manager Want = %v, want [%s]", s1.Want, h)
	}
	if m.CorpusLen() != 0 {
		t.Fatal("manager grew a corpus from key hashes alone")
	}

	// Round 2: ship the body; the delta converges.
	var payload strings.Builder
	if err := core.EncodePrograms(&payload, []*syzlang.Program{prog}); err != nil {
		t.Fatal(err)
	}
	var s2 SyncResponse
	if err := postJSON(client, srv.URL+PathSync, SyncRequest{
		V: ProtocolVersion, WorkerID: reg.WorkerID, Keys: []string{h}, Programs: payload.String(),
	}, &s2); err != nil {
		t.Fatal(err)
	}
	if len(s2.Want) != 0 {
		t.Fatalf("manager still wants %v after the body arrived", s2.Want)
	}
	if m.CorpusLen() != 1 {
		t.Fatalf("manager corpus has %d programs, want 1", m.CorpusLen())
	}

	// A second worker advertising nothing receives exactly the delta.
	var regB RegisterResponse
	if err := postJSON(client, srv.URL+PathRegister, RegisterRequest{V: ProtocolVersion, Name: "b"}, &regB); err != nil {
		t.Fatal(err)
	}
	var s3 SyncResponse
	if err := postJSON(client, srv.URL+PathSync, SyncRequest{
		V: ProtocolVersion, WorkerID: regB.WorkerID,
	}, &s3); err != nil {
		t.Fatal(err)
	}
	got, err := core.DecodePrograms(strings.NewReader(s3.Programs), target)
	if err != nil || len(got) != 1 || got[0].Key() != prog.Key() {
		t.Fatalf("second worker received %d programs (err %v), want the 1 synced program", len(got), err)
	}
}

// TestProtocolVersionMismatch: a wrong-version client is rejected with
// HTTP 400 and a JSON error body on every endpoint.
func TestProtocolVersionMismatch(t *testing.T) {
	_, srv := startManager(t, fastManagerConfig(10, 10))
	for _, path := range []string{PathRegister, PathPoll, PathSync, PathReport, PathHeartbeat} {
		err := postJSON(srv.Client(), srv.URL+path, RegisterRequest{V: ProtocolVersion + 1}, nil)
		if err == nil || !strings.Contains(err.Error(), "protocol version") {
			t.Errorf("%s with bad version: err = %v, want protocol rejection", path, err)
		}
		if err != nil && !strings.Contains(err.Error(), "HTTP 400") {
			t.Errorf("%s rejection status: %v, want HTTP 400", path, err)
		}
	}
}

// TestManagerUnknownWorker: traffic from an unregistered worker ID is
// turned away with HTTP 410 so the client knows to re-register.
func TestManagerUnknownWorker(t *testing.T) {
	_, srv := startManager(t, fastManagerConfig(10, 10))
	err := postJSON(srv.Client(), srv.URL+PathPoll, PollRequest{V: ProtocolVersion, WorkerID: 42}, nil)
	if err == nil || !strings.Contains(err.Error(), "HTTP 410") {
		t.Errorf("unknown worker poll: err = %v, want HTTP 410", err)
	}
}

// TestManagerMetricsEndpoint: the manager's listener also serves its
// registry for scrapers.
func TestManagerMetricsEndpoint(t *testing.T) {
	_, srv := startManager(t, fastManagerConfig(10, 10))
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ozz_dist_workers_connected", "ozz_dist_leases_pending"} {
		if !strings.Contains(string(body), name) {
			t.Errorf("/metrics output lacks %s", name)
		}
	}
}

// TestGracefulShutdownFlushes: cancelling a worker mid-campaign flushes
// its findings and corpus to the manager via the final deregistering
// sync; the manager requeues its leases and drops it from the connected
// gauge — nothing is lost.
func TestGracefulShutdownFlushes(t *testing.T) {
	cfg := fastManagerConfig(200, 10)
	m, srv := startManager(t, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	w := testWorker(srv, "w")
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	// Wait until the worker has produced something worth losing.
	deadline := time.Now().Add(20 * time.Second)
	for m.CorpusLen() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if m.CorpusLen() == 0 {
		t.Fatal("campaign produced no corpus to test the flush with")
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("worker Run = %v, want context.Canceled", err)
	}

	if got := m.WorkersConnected(); got != 0 {
		t.Errorf("workers_connected = %d after graceful shutdown, want 0", got)
	}
	// Every program and finding the worker held must be at the manager.
	managerHas := make(map[string]struct{})
	for _, h := range m.CorpusKeyHashes() {
		managerHas[h] = struct{}{}
	}
	w.mu.Lock()
	workerHashes := append([]string(nil), w.corpusOrder...)
	workerTitles := w.reports.Titles()
	w.mu.Unlock()
	for _, h := range workerHashes {
		if _, ok := managerHas[h]; !ok {
			t.Errorf("worker corpus program %s lost in shutdown", h)
		}
	}
	globalTitles := make(map[string]struct{})
	for _, title := range m.ReportTitles() {
		globalTitles[title] = struct{}{}
	}
	for _, title := range workerTitles {
		if _, ok := globalTitles[title]; !ok {
			t.Errorf("worker finding %q lost in shutdown", title)
		}
	}
	// The worker's in-flight shard went back on the queue.
	m.mu.Lock()
	c := m.camps[DefaultCampaign]
	pendingPlusDone := len(c.pending) + c.completed + len(c.inflight)
	total := len(c.shards)
	m.mu.Unlock()
	if pendingPlusDone != total {
		t.Errorf("shard accounting broken after shutdown: pending+completed+inflight = %d, shards = %d",
			pendingPlusDone, total)
	}
}
