package repair

import (
	"reflect"
	"strings"
	"testing"

	"ozz/internal/lkmm"
	"ozz/internal/lkmm/model"
	"ozz/internal/obs"
)

// suiteTest fetches a litmus suite entry by name.
func suiteTest(t *testing.T, name string) *lkmm.Test {
	t.Helper()
	for _, e := range lkmm.Suite() {
		if e.Test.Name == name {
			return e.Test
		}
	}
	t.Fatalf("suite entry %q not found", name)
	return nil
}

// TestLitmusLoadBarrierRepair checks the load-barrier repair target: the
// "MP+wmb only" shape (writer fenced, reader not) must be repaired by an
// smp_rmb insertion on the reader thread, reported unnecessary under TSO.
func TestLitmusLoadBarrierRepair(t *testing.T) {
	res := Litmus(suiteTest(t, "MP+wmb only"), Options{})
	if len(res.BuggyOutcomes) == 0 {
		t.Fatalf("no buggy outcomes derived:\n%s", res.Render())
	}
	if len(res.Suggestions) == 0 {
		t.Fatalf("no suggestion found:\n%s", res.Render())
	}
	top := res.Suggestions[0]
	if len(top.Fences) != 1 {
		t.Fatalf("top suggestion not single-fence: %s", top)
	}
	f := top.Fences[0]
	if f.Action != ActionInsert || f.Barrier != "smp_rmb" || f.thread != 1 {
		t.Fatalf("top fence = %+v, want reader-side smp_rmb insertion", f)
	}
	verdicts := map[string]string{}
	for _, m := range top.Models {
		verdicts[m.Model] = m.Status
	}
	if verdicts["lkmm"] != StatusFixes || verdicts["armv8"] != StatusFixes {
		t.Fatalf("weak-model verdicts = %v, want fixes under lkmm and armv8", verdicts)
	}
	if verdicts["tso"] != StatusUnnecessary {
		t.Fatalf("tso verdict = %q, want %q (FIFO store buffer cannot reach the bug)", verdicts["tso"], StatusUnnecessary)
	}
	if !strings.Contains(top.String(), "insert smp_rmb between ") {
		t.Fatalf("rendered suggestion %q lacks the patch instruction", top.String())
	}
}

// TestLitmusTwoFenceRepair checks the ascending-size search: fully
// relaxed MP needs one fence per thread, so size 1 must come up empty and
// the minimal suggestions must pair a writer-side store fence with a
// reader-side load fence.
func TestLitmusTwoFenceRepair(t *testing.T) {
	res := Litmus(suiteTest(t, "MP (relaxed)"), Options{})
	if len(res.Suggestions) == 0 {
		t.Fatalf("no suggestion found:\n%s", res.Render())
	}
	top := res.Suggestions[0]
	if len(top.Fences) != 2 {
		t.Fatalf("top suggestion = %s, want a two-fence repair", top)
	}
	threads := map[int]bool{}
	for _, f := range top.Fences {
		threads[f.thread] = true
	}
	if !threads[0] || !threads[1] {
		t.Fatalf("top suggestion %s does not fence both threads", top)
	}
}

// TestLitmusNothingToRepair checks that an already-correct shape yields
// an empty buggy-outcome set and no suggestions.
func TestLitmusNothingToRepair(t *testing.T) {
	res := Litmus(suiteTest(t, "MP+wmb+rmb"), Options{})
	if len(res.BuggyOutcomes) != 0 || len(res.Suggestions) != 0 {
		t.Fatalf("correct shape produced a repair:\n%s", res.Render())
	}
	if !strings.Contains(res.Render(), "nothing to repair") {
		t.Fatalf("Render() lacks the nothing-to-repair notice:\n%s", res.Render())
	}
}

// TestMinimality is the minimality property over every suite-derived
// suggestion: dropping any single fence from a suggested repair must
// re-admit a buggy outcome in the reference model.
func TestMinimality(t *testing.T) {
	for _, e := range lkmm.Suite() {
		res := Litmus(e.Test, Options{})
		if len(res.Suggestions) == 0 {
			continue
		}
		p := newProblem(e.Test, litmusLabels(e.Test), Options{}, -1)
		for _, sug := range res.Suggestions {
			if !p.legal(sug.Fences, p.primary) {
				t.Errorf("%s: suggestion %s is not legal", e.Test.Name, sug)
			}
			if len(sug.Fences) == 1 {
				// The empty candidate is the unrepaired test, which has a
				// non-empty buggy set by construction.
				continue
			}
			for drop := range sug.Fences {
				var sub []Fence
				for i, f := range sug.Fences {
					if i != drop {
						sub = append(sub, f)
					}
				}
				if p.legal(sub, p.primary) {
					t.Errorf("%s: suggestion %s is not minimal — dropping %s keeps it legal",
						e.Test.Name, sug, sug.Fences[drop])
				}
			}
		}
	}
}

// TestEnumerationDeterminism checks that repair results are identical
// across repeated runs and across worker counts.
func TestEnumerationDeterminism(t *testing.T) {
	for _, name := range []string{"MP (relaxed)", "MP+wmb only"} {
		base := Litmus(suiteTest(t, name), Options{Workers: 1})
		for _, workers := range []int{1, 4} {
			for run := 0; run < 2; run++ {
				got := Litmus(suiteTest(t, name), Options{Workers: workers})
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("%s: result diverged (workers=%d run=%d):\nbase: %s\ngot:  %s",
						name, workers, run, base.Render(), got.Render())
				}
			}
		}
	}
}

// TestBuggySetIsWeakOnly cross-checks the buggy-outcome derivation: every
// buggy outcome must be reachable under the primary model and unreachable
// under the SC baseline.
func TestBuggySetIsWeakOnly(t *testing.T) {
	test := suiteTest(t, "MP (relaxed)")
	p := newProblem(test, litmusLabels(test), Options{}, -1)
	b := p.buggySet(p.primary)
	if len(b) == 0 {
		t.Fatal("relaxed MP has no weak-only outcomes")
	}
	weak := model.RunModel(test, p.primary)
	sc := model.RunModel(test, scBaseline)
	for _, o := range b {
		if !weak.Has(o) {
			t.Errorf("buggy outcome %s not reachable under the primary model", o)
		}
		if sc.Has(o) {
			t.Errorf("buggy outcome %s reachable under SC", o)
		}
	}
}

// TestMetricsAccounting checks the ozz_repair_* counters line up with the
// returned SearchStats.
func TestMetricsAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	m := RegisterMetrics(reg)
	res := Litmus(suiteTest(t, "MP+wmb only"), Options{Metrics: m})
	if got := m.Searches.Value(); got != 1 {
		t.Errorf("searches counter = %d, want 1", got)
	}
	if got := m.CandidatesEnumerated.Value(); got != uint64(res.Stats.Enumerated) {
		t.Errorf("enumerated counter = %d, stats say %d", got, res.Stats.Enumerated)
	}
	if got := m.CandidatesValidated.Value(); got != uint64(res.Stats.Validated) {
		t.Errorf("validated counter = %d, stats say %d", got, res.Stats.Validated)
	}
	rejected := m.CandidatesRejected.With("legality").Value() +
		m.CandidatesRejected.With("closure").Value() +
		m.CandidatesRejected.With("minimality").Value()
	wantRejected := uint64(res.Stats.RejectedLegality + res.Stats.RejectedClosure + res.Stats.RejectedMinimality)
	if rejected != wantRejected {
		t.Errorf("rejected counters = %d, stats say %d", rejected, wantRejected)
	}
	if got := m.SuggestionsTotal.Value(); got != 1 {
		t.Errorf("suggestions counter = %d, want 1", got)
	}
	// A nil Metrics must be a no-op, not a panic.
	if nilRes := Litmus(suiteTest(t, "MP+wmb only"), Options{}); nilRes.Stats.Enumerated != res.Stats.Enumerated {
		t.Errorf("nil-metrics search diverged: %d vs %d candidates", nilRes.Stats.Enumerated, res.Stats.Enumerated)
	}
}
