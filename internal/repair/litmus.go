package repair

import (
	"fmt"

	"ozz/internal/lkmm"
)

// litmusLabels builds per-op display labels for a raw litmus test:
// "P0:W(x1)" for stores, "P1:R(x0)" for loads, "P0:smp_wmb" for barriers.
func litmusLabels(t *lkmm.Test) [][]string {
	labels := make([][]string, len(t.Threads))
	for ti, ops := range t.Threads {
		labels[ti] = make([]string, len(ops))
		for i, op := range ops {
			switch op.Kind {
			case lkmm.OpStore:
				labels[ti][i] = fmt.Sprintf("P%d:W(x%d)", ti, op.Loc)
			case lkmm.OpLoad:
				labels[ti][i] = fmt.Sprintf("P%d:R(x%d)", ti, op.Loc)
			default:
				labels[ti][i] = fmt.Sprintf("P%d:%s", ti, op.Bar)
			}
		}
	}
	return labels
}

// Litmus searches for the minimal fence repair of a raw litmus test: the
// buggy outcomes are the test's weak-only behaviours under the primary
// model, legality runs the reference enumerator, and closure re-checks
// each candidate through the OEMU-driven enumeration (lkmm.RunModel) —
// the same emulator campaigns execute in vivo. Fences may be placed on
// any thread. Repaired tests wider than the OEMU enumerator's 12
// directive-site bound skip the closure layer and validate on legality
// alone.
func Litmus(test *lkmm.Test, opts Options) *Result {
	p := newProblem(test, litmusLabels(test), opts, -1)
	return p.run(test.Name, "litmus")
}
