package repair

import "ozz/internal/obs"

// Metrics holds the ozz_repair_* counter families. A nil *Metrics is
// valid and records nothing, so searches run unchanged without a
// registry.
type Metrics struct {
	// Searches counts repair searches started
	// (ozz_repair_searches_total).
	Searches *obs.Counter
	// CandidatesEnumerated counts candidates generated across all size
	// classes (ozz_repair_candidates_enumerated_total).
	CandidatesEnumerated *obs.Counter
	// CandidatesValidated counts candidates that survived legality,
	// closure, and minimality (ozz_repair_candidates_validated_total).
	CandidatesValidated *obs.Counter
	// CandidatesRejected counts rejected candidates by reason —
	// legality, closure, or minimality
	// (ozz_repair_candidates_rejected_total{reason}).
	CandidatesRejected *obs.CounterVec
	// SuggestionsTotal counts searches that produced at least one
	// validated suggestion (ozz_repair_suggestions_total).
	SuggestionsTotal *obs.Counter
}

// RegisterMetrics registers (or, on a shared registry, re-resolves) the
// ozz_repair_* families and returns the handle bundle.
func RegisterMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Searches: reg.Counter("ozz_repair_searches_total",
			"Fence-repair searches started."),
		CandidatesEnumerated: reg.Counter("ozz_repair_candidates_enumerated_total",
			"Repair candidates enumerated across all size classes."),
		CandidatesValidated: reg.Counter("ozz_repair_candidates_validated_total",
			"Repair candidates that passed legality, closure, and minimality."),
		CandidatesRejected: reg.CounterVec("ozz_repair_candidates_rejected_total",
			"Repair candidates rejected, by check (legality = reference enumerator, closure = live engine/OEMU, minimality = a fence was droppable).",
			"reason"),
		SuggestionsTotal: reg.Counter("ozz_repair_suggestions_total",
			"Repair searches that produced at least one validated suggestion."),
	}
}

func (m *Metrics) search() {
	if m != nil {
		m.Searches.Add(1)
	}
}

func (m *Metrics) enumerated(n int) {
	if m != nil {
		m.CandidatesEnumerated.Add(uint64(n))
	}
}

func (m *Metrics) validated() {
	if m != nil {
		m.CandidatesValidated.Add(1)
	}
}

func (m *Metrics) rejected(reason string) {
	if m != nil {
		m.CandidatesRejected.With(reason).Add(1)
	}
}

func (m *Metrics) suggested() {
	if m != nil {
		m.SuggestionsTotal.Add(1)
	}
}
