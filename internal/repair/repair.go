// Package repair implements automatic fence repair: given a crashing
// out-of-order reproducer (a campaign finding with its scheduling hint and
// profiled access sites, or a litmus shape), it searches the space of
// memory-barrier insertions and access strengthenings for the smallest
// candidate that eliminates the buggy behaviour, validates every candidate
// two ways, and returns a ranked, per-model-annotated fix suggestion —
// "insert smp_wmb between site A and site B".
//
// A candidate is a set of fences. Each fence either inserts an explicit
// barrier (smp_wmb / smp_rmb / smp_mb) between two profiled accesses or
// strengthens an access annotation (READ_ONCE -> smp_load_acquire,
// WRITE_ONCE -> smp_store_release). Candidates are enumerated smallest
// first and validated in a deterministic order, so the first validated
// size class yields the minimal suggestions; within a class, suggestions
// rank by fence weight (weakest barriers first) with per-model breadth as
// the tie-break.
//
// Validation is two-layered (the Property-Driven Fence Insertion recipe
// combined with model-based checking):
//
//   - legality: the repaired program, re-run through the reference
//     enumerator (internal/lkmm/model) under the campaign's compiled
//     memmodel.Table, must no longer reach any buggy outcome. The buggy
//     outcome set is derived without knowing the crash's register values:
//     it is the weak-model outcome set minus the outcomes reachable under
//     a sequentially-consistent baseline table (nothing delayable, nothing
//     versionable) — exactly the behaviours only reordering can produce.
//   - closure: the live engine must agree. For in-vivo findings the
//     reproducer is re-executed under the OOO strategy with the
//     candidate's surviving reorder directives installed, across several
//     seeds and directive subsets; the crash must not reproduce. For
//     litmus inputs the OEMU-driven enumeration (lkmm.RunModel) plays the
//     same role.
//
// Every validated suggestion is additionally probed under every registered
// memory model and annotated per model: "fixes" (legal and closing),
// "unnecessary" (the model cannot reach any buggy outcome even unrepaired
// — e.g. an S-S reordering under TSO's FIFO store buffer), or
// "insufficient" (the buggy outcome survives the candidate).
package repair

import (
	"fmt"
	"sort"
	"strings"

	"ozz/internal/memmodel"
	"ozz/internal/trace"
)

// Fence action verbs (Fence.Action).
const (
	// ActionInsert inserts an explicit barrier between two accesses.
	ActionInsert = "insert"
	// ActionStrengthen upgrades an access annotation (acquire/release).
	ActionStrengthen = "strengthen"
)

// Per-model verdict values (ModelReport.Status).
const (
	// StatusFixes marks a model under which the candidate is both legal
	// (reference enumerator) and closing (live engine / OEMU).
	StatusFixes = "fixes"
	// StatusUnnecessary marks a model that cannot reach any buggy outcome
	// even without the fix (e.g. S-S reordering under TSO).
	StatusUnnecessary = "unnecessary"
	// StatusInsufficient marks a model under which a buggy outcome
	// survives the candidate.
	StatusInsufficient = "insufficient"
)

// Fence is one element of a repair candidate: a barrier insertion between
// two profiled accesses or an access strengthening.
type Fence struct {
	// Action is ActionInsert or ActionStrengthen.
	Action string `json:"action"`
	// Barrier is the inserted barrier's Linux API name (smp_wmb, smp_rmb,
	// smp_mb); empty for strengthenings.
	Barrier string `json:"barrier,omitempty"`
	// After and Before label the accesses surrounding an insertion point
	// (module site names in vivo, thread-op labels for litmus shapes).
	After  string `json:"after,omitempty"`
	Before string `json:"before,omitempty"`
	// Site labels the strengthened access; To is the strengthened form's
	// API name (smp_load_acquire or smp_store_release).
	Site string `json:"site,omitempty"`
	To   string `json:"to,omitempty"`

	// Internal search coordinates on the litmus abstraction.
	thread int
	pos    int // insert: op index the barrier precedes; strengthen: op index
	bar    trace.BarrierKind
	atom   trace.Atomicity
	weight int
}

// String renders the fence as a patch instruction.
func (f Fence) String() string {
	if f.Action == ActionInsert {
		return fmt.Sprintf("insert %s between %s and %s", f.Barrier, f.After, f.Before)
	}
	return fmt.Sprintf("strengthen %s to %s", f.Site, f.To)
}

// ModelReport is one registered memory model's verdict on a suggestion.
type ModelReport struct {
	// Model is the memmodel registry name (lkmm, tso, armv8).
	Model string `json:"model"`
	// Status is StatusFixes, StatusUnnecessary, or StatusInsufficient.
	Status string `json:"status"`
}

// Suggestion is one validated repair candidate with its per-model verdicts.
type Suggestion struct {
	// Fences lists the candidate's fences (all are required; dropping any
	// one re-admits the buggy outcome in the reference model).
	Fences []Fence `json:"fences"`
	// Models holds one verdict per registered memory model, sorted by
	// model name.
	Models []ModelReport `json:"models"`
}

// weight is the candidate's rank key: the sum of its fences' strengths
// (smp_wmb/smp_rmb = 1, strengthenings = 2, smp_mb = 3) — weakest fix
// first.
func (s *Suggestion) weightSum() int {
	n := 0
	for _, f := range s.Fences {
		n += f.weight
	}
	return n
}

// fixBreadth counts the models the suggestion fixes (rank tie-break:
// broader fixes first).
func (s *Suggestion) fixBreadth() int {
	n := 0
	for _, m := range s.Models {
		if m.Status == StatusFixes {
			n++
		}
	}
	return n
}

// String renders the suggestion as a one-line patch instruction with the
// per-model verdicts grouped by status:
//
//	insert smp_wmb between A and B [fixes: armv8, lkmm; unnecessary: tso]
func (s *Suggestion) String() string {
	parts := make([]string, len(s.Fences))
	for i, f := range s.Fences {
		parts[i] = f.String()
	}
	var groups []string
	for _, st := range []string{StatusFixes, StatusUnnecessary, StatusInsufficient} {
		var names []string
		for _, m := range s.Models {
			if m.Status == st {
				names = append(names, m.Model)
			}
		}
		if len(names) > 0 {
			groups = append(groups, fmt.Sprintf("%s: %s", st, strings.Join(names, ", ")))
		}
	}
	out := strings.Join(parts, " + ")
	if len(groups) > 0 {
		out += " [" + strings.Join(groups, "; ") + "]"
	}
	return out
}

// SearchStats counts the search's candidate dispositions.
type SearchStats struct {
	// Enumerated counts candidates generated across all searched size
	// classes.
	Enumerated int `json:"enumerated"`
	// Validated counts candidates that passed legality, closure, and
	// minimality — the suggestions.
	Validated int `json:"validated"`
	// RejectedLegality counts candidates the reference enumerator
	// rejected (a buggy outcome stayed reachable).
	RejectedLegality int `json:"rejected_legality"`
	// RejectedClosure counts legal candidates the live engine rejected
	// (the crash still reproduced with the candidate installed).
	RejectedClosure int `json:"rejected_closure"`
	// RejectedMinimality counts candidates with a strictly smaller legal
	// sub-candidate (a fence that could be dropped).
	RejectedMinimality int `json:"rejected_minimality"`
}

// Result is the outcome of one repair search, ranked best-first.
type Result struct {
	// Target names the repaired finding: the crash title in vivo, the
	// litmus shape name otherwise.
	Target string `json:"target"`
	// Kind is the reordering type ("S-S", "S-L", "L-L") for in-vivo
	// findings, "litmus" for litmus shapes.
	Kind string `json:"kind"`
	// Model is the primary memory model the search validated against.
	Model string `json:"model"`
	// BuggyOutcomes lists the weak-only outcomes of the unrepaired
	// abstraction under the primary model — the behaviours every
	// suggestion forbids. Empty means the model cannot reach the bug at
	// all and there is nothing to repair.
	BuggyOutcomes []string `json:"buggy_outcomes"`
	// Suggestions holds the validated candidates of the smallest
	// successful size class, ranked weakest-first.
	Suggestions []*Suggestion `json:"suggestions"`
	// Stats counts candidate dispositions.
	Stats SearchStats `json:"stats"`
}

// Lines renders the ranked suggestions as one-line patch instructions —
// the form report.Report.SuggestedFix carries.
func (r *Result) Lines() []string {
	out := make([]string, len(r.Suggestions))
	for i, s := range r.Suggestions {
		out[i] = s.String()
	}
	return out
}

// Render formats the whole search result as an indented text block for
// CLIs (cmd/ozz-repair, cmd/ozz-repro -repair).
func (r *Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "repair: %s (%s, model %s)\n", r.Target, r.Kind, r.Model)
	fmt.Fprintf(&sb, "  buggy outcomes: %s\n", strings.Join(r.BuggyOutcomes, " | "))
	fmt.Fprintf(&sb, "  candidates: %d enumerated, %d validated (%d illegal, %d unclosed, %d non-minimal)\n",
		r.Stats.Enumerated, r.Stats.Validated,
		r.Stats.RejectedLegality, r.Stats.RejectedClosure, r.Stats.RejectedMinimality)
	if len(r.BuggyOutcomes) == 0 {
		fmt.Fprintf(&sb, "  nothing to repair: the model reaches no reordering-only outcome\n")
		return sb.String()
	}
	if len(r.Suggestions) == 0 {
		fmt.Fprintf(&sb, "  no validated repair within the candidate bound\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "  suggested fixes:\n")
	for i, s := range r.Suggestions {
		fmt.Fprintf(&sb, "    %d. %s\n", i+1, s.String())
	}
	return sb.String()
}

// rankSuggestions orders validated candidates best-first: fewest fences,
// then lowest total weight (weakest barriers), then broadest per-model fix
// coverage; enumeration order breaks remaining ties deterministically.
func rankSuggestions(sugs []*Suggestion) {
	sort.SliceStable(sugs, func(a, b int) bool {
		if d := len(sugs[a].Fences) - len(sugs[b].Fences); d != 0 {
			return d < 0
		}
		if d := sugs[a].weightSum() - sugs[b].weightSum(); d != 0 {
			return d < 0
		}
		return sugs[a].fixBreadth() > sugs[b].fixBreadth()
	})
}

// fenceWeight maps a fence to its rank weight: weakest first.
func insertWeight(bk trace.BarrierKind) int {
	if bk == trace.BarrierFull {
		return 3
	}
	return 1
}

// scBaseline is the sequentially-consistent reference table used to derive
// buggy outcome sets: every barrier orders everything, no store is
// delayable, no load is versionable. It is compiled locally and never
// registered — campaigns cannot select it.
var scBaseline = memmodel.MustCompile(scDef())

func scDef() memmodel.Def {
	d := memmodel.Def{
		Name:     "sc-baseline",
		Doc:      "sequential consistency: the no-reordering baseline repair validates against",
		Barriers: map[trace.BarrierKind]memmodel.BarrierSem{},
		Stores:   map[trace.Atomicity]memmodel.StoreSem{},
		Loads:    map[trace.Atomicity]memmodel.LoadSem{},
		PPO:      memmodel.PPO{StoreStore: true},
	}
	for _, k := range trace.AllBarrierKinds() {
		d.Barriers[k] = memmodel.BarrierSem{OrdersStores: true, OrdersLoads: true}
	}
	for _, a := range trace.AllAtomicities() {
		d.Stores[a] = memmodel.StoreSem{}
		d.Loads[a] = memmodel.LoadSem{LoadBarrier: true}
	}
	return d
}
