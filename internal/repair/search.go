package repair

import (
	"sort"
	"sync"
	"sync/atomic"

	"ozz/internal/lkmm"
	"ozz/internal/lkmm/model"
	"ozz/internal/memmodel"
	"ozz/internal/trace"
)

// Options configures a repair search.
type Options struct {
	// Model is the primary memory model candidates must be legal and
	// closing under; nil selects the registered "lkmm" table.
	Model *memmodel.Table
	// MaxFences bounds the candidate size (default 2). The search stops
	// at the first size class that validates at least one candidate, so
	// suggestions are always minimal-size.
	MaxFences int
	// Workers is the number of goroutines validating candidates of one
	// size class (default 1). Results are independent of the worker
	// count: verdicts are collected by candidate index and folded into
	// stats in enumeration order.
	Workers int
	// Seeds is the number of engine seeds each in-vivo closure probe
	// re-executes the reproducer under (default 3).
	Seeds int
	// Metrics, when non-nil, receives ozz_repair_* counter increments.
	Metrics *Metrics
}

func (o Options) model() *memmodel.Table {
	if o.Model != nil {
		return o.Model
	}
	return memmodel.LKMM
}

func (o Options) maxFences() int {
	if o.MaxFences <= 0 {
		return 2
	}
	return o.MaxFences
}

func (o Options) seeds() int {
	if o.Seeds <= 0 {
		return 3
	}
	return o.Seeds
}

// problem is one repair search over a litmus abstraction of the racing
// pair: the test, per-op display labels, the primary model, and a closure
// oracle (nil means OEMU litmus enumeration).
type problem struct {
	test    *lkmm.Test
	labels  [][]string
	primary *memmodel.Table
	opts    Options
	// restrict limits fence placement to one thread (the reorderer's
	// abstraction, in vivo); -1 allows every thread (litmus mode).
	restrict int
	// closure overrides the closure oracle; nil falls back to the
	// OEMU-driven litmus enumeration (lkmm.RunModel).
	closure func(fences []Fence, mm *memmodel.Table) bool

	mu    sync.Mutex
	buggy map[string][]lkmm.Outcome
	sc    map[lkmm.Outcome]bool
}

func newProblem(test *lkmm.Test, labels [][]string, opts Options, restrict int) *problem {
	return &problem{
		test:     test,
		labels:   labels,
		primary:  opts.model(),
		opts:     opts,
		restrict: restrict,
		buggy:    map[string][]lkmm.Outcome{},
	}
}

// buggySet returns the weak-only outcomes of the unrepaired test under mm:
// reference-enumerator outcomes minus the SC baseline's. These are the
// behaviours a repair must forbid.
func (p *problem) buggySet(mm *memmodel.Table) []lkmm.Outcome {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b, ok := p.buggy[mm.Name()]; ok {
		return b
	}
	if p.sc == nil {
		p.sc = model.RunModel(p.test, scBaseline).Outcomes
	}
	weak := model.RunModel(p.test, mm)
	var b []lkmm.Outcome
	for _, s := range weak.Sorted() {
		if o := lkmm.Outcome(s); !p.sc[o] {
			b = append(b, o)
		}
	}
	p.buggy[mm.Name()] = b
	return b
}

// singleFences enumerates every single-fence candidate in a fixed order:
// barrier insertions at every gap of every (allowed) thread, then
// annotation strengthenings, sorted by (weight, thread, position, kind) so
// the combination generator — and therefore the whole search — is
// deterministic across runs and worker counts.
func (p *problem) singleFences() []Fence {
	var out []Fence
	for t, ops := range p.test.Threads {
		if p.restrict >= 0 && t != p.restrict {
			continue
		}
		for g := 1; g < len(ops); g++ {
			for _, bk := range []trace.BarrierKind{trace.BarrierStore, trace.BarrierLoad, trace.BarrierFull} {
				// Re-inserting a barrier right next to an identical one
				// is a no-op candidate; skip it.
				if (ops[g-1].Kind == lkmm.OpBarrier && ops[g-1].Bar == bk) ||
					(ops[g].Kind == lkmm.OpBarrier && ops[g].Bar == bk) {
					continue
				}
				out = append(out, Fence{
					Action:  ActionInsert,
					Barrier: bk.String(),
					After:   p.labels[t][g-1],
					Before:  p.labels[t][g],
					thread:  t,
					pos:     g,
					bar:     bk,
					weight:  insertWeight(bk),
				})
			}
		}
		for i, op := range ops {
			switch {
			case op.Kind == lkmm.OpStore && op.Atomic != trace.AtomicRelease:
				out = append(out, Fence{
					Action: ActionStrengthen,
					Site:   p.labels[t][i],
					To:     trace.BarrierRelease.String(),
					thread: t,
					pos:    i,
					atom:   trace.AtomicRelease,
					weight: 2,
				})
			case op.Kind == lkmm.OpLoad && op.Atomic != trace.AtomicAcquire:
				out = append(out, Fence{
					Action: ActionStrengthen,
					Site:   p.labels[t][i],
					To:     trace.BarrierAcquire.String(),
					thread: t,
					pos:    i,
					atom:   trace.AtomicAcquire,
					weight: 2,
				})
			}
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].weight != out[b].weight {
			return out[a].weight < out[b].weight
		}
		if out[a].thread != out[b].thread {
			return out[a].thread < out[b].thread
		}
		if out[a].pos != out[b].pos {
			return out[a].pos < out[b].pos
		}
		return out[a].Action < out[b].Action
	})
	return out
}

// combinations generates every size-k subset of singles in lexicographic
// index order.
func combinations(singles []Fence, k int) [][]Fence {
	var out [][]Fence
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			c := make([]Fence, k)
			for i, j := range idx {
				c[i] = singles[j]
			}
			out = append(out, c)
			return
		}
		for j := start; j <= len(singles)-(k-depth); j++ {
			idx[depth] = j
			rec(j+1, depth+1)
		}
	}
	rec(0, 0)
	return out
}

// applyFences builds the repaired litmus test: barriers spliced into their
// gaps, strengthened ops re-annotated.
func applyFences(t *lkmm.Test, fences []Fence) *lkmm.Test {
	nt := &lkmm.Test{
		Name:    t.Name + "+fix",
		NumLocs: t.NumLocs,
		NumRegs: t.NumRegs,
	}
	for ti, ops := range t.Threads {
		inserts := map[int][]trace.BarrierKind{}
		strengthen := map[int]trace.Atomicity{}
		for _, f := range fences {
			if f.thread != ti {
				continue
			}
			if f.Action == ActionInsert {
				inserts[f.pos] = append(inserts[f.pos], f.bar)
			} else {
				strengthen[f.pos] = f.atom
			}
		}
		for _, ks := range inserts {
			sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
		}
		nops := make([]lkmm.Op, 0, len(ops)+len(fences))
		for i := 0; i <= len(ops); i++ {
			for _, bk := range inserts[i] {
				nops = append(nops, lkmm.Op{Kind: lkmm.OpBarrier, Bar: bk})
			}
			if i < len(ops) {
				op := ops[i]
				if a, ok := strengthen[i]; ok {
					op.Atomic = a
				}
				nops = append(nops, op)
			}
		}
		nt.Threads = append(nt.Threads, nops)
	}
	return nt
}

// legal reports whether the repaired test forbids every buggy outcome
// under mm, per the reference enumerator.
func (p *problem) legal(fences []Fence, mm *memmodel.Table) bool {
	res := model.RunModel(applyFences(p.test, fences), mm)
	for _, o := range p.buggySet(mm) {
		if res.Has(o) {
			return false
		}
	}
	return true
}

// maxDirectiveSites is the reference OEMU enumerator's directive-site
// bound (lkmm.RunModel panics above it); wider repaired tests skip the
// OEMU closure check and rely on legality alone.
const maxDirectiveSites = 12

// closes reports whether the candidate closes the bug under mm in the
// live layer: the injected in-vivo oracle when present, otherwise the
// OEMU-driven litmus enumeration of the repaired test.
func (p *problem) closes(fences []Fence, mm *memmodel.Table) bool {
	if p.closure != nil {
		return p.closure(fences, mm)
	}
	repaired := applyFences(p.test, fences)
	sites := 0
	for _, ops := range repaired.Threads {
		for _, op := range ops {
			if op.Kind == lkmm.OpStore || op.Kind == lkmm.OpLoad {
				sites++
			}
		}
	}
	if sites > maxDirectiveSites {
		return true
	}
	res := lkmm.RunModel(repaired, mm)
	for _, o := range p.buggySet(mm) {
		if res.Has(o) {
			return false
		}
	}
	return true
}

// Candidate verdict codes.
const (
	vOK = iota
	vIllegal
	vUnclosed
	vNonMinimal
)

type verdict struct {
	status int
	models []ModelReport
}

// validate runs the full check chain on one candidate: minimality (every
// strict sub-candidate must be illegal under the primary model), legality,
// closure, and finally the per-registered-model probe.
func (p *problem) validate(fences []Fence) verdict {
	if len(fences) > 1 {
		sub := make([]Fence, 0, len(fences)-1)
		for drop := range fences {
			sub = sub[:0]
			for i, f := range fences {
				if i != drop {
					sub = append(sub, f)
				}
			}
			if p.legal(sub, p.primary) {
				return verdict{status: vNonMinimal}
			}
		}
	}
	if !p.legal(fences, p.primary) {
		return verdict{status: vIllegal}
	}
	if !p.closes(fences, p.primary) {
		return verdict{status: vUnclosed}
	}
	return verdict{status: vOK, models: p.modelReports(fences)}
}

// modelReports probes the validated candidate under every registered
// memory model.
func (p *problem) modelReports(fences []Fence) []ModelReport {
	var out []ModelReport
	for _, mm := range memmodel.All() {
		status := StatusInsufficient
		switch {
		case len(p.buggySet(mm)) == 0:
			status = StatusUnnecessary
		case p.legal(fences, mm) && p.closes(fences, mm):
			status = StatusFixes
		}
		out = append(out, ModelReport{Model: mm.Name(), Status: status})
	}
	return out
}

// validateAll validates one size class, optionally in parallel. Verdicts
// come back indexed by candidate, so downstream accounting is independent
// of scheduling.
func (p *problem) validateAll(cands [][]Fence) []verdict {
	out := make([]verdict, len(cands))
	workers := p.opts.Workers
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		for i, c := range cands {
			out[i] = p.validate(c)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cands) {
					return
				}
				out[i] = p.validate(cands[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// run executes the ascending-size search and assembles the ranked Result.
func (p *problem) run(target, kind string) *Result {
	m := p.opts.Metrics
	m.search()
	res := &Result{Target: target, Kind: kind, Model: p.primary.Name()}
	for _, o := range p.buggySet(p.primary) {
		res.BuggyOutcomes = append(res.BuggyOutcomes, string(o))
	}
	if len(res.BuggyOutcomes) == 0 {
		return res
	}
	singles := p.singleFences()
	for size := 1; size <= p.opts.maxFences() && len(res.Suggestions) == 0; size++ {
		cands := combinations(singles, size)
		if len(cands) == 0 {
			break
		}
		res.Stats.Enumerated += len(cands)
		m.enumerated(len(cands))
		for i, v := range p.validateAll(cands) {
			switch v.status {
			case vOK:
				res.Stats.Validated++
				m.validated()
				res.Suggestions = append(res.Suggestions, &Suggestion{Fences: cands[i], Models: v.models})
			case vIllegal:
				res.Stats.RejectedLegality++
				m.rejected("legality")
			case vUnclosed:
				res.Stats.RejectedClosure++
				m.rejected("closure")
			case vNonMinimal:
				res.Stats.RejectedMinimality++
				m.rejected("minimality")
			}
		}
	}
	rankSuggestions(res.Suggestions)
	if len(res.Suggestions) > 0 {
		m.suggested()
	}
	return res
}
