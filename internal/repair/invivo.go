package repair

import (
	"ozz/internal/engine"
	"ozz/internal/hints"
	"ozz/internal/lkmm"
	"ozz/internal/memmodel"
	"ozz/internal/modules"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// Executor is the slice of the campaign environment the in-vivo closure
// check needs: pair runs under the campaign's model and under an explicit
// model table. core.Env satisfies it directly (its MTIOpts/MTIResult are
// aliases of the engine types).
type Executor interface {
	// RunMTI executes the pair under the campaign's configured model.
	RunMTI(o engine.Request) *engine.Result
	// RunMTIUnder executes the pair under an explicit model table.
	RunMTIUnder(o engine.Request, mm *memmodel.Table) *engine.Result
}

// InVivoInput is a crashing campaign finding handed to the repair search.
type InVivoInput struct {
	// Prog is the reproducer program.
	Prog *syzlang.Program
	// I and J index the racing call pair (as executed, I < J).
	I, J int
	// Hint is the scheduling hint that produced the crash: its Sched /
	// SchedOcc locate the hypothetical barrier, its Reorder sites bound
	// the candidate space.
	Hint *hints.Hint
	// Events holds the sequential profile of every call (STI
	// CallEvents); the racing pair's entries seed the litmus
	// abstraction.
	Events [][]trace.Event
	// Title is the crash (or soft-oracle) title closure must not
	// reproduce.
	Title string
	// Soft marks Title as a soft-oracle report rather than a kernel
	// crash.
	Soft bool
}

// abstraction is the litmus view of the racing pair: thread 0 is the
// reorderer's profiled window around the scheduling point, thread 1 the
// observer's accesses to the shared locations.
type abstraction struct {
	test   *lkmm.Test
	labels [][]string
	// siteOf maps thread-0 op index to its profiled instruction site (0
	// for inserted barrier ops).
	siteOf []trace.InstrID
	// schedOp is the thread-0 op index of the scheduling-point access.
	schedOp int
}

// maxObserverOps caps the observer thread's abstraction width so the
// reference enumeration stays tractable on access-heavy reproducers.
const maxObserverOps = 8

// abstract builds the litmus abstraction of the racing pair, or nil when
// the hint's scheduling point or reorder sites cannot be located in the
// profile (nothing to search over).
func abstract(in InVivoInput) *abstraction {
	h := in.Hint
	ri, oi := in.I, in.J
	if h.Reorderer == 1 {
		ri, oi = in.J, in.I
	}
	if ri >= len(in.Events) || oi >= len(in.Events) {
		return nil
	}
	rev, oev := in.Events[ri], in.Events[oi]

	// Locate the scheduling-point access the way the engine's breakpoint
	// does: the SchedOcc'th dynamic occurrence of the site (non-NoYield
	// occurrences counted) with the matching access kind.
	schedIdx := -1
	occ := 0
	for idx, e := range rev {
		if e.Barrier || e.Acc.Instr != h.Sched || e.Acc.Kind != h.SchedKind {
			continue
		}
		if !e.Acc.NoYield {
			occ++
		}
		if occ == h.SchedOcc {
			schedIdx = idx
			break
		}
	}
	if schedIdx < 0 {
		return nil
	}
	inReorder := map[trace.InstrID]bool{}
	for _, s := range h.Reorder {
		inReorder[s] = true
	}

	// Pick the representative event of each reorder site: for a store
	// test the last matching store before the scheduling point (the one
	// OEMU leaves delayed when the reorderer yields), for a load test
	// the first matching load after it (the one versioned earliest).
	chosen := map[int]bool{}
	picked := map[trace.InstrID]int{}
	if h.Test == hints.StoreBarrierTest {
		for idx := 0; idx < schedIdx; idx++ {
			e := rev[idx]
			if !e.Barrier && e.Acc.Kind == trace.Store && inReorder[e.Acc.Instr] {
				picked[e.Acc.Instr] = idx
			}
		}
	} else {
		for idx := schedIdx + 1; idx < len(rev); idx++ {
			e := rev[idx]
			if !e.Barrier && e.Acc.Kind == trace.Load && inReorder[e.Acc.Instr] {
				if _, ok := picked[e.Acc.Instr]; !ok {
					picked[e.Acc.Instr] = idx
				}
			}
		}
	}
	if len(picked) == 0 {
		return nil
	}
	lo, hi := schedIdx, schedIdx
	for _, idx := range picked {
		if idx < lo {
			lo = idx
		}
		if idx > hi {
			hi = idx
		}
	}
	for _, idx := range picked {
		chosen[idx] = true
	}
	chosen[schedIdx] = true

	a := &abstraction{test: &lkmm.Test{Name: in.Title}}
	locOf := map[trace.Addr]int{}
	valNext := map[int]uint64{}
	loc := func(addr trace.Addr) int {
		if l, ok := locOf[addr]; ok {
			return l
		}
		l := len(locOf)
		locOf[addr] = l
		return l
	}
	regs := 0
	var t0 []lkmm.Op
	var l0 []string
	for idx := lo; idx <= hi; idx++ {
		e := rev[idx]
		if e.Barrier {
			// Explicit barriers in the window stay; implicit ones are an
			// annotated access's side effect and would double-count.
			if !e.Bar.Implicit {
				t0 = append(t0, lkmm.Op{Kind: lkmm.OpBarrier, Bar: e.Bar.Kind})
				l0 = append(l0, modules.SiteName(e.Bar.Instr))
				a.siteOf = append(a.siteOf, 0)
			}
			continue
		}
		if !chosen[idx] {
			continue
		}
		l := loc(e.Acc.Addr)
		op := lkmm.Op{Atomic: e.Acc.Atomic}
		if e.Acc.Kind == trace.Store {
			valNext[l]++
			op.Kind, op.Loc, op.Val = lkmm.OpStore, l, valNext[l]
		} else {
			op.Kind, op.Loc, op.Reg = lkmm.OpLoad, l, regs
			regs++
		}
		if idx == schedIdx {
			a.schedOp = len(t0)
		}
		t0 = append(t0, op)
		l0 = append(l0, modules.SiteName(e.Acc.Instr))
		a.siteOf = append(a.siteOf, e.Acc.Instr)
	}

	// Observer thread: its first access per site to the shared
	// locations, plus explicit barriers inside the retained span. Loads
	// become outcome registers only in a store test — there the
	// observer's reads witness the reordering; in a load test the
	// reorderer's own loads do, and observer loads would pollute the
	// outcome space with behaviours no reorderer-side fence can forbid.
	keepLoads := h.Test == hints.StoreBarrierTest
	type kept struct {
		e   trace.Event
		idx int
	}
	var keep []kept
	seen := map[trace.InstrID]bool{}
	for idx, e := range oev {
		if e.Barrier {
			continue
		}
		if _, shared := locOf[e.Acc.Addr]; !shared || seen[e.Acc.Instr] {
			continue
		}
		if e.Acc.Kind == trace.Load && !keepLoads {
			continue
		}
		seen[e.Acc.Instr] = true
		keep = append(keep, kept{e, idx})
		if len(keep) >= maxObserverOps {
			break
		}
	}
	if len(keep) > 0 {
		first, last := keep[0].idx, keep[len(keep)-1].idx
		var t1 []lkmm.Op
		var l1 []string
		ki := 0
		for idx := first; idx <= last; idx++ {
			e := oev[idx]
			if e.Barrier {
				if !e.Bar.Implicit {
					t1 = append(t1, lkmm.Op{Kind: lkmm.OpBarrier, Bar: e.Bar.Kind})
					l1 = append(l1, modules.SiteName(e.Bar.Instr))
				}
				continue
			}
			if ki < len(keep) && keep[ki].idx == idx {
				ki++
				l := locOf[e.Acc.Addr]
				op := lkmm.Op{Atomic: e.Acc.Atomic}
				if e.Acc.Kind == trace.Store {
					valNext[l]++
					op.Kind, op.Loc, op.Val = lkmm.OpStore, l, valNext[l]
				} else {
					op.Kind, op.Loc, op.Reg = lkmm.OpLoad, l, regs
					regs++
				}
				t1 = append(t1, op)
				l1 = append(l1, modules.SiteName(e.Acc.Instr))
			}
		}
		a.test.Threads = [][]lkmm.Op{t0, t1}
		a.labels = [][]string{l0, l1}
	} else {
		a.test.Threads = [][]lkmm.Op{t0}
		a.labels = [][]string{l0}
	}
	a.test.NumLocs = len(locOf)
	a.test.NumRegs = regs
	return a
}

// remainingSites computes which of the hint's reorder sites are still
// reorderable once the candidate's fences take effect under mm, by
// replaying each fence's ordering semantics over the thread-0 abstraction.
func (a *abstraction) remainingSites(h *hints.Hint, fences []Fence, mm *memmodel.Table) []trace.InstrID {
	inReorder := map[trace.InstrID]bool{}
	for _, s := range h.Reorder {
		inReorder[s] = true
	}
	// alive holds the thread-0 op indexes whose sites remain directive
	// targets.
	alive := map[int]bool{}
	for i, site := range a.siteOf {
		if site != 0 && i != a.schedOp && inReorder[site] {
			alive[i] = true
		}
	}
	for _, f := range fences {
		if f.thread != 0 {
			continue
		}
		if h.Test == hints.StoreBarrierTest {
			switch {
			case f.Action == ActionInsert && mm.OrdersStores(f.bar):
				// Stores before the barrier can no longer be delayed
				// past it (and past the scheduling point beyond it).
				for i := range alive {
					if i < f.pos {
						delete(alive, i)
					}
				}
			case f.Action == ActionStrengthen && f.atom == trace.AtomicRelease:
				if mm.Release(trace.AtomicRelease) {
					// A release store drains everything before it and
					// commits in place.
					for i := range alive {
						if i <= f.pos {
							delete(alive, i)
						}
					}
				} else if !mm.Delayable(trace.AtomicRelease) {
					delete(alive, f.pos)
				}
			}
		} else {
			switch {
			case f.Action == ActionInsert && mm.OrdersLoads(f.bar):
				// Loads after the barrier can no longer read stale
				// values from before it.
				for i := range alive {
					if i >= f.pos {
						delete(alive, i)
					}
				}
			case f.Action == ActionStrengthen && f.atom == trace.AtomicAcquire:
				if !mm.Versionable(trace.AtomicAcquire) {
					delete(alive, f.pos)
				}
				if mm.LoadBarrier(trace.AtomicAcquire) {
					for i := range alive {
						if i > f.pos {
							delete(alive, i)
						}
					}
				}
			}
		}
	}
	// Emit surviving sites in the hint's original order (deduplicated —
	// several ops can share a site only if profiling repeated it, and
	// Reorder itself is site-unique).
	aliveSite := map[trace.InstrID]bool{}
	for i := range alive {
		aliveSite[a.siteOf[i]] = true
	}
	var out []trace.InstrID
	for _, s := range h.Reorder {
		if aliveSite[s] {
			out = append(out, s)
		}
	}
	return out
}

// siteSubsets enumerates the directive-site subsets a closure probe
// re-runs: every non-empty subset when the set is small, otherwise the
// full set plus each singleton. An empty remainder yields one nil entry —
// the triage-style NoReorder run.
func siteSubsets(sites []trace.InstrID) [][]trace.InstrID {
	if len(sites) == 0 {
		return [][]trace.InstrID{nil}
	}
	if len(sites) <= 3 {
		var out [][]trace.InstrID
		for mask := 1; mask < 1<<len(sites); mask++ {
			var sub []trace.InstrID
			for i, s := range sites {
				if mask&(1<<i) != 0 {
					sub = append(sub, s)
				}
			}
			out = append(out, sub)
		}
		return out
	}
	out := [][]trace.InstrID{sites}
	for _, s := range sites {
		out = append(out, []trace.InstrID{s})
	}
	return out
}

// closes is the in-vivo closure oracle: re-execute the reproducer with
// the candidate's surviving reorder directives installed, across seeds
// and directive subsets; the crash must never reproduce.
func (a *abstraction) closes(in InVivoInput, ex Executor, primary *memmodel.Table, seeds int, fences []Fence, mm *memmodel.Table) bool {
	remaining := a.remainingSites(in.Hint, fences, mm)
	for seed := 0; seed < seeds; seed++ {
		for _, sub := range siteSubsets(remaining) {
			req := engine.Request{
				Prog: in.Prog,
				I:    in.I,
				J:    in.J,
				Hint: in.Hint.WithReorder(sub),
				Seed: int64(seed),
			}
			if len(sub) == 0 {
				// Nothing left to reorder: the triage-style schedule-only
				// re-run must stay clean too.
				req.Hint = in.Hint
				req.NoReorder = true
			}
			var res *engine.Result
			if mm == primary {
				res = ex.RunMTI(req)
			} else {
				res = ex.RunMTIUnder(req, mm)
			}
			if reproduced(res, in) {
				return false
			}
		}
	}
	return true
}

// reproduced reports whether an engine result re-triggered the finding.
func reproduced(res *engine.Result, in InVivoInput) bool {
	if res == nil {
		return false
	}
	if in.Soft {
		for _, s := range res.Soft {
			if s == in.Title {
				return true
			}
		}
		return false
	}
	return res.Crash != nil && res.Crash.Title == in.Title
}

// InVivo searches for the minimal fence repair of a crashing campaign
// finding. The racing pair is abstracted into a litmus test (thread 0 the
// reorderer's window around the scheduling point, thread 1 the observer's
// shared accesses); legality runs the reference enumerator over it, and
// closure re-executes the real reproducer through the engine with the
// candidate's surviving directives installed. Fences are placed only on
// the reorderer's side — the hypothetical-barrier location the hint
// names.
func InVivo(in InVivoInput, ex Executor, opts Options) *Result {
	kind := in.Hint.Type()
	a := abstract(in)
	if a == nil {
		opts.Metrics.search()
		return &Result{Target: in.Title, Kind: kind, Model: opts.model().Name()}
	}
	p := newProblem(a.test, a.labels, opts, 0)
	p.closure = func(fences []Fence, mm *memmodel.Table) bool {
		return a.closes(in, ex, p.primary, opts.seeds(), fences, mm)
	}
	return p.run(in.Title, kind)
}
