package engine

import (
	"ozz/internal/memmodel"
	"ozz/internal/modules"
)

// DefaultNrCPU is the simulated CPU count every path defaults to — the
// paper's 4-vCPU test VMs.
const DefaultNrCPU = 4

// Config describes the execution environment of one run: which modules
// are built over the kernel, which bug switches (missing barriers) are
// active, and which kernel features are enabled. A Config is passed by
// value per Run call, so concurrent runs with different configurations
// never race on shared state.
type Config struct {
	// Modules lists the loaded modules (empty = all registered).
	Modules []string
	// Bugs holds the active bug switches (missing barriers).
	Bugs modules.BugSet
	// NrCPU is the simulated CPU count; 0 selects DefaultNrCPU.
	NrCPU int
	// Instrumented selects the OEMU path: every access is a callback
	// (profiling, reordering directives, scheduling points). False is a
	// plain kernel — the syzkaller baseline's configuration.
	Instrumented bool
	// Sanitizers keeps KASAN/KCov active when Instrumented is false (a
	// syzkaller kernel still has sanitizers). Ignored when Instrumented.
	Sanitizers bool
	// InterruptOnSwitch injects an interrupt on the reorderer's CPU at
	// the scheduling point of every pair run. Interrupts drain the
	// virtual store buffer (§3.1), so store-barrier tests become vacuous
	// — the ablation demonstrating why OZZ's custom scheduler must
	// suspend vCPUs WITHOUT delivering interrupts.
	InterruptOnSwitch bool
	// Model is the memory model OEMU emulates for the run; nil selects
	// memmodel.LKMM (the paper's default). Directive plans are
	// model-specific (the engine's plan cache keys on the model name),
	// and hint generation for the run's profiles must use the same model
	// (hints.CalculateModel).
	Model *memmodel.Table
}

// normalize resolves defaulted fields. It is the single home of the
// "NrCPU == 0 means 4" rule that used to be duplicated across every
// execution path.
func (c *Config) normalize() {
	if c.NrCPU == 0 {
		c.NrCPU = DefaultNrCPU
	}
	if c.Model == nil {
		c.Model = memmodel.LKMM
	}
}
