package engine

import (
	"strings"
	"sync"

	"ozz/internal/hints"
	"ozz/internal/memmodel"
	"ozz/internal/obs"
	"ozz/internal/oemu"
	"ozz/internal/syzlang"
)

// planCacheCap bounds the number of cached directive plans. Like the STI
// result cache, the cache is dropped wholesale (epoch clearing) at the
// cap: O(1) eviction with no iteration-order nondeterminism.
const planCacheCap = 4096

// planCache memoizes precompiled OEMU directive plans keyed by the
// program's canonical serialization plus the reorder spec (test kind and
// site list). Hint generation emits the same (program, sites) pair for
// every MTI schedule derived from one STI profile, and triage re-runs the
// same MTI repeatedly — so compiling the sorted site slices once and
// sharing the immutable *Plan removes per-run directive-set construction
// from the hot loop.
//
// Safe for concurrent use. Cached plans are shared and immutable by
// construction (oemu.Plan is read-only after CompilePlan; threads hold it
// by reference and never write through it).
type planCache struct {
	mu sync.RWMutex
	m  map[string]*oemu.Plan

	// hits/misses are the engine registry's ozz_plan_cache_lookups_total
	// children, wired at engine construction.
	hits, misses *obs.Counter
}

// plan returns the compiled plan for the spec under the given memory
// model, compiling and caching it on first sight. Plans are
// model-specific (CompilePlanModel drops sites the model makes inert),
// so the key includes the model name — one spec run under two models
// yields two cache entries. Two workers racing one uncached spec both
// compile (both count a miss); the plans are equivalent, so
// last-write-wins is fine.
func (c *planCache) plan(prog *syzlang.Program, spec *ReorderSpec, mm *memmodel.Table) *oemu.Plan {
	key := planKey(prog, spec, mm)
	c.mu.RLock()
	p := c.m[key]
	c.mu.RUnlock()
	if p != nil {
		c.hits.Inc()
		return p
	}
	c.misses.Inc()
	p = compileSpec(spec, mm)
	c.mu.Lock()
	if c.m == nil || len(c.m) >= planCacheCap {
		c.m = make(map[string]*oemu.Plan)
	}
	c.m[key] = p
	c.mu.Unlock()
	return p
}

// compileSpec maps the spec's test kind onto the directive kind of Table 2:
// a store-barrier test delays the stores at the sites, a load-barrier test
// makes the loads at the sites read old values.
func compileSpec(spec *ReorderSpec, mm *memmodel.Table) *oemu.Plan {
	switch spec.Test {
	case hints.StoreBarrierTest:
		return oemu.CompilePlanModel(spec.Sites, nil, mm)
	case hints.LoadBarrierTest:
		return oemu.CompilePlanModel(nil, spec.Sites, mm)
	}
	return oemu.CompilePlanModel(nil, nil, mm)
}

// planKey builds the cache key: program serialization, model name, test
// kind byte, then the site list little-endian. Sites come straight from
// the hint (already deterministic order for a given hint), so
// byte-identical specs collide exactly.
func planKey(prog *syzlang.Program, spec *ReorderSpec, mm *memmodel.Table) string {
	var sb strings.Builder
	pk := prog.Key()
	mn := mm.Name()
	sb.Grow(len(pk) + len(mn) + 3 + 8*len(spec.Sites))
	sb.WriteString(pk)
	sb.WriteByte(0)
	sb.WriteString(mn)
	sb.WriteByte(0)
	sb.WriteByte(byte(spec.Test))
	for _, s := range spec.Sites {
		v := uint64(s)
		for i := 0; i < 8; i++ {
			sb.WriteByte(byte(v >> (8 * i)))
		}
	}
	return sb.String()
}

// PlanCacheCounters reports directive-plan cache hits and misses (same
// racing caveat as CacheCounters).
func (e *Engine) PlanCacheCounters() (hits, misses uint64) {
	return e.plans.hits.Value(), e.plans.misses.Value()
}
