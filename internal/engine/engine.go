// Package engine owns the execution lifecycle every OZZ path shares:
// kernel acquisition (with sync.Pool recycling via Reset), module
// building, task spawning under the deterministic scheduler,
// panic-to-crash recovery, and result publication (coverage, soft
// reports, return values, profiles). The paper evaluates one runtime
// under four drivers — OZZ's OEMU executor (§4), the syzkaller and
// interleaving baselines (§6.3.2), and KCSAN (§7) — and each driver is
// expressed here as a Strategy plugged into the same engine, so the
// build/run/recover/report loop exists exactly once.
package engine

import (
	"sort"
	"sync"
	"time"

	"ozz/internal/hints"
	"ozz/internal/kernel"
	"ozz/internal/modules"
	"ozz/internal/obs"
	"ozz/internal/oemu"
	"ozz/internal/sched"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// Request selects what to execute: the program, the concurrent pair, the
// scheduling hint, and the per-run knobs. Strategy implementations read
// the fields they understand and ignore the rest.
type Request struct {
	// Prog is the syzlang program to execute.
	Prog *syzlang.Program
	// I and J index the pair of calls to run concurrently (I < J). Unused
	// by sequential runs.
	I, J int
	// Hint is the OOO scheduling hint: interleaving point plus reordering
	// directives. A nil hint makes the OOO strategy run sequentially.
	Hint *hints.Hint
	// NoReorder suppresses the OEMU directives while keeping the
	// breakpoint schedule — the triage re-run that separates genuine OOO
	// bugs from plain interleaving races (the paper's authors performed
	// this classification manually on 61 crash titles, §6.1).
	NoReorder bool
	// Profile captures each call's memory-access events in sequential
	// runs (requires an instrumented kernel).
	Profile bool
	// Seed feeds seeded schedule policies (the Interleave strategy's
	// random schedule; KCSAN's sampling stream).
	Seed int64
}

// Result is the outcome of one engine run — the union of what the
// sequential (STI) and pair (MTI) shapes produce. Fields that do not
// apply to a run's shape are zero.
type Result struct {
	// Crash is non-nil if the run crashed (a kernel bug oracle fired).
	Crash *kernel.Crash
	// Deadlock is non-nil if the run deadlocked.
	Deadlock *sched.Deadlock
	// PrefixCrash marks a crash during the sequential prefix of a pair
	// run (a non-OOO crash; the concurrent stage never ran).
	PrefixCrash bool
	// Fired reports whether the scheduling point was reached (OOO runs).
	Fired bool
	// Reordered counts the OEMU reorderings that actually occurred in
	// the reorderer (delayed stores + versioned loads).
	Reordered int
	// ReorderLog carries the reorder records for the bug report.
	ReorderLog []oemu.ReorderRecord
	// Migrations counts the real cross-CPU task moves the Migration
	// strategy performed at scheduling points (zero for other strategies
	// and for migration-insensitive hints).
	Migrations int
	// DeferredTasks counts the deferred-work handler tasks (softirq/
	// workqueue model) the Deferred strategy spawned at deferral points.
	DeferredTasks int
	// CallEvents holds the profiled event sequence of each completed
	// call (§4.2) in profiling runs; entries past a crash are nil.
	CallEvents [][]trace.Event
	// Returns holds each call's return value (resources for later calls)
	// in sequential runs.
	Returns []uint64
	// Cov is the KCov edge set covered by the run.
	Cov map[uint64]struct{}
	// Soft holds non-crash oracle reports.
	Soft []string
}

// buildFunc instantiates modules over a kernel; the default is
// modules.Build with the config's module list and bug set. Tests inject
// alternatives to run synthetic syscall implementations.
type buildFunc func(k *kernel.Kernel) map[string]modules.Impl

// Engine executes requests. It is safe for concurrent use: the kernel
// recycler and the result cache are internally synchronized, and every
// run works on its own kernel. One Engine instance amortizes kernel
// construction across all runs sharing it, whatever their Config.
type Engine struct {
	// kpool recycles kernel instances across executions: Reset on a used
	// kernel is much cheaper than rebuilding memory pages, emulator maps,
	// and allocator state from scratch. sync.Pool is concurrency-safe, so
	// parallel campaign workers share one recycler.
	kpool sync.Pool

	// cache memoizes sequential profiling runs (see cache.go).
	cache resultCache

	// plans memoizes compiled OEMU directive plans (see plancache.go).
	plans planCache

	// m holds the engine's pre-resolved metric handles (see obs.go).
	// Every lifecycle counter — kernel acquisitions, cache lookups, run
	// outcomes, OEMU/scheduler activity — is registry-backed.
	m *metrics
}

// New returns an engine with its own private metrics registry (retrieve
// it with Obs). Equivalent to NewObs(nil).
func New() *Engine { return NewObs(nil) }

// NewObs returns an engine publishing its lifecycle metrics into reg
// (nil = a fresh private registry). Sharing one registry across engines
// is legal — registration is get-or-create — but makes the kernel/cache
// counters cumulative across all sharing engines.
func NewObs(reg *obs.Registry) *Engine {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{m: newMetrics(reg)}
	e.cache.hits = e.m.cacheHits
	e.cache.misses = e.m.cacheMisses
	e.plans.hits = e.m.planHits
	e.plans.misses = e.m.planMisses
	return e
}

// Obs returns the registry this engine publishes into.
func (e *Engine) Obs() *obs.Registry { return e.m.reg }

// Run executes one request under the strategy. The config is normalized
// (defaults resolved) before use.
func (e *Engine) Run(cfg Config, s Strategy, req Request) *Result {
	return e.run(cfg, s, req, nil)
}

// run is Run with an injectable module builder (white-box tests).
func (e *Engine) run(cfg Config, s Strategy, req Request, build buildFunc) *Result {
	cfg.normalize()
	start := time.Now()
	k := e.acquire(&cfg)
	// The model must be installed before Attach (OOO's history-tracking
	// decision reads it) and before any task executes an access. Reset
	// restored the recycled emulator to LKMM; this is the one switch point.
	k.Em.SetModel(cfg.Model)
	// Engine runs record OEMU store history only when they can consume it:
	// versioned loads exist solely in load-barrier MTIs, and the OOO
	// strategy's Attach turns tracking back on for those (from clock 0, so
	// the observable behavior is identical to always-on). Everything else —
	// STI profiling, store-barrier MTIs, the baselines — skips the per-store
	// history ring and stamp writes entirely. Strategies that install
	// versioned-load directives some other way are still sound: arming a
	// read-old directive mid-run re-enables tracking with a window floored
	// at the arm point.
	k.Em.SetHistoryTracking(false)
	var impls map[string]modules.Impl
	if build != nil {
		impls = build(k)
	} else {
		impls = modules.BuildNamed(k, cfg.Bugs, moduleSubset(&cfg, req.Prog))
	}
	s.Attach(k, &req)
	var res *Result
	shape := "sequential"
	if plan := s.Pair(&cfg, &req); plan != nil {
		shape = "pair"
		res = e.runPair(k, impls, &cfg, &req, plan)
	} else {
		res = e.runSequential(k, impls, &cfg, &req)
	}
	// Publication is observation only: counters and wall-clock timings,
	// never anything a deterministic execution depends on.
	e.m.publishRun(s.Name(), shape, cfg.Model.Name(), time.Since(start), res, k.Em.Counters())
	e.release(k)
	return res
}

// moduleSubset returns the module names to build for one run of prog: the
// modules the program's calls actually belong to, intersected with the
// configured universe. Building every registered module dominated the run
// profile (~40% CPU, ~2/3 of allocations) while a typical program touches
// one or two. The subset is a pure function of (program, config), so runs
// stay deterministic, and the enosys semantics of disallowed modules are
// preserved: a call whose module is outside cfg.Modules gets no
// implementation either way. Programs with calls that don't name a
// registered module (synthetic test defs) fall back to the configured
// universe — the exact pre-subset behavior.
func moduleSubset(cfg *Config, p *syzlang.Program) []string {
	if p == nil {
		return fullModuleList(cfg)
	}
	names := make([]string, 0, 4)
	for i := range p.Calls {
		m := p.Calls[i].Def.Module
		if m == "" || modules.ByName(m) == nil {
			return fullModuleList(cfg)
		}
		dup := false
		for _, n := range names {
			if n == m {
				dup = true
				break
			}
		}
		if !dup {
			names = append(names, m)
		}
	}
	sort.Strings(names)
	if len(cfg.Modules) > 0 {
		kept := names[:0]
		for _, n := range names {
			for _, allowed := range cfg.Modules {
				if n == allowed {
					kept = append(kept, n)
					break
				}
			}
		}
		names = kept
	}
	return names
}

// fullModuleList is the configured module universe: cfg.Modules when set,
// else every registered module.
func fullModuleList(cfg *Config) []string {
	if len(cfg.Modules) > 0 {
		return cfg.Modules
	}
	all := modules.All()
	names := make([]string, len(all))
	for i, m := range all {
		names[i] = m.Name
	}
	return names
}

// KernelCounters reports how many kernel acquisitions were recycled from
// the pool vs. built fresh.
func (e *Engine) KernelCounters() (recycled, built uint64) {
	return e.m.kernelRecycled.Value(), e.m.kernelBuilt.Value()
}

// RecycleRate returns the fraction of kernel acquisitions served by the
// recycler (0 before the first run).
func (e *Engine) RecycleRate() float64 {
	r, b := e.KernelCounters()
	if r+b == 0 {
		return 0
	}
	return float64(r) / float64(r+b)
}

// acquire returns a kernel — recycled from the pool when possible — with
// the config's feature switches applied. The result is identical to a
// freshly-constructed kernel: Reset restores every observable property
// (memory content, sanitizer state, emulator clock, site tables).
func (e *Engine) acquire(cfg *Config) *kernel.Kernel {
	start := time.Now()
	var k *kernel.Kernel
	if v := e.kpool.Get(); v != nil {
		k = v.(*kernel.Kernel)
		k.Reset()
		e.m.kernelRecycled.Inc()
	} else {
		k = kernel.New(cfg.NrCPU)
		e.m.kernelBuilt.Inc()
	}
	e.m.acquireDur.Observe(time.Since(start).Seconds())
	k.Instrumented = cfg.Instrumented
	k.Sanitizers = cfg.Sanitizers
	return k
}

// release returns a kernel to the recycler once an execution has finished
// with it. Callers must first take ownership of any kernel state they hand
// out in results (Cov, Soft): Reset replaces those rather than mutating
// them, so already-captured maps stay valid.
func (e *Engine) release(k *kernel.Kernel) {
	e.kpool.Put(k)
}

// resolveArgs materializes a call's arguments given earlier calls' results.
func resolveArgs(c *syzlang.Call, returns []uint64) []uint64 {
	args := make([]uint64, len(c.Args))
	for i, a := range c.Args {
		if a.Res {
			if a.Ref >= 0 && a.Ref < len(returns) {
				args[i] = returns[a.Ref]
			}
		} else {
			args[i] = a.Val
		}
	}
	return args
}

// errno for a call with no implementation (module not loaded).
const enosys = ^uint64(37) // -38

// execCall runs one call on a task and returns its result. The store
// buffer drains at syscall return.
func execCall(t *kernel.Task, impls map[string]modules.Impl, c *syzlang.Call, args []uint64) uint64 {
	impl := impls[c.Def.Name]
	if impl == nil {
		return enosys
	}
	ret := impl(t, args)
	t.SyscallReturn()
	return ret
}

// runSequential executes the whole program on one task — the STI
// profiling path and the syzkaller baseline.
func (e *Engine) runSequential(k *kernel.Kernel, impls map[string]modules.Impl, cfg *Config, req *Request) *Result {
	p := req.Prog
	res := &Result{
		CallEvents: make([][]trace.Event, len(p.Calls)),
		Returns:    make([]uint64, len(p.Calls)),
	}
	profiling := req.Profile && cfg.Instrumented
	task := k.NewTask(0)
	// One profiling buffer serves every call: Clone captures each call's
	// events, Reset recycles the backing storage for the next call.
	prof := &trace.Buffer{}
	session := sched.NewSession(sched.Sequential{})
	session.Spawn(0, 0, func(st *sched.Task) {
		task.Bind(st)
		for ci := range p.Calls {
			c := &p.Calls[ci]
			args := resolveArgs(c, res.Returns)
			if impl := impls[c.Def.Name]; impl != nil {
				if profiling {
					prof.Reset()
					task.Prof = prof
				}
				res.Returns[ci] = impl(task, args)
				task.SyscallReturn()
				if task.Prof != nil {
					res.CallEvents[ci] = task.Prof.Clone()
					task.Prof = nil
				}
			} else {
				res.Returns[ci] = enosys
			}
		}
	})
	aborted := session.Run()
	e.m.observeSession(session)
	// Capture the crashing call's partial profile.
	if task.Prof != nil {
		for ci := range res.CallEvents {
			if res.CallEvents[ci] == nil {
				res.CallEvents[ci] = task.Prof.Clone()
				break
			}
		}
		task.Prof = nil
	}
	classifyAbort(aborted, res)
	res.Cov = k.Cov
	res.Soft = k.Soft
	return res
}

// runPair executes the prefix/pair(/suffix) shape: the program's calls
// before J (except I) run sequentially to build kernel state; then the
// plan's two calls run concurrently on CPUs 1 and 2 under its policy
// (Fig. 5).
func (e *Engine) runPair(k *kernel.Kernel, impls map[string]modules.Impl, cfg *Config, req *Request, plan *PairPlan) *Result {
	p := req.Prog
	res := &Result{}
	returns := make([]uint64, len(p.Calls))

	// Stage 1: sequential prefix.
	prefixTask := k.NewTask(0)
	prefix := sched.NewSession(sched.Sequential{})
	prefix.Spawn(0, 0, func(st *sched.Task) {
		prefixTask.Bind(st)
		for ci := 0; ci < req.J; ci++ {
			if ci == req.I {
				continue
			}
			c := &p.Calls[ci]
			returns[ci] = execCall(prefixTask, impls, c, resolveArgs(c, returns))
		}
	})
	aborted := prefix.Run()
	e.m.observeSession(prefix)
	if aborted != nil {
		classifyAbort(aborted, res)
		res.PrefixCrash = true
		res.Cov = k.Cov
		return res
	}

	// Stage 2: the concurrent pair under the plan's policy, with the
	// plan's directives/observers armed on the fresh tasks.
	taskA := k.NewTask(1)
	taskB := k.NewTask(2)
	if plan.Reorder != nil {
		taskA.OEMU().InstallPlan(e.plans.plan(p, plan.Reorder, cfg.Model))
	}
	if plan.Arm != nil {
		plan.Arm(taskA, taskB)
	}
	session := sched.NewSession(plan.Policy)
	runPair := func(task *kernel.Task, ci int) func(*sched.Task) {
		return func(st *sched.Task) {
			task.Bind(st)
			c := &p.Calls[ci]
			returns[ci] = execCall(task, impls, c, resolveArgs(c, returns))
		}
	}
	session.Spawn(1, 1, runPair(taskA, plan.CallA))
	session.Spawn(2, 2, runPair(taskB, plan.CallB))
	pairAborted := session.Run()
	e.m.observeSession(session)
	classifyAbort(pairAborted, res)
	if plan.Finish != nil {
		plan.Finish(res, taskA, taskB)
	}

	// Stage 3: sequential suffix (an MTI consists of the same call set as
	// its STI; calls after the pair can carry bug-detecting assertions).
	if plan.Suffix && res.Crash == nil && res.Deadlock == nil && req.J+1 < len(p.Calls) {
		suffix := sched.NewSession(sched.Sequential{})
		suffix.Spawn(3, 0, func(st *sched.Task) {
			prefixTask.Bind(st)
			for ci := req.J + 1; ci < len(p.Calls); ci++ {
				c := &p.Calls[ci]
				returns[ci] = execCall(prefixTask, impls, c, resolveArgs(c, returns))
			}
		})
		suffixAborted := suffix.Run()
		e.m.observeSession(suffix)
		classifyAbort(suffixAborted, res)
	}
	res.Soft = k.Soft
	res.Cov = k.Cov
	return res
}

// classifyAbort sorts a session's recovered panic value into the result.
// Values that are neither *kernel.Crash nor *sched.Deadlock are genuine
// Go panics in the simulator itself and are re-raised so they surface as
// harness errors — no execution path may silently drop them.
func classifyAbort(aborted any, res *Result) {
	switch v := aborted.(type) {
	case nil:
	case *kernel.Crash:
		res.Crash = v
	case *sched.Deadlock:
		res.Deadlock = v
	default:
		panic(v)
	}
}
