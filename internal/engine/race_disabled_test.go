//go:build !race

package engine

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
