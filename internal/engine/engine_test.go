package engine

import (
	"testing"

	"ozz/internal/kernel"
	"ozz/internal/modules"
	"ozz/internal/syzlang"
)

// prog builds a one-call program whose syscall has the given name.
func prog(name string) *syzlang.Program {
	return &syzlang.Program{Calls: []syzlang.Call{{Def: &syzlang.SyscallDef{Name: name}}}}
}

// injected returns a buildFunc serving the given implementations.
func injected(impls map[string]modules.Impl) buildFunc {
	return func(*kernel.Kernel) map[string]modules.Impl { return impls }
}

// TestCrashPanicRecovered: a syscall panicking with *kernel.Crash is the
// kernel's crash channel — the engine must recover it into the result.
func TestCrashPanicRecovered(t *testing.T) {
	e := New()
	impls := map[string]modules.Impl{
		"boom": func(tk *kernel.Task, _ []uint64) uint64 {
			panic(&kernel.Crash{Title: "kernel BUG in boom", Oracle: "assert"})
		},
	}
	res := e.run(Config{Instrumented: true}, OOO{}, Request{Prog: prog("boom")}, injected(impls))
	if res.Crash == nil || res.Crash.Title != "kernel BUG in boom" {
		t.Fatalf("crash not recovered: %+v", res)
	}
}

// TestNonCrashPanicSurfaces: a syscall panicking with anything other than
// *kernel.Crash / *sched.Deadlock is a genuine bug in the simulator — it
// must escape the engine as a harness error, never become a
// silently-dropped (or worse, recorded) report. The baselines used to
// swallow these; the engine boundary forbids it for every strategy.
func TestNonCrashPanicSurfaces(t *testing.T) {
	e := New()
	impls := map[string]modules.Impl{
		"oops": func(tk *kernel.Task, _ []uint64) uint64 {
			panic("plain string panic: simulator bug")
		},
	}
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("non-crash panic was swallowed by the engine")
		}
		if s, ok := v.(string); !ok || s != "plain string panic: simulator bug" {
			t.Fatalf("panic value mangled: %v", v)
		}
	}()
	e.run(Config{Instrumented: true}, OOO{}, Request{Prog: prog("oops")}, injected(impls))
	t.Fatal("run returned instead of panicking")
}

// TestConfigNormalize: the NrCPU default is resolved in exactly one place.
func TestConfigNormalize(t *testing.T) {
	c := Config{}
	c.normalize()
	if c.NrCPU != DefaultNrCPU {
		t.Fatalf("NrCPU = %d, want %d", c.NrCPU, DefaultNrCPU)
	}
	c = Config{NrCPU: 2}
	c.normalize()
	if c.NrCPU != 2 {
		t.Fatalf("explicit NrCPU overridden: %d", c.NrCPU)
	}
}

// TestKernelRecycling: sequential runs reuse the pooled kernel, and the
// counters expose the recycle rate.
func TestKernelRecycling(t *testing.T) {
	e := New()
	impls := map[string]modules.Impl{
		"nop": func(tk *kernel.Task, _ []uint64) uint64 { return 0 },
	}
	for i := 0; i < 5; i++ {
		res := e.run(Config{Instrumented: true}, OOO{}, Request{Prog: prog("nop")}, injected(impls))
		if res.Crash != nil || res.Deadlock != nil {
			t.Fatalf("run %d aborted: %+v", i, res)
		}
	}
	recycled, built := e.KernelCounters()
	if recycled+built != 5 || built < 1 {
		t.Fatalf("counters = (recycled %d, built %d), want 5 acquisitions with >= 1 build", recycled, built)
	}
	if raceEnabled {
		// sync.Pool drops a random fraction of Puts under the race
		// detector, so the exact recycle split is not stable there.
		return
	}
	if built != 1 || recycled != 4 {
		t.Fatalf("counters = (recycled %d, built %d), want (4, 1)", recycled, built)
	}
	if rate := e.RecycleRate(); rate != 0.8 {
		t.Fatalf("recycle rate = %v, want 0.8", rate)
	}
}

// TestMissingImplReturnsENOSYS: a call with no implementation fails with
// -ENOSYS instead of silently succeeding.
func TestMissingImplReturnsENOSYS(t *testing.T) {
	e := New()
	res := e.run(Config{Instrumented: true}, OOO{}, Request{Prog: prog("nosuchcall")},
		injected(map[string]modules.Impl{}))
	if res.Returns[0] != enosys {
		t.Fatalf("missing impl returned %#x, want ENOSYS", res.Returns[0])
	}
}
