package engine

import (
	"sync"

	"ozz/internal/obs"
)

// cacheCap bounds the number of cached profiling results. When the cap is
// reached the cache is dropped wholesale (epoch clearing): campaigns cycle
// through generations of programs, so stale entries rarely pay rent, and
// wholesale clearing keeps eviction O(1) and free of iteration-order
// nondeterminism.
const cacheCap = 4096

// resultCache memoizes sequential runs keyed by the canonical syzlang
// serialization of the program (Program.Key). Re-profiling an identical
// single-threaded input — which happens constantly across fuzzer steps,
// minimization, and the Table 3/4 campaigns — becomes a map lookup.
//
// Safe for concurrent use. Cached *Result values are shared between all
// callers and MUST be treated as immutable; every consumer only reads
// them (coverage merging, hint calculation, report formatting).
type resultCache struct {
	mu sync.RWMutex
	m  map[string]*Result

	// hits/misses are the engine registry's ozz_sti_cache_lookups_total
	// children, wired at engine construction.
	hits, misses *obs.Counter
}

func (c *resultCache) get(key string) *Result {
	c.mu.RLock()
	r := c.m[key]
	c.mu.RUnlock()
	if r != nil {
		c.hits.Inc()
	}
	return r
}

func (c *resultCache) put(key string, r *Result) {
	c.mu.Lock()
	if c.m == nil || len(c.m) >= cacheCap {
		c.m = make(map[string]*Result)
	}
	c.m[key] = r
	c.mu.Unlock()
}

// RunCached is Run behind the engine's result cache: the first execution
// of a program runs it for real; later executions of a byte-identical
// program return the memoized result. Correct only for deterministic
// strategy/config combinations where the outcome is a pure function of
// (program, config) — the sequential profiling path. The returned result
// is shared: callers must not mutate it.
func (e *Engine) RunCached(cfg Config, s Strategy, req Request) *Result {
	key := req.Prog.Key()
	if r := e.cache.get(key); r != nil {
		return r
	}
	e.cache.misses.Inc()
	r := e.Run(cfg, s, req)
	e.cache.put(key, r)
	return r
}

// CacheCounters reports result-cache hits and misses. Two workers racing
// on the same uncached program both count a miss (both run it; the
// results are identical), so hits+misses can slightly exceed the number
// of lookups that found an entry present.
func (e *Engine) CacheCounters() (hits, misses uint64) {
	return e.cache.hits.Value(), e.cache.misses.Value()
}
