package engine

import (
	"time"

	"ozz/internal/memmodel"
	"ozz/internal/obs"
	"ozz/internal/oemu"
	"ozz/internal/sched"
)

// StrategyNames lists the built-in strategy labels pre-registered on every
// engine registry, so a scrape shows all drivers' series (at zero) before
// any run. Out-of-tree strategies get their children created on first use.
var StrategyNames = []string{"ooo", "sequential", "interleave", "kcsan", "migration", "deferred"}

// shapeNames are the two run shapes the engine executes.
var shapeNames = []string{"sequential", "pair"}

// flushCauses are the store-buffer drain causes of oemu.Counters, in the
// order they label ozz_oemu_flushes_total.
var flushCauses = []string{"smp_wmb", "smp_mb", "release", "interrupt", "syscall_exit"}

// metrics is the engine's handle bundle into an obs.Registry: every
// lifecycle metric, pre-resolved at construction so the run path does no
// name lookups. All handles are per-engine unless the caller shares a
// registry across engines (then counters are cumulative across them).
type metrics struct {
	reg *obs.Registry

	runs          *obs.CounterVec
	runDur        *obs.HistogramVec
	crashes       *obs.CounterVec
	deadlocks     *obs.CounterVec
	prefixCrashes *obs.Counter
	modelRuns     *obs.CounterVec

	mtiPairs    *obs.Counter
	mtiFired    *obs.Counter
	mtiReorders *obs.Counter

	schedMigrations *obs.Counter
	deferredTasks   *obs.Counter

	kernelRecycled *obs.Counter
	kernelBuilt    *obs.Counter
	acquireDur     *obs.Histogram

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter

	planHits   *obs.Counter
	planMisses *obs.Counter

	schedYields   *obs.Counter
	schedSwitches *obs.Counter

	oemuDelayed   *obs.Counter
	oemuForwarded *obs.Counter
	oemuVersioned *obs.Counter
	oemuCommitted *obs.Counter
	oemuWindow    *obs.Counter
	oemuFlush     [5]*obs.Counter // indexed like flushCauses

	oemuThreadRecycled *obs.Counter
	oemuThreadBuilt    *obs.Counter
	oemuRingRecycled   *obs.Counter
	oemuRingBuilt      *obs.Counter
}

// newMetrics registers the engine metric families on reg and pre-creates
// the label children for every built-in strategy, shape, flush cause, and
// acquire source, so the exposition is complete from the first scrape.
func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{reg: reg}

	m.runs = reg.CounterVec("ozz_engine_runs_total",
		"Engine executions by strategy and run shape (sequential=STI/baseline, pair=MTI).",
		"strategy", "shape")
	m.runDur = reg.HistogramVec("ozz_engine_run_duration_seconds",
		"Wall-clock duration of one engine execution (acquire through publication), seconds.",
		obs.DurationBuckets(), "strategy")
	m.crashes = reg.CounterVec("ozz_engine_crashes_total",
		"Runs that ended in a kernel crash oracle firing, by strategy.", "strategy")
	m.deadlocks = reg.CounterVec("ozz_engine_deadlocks_total",
		"Runs that ended in a scheduler deadlock, by strategy.", "strategy")
	for _, s := range StrategyNames {
		for _, sh := range shapeNames {
			m.runs.With(s, sh)
		}
		m.runDur.With(s)
		m.crashes.With(s)
		m.deadlocks.With(s)
	}
	m.prefixCrashes = reg.Counter("ozz_engine_prefix_crashes_total",
		"Pair runs aborted during the sequential prefix (non-OOO crash; concurrent stage never ran).")

	m.modelRuns = reg.CounterVec("ozz_model_runs_total",
		"Engine executions by the memory model OEMU emulated for the run.", "model")
	for _, name := range memmodel.Names() {
		m.modelRuns.With(name)
	}

	m.mtiPairs = reg.Counter("ozz_mti_pairs_total",
		"Concurrent-pair (MTI) stages executed across all strategies.")
	m.mtiFired = reg.Counter("ozz_mti_fired_total",
		"MTI runs whose scheduling breakpoint was reached (hint fired).")
	m.mtiReorders = reg.Counter("ozz_mti_reorders_total",
		"Genuine OEMU reorderings (delayed stores + versioned loads) observed in MTI runs.")

	m.schedMigrations = reg.Counter("ozz_sched_migrations_total",
		"Real cross-CPU task migrations performed at scheduling points by the Migration strategy (store buffers survive the move).")
	m.deferredTasks = reg.Counter("ozz_deferred_tasks_total",
		"Deferred-work handler tasks (softirq/workqueue model) spawned at deferral points by the Deferred strategy.")

	acquires := reg.CounterVec("ozz_kernel_acquires_total",
		"Kernel acquisitions by source: recycled from the sync.Pool (Reset) vs built fresh.", "source")
	m.kernelRecycled = acquires.With("recycled")
	m.kernelBuilt = acquires.With("built")
	m.acquireDur = reg.Histogram("ozz_kernel_acquire_duration_seconds",
		"Wall-clock kernel acquire latency (pool Get + Reset, or fresh construction), seconds.",
		obs.DurationBuckets())

	lookups := reg.CounterVec("ozz_sti_cache_lookups_total",
		"STI profile cache lookups by outcome (two workers racing one uncached program both count a miss).",
		"outcome")
	m.cacheHits = lookups.With("hit")
	m.cacheMisses = lookups.With("miss")

	planLookups := reg.CounterVec("ozz_plan_cache_lookups_total",
		"Directive-plan cache lookups by outcome (precompiled OEMU reorder plans keyed by program + spec).",
		"outcome")
	m.planHits = planLookups.With("hit")
	m.planMisses = planLookups.With("miss")

	m.schedYields = reg.Counter("ozz_sched_yields_total",
		"Scheduling points hit across all sessions (every instrumented access is one).")
	m.schedSwitches = reg.Counter("ozz_sched_preemptions_total",
		"Scheduling points where the run token moved to a different task (subset of yields).")

	m.oemuDelayed = reg.Counter("ozz_oemu_delayed_stores_total",
		"Stores held in a virtual store buffer (paper §3.1).")
	m.oemuForwarded = reg.Counter("ozz_oemu_forwarded_loads_total",
		"Loads satisfied by store-to-load forwarding from the local buffer.")
	m.oemuVersioned = reg.Counter("ozz_oemu_versioned_loads_total",
		"Loads that observed an old value from the store history (paper §3.2).")
	m.oemuCommitted = reg.Counter("ozz_oemu_committed_stores_total",
		"Stores written through to memory (including delayed stores at flush).")
	m.oemuWindow = reg.Counter("ozz_oemu_load_window_advances_total",
		"Versioning-window starts moving forward (load/full/acquire barriers and annotated loads).")
	flushes := reg.CounterVec("ozz_oemu_flushes_total",
		"Non-empty virtual store buffer drains by cause.", "cause")
	for i, c := range flushCauses {
		m.oemuFlush[i] = flushes.With(c)
	}

	threadAcquires := reg.CounterVec("ozz_oemu_thread_acquires_total",
		"OEMU thread acquisitions by source: recycled from the emulator's freelist vs built fresh.",
		"source")
	m.oemuThreadRecycled = threadAcquires.With("recycled")
	m.oemuThreadBuilt = threadAcquires.With("built")
	ringAcquires := reg.CounterVec("ozz_oemu_history_ring_acquires_total",
		"Store-history ring activations by source: recycled ring storage vs freshly allocated.",
		"source")
	m.oemuRingRecycled = ringAcquires.With("recycled")
	m.oemuRingBuilt = ringAcquires.With("built")
	return m
}

// observeSession harvests a finished scheduler session's yield/preemption
// tallies into the registry.
func (m *metrics) observeSession(s *sched.Session) {
	m.schedYields.Add(s.Yields())
	m.schedSwitches.Add(s.Switches())
}

// publishRun records one finished execution: run/crash counters by
// strategy and shape, MTI outcome counters, and the kernel's OEMU
// activity tally for the run.
func (m *metrics) publishRun(strategy, shape, model string, d time.Duration, res *Result, oc oemu.Counters) {
	m.runs.With(strategy, shape).Inc()
	m.runDur.With(strategy).Observe(d.Seconds())
	m.modelRuns.With(model).Inc()
	if res.Crash != nil {
		m.crashes.With(strategy).Inc()
	}
	if res.Deadlock != nil {
		m.deadlocks.With(strategy).Inc()
	}
	if res.PrefixCrash {
		m.prefixCrashes.Inc()
	}
	if shape == "pair" {
		m.mtiPairs.Inc()
		if res.Fired {
			m.mtiFired.Inc()
		}
		m.mtiReorders.Add(uint64(res.Reordered))
		m.schedMigrations.Add(uint64(res.Migrations))
		m.deferredTasks.Add(uint64(res.DeferredTasks))
	}
	m.oemuDelayed.Add(oc.StoresDelayed)
	m.oemuForwarded.Add(oc.ForwardedLoads)
	m.oemuVersioned.Add(oc.VersionedLoads)
	m.oemuCommitted.Add(oc.StoresCommitted)
	m.oemuWindow.Add(oc.LoadWindowAdvances)
	for i, v := range [5]uint64{oc.FlushSmpWmb, oc.FlushSmpMb, oc.FlushRelease, oc.FlushInterrupt, oc.FlushSyscall} {
		m.oemuFlush[i].Add(v)
	}
	m.oemuThreadRecycled.Add(oc.ThreadsRecycled)
	m.oemuThreadBuilt.Add(oc.ThreadsBuilt)
	m.oemuRingRecycled.Add(oc.HistRingsRecycled)
	m.oemuRingBuilt.Add(oc.HistRingsBuilt)
}
