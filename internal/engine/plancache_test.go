package engine

import (
	"testing"

	"ozz/internal/hints"
	"ozz/internal/kernel"
	"ozz/internal/memmodel"
	"ozz/internal/modules"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// TestPlanCacheHitMiss: the first lookup of a (program, spec) compiles
// and counts a miss; repeats return the same shared plan and count hits.
func TestPlanCacheHitMiss(t *testing.T) {
	e := New()
	pr := prog("a")
	spec := &ReorderSpec{Test: hints.StoreBarrierTest, Sites: []trace.InstrID{7, 3}}
	p1 := e.plans.plan(pr, spec, memmodel.LKMM)
	p2 := e.plans.plan(pr, spec, memmodel.LKMM)
	if p1 != p2 {
		t.Fatal("repeat lookup did not return the cached plan")
	}
	if hits, misses := e.PlanCacheCounters(); hits != 1 || misses != 1 {
		t.Fatalf("counters = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	if got := p1.DelaySites(); len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("plan not canonicalized: %v", got)
	}
	if p1.HasReads() {
		t.Fatal("store-barrier spec compiled into read directives")
	}
}

// TestPlanCacheKeyDiscrimination: changing the program, the test kind, or
// the site list must each produce a distinct cache entry — never a false
// hit on a stale plan.
func TestPlanCacheKeyDiscrimination(t *testing.T) {
	e := New()
	base := prog("a")
	spec := &ReorderSpec{Test: hints.StoreBarrierTest, Sites: []trace.InstrID{5}}
	p := e.plans.plan(base, spec, memmodel.LKMM)

	variants := []struct {
		name string
		prog *syzlang.Program
		spec *ReorderSpec
	}{
		{"mutated program", prog("b"), spec},
		{"other test kind", base, &ReorderSpec{Test: hints.LoadBarrierTest, Sites: []trace.InstrID{5}}},
		{"other sites", base, &ReorderSpec{Test: hints.StoreBarrierTest, Sites: []trace.InstrID{6}}},
	}
	for _, v := range variants {
		if got := e.plans.plan(v.prog, v.spec, memmodel.LKMM); got == p {
			t.Errorf("%s: lookup returned the unrelated cached plan", v.name)
		}
	}
	// A different memory model is its own cache entry: the same spec under
	// armv8 must not return the LKMM-compiled plan.
	if got := e.plans.plan(base, spec, memmodel.ARMv8); got == p {
		t.Error("other model: lookup returned the LKMM-cached plan")
	}
	if hits, misses := e.PlanCacheCounters(); hits != 0 || misses != 5 {
		t.Errorf("counters = (%d hits, %d misses), want (0, 5)", hits, misses)
	}
	// The load-barrier variant must compile into read directives.
	lp := e.plans.plan(base, variants[1].spec, memmodel.LKMM)
	if !lp.HasReads() || len(lp.DelaySites()) != 0 {
		t.Errorf("load-barrier plan shape wrong: reads=%v delays=%v", lp.ReadSites(), lp.DelaySites())
	}
}

// TestPlanInstalledOnPairRuns: an OOO pair run with a reordering hint
// resolves its directives through the plan cache and behaves identically
// across repeats — same reorder count, one compile total.
func TestPlanInstalledOnPairRuns(t *testing.T) {
	e := New()
	var base trace.Addr
	impls := map[string]modules.Impl{
		"w": func(tk *kernel.Task, _ []uint64) uint64 {
			if base == 0 {
				base = tk.K.Mem.AllocZeroed(2)
			}
			tk.Store(101, base, 1)
			tk.Store(102, base+8, 1)
			return 0
		},
		"r": func(tk *kernel.Task, _ []uint64) uint64 {
			tk.Load(201, base+8)
			tk.Load(202, base)
			return 0
		},
	}
	pr := &syzlang.Program{Calls: []syzlang.Call{
		{Def: &syzlang.SyscallDef{Name: "w"}},
		{Def: &syzlang.SyscallDef{Name: "r"}},
	}}
	req := Request{Prog: pr, I: 0, J: 1, Hint: &hints.Hint{
		Test:     hints.StoreBarrierTest,
		Sched:    102,
		SchedOcc: 1,
		Reorder:  []trace.InstrID{101},
	}}
	var reordered []int
	for i := 0; i < 3; i++ {
		base = 0
		res := e.run(Config{Instrumented: true}, OOO{}, req, injected(impls))
		if res.Crash != nil || res.Deadlock != nil {
			t.Fatalf("run %d aborted: %+v", i, res)
		}
		if !res.Fired {
			t.Fatalf("run %d: breakpoint never fired", i)
		}
		reordered = append(reordered, res.Reordered)
	}
	if reordered[0] < 1 {
		t.Fatalf("no reordering observed: %v", reordered)
	}
	if reordered[1] != reordered[0] || reordered[2] != reordered[0] {
		t.Fatalf("cached plan diverges across repeats: %v", reordered)
	}
	if hits, misses := e.PlanCacheCounters(); misses != 1 || hits != 2 {
		t.Fatalf("counters = (%d hits, %d misses), want (2, 1)", hits, misses)
	}
	// The triage re-run (NoReorder) must bypass the plan entirely.
	base = 0
	req.NoReorder = true
	res := e.run(Config{Instrumented: true}, OOO{}, req, injected(impls))
	if res.Reordered != 0 {
		t.Fatalf("NoReorder run still reordered %d times", res.Reordered)
	}
}
