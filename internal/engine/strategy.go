package engine

import (
	"ozz/internal/hints"
	"ozz/internal/kernel"
	"ozz/internal/sched"
	"ozz/internal/trace"
)

// Strategy is an execution policy plugged into the engine: it decides how
// a program's calls are scheduled (sequentially, or as a concurrent pair
// under some policy), which OEMU directives are installed, and which
// observers watch the kernel. The engine owns everything else — kernel
// acquisition and recycling, module building, task creation, session
// spawning, crash recovery, and result publication — so a strategy is
// only the delta between execution paths.
//
// The built-in strategies reproduce the paper's four drivers: OOO (§4,
// the hypothetical-barrier MTI executor), Sequential (§6.3.2, the
// syzkaller baseline), Interleave (§6.3.2, schedule-only fuzzing), and —
// implemented outside this package to prove the plug-point —
// baseline/kcsan's watchpoint sampler (§7).
type Strategy interface {
	// Name identifies the strategy (reports, stats, debugging).
	Name() string
	// Attach installs the strategy's observers on a freshly built kernel
	// — after modules are built, before any call runs. Most strategies
	// attach nothing; KCSAN installs its OnAccess watchpoint sampler.
	Attach(k *kernel.Kernel, req *Request)
	// Pair returns the concurrent-pair plan for the request, or nil to
	// run the whole program sequentially on one task.
	Pair(cfg *Config, req *Request) *PairPlan
}

// PairPlan describes one prefix/pair(/suffix) execution: the program's
// calls before J (except I) run sequentially to build kernel state, then
// CallA and CallB run concurrently on CPUs 1 and 2 under Policy.
type PairPlan struct {
	// Policy schedules the concurrent stage (breakpoint, random, ...).
	Policy sched.Policy
	// CallA and CallB are the call indices run by task 1 (CPU 1) and
	// task 2 (CPU 2) respectively.
	CallA, CallB int
	// Suffix runs the program's calls after J sequentially once the pair
	// completes without crashing (an MTI consists of the same call set as
	// its STI; trailing calls can carry bug-detecting assertions). The
	// baselines run no suffix.
	Suffix bool
	// Reorder, when non-nil, names the OEMU directive set task A (the
	// reorderer) runs under. The engine resolves it through its
	// precompiled-plan cache — keyed beside the STI profile cache by
	// Program.Key — and installs the shared immutable plan on task A's
	// OEMU thread before Arm runs, so per-run directive-set construction
	// happens at most once per distinct (program, test, sites).
	Reorder *ReorderSpec
	// Arm, if non-nil, runs after the pair tasks are created, after the
	// Reorder plan is installed, and before the tasks are spawned — the
	// hook for schedule-coupled state and ad-hoc directives (ta is task 1,
	// tb is task 2).
	Arm func(ta, tb *kernel.Task)
	// Finish, if non-nil, runs after the concurrent stage completes
	// (before the suffix) to harvest strategy-specific outcomes into the
	// result (breakpoint fired, reorder counts, ...).
	Finish func(res *Result, ta, tb *kernel.Task)
}

// ReorderSpec names an OEMU directive set declaratively: the hypothetical
// barrier test kind plus the instruction sites it reorders (Table 2 — a
// store-barrier test delays the stores at Sites, a load-barrier test makes
// the loads at Sites read old values). Specs are values the engine can
// hash and cache; the compiled form is oemu.Plan.
type ReorderSpec struct {
	// Test is the hypothetical barrier test kind the directives emulate.
	Test hints.TestKind
	// Sites are the instruction sites the directives apply to.
	Sites []trace.InstrID
}

// OOO is OZZ's hypothetical-memory-barrier strategy (§4.4): the
// reorderer task carries the hint's OEMU directives (delayed stores or
// versioned loads) and a breakpoint policy switches to the observer at
// the hint's scheduling point. Without a hint the program runs
// sequentially — the STI profiling path.
type OOO struct{}

// Name implements Strategy.
func (OOO) Name() string { return "ooo" }

// Attach implements Strategy: no observers, but load-barrier MTIs need
// OEMU store-history tracking on from the very first prefix access — a
// versioned load may legitimately observe prefix-era values — so Attach
// re-enables the tracking the engine disables by default for engine runs.
// Store-barrier tests and sequential (STI) runs execute no versioned
// loads and leave it off, as do runs under a model with no versionable
// loads at all (TSO): its read-old directives are inert, so recording
// history would be pure overhead. The engine installs the run's model
// before Attach, so the emulator's table is authoritative here.
func (OOO) Attach(k *kernel.Kernel, req *Request) {
	if req.Hint != nil && !req.NoReorder && req.Hint.Test == hints.LoadBarrierTest &&
		k.Em.Model().AnyVersionable() {
		k.Em.SetHistoryTracking(true)
	}
}

// Pair implements Strategy: the hint selects reorderer/observer roles,
// the directive kind, and the breakpoint position.
func (OOO) Pair(cfg *Config, req *Request) *PairPlan {
	if req.Hint == nil {
		return nil
	}
	hint := req.Hint
	callA, callB := req.I, req.J
	if hint.Reorderer == 1 {
		callA, callB = req.J, req.I
	}
	pos := sched.PosAfter
	if hint.Test == hints.LoadBarrierTest {
		pos = sched.PosBefore
	}
	bp := &sched.Breakpoint{
		FromTask:   1,
		Instr:      hint.Sched,
		Occurrence: hint.SchedOcc,
		Pos:        pos,
		ToTask:     2,
	}
	var spec *ReorderSpec
	if !req.NoReorder && len(hint.Reorder) > 0 {
		spec = &ReorderSpec{Test: hint.Test, Sites: hint.Reorder}
	}
	interrupt := cfg.InterruptOnSwitch
	return &PairPlan{
		Policy:  bp,
		CallA:   callA,
		CallB:   callB,
		Suffix:  true,
		Reorder: spec,
		Arm: func(ta, _ *kernel.Task) {
			if interrupt {
				bp.OnSwitch = ta.Interrupt
			}
		},
		Finish: func(res *Result, ta, _ *kernel.Task) {
			res.Fired = bp.Fired
			res.Reordered = ta.OEMU().ReorderedCount()
			res.ReorderLog = append(res.ReorderLog, ta.OEMU().Log...)
		},
	}
}

// Sequential is the syzkaller-baseline strategy: every program runs
// sequentially on one task, whatever the request's pair fields say.
type Sequential struct{}

// Name implements Strategy.
func (Sequential) Name() string { return "sequential" }

// Attach implements Strategy (no observers).
func (Sequential) Attach(*kernel.Kernel, *Request) {}

// Pair implements Strategy: never a concurrent stage.
func (Sequential) Pair(*Config, *Request) *PairPlan { return nil }

// Interleave is the interleaving-only baseline strategy
// (Snowboard/Razzer-style): the pair runs under a seeded random schedule
// — thread interleaving control WITHOUT memory reordering, so OOO bugs
// stay invisible (§2.3).
type Interleave struct {
	// Period is the random policy's switch period (default 2).
	Period int
}

// Name implements Strategy.
func (Interleave) Name() string { return "interleave" }

// Attach implements Strategy (no observers).
func (Interleave) Attach(*kernel.Kernel, *Request) {}

// Pair implements Strategy: calls I and J under a random schedule seeded
// from the request.
func (iv Interleave) Pair(_ *Config, req *Request) *PairPlan {
	period := iv.Period
	if period == 0 {
		period = 2
	}
	return &PairPlan{
		Policy: &sched.Random{Seed: req.Seed, Period: period},
		CallA:  req.I,
		CallB:  req.J,
	}
}
