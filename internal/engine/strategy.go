package engine

import (
	"fmt"

	"ozz/internal/hints"
	"ozz/internal/kernel"
	"ozz/internal/sched"
	"ozz/internal/trace"
)

// Strategy is an execution policy plugged into the engine: it decides how
// a program's calls are scheduled (sequentially, or as a concurrent pair
// under some policy), which OEMU directives are installed, and which
// observers watch the kernel. The engine owns everything else — kernel
// acquisition and recycling, module building, task creation, session
// spawning, crash recovery, and result publication — so a strategy is
// only the delta between execution paths.
//
// The built-in strategies reproduce the paper's four drivers: OOO (§4,
// the hypothetical-barrier MTI executor), Sequential (§6.3.2, the
// syzkaller baseline), Interleave (§6.3.2, schedule-only fuzzing), and —
// implemented outside this package to prove the plug-point —
// baseline/kcsan's watchpoint sampler (§7).
type Strategy interface {
	// Name identifies the strategy (reports, stats, debugging).
	Name() string
	// Attach installs the strategy's observers on a freshly built kernel
	// — after modules are built, before any call runs. Most strategies
	// attach nothing; KCSAN installs its OnAccess watchpoint sampler.
	Attach(k *kernel.Kernel, req *Request)
	// Pair returns the concurrent-pair plan for the request, or nil to
	// run the whole program sequentially on one task.
	Pair(cfg *Config, req *Request) *PairPlan
}

// PairPlan describes one prefix/pair(/suffix) execution: the program's
// calls before J (except I) run sequentially to build kernel state, then
// CallA and CallB run concurrently on CPUs 1 and 2 under Policy.
type PairPlan struct {
	// Policy schedules the concurrent stage (breakpoint, random, ...).
	Policy sched.Policy
	// CallA and CallB are the call indices run by task 1 (CPU 1) and
	// task 2 (CPU 2) respectively.
	CallA, CallB int
	// Suffix runs the program's calls after J sequentially once the pair
	// completes without crashing (an MTI consists of the same call set as
	// its STI; trailing calls can carry bug-detecting assertions). The
	// baselines run no suffix.
	Suffix bool
	// Reorder, when non-nil, names the OEMU directive set task A (the
	// reorderer) runs under. The engine resolves it through its
	// precompiled-plan cache — keyed beside the STI profile cache by
	// Program.Key — and installs the shared immutable plan on task A's
	// OEMU thread before Arm runs, so per-run directive-set construction
	// happens at most once per distinct (program, test, sites).
	Reorder *ReorderSpec
	// Arm, if non-nil, runs after the pair tasks are created, after the
	// Reorder plan is installed, and before the tasks are spawned — the
	// hook for schedule-coupled state and ad-hoc directives (ta is task 1,
	// tb is task 2).
	Arm func(ta, tb *kernel.Task)
	// Finish, if non-nil, runs after the concurrent stage completes
	// (before the suffix) to harvest strategy-specific outcomes into the
	// result (breakpoint fired, reorder counts, ...).
	Finish func(res *Result, ta, tb *kernel.Task)
}

// ReorderSpec names an OEMU directive set declaratively: the hypothetical
// barrier test kind plus the instruction sites it reorders (Table 2 — a
// store-barrier test delays the stores at Sites, a load-barrier test makes
// the loads at Sites read old values). Specs are values the engine can
// hash and cache; the compiled form is oemu.Plan.
type ReorderSpec struct {
	// Test is the hypothetical barrier test kind the directives emulate.
	Test hints.TestKind
	// Sites are the instruction sites the directives apply to.
	Sites []trace.InstrID
}

// OOO is OZZ's hypothetical-memory-barrier strategy (§4.4): the
// reorderer task carries the hint's OEMU directives (delayed stores or
// versioned loads) and a breakpoint policy switches to the observer at
// the hint's scheduling point. Without a hint the program runs
// sequentially — the STI profiling path.
type OOO struct{}

// Name implements Strategy.
func (OOO) Name() string { return "ooo" }

// Attach implements Strategy: no observers, but load-barrier MTIs need
// OEMU store-history tracking on from the very first prefix access — a
// versioned load may legitimately observe prefix-era values — so Attach
// re-enables the tracking the engine disables by default for engine runs.
// Store-barrier tests and sequential (STI) runs execute no versioned
// loads and leave it off, as do runs under a model with no versionable
// loads at all (TSO): its read-old directives are inert, so recording
// history would be pure overhead. The engine installs the run's model
// before Attach, so the emulator's table is authoritative here.
func (OOO) Attach(k *kernel.Kernel, req *Request) {
	if req.Hint != nil && !req.NoReorder && req.Hint.Test == hints.LoadBarrierTest &&
		k.Em.Model().AnyVersionable() {
		k.Em.SetHistoryTracking(true)
	}
}

// Pair implements Strategy: the hint selects reorderer/observer roles,
// the directive kind, and the breakpoint position.
func (OOO) Pair(cfg *Config, req *Request) *PairPlan {
	plan, _ := oooPair(cfg, req)
	return plan
}

// oooPair builds the hypothetical-barrier pair plan shared by the OOO,
// Migration, and Deferred strategies, returning the breakpoint so wrappers
// can compose policies or re-point the fire hook. Nil without a hint (the
// sequential/STI path).
func oooPair(cfg *Config, req *Request) (*PairPlan, *sched.Breakpoint) {
	if req.Hint == nil {
		return nil, nil
	}
	hint := req.Hint
	callA, callB := req.I, req.J
	if hint.Reorderer == 1 {
		callA, callB = req.J, req.I
	}
	pos := sched.PosAfter
	if hint.Test == hints.LoadBarrierTest {
		pos = sched.PosBefore
	}
	bp := &sched.Breakpoint{
		FromTask:   1,
		Instr:      hint.Sched,
		Occurrence: hint.SchedOcc,
		Pos:        pos,
		ToTask:     2,
	}
	var spec *ReorderSpec
	if !req.NoReorder && len(hint.Reorder) > 0 {
		spec = &ReorderSpec{Test: hint.Test, Sites: hint.Reorder}
	}
	interrupt := cfg.InterruptOnSwitch
	return &PairPlan{
		Policy:  bp,
		CallA:   callA,
		CallB:   callB,
		Suffix:  true,
		Reorder: spec,
		Arm: func(ta, _ *kernel.Task) {
			if interrupt {
				bp.OnSwitch = ta.Interrupt
			}
		},
		Finish: func(res *Result, ta, _ *kernel.Task) {
			res.Fired = bp.Fired
			res.Reordered = ta.OEMU().ReorderedCount()
			res.ReorderLog = append(res.ReorderLog, ta.OEMU().Log...)
		},
	}, bp
}

// Migration is the migration-aware OOO strategy (Table 4 #6, §6.2): it runs
// the same hypothetical-barrier test as OOO, but when the hint is
// migration-sensitive (Hint.Migrate non-empty — the racing pair shares a
// per-CPU location) the breakpoint is wrapped in a sched.MigrateAt
// combinator that moves the observer task to CPU 0 — the CPU the
// sequential prefix ran on, where the stale per-CPU state lives — at the
// moment the scheduling point fires. The move does not flush the
// reorderer's store buffer, so the delayed stores stay delayed while the
// observer re-resolves per-CPU addresses on its new CPU. For hints with no
// migration sites the plan is exactly OOO's, by construction.
//
// The directive-plan cache needs no migration awareness: a migration is
// schedule state (a policy), not an OEMU directive, so cached plans keyed
// by (program, test, sites) stay valid across strategies.
type Migration struct{}

// Name implements Strategy.
func (Migration) Name() string { return "migration" }

// Attach implements Strategy (same history-tracking rule as OOO).
func (Migration) Attach(k *kernel.Kernel, req *Request) { OOO{}.Attach(k, req) }

// Pair implements Strategy: OOO's plan, with the policy wrapped in
// MigrateAt for migration-sensitive hints.
func (Migration) Pair(cfg *Config, req *Request) *PairPlan {
	plan, bp := oooPair(cfg, req)
	if plan == nil || len(req.Hint.Migrate) == 0 {
		return plan
	}
	ma := &sched.MigrateAt{Inner: bp, Task: bp.ToTask, ToCPU: 0}
	plan.Policy = ma
	inner := plan.Finish
	plan.Finish = func(res *Result, ta, tb *kernel.Task) {
		inner(res, ta, tb)
		res.Migrations = ma.Migrations
	}
	return plan
}

// deferredTaskID is the session task id of a spawned deferred-work handler.
// The pair session uses ids 0 (prefix), 1 (reorderer), and 2 (observer);
// the suffix runs in a separate session, so 3 is free.
const deferredTaskID = 3

// Deferred models softirq/workqueue deferral as a first-class strategy: at
// the hint's scheduling point it spawns a handler task into the running
// session instead of synchronously draining the reorderer's store buffer
// the way the InterruptOnSwitch ablation does. The handler (task 3) runs
// the drain when the scheduler picks it — after the observer and the
// resumed reorderer, in spawn order — so the reordering window stays open
// across the switch and OOO bugs remain reproducible, while the deferred
// work still executes exactly once per fired scheduling point, like a
// ksoftirqd thread scheduled behind the current work.
type Deferred struct{}

// Name implements Strategy.
func (Deferred) Name() string { return "deferred" }

// Attach implements Strategy (same history-tracking rule as OOO).
func (Deferred) Attach(k *kernel.Kernel, req *Request) { OOO{}.Attach(k, req) }

// Pair implements Strategy: OOO's plan, with the breakpoint's fire hook
// spawning the deferred handler instead of honouring InterruptOnSwitch.
func (Deferred) Pair(cfg *Config, req *Request) *PairPlan {
	plan, bp := oooPair(cfg, req)
	if plan == nil {
		return nil
	}
	spawned := 0
	plan.Arm = func(ta, _ *kernel.Task) {
		bp.OnSwitch = func() {
			st := ta.Sched()
			spawned++
			st.Session().Spawn(deferredTaskID, st.CPU, func(*sched.Task) {
				ta.Interrupt()
			})
		}
	}
	inner := plan.Finish
	plan.Finish = func(res *Result, ta, tb *kernel.Task) {
		inner(res, ta, tb)
		res.DeferredTasks = spawned
	}
	return plan
}

// Sequential is the syzkaller-baseline strategy: every program runs
// sequentially on one task, whatever the request's pair fields say.
type Sequential struct{}

// Name implements Strategy.
func (Sequential) Name() string { return "sequential" }

// Attach implements Strategy (no observers).
func (Sequential) Attach(*kernel.Kernel, *Request) {}

// Pair implements Strategy: never a concurrent stage.
func (Sequential) Pair(*Config, *Request) *PairPlan { return nil }

// Interleave is the interleaving-only baseline strategy
// (Snowboard/Razzer-style): the pair runs under a seeded random schedule
// — thread interleaving control WITHOUT memory reordering, so OOO bugs
// stay invisible (§2.3).
type Interleave struct {
	// Period is the random policy's switch period (default 2).
	Period int
}

// Name implements Strategy.
func (Interleave) Name() string { return "interleave" }

// Attach implements Strategy (no observers).
func (Interleave) Attach(*kernel.Kernel, *Request) {}

// Pair implements Strategy: calls I and J under a random schedule seeded
// from the request.
func (iv Interleave) Pair(_ *Config, req *Request) *PairPlan {
	period := iv.Period
	if period == 0 {
		period = 2
	}
	return &PairPlan{
		Policy: &sched.Random{Seed: req.Seed, Period: period},
		CallA:  req.I,
		CallB:  req.J,
	}
}

// ParseStrategy resolves a campaign-facing strategy label to the built-in
// strategy it names. The empty string selects the default OOO executor.
// Only the hypothetical-barrier family is accepted — "ooo", "migration",
// and "deferred" — because the fuzzing workflow's hint search presumes a
// breakpoint-driven MTI stage; the sequential/interleave/kcsan baselines
// are separate drivers (internal/baseline), not campaign knobs.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", "ooo":
		return OOO{}, nil
	case "migration":
		return Migration{}, nil
	case "deferred":
		return Deferred{}, nil
	}
	return nil, fmt.Errorf("unknown strategy %q (want ooo, migration, or deferred)", name)
}
