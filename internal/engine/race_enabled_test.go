//go:build race

package engine

// raceEnabled reports whether this test binary was built with -race.
// sync.Pool intentionally drops a random fraction of Puts under the race
// detector, so tests asserting exact recycle counts must relax there.
const raceEnabled = true
