package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// decodeEvents parses a JSONL buffer back into events.
func decodeEvents(t *testing.T, s string) []Event {
	t.Helper()
	var out []Event
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		out = append(out, ev)
	}
	return out
}

// TestEventOrdering pins both ordering guarantees: Seq is globally
// gap-free 1..N, and WSeq is gap-free 1..k per worker, even with
// interleaved emitters.
func TestEventOrdering(t *testing.T) {
	var sb strings.Builder
	l := NewEventLog(&sb, LevelDebug)
	l.now = func() time.Time { return time.Unix(0, 42) }
	order := []int{1, 2, 1, 0, 2, 2, 1, 0}
	for i, w := range order {
		l.Info(w, "step", map[string]any{"i": i})
	}
	evs := decodeEvents(t, sb.String())
	if len(evs) != len(order) {
		t.Fatalf("got %d events, want %d", len(evs), len(order))
	}
	wseq := map[int]uint64{}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d: Seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Worker != order[i] {
			t.Errorf("event %d: Worker = %d, want %d", i, ev.Worker, order[i])
		}
		wseq[ev.Worker]++
		if ev.WSeq != wseq[ev.Worker] {
			t.Errorf("event %d: WSeq = %d, want %d", i, ev.WSeq, wseq[ev.Worker])
		}
		if ev.TimeNS != 42 {
			t.Errorf("event %d: TimeNS = %d, want stubbed 42", i, ev.TimeNS)
		}
		if ev.Level != "info" || ev.Kind != "step" {
			t.Errorf("event %d: level/kind = %s/%s", i, ev.Level, ev.Kind)
		}
	}
}

// TestEventLevelFilter checks that below-min events are dropped before
// sequence assignment, keeping the emitted stream gap-free.
func TestEventLevelFilter(t *testing.T) {
	var sb strings.Builder
	l := NewEventLog(&sb, LevelWarn)
	l.Debug(0, "d", nil)
	l.Info(0, "i", nil)
	l.Warn(1, "w", nil)
	l.Error(1, "e", nil)
	evs := decodeEvents(t, sb.String())
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2 (debug+info dropped)", len(evs))
	}
	if evs[0].Kind != "w" || evs[0].Seq != 1 || evs[0].WSeq != 1 {
		t.Errorf("first emitted event = %+v, want warn with Seq=WSeq=1", evs[0])
	}
	if evs[1].Kind != "e" || evs[1].Seq != 2 || evs[1].WSeq != 2 {
		t.Errorf("second emitted event = %+v, want error with Seq=WSeq=2", evs[1])
	}
}

func TestEventNilSafety(t *testing.T) {
	var l *EventLog
	l.Info(0, "ignored", nil) // must not panic
	l.Debug(0, "ignored", nil)
	l.Warn(0, "ignored", nil)
	l.Error(0, "ignored", nil)
	if err := l.Err(); err != nil {
		t.Errorf("nil log Err = %v", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("nil log Close = %v", err)
	}
}

func TestEventMarshalErrorDegrades(t *testing.T) {
	var sb strings.Builder
	l := NewEventLog(&sb, LevelInfo)
	l.Info(0, "bad", map[string]any{"ch": make(chan int)})
	evs := decodeEvents(t, sb.String())
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1 degraded event", len(evs))
	}
	if _, ok := evs[0].Fields["marshal_error"]; !ok {
		t.Errorf("degraded event fields = %v, want marshal_error key", evs[0].Fields)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errors.New("disk full")
}

func TestEventWriteErrorLatches(t *testing.T) {
	w := &failWriter{}
	l := NewEventLog(w, LevelInfo)
	l.Info(0, "a", nil)
	l.Info(0, "b", nil)
	l.Info(0, "c", nil)
	if l.Err() == nil {
		t.Fatal("Err = nil after failed write")
	}
	if w.n != 1 {
		t.Errorf("writer called %d times, want 1 (log latches after first error)", w.n)
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{
		LevelDebug: "debug", LevelInfo: "info", LevelWarn: "warn", LevelError: "error",
	} {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(l), got, want)
		}
	}
	if got := Level(9).String(); got != "level(9)" {
		t.Errorf("unknown level String = %q", got)
	}
}
