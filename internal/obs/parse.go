package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label pairs
// (sorted by key, including any `le` bucket label), and the value.
type Sample struct {
	// Name is the sample name as written, e.g. "ozz_mti_pairs_total" or
	// "ozz_stage_duration_seconds_bucket".
	Name string
	// Labels holds the label pairs in sorted-key order.
	Labels []Label
	// Value is the parsed sample value.
	Value float64
}

// Label is one key="value" pair on a sample.
type Label struct {
	// Key is the label name.
	Key string
	// Value is the unescaped label value.
	Value string
}

// Get returns the value of the label named key, or "" if absent.
func (s *Sample) Get(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// ParseText parses Prometheus-style text exposition (the subset WriteText
// emits: HELP/TYPE comments, sample lines with optional {labels}) and
// returns the samples in input order. It exists so tests can round-trip
// the exposition and so operators can post-process scrapes without
// external tooling; it is not a general-purpose Prometheus parser.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSampleLine parses `name{k="v",...} value` or `name value`.
func parseSampleLine(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	sort.Slice(s.Labels, func(i, j int) bool { return s.Labels[i].Key < s.Labels[j].Key })
	return s, nil
}

// parseLabels parses the inside of a {...} label set.
func parseLabels(in string) ([]Label, error) {
	var out []Label
	for len(in) > 0 {
		eq := strings.Index(in, "=")
		if eq < 0 {
			return nil, fmt.Errorf("malformed labels %q", in)
		}
		key := strings.TrimSpace(in[:eq])
		in = in[eq+1:]
		if !strings.HasPrefix(in, `"`) {
			return nil, fmt.Errorf("unquoted label value after %s", key)
		}
		val, rest, err := unquotePrefix(in)
		if err != nil {
			return nil, err
		}
		out = append(out, Label{Key: key, Value: val})
		in = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		in = strings.TrimSpace(in)
	}
	return out, nil
}

// unquotePrefix consumes one Go-style quoted string from the front of in,
// returning its unescaped value and the remainder.
func unquotePrefix(in string) (val, rest string, err error) {
	for i := 1; i < len(in); i++ {
		switch in[i] {
		case '\\':
			i++ // skip escaped char
		case '"':
			v, err := strconv.Unquote(in[:i+1])
			if err != nil {
				return "", "", err
			}
			return v, in[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value %q", in)
}
