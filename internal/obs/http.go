package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving reg's text exposition at
// /metrics and the net/http/pprof endpoints under /debug/pprof/ —
// one mux covers both scraping and live profiling, per the ROADMAP's
// "observe before you optimize" rule.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write([]byte("ozz observability: /metrics, /debug/pprof/\n"))
	})
	return mux
}

// Serve starts an HTTP server for reg on addr (e.g. "127.0.0.1:9100";
// ":0" picks a free port) in a background goroutine. It returns the bound
// address and a shutdown func. The server lives until stop is called or
// the process exits; campaign code treats it as fire-and-forget.
func Serve(addr string, reg *Registry) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(reg)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
