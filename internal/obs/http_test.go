package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ozz_mti_pairs_total", "MTI pairs.").Add(5)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "ozz_mti_pairs_total 5") {
		t.Errorf("body missing sample:\n%s", body)
	}
}

func TestHandlerPprofAndBanner(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry()))
	defer srv.Close()
	for path, want := range map[string]int{
		"/debug/pprof/": 200,
		"/":             200,
		"/nope":         404,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("ozz_up", "Liveness.").Set(1)
	bound, stop, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "ozz_up 1") {
		t.Errorf("served body missing gauge:\n%s", body)
	}
}
