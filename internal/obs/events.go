package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Level classifies events by severity for filtering.
type Level int

// The levels, in increasing severity. LevelInfo is the default log floor.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name used in the JSONL envelope.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// Event is one JSONL record in a campaign event log. Ordering guarantees:
// Seq is a strictly increasing global sequence across the whole log, and
// WSeq is strictly increasing per Worker — so a reader can reconstruct
// both the global emission order and every worker's private timeline.
type Event struct {
	// Seq is the global emission index (1-based, gap-free).
	Seq uint64 `json:"seq"`
	// Worker identifies the emitting worker (0 = campaign
	// coordinator / single-threaded driver, 1..N = pool workers).
	Worker int `json:"worker"`
	// WSeq is the per-worker emission index (1-based, gap-free per worker).
	WSeq uint64 `json:"wseq"`
	// TimeNS is the wall-clock emission time in Unix nanoseconds.
	// Wall-clock, so non-deterministic across runs.
	TimeNS int64 `json:"t_ns"`
	// Level is the severity name ("debug"/"info"/"warn"/"error").
	Level string `json:"level"`
	// Kind names the event type (e.g. "step", "campaign_start", "crash").
	Kind string `json:"kind"`
	// Fields carries the event-specific payload, or null when empty.
	Fields map[string]any `json:"fields,omitempty"`
}

// EventLog writes structured campaign events as one JSON object per line
// (JSONL). All methods are safe for concurrent use and are no-ops on a
// nil receiver, so instrumented code never needs a nil check.
type EventLog struct {
	mu   sync.Mutex
	w    io.Writer
	min  Level
	seq  uint64
	wseq map[int]uint64
	err  error
	// now is stubbed in tests; defaults to time.Now.
	now func() time.Time
}

// NewEventLog returns an event log writing JSONL to w, dropping events
// below min. The log serializes writes internally; w need not be
// concurrency-safe.
func NewEventLog(w io.Writer, min Level) *EventLog {
	return &EventLog{w: w, min: min, wseq: make(map[int]uint64), now: time.Now}
}

// Emit writes one event for worker at the given level. fields is marshaled
// as-is (values must be JSON-encodable); a nil map is omitted. Events
// below the log's minimum level are dropped before sequence numbers are
// assigned, so Seq/WSeq stay gap-free over the emitted stream.
func (l *EventLog) Emit(worker int, level Level, kind string, fields map[string]any) {
	if l == nil || level < l.min {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	l.seq++
	l.wseq[worker]++
	ev := Event{
		Seq:    l.seq,
		Worker: worker,
		WSeq:   l.wseq[worker],
		TimeNS: l.now().UnixNano(),
		Level:  level.String(),
		Kind:   kind,
		Fields: fields,
	}
	b, err := json.Marshal(&ev)
	if err != nil {
		// Unencodable fields: degrade to an error event rather than
		// losing the slot silently.
		ev.Fields = map[string]any{"marshal_error": err.Error()}
		b, _ = json.Marshal(&ev)
	}
	b = append(b, '\n')
	if _, err := l.w.Write(b); err != nil {
		l.err = err
	}
}

// Debug emits a LevelDebug event (nil-safe).
func (l *EventLog) Debug(worker int, kind string, fields map[string]any) {
	l.Emit(worker, LevelDebug, kind, fields)
}

// Info emits a LevelInfo event (nil-safe).
func (l *EventLog) Info(worker int, kind string, fields map[string]any) {
	l.Emit(worker, LevelInfo, kind, fields)
}

// Warn emits a LevelWarn event (nil-safe).
func (l *EventLog) Warn(worker int, kind string, fields map[string]any) {
	l.Emit(worker, LevelWarn, kind, fields)
}

// Error emits a LevelError event (nil-safe).
func (l *EventLog) Error(worker int, kind string, fields map[string]any) {
	l.Emit(worker, LevelError, kind, fields)
}

// Err returns the first write error encountered, if any. After a write
// error the log drops all further events.
func (l *EventLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes and closes the underlying writer when it implements the
// corresponding interfaces. Nil-safe.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	type flusher interface{ Flush() error }
	if f, ok := l.w.(flusher); ok {
		if err := f.Flush(); err != nil && l.err == nil {
			l.err = err
		}
	}
	if c, ok := l.w.(io.Closer); ok {
		if err := c.Close(); err != nil && l.err == nil {
			l.err = err
		}
	}
	return l.err
}
