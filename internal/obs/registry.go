// Package obs is the campaign observability layer: a dependency-free
// metrics registry (atomic counters, gauges, and fixed-bucket latency
// histograms with a Prometheus-style text exposition), a structured JSONL
// campaign event log with per-worker ordering guarantees, and an HTTP
// handler that serves the exposition next to net/http/pprof.
//
// Design rules, in force everywhere the package is used:
//
//   - Instrumentation is observation only. Incrementing a metric or
//     emitting an event never influences execution, RNG streams, or any
//     deterministic campaign counter — the engine conformance goldens hold
//     with observability on or off.
//   - Metric values are wall-clock- and scheduling-dependent (like
//     core.PerfStats); they vary run to run and must never be asserted
//     byte-identical across worker counts.
//   - Registration is get-or-create: asking twice for the same name
//     returns the same metric, so independent subsystems (engine, fuzzer,
//     pool) can share one registry without coordination. Re-registering a
//     name as a different type or label set panics — that is a programming
//     error, not a runtime condition.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// mathFloat64bits/frombits alias the stdlib conversions; gauges and
// histogram sums store float64 values inside atomic.Uint64 cells.
func mathFloat64bits(v float64) uint64     { return math.Float64bits(v) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }

// metricKind discriminates the registered metric families.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// expoName returns the TYPE keyword used in the text exposition.
func (k metricKind) expoName() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing uint64 metric, safe for concurrent
// use. Unless the metric's help text says otherwise the unit is "events"
// (a plain occurrence count).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n is a delta; counters never decrease).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down (sizes, rates, widths),
// safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(mathFloat64bits(v)) }

// Add adds delta to the gauge value (CAS loop; safe concurrently).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := mathFloat64bits(mathFloat64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return mathFloat64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution metric, safe for concurrent
// use. A bucket with upper bound `le` counts observations v <= le
// (inclusive, Prometheus semantics); observations beyond the last bound
// land in the implicit +Inf bucket. Bounds are set at registration and
// never change, so merging histograms is bucket-wise addition.
type Histogram struct {
	// upper holds the finite bucket upper bounds, strictly increasing.
	upper []float64
	// counts has len(upper)+1 slots; the last is the +Inf bucket.
	counts []atomic.Uint64
	// sumBits accumulates the sum of observed values (float64 bits).
	sumBits atomic.Uint64
	// count is the total number of observations.
	count atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not strictly increasing at %d: %v", i, buckets))
		}
	}
	up := make([]float64, len(buckets))
	copy(up, buckets)
	return &Histogram{upper: up, counts: make([]atomic.Uint64, len(up)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v, i.e. v <= upper[i]
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := mathFloat64bits(mathFloat64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return mathFloat64frombits(h.sumBits.Load()) }

// Buckets returns the finite upper bounds (a copy).
func (h *Histogram) Buckets() []float64 {
	out := make([]float64, len(h.upper))
	copy(out, h.upper)
	return out
}

// BucketCount returns the non-cumulative count of bucket i, where
// i == len(Buckets()) addresses the +Inf bucket.
func (h *Histogram) BucketCount(i int) uint64 { return h.counts[i].Load() }

// Merge adds other's observations into h. The bucket bounds must be
// identical; Merge returns an error (and changes nothing) otherwise.
func (h *Histogram) Merge(other *Histogram) error {
	if len(h.upper) != len(other.upper) {
		return fmt.Errorf("obs: merge of histograms with %d vs %d buckets", len(h.upper), len(other.upper))
	}
	for i := range h.upper {
		if h.upper[i] != other.upper[i] {
			return fmt.Errorf("obs: merge of histograms with mismatched bound %d: %v vs %v", i, h.upper[i], other.upper[i])
		}
	}
	for i := range other.counts {
		h.counts[i].Add(other.counts[i].Load())
	}
	h.count.Add(other.count.Load())
	for {
		old := h.sumBits.Load()
		next := mathFloat64bits(mathFloat64frombits(old) + other.Sum())
		if h.sumBits.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// DurationBuckets is the default latency histogram layout: exponential
// bounds from 1µs to 4s, in seconds — wide enough for both a single
// simulated kernel execution and a whole campaign batch.
func DurationBuckets() []float64 {
	return []float64{1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 0.25, 1, 4}
}

// family is one registered metric name: its metadata plus its children
// (one per distinct label-value combination; a single "" child for
// label-less metrics).
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64

	mu       sync.Mutex
	children map[string]any // child key -> *Counter | *Gauge | *Histogram
}

// childKey joins label values into the map key. \xff cannot appear in
// sane label values, so the join is unambiguous.
func childKey(values []string) string { return strings.Join(values, "\xff") }

// child returns (creating if needed) the metric for the label values.
func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		m = newHistogram(f.buckets)
	}
	f.children[key] = m
	return m
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first
// use). The result can be cached by callers on hot paths.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values (created on first use).
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values (created on first
// use). The result can be cached by callers on hot paths.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// Registry holds named metric families and renders them in the
// Prometheus text exposition format. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns (creating if needed) the family, enforcing that a name is
// only ever registered with one kind and label set.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with different type or labels", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]any),
	}
	r.families[name] = f
	return f
}

// Counter returns (registering on first use) the label-less counter name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter, nil, nil).child(nil).(*Counter)
}

// CounterVec returns (registering on first use) the labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, kindCounter, labels, nil)}
}

// Gauge returns (registering on first use) the label-less gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge, nil, nil).child(nil).(*Gauge)
}

// GaugeVec returns (registering on first use) the labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, kindGauge, labels, nil)}
}

// Histogram returns (registering on first use) the label-less histogram
// name with the given bucket upper bounds.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.lookup(name, help, kindHistogram, nil, buckets).child(nil).(*Histogram)
}

// HistogramVec returns (registering on first use) the labeled histogram
// family with the given bucket upper bounds.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.lookup(name, help, kindHistogram, labels, buckets)}
}

// Names returns the registered metric family names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// formatFloat renders a value the way the exposition (and the parser)
// expects: shortest representation that round-trips.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// labelString renders {k="v",...} for a child, with extra appended last
// (used for histogram `le`). Returns "" when there are no labels at all.
func labelString(keys []string, values []string, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, values[i])
	}
	if extraKey != "" {
		if len(keys) > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", extraKey, extraVal)
	}
	sb.WriteByte('}')
	return sb.String()
}

// WriteText renders every registered family in the Prometheus text
// exposition format (HELP/TYPE headers, then one sample line per child;
// histograms expand to cumulative _bucket series plus _sum and _count).
// Families and children are emitted in sorted order, so the output for a
// given metric state is deterministic.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind.expoName()); err != nil {
			return err
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		type kv struct {
			values []string
			m      any
		}
		kids := make([]kv, len(keys))
		for i, k := range keys {
			var vals []string
			if k != "" || len(f.labels) > 0 {
				vals = strings.Split(k, "\xff")
			}
			kids[i] = kv{values: vals, m: f.children[k]}
		}
		f.mu.Unlock()
		for _, kid := range kids {
			if err := writeChild(w, f, kid.values, kid.m); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeChild renders one child's sample lines.
func writeChild(w io.Writer, f *family, values []string, m any) error {
	switch c := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), c.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(c.Value()))
		return err
	case *Histogram:
		cum := uint64(0)
		for i, le := range c.upper {
			cum += c.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "le", formatFloat(le)), cum); err != nil {
				return err
			}
		}
		cum += c.counts[len(c.upper)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(c.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), c.count.Load())
		return err
	}
	return nil
}
