package obs

import (
	"strings"
	"testing"
)

// TestParseRoundTrip feeds WriteText output through ParseText and checks
// every sample survives with its labels and value intact.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("ozz_runs_total", "Total runs.").Add(12)
	r.Gauge("ozz_workers", "Pool width.").Set(4)
	h := r.Histogram("ozz_dur_seconds", "Durations.", []float64{0.25, 1})
	h.Observe(0.1)
	h.Observe(0.1)
	h.Observe(2)
	v := r.CounterVec("ozz_crashes_total", "Crashes.", "strategy", "shape")
	v.With("ooo", "pair").Add(3)
	v.With(`we"ird`, `va\lue`).Inc() // exercise label escaping

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}

	byKey := map[string]Sample{}
	for _, s := range samples {
		key := s.Name
		for _, l := range s.Labels {
			key += "|" + l.Key + "=" + l.Value
		}
		byKey[key] = s
	}
	checks := map[string]float64{
		"ozz_runs_total": 12,
		"ozz_workers":    4,
		"ozz_crashes_total|shape=pair|strategy=ooo":      3,
		`ozz_crashes_total|shape=va\lue|strategy=we"ird`: 1,
		"ozz_dur_seconds_bucket|le=0.25":                 2,
		"ozz_dur_seconds_bucket|le=1":                    2,
		"ozz_dur_seconds_bucket|le=+Inf":                 3,
		"ozz_dur_seconds_count":                          3,
	}
	for key, want := range checks {
		s, ok := byKey[key]
		if !ok {
			t.Errorf("sample %q missing from parse; have %v", key, sortedKeys(byKey))
			continue
		}
		if s.Value != want {
			t.Errorf("sample %q = %v, want %v", key, s.Value, want)
		}
	}
	// _sum round-trips approximately (float formatting is exact, so ==).
	if s, ok := byKey["ozz_dur_seconds_sum"]; !ok || s.Value != 0.1+0.1+2 {
		t.Errorf("ozz_dur_seconds_sum = %v (ok=%v), want %v", s.Value, ok, 0.1+0.1+2)
	}
}

func sortedKeys(m map[string]Sample) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestSampleGet(t *testing.T) {
	s := Sample{Labels: []Label{{Key: "le", Value: "+Inf"}, {Key: "strategy", Value: "ooo"}}}
	if got := s.Get("strategy"); got != "ooo" {
		t.Errorf(`Get("strategy") = %q`, got)
	}
	if got := s.Get("absent"); got != "" {
		t.Errorf(`Get("absent") = %q, want ""`, got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"justaname",
		`ozz_x{le="1" 3`,
		`ozz_x{le=1} 3`,
		"ozz_x notanumber",
	} {
		if _, err := ParseText(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("ParseText(%q): want error", bad)
		}
	}
	// Comments and blank lines are skipped.
	samples, err := ParseText(strings.NewReader("# HELP x y\n\n# TYPE x counter\nx 1\n"))
	if err != nil || len(samples) != 1 {
		t.Fatalf("ParseText with comments: %v, %d samples", err, len(samples))
	}
}
