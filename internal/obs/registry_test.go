package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ozz_test_total", "test counter")
	if c.Value() != 0 {
		t.Fatalf("fresh counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	// Get-or-create: same name returns the same metric.
	if c2 := r.Counter("ozz_test_total", "test counter"); c2 != c {
		t.Fatal("re-registering a counter returned a different instance")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("ozz_test_gauge", "test gauge")
	g.Set(2.5)
	g.Add(-1.25)
	if got := g.Value(); got != 1.25 {
		t.Fatalf("gauge = %v, want 1.25", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge = %v, want -7", got)
	}
}

// TestHistogramBoundaries pins the le-inclusive Prometheus bucket
// semantics: an observation exactly on a bound lands in that bound's
// bucket, and values beyond the last bound land in +Inf.
func TestHistogramBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ozz_test_seconds", "test histogram", []float64{1, 2, 4})
	cases := []struct {
		v    float64
		want int // bucket index
	}{
		{0.5, 0},
		{1, 0},      // exactly on bound 1 -> le="1"
		{1.0001, 1}, // just above -> le="2"
		{2, 1},
		{3, 2},
		{4, 2},
		{4.5, 3},         // +Inf
		{math.Inf(1), 3}, // +Inf
		{-1, 0},          // below the first bound still counts in le="1"
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	wantCounts := make([]uint64, 4)
	for _, c := range cases {
		wantCounts[c.want]++
	}
	for i, want := range wantCounts {
		if got := h.BucketCount(i); got != want {
			t.Errorf("bucket %d count = %d, want %d", i, got, want)
		}
	}
	if got := h.Count(); got != uint64(len(cases)) {
		t.Errorf("Count = %d, want %d", got, len(cases))
	}
	wantSum := 0.0
	for _, c := range cases {
		wantSum += c.v
	}
	if got := h.Sum(); got != wantSum {
		t.Errorf("Sum = %v, want %v", got, wantSum)
	}
	if got := h.Buckets(); len(got) != 3 || got[0] != 1 || got[2] != 4 {
		t.Errorf("Buckets = %v, want [1 2 4]", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := newHistogram([]float64{1, 2})
	b := newHistogram([]float64{1, 2})
	a.Observe(0.5)
	a.Observe(3)
	b.Observe(1.5)
	b.Observe(1.5)
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if got := a.Count(); got != 4 {
		t.Errorf("merged Count = %d, want 4", got)
	}
	if got := a.BucketCount(1); got != 2 {
		t.Errorf("merged bucket 1 = %d, want 2", got)
	}
	if got := a.Sum(); got != 0.5+3+1.5+1.5 {
		t.Errorf("merged Sum = %v, want 6.5", got)
	}
}

func TestHistogramMergeMismatch(t *testing.T) {
	a := newHistogram([]float64{1, 2})
	a.Observe(0.5)
	if err := a.Merge(newHistogram([]float64{1, 2, 3})); err == nil {
		t.Error("Merge with different bucket count: want error")
	}
	if err := a.Merge(newHistogram([]float64{1, 3})); err == nil {
		t.Error("Merge with different bounds: want error")
	}
	// A failed merge changes nothing.
	if got := a.Count(); got != 1 {
		t.Errorf("Count after failed merges = %d, want 1", got)
	}
}

func TestHistogramBadBucketsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-increasing buckets: want panic")
		}
	}()
	newHistogram([]float64{1, 1})
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ozz_test_labeled_total", "labeled", "strategy")
	v.With("ooo").Add(3)
	v.With("sequential").Inc()
	if got := v.With("ooo").Value(); got != 3 {
		t.Errorf(`With("ooo") = %d, want 3`, got)
	}
	if v.With("ooo") != v.With("ooo") {
		t.Error("With returned different instances for the same label value")
	}
	hv := r.HistogramVec("ozz_test_labeled_seconds", "labeled hist", []float64{1}, "stage")
	hv.With("profile").Observe(0.5)
	if got := hv.With("profile").Count(); got != 1 {
		t.Errorf("labeled histogram Count = %d, want 1", got)
	}
	gv := r.GaugeVec("ozz_test_labeled_gauge", "labeled gauge", "k")
	gv.With("a").Set(9)
	if got := gv.With("a").Value(); got != 9 {
		t.Errorf("labeled gauge = %v, want 9", got)
	}
}

func TestReRegisterMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ozz_test_total", "x")
	for name, f := range map[string]func(){
		"kind":       func() { r.Gauge("ozz_test_total", "x") },
		"labels":     func() { r.CounterVec("ozz_test_total", "x", "strategy") },
		"label name": func() { r.CounterVec("ozz_test_labels_total", "x", "b") },
	} {
		r.CounterVec("ozz_test_labels_total", "x", "a")
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("re-register with different %s: want panic", name)
				}
			}()
			f()
		}()
	}
}

func TestWrongLabelCountPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ozz_test_total", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("With with wrong arity: want panic")
		}
	}()
	v.With("only-one")
}

// TestConcurrentIncrements exercises every metric type from many
// goroutines; run with -race this doubles as the data-race check.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ozz_test_total", "c")
	g := r.Gauge("ozz_test_gauge", "g")
	h := r.Histogram("ozz_test_seconds", "h", DurationBuckets())
	v := r.CounterVec("ozz_test_labeled_total", "v", "worker")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w))
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(1e-3)
				v.With(lbl).Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %v, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	for w := 0; w < workers; w++ {
		if got := v.With(string(rune('a' + w))).Value(); got != per {
			t.Errorf("child %d = %d, want %d", w, got, per)
		}
	}
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("ozz_b_total", "b")
	r.Gauge("ozz_a_gauge", "a")
	got := r.Names()
	if len(got) != 2 || got[0] != "ozz_a_gauge" || got[1] != "ozz_b_total" {
		t.Fatalf("Names = %v, want sorted [ozz_a_gauge ozz_b_total]", got)
	}
}

// TestWriteTextGolden pins the exposition format byte-for-byte for one
// representative state of each metric kind.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("ozz_runs_total", "Total runs.").Add(7)
	r.Gauge("ozz_width", "Worker width.").Set(2.5)
	h := r.Histogram("ozz_dur_seconds", "Run duration.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	v := r.CounterVec("ozz_crashes_total", "Crashes by strategy.", "strategy")
	v.With("ooo").Add(2)
	v.With("kcsan").Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP ozz_crashes_total Crashes by strategy.
# TYPE ozz_crashes_total counter
ozz_crashes_total{strategy="kcsan"} 1
ozz_crashes_total{strategy="ooo"} 2
# HELP ozz_dur_seconds Run duration.
# TYPE ozz_dur_seconds histogram
ozz_dur_seconds_bucket{le="0.1"} 2
ozz_dur_seconds_bucket{le="1"} 3
ozz_dur_seconds_bucket{le="+Inf"} 4
ozz_dur_seconds_sum 5.6
ozz_dur_seconds_count 4
# HELP ozz_runs_total Total runs.
# TYPE ozz_runs_total counter
ozz_runs_total 7
# HELP ozz_width Worker width.
# TYPE ozz_width gauge
ozz_width 2.5
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestDurationBucketsIncreasing(t *testing.T) {
	b := DurationBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("DurationBuckets not strictly increasing at %d: %v", i, b)
		}
	}
}
