package trace

import (
	"strings"
	"testing"
)

func TestBarrierKindProperties(t *testing.T) {
	cases := []struct {
		kind          BarrierKind
		stores, loads bool
		name          string
	}{
		{BarrierFull, true, true, "smp_mb"},
		{BarrierStore, true, false, "smp_wmb"},
		{BarrierLoad, false, true, "smp_rmb"},
		{BarrierRelease, true, false, "smp_store_release"},
		{BarrierAcquire, false, true, "smp_load_acquire"},
	}
	for _, c := range cases {
		if c.kind.OrdersStores() != c.stores {
			t.Errorf("%s.OrdersStores() = %v", c.name, !c.stores)
		}
		if c.kind.OrdersLoads() != c.loads {
			t.Errorf("%s.OrdersLoads() = %v", c.name, !c.loads)
		}
		if c.kind.String() != c.name {
			t.Errorf("String() = %q, want %q", c.kind.String(), c.name)
		}
	}
}

func TestAccessKindAndAtomicityStrings(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Error("AccessKind strings broken")
	}
	for a, want := range map[Atomicity]string{
		Plain: "plain", Once: "once", Atomic: "atomic",
		AtomicAcquire: "acquire", AtomicRelease: "release",
	} {
		if a.String() != want {
			t.Errorf("%v.String() = %q", a, a.String())
		}
	}
}

func TestBufferRoundTrip(t *testing.T) {
	var b Buffer
	b.RecordAccess(AccessEvent{Instr: 1, Addr: 0x10, Kind: Store, Size: 8, Time: 5})
	b.RecordBarrier(BarrierEvent{Instr: 2, Kind: BarrierStore, Time: 6})
	b.RecordAccess(AccessEvent{Instr: 3, Addr: 0x18, Kind: Load, Size: 8, Time: 7})
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	if accs := b.Accesses(); len(accs) != 2 || accs[0].Instr != 1 || accs[1].Kind != Load {
		t.Fatalf("Accesses = %v", accs)
	}
	if bars := b.Barriers(); len(bars) != 1 || bars[0].Kind != BarrierStore {
		t.Fatalf("Barriers = %v", bars)
	}
	clone := b.Clone()
	b.Reset()
	if b.Len() != 0 || len(clone) != 3 {
		t.Fatalf("Reset/Clone interplay broken: %d / %d", b.Len(), len(clone))
	}
}

func TestEventAccessors(t *testing.T) {
	acc := Event{Acc: AccessEvent{Instr: 7, Addr: 0x20, Kind: Store, Time: 11}}
	bar := Event{Barrier: true, Bar: BarrierEvent{Instr: 8, Kind: BarrierLoad, Time: 12}}
	if acc.Instr() != 7 || acc.Time() != 11 {
		t.Error("access accessors broken")
	}
	if bar.Instr() != 8 || bar.Time() != 12 {
		t.Error("barrier accessors broken")
	}
	if !strings.Contains(acc.String(), "store") || !strings.Contains(bar.String(), "smp_rmb") {
		t.Errorf("String: %q / %q", acc, bar)
	}
}

func TestBufferDump(t *testing.T) {
	var b Buffer
	b.RecordAccess(AccessEvent{Instr: 1, Addr: 0x10, Kind: Load})
	b.RecordBarrier(BarrierEvent{Instr: 2, Kind: BarrierFull})
	dump := b.Dump()
	if !strings.Contains(dump, "load") || !strings.Contains(dump, "smp_mb") {
		t.Errorf("Dump = %q", dump)
	}
}
