// Package trace defines the event model OZZ's profiler records while a
// single-threaded input executes (§4.2 of the paper).
//
// Every instrumented memory access is recorded as a five-tuple — instruction
// address, accessed memory location, access size, access kind (load/store),
// and timestamp — and every memory barrier as a three-tuple — instruction
// address, barrier kind, and timestamp. OZZ's scheduling-hint calculation
// (Algorithm 1) consumes these sequences.
package trace

import (
	"fmt"
	"strings"
)

// InstrID identifies a static instruction site carrying a memory access or a
// memory barrier. It plays the role of the instruction address the paper's
// LLVM pass records: each access site in a simulated kernel module is
// assigned a unique, stable InstrID at module registration time.
type InstrID uint64

// NoInstr is the zero InstrID, used where no instruction site applies.
const NoInstr InstrID = 0

// Addr is an address in the simulated kernel memory. The simulated memory is
// word-addressed: every Addr names one 64-bit slot.
type Addr uint64

// AccessKind distinguishes loads from stores.
type AccessKind uint8

const (
	// Load is a memory read.
	Load AccessKind = iota
	// Store is a memory write.
	Store
)

// String returns "load" or "store".
func (k AccessKind) String() string {
	if k == Load {
		return "load"
	}
	return "store"
}

// Atomicity describes the annotation on an access, which decides its
// ordering side effects under the LKMM (§10.1 of the paper).
type Atomicity uint8

const (
	// Plain is an unannotated access. Plain loads may be reordered with
	// other plain loads even across address dependencies (the Alpha rule).
	Plain Atomicity = iota
	// Once is READ_ONCE()/WRITE_ONCE(). A Once load acts as a load barrier
	// for subsequent dependent loads (LKMM Case 6); a Once store has no
	// ordering effect (Table 1: "Relaxed").
	Once
	// Atomic is an atomic RMW operation without acquire/release semantics
	// (e.g. test_and_set_bit, clear_bit). Like Once, an Atomic load side
	// acts as a load barrier for subsequent loads.
	Atomic
	// AtomicAcquire is an atomic or plain load with acquire semantics
	// (smp_load_acquire, test_and_set_bit_lock).
	AtomicAcquire
	// AtomicRelease is an atomic or plain store with release semantics
	// (smp_store_release, clear_bit_unlock).
	AtomicRelease

	// NumAtomicities is the number of Atomicity values; enumeration and
	// exhaustiveness checks (internal/memmodel) iterate [0, NumAtomicities).
	NumAtomicities = int(AtomicRelease) + 1
)

// AllAtomicities lists every Atomicity value in declaration order, for
// table-driven exhaustiveness tests.
func AllAtomicities() []Atomicity {
	out := make([]Atomicity, NumAtomicities)
	for i := range out {
		out[i] = Atomicity(i)
	}
	return out
}

// String returns a short human-readable name.
func (a Atomicity) String() string {
	switch a {
	case Plain:
		return "plain"
	case Once:
		return "once"
	case Atomic:
		return "atomic"
	case AtomicAcquire:
		return "acquire"
	case AtomicRelease:
		return "release"
	}
	return fmt.Sprintf("atomicity(%d)", uint8(a))
}

// ActsAsLoadBarrier reports whether a LOAD with this annotation orders
// subsequent loads after itself — the two dependency cases of the LKMM's
// preserved program order (§10.1): an acquire load (Case 4) and an
// annotated load (READ_ONCE / atomic RMW, Case 6, the conservative
// address-dependency rule). OEMU advances the versioning window after such
// loads; the reference model (internal/lkmm/model) and the
// hypothetical-barrier test (internal/hints) share this predicate so all
// three agree on which loads pin the window. This is the LKMM reading;
// other memory models override it via internal/memmodel tables.
func (a Atomicity) ActsAsLoadBarrier() bool {
	return a == Once || a == Atomic || a == AtomicAcquire
}

// IsRelease reports whether a STORE with this annotation orders all
// precedent accesses before itself (LKMM Case 5: smp_store_release,
// clear_bit_unlock). A release store drains the virtual store buffer and
// is never itself delayed.
func (a Atomicity) IsRelease() bool { return a == AtomicRelease }

// BarrierKind enumerates the memory barriers of Table 1.
type BarrierKind uint8

const (
	// BarrierFull is smp_mb(): orders all precedent loads/stores against
	// all subsequent loads/stores.
	BarrierFull BarrierKind = iota
	// BarrierLoad is smp_rmb(): orders precedent loads against subsequent
	// loads.
	BarrierLoad
	// BarrierStore is smp_wmb(): orders precedent stores against
	// subsequent stores.
	BarrierStore
	// BarrierAcquire is the ordering half of smp_load_acquire(): the
	// annotated load is ordered before all subsequent loads/stores.
	BarrierAcquire
	// BarrierRelease is the ordering half of smp_store_release(): all
	// precedent loads/stores are ordered before the annotated store.
	BarrierRelease

	// NumBarrierKinds is the number of BarrierKind values; enumeration and
	// exhaustiveness checks (internal/memmodel) iterate [0, NumBarrierKinds).
	NumBarrierKinds = int(BarrierRelease) + 1
)

// AllBarrierKinds lists every BarrierKind value in declaration order, for
// table-driven exhaustiveness tests.
func AllBarrierKinds() []BarrierKind {
	out := make([]BarrierKind, NumBarrierKinds)
	for i := range out {
		out[i] = BarrierKind(i)
	}
	return out
}

// String returns the Linux API name for the barrier.
func (b BarrierKind) String() string {
	switch b {
	case BarrierFull:
		return "smp_mb"
	case BarrierLoad:
		return "smp_rmb"
	case BarrierStore:
		return "smp_wmb"
	case BarrierAcquire:
		return "smp_load_acquire"
	case BarrierRelease:
		return "smp_store_release"
	}
	return fmt.Sprintf("barrier(%d)", uint8(b))
}

// OrdersStores reports whether the barrier forbids delaying precedent stores
// past it (store buffer flush points: store, full, and release barriers).
func (b BarrierKind) OrdersStores() bool {
	return b == BarrierFull || b == BarrierStore || b == BarrierRelease
}

// OrdersLoads reports whether the barrier forbids subsequent loads from
// reading values older than the barrier point (versioning-window reset
// points: load, full, and acquire barriers).
func (b BarrierKind) OrdersLoads() bool {
	return b == BarrierFull || b == BarrierLoad || b == BarrierAcquire
}

// AccessEvent is the five-tuple recorded for a memory access (§4.2).
type AccessEvent struct {
	Instr  InstrID
	Addr   Addr
	Size   uint8 // bytes; the simulated memory is word-addressed so this is 8
	Kind   AccessKind
	Atomic Atomicity
	Time   uint64 // logical timestamp at which the access executed
	// NoYield marks the store half of a read-modify-write operation: it
	// shares its scheduling point with the load half (an RMW is
	// indivisible), so occurrence counting for breakpoints must not count
	// it separately.
	NoYield bool
	// PerCPU marks an access to memory obtained from a per-CPU allocation
	// (kernel.PerCPUAlloc). Hint calculation uses it to classify a racing
	// pair as migration-sensitive: a pair sharing per-CPU locations only
	// races when one thread migrates between resolving the address and
	// using it (Table 4 #6).
	PerCPU bool
}

// BarrierEvent is the three-tuple recorded for a memory barrier (§4.2).
type BarrierEvent struct {
	Instr InstrID
	Kind  BarrierKind
	Time  uint64
	// Implicit marks ordering that is not a source-level barrier call:
	// the load-barrier effect of an annotated load (READ_ONCE/atomic,
	// LKMM Case 6) and the full fences inside value-returning atomic
	// RMW operations. OEMU and Algorithm 1 honour them like any barrier;
	// a source-level static analysis (OFence, §6.4) cannot see them.
	Implicit bool
	// Atomic is the annotation of the access that induced an implicit
	// barrier (zero for source-level barrier calls). Whether such an
	// annotation really orders anything is model-relative — LKMM's Case 6
	// makes READ_ONCE a load barrier, ARMv8's does not — so the hint layer
	// re-derives the effect from the active memmodel.Table instead of
	// trusting Kind alone.
	Atomic Atomicity
}

// Event is one profiled event: either a memory access or a memory barrier.
type Event struct {
	Barrier bool
	Acc     AccessEvent // valid when !Barrier
	Bar     BarrierEvent
}

// Instr returns the instruction site of the event regardless of its kind.
func (e Event) Instr() InstrID {
	if e.Barrier {
		return e.Bar.Instr
	}
	return e.Acc.Instr
}

// Time returns the logical timestamp of the event regardless of its kind.
func (e Event) Time() uint64 {
	if e.Barrier {
		return e.Bar.Time
	}
	return e.Acc.Time
}

// String renders the event compactly, e.g. "store@12 0x40=…" or "smp_wmb@7".
func (e Event) String() string {
	if e.Barrier {
		return fmt.Sprintf("%s@%d", e.Bar.Kind, e.Bar.Instr)
	}
	return fmt.Sprintf("%s(%s)@%d addr=0x%x", e.Acc.Kind, e.Acc.Atomic, e.Acc.Instr, uint64(e.Acc.Addr))
}

// Buffer accumulates the profiled events of one task executing one system
// call. It is append-only and owned by a single task.
type Buffer struct {
	Events []Event
}

// RecordAccess appends an access five-tuple.
func (b *Buffer) RecordAccess(a AccessEvent) {
	b.Events = append(b.Events, Event{Acc: a})
}

// RecordBarrier appends a barrier three-tuple.
func (b *Buffer) RecordBarrier(ev BarrierEvent) {
	b.Events = append(b.Events, Event{Barrier: true, Bar: ev})
}

// Reset drops all recorded events while keeping the backing storage.
func (b *Buffer) Reset() {
	b.Events = b.Events[:0]
}

// Len returns the number of recorded events.
func (b *Buffer) Len() int { return len(b.Events) }

// Accesses returns only the access events, in order.
func (b *Buffer) Accesses() []AccessEvent {
	out := make([]AccessEvent, 0, len(b.Events))
	for _, e := range b.Events {
		if !e.Barrier {
			out = append(out, e.Acc)
		}
	}
	return out
}

// Barriers returns only the barrier events, in order.
func (b *Buffer) Barriers() []BarrierEvent {
	var out []BarrierEvent
	for _, e := range b.Events {
		if e.Barrier {
			out = append(out, e.Bar)
		}
	}
	return out
}

// Clone returns a deep copy of the buffer's events.
func (b *Buffer) Clone() []Event {
	out := make([]Event, len(b.Events))
	copy(out, b.Events)
	return out
}

// Dump renders all events one per line, for debugging and reports.
func (b *Buffer) Dump() string {
	var sb strings.Builder
	for i, e := range b.Events {
		fmt.Fprintf(&sb, "%3d: %s\n", i, e)
	}
	return sb.String()
}
