// Package ofence implements an OFence-style static paired-barrier analysis
// (the §6.4 comparison; Lepers et al., EuroSys '23). OFence's premise is
// that memory barriers come in pairs — a publisher's smp_wmb (or release)
// is matched by an observer's smp_rmb (or acquire). A code path where only
// ONE half of such a pair is present around shared data is a likely OOO
// bug. Being a source-level pattern matcher, it sees only EXPLICIT barrier
// calls (not the ordering implied by atomics or annotated loads) and needs
// no execution — but bugs that never had a pair half in the source fall
// outside its patterns entirely (8 of the paper's 11 new bugs, §6.4).
//
// Our "source" is the per-call access/barrier summary extracted from the
// modules' seed programs — structurally what OFence extracts from the
// kernel source with static analysis.
package ofence

import (
	"fmt"
	"sort"

	"ozz/internal/core"
	"ozz/internal/hints"
	"ozz/internal/modules"
	"ozz/internal/trace"
)

// Finding is one unpaired-barrier pattern match.
type Finding struct {
	Module  string
	Writer  string // the call publishing shared data
	Reader  string // the call consuming it
	Missing string // "write-side barrier" or "read-side barrier"
}

// String renders the finding.
func (f *Finding) String() string {
	return fmt.Sprintf("ofence: %s: missing %s between %s and %s",
		f.Module, f.Missing, f.Writer, f.Reader)
}

// summary is a call's explicit-barrier profile restricted to its shared
// accesses with a peer.
type summary struct {
	stores, loads     bool
	storeBar, loadBar bool // explicit smp_wmb/release, smp_rmb/acquire
	// annotatedLoad: a shared load is READ_ONCE/atomic/acquire. OFence's
	// pattern excludes such readers — their ordering can come from the
	// annotation + an address dependency, so the absence of an explicit
	// smp_rmb is not evidence of a missing pair half.
	annotatedLoad bool
}

func summarize(events []trace.Event) summary {
	var s summary
	for _, e := range events {
		if e.Barrier {
			if e.Bar.Implicit {
				continue // invisible to source-level matching
			}
			switch e.Bar.Kind {
			case trace.BarrierStore, trace.BarrierRelease, trace.BarrierFull:
				s.storeBar = true
			}
			switch e.Bar.Kind {
			case trace.BarrierLoad, trace.BarrierAcquire, trace.BarrierFull:
				s.loadBar = true
			}
			continue
		}
		if e.Acc.Kind == trace.Store {
			s.stores = true
		} else {
			s.loads = true
			if e.Acc.Atomic != trace.Plain {
				s.annotatedLoad = true
			}
		}
	}
	return s
}

// Analyze runs the pattern matcher over a module's seed programs with the
// given bug switches applied (the "source under analysis") and returns the
// unpaired-barrier findings.
func Analyze(modName string, bugs modules.BugSet) []*Finding {
	mod := modules.ByName(modName)
	if mod == nil {
		return nil
	}
	env := core.NewEnv([]string{modName}, bugs)
	target := modules.Target(modName)
	seen := map[string]bool{}
	var findings []*Finding
	for _, src := range mod.Seeds {
		p, err := target.Parse(src)
		if err != nil {
			continue
		}
		sti := env.RunSTI(p)
		if sti.Crash != nil {
			continue
		}
		for i := 0; i < len(p.Calls); i++ {
			for j := 0; j < len(p.Calls); j++ {
				if i == j {
					continue
				}
				fi, fj := hints.FilterOut(sti.CallEvents[i], sti.CallEvents[j])
				w, r := summarize(fi), summarize(fj)
				// The pattern: call i publishes (stores shared
				// data), call j consumes (loads it). A barrier on
				// exactly one side is an unpaired half.
				if !w.stores || !r.loads {
					continue
				}
				var missing string
				switch {
				case r.loadBar && !w.storeBar:
					// An explicit read-side half without its
					// write-side partner.
					missing = "write-side barrier"
				case w.storeBar && !r.loadBar && !r.annotatedLoad:
					// An explicit write-side half whose reader
					// has neither an explicit read barrier nor
					// an annotated (dependency-ordered) load.
					missing = "read-side barrier"
				default:
					continue
				}
				f := &Finding{
					Module:  modName,
					Writer:  p.Calls[i].Def.Name,
					Reader:  p.Calls[j].Def.Name,
					Missing: missing,
				}
				if key := f.String(); !seen[key] {
					seen[key] = true
					findings = append(findings, f)
				}
			}
		}
	}
	sort.Slice(findings, func(a, b int) bool { return findings[a].String() < findings[b].String() })
	return findings
}

// Detects reports whether the analysis flags anything when the given bug is
// enabled (the §6.4 question: does the bug fall inside OFence's patterns?).
func Detects(b modules.BugInfo) bool {
	return len(Analyze(b.Module, modules.Bugs(b.Switch))) > 0
}
