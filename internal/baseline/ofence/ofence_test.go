package ofence

import (
	"testing"

	"ozz/internal/modules"
)

// TestCleanModulesQuiet: with every barrier present, the paired-barrier
// patterns are satisfied — no findings on the fixed bug corpus. The vfs
// substrate module is the deliberate exception (see
// TestVfsFalsePositive).
func TestCleanModulesQuiet(t *testing.T) {
	for _, m := range modules.All() {
		if m.Name == "vfs" {
			continue
		}
		if fs := Analyze(m.Name, nil); len(fs) != 0 {
			t.Errorf("%s: false positives on fixed module: %v", m.Name, fs)
		}
	}
}

// TestVfsFalsePositive documents a genuine weakness of static barrier
// pairing (§6.4: OFence "relies on predefined patterns to avoid excessive
// false positives"): vfs_pipe's pipe-object INITIALIZATION store and
// pipe_read's smp_rmb look like an unpaired half, but the rmb actually
// pairs with pipe_write's wmb — the code is correct, the pattern fires
// anyway. OZZ's dynamic test, by contrast, stays quiet on this module
// (TestCleanCorpusQuiet in internal/core).
func TestVfsFalsePositive(t *testing.T) {
	fs := Analyze("vfs", nil)
	if len(fs) == 0 {
		t.Skip("pattern did not fire (analysis tightened?)")
	}
	for _, f := range fs {
		if f.Reader != "vfs_pipe_read" {
			t.Errorf("unexpected finding: %v", f)
		}
	}
}

// TestTable3Coverage mirrors §6.4: exactly the bugs whose buggy code
// retains one half of a barrier pair are detectable; the paper counts 8 of
// the 11 new bugs as outside OFence's patterns.
func TestTable3Coverage(t *testing.T) {
	detectable, total := 0, 0
	for _, b := range modules.AllBugs() {
		if b.Table != 3 {
			continue
		}
		total++
		got := Detects(b)
		if got != b.OFencePattern {
			t.Errorf("bug %s (%s): ofence detects=%v, ground truth %v",
				b.ID, b.Switch, got, b.OFencePattern)
		}
		if got {
			detectable++
		}
	}
	if total != 11 {
		t.Fatalf("Table 3 corpus has %d bugs, want 11", total)
	}
	if undetectable := total - detectable; undetectable != 8 {
		t.Errorf("OFence misses %d/11 bugs, paper reports 8/11", undetectable)
	}
}

// TestFindingNamesThePair: a finding names the writer/reader calls so a
// developer can locate the unpaired barrier.
func TestFindingNamesThePair(t *testing.T) {
	fs := Analyze("watchqueue", modules.Bugs("watchqueue:pipe_wmb"))
	if len(fs) == 0 {
		t.Fatal("no findings for the Fig. 1 bug (reader rmb present, writer wmb removed)")
	}
	f := fs[0]
	if f.Missing != "write-side barrier" {
		t.Errorf("missing = %q, want write-side barrier", f.Missing)
	}
	if f.Writer != "wq_post_notification" || f.Reader != "wq_pipe_read" {
		t.Errorf("pair = %s/%s", f.Writer, f.Reader)
	}
}

// TestStaticAnalysisMissesRDS: the Fig. 8 bit-lock bug has no explicit
// barrier anywhere — the canonical OFence blind spot (and the canonical
// OZZ strength).
func TestStaticAnalysisMissesRDS(t *testing.T) {
	if fs := Analyze("rds", modules.Bugs("rds:clear_bit_unlock")); len(fs) != 0 {
		t.Errorf("ofence flagged the barrier-free rds bit lock: %v", fs)
	}
}
