package kcsan

import (
	"strings"
	"testing"

	"ozz/internal/modules"
)

// TestKCSANFindsPlainRace: two unannotated concurrent accesses to the same
// location are reported (the detector works).
func TestKCSANFindsPlainRace(t *testing.T) {
	// gsm's buggy reader uses plain loads of gsm->dlci_count, racing with
	// gsm_activate's plain store.
	d := New([]string{"gsm"}, modules.Bugs("gsm:dlci_config_rmb"), 1)
	target := modules.Target("gsm")
	p, err := target.Parse("r0 = gsm_open()\ngsm_activate(r0, 0x0)\ngsm_dlci_config(r0, 0x0, 0x200)\n")
	if err != nil {
		t.Fatal(err)
	}
	titles := d.Hunt(p, 150)
	if len(titles) == 0 {
		t.Fatal("KCSAN found no race on plainly racing accesses")
	}
	// The detector runs on the shared engine, so the hunt's pair runs
	// are served by the kernel recycler. The threshold is loose because
	// sync.Pool sheds entries on GC and randomly drops ~25% of puts
	// under -race.
	recycled, built := d.KernelCounters()
	if recycled == 0 {
		t.Fatalf("kernel pool never recycled (recycled=%d built=%d)", recycled, built)
	}
	if rate := d.RecycleRate(); rate < 0.5 {
		t.Fatalf("recycle rate = %v, want > 0.5", rate)
	}
}

// TestKCSANSilencedByAnnotation is the paper's Case Study 1 (Bug #9):
// developers annotated the sk->sk_prot race with WRITE_ONCE/READ_ONCE,
// which silences KCSAN — but adds no ordering, so the OOO bug remains
// (OZZ's corpus test finds it; KCSAN reports nothing).
func TestKCSANSilencedByAnnotation(t *testing.T) {
	d := New([]string{"tls"}, modules.Bugs("tls:sk_prot_wmb"), 2)
	target := modules.Target("tls")
	p, err := target.Parse("r0 = tls_socket()\ntls_init(r0)\nsock_setsockopt(r0, 0x1)\n")
	if err != nil {
		t.Fatal(err)
	}
	titles := d.Hunt(p, 150)
	for _, title := range titles {
		if strings.Contains(title, "tls") || strings.Contains(title, "sock_common") {
			t.Fatalf("KCSAN reported the annotated race it should be blind to: %v", titles)
		}
	}
}

// TestKCSANBlindToBitLockBug is the paper's Case Study 2 (Bug #1): the
// incorrect custom lock contains NO data race — every access to cp_flags is
// atomic and the data accesses are lock-protected (mutual exclusion holds
// under in-order execution) — so a race detector has nothing to report,
// while OZZ triggers the bug by actually reordering.
func TestKCSANBlindToBitLockBug(t *testing.T) {
	d := New([]string{"rds"}, modules.Bugs("rds:clear_bit_unlock"), 3)
	target := modules.Target("rds")
	p, err := target.Parse("r0 = rds_socket()\nrds_sendmsg(r0, 0x4)\nrds_sendmsg(r0, 0x3)\nrds_loop_xmit(r0)\n")
	if err != nil {
		t.Fatal(err)
	}
	if titles := d.Hunt(p, 150); len(titles) != 0 {
		t.Fatalf("KCSAN reported a race in the race-free bit lock: %v", titles)
	}
}

// TestKCSANDeterministicWithSeed: same seed, same findings (the simulated
// detector is reproducible even though real KCSAN is not — one of the §7
// comparison points in OZZ's favour is determinism).
func TestKCSANDeterministicWithSeed(t *testing.T) {
	run := func() int {
		d := New([]string{"gsm"}, modules.Bugs("gsm:dlci_config_rmb"), 7)
		target := modules.Target("gsm")
		p, _ := target.Parse("r0 = gsm_open()\ngsm_activate(r0, 0x0)\ngsm_dlci_config(r0, 0x0, 0x200)\n")
		return len(d.Hunt(p, 60))
	}
	if run() != run() {
		t.Fatal("same seed produced different findings")
	}
}
