// Package kcsan implements a KCSAN-style sampling data-race detector over
// the simulated kernel — the comparison point of the paper's §7:
//
//   - KCSAN samples an access, installs a watchpoint, STALLS the thread,
//     and reports a data race if a conflicting access from another thread
//     lands in the window;
//   - accesses annotated with READ_ONCE/WRITE_ONCE or atomics are exempt
//     (marked accesses do not constitute a data race) — which is precisely
//     why the WRITE_ONCE/READ_ONCE "fix" of the paper's Bug #9 case study
//     silenced KCSAN while leaving the OOO bug in place;
//   - it never reorders anything, so bugs with NO data race (the Fig. 8
//     bit-lock, whose accesses are all atomic) are invisible to it.
//
// The detector is an engine.Strategy implemented OUTSIDE internal/engine:
// it plugs its watchpoint sampler into the shared execution engine as an
// OnAccess observer plus a random schedule policy, demonstrating that new
// detectors need no private copy of the kernel-lifecycle loop.
package kcsan

import (
	"fmt"
	"math/rand"

	"ozz/internal/engine"
	"ozz/internal/kernel"
	"ozz/internal/modules"
	"ozz/internal/obs"
	"ozz/internal/sched"
	"ozz/internal/syzlang"
	"ozz/internal/trace"
)

// Race is one detected data race.
type Race struct {
	Addr     trace.Addr
	First    trace.InstrID
	Second   trace.InstrID
	FirstFn  string
	SecondFn string
}

// String renders the KCSAN-style report title.
func (r *Race) String() string {
	return fmt.Sprintf("KCSAN: data-race in %s / %s", r.FirstFn, r.SecondFn)
}

// Detector drives race detection over concurrent call pairs.
type Detector struct {
	Modules []string
	Bugs    modules.BugSet
	// SampleEvery installs a watchpoint on every Nth eligible access.
	SampleEvery int
	Seed        int64

	eng *engine.Engine

	Races []*Race
}

// New builds a detector with a private metrics registry. Equivalent to
// NewObs(mods, bugs, seed, nil).
func New(mods []string, bugs modules.BugSet, seed int64) *Detector {
	return NewObs(mods, bugs, seed, nil)
}

// NewObs builds a detector publishing engine lifecycle metrics into reg
// (nil = a fresh private registry).
func NewObs(mods []string, bugs modules.BugSet, seed int64, reg *obs.Registry) *Detector {
	return &Detector{Modules: mods, Bugs: bugs, SampleEvery: 3, Seed: seed, eng: engine.NewObs(reg)}
}

// Obs returns the registry the detector's engine publishes into.
func (d *Detector) Obs() *obs.Registry { return d.eng.Obs() }

// watchpoint is the active watch, if any.
type watchpoint struct {
	addr   trace.Addr
	kind   trace.AccessKind
	atom   trace.Atomicity
	instr  trace.InstrID
	taskID int
	fn     string
	hit    *Race
}

// marked reports whether the access is annotated (READ_ONCE/WRITE_ONCE,
// atomic, acquire/release): marked accesses do not race.
func marked(a trace.Atomicity) bool { return a != trace.Plain }

// Strategy is the KCSAN engine strategy for one sampled pair run: Attach
// installs the watchpoint sampler as the kernel's OnAccess observer, and
// Pair schedules the concurrent stage under a seeded random policy.
type Strategy struct {
	// Detector receives detected races.
	Detector *Detector
	// Round salts the sampling and scheduling streams so every pair run
	// draws an independent (but reproducible) sequence.
	Round int64
}

// Name implements engine.Strategy.
func (s *Strategy) Name() string { return "kcsan" }

// Attach implements engine.Strategy: it installs the watchpoint sampler.
// The sampling stream is drawn fresh per run from (Seed, Round).
func (s *Strategy) Attach(k *kernel.Kernel, _ *engine.Request) {
	d := s.Detector
	rng := rand.New(rand.NewSource(d.Seed ^ s.Round))

	var wp *watchpoint
	sampleCountdown := 1 + rng.Intn(d.SampleEvery)
	k.OnAccess = func(t *kernel.Task, ev trace.AccessEvent) {
		// Conflict check against an active watchpoint from another
		// task: same address, at least one write, and at least one of
		// the two accesses unmarked.
		if wp != nil && wp.taskID != t.ID && wp.addr == ev.Addr {
			if (wp.kind == trace.Store || ev.Kind == trace.Store) &&
				(!marked(wp.atom) || !marked(ev.Atomic)) {
				wp.hit = &Race{
					Addr: ev.Addr, First: wp.instr, Second: ev.Instr,
					FirstFn: wp.fn, SecondFn: t.CurrentFn(),
				}
			}
			return
		}
		// Sampling: only unmarked accesses are watch candidates
		// (watching a marked access cannot produce a reportable race
		// with another marked access anyway; real KCSAN also treats
		// marked accesses as lower priority). Never stall inside an
		// atomic RMW (ev.NoYield: the store half of an indivisible
		// operation) — a real watchpoint cannot land between the two
		// halves of an atomic instruction either.
		if wp != nil || marked(ev.Atomic) || ev.NoYield ||
			t.Sched() == nil || t.Sched().Peers() == 0 {
			return
		}
		sampleCountdown--
		if sampleCountdown > 0 {
			return
		}
		sampleCountdown = 1 + rng.Intn(d.SampleEvery)
		w := &watchpoint{
			addr: ev.Addr, kind: ev.Kind, atom: ev.Atomic,
			instr: ev.Instr, taskID: t.ID, fn: t.CurrentFn(),
		}
		wp = w
		// Stall the watching thread: let the peer run into the window.
		t.Sched().BlockSpin()
		t.Sched().ClearSpin()
		if w.hit != nil {
			d.Races = append(d.Races, w.hit)
		}
		wp = nil
	}
}

// Pair implements engine.Strategy: calls I and J run concurrently under
// a random schedule salted by the round. No suffix stage — detection is
// complete once the pair finishes.
func (s *Strategy) Pair(_ *engine.Config, req *engine.Request) *engine.PairPlan {
	return &engine.PairPlan{
		Policy: &sched.Random{Seed: s.Detector.Seed ^ s.Round ^ 0x5eed, Period: 3},
		CallA:  req.I,
		CallB:  req.J,
	}
}

// RunPair executes calls i and j of the program concurrently (prefix first,
// like the other executors) with watchpoint sampling active, and appends
// any detected races. Detection is independent of OEMU: the kernel runs
// fully in order; crashes under KCSAN runs are possible but not its
// product, so the run result is discarded.
func (d *Detector) RunPair(p *syzlang.Program, i, j int, round int64) {
	cfg := engine.Config{
		Modules:      d.Modules,
		Bugs:         d.Bugs,
		Instrumented: true,
	}
	d.eng.Run(cfg, &Strategy{Detector: d, Round: round}, engine.Request{Prog: p, I: i, J: j})
}

// Hunt samples every adjacent pair for `rounds` rounds and returns the
// distinct race titles.
func (d *Detector) Hunt(p *syzlang.Program, rounds int) []string {
	for r := 0; r < rounds; r++ {
		for i := 0; i+1 < len(p.Calls); i++ {
			for j := i + 1; j < len(p.Calls); j++ {
				d.RunPair(p, i, j, int64(r*1000+i*10+j))
			}
		}
	}
	seen := map[string]bool{}
	var titles []string
	for _, r := range d.Races {
		s := r.String()
		if !seen[s] {
			seen[s] = true
			titles = append(titles, s)
		}
	}
	return titles
}

// KernelCounters reports pooled-kernel reuse: acquisitions recycled from
// the engine's pool vs. built fresh.
func (d *Detector) KernelCounters() (recycled, built uint64) {
	return d.eng.KernelCounters()
}

// RecycleRate is the fraction of executions that reused a pooled kernel.
func (d *Detector) RecycleRate() float64 { return d.eng.RecycleRate() }
