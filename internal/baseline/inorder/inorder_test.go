package inorder

import (
	"strings"
	"testing"

	"ozz/internal/modules"
)

// TestSyzkallerFindsNoOOOBugs: the conventional fuzzer executes the fully
// buggy corpus sequentially and finds nothing — OOO bugs need concurrency
// AND reordering.
func TestSyzkallerFindsNoOOOBugs(t *testing.T) {
	var switches []string
	for _, b := range modules.AllBugs() {
		if b.Type != "" { // all OOO switches on
			switches = append(switches, b.Switch)
		}
	}
	s := NewSyzkaller(nil, modules.Bugs(switches...), 1)
	for i := 0; i < 300; i++ {
		s.Step()
	}
	if s.Reports.Len() != 0 {
		t.Fatalf("sequential fuzzing crashed on OOO-only bugs: %v", s.Reports.Titles())
	}
	if s.Execs != 300 {
		t.Fatalf("execs = %d", s.Execs)
	}
	// The baseline shares the engine's kernel recycler, like core.Env
	// campaigns do. The threshold is loose because sync.Pool sheds
	// entries on GC and randomly drops ~25% of puts under -race.
	recycled, built := s.KernelCounters()
	if recycled == 0 {
		t.Fatalf("kernel pool never recycled (recycled=%d built=%d)", recycled, built)
	}
	if rate := s.RecycleRate(); rate < 0.5 {
		t.Fatalf("recycle rate = %v, want > 0.5", rate)
	}
}

// TestInterleaverBlindToOOOBugs is §2.3's central claim: controlling thread
// interleaving alone — with in-order memory — cannot manifest an OOO bug.
// The Fig. 1 bug survives hundreds of random schedules untouched.
func TestInterleaverBlindToOOOBugs(t *testing.T) {
	iv := NewInterleaver([]string{"watchqueue"}, modules.Bugs("watchqueue:pipe_wmb", "watchqueue:pipe_rmb"), 1)
	target := modules.Target("watchqueue")
	p, err := target.Parse("r0 = wq_create()\nwq_post_notification(r0, 0x4)\nwq_pipe_read(r0)\n")
	if err != nil {
		t.Fatal(err)
	}
	titles := iv.Hunt(p, 200)
	for _, title := range titles {
		if strings.Contains(title, "pipe_read") {
			t.Fatalf("interleaving-only baseline triggered an OOO bug: %v", titles)
		}
	}
}

// TestInterleaverFindsPlainRace: the same baseline DOES find an ordinary
// interleaving bug (the vmci use-after-free) — the blindness is specific to
// reordering, not to concurrency.
func TestInterleaverFindsPlainRace(t *testing.T) {
	iv := NewInterleaver([]string{"vmci"}, modules.Bugs("vmci:uaf_race"), 2)
	target := modules.Target("vmci")
	p, err := target.Parse("r0 = vmci_create()\nvmci_qp_alloc(r0, 0x10)\nvmci_qp_wait(r0)\nvmci_qp_destroy(r0)\n")
	if err != nil {
		t.Fatal(err)
	}
	titles := iv.Hunt(p, 100)
	found := false
	for _, title := range titles {
		if strings.Contains(title, "use-after-free") {
			found = true
		}
	}
	if !found {
		t.Fatalf("interleaving baseline missed the plain UAF race: %v", titles)
	}
	// Pooled kernels for the pair executor too (loose threshold: see
	// TestSyzkallerFindsNoOOOBugs).
	recycled, built := iv.KernelCounters()
	if recycled == 0 {
		t.Fatalf("kernel pool never recycled (recycled=%d built=%d)", recycled, built)
	}
	if rate := iv.RecycleRate(); rate < 0.5 {
		t.Fatalf("recycle rate = %v, want > 0.5", rate)
	}
}

// TestSyzkallerBaselineClean: on the fixed corpus, nothing crashes.
func TestSyzkallerBaselineClean(t *testing.T) {
	s := NewSyzkaller(nil, nil, 3)
	for i := 0; i < 200; i++ {
		s.Step()
	}
	if s.Reports.Len() != 0 {
		t.Fatalf("clean corpus crashed: %v", s.Reports.Titles())
	}
}
