// Package inorder implements the two baselines OZZ is measured against:
//
//   - Syzkaller: a conventional single-threaded fuzzer over the
//     UNinstrumented kernel — the throughput baseline of §6.3.2 (the paper
//     measures 7.33 tests/s for syzkaller vs 0.92 tests/s for OZZ, a 7.9x
//     drop bought for the ability to control out-of-order execution).
//
//   - Interleaver: a concurrency fuzzer that controls thread interleaving
//     only (Snowboard/Razzer-style: random schedules, in-order memory).
//     It finds ordinary atomicity races but CANNOT observe memory-access
//     reordering, so OOO bugs stay invisible to it (§2.3) — every memory
//     access commits in order regardless of the schedule.
//
// Both are thin strategies over the shared execution engine
// (internal/engine): the kernel lifecycle, pooling/recycling, task
// spawning, and crash recovery are the engine's — only the scheduling
// policy differs.
package inorder

import (
	"math/rand"

	"ozz/internal/engine"
	"ozz/internal/kernel"
	"ozz/internal/modules"
	"ozz/internal/obs"
	"ozz/internal/report"
	"ozz/internal/syzlang"
)

// Syzkaller is the conventional-fuzzer baseline.
type Syzkaller struct {
	Modules []string
	Bugs    modules.BugSet
	Seed    int64
	ProgLen int

	target *syzlang.Target
	rng    *rand.Rand
	eng    *engine.Engine

	Reports *report.Set
	// Execs counts executed programs (the throughput unit).
	Execs uint64
}

// NewSyzkaller builds the baseline fuzzer with a private metrics
// registry. Equivalent to NewSyzkallerObs(mods, bugs, seed, nil).
func NewSyzkaller(mods []string, bugs modules.BugSet, seed int64) *Syzkaller {
	return NewSyzkallerObs(mods, bugs, seed, nil)
}

// NewSyzkallerObs builds the baseline fuzzer publishing engine lifecycle
// metrics into reg (nil = a fresh private registry), so a campaign can
// scrape OZZ and the baseline from one endpoint.
func NewSyzkallerObs(mods []string, bugs modules.BugSet, seed int64, reg *obs.Registry) *Syzkaller {
	return &Syzkaller{
		Modules: mods,
		Bugs:    bugs,
		Seed:    seed,
		ProgLen: 4,
		target:  modules.Target(mods...),
		rng:     rand.New(rand.NewSource(seed)),
		eng:     engine.NewObs(reg),
		Reports: report.NewSet(),
	}
}

// Obs returns the registry the baseline's engine publishes into.
func (s *Syzkaller) Obs() *obs.Registry { return s.eng.Obs() }

// Step generates and executes one program sequentially on an
// uninstrumented kernel (no OEMU, no profiling — syzkaller's kernel).
func (s *Syzkaller) Step() {
	p := s.target.Generate(s.rng, s.ProgLen)
	s.Exec(p)
}

// Exec runs one program and records crashes.
func (s *Syzkaller) Exec(p *syzlang.Program) {
	cfg := engine.Config{
		Modules:    s.Modules,
		Bugs:       s.Bugs,
		Sanitizers: true, // a syzkaller kernel still has KASAN + KCov
	}
	res := s.eng.Run(cfg, engine.Sequential{}, engine.Request{Prog: p})
	if res.Crash != nil {
		s.Reports.Add(&report.Report{Title: res.Crash.Title, Oracle: res.Crash.Oracle, Program: p.String()})
	}
	s.Execs++
}

// KernelCounters reports pooled-kernel reuse: acquisitions recycled from
// the engine's pool vs. built fresh.
func (s *Syzkaller) KernelCounters() (recycled, built uint64) {
	return s.eng.KernelCounters()
}

// RecycleRate is the fraction of executions that reused a pooled kernel —
// the same reuse metric core.Env campaigns report.
func (s *Syzkaller) RecycleRate() float64 { return s.eng.RecycleRate() }

// Interleaver is the interleaving-only concurrency fuzzer baseline.
type Interleaver struct {
	Modules []string
	Bugs    modules.BugSet
	Seed    int64

	target *syzlang.Target
	rng    *rand.Rand
	eng    *engine.Engine

	Reports *report.Set
	Execs   uint64
}

// NewInterleaver builds the interleaving-only baseline with a private
// metrics registry. Equivalent to NewInterleaverObs(mods, bugs, seed, nil).
func NewInterleaver(mods []string, bugs modules.BugSet, seed int64) *Interleaver {
	return NewInterleaverObs(mods, bugs, seed, nil)
}

// NewInterleaverObs builds the interleaving-only baseline publishing
// engine lifecycle metrics into reg (nil = a fresh private registry).
func NewInterleaverObs(mods []string, bugs modules.BugSet, seed int64, reg *obs.Registry) *Interleaver {
	return &Interleaver{
		Modules: mods,
		Bugs:    bugs,
		Seed:    seed,
		target:  modules.Target(mods...),
		rng:     rand.New(rand.NewSource(seed)),
		eng:     engine.NewObs(reg),
		Reports: report.NewSet(),
	}
}

// Obs returns the registry the baseline's engine publishes into.
func (iv *Interleaver) Obs() *obs.Registry { return iv.eng.Obs() }

// ExecPair runs the program with calls i and j concurrent under a random
// (seeded) schedule — thread interleaving control WITHOUT any memory
// reordering: the kernel is instrumented (so every access is a scheduling
// point) but no OEMU directives are ever installed, so memory stays
// sequentially consistent.
func (iv *Interleaver) ExecPair(p *syzlang.Program, i, j int, scheduleSeed int64) *kernel.Crash {
	cfg := engine.Config{
		Modules:      iv.Modules,
		Bugs:         iv.Bugs,
		Instrumented: true,
	}
	res := iv.eng.Run(cfg, engine.Interleave{}, engine.Request{Prog: p, I: i, J: j, Seed: scheduleSeed})
	// Executions that die in the sequential prefix never reach the
	// concurrent stage and do not count toward pair throughput.
	if !res.PrefixCrash {
		iv.Execs++
	}
	return res.Crash
}

// Hunt runs `rounds` random schedules of every adjacent pair of the
// program, collecting crashes. It returns the crash titles found.
func (iv *Interleaver) Hunt(p *syzlang.Program, rounds int) []string {
	for r := 0; r < rounds; r++ {
		for i := 0; i+1 < len(p.Calls); i++ {
			for j := i + 1; j < len(p.Calls); j++ {
				if c := iv.ExecPair(p, i, j, iv.rng.Int63()); c != nil {
					iv.Reports.Add(&report.Report{Title: c.Title, Oracle: c.Oracle, Program: p.String()})
				}
			}
		}
	}
	return iv.Reports.Titles()
}

// KernelCounters reports pooled-kernel reuse: acquisitions recycled from
// the engine's pool vs. built fresh.
func (iv *Interleaver) KernelCounters() (recycled, built uint64) {
	return iv.eng.KernelCounters()
}

// RecycleRate is the fraction of executions that reused a pooled kernel.
func (iv *Interleaver) RecycleRate() float64 { return iv.eng.RecycleRate() }
