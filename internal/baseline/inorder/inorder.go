// Package inorder implements the two baselines OZZ is measured against:
//
//   - Syzkaller: a conventional single-threaded fuzzer over the
//     UNinstrumented kernel — the throughput baseline of §6.3.2 (the paper
//     measures 7.33 tests/s for syzkaller vs 0.92 tests/s for OZZ, a 7.9x
//     drop bought for the ability to control out-of-order execution).
//
//   - Interleaver: a concurrency fuzzer that controls thread interleaving
//     only (Snowboard/Razzer-style: random schedules, in-order memory).
//     It finds ordinary atomicity races but CANNOT observe memory-access
//     reordering, so OOO bugs stay invisible to it (§2.3) — every memory
//     access commits in order regardless of the schedule.
package inorder

import (
	"math/rand"

	"ozz/internal/kernel"
	"ozz/internal/modules"
	"ozz/internal/report"
	"ozz/internal/sched"
	"ozz/internal/syzlang"
)

// Syzkaller is the conventional-fuzzer baseline.
type Syzkaller struct {
	Modules []string
	Bugs    modules.BugSet
	Seed    int64
	ProgLen int

	target  *syzlang.Target
	rng     *rand.Rand
	Reports *report.Set
	// Execs counts executed programs (the throughput unit).
	Execs uint64
}

// NewSyzkaller builds the baseline fuzzer.
func NewSyzkaller(mods []string, bugs modules.BugSet, seed int64) *Syzkaller {
	return &Syzkaller{
		Modules: mods,
		Bugs:    bugs,
		Seed:    seed,
		ProgLen: 4,
		target:  modules.Target(mods...),
		rng:     rand.New(rand.NewSource(seed)),
		Reports: report.NewSet(),
	}
}

// Step generates and executes one program sequentially on an
// uninstrumented kernel (no OEMU, no profiling — syzkaller's kernel).
func (s *Syzkaller) Step() {
	p := s.target.Generate(s.rng, s.ProgLen)
	s.Exec(p)
}

// Exec runs one program and records crashes.
func (s *Syzkaller) Exec(p *syzlang.Program) {
	k := kernel.New(4)
	k.Instrumented = false
	k.Sanitizers = true // a syzkaller kernel still has KASAN + KCov
	impls := modules.Build(k, s.Bugs, s.Modules...)
	returns := make([]uint64, len(p.Calls))
	task := k.NewTask(0)
	session := sched.NewSession(sched.Sequential{})
	session.Spawn(0, 0, func(st *sched.Task) {
		task.Bind(st)
		for ci := range p.Calls {
			c := &p.Calls[ci]
			args := make([]uint64, len(c.Args))
			for i, a := range c.Args {
				if a.Res {
					args[i] = returns[a.Ref]
				} else {
					args[i] = a.Val
				}
			}
			if impl := impls[c.Def.Name]; impl != nil {
				returns[ci] = impl(task, args)
				task.SyscallReturn()
			}
		}
	})
	if aborted := session.Run(); aborted != nil {
		if c, ok := aborted.(*kernel.Crash); ok {
			s.Reports.Add(&report.Report{Title: c.Title, Oracle: c.Oracle, Program: p.String()})
		}
	}
	s.Execs++
}

// Interleaver is the interleaving-only concurrency fuzzer baseline.
type Interleaver struct {
	Modules []string
	Bugs    modules.BugSet
	Seed    int64

	target  *syzlang.Target
	rng     *rand.Rand
	Reports *report.Set
	Execs   uint64
}

// NewInterleaver builds the interleaving-only baseline.
func NewInterleaver(mods []string, bugs modules.BugSet, seed int64) *Interleaver {
	return &Interleaver{
		Modules: mods,
		Bugs:    bugs,
		Seed:    seed,
		target:  modules.Target(mods...),
		rng:     rand.New(rand.NewSource(seed)),
		Reports: report.NewSet(),
	}
}

// ExecPair runs the program with calls i and j concurrent under a random
// (seeded) schedule — thread interleaving control WITHOUT any memory
// reordering: the kernel is instrumented (so every access is a scheduling
// point) but no OEMU directives are ever installed, so memory stays
// sequentially consistent.
func (iv *Interleaver) ExecPair(p *syzlang.Program, i, j int, scheduleSeed int64) *kernel.Crash {
	k := kernel.New(4)
	impls := modules.Build(k, iv.Bugs, iv.Modules...)
	returns := make([]uint64, len(p.Calls))

	runCall := func(task *kernel.Task, ci int) {
		c := &p.Calls[ci]
		args := make([]uint64, len(c.Args))
		for ai, a := range c.Args {
			if a.Res {
				args[ai] = returns[a.Ref]
			} else {
				args[ai] = a.Val
			}
		}
		if impl := impls[c.Def.Name]; impl != nil {
			returns[ci] = impl(task, args)
			task.SyscallReturn()
		}
	}

	// Sequential prefix.
	pre := k.NewTask(0)
	s1 := sched.NewSession(sched.Sequential{})
	s1.Spawn(0, 0, func(st *sched.Task) {
		pre.Bind(st)
		for ci := 0; ci < j; ci++ {
			if ci != i {
				runCall(pre, ci)
			}
		}
	})
	if aborted := s1.Run(); aborted != nil {
		if c, ok := aborted.(*kernel.Crash); ok {
			return c
		}
		return nil
	}

	// Concurrent pair under a random schedule.
	ta, tb := k.NewTask(1), k.NewTask(2)
	s2 := sched.NewSession(&sched.Random{Seed: scheduleSeed, Period: 2})
	s2.Spawn(1, 1, func(st *sched.Task) { ta.Bind(st); runCall(ta, i) })
	s2.Spawn(2, 2, func(st *sched.Task) { tb.Bind(st); runCall(tb, j) })
	iv.Execs++
	if aborted := s2.Run(); aborted != nil {
		if c, ok := aborted.(*kernel.Crash); ok {
			return c
		}
	}
	return nil
}

// Hunt runs `rounds` random schedules of every adjacent pair of the
// program, collecting crashes. It returns the crash titles found.
func (iv *Interleaver) Hunt(p *syzlang.Program, rounds int) []string {
	for r := 0; r < rounds; r++ {
		for i := 0; i+1 < len(p.Calls); i++ {
			for j := i + 1; j < len(p.Calls); j++ {
				if c := iv.ExecPair(p, i, j, iv.rng.Int63()); c != nil {
					iv.Reports.Add(&report.Report{Title: c.Title, Oracle: c.Oracle, Program: p.String()})
				}
			}
		}
	}
	return iv.Reports.Titles()
}
