// The three built-in memory models. Each is a declarative Def compiled at
// init; the LKMM table is pinned bit-identical to the trace predicates it
// replaced (memmodel_test.go cross-checks every enum value), so the
// refactor cannot drift the default semantics.
package memmodel

import "ozz/internal/trace"

// LKMM is the Linux Kernel Memory Model as emulated by the paper (§3.3,
// §10.1): stores may be delayed unless release, every load may be
// versioned, annotated loads (READ_ONCE/atomic/acquire) pin the window
// (Cases 4 and 6), smp_wmb/smp_mb/release order stores, and
// smp_rmb/smp_mb/acquire order loads.
var LKMM = MustCompile(Def{
	Name: "lkmm",
	Doc:  "Linux Kernel Memory Model (paper §3.3/§10.1); the default",
	Barriers: map[trace.BarrierKind]BarrierSem{
		trace.BarrierFull:    {OrdersStores: true, OrdersLoads: true},
		trace.BarrierLoad:    {OrdersStores: false, OrdersLoads: true},
		trace.BarrierStore:   {OrdersStores: true, OrdersLoads: false},
		trace.BarrierAcquire: {OrdersStores: false, OrdersLoads: true},
		trace.BarrierRelease: {OrdersStores: true, OrdersLoads: false},
	},
	Stores: map[trace.Atomicity]StoreSem{
		trace.Plain:         {Release: false, Delayable: true},
		trace.Once:          {Release: false, Delayable: true}, // WRITE_ONCE is "Relaxed" (Table 1)
		trace.Atomic:        {Release: false, Delayable: true},
		trace.AtomicAcquire: {Release: false, Delayable: true},
		trace.AtomicRelease: {Release: true, Delayable: false},
	},
	Loads: map[trace.Atomicity]LoadSem{
		trace.Plain:         {LoadBarrier: false, Versionable: true},
		trace.Once:          {LoadBarrier: true, Versionable: true}, // Case 6: annotated load
		trace.Atomic:        {LoadBarrier: true, Versionable: true},
		trace.AtomicAcquire: {LoadBarrier: true, Versionable: true}, // Case 4: acquire
		trace.AtomicRelease: {LoadBarrier: false, Versionable: true},
	},
	PPO: PPO{StoreStore: false},
})

// TSO is x86's total-store-order model: the only architectural reordering
// is store→load through the FIFO store buffer. There are no
// invalidation-queue effects, so no load is versionable and ReadOldValueAt
// directives are inert. smp_wmb/smp_rmb and acquire/release compile to
// plain accesses on x86 (compiler barriers only), so only smp_mb — and the
// implied full fence of a locked RMW — drains the buffer. The FIFO
// discipline (PPO.StoreStore) means delayed stores still become visible in
// program order, which is exactly what makes release stores free on x86.
var TSO = MustCompile(Def{
	Name: "tso",
	Doc:  "x86 total store order: store->load reordering only, FIFO store buffer",
	Barriers: map[trace.BarrierKind]BarrierSem{
		trace.BarrierFull:    {OrdersStores: true, OrdersLoads: true},
		trace.BarrierLoad:    {OrdersStores: false, OrdersLoads: false}, // smp_rmb: no-op on x86
		trace.BarrierStore:   {OrdersStores: false, OrdersLoads: false}, // smp_wmb: no-op on x86
		trace.BarrierAcquire: {OrdersStores: false, OrdersLoads: false}, // plain mov
		trace.BarrierRelease: {OrdersStores: false, OrdersLoads: false}, // plain mov
	},
	Stores: map[trace.Atomicity]StoreSem{
		trace.Plain: {Release: false, Delayable: true},
		trace.Once:  {Release: false, Delayable: true},
		// A value-returning atomic RMW is a locked instruction — an
		// implied full fence that can never sit in the store buffer.
		trace.Atomic:        {Release: true, Delayable: false},
		trace.AtomicAcquire: {Release: false, Delayable: true},
		// smp_store_release is a plain mov on x86; its ordering comes for
		// free from the FIFO buffer, not from draining it.
		trace.AtomicRelease: {Release: false, Delayable: true},
	},
	Loads: map[trace.Atomicity]LoadSem{
		trace.Plain:         {LoadBarrier: false, Versionable: false},
		trace.Once:          {LoadBarrier: false, Versionable: false},
		trace.Atomic:        {LoadBarrier: false, Versionable: false},
		trace.AtomicAcquire: {LoadBarrier: false, Versionable: false},
		trace.AtomicRelease: {LoadBarrier: false, Versionable: false},
	},
	PPO: PPO{StoreStore: true},
})

// ARMv8 is a deliberately simplified ARMv8-ish weak model: like LKMM it
// delays stores and versions loads, but acquire loads (LDAR) are the ONLY
// one-way load fences — a relaxed annotated load (READ_ONCE → plain LDR)
// does not pin the versioning window, dropping LKMM's conservative Case 6
// dependency rule. This is intentionally weaker than real ARMv8 (which
// preserves address/control dependencies; OZZ's profile carries no
// dependency edges to check), so it over-approximates reachable
// reorderings rather than missing any.
var ARMv8 = MustCompile(Def{
	Name: "armv8",
	Doc:  "simplified ARMv8: weaker load ordering, acquire/release the only one-way fences",
	Barriers: map[trace.BarrierKind]BarrierSem{
		trace.BarrierFull:    {OrdersStores: true, OrdersLoads: true},  // dmb ish
		trace.BarrierLoad:    {OrdersStores: false, OrdersLoads: true}, // dmb ishld
		trace.BarrierStore:   {OrdersStores: true, OrdersLoads: false}, // dmb ishst
		trace.BarrierAcquire: {OrdersStores: false, OrdersLoads: true}, // ldar
		trace.BarrierRelease: {OrdersStores: true, OrdersLoads: false}, // stlr
	},
	Stores: map[trace.Atomicity]StoreSem{
		trace.Plain:         {Release: false, Delayable: true},
		trace.Once:          {Release: false, Delayable: true},
		trace.Atomic:        {Release: false, Delayable: true},
		trace.AtomicAcquire: {Release: false, Delayable: true},
		trace.AtomicRelease: {Release: true, Delayable: false}, // stlr
	},
	Loads: map[trace.Atomicity]LoadSem{
		trace.Plain:         {LoadBarrier: false, Versionable: true},
		trace.Once:          {LoadBarrier: false, Versionable: true}, // relaxed LDR: no Case 6
		trace.Atomic:        {LoadBarrier: false, Versionable: true},
		trace.AtomicAcquire: {LoadBarrier: true, Versionable: true}, // ldar
		trace.AtomicRelease: {LoadBarrier: false, Versionable: true},
	},
	PPO: PPO{StoreStore: false},
})

func init() {
	Register(LKMM)
	Register(TSO)
	Register(ARMv8)
}
