// Package memmodel defines the memory-model abstraction OZZ's two
// executable semantics share: the in-vivo emulator (internal/oemu) and the
// reference enumerator (internal/lkmm/model) both dispatch every
// barrier/atomicity ordering decision through one compiled semantics table
// per model, so adding an architecture means writing one declarative Def —
// not re-deriving the store-buffer and versioning rules in two places.
//
// A model is authored as a Def: three small maps (barrier kind → ordering
// effect, store atomicity → store semantics, load atomicity → load
// semantics) plus the preserved-program-order predicate set. Compile
// validates the Def is exhaustive over every trace.BarrierKind and
// trace.Atomicity value and produces an immutable Table — dense bool
// arrays indexed by the enum values — so the emulator's inner loop pays an
// array load per decision, never an interface call or map lookup
// (pinned by the micro/model_dispatch zero-alloc benchmark).
//
// Three models ship (see models.go): "lkmm" (bit-identical to the
// hard-coded semantics this package replaced), "tso" (x86: store→load
// reordering only), and "armv8" (weaker load ordering; acquire/release are
// the only one-way fences). Registry lookups (ByName) serve the -model
// flags on cmd/ozz and cmd/litmus.
package memmodel

import (
	"fmt"
	"sort"
	"sync"

	"ozz/internal/trace"
)

// BarrierSem is the ordering effect of one explicit barrier kind.
type BarrierSem struct {
	// OrdersStores: the barrier forbids delaying precedent stores past it
	// (a store-buffer flush point in the emulator; an in-order commit
	// point in the enumerator).
	OrdersStores bool
	// OrdersLoads: the barrier forbids subsequent loads from reading
	// values older than the barrier point (a versioning-window reset).
	OrdersLoads bool
}

// StoreSem is the semantics of a STORE carrying one atomicity annotation.
type StoreSem struct {
	// Release: all precedent accesses are ordered before this store. The
	// emulator drains the store buffer and never delays the store itself.
	Release bool
	// Delayable: the model permits this store to sit in the virtual store
	// buffer (i.e. to become visible to other threads late). A
	// non-delayable, non-release store commits in place without flushing
	// anything else.
	Delayable bool
}

// LoadSem is the semantics of a LOAD carrying one atomicity annotation.
type LoadSem struct {
	// LoadBarrier: the load orders subsequent loads after itself and so
	// pins the versioning window forward once it executes (LKMM Case 4/6).
	LoadBarrier bool
	// Versionable: the model permits this load to return a stale value
	// from the location's store history (i.e. to appear to execute early).
	Versionable bool
}

// PPO is the preserved-program-order predicate set: same-thread access
// pairs the model never reorders regardless of directives.
type PPO struct {
	// StoreStore: program-earlier stores become visible before
	// program-later stores to *different* locations (TSO's FIFO store
	// buffer). Under it the emulator never coalesces into a non-newest
	// buffer entry and never commits a store while older stores are still
	// buffered. Same-location order (coherence) is unconditional in every
	// model and not represented here.
	StoreStore bool
}

// Def declares one memory model. All three maps must be exhaustive over
// the trace enums; Compile rejects partial definitions so adding a new
// BarrierKind or Atomicity forces every model to take a position.
type Def struct {
	// Name is the registry key and -model flag value (e.g. "lkmm").
	Name string
	// Doc is a one-line description for docs and -list output.
	Doc string
	// Barriers maps every trace.BarrierKind to its ordering effect.
	Barriers map[trace.BarrierKind]BarrierSem
	// Stores maps every trace.Atomicity to its store-side semantics.
	Stores map[trace.Atomicity]StoreSem
	// Loads maps every trace.Atomicity to its load-side semantics.
	Loads map[trace.Atomicity]LoadSem
	// PPO is the preserved-program-order predicate set.
	PPO PPO
}

// Table is a compiled, immutable memory model. Accessors are dense array
// loads — safe to call from the emulator's inner loop with zero
// allocations and no interface dispatch.
type Table struct {
	name string
	doc  string

	ordersStores [trace.NumBarrierKinds]bool
	ordersLoads  [trace.NumBarrierKinds]bool
	release      [trace.NumAtomicities]bool
	delayable    [trace.NumAtomicities]bool
	loadBarrier  [trace.NumAtomicities]bool
	versionable  [trace.NumAtomicities]bool

	storeStore bool

	anyDelayable   bool
	anyVersionable bool
}

// Compile validates a Def for exhaustiveness and internal consistency and
// returns its immutable Table.
func Compile(d Def) (*Table, error) {
	if d.Name == "" {
		return nil, fmt.Errorf("memmodel: Def has no name")
	}
	t := &Table{name: d.Name, doc: d.Doc, storeStore: d.PPO.StoreStore}
	for _, k := range trace.AllBarrierKinds() {
		sem, ok := d.Barriers[k]
		if !ok {
			return nil, fmt.Errorf("memmodel %q: no barrier semantics for %s", d.Name, k)
		}
		t.ordersStores[k] = sem.OrdersStores
		t.ordersLoads[k] = sem.OrdersLoads
	}
	for _, a := range trace.AllAtomicities() {
		ss, ok := d.Stores[a]
		if !ok {
			return nil, fmt.Errorf("memmodel %q: no store semantics for %s", d.Name, a)
		}
		ls, ok := d.Loads[a]
		if !ok {
			return nil, fmt.Errorf("memmodel %q: no load semantics for %s", d.Name, a)
		}
		if ss.Release && ss.Delayable {
			return nil, fmt.Errorf("memmodel %q: %s store is both release and delayable", d.Name, a)
		}
		t.release[a] = ss.Release
		t.delayable[a] = ss.Delayable
		t.loadBarrier[a] = ls.LoadBarrier
		t.versionable[a] = ls.Versionable
		t.anyDelayable = t.anyDelayable || ss.Delayable
		t.anyVersionable = t.anyVersionable || ls.Versionable
	}
	if len(d.Barriers) != trace.NumBarrierKinds {
		return nil, fmt.Errorf("memmodel %q: %d barrier entries, want %d", d.Name, len(d.Barriers), trace.NumBarrierKinds)
	}
	if len(d.Stores) != trace.NumAtomicities || len(d.Loads) != trace.NumAtomicities {
		return nil, fmt.Errorf("memmodel %q: %d store / %d load entries, want %d each",
			d.Name, len(d.Stores), len(d.Loads), trace.NumAtomicities)
	}
	return t, nil
}

// MustCompile is Compile panicking on error, for package-level singletons.
func MustCompile(d Def) *Table {
	t, err := Compile(d)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the registry key of the model.
func (t *Table) Name() string { return t.name }

// Doc returns the one-line model description.
func (t *Table) Doc() string { return t.doc }

// OrdersStores reports whether barrier k is a store-buffer flush point.
func (t *Table) OrdersStores(k trace.BarrierKind) bool { return t.ordersStores[k] }

// OrdersLoads reports whether barrier k resets the versioning window.
func (t *Table) OrdersLoads(k trace.BarrierKind) bool { return t.ordersLoads[k] }

// Release reports whether a store with annotation a has release semantics.
func (t *Table) Release(a trace.Atomicity) bool { return t.release[a] }

// Delayable reports whether a store with annotation a may be buffered.
func (t *Table) Delayable(a trace.Atomicity) bool { return t.delayable[a] }

// LoadBarrier reports whether a load with annotation a pins the
// versioning window forward (orders subsequent loads).
func (t *Table) LoadBarrier(a trace.Atomicity) bool { return t.loadBarrier[a] }

// Versionable reports whether a load with annotation a may read a stale
// value from the store history.
func (t *Table) Versionable(a trace.Atomicity) bool { return t.versionable[a] }

// StoreStoreOrdered reports whether preserved program order includes
// store→store (FIFO store buffer, as on x86-TSO).
func (t *Table) StoreStoreOrdered() bool { return t.storeStore }

// AnyDelayable reports whether any store annotation is delayable; when
// false, DelayStoreAt directives are inert under this model.
func (t *Table) AnyDelayable() bool { return t.anyDelayable }

// AnyVersionable reports whether any load annotation is versionable; when
// false the model has no invalidation-queue effects, ReadOldValueAt
// directives are inert, and load-barrier hint tests are skipped.
func (t *Table) AnyVersionable() bool { return t.anyVersionable }

var (
	regMu    sync.RWMutex
	registry = map[string]*Table{}
)

// Register adds a compiled model to the registry; the name must be new.
func Register(t *Table) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[t.name]; dup {
		panic(fmt.Sprintf("memmodel: duplicate registration of %q", t.name))
	}
	registry[t.name] = t
}

// ByName returns the registered model with the given name.
func ByName(name string) (*Table, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	t, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("memmodel: unknown model %q (have %v)", name, namesLocked())
	}
	return t, nil
}

// Names lists the registered model names sorted alphabetically.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered model, sorted by name.
func All() []*Table {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Table, 0, len(registry))
	for _, t := range registry {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
