package memmodel

import (
	"strings"
	"testing"

	"ozz/internal/trace"
)

// TestModelsExhaustive is the registry-wide exhaustiveness gate: every
// registered model must define semantics for every trace.BarrierKind and
// trace.Atomicity value. Compile already rejects partial Defs, but this
// test is what fails with a readable message when someone adds an enum
// value and recompiles stale tables via cached arrays — it re-walks the
// live enums, mirroring the observability doc-diff pattern.
func TestModelsExhaustive(t *testing.T) {
	models := All()
	if len(models) < 3 {
		t.Fatalf("registry has %d models, want at least lkmm/tso/armv8", len(models))
	}
	for _, m := range models {
		for _, k := range trace.AllBarrierKinds() {
			// The accessors must be in-bounds and deterministic for every
			// kind; calling them is the check (a stale table would panic
			// on an out-of-range index).
			_ = m.OrdersStores(k)
			_ = m.OrdersLoads(k)
		}
		for _, a := range trace.AllAtomicities() {
			if m.Release(a) && m.Delayable(a) {
				t.Errorf("%s: %s store both release and delayable", m.Name(), a)
			}
			_ = m.LoadBarrier(a)
			_ = m.Versionable(a)
		}
	}
	// The enum-count constants the tables are sized by must match the live
	// enums — if AllAtomicities grows past NumAtomicities the arrays above
	// are too small and every model silently truncates.
	if n := len(trace.AllAtomicities()); n != trace.NumAtomicities {
		t.Errorf("AllAtomicities()=%d, NumAtomicities=%d", n, trace.NumAtomicities)
	}
	if n := len(trace.AllBarrierKinds()); n != trace.NumBarrierKinds {
		t.Errorf("AllBarrierKinds()=%d, NumBarrierKinds=%d", n, trace.NumBarrierKinds)
	}
}

// TestLKMMMatchesTracePredicates pins the compiled LKMM table bit-identical
// to the hard-coded trace predicates it replaced. If this fails, the
// refactor changed default semantics.
func TestLKMMMatchesTracePredicates(t *testing.T) {
	for _, k := range trace.AllBarrierKinds() {
		if got, want := LKMM.OrdersStores(k), k.OrdersStores(); got != want {
			t.Errorf("LKMM.OrdersStores(%s)=%v, trace predicate says %v", k, got, want)
		}
		if got, want := LKMM.OrdersLoads(k), k.OrdersLoads(); got != want {
			t.Errorf("LKMM.OrdersLoads(%s)=%v, trace predicate says %v", k, got, want)
		}
	}
	for _, a := range trace.AllAtomicities() {
		if got, want := LKMM.Release(a), a.IsRelease(); got != want {
			t.Errorf("LKMM.Release(%s)=%v, trace predicate says %v", a, got, want)
		}
		if got, want := LKMM.Delayable(a), !a.IsRelease(); got != want {
			t.Errorf("LKMM.Delayable(%s)=%v, want %v (every non-release store delays)", a, got, want)
		}
		if got, want := LKMM.LoadBarrier(a), a.ActsAsLoadBarrier(); got != want {
			t.Errorf("LKMM.LoadBarrier(%s)=%v, trace predicate says %v", a, got, want)
		}
		// The pre-refactor versioned-load path had no atomicity gate:
		// every load annotation may read stale values under LKMM.
		if !LKMM.Versionable(a) {
			t.Errorf("LKMM.Versionable(%s)=false, want true for bit-identity", a)
		}
	}
	if LKMM.StoreStoreOrdered() {
		t.Error("LKMM must not preserve store->store order (smp_wmb exists for a reason)")
	}
	if !LKMM.AnyDelayable() || !LKMM.AnyVersionable() {
		t.Error("LKMM must have delayable stores and versionable loads")
	}
}

// TestTSOSemantics pins the load-bearing TSO table entries.
func TestTSOSemantics(t *testing.T) {
	if !TSO.StoreStoreOrdered() {
		t.Error("TSO must preserve store->store order")
	}
	if TSO.AnyVersionable() {
		t.Error("TSO has no invalidation-queue effects; no load may be versionable")
	}
	if !TSO.AnyDelayable() {
		t.Error("TSO must delay stores (store->load reordering is its whole point)")
	}
	// Only smp_mb orders anything; wmb/rmb/acquire/release are x86 no-ops.
	for _, k := range trace.AllBarrierKinds() {
		want := k == trace.BarrierFull
		if TSO.OrdersStores(k) != want || TSO.OrdersLoads(k) != want {
			t.Errorf("TSO barrier %s: OrdersStores=%v OrdersLoads=%v, want both %v",
				k, TSO.OrdersStores(k), TSO.OrdersLoads(k), want)
		}
	}
	// A locked RMW is the one store that acts as a full fence.
	if !TSO.Release(trace.Atomic) || TSO.Delayable(trace.Atomic) {
		t.Error("TSO atomic RMW store must be a non-delayable fence")
	}
	// Release stores ride the FIFO buffer like any other store.
	if TSO.Release(trace.AtomicRelease) || !TSO.Delayable(trace.AtomicRelease) {
		t.Error("TSO release store must be a plain delayable mov")
	}
}

// TestARMv8Semantics pins the load-bearing ARMv8 table entries.
func TestARMv8Semantics(t *testing.T) {
	// The one divergence from LKMM: relaxed annotated loads do not pin the
	// versioning window — acquire is the only load fence among atomicities.
	for _, a := range trace.AllAtomicities() {
		want := a == trace.AtomicAcquire
		if got := ARMv8.LoadBarrier(a); got != want {
			t.Errorf("ARMv8.LoadBarrier(%s)=%v, want %v", a, got, want)
		}
		if !ARMv8.Versionable(a) {
			t.Errorf("ARMv8.Versionable(%s)=false, want true", a)
		}
	}
	// Store-side and explicit barriers match LKMM (dmb variants + stlr).
	for _, k := range trace.AllBarrierKinds() {
		if ARMv8.OrdersStores(k) != LKMM.OrdersStores(k) || ARMv8.OrdersLoads(k) != LKMM.OrdersLoads(k) {
			t.Errorf("ARMv8 barrier %s diverges from LKMM", k)
		}
	}
	if ARMv8.StoreStoreOrdered() {
		t.Error("ARMv8 must not preserve store->store order")
	}
}

// TestCompileRejectsPartialDefs checks that Compile enforces
// exhaustiveness — this is what makes the satellite check structural
// rather than advisory.
func TestCompileRejectsPartialDefs(t *testing.T) {
	full := func() Def {
		d := Def{
			Name:     "t",
			Barriers: map[trace.BarrierKind]BarrierSem{},
			Stores:   map[trace.Atomicity]StoreSem{},
			Loads:    map[trace.Atomicity]LoadSem{},
		}
		for _, k := range trace.AllBarrierKinds() {
			d.Barriers[k] = BarrierSem{}
		}
		for _, a := range trace.AllAtomicities() {
			d.Stores[a] = StoreSem{Delayable: true}
			d.Loads[a] = LoadSem{}
		}
		return d
	}
	if _, err := Compile(full()); err != nil {
		t.Fatalf("complete Def rejected: %v", err)
	}

	d := full()
	delete(d.Barriers, trace.BarrierAcquire)
	if _, err := Compile(d); err == nil || !strings.Contains(err.Error(), "barrier") {
		t.Errorf("missing barrier entry not rejected: %v", err)
	}
	d = full()
	delete(d.Stores, trace.Atomic)
	if _, err := Compile(d); err == nil {
		t.Error("missing store entry not rejected")
	}
	d = full()
	delete(d.Loads, trace.AtomicRelease)
	if _, err := Compile(d); err == nil {
		t.Error("missing load entry not rejected")
	}
	d = full()
	d.Stores[trace.Once] = StoreSem{Release: true, Delayable: true}
	if _, err := Compile(d); err == nil {
		t.Error("release+delayable store not rejected")
	}
	d = full()
	d.Name = ""
	if _, err := Compile(d); err == nil {
		t.Error("unnamed Def not rejected")
	}
}

// TestRegistry checks ByName/Names over the built-ins.
func TestRegistry(t *testing.T) {
	for _, name := range []string{"lkmm", "tso", "armv8"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("ByName(%q).Name()=%q", name, m.Name())
		}
		if m.Doc() == "" {
			t.Errorf("%s has no doc line", name)
		}
	}
	if _, err := ByName("power"); err == nil {
		t.Error("unknown model not rejected")
	}
	names := Names()
	if len(names) < 3 {
		t.Fatalf("Names()=%v, want at least 3", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
}
