package kernel

import (
	"ozz/internal/trace"
)

// Atomic operations and bit operations, with the ordering semantics the
// Linux kernel documents (Documentation/atomic_t.txt, atomic_bitops.txt):
//
//   - value-returning RMW ops (test_and_set_bit, atomic_inc_return, xchg,
//     cmpxchg) are fully ordered: smp_mb() before and after;
//   - non-value-returning ops (set_bit, clear_bit, atomic_inc) are
//     UNORDERED — their store side may be delayed by OEMU exactly like a
//     plain store, which is the root cause of the paper's Bug #1 (Fig. 8);
//   - _lock/_unlock variants have acquire/release semantics
//     (test_and_set_bit_lock, clear_bit_unlock).

// rmw performs the load half and store half of a read-modify-write through
// OEMU with the given atomicities. The store half is NOT a scheduling point:
// the RMW is indivisible with respect to thread interleaving (though its
// store side may still be delayed by OEMU when unordered, like clear_bit).
func (t *Task) rmw(i trace.InstrID, addr trace.Addr, loadAtom, storeAtom trace.Atomicity, f func(uint64) uint64) (old uint64) {
	old = t.load(i, addr, loadAtom)
	t.storeOpt(i, addr, f(old), storeAtom, false)
	return old
}

// AtomicRead is atomic_read()/atomic64_read(): a READ_ONCE-strength load.
func (t *Task) AtomicRead(i trace.InstrID, addr trace.Addr) uint64 {
	return t.load(i, addr, trace.Atomic)
}

// AtomicSet is atomic_set(): a WRITE_ONCE-strength store (unordered).
func (t *Task) AtomicSet(i trace.InstrID, addr trace.Addr, v uint64) {
	t.store(i, addr, v, trace.Once)
}

// AtomicIncReturn is atomic_inc_return(): fully ordered.
func (t *Task) AtomicIncReturn(i trace.InstrID, addr trace.Addr) uint64 {
	t.mbImplicit(i)
	old := t.rmw(i, addr, trace.Atomic, trace.Once, func(v uint64) uint64 { return v + 1 })
	t.mbImplicit(i)
	return old + 1
}

// AtomicDecReturn is atomic_dec_return(): fully ordered.
func (t *Task) AtomicDecReturn(i trace.InstrID, addr trace.Addr) uint64 {
	t.mbImplicit(i)
	old := t.rmw(i, addr, trace.Atomic, trace.Once, func(v uint64) uint64 { return v - 1 })
	t.mbImplicit(i)
	return old - 1
}

// AtomicInc is atomic_inc(): non-value-returning, unordered.
func (t *Task) AtomicInc(i trace.InstrID, addr trace.Addr) {
	t.rmw(i, addr, trace.Atomic, trace.Once, func(v uint64) uint64 { return v + 1 })
}

// AtomicDec is atomic_dec(): non-value-returning, unordered.
func (t *Task) AtomicDec(i trace.InstrID, addr trace.Addr) {
	t.rmw(i, addr, trace.Atomic, trace.Once, func(v uint64) uint64 { return v - 1 })
}

// Xchg is xchg(): fully ordered swap, returns the old value.
func (t *Task) Xchg(i trace.InstrID, addr trace.Addr, v uint64) uint64 {
	t.mbImplicit(i)
	old := t.rmw(i, addr, trace.Atomic, trace.Once, func(uint64) uint64 { return v })
	t.mbImplicit(i)
	return old
}

// Cmpxchg is cmpxchg(): fully ordered compare-and-swap, returns the old
// value (swap happened iff old == want).
func (t *Task) Cmpxchg(i trace.InstrID, addr trace.Addr, want, v uint64) uint64 {
	t.mbImplicit(i)
	old := t.rmw(i, addr, trace.Atomic, trace.Once, func(cur uint64) uint64 {
		if cur == want {
			return v
		}
		return cur
	})
	t.mbImplicit(i)
	return old
}

// TestAndSetBit is test_and_set_bit(): value-returning, fully ordered.
func (t *Task) TestAndSetBit(i trace.InstrID, bit uint, addr trace.Addr) bool {
	t.mbImplicit(i)
	old := t.rmw(i, addr, trace.Atomic, trace.Once, func(v uint64) uint64 { return v | 1<<bit })
	t.mbImplicit(i)
	return old&(1<<bit) != 0
}

// TestAndSetBitLock is test_and_set_bit_lock(): acquire semantics on
// success — the lock-acquisition primitive.
func (t *Task) TestAndSetBitLock(i trace.InstrID, bit uint, addr trace.Addr) bool {
	old := t.rmw(i, addr, trace.AtomicAcquire, trace.Once, func(v uint64) uint64 { return v | 1<<bit })
	return old&(1<<bit) != 0
}

// TestAndClearBit is test_and_clear_bit(): value-returning, fully ordered.
func (t *Task) TestAndClearBit(i trace.InstrID, bit uint, addr trace.Addr) bool {
	t.mbImplicit(i)
	old := t.rmw(i, addr, trace.Atomic, trace.Once, func(v uint64) uint64 { return v &^ (1 << bit) })
	t.mbImplicit(i)
	return old&(1<<bit) != 0
}

// SetBit is set_bit(): non-value-returning, UNORDERED.
func (t *Task) SetBit(i trace.InstrID, bit uint, addr trace.Addr) {
	t.rmw(i, addr, trace.Atomic, trace.Once, func(v uint64) uint64 { return v | 1<<bit })
}

// ClearBit is clear_bit(): non-value-returning, UNORDERED. Using this to
// release a bit lock is the paper's Bug #1 — the store side may be
// reordered with (delayed past commits of) the critical section's stores.
func (t *Task) ClearBit(i trace.InstrID, bit uint, addr trace.Addr) {
	t.rmw(i, addr, trace.Atomic, trace.Once, func(v uint64) uint64 { return v &^ (1 << bit) })
}

// ClearBitUnlock is clear_bit_unlock(): release semantics — all precedent
// accesses complete before the bit clears. The correct unlock primitive.
func (t *Task) ClearBitUnlock(i trace.InstrID, bit uint, addr trace.Addr) {
	t.rmw(i, addr, trace.Atomic, trace.AtomicRelease, func(v uint64) uint64 { return v &^ (1 << bit) })
}

// TestBit is test_bit(): a READ_ONCE-strength load of the bit.
func (t *Task) TestBit(i trace.InstrID, bit uint, addr trace.Addr) bool {
	return t.load(i, addr, trace.Atomic)&(1<<bit) != 0
}

// SmpMbBeforeAtomic is smp_mb__before_atomic(): upgrades a following
// non-value-returning atomic (set_bit, clear_bit, atomic_inc, ...) to be
// fully ordered against precedent accesses.
func (t *Task) SmpMbBeforeAtomic(i trace.InstrID) { t.Mb(i) }

// SmpMbAfterAtomic is smp_mb__after_atomic(): orders subsequent accesses
// after a preceding non-value-returning atomic. The real fix for several
// clear_bit-based wakeup protocols.
func (t *Task) SmpMbAfterAtomic(i trace.InstrID) { t.Mb(i) }

// SmpStoreMb is smp_store_mb(*addr, v): a store followed by a full fence —
// the idiom of sleep/wakeup flag handoffs (set_current_state).
func (t *Task) SmpStoreMb(i trace.InstrID, addr trace.Addr, v uint64) {
	t.store(i, addr, v, trace.Once)
	t.Mb(i)
}
