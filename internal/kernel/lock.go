package kernel

import (
	"ozz/internal/trace"
)

// Spinlocks built on the atomic bit operations, with lockdep validation.
// The lock word lives in simulated memory, so OEMU and the sanitizer see
// every lock operation; lockdep provides the deadlock oracle (§3, "benefits
// of in-vivo emulation").

// lockBit is the bit used in a lock word.
const lockBit = 0

// SpinLock acquires the spinlock whose word is at addr. class names the
// lock's lockdep class. The task spin-waits (yielding to the scheduler)
// while the lock is held elsewhere.
func (t *Task) SpinLock(i trace.InstrID, addr trace.Addr, class string) {
	t.K.Lockdep.BeforeAcquire(t, addr, class)
	for t.TestAndSetBitLock(i, lockBit, addr) {
		if t.sch != nil {
			t.sch.BlockSpin()
		} else {
			// Outside a session (driver context) nobody can hold it.
			t.Crashf("deadlock", "spinlock recursion on %s", class)
		}
	}
	if t.sch != nil {
		t.sch.ClearSpin()
	}
	t.K.Lockdep.Acquired(t, addr, class)
}

// SpinTrylock attempts to acquire the lock without waiting.
func (t *Task) SpinTrylock(i trace.InstrID, addr trace.Addr, class string) bool {
	if t.TestAndSetBitLock(i, lockBit, addr) {
		return false
	}
	t.K.Lockdep.Acquired(t, addr, class)
	return true
}

// SpinUnlock releases the spinlock (release semantics: clear_bit_unlock).
func (t *Task) SpinUnlock(i trace.InstrID, addr trace.Addr) {
	t.K.Lockdep.Released(t, addr)
	t.ClearBitUnlock(i, lockBit, addr)
}

// Lockdep is a runtime lock-order validator in the spirit of Linux's
// lockdep: it learns the order in which lock classes are taken and crashes
// on a cycle ("possible circular locking dependency").
type Lockdep struct {
	// edges[a][b]: class a was held while acquiring class b.
	edges map[string]map[string]bool
	// held tracks the classes each task currently holds, in order.
	held map[int][]heldLock
}

type heldLock struct {
	addr  trace.Addr
	class string
}

// NewLockdep returns an empty validator.
func NewLockdep() *Lockdep {
	return &Lockdep{
		edges: make(map[string]map[string]bool),
		held:  make(map[int][]heldLock),
	}
}

// Reset forgets all learned lock-order edges and held-lock state, returning
// the validator to its freshly-constructed state (used when a kernel is
// recycled across independent executions).
func (l *Lockdep) Reset() {
	clear(l.edges)
	clear(l.held)
}

// BeforeAcquire validates the ordering of an acquisition attempt and records
// the dependency edges. It crashes the task on (a) AA recursion and (b) a
// learned ABBA cycle.
func (l *Lockdep) BeforeAcquire(t *Task, addr trace.Addr, class string) {
	for _, h := range l.held[t.ID] {
		if h.addr == addr {
			t.Crashf("lockdep", "WARNING: possible recursive locking detected (%s)", class)
		}
		if h.class == class {
			continue // same-class nesting: allow (real lockdep uses subclasses)
		}
		// Edge held.class -> class; a pre-existing reverse path is a
		// potential ABBA deadlock.
		if l.path(class, h.class, map[string]bool{}) {
			t.Crashf("lockdep", "WARNING: possible circular locking dependency detected (%s -> %s)", h.class, class)
		}
		m := l.edges[h.class]
		if m == nil {
			m = make(map[string]bool)
			l.edges[h.class] = m
		}
		m[class] = true
	}
}

// path reports whether class "to" is reachable from "from" in the learned
// dependency graph.
func (l *Lockdep) path(from, to string, seen map[string]bool) bool {
	if from == to {
		return true
	}
	if seen[from] {
		return false
	}
	seen[from] = true
	for next := range l.edges[from] {
		if l.path(next, to, seen) {
			return true
		}
	}
	return false
}

// Acquired records a successful acquisition.
func (l *Lockdep) Acquired(t *Task, addr trace.Addr, class string) {
	l.held[t.ID] = append(l.held[t.ID], heldLock{addr: addr, class: class})
}

// Released records a release (any order, like the kernel).
func (l *Lockdep) Released(t *Task, addr trace.Addr) {
	hs := l.held[t.ID]
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i].addr == addr {
			l.held[t.ID] = append(hs[:i], hs[i+1:]...)
			return
		}
	}
	// Releasing a lock not held: a bug in module code, not the kernel
	// under test — surface loudly.
	t.Crashf("lockdep", "WARNING: bad unlock balance detected at 0x%x", uint64(addr))
}

// HeldCount returns how many locks the task currently holds (tests).
func (l *Lockdep) HeldCount(taskID int) int { return len(l.held[taskID]) }
