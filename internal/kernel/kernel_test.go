package kernel

import (
	"strings"
	"testing"

	"ozz/internal/sched"
	"ozz/internal/trace"
)

// runTask executes body on a fresh kernel task inside a sequential session
// and returns the recovered crash (nil if clean).
func runTask(k *Kernel, body func(t *Task)) *Crash {
	task := k.NewTask(0)
	s := sched.NewSession(sched.Sequential{})
	s.Spawn(0, 0, func(st *sched.Task) {
		task.Bind(st)
		body(task)
	})
	switch v := s.Run().(type) {
	case nil:
		return nil
	case *Crash:
		return v
	default:
		panic(v)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	k := New(2)
	crash := runTask(k, func(t2 *Task) {
		a := t2.Kzalloc(2)
		t2.Store(1, a, 42)
		if got := t2.Load(2, a); got != 42 {
			t2.Crashf("test", "got %d", got)
		}
	})
	if crash != nil {
		t.Fatalf("crash: %v", crash)
	}
}

func TestNullDerefTitle(t *testing.T) {
	k := New(2)
	crash := runTask(k, func(t2 *Task) {
		defer t2.Enter("some_reader")()
		t2.Load(1, 0x8)
	})
	if crash == nil || crash.Title != "BUG: unable to handle kernel NULL pointer dereference in some_reader" {
		t.Fatalf("crash = %v", crash)
	}
}

func TestNullWriteTitle(t *testing.T) {
	k := New(2)
	crash := runTask(k, func(t2 *Task) {
		defer t2.Enter("fput")()
		t2.Store(1, 0x8, 0)
	})
	if crash == nil || crash.Title != "KASAN: null-ptr-deref Write in fput" {
		t.Fatalf("crash = %v", crash)
	}
}

func TestOOBTitle(t *testing.T) {
	k := New(2)
	crash := runTask(k, func(t2 *Task) {
		defer t2.Enter("reader_fn")()
		a := t2.Kzalloc(2)
		t2.Load(1, Field(a, 2))
	})
	if crash == nil || crash.Title != "KASAN: slab-out-of-bounds Read in reader_fn" {
		t.Fatalf("crash = %v", crash)
	}
}

func TestUAFTitle(t *testing.T) {
	k := New(2)
	crash := runTask(k, func(t2 *Task) {
		defer t2.Enter("worker")()
		a := t2.Kzalloc(1)
		t2.Kfree(a)
		t2.Store(1, a, 1)
	})
	if crash == nil || !strings.Contains(crash.Title, "use-after-free Write in worker") {
		t.Fatalf("crash = %v", crash)
	}
}

func TestWildFnPointerGPF(t *testing.T) {
	k := New(2)
	crash := runTask(k, func(t2 *Task) {
		defer t2.Enter("add_wait_queue")()
		t2.CallFn(1, 0xdead4ead_deadbeef, 0)
	})
	if crash == nil || crash.Title != "general protection fault in add_wait_queue" {
		t.Fatalf("crash = %v", crash)
	}
}

func TestNullFnPointer(t *testing.T) {
	k := New(2)
	crash := runTask(k, func(t2 *Task) {
		defer t2.Enter("caller")()
		t2.CallFn(1, 0, 0)
	})
	if crash == nil || !strings.Contains(crash.Title, "NULL pointer dereference in caller") {
		t.Fatalf("crash = %v", crash)
	}
}

func TestRegisteredFnCall(t *testing.T) {
	k := New(2)
	fn := k.RegisterFn("double", func(t2 *Task, arg uint64) uint64 { return arg * 2 })
	crash := runTask(k, func(t2 *Task) {
		if got := t2.CallFn(1, fn, 21); got != 42 {
			t2.Crashf("test", "CallFn = %d", got)
		}
	})
	if crash != nil {
		t.Fatalf("crash: %v", crash)
	}
	if k.FnName(fn) != "double" || k.FnName(0) != "<null>" || k.FnName(12345) != "<wild>" {
		t.Fatal("FnName lookup broken")
	}
}

func TestUninstrumentedBypassesOEMU(t *testing.T) {
	k := New(2)
	k.Instrumented = false
	crash := runTask(k, func(t2 *Task) {
		t2.OEMU().Dir.DelayStoreAt(1)
		a := t2.Kzalloc(1)
		t2.Store(1, a, 7)
		// Uninstrumented: the store committed directly; OEMU never saw
		// it.
		if t2.OEMU().PendingStores() != 0 || t2.K.Mem.Read(a) != 7 {
			t2.Crashf("test", "uninstrumented path leaked into OEMU")
		}
	})
	if crash != nil {
		t.Fatalf("crash: %v", crash)
	}
}

func TestProfilingRecordsFiveTuples(t *testing.T) {
	k := New(2)
	var events int
	crash := runTask(k, func(t2 *Task) {
		t2.Prof = &trace.Buffer{}
		a := t2.Kzalloc(1)
		t2.Store(1, a, 1)
		t2.Load(2, a)
		t2.Wmb(3)
		events = t2.Prof.Len()
		accs := t2.Prof.Accesses()
		if len(accs) != 2 || accs[0].Kind != trace.Store || accs[1].Kind != trace.Load {
			t2.Crashf("test", "bad accesses: %v", accs)
		}
		bars := t2.Prof.Barriers()
		if len(bars) != 1 || bars[0].Kind != trace.BarrierStore {
			t2.Crashf("test", "bad barriers: %v", bars)
		}
	})
	if crash != nil {
		t.Fatalf("crash: %v", crash)
	}
	if events != 3 {
		t.Fatalf("events = %d", events)
	}
}

func TestAnnotatedLoadRecordsImplicitBarrier(t *testing.T) {
	k := New(2)
	crash := runTask(k, func(t2 *Task) {
		t2.Prof = &trace.Buffer{}
		a := t2.Kzalloc(1)
		t2.ReadOnce(1, a)
		bars := t2.Prof.Barriers()
		if len(bars) != 1 || bars[0].Kind != trace.BarrierLoad {
			t2.Crashf("test", "READ_ONCE must profile an implicit load barrier: %v", bars)
		}
	})
	if crash != nil {
		t.Fatalf("crash: %v", crash)
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	k := New(2)
	lockWord := k.Mem.AllocZeroed(1)
	shared := k.Mem.AllocZeroed(1)
	taskA, taskB := k.NewTask(0), k.NewTask(1)
	// Interleave aggressively: both tasks increment under the lock.
	s := sched.NewSession(&sched.Random{Seed: 9, Period: 2})
	body := func(task *Task) func(*sched.Task) {
		return func(st *sched.Task) {
			task.Bind(st)
			for i := 0; i < 10; i++ {
				task.SpinLock(1, lockWord, "test_lock")
				v := task.Load(2, shared)
				task.Store(3, shared, v+1)
				task.SpinUnlock(4, lockWord)
			}
		}
	}
	s.Spawn(0, 0, body(taskA))
	s.Spawn(1, 1, body(taskB))
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	if got := k.Mem.Read(shared); got != 20 {
		t.Fatalf("lost update under spinlock: %d, want 20", got)
	}
}

func TestLockdepABBA(t *testing.T) {
	k := New(2)
	l1 := k.Mem.AllocZeroed(1)
	l2 := k.Mem.AllocZeroed(1)
	// Task 1 learns A->B; task 2 then attempts B->A.
	crash := runTask(k, func(t2 *Task) {
		t2.SpinLock(1, l1, "A")
		t2.SpinLock(2, l2, "B")
		t2.SpinUnlock(3, l2)
		t2.SpinUnlock(4, l1)
		t2.SpinLock(5, l2, "B")
		t2.SpinLock(6, l1, "A") // ABBA: must trip lockdep
		t2.SpinUnlock(7, l1)
		t2.SpinUnlock(8, l2)
	})
	if crash == nil || crash.Oracle != "lockdep" {
		t.Fatalf("crash = %v, want lockdep", crash)
	}
}

func TestLockdepRecursion(t *testing.T) {
	k := New(2)
	l := k.Mem.AllocZeroed(1)
	crash := runTask(k, func(t2 *Task) {
		t2.SpinLock(1, l, "A")
		t2.SpinLock(2, l, "A")
	})
	if crash == nil || !strings.Contains(crash.Title, "recursive locking") {
		t.Fatalf("crash = %v", crash)
	}
}

func TestLockdepBadUnlock(t *testing.T) {
	k := New(2)
	l := k.Mem.AllocZeroed(1)
	crash := runTask(k, func(t2 *Task) {
		t2.SpinUnlock(1, l)
	})
	if crash == nil || !strings.Contains(crash.Title, "bad unlock balance") {
		t.Fatalf("crash = %v", crash)
	}
}

func TestAtomicOps(t *testing.T) {
	k := New(2)
	crash := runTask(k, func(t2 *Task) {
		a := t2.Kzalloc(1)
		if t2.AtomicIncReturn(1, a) != 1 || t2.AtomicIncReturn(1, a) != 2 {
			t2.Crashf("test", "inc_return broken")
		}
		if t2.AtomicDecReturn(2, a) != 1 {
			t2.Crashf("test", "dec_return broken")
		}
		if t2.Xchg(3, a, 10) != 1 || t2.AtomicRead(4, a) != 10 {
			t2.Crashf("test", "xchg broken")
		}
		if t2.Cmpxchg(5, a, 10, 20) != 10 || t2.AtomicRead(4, a) != 20 {
			t2.Crashf("test", "cmpxchg success broken")
		}
		if t2.Cmpxchg(5, a, 99, 30) != 20 || t2.AtomicRead(4, a) != 20 {
			t2.Crashf("test", "cmpxchg failure broken")
		}
	})
	if crash != nil {
		t.Fatalf("crash: %v", crash)
	}
}

func TestBitOps(t *testing.T) {
	k := New(2)
	crash := runTask(k, func(t2 *Task) {
		a := t2.Kzalloc(1)
		if t2.TestAndSetBit(1, 3, a) {
			t2.Crashf("test", "bit 3 must start clear")
		}
		if !t2.TestBit(2, 3, a) || t2.TestBit(2, 4, a) {
			t2.Crashf("test", "test_bit broken")
		}
		if !t2.TestAndSetBit(1, 3, a) {
			t2.Crashf("test", "bit 3 must now be set")
		}
		t2.ClearBit(3, 3, a)
		if t2.TestBit(2, 3, a) {
			t2.Crashf("test", "clear_bit broken")
		}
		t2.SetBit(4, 5, a)
		if !t2.TestAndClearBit(5, 5, a) || t2.TestBit(2, 5, a) {
			t2.Crashf("test", "test_and_clear broken")
		}
	})
	if crash != nil {
		t.Fatalf("crash: %v", crash)
	}
}

func TestUnorderedClearBitIsDelayable(t *testing.T) {
	k := New(2)
	crash := runTask(k, func(t2 *Task) {
		a := t2.Kzalloc(1)
		t2.SetBit(1, 0, a) // committed
		t2.OEMU().Dir.DelayStoreAt(2)
		t2.ClearBit(2, 0, a) // unordered: delayed
		if t2.K.Mem.Read(a) != 1 {
			t2.Crashf("test", "clear_bit must be delayable (Fig. 8)")
		}
		t2.ClearBitUnlock(3, 0, a) // release: flushes + clears
		if t2.K.Mem.Read(a) != 0 {
			t2.Crashf("test", "clear_bit_unlock must flush and commit")
		}
	})
	if crash != nil {
		t.Fatalf("crash: %v", crash)
	}
}

func TestPerCPU(t *testing.T) {
	k := New(4)
	h := k.PerCPUAlloc(1)
	crash := runTask(k, func(t2 *Task) {
		a0 := t2.ThisCPUAddr(h, 1)
		t2.Store(1, a0, 7)
		if t2.Load(2, a0) != 7 {
			t2.Crashf("test", "per-cpu slot broken")
		}
	})
	if crash != nil {
		t.Fatalf("crash: %v", crash)
	}
	// A task on another CPU resolves a different slot.
	other := k.NewTask(2)
	if other.ThisCPUAddr(h, 1) == h {
		t.Fatal("per-cpu copies must differ per CPU")
	}
}

func TestCoverageEdges(t *testing.T) {
	k := New(2)
	runTask(k, func(t2 *Task) {
		a := t2.Kzalloc(1)
		t2.Store(1, a, 1)
		t2.Store(2, a, 2)
		t2.Store(1, a, 3)
	})
	if len(k.Cov) < 2 {
		t.Fatalf("coverage edges = %d", len(k.Cov))
	}
}

func TestAssertAndSoftReport(t *testing.T) {
	k := New(2)
	crash := runTask(k, func(t2 *Task) {
		defer t2.Enter("checker")()
		t2.SoftReport("soft finding")
		t2.Assert(1 == 1, "fine")
		t2.Assert(false, "invariant broken")
	})
	if crash == nil || crash.Title != "kernel BUG: invariant broken in checker" {
		t.Fatalf("crash = %v", crash)
	}
	if len(k.Soft) != 1 || k.Soft[0] != "soft finding" {
		t.Fatalf("soft = %v", k.Soft)
	}
}

func TestSyscallReturnFlushes(t *testing.T) {
	k := New(2)
	crash := runTask(k, func(t2 *Task) {
		a := t2.Kzalloc(1)
		t2.OEMU().Dir.DelayStoreAt(1)
		t2.Store(1, a, 5)
		if t2.K.Mem.Read(a) != 0 {
			t2.Crashf("test", "store must be delayed")
		}
		t2.SyscallReturn()
		if t2.K.Mem.Read(a) != 5 {
			t2.Crashf("test", "syscall return must drain the store buffer")
		}
	})
	if crash != nil {
		t.Fatalf("crash: %v", crash)
	}
}

func TestSmpMbAtomicHelpers(t *testing.T) {
	k := New(2)
	crash := runTask(k, func(t2 *Task) {
		a := t2.Kzalloc(2)
		// A delayed store must not survive smp_store_mb or the
		// before/after-atomic fences.
		t2.OEMU().Dir.DelayStoreAt(1)
		t2.Store(1, Field(a, 0), 1)
		t2.SmpMbBeforeAtomic(2)
		if t2.K.Mem.Read(Field(a, 0)) != 1 {
			t2.Crashf("test", "smp_mb__before_atomic did not flush")
		}
		t2.OEMU().Dir.DelayStoreAt(3)
		t2.Store(3, Field(a, 0), 2)
		t2.SmpStoreMb(4, Field(a, 1), 9)
		if t2.K.Mem.Read(Field(a, 0)) != 2 || t2.K.Mem.Read(Field(a, 1)) != 9 {
			t2.Crashf("test", "smp_store_mb did not flush/commit")
		}
		t2.OEMU().Dir.DelayStoreAt(5)
		t2.ClearBit(5, 0, Field(a, 0))
		t2.SmpMbAfterAtomic(6)
		if t2.K.Mem.Read(Field(a, 0))&1 != 0 {
			t2.Crashf("test", "smp_mb__after_atomic did not flush the clear_bit")
		}
	})
	if crash != nil {
		t.Fatalf("crash: %v", crash)
	}
}
