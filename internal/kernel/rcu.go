package kernel

import (
	"ozz/internal/trace"
)

// Read-copy-update: the flagship lockless technique the paper's
// introduction motivates. Readers mark read-side critical sections;
// updaters publish with release semantics (rcu_assign_pointer), readers
// consume with an annotated load (rcu_dereference), and reclamation waits
// for a grace period (synchronize_rcu) or defers callbacks (call_rcu).
//
// The ordering content is exactly the paper's subject: rcu_assign_pointer
// IS a release store — replace it with a plain store and the publication
// races out of order (the rcudev module's bug).

// RCU is the per-kernel RCU state.
type RCU struct {
	k *Kernel
	// nesting tracks read-side critical-section depth per task.
	nesting map[int]int
	// pending holds call_rcu callbacks awaiting a grace period.
	pending []func(*Task)
}

// RCU returns the kernel's RCU instance (created on first use).
func (k *Kernel) RCU() *RCU {
	if k.rcu == nil {
		k.rcu = &RCU{k: k, nesting: make(map[int]int)}
	}
	return k.rcu
}

// ReadLock enters a read-side critical section (rcu_read_lock).
func (r *RCU) ReadLock(t *Task) {
	r.nesting[t.ID]++
}

// ReadUnlock leaves the read-side critical section (rcu_read_unlock).
func (r *RCU) ReadUnlock(t *Task) {
	if r.nesting[t.ID] == 0 {
		t.Crashf("rcu", "WARNING: rcu_read_unlock without rcu_read_lock")
	}
	r.nesting[t.ID]--
}

// InReader reports whether the task is inside a read-side section.
func (r *RCU) InReader(t *Task) bool { return r.nesting[t.ID] > 0 }

// readersActive reports whether any OTHER task is inside a read-side
// section.
func (r *RCU) readersActive(t *Task) bool {
	for id, n := range r.nesting {
		if id != t.ID && n > 0 {
			return true
		}
	}
	return false
}

// Synchronize waits for a grace period: every read-side critical section
// that started before the call has ended. It then runs pending call_rcu
// callbacks. Calling it from inside a read-side section is a deadlock by
// definition and crashes immediately (like lockdep-RCU).
func (r *RCU) Synchronize(t *Task) {
	if r.InReader(t) {
		t.Crashf("rcu", "WARNING: synchronize_rcu inside a read-side critical section")
	}
	// A grace period implies full ordering on the caller.
	t.Mb(rcuSyncSite)
	for r.readersActive(t) {
		if t.Sched() == nil || t.Sched().Peers() == 0 {
			break // nobody can be mid-section: trivially quiescent
		}
		t.Sched().BlockSpin()
		t.Sched().ClearSpin()
	}
	t.Mb(rcuSyncSite)
	cbs := r.pending
	r.pending = nil
	for _, cb := range cbs {
		cb(t)
	}
}

// CallRCU defers fn to run after the next grace period (call_rcu).
func (r *RCU) CallRCU(fn func(*Task)) {
	r.pending = append(r.pending, fn)
}

// rcuSyncSite is the instruction site of synchronize_rcu's fences.
const rcuSyncSite trace.InstrID = 0xfff0

// RcuAssignPointer is rcu_assign_pointer(*addr, v): a release store — all
// initialization of the pointed-to object is ordered before the
// publication.
func (t *Task) RcuAssignPointer(i trace.InstrID, addr trace.Addr, v uint64) {
	t.StoreRelease(i, addr, v)
}

// RcuDereference is rcu_dereference(*addr): an annotated load whose
// address dependency orders subsequent dereferences (LKMM Case 6 — OEMU
// models it as a load barrier after the load, §3.2).
func (t *Task) RcuDereference(i trace.InstrID, addr trace.Addr) uint64 {
	return t.load(i, addr, trace.Once)
}
