package kernel

import (
	"ozz/internal/trace"
)

// Seqlocks (seqcount readers/writers), the kernel's torn-read guard for
// small multi-word data (jiffies, timekeeping, ...). The barrier content is
// load-bearing: the writer brackets its updates with smp_wmb (odd/even
// sequence numbers), and the reader needs an smp_rmb BEFORE re-reading the
// sequence — without it the retry check can be satisfied by a stale
// sequence value while the data loads observed a torn intermediate state
// (the seqtime module's bug).

// WriteSeqBegin enters the write side: the sequence becomes odd and the
// subsequent data stores are ordered after it.
func (t *Task) WriteSeqBegin(i trace.InstrID, seq trace.Addr) {
	s := t.load(i, seq, trace.Plain)
	t.store(i, seq, s+1, trace.Once)
	t.Wmb(i)
}

// WriteSeqEnd leaves the write side: the data stores are ordered before the
// sequence becomes even again.
func (t *Task) WriteSeqEnd(i trace.InstrID, seq trace.Addr) {
	t.Wmb(i)
	s := t.load(i, seq, trace.Plain)
	t.store(i, seq, s+1, trace.Once)
}

// ReadSeqBegin samples the sequence, spinning past in-flight writers (odd
// values), and orders the subsequent data loads after the sample.
func (t *Task) ReadSeqBegin(i trace.InstrID, seq trace.Addr) uint64 {
	for {
		s := t.load(i, seq, trace.Once)
		if s&1 == 0 {
			t.Rmb(i)
			return s
		}
		if t.sch != nil && t.sch.Peers() > 0 {
			t.sch.BlockSpin()
			t.sch.ClearSpin()
		} else {
			// No writer can be mid-update (single task): the odd
			// value is leaked state; treat as even to make progress.
			t.Rmb(i)
			return s
		}
	}
}

// ReadSeqRetry re-checks the sequence after the data loads; true means the
// reader raced a writer and must retry. The rmb parameter models the bug
// switch: the CORRECT implementation orders the data loads before the
// re-read (rmb true); without it the re-read may observe a stale sequence
// and accept torn data.
func (t *Task) ReadSeqRetry(i trace.InstrID, seq trace.Addr, start uint64, rmb bool) bool {
	if rmb {
		t.Rmb(i)
	}
	return t.load(i, seq, trace.Plain) != start
}
