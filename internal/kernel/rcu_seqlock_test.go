package kernel

import (
	"strings"
	"testing"

	"ozz/internal/sched"
)

// TestRCUReadSideNesting: nesting balances; unbalanced unlock crashes.
func TestRCUReadSideNesting(t *testing.T) {
	k := New(2)
	crash := runTask(k, func(t2 *Task) {
		r := k.RCU()
		r.ReadLock(t2)
		r.ReadLock(t2)
		if !r.InReader(t2) {
			t2.Crashf("test", "not in reader")
		}
		r.ReadUnlock(t2)
		r.ReadUnlock(t2)
		if r.InReader(t2) {
			t2.Crashf("test", "still in reader")
		}
	})
	if crash != nil {
		t.Fatalf("crash: %v", crash)
	}
	crash = runTask(k, func(t2 *Task) {
		k.RCU().ReadUnlock(t2)
	})
	if crash == nil || !strings.Contains(crash.Title, "rcu_read_unlock without") {
		t.Fatalf("unbalanced unlock: %v", crash)
	}
}

// TestRCUSynchronizeWaitsForReader: an updater's synchronize_rcu does not
// return while another task is mid-read-side-section.
func TestRCUSynchronizeWaitsForReader(t *testing.T) {
	k := New(2)
	r := k.RCU()
	reader, updater := k.NewTask(0), k.NewTask(1)
	var order []string
	s := sched.NewSession(sched.Sequential{})
	s.Spawn(0, 0, func(st *sched.Task) {
		reader.Bind(st)
		r.ReadLock(reader)
		order = append(order, "lock")
		st.Yield(1) // let the updater run into Synchronize
		st.Yield(2)
		order = append(order, "unlock")
		r.ReadUnlock(reader)
	})
	s.Spawn(1, 1, func(st *sched.Task) {
		updater.Bind(st)
		r.Synchronize(updater)
		order = append(order, "grace-period-done")
	})
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	if order[len(order)-1] != "grace-period-done" {
		t.Fatalf("synchronize returned before the reader exited: %v", order)
	}
}

// TestRCUSynchronizeInsideReaderCrashes: lockdep-RCU semantics.
func TestRCUSynchronizeInsideReaderCrashes(t *testing.T) {
	k := New(2)
	crash := runTask(k, func(t2 *Task) {
		r := k.RCU()
		r.ReadLock(t2)
		r.Synchronize(t2)
	})
	if crash == nil || !strings.Contains(crash.Title, "synchronize_rcu inside") {
		t.Fatalf("crash = %v", crash)
	}
}

// TestRCUCallbacksRunAfterGracePeriod: call_rcu callbacks run at the next
// synchronize.
func TestRCUCallbacksRunAfterGracePeriod(t *testing.T) {
	k := New(2)
	ran := 0
	crash := runTask(k, func(t2 *Task) {
		r := k.RCU()
		r.CallRCU(func(*Task) { ran++ })
		r.CallRCU(func(*Task) { ran++ })
		if ran != 0 {
			t2.Crashf("test", "callbacks ran early")
		}
		r.Synchronize(t2)
		if ran != 2 {
			t2.Crashf("test", "callbacks did not run: %d", ran)
		}
	})
	if crash != nil {
		t.Fatalf("crash: %v", crash)
	}
}

// TestSeqlockWriterReaderRoundTrip: a sequential write/read cycle yields a
// consistent snapshot and even sequence numbers.
func TestSeqlockWriterReaderRoundTrip(t *testing.T) {
	k := New(2)
	crash := runTask(k, func(t2 *Task) {
		clk := t2.Kzalloc(3)
		seq := Field(clk, 0)
		t2.WriteSeqBegin(1, seq)
		t2.Store(2, Field(clk, 1), 7)
		t2.Store(3, Field(clk, 2), 14)
		t2.WriteSeqEnd(4, seq)
		s := t2.ReadSeqBegin(5, seq)
		if s%2 != 0 || s != 2 {
			t2.Crashf("test", "seq = %d", s)
		}
		a := t2.Load(6, Field(clk, 1))
		b := t2.Load(7, Field(clk, 2))
		if t2.ReadSeqRetry(8, seq, s, true) {
			t2.Crashf("test", "spurious retry")
		}
		if a != 7 || b != 14 {
			t2.Crashf("test", "snapshot %d/%d", a, b)
		}
	})
	if crash != nil {
		t.Fatalf("crash: %v", crash)
	}
}

// TestSeqlockRetryDetectsConcurrentWrite: a reader that raced an in-flight
// write sees a retry with the correct barrier.
func TestSeqlockRetryDetectsConcurrentWrite(t *testing.T) {
	k := New(2)
	clk := k.Mem.AllocZeroed(3)
	seq := Field(clk, 0)
	reader, writer := k.NewTask(0), k.NewTask(1)
	bp := &sched.Breakpoint{FromTask: 0, Instr: 6, Pos: sched.PosAfter, ToTask: 1}
	s := sched.NewSession(bp)
	retried := false
	s.Spawn(0, 0, func(st *sched.Task) {
		reader.Bind(st)
		start := reader.ReadSeqBegin(5, seq)
		reader.Load(6, Field(clk, 1)) // breakpoint: writer runs here
		reader.Load(7, Field(clk, 2))
		retried = reader.ReadSeqRetry(8, seq, start, true)
	})
	s.Spawn(1, 1, func(st *sched.Task) {
		writer.Bind(st)
		writer.WriteSeqBegin(1, seq)
		writer.Store(2, Field(clk, 1), 1)
		writer.Store(3, Field(clk, 2), 2)
		writer.WriteSeqEnd(4, seq)
	})
	if aborted := s.Run(); aborted != nil {
		t.Fatalf("aborted: %v", aborted)
	}
	if !retried {
		t.Fatal("reader did not detect the concurrent write")
	}
}
