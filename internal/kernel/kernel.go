// Package kernel implements the simulated kernel runtime the bug-corpus
// modules are written against: tasks, the instrumented memory-access API
// (the moral equivalent of the paper's LLVM-pass-inserted callbacks, Fig. 2),
// atomic operations and bit locks, a slab allocator with KASAN oracles, a
// lockdep-style lock-order validator, per-CPU variables, a function-pointer
// table, and KCov-style edge coverage.
//
// Every instrumented operation is simultaneously
//
//  1. a scheduling point for the deterministic scheduler (package sched),
//  2. an OEMU operation that may be reordered (package oemu),
//  3. a sanitizer check (package kmem), and
//  4. a profiling event while OZZ's single-threaded phase runs (§4.2).
//
// Setting Kernel.Instrumented = false bypasses OEMU and profiling entirely,
// modelling the paper's uninstrumented baseline kernel (Table 5).
package kernel

import (
	"fmt"

	"ozz/internal/kmem"
	"ozz/internal/oemu"
	"ozz/internal/sched"
	"ozz/internal/trace"
)

// Crash is the simulated kernel's oops/panic. It is thrown as a Go panic
// from the faulting task and recovered at the scheduler session boundary.
type Crash struct {
	// Title is the dedup key, formatted like a syzkaller crash title,
	// e.g. "KASAN: slab-out-of-bounds Read in rds_loop_xmit".
	Title string
	// Oracle names the detector: kasan, null-deref, gpf, lockdep,
	// assert, deadlock.
	Oracle string
	// Instr is the faulting instruction site, if any.
	Instr trace.InstrID
	// Addr is the faulting address, if any.
	Addr trace.Addr
	// Detail carries free-form context for the report.
	Detail string
}

// Error implements error.
func (c *Crash) Error() string { return c.Title }

// FnBase is the value-space base for function-pointer encodings. Function
// "addresses" handed out by RegisterFn are FnBase|index, so stored function
// pointers are plain uint64 values in simulated memory, and calling a
// corrupt one faults just like the real kernel.
const FnBase uint64 = 0xffff_f000_0000_0000

// Fn is a simulated kernel function reachable through a function pointer.
type Fn func(t *Task, arg uint64) uint64

// Kernel is one simulated kernel instance. Each test execution gets a fresh
// instance: memory, emulator, oracles, and module state all start clean, so
// runs are deterministic and independent.
type Kernel struct {
	Mem *kmem.Memory
	Em  *oemu.OEMU

	// Instrumented selects the OEMU path (the compiler pass applied:
	// access callbacks, scheduling points, profiling, reordering).
	Instrumented bool

	// Sanitizers keeps KASAN/KCov/scheduling points active when
	// Instrumented is false — the configuration of a syzkaller fuzzing
	// kernel WITHOUT OEMU (the §6.3.2 throughput baseline). With both
	// flags false the kernel is entirely plain (Table 5's baseline).
	Sanitizers bool

	Lockdep *Lockdep

	// Cov accumulates KCov-style edges (prev site << 32 | site).
	Cov map[uint64]struct{}

	// Soft collects non-crash oracle reports (e.g. the wrong-return-value
	// symptom of Table 4 bug #8) without aborting execution.
	Soft []string

	// OnAccess, when non-nil, observes every instrumented memory access
	// before it executes. It is the attachment point for access-driven
	// tools such as the KCSAN-style watchpoint race detector
	// (internal/baseline/kcsan). The hook may suspend the task through
	// its scheduler handle.
	OnAccess func(t *Task, ev trace.AccessEvent)

	fns     []Fn
	fnNames []string

	tasks  []*Task
	nextID int

	percpuStride trace.Addr
	percpuRanges []percpuRange
	nrCPU        int

	rcu *RCU
}

// New creates a fresh instrumented kernel with nrCPU simulated CPUs.
func New(nrCPU int) *Kernel {
	mem := kmem.New()
	k := &Kernel{
		Mem:          mem,
		Em:           oemu.New(mem),
		Instrumented: true,
		Lockdep:      NewLockdep(),
		Cov:          make(map[uint64]struct{}),
		nrCPU:        nrCPU,
	}
	// Slot 0 of the fn table is never handed out: FnBase|0 is reserved so
	// that a zeroed function pointer is NULL, not a callable entry.
	k.fns = append(k.fns, nil)
	k.fnNames = append(k.fnNames, "<null>")
	return k
}

// NrCPU returns the number of simulated CPUs.
func (k *Kernel) NrCPU() int { return k.nrCPU }

// Reset returns the kernel to the state New left it in — empty memory,
// emulator, oracles, coverage, and task/function tables — while retaining
// the underlying storage, so an executor can recycle one Kernel across
// independent test executions instead of rebuilding it. The coverage map
// is replaced (not cleared): callers take ownership of the old one when
// they capture a run's coverage.
func (k *Kernel) Reset() {
	k.Mem.Reset()
	k.Em.Reset()
	k.Instrumented = true
	k.Sanitizers = false
	k.Lockdep.Reset()
	k.Cov = make(map[uint64]struct{})
	k.Soft = nil
	k.OnAccess = nil
	k.fns = k.fns[:1]
	k.fnNames = k.fnNames[:1]
	for i := range k.tasks {
		k.tasks[i] = nil
	}
	k.tasks = k.tasks[:0]
	k.nextID = 0
	k.percpuStride = 0
	k.percpuRanges = k.percpuRanges[:0]
	k.rcu = nil
}

// NewTask creates a simulated kernel task pinned to the given CPU.
func (k *Kernel) NewTask(cpu int) *Task {
	t := &Task{
		K:        k,
		ID:       k.nextID,
		oe:       k.Em.NewThread(k.nextID),
		cpu:      cpu,
		lastEdge: noEdge,
	}
	k.nextID++
	k.tasks = append(k.tasks, t)
	return t
}

// RegisterFn installs a function in the kernel's function table and returns
// its pointer value (suitable for storing in simulated memory).
func (k *Kernel) RegisterFn(name string, fn Fn) uint64 {
	k.fns = append(k.fns, fn)
	k.fnNames = append(k.fnNames, name)
	return FnBase | uint64(len(k.fns)-1)
}

// FnName returns the registered name for a function-pointer value, for
// reports ("<null>" for 0, "<wild>" otherwise).
func (k *Kernel) FnName(val uint64) string {
	if val == 0 {
		return "<null>"
	}
	if val&FnBase == FnBase {
		idx := int(val &^ FnBase)
		if idx > 0 && idx < len(k.fnNames) {
			return k.fnNames[idx]
		}
	}
	return "<wild>"
}

// Task is one simulated kernel task: the execution context module code runs
// in. It binds together the scheduler handle (per session), the OEMU
// thread (persistent), the profiling buffer, and the current-function stack
// used to format crash titles.
type Task struct {
	K  *Kernel
	ID int

	oe  *oemu.Thread
	sch *sched.Task
	cpu int

	// Prof, when non-nil, records the access/barrier events of §4.2.
	Prof *trace.Buffer

	fnStack  []string
	prevSite trace.InstrID
	// lastEdge caches the coverage edge inserted by the previous yield so
	// tight loops re-hitting the same edge (spin waits, scan loops) skip
	// the map assignment. Initialized to an impossible edge value.
	lastEdge uint64
}

// noEdge is the lastEdge sentinel: site ids are far below 2^32, so a real
// edge never has all upper bits set.
const noEdge = ^uint64(0)

// Bind attaches the task to a scheduler-session task handle. The kernel task
// persists across sessions (its OEMU store buffer survives); the session
// handle is per-run.
func (t *Task) Bind(s *sched.Task) { t.sch = s }

// Sched returns the bound scheduler handle (nil outside a session).
func (t *Task) Sched() *sched.Task { return t.sch }

// OEMU returns the task's emulator thread, through which the fuzzer installs
// reordering directives (Table 2).
func (t *Task) OEMU() *oemu.Thread { return t.oe }

// CPU returns the simulated CPU the task currently runs on.
func (t *Task) CPU() int {
	if t.sch != nil {
		return t.sch.CPU
	}
	return t.cpu
}

// Enter pushes a function name onto the task's call stack for crash titles;
// use as: defer t.Enter("tls_setsockopt")().
func (t *Task) Enter(name string) func() {
	t.fnStack = append(t.fnStack, name)
	return func() { t.fnStack = t.fnStack[:len(t.fnStack)-1] }
}

// CurrentFn returns the innermost function name, or "unknown".
func (t *Task) CurrentFn() string {
	if n := len(t.fnStack); n > 0 {
		return t.fnStack[n-1]
	}
	return "unknown"
}

// yield hits the scheduling point for instruction site i and records the
// coverage edge.
func (t *Task) yield(i trace.InstrID) {
	if t.sch != nil {
		t.sch.Yield(i)
	}
	edge := uint64(t.prevSite)<<32 | uint64(i)
	if edge != t.lastEdge {
		t.K.Cov[edge] = struct{}{}
		t.lastEdge = edge
	}
	t.prevSite = i
}

// Crash throws a kernel crash from this task.
func (t *Task) Crash(c *Crash) {
	panic(c)
}

// Crashf formats and throws a crash with the given oracle.
func (t *Task) Crashf(oracle, format string, args ...any) {
	t.Crash(&Crash{Title: fmt.Sprintf(format, args...), Oracle: oracle})
}

// Assert throws a "kernel BUG" crash when cond is false.
func (t *Task) Assert(cond bool, what string) {
	if !cond {
		t.Crash(&Crash{Title: "kernel BUG: " + what + " in " + t.CurrentFn(), Oracle: "assert"})
	}
}

// SoftReport records a non-crash oracle hit (execution continues).
func (t *Task) SoftReport(title string) {
	t.K.Soft = append(t.K.Soft, title)
}

// crashFault converts a sanitizer fault into a crash with a Linux-flavored
// title naming the current function.
func (t *Task) crashFault(f *kmem.Fault) {
	fn := t.CurrentFn()
	var title, oracle string
	rw := "Read"
	if f.Acc == trace.Store {
		rw = "Write"
	}
	switch f.Kind {
	case kmem.FaultNull:
		if f.Acc == trace.Store {
			title = fmt.Sprintf("KASAN: null-ptr-deref %s in %s", rw, fn)
			oracle = "kasan"
		} else {
			title = fmt.Sprintf("BUG: unable to handle kernel NULL pointer dereference in %s", fn)
			oracle = "null-deref"
		}
	case kmem.FaultWild:
		title = fmt.Sprintf("general protection fault in %s", fn)
		oracle = "gpf"
	case kmem.FaultOOB:
		title = fmt.Sprintf("KASAN: slab-out-of-bounds %s in %s", rw, fn)
		oracle = "kasan"
	case kmem.FaultUAF:
		title = fmt.Sprintf("KASAN: use-after-free %s in %s", rw, fn)
		oracle = "kasan"
	default:
		title = fmt.Sprintf("unexpected fault in %s", fn)
		oracle = "kasan"
	}
	t.Crash(&Crash{Title: title, Oracle: oracle, Instr: f.Instr, Addr: f.Addr})
}

// Kmalloc allocates n words of simulated kernel memory (uninitialized,
// poison-patterned like real kmalloc under slub_debug).
func (t *Task) Kmalloc(n int) trace.Addr { return t.K.Mem.Alloc(n) }

// Kzalloc allocates n zeroed words.
func (t *Task) Kzalloc(n int) trace.Addr { return t.K.Mem.AllocZeroed(n) }

// Kfree frees an allocation; freeing a bad pointer crashes (KASAN
// invalid-free).
func (t *Task) Kfree(a trace.Addr) {
	if err := t.K.Mem.Free(a); err != nil {
		t.Crash(&Crash{Title: "KASAN: invalid-free in " + t.CurrentFn(), Oracle: "kasan", Addr: a})
	}
}

// CallFn invokes a function-pointer value loaded from simulated memory.
// A zero value is a NULL function-pointer dereference; a value outside the
// function table is a wild jump (general protection fault) — e.g. the
// kmalloc poison pattern of a never-initialized pointer field.
func (t *Task) CallFn(i trace.InstrID, val uint64, arg uint64) uint64 {
	t.yield(i)
	if val == 0 {
		t.Crash(&Crash{
			Title:  "BUG: unable to handle kernel NULL pointer dereference in " + t.CurrentFn(),
			Oracle: "null-deref", Instr: i,
		})
	}
	if val&FnBase != FnBase {
		t.Crash(&Crash{Title: "general protection fault in " + t.CurrentFn(), Oracle: "gpf", Instr: i})
	}
	idx := int(val &^ FnBase)
	if idx <= 0 || idx >= len(t.K.fns) {
		t.Crash(&Crash{Title: "general protection fault in " + t.CurrentFn(), Oracle: "gpf", Instr: i})
	}
	return t.K.fns[idx](t, arg)
}

// Field returns the address of the i-th 64-bit field of the object at base —
// the moral equivalent of &obj->field.
func Field(base trace.Addr, i int) trace.Addr {
	return base + trace.Addr(i*kmem.WordSize)
}

// PerCPUAlloc allocates a per-CPU variable of n words per CPU and returns a
// handle (the base of CPU 0's copy). Use Task.ThisCPUAddr to resolve the
// running CPU's copy — and note that resolving it early and migrating is
// exactly the behaviour behind Table 4 bug #6.
func (k *Kernel) PerCPUAlloc(n int) trace.Addr {
	base := k.Mem.AllocZeroed(n * k.nrCPU)
	k.percpuStride = trace.Addr(n * kmem.WordSize)
	k.percpuRanges = append(k.percpuRanges, percpuRange{
		base: base,
		end:  base + trace.Addr(n*k.nrCPU*kmem.WordSize),
	})
	return base
}

// percpuRange is one per-CPU allocation's address span (all CPUs' copies).
type percpuRange struct {
	base, end trace.Addr
}

// IsPerCPU reports whether addr lies inside a per-CPU allocation made by
// PerCPUAlloc since the last Reset. Profiling tags matching accesses with
// trace.AccessEvent.PerCPU so hint calculation can mark migration-sensitive
// pairs.
func (k *Kernel) IsPerCPU(addr trace.Addr) bool {
	for _, r := range k.percpuRanges {
		if addr >= r.base && addr < r.end {
			return true
		}
	}
	return false
}

// ThisCPUAddr resolves a per-CPU handle for the CPU the task currently runs
// on.
func (t *Task) ThisCPUAddr(handle trace.Addr, words int) trace.Addr {
	return handle + trace.Addr(t.CPU()*words*kmem.WordSize)
}
