package kernel

import (
	"ozz/internal/kmem"
	"ozz/internal/trace"
)

// This file is the instrumented memory-access API — the Go equivalent of the
// callbacks the paper's LLVM pass inserts in place of loads, stores, and
// barriers (Fig. 2). Module code performs ALL shared-memory accesses through
// these methods, each carrying a static instruction-site ID.

// load is the common load path: scheduling point, sanitizer check, OEMU (or
// direct) read, profiling.
func (t *Task) load(i trace.InstrID, addr trace.Addr, atom trace.Atomicity) uint64 {
	if !t.K.Instrumented {
		if !t.K.Sanitizers {
			// Entirely plain kernel (no compiler pass, no fuzzing
			// config): no callback work at all — Table 5's baseline.
			return t.K.Mem.Read(addr)
		}
		// Fuzzing kernel without OEMU (KASAN + KCov + scheduling
		// points): the syzkaller baseline of §6.3.2.
		t.yield(i)
		if f := t.K.Mem.Check(i, addr, trace.Load); f != nil {
			t.crashFault(f)
		}
		return t.K.Mem.Read(addr)
	}
	t.yield(i)
	if t.K.OnAccess != nil {
		t.K.OnAccess(t, trace.AccessEvent{Instr: i, Addr: addr, Kind: trace.Load, Atomic: atom})
	}
	if f := t.K.Mem.Check(i, addr, trace.Load); f != nil {
		t.crashFault(f)
	}
	v := t.oe.Load(i, addr, atom)
	if t.Prof != nil {
		t.Prof.RecordAccess(trace.AccessEvent{
			Instr: i, Addr: addr, Size: kmem.WordSize,
			Kind: trace.Load, Atomic: atom, Time: t.K.Em.Now(),
			PerCPU: t.K.IsPerCPU(addr),
		})
		if atom != trace.Plain {
			// Annotated loads act as a load barrier for subsequent
			// loads (LKMM Case 4/6; §3.2). Recording the implicit
			// barrier keeps Algorithm 1's groups consistent with
			// what OEMU will actually allow at runtime. The atomicity
			// rides along so the hint layer can re-derive the effect
			// under the active memory model (a relaxed annotated load
			// is no barrier under armv8).
			t.Prof.RecordBarrier(trace.BarrierEvent{Instr: i, Kind: trace.BarrierLoad, Time: t.K.Em.Now(), Implicit: true, Atomic: atom})
		}
	}
	return v
}

// store is the common store path (see load).
func (t *Task) store(i trace.InstrID, addr trace.Addr, v uint64, atom trace.Atomicity) {
	t.storeOpt(i, addr, v, atom, true)
}

// storeOpt lets read-modify-write operations perform their store half
// WITHOUT a scheduling point: an atomic RMW is indivisible, so no
// interleaving may land between its load and its store.
func (t *Task) storeOpt(i trace.InstrID, addr trace.Addr, v uint64, atom trace.Atomicity, yield bool) {
	if !t.K.Instrumented {
		if !t.K.Sanitizers {
			t.K.Mem.Write(addr, v) // plain kernel: see load
			return
		}
		if yield {
			t.yield(i)
		}
		if f := t.K.Mem.Check(i, addr, trace.Store); f != nil {
			t.crashFault(f)
		}
		t.K.Mem.Write(addr, v)
		return
	}
	if yield {
		t.yield(i)
	}
	if t.K.OnAccess != nil {
		t.K.OnAccess(t, trace.AccessEvent{Instr: i, Addr: addr, Kind: trace.Store, Atomic: atom, NoYield: !yield})
	}
	if f := t.K.Mem.Check(i, addr, trace.Store); f != nil {
		t.crashFault(f)
	}
	if t.Prof != nil && atom == trace.AtomicRelease {
		t.Prof.RecordBarrier(trace.BarrierEvent{Instr: i, Kind: trace.BarrierRelease, Time: t.K.Em.Now()})
	}
	t.oe.Store(i, addr, v, atom)
	if t.Prof != nil {
		t.Prof.RecordAccess(trace.AccessEvent{
			Instr: i, Addr: addr, Size: kmem.WordSize,
			Kind: trace.Store, Atomic: atom, Time: t.K.Em.Now(),
			NoYield: !yield, PerCPU: t.K.IsPerCPU(addr),
		})
	}
}

// Load is a plain (unannotated) load: obj->field.
func (t *Task) Load(i trace.InstrID, addr trace.Addr) uint64 {
	return t.load(i, addr, trace.Plain)
}

// Store is a plain (unannotated) store: obj->field = v.
func (t *Task) Store(i trace.InstrID, addr trace.Addr, v uint64) {
	t.store(i, addr, v, trace.Plain)
}

// ReadOnce is READ_ONCE(*addr).
func (t *Task) ReadOnce(i trace.InstrID, addr trace.Addr) uint64 {
	return t.load(i, addr, trace.Once)
}

// WriteOnce is WRITE_ONCE(*addr, v). Note it provides NO ordering against
// other locations (Table 1, "Relaxed") — the lesson of the paper's Bug #9.
func (t *Task) WriteOnce(i trace.InstrID, addr trace.Addr, v uint64) {
	t.store(i, addr, v, trace.Once)
}

// LoadAcquire is smp_load_acquire(addr).
func (t *Task) LoadAcquire(i trace.InstrID, addr trace.Addr) uint64 {
	v := t.load(i, addr, trace.AtomicAcquire)
	if t.Prof != nil {
		t.Prof.RecordBarrier(trace.BarrierEvent{Instr: i, Kind: trace.BarrierAcquire, Time: t.K.Em.Now()})
	}
	return v
}

// StoreRelease is smp_store_release(addr, v).
func (t *Task) StoreRelease(i trace.InstrID, addr trace.Addr, v uint64) {
	t.store(i, addr, v, trace.AtomicRelease)
}

// barrier is the common explicit-barrier path.
func (t *Task) barrier(i trace.InstrID, kind trace.BarrierKind) {
	t.barrierOpt(i, kind, false)
}

// barrierOpt records the barrier as implicit when it is not a source-level
// barrier call (the fences inside value-returning atomics).
func (t *Task) barrierOpt(i trace.InstrID, kind trace.BarrierKind, implicit bool) {
	if !t.K.Instrumented {
		if t.K.Sanitizers {
			t.yield(i)
		}
		return // no OEMU: a real barrier instruction costs ~nothing here
	}
	t.yield(i)
	t.oe.Barrier(kind)
	if t.Prof != nil {
		t.Prof.RecordBarrier(trace.BarrierEvent{Instr: i, Kind: kind, Time: t.K.Em.Now(), Implicit: implicit})
	}
}

// mbImplicit is the full fence inside a value-returning atomic RMW: real
// ordering, but invisible to source-level barrier matching.
func (t *Task) mbImplicit(i trace.InstrID) { t.barrierOpt(i, trace.BarrierFull, true) }

// Mb is smp_mb().
func (t *Task) Mb(i trace.InstrID) { t.barrier(i, trace.BarrierFull) }

// Rmb is smp_rmb().
func (t *Task) Rmb(i trace.InstrID) { t.barrier(i, trace.BarrierLoad) }

// Wmb is smp_wmb().
func (t *Task) Wmb(i trace.InstrID) { t.barrier(i, trace.BarrierStore) }

// Interrupt models an interrupt arriving on the task's CPU, which drains the
// virtual store buffer (§3.1).
func (t *Task) Interrupt() {
	if t.K.Instrumented {
		t.oe.Interrupt()
	}
}

// SyscallExitSite is the distinguished instruction site of the syscall
// return path. It is a scheduling point: an interleaving can land between
// the last instruction of a system call and the store-buffer drain at kernel
// exit, which is exactly where a hypothetical-store-barrier test whose
// scheduling point is the call's final store needs to switch.
const SyscallExitSite trace.InstrID = 0xffff

// SyscallReturn is invoked by the syscall dispatcher when a system call
// completes: the store buffer drains (the thread leaves the kernel through
// an interrupt/return path).
func (t *Task) SyscallReturn() {
	if !t.K.Instrumented {
		if t.K.Sanitizers {
			t.yield(SyscallExitSite)
		}
		return
	}
	t.yield(SyscallExitSite)
	t.oe.FlushAtSyscallExit()
}
