package hints

import (
	"testing"
	"testing/quick"

	"ozz/internal/trace"
)

// ev helpers build profiled event streams.
func st(instr trace.InstrID, addr trace.Addr) trace.Event {
	return trace.Event{Acc: trace.AccessEvent{Instr: instr, Addr: addr, Kind: trace.Store, Size: 8}}
}
func ld(instr trace.InstrID, addr trace.Addr) trace.Event {
	return trace.Event{Acc: trace.AccessEvent{Instr: instr, Addr: addr, Kind: trace.Load, Size: 8}}
}
func bar(instr trace.InstrID, kind trace.BarrierKind) trace.Event {
	return trace.Event{Barrier: true, Bar: trace.BarrierEvent{Instr: instr, Kind: kind}}
}

const (
	a trace.Addr = 0x100
	b trace.Addr = 0x108
	c trace.Addr = 0x110
	d trace.Addr = 0x118
	e trace.Addr = 0x120 // private to one call
)

// TestFilterOutSharedOnly implements Algorithm 2's contract: only accesses
// to locations touched by both calls with at least one write survive.
func TestFilterOutSharedOnly(t *testing.T) {
	si := []trace.Event{st(1, a), st(2, e), ld(3, b), bar(4, trace.BarrierStore)}
	sj := []trace.Event{ld(10, a), ld(11, b), st(12, c)}
	fi, fj := FilterOut(si, sj)
	// a: store(i)+load(j) -> shared. e: private -> dropped.
	// b: load(i)+load(j) -> no write -> dropped. c: only j -> dropped.
	if len(fi) != 2 || !fi[0].Barrier == false || fi[0].Acc.Addr != a || !fi[1].Barrier {
		t.Fatalf("fi = %v", fi)
	}
	if len(fj) != 1 || fj[0].Acc.Addr != a {
		t.Fatalf("fj = %v", fj)
	}
}

// TestFilterKeepsBarriers: barriers survive filtering — they delimit
// Algorithm 1's groups.
func TestFilterKeepsBarriers(t *testing.T) {
	si := []trace.Event{bar(1, trace.BarrierFull), st(2, e), bar(3, trace.BarrierLoad)}
	sj := []trace.Event{ld(4, a)}
	fi, _ := FilterOut(si, sj)
	if len(fi) != 2 || !fi[0].Barrier || !fi[1].Barrier {
		t.Fatalf("barriers dropped: %v", fi)
	}
}

// TestStoreTestHints checks the Fig. 5a shape: a group of stores followed
// by a scheduling access; the hypothetical barrier slides upward with the
// scheduling point fixed at the group's last access.
func TestStoreTestHints(t *testing.T) {
	// Writer: W(a) W(b) W(c) W(d), no barrier — one trailing group.
	si := []trace.Event{st(1, a), st(2, b), st(3, c), st(4, d)}
	// Reader shares everything.
	sj := []trace.Event{ld(10, a), ld(11, b), ld(12, c), ld(13, d)}
	hs := Calculate(si, sj)
	var stHints []*Hint
	for _, h := range hs {
		if h.Reorderer == 0 && h.Test == StoreBarrierTest {
			stHints = append(stHints, h)
		}
	}
	if len(stHints) != 3 {
		t.Fatalf("want 3 store-test hints, got %d: %v", len(stHints), stHints)
	}
	for _, h := range stHints {
		if h.Sched != 4 {
			t.Errorf("scheduling point must stay at the last store (4), got %d", h.Sched)
		}
	}
	// Sorted by reorder count descending: {1,2,3}, {1,2}, {1}.
	if stHints[0].ReorderCount() != 3 || stHints[1].ReorderCount() != 2 || stHints[2].ReorderCount() != 1 {
		t.Fatalf("heuristic order broken: %v", stHints)
	}
	if stHints[0].Type() != "S-S" {
		t.Errorf("type = %s, want S-S", stHints[0].Type())
	}
}

// TestStoreLoadType: when the scheduling access is a load, the store test
// reports S-L reordering.
func TestStoreLoadType(t *testing.T) {
	si := []trace.Event{st(1, a), ld(2, d)}
	sj := []trace.Event{ld(10, a), st(13, d)}
	hs := Calculate(si, sj)
	found := false
	for _, h := range hs {
		if h.Reorderer == 0 && h.Test == StoreBarrierTest && h.SchedKind == trace.Load {
			found = true
			if h.Type() != "S-L" {
				t.Errorf("type = %s, want S-L", h.Type())
			}
		}
	}
	if !found {
		t.Fatal("no store-load hint produced")
	}
}

// TestLoadTestHints checks the Fig. 5b shape: the scheduling point is the
// group's FIRST load (it reads the updated value) and the versioned suffix
// shrinks.
func TestLoadTestHints(t *testing.T) {
	si := []trace.Event{ld(1, d), ld(2, c), ld(3, b), ld(4, a)}
	sj := []trace.Event{st(10, a), st(11, b), st(12, c), st(13, d)}
	hs := Calculate(si, sj)
	var ldHints []*Hint
	for _, h := range hs {
		if h.Reorderer == 0 && h.Test == LoadBarrierTest {
			ldHints = append(ldHints, h)
		}
	}
	if len(ldHints) != 3 {
		t.Fatalf("want 3 load-test hints, got %d: %v", len(ldHints), ldHints)
	}
	for _, h := range ldHints {
		if h.Sched != 1 {
			t.Errorf("scheduling point must stay at the first load (1), got %d", h.Sched)
		}
		if h.Type() != "L-L" {
			t.Errorf("type = %s, want L-L", h.Type())
		}
	}
	if ldHints[0].ReorderCount() != 3 {
		t.Fatalf("largest hint must version 3 loads, got %d", ldHints[0].ReorderCount())
	}
}

// TestBarriersSplitGroups: a store barrier closes the store-test group; the
// accesses before it never appear in the same group as those after.
func TestBarriersSplitGroups(t *testing.T) {
	si := []trace.Event{st(1, a), bar(9, trace.BarrierStore), st(2, b), st(3, c)}
	sj := []trace.Event{ld(10, a), ld(11, b), ld(12, c)}
	hs := Calculate(si, sj)
	for _, h := range hs {
		if h.Reorderer != 0 || h.Test != StoreBarrierTest {
			continue
		}
		for _, r := range h.Reorder {
			if r == 1 && h.Sched == 3 {
				t.Fatalf("store 1 grouped across the barrier: %v", h)
			}
		}
	}
}

// TestFullBarrierClosesBothGroupKinds: smp_mb() bounds both store-test and
// load-test groups.
func TestFullBarrierClosesBothGroupKinds(t *testing.T) {
	si := []trace.Event{st(1, a), ld(2, b), bar(9, trace.BarrierFull), st(3, c), ld(4, d)}
	sj := []trace.Event{ld(10, a), st(11, b), ld(12, c), st(13, d)}
	for _, h := range Calculate(si, sj) {
		if h.Reorderer != 0 {
			continue
		}
		pre := map[trace.InstrID]bool{1: true, 2: true}
		post := map[trace.InstrID]bool{3: true, 4: true}
		crosses := false
		if pre[h.Sched] {
			for _, r := range h.Reorder {
				if post[r] {
					crosses = true
				}
			}
		}
		if post[h.Sched] {
			for _, r := range h.Reorder {
				if pre[r] {
					crosses = true
				}
			}
		}
		if crosses {
			t.Fatalf("hint crosses smp_mb: %v", h)
		}
	}
}

// TestReleaseActsAsStoreBoundary / acquire as load boundary, per Table 1.
func TestReleaseAcquireBoundaries(t *testing.T) {
	si := []trace.Event{st(1, a), bar(2, trace.BarrierRelease), st(2, b)}
	sj := []trace.Event{ld(10, a), ld(11, b)}
	for _, h := range Calculate(si, sj) {
		if h.Reorderer == 0 && h.Test == StoreBarrierTest && h.Sched == 2 {
			for _, r := range h.Reorder {
				if r == 1 {
					t.Fatalf("store delayed across release: %v", h)
				}
			}
		}
	}
}

// TestBothCallsGetHints: hints are produced with each call as the
// reorderer (Algorithm 1 iterates k over {i, j}).
func TestBothCallsGetHints(t *testing.T) {
	si := []trace.Event{st(1, a), st(2, b)}
	sj := []trace.Event{st(10, a), st(11, b)}
	seen := map[int]bool{}
	for _, h := range Calculate(si, sj) {
		seen[h.Reorderer] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("reorderers seen: %v", seen)
	}
}

// TestSchedOccurrence: repeated executions of the same site get the right
// dynamic occurrence index.
func TestSchedOccurrence(t *testing.T) {
	si := []trace.Event{st(1, a), st(1, b), st(2, c)}
	sj := []trace.Event{ld(10, a), ld(11, b), ld(12, c)}
	for _, h := range Calculate(si, sj) {
		if h.Reorderer == 0 && h.Test == StoreBarrierTest && h.Sched == 2 {
			if h.SchedOcc != 1 {
				t.Fatalf("occ = %d, want 1", h.SchedOcc)
			}
		}
	}
}

// TestNoHintsWithoutSharing: fully disjoint calls produce no hints.
func TestNoHintsWithoutSharing(t *testing.T) {
	si := []trace.Event{st(1, a), st(2, b)}
	sj := []trace.Event{st(10, c), ld(11, d)}
	if hs := Calculate(si, sj); len(hs) != 0 {
		t.Fatalf("expected no hints, got %v", hs)
	}
}

// TestPropertyReorderNeverContainsSched: no hint's reorder set contains its
// own scheduling site, and reorder sets match the test's access kind —
// invariants the executor relies on.
func TestPropertyReorderNeverContainsSched(t *testing.T) {
	f := func(ops []uint16) bool {
		var si, sj []trace.Event
		for n, op := range ops {
			if n > 20 {
				break
			}
			instr := trace.InstrID(op%7 + 1)
			addr := trace.Addr(0x100 + uint64(op%5)*8)
			var ev trace.Event
			switch op % 4 {
			case 0:
				ev = st(instr, addr)
			case 1:
				ev = ld(instr, addr)
			case 2:
				ev = bar(instr, trace.BarrierStore)
			default:
				ev = bar(instr, trace.BarrierLoad)
			}
			if op%2 == 0 {
				si = append(si, ev)
			} else {
				sj = append(sj, ev)
			}
		}
		for _, h := range Calculate(si, sj) {
			for _, r := range h.Reorder {
				if r == h.Sched {
					return false
				}
			}
			if h.ReorderCount() == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySortedByHeuristic: Calculate's result is sorted by descending
// reorder count (the §4.3 search heuristic).
func TestPropertySortedByHeuristic(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%6) + 2
		var si, sj []trace.Event
		for i := 0; i < count; i++ {
			si = append(si, st(trace.InstrID(i+1), trace.Addr(0x100+uint64(i)*8)))
			sj = append(sj, ld(trace.InstrID(100+i), trace.Addr(0x100+uint64(i)*8)))
		}
		hs := Calculate(si, sj)
		for i := 1; i < len(hs); i++ {
			if hs[i-1].ReorderCount() < hs[i].ReorderCount() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
