// Package hints implements OZZ's scheduling-hint calculation (§4.3):
// Algorithm 1 (hint construction via the hypothetical memory barrier test)
// and Algorithm 2 (filter_out: dropping memory accesses that cannot
// participate in an OOO bug because they touch no shared location).
//
// Given the profiled event sequences of two system calls Si and Sj, the
// package produces scheduling hints H_ij. Each hint names (a) which call
// reorders, (b) the test type (hypothetical store barrier vs. load
// barrier), (c) the scheduling point — the instruction at which the
// deterministic scheduler interleaves — and (d) the set of instruction
// sites whose accesses OEMU reorders (delays or versions).
package hints

import (
	"fmt"
	"sort"
	"strings"

	"ozz/internal/memmodel"
	"ozz/internal/trace"
)

// TestKind is the hypothetical-barrier test type.
type TestKind uint8

const (
	// StoreBarrierTest emulates the absence of a store barrier using
	// delayed store operations (store-store / store-load reordering,
	// Fig. 5a).
	StoreBarrierTest TestKind = iota
	// LoadBarrierTest emulates the absence of a load barrier using
	// versioned load operations (load-load reordering, Fig. 5b).
	LoadBarrierTest
)

// String names the test.
func (k TestKind) String() string {
	if k == StoreBarrierTest {
		return "hypothetical-store-barrier"
	}
	return "hypothetical-load-barrier"
}

// ClosedBy reports whether a barrier of kind b closes a group for this
// hypothetical-barrier test under the default LKMM model (Algorithm 1
// step 2). It is the preserved-program-order predicate of §10.1 shared
// with OEMU and the reference model (internal/lkmm/model): store-barrier
// tests group between the barriers that drain the virtual store buffer
// (smp_wmb/smp_mb/release — LKMM Cases 1, 2, 5), load-barrier tests
// between the barriers that pin the versioning window (smp_rmb/smp_mb/
// acquire and the implicit barrier of an annotated load — Cases 1, 3, 4,
// 6). Model-relative callers use closedByModel, which also resolves the
// implicit barrier of an annotated load through the model's per-atomicity
// table.
func (k TestKind) ClosedBy(b trace.BarrierKind) bool {
	if k == StoreBarrierTest {
		return b.OrdersStores()
	}
	return b.OrdersLoads()
}

// closedByModel is ClosedBy made model-relative, deciding on the full
// barrier event. The implicit barrier recorded for an annotated load
// (kernel access path) is re-derived from the model's per-atomicity load
// semantics: under armv8 a relaxed READ_ONCE does not pin the versioning
// window, so it must not close load-test groups either — otherwise the
// hint layer would under-approximate what OEMU can reorder.
func closedByModel(k TestKind, e *trace.BarrierEvent, mm *memmodel.Table) bool {
	if k == StoreBarrierTest {
		return mm.OrdersStores(e.Kind)
	}
	if e.Implicit && e.Kind == trace.BarrierLoad && e.Atomic != trace.Plain {
		return mm.LoadBarrier(e.Atomic)
	}
	return mm.OrdersLoads(e.Kind)
}

// Hint is one scheduling hint (h in Algorithm 1).
type Hint struct {
	// Reorderer selects which call of the pair executes reordered: 0 for
	// Si, 1 for Sj.
	Reorderer int
	// Test is the hypothetical-barrier test type.
	Test TestKind
	// Sched is the scheduling-point instruction site (h.sched): the
	// access immediately after (store test) or at the start of (load
	// test) the hypothetical barrier.
	Sched trace.InstrID
	// SchedOcc is which dynamic occurrence of Sched within the
	// reorderer's call the breakpoint should match (1-based).
	SchedOcc int
	// SchedKind is the access kind of the scheduling-point access; for a
	// store test it distinguishes store-store from store-load reordering.
	SchedKind trace.AccessKind
	// Reorder is h.reorder: the instruction sites whose accesses OEMU
	// reorders — only sites of the matching kind (stores for a store
	// test, loads for a load test) are retained, since only those can be
	// delayed/versioned.
	Reorder []trace.InstrID
	// Migrate lists the pair's per-CPU instruction sites (accesses tagged
	// trace.AccessEvent.PerCPU that survived FilterOut), sorted and
	// deduplicated. A non-empty set marks the pair migration-sensitive:
	// the racing location is a per-CPU slot, so the race only manifests
	// when one task moves CPUs between resolving the address and using it.
	// The Migration strategy performs a real cross-CPU move exactly for
	// such hints and degrades to plain OOO when the set is empty. It is an
	// annotation: it does not participate in hint rendering or directives.
	Migrate []trace.InstrID
}

// ReorderCount is the search-heuristic key: the number of accesses that
// deviate from sequential order (§4.3 prioritizes the maximum).
func (h *Hint) ReorderCount() int { return len(h.Reorder) }

// Type returns the paper's reordering-type label: "S-S", "S-L", or "L-L".
func (h *Hint) Type() string {
	if h.Test == LoadBarrierTest {
		return "L-L"
	}
	if h.SchedKind == trace.Load {
		return "S-L"
	}
	return "S-S"
}

// WithReorder returns a copy of the hint whose reorder directive set is
// replaced by sites (the slice is copied). The repair search uses it to
// probe weakened directive sets — the reorderings a candidate fence
// still permits.
func (h *Hint) WithReorder(sites []trace.InstrID) *Hint {
	c := *h
	c.Reorder = append([]trace.InstrID(nil), sites...)
	return &c
}

// String renders the hint for reports.
func (h *Hint) String() string {
	rs := make([]string, len(h.Reorder))
	for i, r := range h.Reorder {
		rs[i] = fmt.Sprintf("%d", r)
	}
	return fmt.Sprintf("%s call=%d sched=%d#%d reorder=[%s]",
		h.Test, h.Reorderer, h.Sched, h.SchedOcc, strings.Join(rs, ","))
}

// FilterOut is Algorithm 2: it returns the event sequences of the two calls
// with every memory access removed that touches no location the other call
// also touches with at least one of the pair being a store. Barrier events
// are always retained — they delimit groups in Algorithm 1.
func FilterOut(si, sj []trace.Event) (fi, fj []trace.Event) {
	shared := sharedLocations(si, sj)
	return keepShared(si, shared), keepShared(sj, shared)
}

// sharedLocations computes Algorithm 2's shared_mem set: locations accessed
// by both calls where at least one of the overlapping pair writes.
func sharedLocations(si, sj []trace.Event) map[trace.Addr]bool {
	type accInfo struct{ load, store bool }
	idx := make(map[trace.Addr]*accInfo)
	for _, e := range si {
		if e.Barrier {
			continue
		}
		info := idx[e.Acc.Addr]
		if info == nil {
			info = &accInfo{}
			idx[e.Acc.Addr] = info
		}
		if e.Acc.Kind == trace.Load {
			info.load = true
		} else {
			info.store = true
		}
	}
	shared := make(map[trace.Addr]bool)
	for _, e := range sj {
		if e.Barrier {
			continue
		}
		info := idx[e.Acc.Addr]
		if info == nil {
			continue
		}
		// The pair (a_i, a_j) shares the location; require a write on
		// at least one side.
		if info.store || e.Acc.Kind == trace.Store {
			shared[e.Acc.Addr] = true
		}
	}
	return shared
}

func keepShared(s []trace.Event, shared map[trace.Addr]bool) []trace.Event {
	out := make([]trace.Event, 0, len(s))
	for _, e := range s {
		if e.Barrier || shared[e.Acc.Addr] {
			out = append(out, e)
		}
	}
	return out
}

// group is one barrier-delimited run of accesses (g in Algorithm 1), with
// the dynamic occurrence index of each access's instruction site.
type groupAccess struct {
	instr trace.InstrID
	kind  trace.AccessKind
	occ   int // 1-based occurrence of instr within the whole call
}

// Calculate is Algorithm 1: it computes the scheduling hints H_ij for the
// profiled event sequences of two system calls. The result is sorted by
// descending reorder count (the search heuristic of §4.3: prioritize hints
// that deviate most from sequential order).
//
// One deliberate refinement over the paper's pseudocode: the trailing group
// after the last barrier (or the whole sequence when a call executes no
// barrier of the type) is also emitted. A missing barrier most often means
// no barrier of that type exists at all on the path, and the hypothetical
// barrier must still be placeable inside the trailing run; the store buffer
// drains at syscall return, which acts as the closing boundary.
func Calculate(si, sj []trace.Event) []*Hint {
	return CalculateModel(si, sj, memmodel.LKMM)
}

// CalculateModel is Calculate under an explicit memory model. Group
// closure follows the model's barrier table (closedByModel), and test
// kinds the model cannot exercise are skipped wholesale: a model with no
// versionable loads (TSO) yields no load-barrier hints, and a model that
// preserves store→store order emits store-test hints only where the
// scheduling point is a load (S-L) — its FIFO buffer makes S-S
// reorderings unobservable, so those hints would only burn executions.
func CalculateModel(si, sj []trace.Event, mm *memmodel.Table) []*Hint {
	fi, fj := FilterOut(si, sj)
	migrate := perCPUSites(fi, fj)
	var hints []*Hint
	for k, events := range [][]trace.Event{fi, fj} {
		for _, test := range []TestKind{StoreBarrierTest, LoadBarrierTest} {
			if test == StoreBarrierTest && !mm.AnyDelayable() {
				continue
			}
			if test == LoadBarrierTest && !mm.AnyVersionable() {
				continue
			}
			groups := groupByBarrier(events, test, mm)
			for _, g := range groups {
				hints = append(hints, hintsForGroup(k, test, g, mm)...)
			}
		}
	}
	// Step 4: sort by the search heuristic — most reordered accesses
	// first; ties broken deterministically.
	sort.SliceStable(hints, func(a, b int) bool {
		if d := hints[a].ReorderCount() - hints[b].ReorderCount(); d != 0 {
			return d > 0
		}
		if hints[a].Sched != hints[b].Sched {
			return hints[a].Sched < hints[b].Sched
		}
		return hints[a].Reorderer < hints[b].Reorderer
	})
	// Pair-level migration annotation: every hint of a migration-sensitive
	// pair carries the (shared) per-CPU site list. Computed from the
	// filtered sequences, so pre-filtering the inputs is idempotent.
	for _, h := range hints {
		h.Migrate = migrate
	}
	return hints
}

// perCPUSites returns the sorted, deduplicated instruction sites among both
// filtered sequences whose accesses touched per-CPU memory, or nil when the
// pair shares no per-CPU location.
func perCPUSites(fi, fj []trace.Event) []trace.InstrID {
	var sites []trace.InstrID
	for _, evs := range [][]trace.Event{fi, fj} {
		for _, e := range evs {
			if !e.Barrier && e.Acc.PerCPU {
				sites = append(sites, e.Acc.Instr)
			}
		}
	}
	if len(sites) == 0 {
		return nil
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	out := sites[:1]
	for _, s := range sites[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

// groupByBarrier is Step 2 of Algorithm 1: split the call's accesses into
// groups delimited by the barriers that close groups for the given test
// kind under the model (closedByModel — store barriers close store-test
// groups; load barriers close load-test groups; full barriers close both).
func groupByBarrier(events []trace.Event, test TestKind, mm *memmodel.Table) [][]groupAccess {
	// occ counts SCHEDULING POINTS per site, not events: the store half
	// of an RMW shares its scheduling point with the load half (NoYield),
	// so the breakpoint occurrence for it is the load half's.
	occ := make(map[trace.InstrID]int)
	var groups [][]groupAccess
	var g []groupAccess
	for _, e := range events {
		if e.Barrier {
			if closedByModel(test, &e.Bar, mm) {
				if len(g) > 0 {
					groups = append(groups, g)
				}
				g = nil
			}
			continue
		}
		if !e.Acc.NoYield {
			occ[e.Acc.Instr]++
		}
		g = append(g, groupAccess{instr: e.Acc.Instr, kind: e.Acc.Kind, occ: occ[e.Acc.Instr]})
	}
	if len(g) > 0 {
		groups = append(groups, g)
	}
	return groups
}

// hintsForGroup is Step 3 of Algorithm 1: slide the hypothetical barrier
// through the group while the scheduling point stays FIXED at the group
// boundary. For a store test the scheduling point is the group's last
// access (the access whose commit the observer must see while earlier
// stores are still delayed); the hypothetical barrier starts just above it
// and moves upward, shrinking the delayed prefix. For a load test the
// scheduling point is the group's first load (it reads the updated value,
// Fig. 5b) and the barrier moves downward, shrinking the versioned suffix.
func hintsForGroup(reorderer int, test TestKind, g []groupAccess, mm *memmodel.Table) []*Hint {
	var out []*Hint
	emit := func(test TestKind, sched groupAccess, reorder []trace.InstrID) {
		if len(reorder) == 0 {
			return
		}
		// Skip duplicates of the previous emission (site dedup can
		// make consecutive prefixes identical).
		if n := len(out); n > 0 && sameSites(out[n-1].Reorder, reorder) &&
			out[n-1].Sched == sched.instr && out[n-1].Test == test {
			return
		}
		out = append(out, &Hint{
			Reorderer: reorderer,
			Test:      test,
			Sched:     sched.instr,
			SchedOcc:  sched.occ,
			SchedKind: sched.kind,
			Reorder:   reorder,
		})
	}
	if test == StoreBarrierTest {
		if len(g) < 2 {
			return nil
		}
		sched := g[len(g)-1]
		if mm.StoreStoreOrdered() && sched.kind != trace.Load {
			// FIFO store buffer: earlier stores cannot become visible
			// after a later store, so an S-S hint can never fire.
			return nil
		}
		// Hypothetical barrier positions: between g[end-1] and the
		// scheduling access, moving upward.
		for end := len(g) - 1; end > 0; end-- {
			emit(StoreBarrierTest, sched, collectKinds(g[:end], trace.Store, sched.instr))
		}
		return out
	}
	if len(g) < 2 || g[0].kind != trace.Load {
		// The access reading the "new" side of a load-load reordering
		// must be a load; groups led by a store contribute no
		// load-test hints (their loads are covered by neighbouring
		// groups' iterations).
		return nil
	}
	sched := g[0]
	// Hypothetical barrier positions: just after the scheduling load,
	// moving downward.
	for start := 1; start < len(g); start++ {
		emit(LoadBarrierTest, sched, collectKinds(g[start:], trace.Load, sched.instr))
	}
	return out
}

// sameSites reports whether two site slices are identical.
func sameSites(a, b []trace.InstrID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// collectKinds returns the deduplicated instruction sites of the given kind,
// excluding the scheduling-point site itself (a directive on it would also
// reorder the scheduling access, defeating the test).
func collectKinds(g []groupAccess, kind trace.AccessKind, exclude trace.InstrID) []trace.InstrID {
	seen := make(map[trace.InstrID]bool)
	var out []trace.InstrID
	for _, a := range g {
		if a.kind != kind || a.instr == exclude || seen[a.instr] {
			continue
		}
		seen[a.instr] = true
		out = append(out, a.instr)
	}
	return out
}
